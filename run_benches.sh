#!/bin/sh
# Run every benchmark binary, teeing per-figure output.
#
# Usage: run_benches.sh [--threads N] [--json DIR] [output-file]
#
#   --threads N   tick SM cores on N host threads (0 = all hardware
#                 threads). Simulated results are unchanged — see
#                 docs/PARALLEL_ENGINE.md. When N > 1 the script also
#                 times bench_fig05_stalls serially vs threaded and
#                 prints the wall-clock speedup.
#   --json DIR    have every binary drop a machine-readable
#                 BENCH_<figure>.json artifact into DIR (see README
#                 "Machine-readable results"), then merge them into
#                 DIR/BENCH_SUMMARY.json with per-binary exit codes.
#
# A binary that exits non-zero gets a "FAILED <name>" line (stderr and
# the output file) and the script itself exits 1 after finishing the
# remaining binaries. Paths are derived from the script's location, so
# it works from any cwd; GGPU_BENCH_DIR overrides the binary directory
# (used by the harness self-test).
set -u

script_dir=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
bench_dir="${GGPU_BENCH_DIR:-$script_dir/build/bench}"

threads=1
json_dir=""
out="$script_dir/bench_output.txt"
while [ $# -gt 0 ]; do
    case "$1" in
        --threads)
            [ $# -ge 2 ] || { echo "--threads needs a value" >&2; exit 2; }
            threads="$2"
            shift 2
            ;;
        --threads=*)
            threads="${1#--threads=}"
            shift
            ;;
        --json)
            [ $# -ge 2 ] || { echo "--json needs a directory" >&2; exit 2; }
            json_dir="$2"
            shift 2
            ;;
        --json=*)
            json_dir="${1#--json=}"
            shift
            ;;
        *)
            out="$1"
            shift
            ;;
    esac
done

[ -d "$bench_dir" ] || {
    echo "bench directory '$bench_dir' not found (build first)" >&2
    exit 2
}

export GGPU_THREADS="$threads"
status_file=""
if [ -n "$json_dir" ]; then
    mkdir -p "$json_dir" || exit 2
    # Absolute path: the binaries may run from any cwd.
    json_dir=$(CDPATH= cd -- "$json_dir" && pwd)
    export GGPU_JSON="$json_dir"
    status_file="$json_dir/bench_status.txt"
    : > "$status_file"
fi

: > "$out"
failed=""
for b in "$bench_dir"/bench_*; do
    [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "==== $name ====" >> "$out"
    if "$b" --benchmark_min_warmup_time=0 >> "$out" 2>&1; then
        status=0
    else
        status=$?
        echo "FAILED $name (exit $status)" | tee -a "$out" >&2
        failed="$failed $name"
    fi
    [ -n "$status_file" ] && echo "$name $status" >> "$status_file"
    echo >> "$out"
done

# Wall-clock sanity check: the same workload serially vs threaded.
# Cycle counts are identical by construction; only the wall clock moves.
if [ "$threads" != 1 ] && [ -x "$bench_dir/bench_fig05_stalls" ]; then
    t0=$(date +%s%N)
    GGPU_THREADS=1 "$bench_dir/bench_fig05_stalls" \
        --benchmark_min_warmup_time=0 > /dev/null 2>&1
    t1=$(date +%s%N)
    GGPU_THREADS="$threads" "$bench_dir/bench_fig05_stalls" \
        --benchmark_min_warmup_time=0 > /dev/null 2>&1
    t2=$(date +%s%N)
    awk -v s=$((t1 - t0)) -v p=$((t2 - t1)) -v n="$threads" 'BEGIN {
        printf "bench_fig05_stalls: serial %.2fs, %s threads %.2fs, speedup %.2fx\n",
               s / 1e9, n, p / 1e9, (p > 0) ? s / p : 0
    }' | tee -a "$out"
fi

if [ -n "$json_dir" ]; then
    if [ -x "$bench_dir/ggpu_metrics_tool" ]; then
        if ! "$bench_dir/ggpu_metrics_tool" merge "$json_dir" \
                "$json_dir/BENCH_SUMMARY.json" \
                --status "$status_file"; then
            echo "FAILED BENCH_SUMMARY.json merge" >&2
            failed="$failed BENCH_SUMMARY"
        fi
    else
        echo "warning: ggpu_metrics_tool not built; skipping BENCH_SUMMARY.json" >&2
    fi
fi

if [ -n "$failed" ]; then
    echo "FAILED:$failed" | tee -a "$out" >&2
    exit 1
fi
echo "ALL_BENCHES_DONE" >> "$out"
