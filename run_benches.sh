#!/bin/sh
# Run every benchmark binary, teeing per-figure output.
#
# Usage: run_benches.sh [--threads N] [output-file]
#
#   --threads N   tick SM cores on N host threads (0 = all hardware
#                 threads). Simulated results are unchanged — see
#                 docs/PARALLEL_ENGINE.md. When N > 1 the script also
#                 times bench_fig05_stalls serially vs threaded and
#                 prints the wall-clock speedup.
set -u

threads=1
out=/root/repo/bench_output.txt
while [ $# -gt 0 ]; do
    case "$1" in
        --threads)
            [ $# -ge 2 ] || { echo "--threads needs a value" >&2; exit 2; }
            threads="$2"
            shift 2
            ;;
        --threads=*)
            threads="${1#--threads=}"
            shift
            ;;
        *)
            out="$1"
            shift
            ;;
    esac
done

export GGPU_THREADS="$threads"
: > "$out"
for b in build/bench/bench_*; do
    [ -x "$b" ] || continue
    echo "==== $(basename "$b") ====" >> "$out"
    "$b" --benchmark_min_warmup_time=0 >> "$out" 2>&1
    echo >> "$out"
done

# Wall-clock sanity check: the same workload serially vs threaded.
# Cycle counts are identical by construction; only the wall clock moves.
if [ "$threads" != 1 ] && [ -x build/bench/bench_fig05_stalls ]; then
    t0=$(date +%s%N)
    GGPU_THREADS=1 build/bench/bench_fig05_stalls \
        --benchmark_min_warmup_time=0 > /dev/null 2>&1
    t1=$(date +%s%N)
    GGPU_THREADS="$threads" build/bench/bench_fig05_stalls \
        --benchmark_min_warmup_time=0 > /dev/null 2>&1
    t2=$(date +%s%N)
    awk -v s=$((t1 - t0)) -v p=$((t2 - t1)) -v n="$threads" 'BEGIN {
        printf "bench_fig05_stalls: serial %.2fs, %s threads %.2fs, speedup %.2fx\n",
               s / 1e9, n, p / 1e9, (p > 0) ? s / p : 0
    }' | tee -a "$out"
fi

echo "ALL_BENCHES_DONE" >> "$out"
