#!/bin/sh
# Run every benchmark binary, teeing per-figure output.
set -u
out="${1:-/root/repo/bench_output.txt}"
: > "$out"
for b in build/bench/bench_*; do
    [ -x "$b" ] || continue
    echo "==== $(basename "$b") ====" >> "$out"
    "$b" --benchmark_min_warmup_time=0 >> "$out" 2>&1
    echo >> "$out"
done
echo "ALL_BENCHES_DONE" >> "$out"
