/**
 * @file
 * The benchmark-application interface of the Genomics-GPU suite. Each
 * of the paper's ten applications implements BenchmarkApp: run()
 * executes the full host workflow (uploads, kernel launches including
 * the CDP variant, downloads) on a simulated device, verifies every
 * device result against the CPU reference implementation, and reports
 * the timing/profile numbers the evaluation figures need.
 */

#ifndef GGPU_KERNELS_APP_HH
#define GGPU_KERNELS_APP_HH

#include <memory>
#include <string>

#include "genomics/align/banded.hh"
#include "runtime/device.hh"
#include "sim/trace.hh"

namespace ggpu::kernels
{

/** Input-size tier (the paper ships datasets of different sizes). */
enum class InputScale
{
    Tiny,    //!< Unit-test sized; seconds of simulation at most
    Small,   //!< Default for the benchmark harness
    Medium   //!< Table III shaped (full grid dimensions)
};

/** Per-run options. */
struct AppOptions
{
    bool cdp = false;          //!< Use the CDP (device-launch) variant
    bool sharedMem = true;     //!< Fig 7: shared-memory on/off variants
    InputScale scale = InputScale::Small;
    std::uint64_t seed = 0x5eedu;
};

/** What one application run produced. */
struct AppRunResult
{
    bool verified = false;         //!< Device results match CPU reference
    Cycles kernelCycles = 0;       //!< Sum of kernel durations
    Cycles totalCycles = 0;        //!< Kernels + PCI transfers
    double cpuReferenceSeconds = 0.0;  //!< Wall time of the CPU reference
    sim::LaunchSpec primarySpec;   //!< Main kernel's launch shape
    std::string detail;            //!< Free-form result summary
};

/** One benchmark application (SW, NW, STAR, GG, ...). */
class BenchmarkApp
{
  public:
    virtual ~BenchmarkApp() = default;

    /** Table III abbreviation ("SW", "NW", "GKSW", ...). */
    virtual std::string name() const = 0;
    /** Full benchmark name ("Smith-Waterman", ...). */
    virtual std::string fullName() const = 0;

    /** Execute the workload on @p dev and verify it. */
    virtual AppRunResult run(rt::Device &dev,
                             const AppOptions &opts) = 0;
};

std::unique_ptr<BenchmarkApp> makeSwApp();
std::unique_ptr<BenchmarkApp> makeNwApp();
std::unique_ptr<BenchmarkApp> makeStarApp();
/** GASAL2 family: Global=GG, Local=GL, KswBanded=GKSW, SemiGlobal=GSG. */
std::unique_ptr<BenchmarkApp> makeGasalApp(genomics::AlignMode mode);
std::unique_ptr<BenchmarkApp> makeClusterApp();
std::unique_ptr<BenchmarkApp> makePairHmmApp();
std::unique_ptr<BenchmarkApp> makeNvbApp();

} // namespace ggpu::kernels

#endif // GGPU_KERNELS_APP_HH
