/**
 * @file
 * Smith-Waterman benchmark (SW): one thread aligns one query/target
 * pair with the local-alignment DP, rolling rows held in per-thread
 * local memory (Table III: grid (3,1,1), CTA (64,1,1), no shared
 * memory, constant memory for scores). The host launches one kernel
 * per pair chunk, so kernel invocations far outnumber PCI transfers
 * (Fig 4). The CDP variant replaces the host launch loop with a
 * single parent kernel that launches each chunk as a child grid.
 */

#include "kernels/app.hh"

#include <algorithm>
#include <chrono>

#include "common/log.hh"
#include "common/random.hh"
#include "genomics/align/sw.hh"
#include "genomics/datagen.hh"
#include "sim/warp_ctx.hh"

namespace ggpu::kernels
{

namespace
{

using namespace ggpu::sim;
using genomics::Scoring;

struct SwShape
{
    std::uint32_t seqLen;
    std::uint32_t rounds;       //!< Kernel launches (pair chunks)
    Dim3 grid{3, 1, 1};         //!< Table III
    Dim3 cta{64, 1, 1};

    std::uint32_t pairsPerLaunch() const
    {
        return std::uint32_t(grid.count() * cta.count());
    }
    std::uint32_t totalPairs() const
    {
        return pairsPerLaunch() * rounds;
    }
};

SwShape
shapeFor(InputScale scale)
{
    switch (scale) {
      case InputScale::Tiny: return {16, 2};
      case InputScale::Small: return {48, 8};
      case InputScale::Medium: return {83, 16};  // ~32K bases in flight
    }
    panic("SwApp: unknown scale");
}

/** Device layout shared by the kernel and the host driver. */
struct SwBuffers
{
    Addr query = 0;    //!< bytes, q[i * totalPairs + pair]
    Addr target = 0;   //!< bytes, t[i * totalPairs + pair]
    Addr scores = 0;   //!< int32 per pair
    std::uint32_t totalPairs = 0;
};

/** One chunk's worth of thread-per-pair local alignments. */
class SwChunkKernel : public KernelBody
{
  public:
    SwChunkKernel(const SwBuffers &bufs, const SwShape &shape,
                  std::uint32_t chunk_offset, const Scoring &scoring)
        : bufs_(bufs), shape_(shape), chunkOffset_(chunk_offset),
          scoring_(scoring)
    {
    }

    void
    runPhase(WarpCtx &w, int) override
    {
        const std::uint32_t len = shape_.seqLen;

        // Per-lane pair index for this chunk.
        auto pair = w.globalTid();
        for (int lane = 0; lane < warpSize; ++lane)
            pair[lane] += chunkOffset_;
        w.emitInt(1);  // offset add

        LaneMask active = 0;
        for (int lane = 0; lane < warpSize; ++lane) {
            if (w.laneActive(lane) && pair[lane] < bufs_.totalPairs)
                active |= LaneMask(1) << lane;
        }
        w.emitInt(1);  // bounds compare
        if (active == 0)
            return;
        w.pushMask(active);

        // Scoring parameters from constant memory.
        w.constRead(4);

        // Cache the target in per-thread local memory: one global read
        // per base, one local spill per 4 bases.
        std::array<std::array<char, 256>, warpSize> target{};
        for (std::uint32_t j = 0; j < len; ++j) {
            LaneArray<std::uint32_t> idx = w.make<std::uint32_t>(
                [&](int lane) {
                    return j * bufs_.totalPairs + pair[lane];
                });
            auto base = w.loadGlobal<char>(bufs_.target, idx);
            for (int lane = 0; lane < warpSize; ++lane)
                target[std::size_t(lane)][j] = base[lane];
            if (j % 4 == 3)
                w.localAccess(true, 64 + j / 4, 4, base.dep);
        }

        // Rolling DP rows in local memory; per-lane functional state.
        std::array<std::vector<int>, warpSize> prev, curr;
        std::array<int, warpSize> best{};
        for (int lane = 0; lane < warpSize; ++lane) {
            prev[std::size_t(lane)].assign(len + 1, 0);
            curr[std::size_t(lane)].assign(len + 1, 0);
        }

        for (std::uint32_t i = 0; i < len; ++i) {
            // Row base a[i] per lane (coalesced byte gather).
            LaneArray<std::uint32_t> idx = w.make<std::uint32_t>(
                [&](int lane) {
                    return i * bufs_.totalPairs + pair[lane];
                });
            auto arow = w.loadGlobal<char>(bufs_.query, idx);

            std::int32_t row_dep = arow.dep;
            for (std::uint32_t j = 1; j <= len; ++j) {
                // Rows are register-blocked: one 16-byte local
                // load/store covers four DP cells (as the real kernel
                // keeps a vector of H values in registers).
                if (j % 4 == 1) {
                    const std::int32_t ld =
                        w.localAccess(false, j / 4, 16, row_dep);
                    row_dep = -1;
                    w.emitInt(5, ld);
                    w.localAccess(true, (len + 4) / 4 + j / 4, 16);
                } else {
                    w.emitInt(5);
                }

                for (int lane = 0; lane < warpSize; ++lane) {
                    if (!((active >> lane) & 1u))
                        continue;
                    auto &p = prev[std::size_t(lane)];
                    auto &c = curr[std::size_t(lane)];
                    const char a = arow[lane];
                    const char b = target[std::size_t(lane)][j - 1];
                    const int diag = p[j - 1] + scoring_.subst(a, b);
                    const int up = p[j] + scoring_.gapExtend;
                    const int left = c[j - 1] + scoring_.gapExtend;
                    const int value = std::max({0, diag, up, left});
                    c[j] = value;
                    best[std::size_t(lane)] =
                        std::max(best[std::size_t(lane)], value);
                }
            }
            for (int lane = 0; lane < warpSize; ++lane)
                std::swap(prev[std::size_t(lane)],
                          curr[std::size_t(lane)]);
        }

        // Write the best score per pair.
        LaneArray<std::int32_t> out = w.make<std::int32_t>(
            [&best](int lane) { return best[std::size_t(lane)]; });
        LaneArray<std::uint32_t> out_idx = w.make<std::uint32_t>(
            [&pair](int lane) { return pair[lane]; });
        w.storeGlobal<std::int32_t>(bufs_.scores, out_idx, out);
        w.popMask();
    }

  private:
    SwBuffers bufs_;
    SwShape shape_;
    std::uint32_t chunkOffset_;
    Scoring scoring_;
};

/** CDP parent: launches every chunk as a child grid, then syncs. */
class SwCdpParent : public KernelBody
{
  public:
    SwCdpParent(const SwBuffers &bufs, const SwShape &shape,
                const Scoring &scoring)
        : bufs_(bufs), shape_(shape), scoring_(scoring)
    {
    }

    void
    runPhase(WarpCtx &w, int) override
    {
        w.constRead(2);
        for (std::uint32_t r = 0; r < shape_.rounds; ++r) {
            LaunchSpec child;
            child.name = "sw_chunk";
            child.grid = shape_.grid;
            child.cta = shape_.cta;
            child.res.regsPerThread = 32;
            child.body = std::make_shared<SwChunkKernel>(
                bufs_, shape_, r * shape_.pairsPerLaunch(), scoring_);
            w.emitInt(2);  // loop bookkeeping
            w.launchChild(child);
            // Double-buffered score staging: at most two chunks in
            // flight before the parent must drain.
            if (r % 2 == 1)
                w.deviceSync();
        }
        w.deviceSync();
    }

  private:
    SwBuffers bufs_;
    SwShape shape_;
    Scoring scoring_;
};

class SwApp : public BenchmarkApp
{
  public:
    std::string name() const override { return "SW"; }
    std::string fullName() const override { return "Smith-Waterman"; }

    AppRunResult
    run(rt::Device &dev, const AppOptions &opts) override
    {
        const SwShape shape = shapeFor(opts.scale);
        const Scoring scoring;
        Rng rng(opts.seed);

        const std::uint32_t pairs = shape.totalPairs();
        genomics::PairBatch batch;
        batch.queries.reserve(pairs);
        batch.targets.reserve(pairs);
        for (std::uint32_t p = 0; p < pairs; ++p) {
            batch.queries.push_back(
                genomics::randomDna(rng, shape.seqLen));
            batch.targets.push_back(
                genomics::randomDna(rng, shape.seqLen));
        }

        // Interleave pair-major so lane accesses coalesce.
        std::vector<char> q(std::size_t(shape.seqLen) * pairs);
        std::vector<char> t(q.size());
        for (std::uint32_t p = 0; p < pairs; ++p) {
            for (std::uint32_t i = 0; i < shape.seqLen; ++i) {
                q[std::size_t(i) * pairs + p] = batch.queries[p][i];
                t[std::size_t(i) * pairs + p] = batch.targets[p][i];
            }
        }

        SwBuffers bufs;
        bufs.totalPairs = pairs;
        auto dq = dev.alloc<char>(q.size());
        auto dt = dev.alloc<char>(t.size());
        auto ds = dev.alloc<std::int32_t>(pairs);
        bufs.query = dq.addr;
        bufs.target = dt.addr;
        bufs.scores = ds.addr;

        const Cycles start = dev.gpu().now();
        dev.upload(dq, q);
        dev.upload(dt, t);

        AppRunResult result;
        if (opts.cdp) {
            LaunchSpec parent;
            parent.name = "sw_cdp_parent";
            parent.grid = {1, 1, 1};
            parent.cta = {32, 1, 1};
            parent.res.regsPerThread = 32;
            parent.body =
                std::make_shared<SwCdpParent>(bufs, shape, scoring);
            result.kernelCycles += dev.launch(parent).cycles;
            result.primarySpec = parent;
        } else {
            for (std::uint32_t r = 0; r < shape.rounds; ++r) {
                LaunchSpec spec;
                spec.name = "sw_chunk";
                spec.grid = shape.grid;
                spec.cta = shape.cta;
                spec.res.regsPerThread = 32;
                spec.body = std::make_shared<SwChunkKernel>(
                    bufs, shape, r * shape.pairsPerLaunch(), scoring);
                result.kernelCycles += dev.launch(spec).cycles;
                if (r == 0)
                    result.primarySpec = spec;
            }
        }

        const auto gpu_scores = dev.download(ds);
        result.totalCycles = dev.gpu().now() - start;

        // CPU reference: verification + the Fig 2 CPU baseline timing.
        const auto cpu_start = std::chrono::steady_clock::now();
        bool ok = true;
        for (std::uint32_t p = 0; p < pairs; ++p) {
            const int expected =
                genomics::swScore(batch.queries[p], batch.targets[p],
                                  scoring).score;
            if (gpu_scores[p] != expected) {
                warn("SW: pair ", p, " GPU ", gpu_scores[p], " CPU ",
                     expected);
                ok = false;
            }
        }
        result.cpuReferenceSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - cpu_start).count();
        result.verified = ok;
        result.detail = std::to_string(pairs) + " pairs of length " +
                        std::to_string(shape.seqLen);
        return result;
    }
};

} // namespace

std::unique_ptr<BenchmarkApp>
makeSwApp()
{
    return std::make_unique<SwApp>();
}

} // namespace ggpu::kernels
