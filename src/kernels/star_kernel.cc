/**
 * @file
 * Center Star MSA benchmark (STAR): a CPU/GPU co-running pipeline like
 * CMSA. Kernel 1 computes all-pairs global-alignment scores (thread
 * per (i,j) pair over the upper triangle, so roughly half of each
 * warp's lanes are active — the sub-optimal warp occupancy Fig 10
 * reports). The host picks the center; kernel 2 aligns every sequence
 * to it (one thread per sequence, heavily divergent); the MSA merge
 * runs on the CPU. Table III: grid (12,1,1), CTA (256,1,1), protein
 * input, no shared memory. The CDP variant launches one small child
 * grid per matrix row / per sequence, whose mostly-empty warps are why
 * STAR-CDP shows >80% W1-4 occupancy — and why it halves the runtime
 * (Fig 2): children spread across otherwise idle SMs.
 */

#include "kernels/app.hh"

#include <algorithm>
#include <chrono>

#include "common/log.hh"
#include "common/random.hh"
#include "genomics/datagen.hh"
#include "genomics/align/nw.hh"
#include "genomics/msa/center_star.hh"
#include "sim/warp_ctx.hh"

namespace ggpu::kernels
{

namespace
{

using namespace ggpu::sim;
using genomics::Scoring;

struct StarShape
{
    std::uint32_t numSeqs;
    std::uint32_t seqLen;
    std::uint32_t gridX;

    Dim3 grid() const { return {gridX, 1, 1}; }
    Dim3 cta() const { return {256, 1, 1}; }
};

StarShape
shapeFor(InputScale scale)
{
    switch (scale) {
      case InputScale::Tiny: return {8, 24, 1};
      case InputScale::Small: return {16, 48, 4};
      case InputScale::Medium: return {24, 96, 12};  // Table III grid
    }
    panic("StarApp: unknown scale");
}

struct StarBuffers
{
    Addr seqs = 0;        //!< char, s[seq * len + pos]
    Addr pairScores = 0;  //!< int32 [numSeqs * numSeqs]
    Addr centerScores = 0;//!< int32 per sequence (vs the center)
    std::uint32_t numSeqs = 0;
    std::uint32_t len = 0;
};

/**
 * Warp-synchronous global-alignment DP for up to 32 lane-assigned
 * (a, b) sequence pairs, rolling rows in per-thread local memory.
 * Returns the per-lane NW score (linear gaps).
 */
LaneArray<std::int32_t>
warpNwDp(WarpCtx &w, LaneMask active, const StarBuffers &bufs,
         const std::array<std::uint32_t, warpSize> &seq_a,
         const std::array<std::uint32_t, warpSize> &seq_b,
         const Scoring &scoring)
{
    const std::uint32_t len = bufs.len;
    const int gap = scoring.gapExtend;

    std::array<std::vector<int>, warpSize> prev, curr;
    for (int lane = 0; lane < warpSize; ++lane) {
        auto &p = prev[std::size_t(lane)];
        p.resize(len + 1);
        for (std::uint32_t j = 0; j <= len; ++j)
            p[j] = int(j) * gap;
        curr[std::size_t(lane)].assign(len + 1, 0);
    }

    // Cache b per lane (strided gathers; poor coalescing is inherent
    // to the per-pair layout, as in the original CMSA kernels).
    std::array<std::array<char, 128>, warpSize> b_cache{};
    for (std::uint32_t j = 0; j < len; ++j) {
        LaneArray<std::uint32_t> idx = w.make<std::uint32_t>(
            [&](int lane) { return seq_b[std::size_t(lane)] * len + j; });
        auto base = w.loadGlobal<char>(bufs.seqs, idx);
        for (int lane = 0; lane < warpSize; ++lane)
            b_cache[std::size_t(lane)][j] = base[lane];
    }

    for (std::uint32_t i = 1; i <= len; ++i) {
        LaneArray<std::uint32_t> a_idx = w.make<std::uint32_t>(
            [&](int lane) {
                return seq_a[std::size_t(lane)] * len + (i - 1);
            });
        auto a = w.loadGlobal<char>(bufs.seqs, a_idx);

        std::int32_t dep = a.dep;
        for (std::uint32_t j = 1; j <= len; ++j) {
            // Register-blocked rows: one 16B local access per 4 cells.
            if (j % 4 == 1) {
                const std::int32_t ld =
                    w.localAccess(false, j / 4, 16, dep);
                dep = -1;
                w.emitInt(4, ld);
                w.localAccess(true, (len + 4) / 4 + j / 4, 16);
            } else {
                w.emitInt(4);
            }

            for (int lane = 0; lane < warpSize; ++lane) {
                if (!((active >> lane) & 1u))
                    continue;
                auto &p = prev[std::size_t(lane)];
                auto &c = curr[std::size_t(lane)];
                c[0] = int(i) * gap;
                const int subst = scoring.subst(
                    a[lane], b_cache[std::size_t(lane)][j - 1]);
                c[j] = std::max({p[j - 1] + subst, p[j] + gap,
                                 c[j - 1] + gap});
            }
        }
        for (int lane = 0; lane < warpSize; ++lane)
            std::swap(prev[std::size_t(lane)], curr[std::size_t(lane)]);
    }

    return w.make<std::int32_t>([&](int lane) {
        return ((active >> lane) & 1u)
            ? prev[std::size_t(lane)][len] : 0;
    });
}

/** Kernel 1: all-pairs scores over the upper triangle. */
class StarPairsKernel : public KernelBody
{
  public:
    StarPairsKernel(const StarBuffers &bufs, const Scoring &scoring,
                    int fixed_row = -1)
        : bufs_(bufs), scoring_(scoring), fixedRow_(fixed_row)
    {
    }

    void
    runPhase(WarpCtx &w, int) override
    {
        const std::uint32_t k = bufs_.numSeqs;
        w.constRead(4);

        std::array<std::uint32_t, warpSize> si{}, sj{};
        LaneMask active = 0;
        auto gid = w.globalTid();
        for (int lane = 0; lane < warpSize; ++lane) {
            if (!w.laneActive(lane))
                continue;
            std::uint32_t i, j;
            if (fixedRow_ >= 0) {
                // CDP child: this grid handles one matrix row.
                i = std::uint32_t(fixedRow_);
                j = gid[lane];
            } else {
                i = gid[lane] / k;
                j = gid[lane] % k;
            }
            if (i < k && j < k && i < j) {
                si[std::size_t(lane)] = i;
                sj[std::size_t(lane)] = j;
                active |= LaneMask(1) << lane;
            }
        }
        w.emitInt(3);  // index decompose + triangle test
        w.branchPoint();
        if (active == 0)
            return;
        w.pushMask(active);

        auto score = warpNwDp(w, active, bufs_, si, sj, scoring_);
        LaneArray<std::uint32_t> out_idx = w.make<std::uint32_t>(
            [&](int lane) {
                return si[std::size_t(lane)] * bufs_.numSeqs +
                       sj[std::size_t(lane)];
            });
        w.storeGlobal<std::int32_t>(bufs_.pairScores, out_idx, score);
        w.popMask();
    }

  private:
    StarBuffers bufs_;
    Scoring scoring_;
    int fixedRow_;
};

/** Kernel 2: align every sequence against the chosen center. */
class StarCenterKernel : public KernelBody
{
  public:
    StarCenterKernel(const StarBuffers &bufs, std::uint32_t center,
                     const Scoring &scoring, int fixed_seq = -1)
        : bufs_(bufs), center_(center), scoring_(scoring),
          fixedSeq_(fixed_seq)
    {
    }

    void
    runPhase(WarpCtx &w, int) override
    {
        const std::uint32_t k = bufs_.numSeqs;
        w.constRead(4);

        std::array<std::uint32_t, warpSize> si{}, sc{};
        LaneMask active = 0;
        auto gid = w.globalTid();
        for (int lane = 0; lane < warpSize; ++lane) {
            if (!w.laneActive(lane))
                continue;
            const std::uint32_t s =
                fixedSeq_ >= 0 && lane == 0 ? std::uint32_t(fixedSeq_)
                : (fixedSeq_ >= 0 ? k : gid[lane]);
            if (s < k && s != center_) {
                si[std::size_t(lane)] = s;
                sc[std::size_t(lane)] = center_;
                active |= LaneMask(1) << lane;
            }
        }
        w.emitInt(2);
        w.branchPoint();
        if (active == 0)
            return;
        w.pushMask(active);

        auto score = warpNwDp(w, active, bufs_, sc, si, scoring_);
        LaneArray<std::uint32_t> out_idx = w.make<std::uint32_t>(
            [&](int lane) { return si[std::size_t(lane)]; });
        w.storeGlobal<std::int32_t>(bufs_.centerScores, out_idx, score);
        w.popMask();
    }

  private:
    StarBuffers bufs_;
    std::uint32_t center_;
    Scoring scoring_;
    int fixedSeq_;
};

/** CDP parent for kernel 1: one child grid per matrix row. */
class StarPairsCdpParent : public KernelBody
{
  public:
    StarPairsCdpParent(const StarBuffers &bufs, const Scoring &scoring)
        : bufs_(bufs), scoring_(scoring)
    {
    }

    void
    runPhase(WarpCtx &w, int) override
    {
        w.constRead(2);
        for (std::uint32_t i = 0; i + 1 < bufs_.numSeqs; ++i) {
            LaunchSpec child;
            child.name = "star_pairs_row";
            child.grid = {(bufs_.numSeqs + 31) / 32, 1, 1};
            child.cta = {32, 1, 1};
            child.res.regsPerThread = 64;
            child.body = std::make_shared<StarPairsKernel>(
                bufs_, scoring_, int(i));
            w.emitInt(2);
            w.launchChild(child);
            // The score matrix is staged through a double-buffered
            // workspace: at most two row grids may be in flight.
            if (i % 2 == 1)
                w.deviceSync();
        }
        w.deviceSync();
    }

  private:
    StarBuffers bufs_;
    Scoring scoring_;
};

/** CDP parent for kernel 2: one single-thread child per sequence. */
class StarCenterCdpParent : public KernelBody
{
  public:
    StarCenterCdpParent(const StarBuffers &bufs, std::uint32_t center,
                        const Scoring &scoring)
        : bufs_(bufs), center_(center), scoring_(scoring)
    {
    }

    void
    runPhase(WarpCtx &w, int) override
    {
        w.constRead(2);
        for (std::uint32_t s = 0; s < bufs_.numSeqs; ++s) {
            if (s == center_)
                continue;
            LaunchSpec child;
            child.name = "star_center_seq";
            child.grid = {1, 1, 1};
            child.cta = {32, 1, 1};
            child.res.regsPerThread = 64;
            child.body = std::make_shared<StarCenterKernel>(
                bufs_, center_, scoring_, int(s));
            w.emitInt(2);
            w.launchChild(child);
        }
        w.deviceSync();
    }

  private:
    StarBuffers bufs_;
    std::uint32_t center_;
    Scoring scoring_;
};

class StarApp : public BenchmarkApp
{
  public:
    std::string name() const override { return "STAR"; }
    std::string
    fullName() const override
    {
        return "Center Star Multiple Sequence Alignment";
    }

    AppRunResult
    run(rt::Device &dev, const AppOptions &opts) override
    {
        const StarShape shape = shapeFor(opts.scale);
        const Scoring scoring;
        Rng rng(opts.seed ^ 0x57A2);

        const auto seq_set = genomics::makeProteinSet(
            rng, shape.numSeqs, shape.seqLen, 0.08);
        std::vector<std::string> seqs;
        for (const auto &s : seq_set)
            seqs.push_back(s.data);

        std::vector<char> flat(std::size_t(shape.numSeqs) *
                               shape.seqLen);
        for (std::uint32_t s = 0; s < shape.numSeqs; ++s)
            std::copy(seqs[s].begin(), seqs[s].end(),
                      flat.begin() + std::size_t(s) * shape.seqLen);

        StarBuffers bufs;
        bufs.numSeqs = shape.numSeqs;
        bufs.len = shape.seqLen;
        auto d_seqs = dev.alloc<char>(flat.size());
        auto d_pairs = dev.alloc<std::int32_t>(
            std::size_t(shape.numSeqs) * shape.numSeqs);
        auto d_center = dev.alloc<std::int32_t>(shape.numSeqs);
        bufs.seqs = d_seqs.addr;
        bufs.pairScores = d_pairs.addr;
        bufs.centerScores = d_center.addr;

        const Cycles start = dev.gpu().now();
        dev.upload(d_seqs, flat);

        AppRunResult result;

        // ---- Kernel 1: all-pairs scores ---------------------------
        if (opts.cdp) {
            LaunchSpec parent;
            parent.name = "star_pairs_cdp";
            parent.grid = {1, 1, 1};
            parent.cta = {32, 1, 1};
            parent.res.regsPerThread = 32;
            parent.body =
                std::make_shared<StarPairsCdpParent>(bufs, scoring);
            result.kernelCycles += dev.launch(parent).cycles;
            result.primarySpec = parent;
        } else {
            // Host-driven row sweep: one launch per score-matrix row,
            // serialized by the single in-order stream (the pattern
            // the CDP variant collapses into device-side launches).
            for (std::uint32_t row = 0; row + 1 < shape.numSeqs;
                 ++row) {
                LaunchSpec spec;
                spec.name = "star_pairs_row";
                spec.grid = shape.grid();
                spec.cta = shape.cta();
                spec.res.regsPerThread = 64;
                spec.body = std::make_shared<StarPairsKernel>(
                    bufs, scoring, int(row));
                result.kernelCycles += dev.launch(spec).cycles;
                if (row == 0)
                    result.primarySpec = spec;
            }
        }

        // ---- Host step: pick the center (co-running CPU part) ----
        const auto pair_scores = dev.download(d_pairs);
        std::vector<long long> sums(shape.numSeqs, 0);
        for (std::uint32_t i = 0; i < shape.numSeqs; ++i) {
            for (std::uint32_t j = i + 1; j < shape.numSeqs; ++j) {
                const int s = pair_scores[i * shape.numSeqs + j];
                sums[i] += s;
                sums[j] += s;
            }
        }
        const std::uint32_t center = std::uint32_t(
            std::max_element(sums.begin(), sums.end()) - sums.begin());

        // ---- Kernel 2: align everyone to the center ---------------
        if (opts.cdp) {
            LaunchSpec parent;
            parent.name = "star_center_cdp";
            parent.grid = {1, 1, 1};
            parent.cta = {32, 1, 1};
            parent.res.regsPerThread = 32;
            parent.body = std::make_shared<StarCenterCdpParent>(
                bufs, center, scoring);
            result.kernelCycles += dev.launch(parent).cycles;
        } else {
            LaunchSpec spec;
            spec.name = "star_center";
            spec.grid = shape.grid();
            spec.cta = shape.cta();
            spec.res.regsPerThread = 64;
            spec.body = std::make_shared<StarCenterKernel>(bufs, center,
                                                           scoring);
            result.kernelCycles += dev.launch(spec).cycles;
        }

        const auto center_scores = dev.download(d_center);
        result.totalCycles = dev.gpu().now() - start;

        // ---- Verification against the CPU reference ---------------
        const auto cpu_start = std::chrono::steady_clock::now();
        bool ok = true;
        const std::size_t expected_center =
            genomics::pickCenter(seqs, scoring);
        // Ties are broken identically (same sums, same argmax rule).
        if (expected_center != center) {
            warn("STAR: GPU center ", center, " != CPU center ",
                 expected_center);
            ok = false;
        }
        for (std::uint32_t s = 0; s < shape.numSeqs; ++s) {
            if (s == center)
                continue;
            const int expected =
                genomics::nwScore(seqs[center], seqs[s], scoring);
            if (center_scores[s] != expected) {
                warn("STAR: seq ", s, " GPU ", center_scores[s],
                     " CPU ", expected);
                ok = false;
            }
        }
        // Full CPU MSA for the Fig 2 baseline timing.
        const auto msa = genomics::centerStarAlign(seqs, scoring);
        (void)msa;
        result.cpuReferenceSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - cpu_start).count();
        result.verified = ok;
        result.detail = std::to_string(shape.numSeqs) + " proteins of " +
                        std::to_string(shape.seqLen) + " residues";
        return result;
    }
};

} // namespace

std::unique_ptr<BenchmarkApp>
makeStarApp()
{
    return std::make_unique<StarApp>();
}

} // namespace ggpu::kernels
