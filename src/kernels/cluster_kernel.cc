/**
 * @file
 * Greedy incremental clustering benchmark (CLUSTER, after nGIA): the
 * host processes length-sorted sequences in chunks; per chunk the GPU
 * runs (1) a short-word filter kernel — each thread streams one
 * query's k-mers from the shared-memory chunk cache against one
 * representative's bitmap profile with a deterministic early exit,
 * which is why most warps run with only a few live lanes (Fig 10:
 * W1-4 dominant) — and (2) an identity kernel that computes an
 * LCS-based identity by DP for the pairs that survived the filter.
 * The host performs the greedy assignment and uploads new
 * representative profiles. Table III: grid (128,1,1), CTA (128,1,1),
 * shared memory used. The CDP variant launches the filter/identity
 * stages as child grids from a per-chunk parent.
 */

#include "kernels/app.hh"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "common/log.hh"
#include "common/random.hh"
#include "genomics/align/nw.hh"
#include "genomics/cluster/greedy_cluster.hh"
#include "genomics/datagen.hh"
#include "sim/warp_ctx.hh"

namespace ggpu::kernels
{

namespace
{

using namespace ggpu::sim;
using genomics::Scoring;

constexpr int kWord = 5;                    //!< Short-word length
constexpr double kIdentityThreshold = 0.8;  //!< LCS / max-length
constexpr double kWordSlack = 0.6;          //!< Filter fraction factor

struct ClusterShape
{
    std::uint32_t numSeqs;
    std::uint32_t chunk;
    std::uint32_t seqLen;   //!< Family base length (jittered)
};

ClusterShape
shapeFor(InputScale scale)
{
    switch (scale) {
      case InputScale::Tiny: return {24, 12, 32};
      case InputScale::Small: return {64, 16, 56};
      case InputScale::Medium: return {128, 32, 96};
    }
    panic("ClusterApp: unknown scale");
}

struct ClusterBuffers
{
    Addr seqs = 0;      //!< char [seq][maxLen], padded with 'A'
    Addr lens = 0;      //!< u32 per sequence
    Addr profiles = 0;  //!< u32 [rep][profileWords] k-mer bitmaps
    Addr repIds = 0;    //!< u32 rep slot -> sequence index
    Addr results = 0;   //!< i32 [chunk*maxReps]: -1 filtered, else LCS
    std::uint32_t maxLen = 0;
    std::uint32_t maxReps = 0;
    std::uint32_t profileWords = 0;
};

/** Required shared-word count for a query (filter threshold). */
std::uint32_t
neededWords(std::uint32_t query_len)
{
    if (query_len < kWord)
        return 0;
    const double total = double(query_len - kWord + 1);
    return std::uint32_t(kIdentityThreshold * kWordSlack * total);
}

/**
 * Filter kernel: thread = (chunk query, representative). Streams the
 * query from shared memory, probes the rep's k-mer bitmap in global
 * memory, exits as soon as the outcome is decided. Writes 0 (pass)
 * or -1 (reject) to results.
 */
class ClusterFilterKernel : public KernelBody
{
  public:
    ClusterFilterKernel(const ClusterBuffers &bufs,
                        std::uint32_t chunk_first,
                        std::uint32_t chunk_size, std::uint32_t num_reps)
        : bufs_(bufs), chunkFirst_(chunk_first), chunkSize_(chunk_size),
          numReps_(num_reps)
    {
    }

    void
    runPhase(WarpCtx &w, int) override
    {
        w.constRead(2);
        auto gid = w.globalTid();

        struct LaneWork
        {
            std::uint32_t q = 0, rep = 0, qlen = 0, rlen = 0;
            std::uint32_t shared = 0, kmer = 0, code = 0;
            bool alive = false;
            std::string query;
            std::vector<std::uint32_t> profile;
        };
        std::array<LaneWork, warpSize> work;

        LaneMask active = 0;
        for (int lane = 0; lane < warpSize; ++lane) {
            if (!w.laneActive(lane))
                continue;
            const std::uint32_t q = gid[lane] / numReps_;
            const std::uint32_t rep = gid[lane] % numReps_;
            if (q >= chunkSize_)
                continue;
            LaneWork &lw = work[std::size_t(lane)];
            lw.q = q;
            lw.rep = rep;
            lw.alive = true;
            active |= LaneMask(1) << lane;
        }
        w.emitInt(3);
        if (active == 0)
            return;
        w.pushMask(active);

        // Lengths and functional data.
        LaneArray<std::uint32_t> qlen_idx = w.make<std::uint32_t>(
            [&](int lane) {
                return chunkFirst_ + work[std::size_t(lane)].q;
            });
        auto qlen = w.loadGlobal<std::uint32_t>(bufs_.lens, qlen_idx);
        LaneArray<std::uint32_t> rid_idx = w.make<std::uint32_t>(
            [&](int lane) { return work[std::size_t(lane)].rep; });
        auto rep_seq = w.loadGlobal<std::uint32_t>(bufs_.repIds,
                                                   rid_idx);
        LaneArray<std::uint32_t> rlen_idx = w.make<std::uint32_t>(
            [&](int lane) { return rep_seq[lane]; });
        auto rlen = w.loadGlobal<std::uint32_t>(bufs_.lens, rlen_idx);

        for (int lane = 0; lane < warpSize; ++lane) {
            if (!((active >> lane) & 1u))
                continue;
            LaneWork &lw = work[std::size_t(lane)];
            lw.qlen = qlen[lane];
            lw.rlen = rlen[lane];
            lw.query.resize(lw.qlen);
            w.mem().read(bufs_.seqs +
                             Addr(chunkFirst_ + lw.q) * bufs_.maxLen,
                         lw.query.data(), lw.qlen);
            lw.profile.resize(bufs_.profileWords);
            w.mem().read(bufs_.profiles +
                             Addr(lw.rep) * bufs_.profileWords * 4,
                         lw.profile.data(), bufs_.profileWords * 4);
        }

        // Length-ratio pre-filter (reps are never shorter).
        w.emitInt(2);
        LaneMask alive = 0;
        for (int lane = 0; lane < warpSize; ++lane) {
            if (!((active >> lane) & 1u))
                continue;
            LaneWork &lw = work[std::size_t(lane)];
            if (double(lw.qlen) >= 0.8 * double(lw.rlen) &&
                lw.qlen >= kWord)
                alive |= LaneMask(1) << lane;
            else
                lw.alive = false;
        }

        // K-mer streaming loop with deterministic early exit: a lane
        // retires once its decision is known. The shrinking mask is
        // the source of CLUSTER's W1-4-heavy occupancy.
        const std::uint32_t mask_code = (1u << (2 * kWord)) - 1;
        std::array<std::int32_t, warpSize> verdict;
        verdict.fill(-1);
        std::uint32_t step = 0;
        LaneMask running = alive;
        while (running) {
            w.branchPoint();
            w.pushMask(running);
            // Shared chunk-cache byte + profile-word probe.
            const std::int32_t ld = w.sharedNote(false, 1);
            LaneArray<std::uint32_t> word_idx = w.make<std::uint32_t>(
                [&](int lane) {
                    const LaneWork &lw = work[std::size_t(lane)];
                    return lw.rep * bufs_.profileWords +
                           (lw.code & mask_code) / 32;
                });
            auto word =
                w.loadGlobal<std::uint32_t>(bufs_.profiles, word_idx);
            w.emitInt(4, std::max(ld, word.dep));

            for (int lane = 0; lane < warpSize; ++lane) {
                if (!((running >> lane) & 1u))
                    continue;
                LaneWork &lw = work[std::size_t(lane)];
                lw.code = ((lw.code << 2) |
                           genomics::baseToCode(lw.query[step])) &
                          mask_code;
                if (step + 1 >= std::uint32_t(kWord)) {
                    const std::uint32_t bit = lw.code;
                    if (lw.profile[bit / 32] & (1u << (bit % 32)))
                        ++lw.shared;
                }
                const std::uint32_t total_kmers = lw.qlen - kWord + 1;
                const std::uint32_t need = neededWords(lw.qlen);
                const std::uint32_t done_kmers =
                    step + 1 >= std::uint32_t(kWord)
                        ? step + 2 - kWord : 0;
                const std::uint32_t remaining =
                    total_kmers - done_kmers;
                bool retire = false;
                if (step + 1 >= lw.qlen) {
                    verdict[std::size_t(lane)] =
                        lw.shared >= need ? 0 : -1;
                    retire = true;
                } else if (lw.shared >= need) {
                    verdict[std::size_t(lane)] = 0;  // already passing
                    retire = true;
                } else if (lw.shared + remaining < need) {
                    retire = true;  // can never pass
                }
                if (retire)
                    running &= ~(LaneMask(1) << lane);
            }
            w.popMask();
            ++step;
        }

        // Write verdicts.
        LaneArray<std::uint32_t> out_idx = w.make<std::uint32_t>(
            [&](int lane) {
                const LaneWork &lw = work[std::size_t(lane)];
                return lw.q * bufs_.maxReps + lw.rep;
            });
        LaneArray<std::int32_t> out = w.make<std::int32_t>(
            [&](int lane) { return verdict[std::size_t(lane)]; });
        w.storeGlobal<std::int32_t>(bufs_.results, out_idx, out);
        w.popMask();
    }

  private:
    ClusterBuffers bufs_;
    std::uint32_t chunkFirst_;
    std::uint32_t chunkSize_;
    std::uint32_t numReps_;
};

/**
 * Identity kernel: same thread domain; threads whose filter verdict
 * passed compute the LCS score (unit-match NW) between the query and
 * the representative, rolling rows in local memory.
 */
class ClusterIdentityKernel : public KernelBody
{
  public:
    ClusterIdentityKernel(const ClusterBuffers &bufs,
                          std::uint32_t chunk_first,
                          std::uint32_t chunk_size,
                          std::uint32_t num_reps)
        : bufs_(bufs), chunkFirst_(chunk_first), chunkSize_(chunk_size),
          numReps_(num_reps)
    {
    }

    void
    runPhase(WarpCtx &w, int) override
    {
        w.constRead(2);
        auto gid = w.globalTid();

        std::array<std::uint32_t, warpSize> q{}, rep{};
        LaneMask domain = 0;
        for (int lane = 0; lane < warpSize; ++lane) {
            if (!w.laneActive(lane))
                continue;
            const std::uint32_t qq = gid[lane] / numReps_;
            if (qq >= chunkSize_)
                continue;
            q[std::size_t(lane)] = qq;
            rep[std::size_t(lane)] = gid[lane] % numReps_;
            domain |= LaneMask(1) << lane;
        }
        w.emitInt(3);
        if (domain == 0)
            return;
        w.pushMask(domain);

        // Load the filter verdicts; only passing lanes do the DP.
        LaneArray<std::uint32_t> res_idx = w.make<std::uint32_t>(
            [&](int lane) {
                return q[std::size_t(lane)] * bufs_.maxReps +
                       rep[std::size_t(lane)];
            });
        auto verdict =
            w.loadGlobal<std::int32_t>(bufs_.results, res_idx);
        w.emitInt(1, verdict.dep);
        w.branchPoint();

        LaneMask pass = 0;
        for (int lane = 0; lane < warpSize; ++lane)
            if (((domain >> lane) & 1u) && verdict[lane] == 0)
                pass |= LaneMask(1) << lane;
        if (pass == 0) {
            w.popMask();
            return;
        }
        w.pushMask(pass);

        // Functional sequence fetch.
        struct LanePair
        {
            std::string a, b;
        };
        std::array<LanePair, warpSize> pairs;
        std::array<std::uint32_t, warpSize> la{}, lb{};
        LaneArray<std::uint32_t> qlen_idx = w.make<std::uint32_t>(
            [&](int lane) {
                return chunkFirst_ + q[std::size_t(lane)];
            });
        auto qlen = w.loadGlobal<std::uint32_t>(bufs_.lens, qlen_idx);
        LaneArray<std::uint32_t> rid_idx = w.make<std::uint32_t>(
            [&](int lane) { return rep[std::size_t(lane)]; });
        auto rep_seq =
            w.loadGlobal<std::uint32_t>(bufs_.repIds, rid_idx);
        LaneArray<std::uint32_t> rlen_idx = w.make<std::uint32_t>(
            [&](int lane) { return rep_seq[lane]; });
        auto rlen = w.loadGlobal<std::uint32_t>(bufs_.lens, rlen_idx);

        std::uint32_t max_q = 0, max_r = 0;
        for (int lane = 0; lane < warpSize; ++lane) {
            if (!((pass >> lane) & 1u))
                continue;
            la[std::size_t(lane)] = qlen[lane];
            lb[std::size_t(lane)] = rlen[lane];
            auto &lp = pairs[std::size_t(lane)];
            lp.a.resize(qlen[lane]);
            lp.b.resize(rlen[lane]);
            w.mem().read(bufs_.seqs + Addr(chunkFirst_ +
                                           q[std::size_t(lane)]) *
                                          bufs_.maxLen,
                         lp.a.data(), qlen[lane]);
            w.mem().read(bufs_.seqs + Addr(rep_seq[lane]) * bufs_.maxLen,
                         lp.b.data(), rlen[lane]);
            max_q = std::max(max_q, qlen[lane]);
            max_r = std::max(max_r, rlen[lane]);
        }

        // LCS DP, rolling rows in local memory; ragged lanes retire as
        // their rows run out (more divergence).
        std::array<std::vector<int>, warpSize> prev, curr;
        for (int lane = 0; lane < warpSize; ++lane) {
            prev[std::size_t(lane)].assign(
                lb[std::size_t(lane)] + 1, 0);
            curr[std::size_t(lane)] = prev[std::size_t(lane)];
        }

        for (std::uint32_t i = 1; i <= max_q; ++i) {
            LaneMask row_mask = 0;
            for (int lane = 0; lane < warpSize; ++lane)
                if (((pass >> lane) & 1u) && i <= la[std::size_t(lane)])
                    row_mask |= LaneMask(1) << lane;
            w.branchPoint();
            if (row_mask == 0)
                break;
            w.pushMask(row_mask);
            // One global byte for the query row base.
            LaneArray<std::uint32_t> a_idx = w.make<std::uint32_t>(
                [&](int lane) {
                    return (chunkFirst_ + q[std::size_t(lane)]) *
                               bufs_.maxLen + (i - 1) % bufs_.maxLen;
                });
            auto a = w.loadGlobal<char>(bufs_.seqs, a_idx);
            std::int32_t dep = a.dep;
            for (std::uint32_t j = 1; j <= max_r; ++j) {
                // Register-blocked rows: one 16B local access / 4 cells.
                if (j % 4 == 1) {
                    const std::int32_t ld =
                        w.localAccess(false, j / 4, 16, dep);
                    dep = -1;
                    w.emitInt(3, ld);
                    w.localAccess(true,
                                  (bufs_.maxLen + 4) / 4 + j / 4, 16);
                } else {
                    w.emitInt(3);
                }
                for (int lane = 0; lane < warpSize; ++lane) {
                    if (!((row_mask >> lane) & 1u) ||
                        j > lb[std::size_t(lane)])
                        continue;
                    auto &p = prev[std::size_t(lane)];
                    auto &c = curr[std::size_t(lane)];
                    const auto &lp = pairs[std::size_t(lane)];
                    const int match =
                        lp.a[i - 1] == lp.b[j - 1] ? 1 : 0;
                    c[j] = std::max({p[j - 1] + match, p[j], c[j - 1]});
                }
            }
            for (int lane = 0; lane < warpSize; ++lane)
                std::swap(prev[std::size_t(lane)],
                          curr[std::size_t(lane)]);
            w.popMask();
        }

        LaneArray<std::int32_t> out = w.make<std::int32_t>(
            [&](int lane) {
                return ((pass >> lane) & 1u)
                    ? prev[std::size_t(lane)][lb[std::size_t(lane)]]
                    : -1;
            });
        w.storeGlobal<std::int32_t>(bufs_.results, res_idx, out);
        w.popMask();
        w.popMask();
    }

  private:
    ClusterBuffers bufs_;
    std::uint32_t chunkFirst_;
    std::uint32_t chunkSize_;
    std::uint32_t numReps_;
};

/** CDP parent: filter then identity as synchronized child grids. */
class ClusterCdpParent : public KernelBody
{
  public:
    ClusterCdpParent(const ClusterBuffers &bufs,
                     std::uint32_t chunk_first, std::uint32_t chunk_size,
                     std::uint32_t num_reps, Dim3 stage_grid)
        : bufs_(bufs), chunkFirst_(chunk_first), chunkSize_(chunk_size),
          numReps_(num_reps), stageGrid_(stage_grid)
    {
    }

    void
    runPhase(WarpCtx &w, int) override
    {
        w.constRead(2);
        LaunchSpec filter;
        filter.name = "cluster_filter";
        filter.grid = stageGrid_;
        filter.cta = {128, 1, 1};
        filter.res.regsPerThread = 32;
        filter.res.smemPerCtaBytes = 8 * 1024;
        filter.body = std::make_shared<ClusterFilterKernel>(
            bufs_, chunkFirst_, chunkSize_, numReps_);
        w.launchChild(filter);
        w.deviceSync();

        LaunchSpec ident;
        ident.name = "cluster_identity";
        ident.grid = stageGrid_;
        ident.cta = {128, 1, 1};
        ident.res.regsPerThread = 40;
        ident.res.smemPerCtaBytes = 8 * 1024;
        ident.body = std::make_shared<ClusterIdentityKernel>(
            bufs_, chunkFirst_, chunkSize_, numReps_);
        w.launchChild(ident);
        w.deviceSync();
    }

  private:
    ClusterBuffers bufs_;
    std::uint32_t chunkFirst_;
    std::uint32_t chunkSize_;
    std::uint32_t numReps_;
    Dim3 stageGrid_;
};

class ClusterApp : public BenchmarkApp
{
  public:
    std::string name() const override { return "CLUSTER"; }
    std::string
    fullName() const override
    {
        return "Greedy incremental alignment clustering (nGIA)";
    }

    AppRunResult
    run(rt::Device &dev, const AppOptions &opts) override
    {
        const ClusterShape shape = shapeFor(opts.scale);
        Rng rng(opts.seed ^ 0xC1u);

        auto raw = genomics::makeFamilies(
            rng, std::max<std::size_t>(2, shape.numSeqs / 8), 8,
            shape.seqLen, 0.012, 0.04);
        raw.resize(shape.numSeqs);

        // Length-sorted processing order (greedy invariant).
        std::stable_sort(raw.begin(), raw.end(),
                         [](const auto &a, const auto &b) {
                             return a.data.size() > b.data.size();
                         });

        const std::uint32_t max_len = std::uint32_t(raw[0].data.size());
        const std::uint32_t profile_words =
            (1u << (2 * kWord)) / 32 + 1;

        ClusterBuffers bufs;
        bufs.maxLen = max_len;
        bufs.maxReps = shape.numSeqs;
        bufs.profileWords = profile_words;
        auto d_seqs = dev.alloc<char>(std::size_t(shape.numSeqs) *
                                      max_len);
        auto d_lens = dev.alloc<std::uint32_t>(shape.numSeqs);
        auto d_prof = dev.alloc<std::uint32_t>(
            std::size_t(shape.numSeqs) * profile_words);
        auto d_rep_ids = dev.alloc<std::uint32_t>(shape.numSeqs);
        auto d_results = dev.alloc<std::int32_t>(
            std::size_t(shape.chunk) * shape.numSeqs);
        bufs.seqs = d_seqs.addr;
        bufs.lens = d_lens.addr;
        bufs.profiles = d_prof.addr;
        bufs.repIds = d_rep_ids.addr;
        bufs.results = d_results.addr;

        std::vector<char> flat(std::size_t(shape.numSeqs) * max_len,
                               'A');
        std::vector<std::uint32_t> lens(shape.numSeqs);
        for (std::uint32_t s = 0; s < shape.numSeqs; ++s) {
            std::copy(raw[s].data.begin(), raw[s].data.end(),
                      flat.begin() + std::size_t(s) * max_len);
            lens[s] = std::uint32_t(raw[s].data.size());
        }

        const Cycles start = dev.gpu().now();
        dev.upload(d_seqs, flat);
        dev.upload(d_lens, lens);

        AppRunResult result;
        std::vector<int> assignment(shape.numSeqs, -1);
        std::vector<std::uint32_t> reps;  // sequence indices

        auto add_rep = [&](std::uint32_t seq_idx) {
            const auto profile =
                genomics::kmerProfile(raw[seq_idx].data, kWord);
            dev.copyIn(bufs.profiles +
                           Addr(reps.size()) * profile_words * 4,
                       profile.data(), profile.size() * 4);
            const std::uint32_t id32 = seq_idx;
            dev.copyIn(bufs.repIds + Addr(reps.size()) * 4, &id32, 4);
            reps.push_back(seq_idx);
        };

        for (std::uint32_t first = 0; first < shape.numSeqs;
             first += shape.chunk) {
            const std::uint32_t size =
                std::min(shape.chunk, shape.numSeqs - first);

            if (reps.empty()) {
                // Bootstrap: the longest sequence seeds cluster 0.
                add_rep(first);
                assignment[first] = 0;
            }

            const std::uint32_t num_reps =
                std::uint32_t(reps.size());
            const std::uint32_t threads = size * num_reps;
            Dim3 stage_grid{(threads + 127) / 128, 1, 1};

            if (opts.cdp) {
                LaunchSpec parent;
                parent.name = "cluster_cdp_parent";
                parent.grid = {1, 1, 1};
                parent.cta = {32, 1, 1};
                parent.res.regsPerThread = 32;
                parent.body = std::make_shared<ClusterCdpParent>(
                    bufs, first, size, num_reps, stage_grid);
                result.kernelCycles += dev.launch(parent).cycles;
                if (first == 0)
                    result.primarySpec = parent;
            } else {
                LaunchSpec filter;
                filter.name = "cluster_filter";
                filter.grid = stage_grid;
                filter.cta = {128, 1, 1};
                filter.res.regsPerThread = 32;
                filter.res.smemPerCtaBytes = 8 * 1024;
                filter.body = std::make_shared<ClusterFilterKernel>(
                    bufs, first, size, num_reps);
                result.kernelCycles += dev.launch(filter).cycles;
                if (first == 0)
                    result.primarySpec = filter;

                LaunchSpec ident;
                ident.name = "cluster_identity";
                ident.grid = stage_grid;
                ident.cta = {128, 1, 1};
                ident.res.regsPerThread = 40;
                ident.res.smemPerCtaBytes = 8 * 1024;
                ident.body = std::make_shared<ClusterIdentityKernel>(
                    bufs, first, size, num_reps);
                result.kernelCycles += dev.launch(ident).cycles;
            }

            // Download scores; greedy-assign on the host.
            std::vector<std::int32_t> scores(std::size_t(size) *
                                             bufs.maxReps);
            dev.copyOut(scores.data(), bufs.results,
                        scores.size() * 4);
            for (std::uint32_t qi = 0; qi < size; ++qi) {
                const std::uint32_t seq = first + qi;
                if (assignment[seq] >= 0)
                    continue;  // bootstrap rep
                int chosen = -1;
                for (std::uint32_t r = 0; r < num_reps; ++r) {
                    const std::int32_t lcs =
                        scores[qi * bufs.maxReps + r];
                    if (lcs < 0)
                        continue;
                    const double denom = double(std::max(
                        lens[seq], lens[reps[r]]));
                    if (double(lcs) / denom >= kIdentityThreshold) {
                        chosen = int(r);
                        break;
                    }
                }
                if (chosen < 0) {
                    chosen = int(reps.size());
                    add_rep(seq);
                }
                assignment[seq] = chosen;
            }
        }

        result.totalCycles = dev.gpu().now() - start;

        // ---- CPU verification: replay the same chunked pipeline ----
        const auto cpu_start = std::chrono::steady_clock::now();
        Scoring lcs_scoring;
        lcs_scoring.match = 1;
        lcs_scoring.mismatch = 0;
        lcs_scoring.gapOpen = 0;
        lcs_scoring.gapExtend = 0;

        std::vector<int> expected(shape.numSeqs, -1);
        std::vector<std::uint32_t> cpu_reps;
        for (std::uint32_t first = 0; first < shape.numSeqs;
             first += shape.chunk) {
            const std::uint32_t size =
                std::min(shape.chunk, shape.numSeqs - first);
            if (cpu_reps.empty()) {
                cpu_reps.push_back(first);
                expected[first] = 0;
            }
            const std::uint32_t num_reps =
                std::uint32_t(cpu_reps.size());
            for (std::uint32_t qi = 0; qi < size; ++qi) {
                const std::uint32_t seq = first + qi;
                if (expected[seq] >= 0)
                    continue;
                int chosen = -1;
                for (std::uint32_t r = 0; r < num_reps; ++r) {
                    const auto &query = raw[seq].data;
                    const auto &rep = raw[cpu_reps[r]].data;
                    if (double(query.size()) <
                            0.8 * double(rep.size()) ||
                        query.size() < kWord)
                        continue;
                    const auto prof =
                        genomics::kmerProfile(rep, kWord);
                    const double frac = genomics::sharedWordFraction(
                        prof, query, kWord);
                    const std::uint32_t total =
                        std::uint32_t(query.size()) - kWord + 1;
                    if (std::uint32_t(frac * double(total) + 0.5) <
                        neededWords(std::uint32_t(query.size())))
                        continue;
                    const int lcs =
                        genomics::nwScore(query, rep, lcs_scoring);
                    const double denom = double(
                        std::max(query.size(), rep.size()));
                    if (double(lcs) / denom >= kIdentityThreshold) {
                        chosen = int(r);
                        break;
                    }
                }
                if (chosen < 0) {
                    chosen = int(cpu_reps.size());
                    cpu_reps.push_back(seq);
                }
                expected[seq] = chosen;
            }
        }
        result.cpuReferenceSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - cpu_start).count();

        bool ok = assignment == expected;
        if (!ok)
            warn("CLUSTER: GPU assignment differs from CPU replay");
        result.verified = ok;
        result.detail = std::to_string(reps.size()) + " clusters over " +
                        std::to_string(shape.numSeqs) + " sequences";
        return result;
    }
};

} // namespace

std::unique_ptr<BenchmarkApp>
makeClusterApp()
{
    return std::make_unique<ClusterApp>();
}

} // namespace ggpu::kernels
