/**
 * @file
 * Pair-HMM benchmark (PairHMM): one CTA evaluates the forward
 * algorithm for one (read, haplotype) pair along anti-diagonals; the
 * rolling M/I/D diagonals live in shared memory, which is why >95% of
 * this kernel's memory instructions are shared accesses (Fig 9) and
 * why the shared-memory-off variant is catastrophically slower
 * (Fig 7: 36.92x in the paper — every diagonal then round-trips
 * through L2). Heavily floating-point (Fig 8); per-base error
 * probabilities are computed with SFU pow ops. Table III: grid
 * (150,1,1), CTA (128,1,1), synthetic 128x128 data. The CDP variant
 * launches per-pair child grids from a parent.
 */

#include "kernels/app.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>

#include "common/log.hh"
#include "common/random.hh"
#include "genomics/datagen.hh"
#include "genomics/hmm/pairhmm.hh"
#include "sim/warp_ctx.hh"

namespace ggpu::kernels
{

namespace
{

using namespace ggpu::sim;
using genomics::PairHmmParams;

struct HmmShape
{
    std::uint32_t readLen;
    std::uint32_t hapLen;
    std::uint32_t pairs;   //!< == grid.x (one CTA per pair)

    Dim3 grid() const { return {pairs, 1, 1}; }
    Dim3 cta() const { return {128, 1, 1}; }
    std::uint32_t diagonals() const { return readLen + hapLen + 1; }
};

HmmShape
shapeFor(InputScale scale)
{
    switch (scale) {
      case InputScale::Tiny: return {16, 24, 6};
      case InputScale::Small: return {40, 48, 60};
      case InputScale::Medium: return {96, 96, 150};  // Table III grid
    }
    panic("PairHmmApp: unknown scale");
}

struct HmmBuffers
{
    Addr reads = 0;     //!< char [pair][readLen]
    Addr quals = 0;     //!< char [pair][readLen]
    Addr haps = 0;      //!< char [pair][hapLen]
    Addr scratch = 0;   //!< float scratch for the no-shared variant
    Addr results = 0;   //!< double log10-likelihood per pair
    std::uint32_t pairs = 0;
};

/** Per-CTA functional forward state (cross-warp, so body-held). */
struct HmmCtaState
{
    struct Cell
    {
        double m = 0.0, i = 0.0, d = 0.0;
    };
    std::vector<Cell> d2, d1, d0;  //!< Rolling anti-diagonals
    double likelihood = 0.0;
    std::vector<double> err;       //!< Per-read-base error prob
    std::string read, qual, hap;
};

/** Anti-diagonal forward evaluation for one pair per CTA. */
class PairHmmKernel : public KernelBody
{
  public:
    PairHmmKernel(const HmmBuffers &bufs, const HmmShape &shape,
                  const PairHmmParams &params, bool use_shared,
                  int fixed_pair = -1)
        : bufs_(bufs), shape_(shape), params_(params),
          useShared_(use_shared), fixedPair_(fixed_pair)
    {
    }

    int
    numPhases(Dim3, Dim3) const override
    {
        return int(shape_.diagonals()) + 2;  // load, diagonals, store
    }

    void
    runPhase(WarpCtx &w, int phase) override
    {
        const std::uint32_t n = shape_.readLen;
        // CDP children cover a base-offset slice of the pairs; host
        // launches map CTA index to pair directly.
        const std::uint32_t pair = std::uint32_t(
            (fixedPair_ >= 0 ? std::uint32_t(fixedPair_) : 0) +
            w.ctaLinear());
        if (pair >= bufs_.pairs)
            return;
        HmmCtaState &state = states_[pair];

        // Lanes cover read positions i (0..n).
        auto i_arr = w.tid();
        LaneMask rows = 0;
        for (int lane = 0; lane < warpSize; ++lane)
            if (w.laneActive(lane) && i_arr[lane] <= n)
                rows |= LaneMask(1) << lane;
        w.emitInt(1);

        if (phase == 0) {
            loadPhase(w, pair, rows, i_arr, state);
            return;
        }
        if (phase == int(shape_.diagonals()) + 1) {
            storePhase(w, pair, rows, i_arr, state);
            return;
        }

        const std::uint32_t d = std::uint32_t(phase - 1);
        const std::uint32_t m = shape_.hapLen;
        const std::uint32_t ilo = d > m ? d - m : 0;
        const std::uint32_t ihi = std::min(d, n);

        // Rotate the rolling diagonals exactly once per phase, before
        // any warp computes (warp 0 always runs first in a phase).
        if (w.warpInCta() == 0 && d > 0) {
            std::swap(state.d2, state.d1);
            std::swap(state.d1, state.d0);
        }

        LaneMask cells = 0;
        for (int lane = 0; lane < warpSize; ++lane) {
            const std::uint32_t i = i_arr[lane];
            if (((rows >> lane) & 1u) && i >= ilo && i <= ihi)
                cells |= LaneMask(1) << lane;
        }
        w.emitInt(2);
        w.branchPoint();
        if (cells == 0)
            return;
        w.pushMask(cells);

        // Emission: 7 diagonal reads + 3 writes per cell, through
        // shared memory or (Fig 7 variant) global scratch.
        std::int32_t dep = -1;
        if (useShared_) {
            dep = w.sharedNote(false, 4);
            for (int r = 0; r < 6; ++r)
                w.sharedNote(false, 4);
        } else {
            LaneArray<std::uint32_t> sidx = w.make<std::uint32_t>(
                [&](int lane) {
                    return pair * 4096 + (d % 3) * 1024 + i_arr[lane];
                });
            dep = w.memNote(false, MemSpace::Global, bufs_.scratch,
                            sidx, 4);
            for (int r = 0; r < 6; ++r)
                w.memNote(false, MemSpace::Global, bufs_.scratch, sidx,
                          4);
        }
        w.emitFp(9, dep);  // three-state recurrence

        const genomics::PairHmmParams &p = params_;
        const double mm = 1.0 - 2.0 * p.gapOpen;
        const double mx = p.gapOpen;
        const double xx = p.gapExtend;
        const double xm = 1.0 - p.gapExtend;
        const double init = 1.0 / double(m);

        for (int lane = 0; lane < warpSize; ++lane) {
            if (!((cells >> lane) & 1u))
                continue;
            const std::uint32_t i = i_arr[lane];
            const std::uint32_t j = d - i;
            HmmCtaState::Cell cell;
            if (i == 0) {
                cell.d = init;
            } else if (j == 0) {
                // all-zero column
            } else {
                const double err = state.err[i - 1];
                const double emit =
                    state.read[i - 1] == state.hap[j - 1]
                        ? 1.0 - err : err / 3.0;
                const auto &up_left = state.d2[i - 1];
                const auto &up = state.d1[i - 1];
                const auto &left = state.d1[i];
                cell.m = emit * (mm * up_left.m +
                                 xm * (up_left.i + up_left.d));
                cell.i = mx * up.m + xx * up.i;
                cell.d = mx * left.m + xx * left.d;
            }
            state.d0[i] = cell;
            if (i == n && j >= 1)
                state.likelihood += cell.m + cell.i;
        }

        // Write back the new diagonal.
        if (useShared_) {
            w.sharedNote(true, 4);
            w.sharedNote(true, 4);
            w.sharedNote(true, 4);
        } else {
            LaneArray<std::uint32_t> sidx = w.make<std::uint32_t>(
                [&](int lane) {
                    return pair * 4096 + (d % 3) * 1024 + i_arr[lane];
                });
            for (int r = 0; r < 3; ++r)
                w.memNote(true, MemSpace::Global, bufs_.scratch, sidx,
                          4);
        }

        w.popMask();
    }

  private:
    void
    loadPhase(WarpCtx &w, std::uint32_t pair, LaneMask rows,
              const LaneArray<std::uint32_t> &i_arr, HmmCtaState &state)
    {
        const std::uint32_t n = shape_.readLen;
        const std::uint32_t m = shape_.hapLen;
        w.constRead(4);  // transition parameters

        if (w.warpInCta() == 0 && state.read.empty()) {
            // Functional load of the pair's data (once per CTA).
            state.read.resize(n);
            state.qual.resize(n);
            state.hap.resize(m);
            w.mem().read(bufs_.reads + Addr(pair) * n,
                         state.read.data(), n);
            w.mem().read(bufs_.quals + Addr(pair) * n,
                         state.qual.data(), n);
            w.mem().read(bufs_.haps + Addr(pair) * m,
                         state.hap.data(), m);
            state.err.resize(n);
            for (std::uint32_t i = 0; i < n; ++i) {
                state.err[i] =
                    std::pow(10.0, -(state.qual[i] - 33) / 10.0);
            }
            state.d2.assign(n + 1, {});
            state.d1.assign(n + 1, {});
            state.d0.assign(n + 1, {});
            const double init = 1.0 / double(m);
            // Diagonal -1 equivalents start empty; the i==0 boundary
            // in the compute phases injects the D-row mass.
            (void)init;
        }

        if (rows == 0)
            return;
        w.pushMask(rows);
        // Read/qual/hap gathers into shared (timed traffic).
        LaneArray<std::uint32_t> idx = w.make<std::uint32_t>(
            [&](int lane) { return pair * n + i_arr[lane] % n; });
        auto r = w.loadGlobal<char>(bufs_.reads, idx);
        auto q = w.loadGlobal<char>(bufs_.quals, idx);
        LaneArray<std::uint32_t> hidx = w.make<std::uint32_t>(
            [&](int lane) { return pair * m + i_arr[lane] % m; });
        auto h = w.loadGlobal<char>(bufs_.haps, hidx);
        w.emitSfu(1, q.dep);  // pow10 for the error probability
        w.sharedNote(true, 1, r.dep);
        w.sharedNote(true, 1, q.dep);
        w.sharedNote(true, 1, h.dep);
        w.popMask();
    }

    void
    storePhase(WarpCtx &w, std::uint32_t pair, LaneMask rows,
               const LaneArray<std::uint32_t> &i_arr,
               HmmCtaState &state)
    {
        if (rows == 0)
            return;
        // Lane holding i == n writes the final likelihood.
        for (int lane = 0; lane < warpSize; ++lane) {
            if (((rows >> lane) & 1u) &&
                i_arr[lane] == shape_.readLen) {
                w.pushMask(LaneMask(1) << lane);
                const double ll = state.likelihood <= 0.0
                    ? -400.0 : std::log10(state.likelihood);
                LaneArray<std::uint32_t> out_idx =
                    w.broadcast<std::uint32_t>(pair);
                LaneArray<double> out = w.broadcast<double>(ll);
                w.emitSfu(1);  // log10
                w.storeGlobal<double>(bufs_.results, out_idx, out);
                w.popMask();
            }
        }
        // Free the functional state once the final warp is done with
        // it (earlier warps must not invalidate the reference).
        const std::uint32_t row_warps =
            (shape_.readLen + 1 + warpSize - 1) /
            std::uint32_t(warpSize);
        if (std::uint32_t(w.warpInCta()) == row_warps - 1)
            states_.erase(pair);
    }

    HmmBuffers bufs_;
    HmmShape shape_;
    PairHmmParams params_;
    bool useShared_;
    int fixedPair_;
    std::map<std::uint32_t, HmmCtaState> states_;
};

/** CDP parent: one child grid per pair. */
class PairHmmCdpParent : public KernelBody
{
  public:
    PairHmmCdpParent(const HmmBuffers &bufs, const HmmShape &shape,
                     const PairHmmParams &params, bool use_shared)
        : bufs_(bufs), shape_(shape), params_(params),
          useShared_(use_shared)
    {
    }

    void
    runPhase(WarpCtx &w, int) override
    {
        w.constRead(2);
        // Each parent warp launches its slice as child grids of four
        // CTAs (one pair per CTA), amortizing the device-launch cost.
        constexpr std::uint32_t perWarp = 8;
        constexpr std::uint32_t perChild = 4;
        const std::uint32_t first =
            std::uint32_t(w.ctaLinear()) * perWarp;
        for (std::uint32_t p = first;
             p < std::min(first + perWarp, shape_.pairs);
             p += perChild) {
            LaunchSpec child;
            child.name = "pairhmm_pairs";
            child.grid = {std::min(perChild, shape_.pairs - p), 1, 1};
            child.cta = shape_.cta();
            child.res.regsPerThread = 48;
            child.res.smemPerCtaBytes = 10 * 1024;
            child.body = std::make_shared<PairHmmKernel>(
                bufs_, shape_, params_, useShared_, int(p));
            w.emitInt(2);
            w.launchChild(child);
        }
        w.deviceSync();
    }

  private:
    HmmBuffers bufs_;
    HmmShape shape_;
    PairHmmParams params_;
    bool useShared_;
};

class PairHmmApp : public BenchmarkApp
{
  public:
    std::string name() const override { return "PairHMM"; }
    std::string
    fullName() const override
    {
        return "Pair Hidden Markov Model forward";
    }

    AppRunResult
    run(rt::Device &dev, const AppOptions &opts) override
    {
        const HmmShape shape = shapeFor(opts.scale);
        const PairHmmParams params;
        Rng rng(opts.seed ^ 0x44aa);

        // Synthetic read/haplotype pairs: reads sampled from the hap
        // with errors, plausible qualities (Synthetic_data(128_128)).
        std::vector<std::string> reads(shape.pairs), quals(shape.pairs),
            haps(shape.pairs);
        for (std::uint32_t p = 0; p < shape.pairs; ++p) {
            haps[p] = genomics::randomDna(rng, shape.hapLen);
            const std::size_t off =
                rng.below(shape.hapLen - shape.readLen + 1);
            reads[p] = haps[p].substr(off, shape.readLen);
            quals[p].assign(shape.readLen, 'I');
            for (std::uint32_t i = 0; i < shape.readLen; ++i) {
                if (rng.chance(0.02)) {
                    char c = reads[p][i];
                    while (c == reads[p][i])
                        c = "ACGT"[rng.below(4)];
                    reads[p][i] = c;
                    quals[p][i] = '(';  // Q7
                }
            }
        }

        std::vector<char> flat_r(std::size_t(shape.pairs) *
                                 shape.readLen);
        std::vector<char> flat_q(flat_r.size());
        std::vector<char> flat_h(std::size_t(shape.pairs) *
                                 shape.hapLen);
        for (std::uint32_t p = 0; p < shape.pairs; ++p) {
            std::copy(reads[p].begin(), reads[p].end(),
                      flat_r.begin() + std::size_t(p) * shape.readLen);
            std::copy(quals[p].begin(), quals[p].end(),
                      flat_q.begin() + std::size_t(p) * shape.readLen);
            std::copy(haps[p].begin(), haps[p].end(),
                      flat_h.begin() + std::size_t(p) * shape.hapLen);
        }

        HmmBuffers bufs;
        bufs.pairs = shape.pairs;
        auto dr = dev.alloc<char>(flat_r.size());
        auto dq = dev.alloc<char>(flat_q.size());
        auto dh = dev.alloc<char>(flat_h.size());
        auto dscratch =
            dev.alloc<float>(std::size_t(shape.pairs) * 4096);
        auto dres = dev.alloc<double>(shape.pairs);
        bufs.reads = dr.addr;
        bufs.quals = dq.addr;
        bufs.haps = dh.addr;
        bufs.scratch = dscratch.addr;
        bufs.results = dres.addr;

        const Cycles start = dev.gpu().now();
        dev.upload(dr, flat_r);
        dev.upload(dq, flat_q);
        dev.upload(dh, flat_h);

        AppRunResult result;
        if (opts.cdp) {
            LaunchSpec parent;
            parent.name = "pairhmm_cdp_parent";
            parent.grid = {(shape.pairs + 7) / 8, 1, 1};
            parent.cta = {32, 1, 1};
            parent.res.regsPerThread = 32;
            parent.body = std::make_shared<PairHmmCdpParent>(
                bufs, shape, params, opts.sharedMem);
            result.kernelCycles += dev.launch(parent).cycles;
            result.primarySpec = parent;
        } else {
            // Host pipeline: pairs are processed as two sequential
            // region batches (the HaplotypeCaller pattern); the CDP
            // variant overlaps them via device launches.
            const std::uint32_t half = (shape.pairs + 1) / 2;
            for (std::uint32_t base = 0; base < shape.pairs;
                 base += half) {
                LaunchSpec spec;
                spec.name = "pairhmm_forward";
                spec.grid = {std::min(half, shape.pairs - base), 1, 1};
                spec.cta = shape.cta();
                spec.res.regsPerThread = 48;
                spec.res.smemPerCtaBytes =
                    opts.sharedMem ? 10 * 1024 : 0;
                spec.body = std::make_shared<PairHmmKernel>(
                    bufs, shape, params, opts.sharedMem, int(base));
                result.kernelCycles += dev.launch(spec).cycles;
                if (base == 0)
                    result.primarySpec = spec;
            }
        }

        const auto gpu_ll = dev.download(dres);
        result.totalCycles = dev.gpu().now() - start;

        const auto cpu_start = std::chrono::steady_clock::now();
        bool ok = true;
        for (std::uint32_t p = 0; p < shape.pairs; ++p) {
            const double expected = genomics::pairHmmForward(
                reads[p], quals[p], haps[p], params);
            if (std::abs(gpu_ll[p] - expected) > 1e-9) {
                warn("PairHMM: pair ", p, " GPU ", gpu_ll[p], " CPU ",
                     expected);
                ok = false;
            }
        }
        result.cpuReferenceSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - cpu_start).count();
        result.verified = ok;
        result.detail = std::to_string(shape.pairs) + " pairs " +
                        std::to_string(shape.readLen) + "x" +
                        std::to_string(shape.hapLen);
        return result;
    }
};

} // namespace

std::unique_ptr<BenchmarkApp>
makePairHmmApp()
{
    return std::make_unique<PairHmmApp>();
}

} // namespace ggpu::kernels
