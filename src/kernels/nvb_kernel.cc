/**
 * @file
 * NvBowtie benchmark (NvB): FM-index short-read mapping in the NVBIO
 * style. The host builds the FM-index and streams read batches; per
 * batch the GPU runs three short stage kernels — seed (backward
 * search, two occurrence-table texture fetches per step), locate
 * (suffix-array lookups), extend (banded semi-global scoring around
 * each anchor) — so execution is dominated by kernel-launch setup
 * ("functional done" stalls, Fig 5) and random texture/global traffic
 * with very high L1/L2 miss rates (Figs 13-14). Table III: grid
 * (2048,1,1), CTA (256,1,1), hg19 + SRR493095 (synthetic equivalents
 * here). The CDP variant launches the stage kernels from a per-batch
 * parent kernel.
 */

#include "kernels/app.hh"

#include <algorithm>
#include <chrono>
#include <set>

#include "common/log.hh"
#include "common/random.hh"
#include "genomics/align/banded.hh"
#include "genomics/datagen.hh"
#include "genomics/index/fm_index.hh"
#include "genomics/map/read_mapper.hh"
#include "sim/warp_ctx.hh"

namespace ggpu::kernels
{

namespace
{

using namespace ggpu::sim;
using genomics::FmIndex;
using genomics::MapperParams;
using genomics::Scoring;

constexpr std::uint32_t kMaxCandidates = 16;

struct NvbShape
{
    std::uint32_t refLen;
    std::uint32_t readLen;
    std::uint32_t readsPerBatch;
    std::uint32_t batches;

    Dim3 grid() const
    {
        return {(readsPerBatch + 255) / 256, 1, 1};
    }
    Dim3 cta() const { return {256, 1, 1}; }
    std::uint32_t totalReads() const
    {
        return readsPerBatch * batches;
    }
};

NvbShape
shapeFor(InputScale scale)
{
    switch (scale) {
      case InputScale::Tiny: return {2048, 36, 64, 2};
      case InputScale::Small: return {8192, 48, 256, 6};
      case InputScale::Medium: return {32768, 64, 512, 8};
    }
    panic("NvbApp: unknown scale");
}

struct NvbBuffers
{
    Addr occ = 0;        //!< u32 [4][bwtLen+1] dense occurrence table
    Addr cArr = 0;       //!< u32 [5]
    Addr sa = 0;         //!< u32 suffix array
    Addr ref = 0;        //!< char reference text
    Addr reads = 0;      //!< char [read][readLen]
    Addr seedRanges = 0; //!< u32 [read][numSeeds][2] (lo, hi)
    Addr candidates = 0; //!< u32 [read][kMaxCandidates+1] (count, ...)
    Addr results = 0;    //!< i32 [read][2]: best score, position
    std::uint32_t bwtLen = 0;
    std::uint32_t refLen = 0;
    std::uint32_t numSeeds = 0;
};

/** Per-batch host-side copies of the functional inputs. */
struct NvbHostData
{
    const FmIndex *index = nullptr;
    const std::string *reference = nullptr;
    std::vector<std::string> reads;
    MapperParams params;
    Scoring scoring;
};

/** Stage 1: exact backward search of each read's seeds. */
class NvbSeedKernel : public KernelBody
{
  public:
    NvbSeedKernel(const NvbBuffers &bufs,
                  std::shared_ptr<NvbHostData> host,
                  std::uint32_t batch_first, std::uint32_t batch_size)
        : bufs_(bufs), host_(std::move(host)), batchFirst_(batch_first),
          batchSize_(batch_size)
    {
    }

    void
    runPhase(WarpCtx &w, int) override
    {
        w.constRead(4);  // C array from constant memory
        auto gid = w.globalTid();

        LaneMask active = 0;
        for (int lane = 0; lane < warpSize; ++lane)
            if (w.laneActive(lane) && gid[lane] < batchSize_)
                active |= LaneMask(1) << lane;
        w.emitInt(1);
        if (active == 0)
            return;
        w.pushMask(active);

        const MapperParams &mp = host_->params;
        const FmIndex &index = *host_->index;
        const std::uint32_t stride = bufs_.bwtLen + 1;

        for (std::uint32_t seed = 0; seed < bufs_.numSeeds; ++seed) {
            const std::size_t seed_start = seed * mp.seedStride;

            // Per-lane running SA ranges.
            std::array<FmIndex::Range, warpSize> range;
            range.fill(index.wholeRange());

            LaneMask running = active;
            for (std::uint32_t step = 0;
                 step < mp.seedLength && running; ++step) {
                w.branchPoint();
                w.pushMask(running);
                // Read base, then two occ fetches via texture.
                LaneArray<std::uint32_t> base_idx =
                    w.make<std::uint32_t>([&](int lane) {
                        const std::uint32_t r = batchFirst_ + gid[lane];
                        return r * std::uint32_t(
                                       host_->reads[0].size()) +
                               std::uint32_t(seed_start +
                                             mp.seedLength - 1 - step);
                    });
                auto base = w.loadGlobal<char>(bufs_.reads, base_idx);

                std::array<std::uint8_t, warpSize> code{};
                for (int lane = 0; lane < warpSize; ++lane) {
                    if ((running >> lane) & 1u)
                        code[std::size_t(lane)] =
                            genomics::baseToCode(base[lane]);
                }
                LaneArray<std::uint32_t> occ_lo = w.make<std::uint32_t>(
                    [&](int lane) {
                        return code[std::size_t(lane)] * stride +
                               range[std::size_t(lane)].lo;
                    });
                LaneArray<std::uint32_t> occ_hi = w.make<std::uint32_t>(
                    [&](int lane) {
                        return code[std::size_t(lane)] * stride +
                               range[std::size_t(lane)].hi;
                    });
                auto lo = w.loadTex<std::uint32_t>(bufs_.occ, occ_lo);
                auto hi = w.loadTex<std::uint32_t>(bufs_.occ, occ_hi);
                w.emitInt(4, std::max(lo.dep, hi.dep));

                for (int lane = 0; lane < warpSize; ++lane) {
                    if (!((running >> lane) & 1u))
                        continue;
                    auto &rg = range[std::size_t(lane)];
                    const std::uint32_t c =
                        index.cOf(code[std::size_t(lane)]);
                    rg.lo = c + lo[lane];
                    rg.hi = c + hi[lane];
                    if (rg.empty())
                        running &= ~(LaneMask(1) << lane);
                }
                w.popMask();
            }

            // Store the (lo, hi) pair for this seed.
            LaneArray<std::uint32_t> out_lo = w.make<std::uint32_t>(
                [&](int lane) {
                    return (gid[lane] * bufs_.numSeeds + seed) * 2;
                });
            LaneArray<std::uint32_t> lo_val = w.make<std::uint32_t>(
                [&](int lane) { return range[std::size_t(lane)].lo; });
            LaneArray<std::uint32_t> out_hi = w.make<std::uint32_t>(
                [&](int lane) {
                    return (gid[lane] * bufs_.numSeeds + seed) * 2 + 1;
                });
            LaneArray<std::uint32_t> hi_val = w.make<std::uint32_t>(
                [&](int lane) { return range[std::size_t(lane)].hi; });
            w.storeGlobal<std::uint32_t>(bufs_.seedRanges, out_lo,
                                         lo_val);
            w.storeGlobal<std::uint32_t>(bufs_.seedRanges, out_hi,
                                         hi_val);
        }
        w.popMask();
    }

  private:
    NvbBuffers bufs_;
    std::shared_ptr<NvbHostData> host_;
    std::uint32_t batchFirst_;
    std::uint32_t batchSize_;
};

/** Stage 2: suffix-array lookups -> deduplicated sorted candidates. */
class NvbLocateKernel : public KernelBody
{
  public:
    NvbLocateKernel(const NvbBuffers &bufs,
                    std::shared_ptr<NvbHostData> host,
                    std::uint32_t batch_first, std::uint32_t batch_size)
        : bufs_(bufs), host_(std::move(host)), batchFirst_(batch_first),
          batchSize_(batch_size)
    {
    }

    void
    runPhase(WarpCtx &w, int) override
    {
        w.constRead(2);
        auto gid = w.globalTid();

        LaneMask active = 0;
        for (int lane = 0; lane < warpSize; ++lane)
            if (w.laneActive(lane) && gid[lane] < batchSize_)
                active |= LaneMask(1) << lane;
        w.emitInt(1);
        if (active == 0)
            return;
        w.pushMask(active);

        const MapperParams &mp = host_->params;
        std::array<std::vector<std::uint32_t>, warpSize> cands;

        for (std::uint32_t seed = 0; seed < bufs_.numSeeds; ++seed) {
            // Load this seed's range back.
            LaneArray<std::uint32_t> lo_idx = w.make<std::uint32_t>(
                [&](int lane) {
                    return (gid[lane] * bufs_.numSeeds + seed) * 2;
                });
            auto lo = w.loadGlobal<std::uint32_t>(bufs_.seedRanges,
                                                  lo_idx);
            LaneArray<std::uint32_t> hi_idx = w.make<std::uint32_t>(
                [&](int lane) {
                    return (gid[lane] * bufs_.numSeeds + seed) * 2 + 1;
                });
            auto hi = w.loadGlobal<std::uint32_t>(bufs_.seedRanges,
                                                  hi_idx);
            w.emitInt(2, std::max(lo.dep, hi.dep));

            // SA fetch loop: lanes with more hits keep running.
            std::uint32_t max_hits = 0;
            std::array<std::uint32_t, warpSize> hits{};
            for (int lane = 0; lane < warpSize; ++lane) {
                if (!((active >> lane) & 1u))
                    continue;
                const std::uint32_t count =
                    hi[lane] > lo[lane] ? hi[lane] - lo[lane] : 0;
                hits[std::size_t(lane)] = std::min(
                    count, std::uint32_t(mp.maxSeedHits));
                max_hits = std::max(max_hits,
                                    hits[std::size_t(lane)]);
            }

            const std::size_t seed_start = seed * mp.seedStride;
            for (std::uint32_t h = 0; h < max_hits; ++h) {
                LaneMask mask = 0;
                for (int lane = 0; lane < warpSize; ++lane)
                    if (((active >> lane) & 1u) &&
                        h < hits[std::size_t(lane)])
                        mask |= LaneMask(1) << lane;
                w.branchPoint();
                w.pushMask(mask);
                LaneArray<std::uint32_t> sa_idx = w.make<std::uint32_t>(
                    [&](int lane) { return lo[lane] + h; });
                auto pos = w.loadTex<std::uint32_t>(bufs_.sa, sa_idx);
                w.emitInt(3, pos.dep);
                for (int lane = 0; lane < warpSize; ++lane) {
                    if (!((mask >> lane) & 1u))
                        continue;
                    if (pos[lane] >= seed_start) {
                        cands[std::size_t(lane)].push_back(
                            std::uint32_t(pos[lane] - seed_start));
                    }
                }
                w.popMask();
            }
        }

        // Dedup + sort in local memory (insertion sort, data-dependent
        // trip counts -> divergence), then store.
        std::uint32_t max_c = 0;
        for (int lane = 0; lane < warpSize; ++lane) {
            if (!((active >> lane) & 1u))
                continue;
            auto &cv = cands[std::size_t(lane)];
            std::sort(cv.begin(), cv.end());
            cv.erase(std::unique(cv.begin(), cv.end()), cv.end());
            if (cv.size() > kMaxCandidates)
                cv.resize(kMaxCandidates);
            max_c = std::max(max_c, std::uint32_t(cv.size()));
        }
        w.localAccess(true, 0, 4);
        w.emitInt(2 * max_c + 2);  // insertion sort + dedup passes

        LaneArray<std::uint32_t> cnt_idx = w.make<std::uint32_t>(
            [&](int lane) {
                return gid[lane] * (kMaxCandidates + 1);
            });
        LaneArray<std::uint32_t> cnt = w.make<std::uint32_t>(
            [&](int lane) {
                return std::uint32_t(cands[std::size_t(lane)].size());
            });
        w.storeGlobal<std::uint32_t>(bufs_.candidates, cnt_idx, cnt);
        for (std::uint32_t c = 0; c < max_c; ++c) {
            LaneMask mask = 0;
            for (int lane = 0; lane < warpSize; ++lane)
                if (((active >> lane) & 1u) &&
                    c < cands[std::size_t(lane)].size())
                    mask |= LaneMask(1) << lane;
            if (mask == 0)
                break;
            w.pushMask(mask);
            LaneArray<std::uint32_t> idx = w.make<std::uint32_t>(
                [&](int lane) {
                    return gid[lane] * (kMaxCandidates + 1) + 1 + c;
                });
            LaneArray<std::uint32_t> val = w.make<std::uint32_t>(
                [&](int lane) {
                    const auto &cv = cands[std::size_t(lane)];
                    return c < cv.size() ? cv[c] : 0;
                });
            w.storeGlobal<std::uint32_t>(bufs_.candidates, idx, val);
            w.popMask();
        }
        w.popMask();
    }

  private:
    NvbBuffers bufs_;
    std::shared_ptr<NvbHostData> host_;
    std::uint32_t batchFirst_;
    std::uint32_t batchSize_;
};

/** Stage 3: banded semi-global extension at every candidate. */
class NvbExtendKernel : public KernelBody
{
  public:
    NvbExtendKernel(const NvbBuffers &bufs,
                    std::shared_ptr<NvbHostData> host,
                    std::uint32_t batch_first, std::uint32_t batch_size)
        : bufs_(bufs), host_(std::move(host)), batchFirst_(batch_first),
          batchSize_(batch_size)
    {
    }

    void
    runPhase(WarpCtx &w, int) override
    {
        w.constRead(4);
        auto gid = w.globalTid();

        LaneMask active = 0;
        for (int lane = 0; lane < warpSize; ++lane)
            if (w.laneActive(lane) && gid[lane] < batchSize_)
                active |= LaneMask(1) << lane;
        w.emitInt(1);
        if (active == 0)
            return;
        w.pushMask(active);

        const MapperParams &mp = host_->params;
        const Scoring &scoring = host_->scoring;
        const std::uint32_t rlen =
            std::uint32_t(host_->reads[0].size());

        // Candidate counts.
        LaneArray<std::uint32_t> cnt_idx = w.make<std::uint32_t>(
            [&](int lane) {
                return gid[lane] * (kMaxCandidates + 1);
            });
        auto cnt = w.loadGlobal<std::uint32_t>(bufs_.candidates,
                                               cnt_idx);
        w.emitInt(1, cnt.dep);

        std::array<int, warpSize> best_score;
        std::array<std::uint32_t, warpSize> best_pos{};
        std::array<bool, warpSize> mapped{};
        best_score.fill(INT32_MIN / 4);

        std::uint32_t max_c = 0;
        for (int lane = 0; lane < warpSize; ++lane)
            if ((active >> lane) & 1u)
                max_c = std::max(max_c, cnt[lane]);

        for (std::uint32_t c = 0; c < max_c; ++c) {
            LaneMask mask = 0;
            for (int lane = 0; lane < warpSize; ++lane)
                if (((active >> lane) & 1u) && c < cnt[lane])
                    mask |= LaneMask(1) << lane;
            w.branchPoint();
            if (mask == 0)
                break;
            w.pushMask(mask);

            LaneArray<std::uint32_t> cand_idx = w.make<std::uint32_t>(
                [&](int lane) {
                    return gid[lane] * (kMaxCandidates + 1) + 1 + c;
                });
            auto pos = w.loadGlobal<std::uint32_t>(bufs_.candidates,
                                                   cand_idx);
            w.emitInt(2, pos.dep);

            // Banded DP over the window: per row, one reference byte
            // gather plus local-memory row traffic.
            for (std::uint32_t i = 1; i <= rlen; ++i) {
                LaneArray<std::uint32_t> ridx = w.make<std::uint32_t>(
                    [&](int lane) {
                        return (pos[lane] + i - 1) %
                               std::max(1u, bufs_.refLen);
                    });
                auto rb = w.loadGlobal<char>(bufs_.ref, ridx);
                const std::int32_t ld =
                    w.localAccess(false, i % 64, 4, rb.dep);
                w.emitInt(4 * std::uint32_t(mp.band) / 2, ld);
                w.localAccess(true, 64 + i % 64, 4);
            }

            // Functional score via the reference aligner (the kernel's
            // DP is emission-shaped above; values come from the exact
            // same algorithm the CPU reference uses).
            for (int lane = 0; lane < warpSize; ++lane) {
                if (!((mask >> lane) & 1u))
                    continue;
                const std::uint32_t read_id =
                    batchFirst_ + gid[lane];
                const std::string &read =
                    host_->reads[read_id - batchFirst_];
                const std::string &ref = *host_->reference;
                if (pos[lane] + read.size() > ref.size())
                    continue;
                const std::string window = ref.substr(
                    pos[lane], read.size() + std::size_t(mp.band));
                const int score = genomics::alignAffine(
                    read, window, scoring,
                    genomics::AlignMode::SemiGlobal, mp.band).score;
                if (!mapped[std::size_t(lane)] ||
                    score > best_score[std::size_t(lane)]) {
                    mapped[std::size_t(lane)] = score >= mp.minScore;
                    best_score[std::size_t(lane)] = score;
                    best_pos[std::size_t(lane)] = pos[lane];
                }
            }
            w.popMask();
        }

        LaneArray<std::uint32_t> s_idx = w.make<std::uint32_t>(
            [&](int lane) { return gid[lane] * 2; });
        LaneArray<std::int32_t> s_val = w.make<std::int32_t>(
            [&](int lane) {
                return mapped[std::size_t(lane)]
                    ? best_score[std::size_t(lane)] : INT32_MIN / 4;
            });
        LaneArray<std::uint32_t> p_idx = w.make<std::uint32_t>(
            [&](int lane) { return gid[lane] * 2 + 1; });
        LaneArray<std::int32_t> p_val = w.make<std::int32_t>(
            [&](int lane) {
                return std::int32_t(best_pos[std::size_t(lane)]);
            });
        w.storeGlobal<std::int32_t>(bufs_.results, s_idx, s_val);
        w.storeGlobal<std::int32_t>(bufs_.results, p_idx, p_val);
        w.popMask();
    }

  private:
    NvbBuffers bufs_;
    std::shared_ptr<NvbHostData> host_;
    std::uint32_t batchFirst_;
    std::uint32_t batchSize_;
};

/** CDP parent: seed -> locate -> extend as synchronized children. */
class NvbCdpParent : public KernelBody
{
  public:
    NvbCdpParent(const NvbBuffers &bufs,
                 std::shared_ptr<NvbHostData> host, const NvbShape &shape,
                 std::uint32_t batch_first, std::uint32_t batch_size)
        : bufs_(bufs), host_(std::move(host)), shape_(shape),
          batchFirst_(batch_first), batchSize_(batch_size)
    {
    }

    void
    runPhase(WarpCtx &w, int) override
    {
        w.constRead(2);
        auto stage = [&](const std::string &name,
                         std::shared_ptr<KernelBody> body) {
            LaunchSpec child;
            child.name = name;
            child.grid = shape_.grid();
            child.cta = shape_.cta();
            child.res.regsPerThread = 32;
            child.body = std::move(body);
            w.launchChild(child);
            w.deviceSync();
        };
        stage("nvb_seed", std::make_shared<NvbSeedKernel>(
                              bufs_, host_, batchFirst_, batchSize_));
        stage("nvb_locate", std::make_shared<NvbLocateKernel>(
                                bufs_, host_, batchFirst_, batchSize_));
        stage("nvb_extend", std::make_shared<NvbExtendKernel>(
                                bufs_, host_, batchFirst_, batchSize_));
    }

  private:
    NvbBuffers bufs_;
    std::shared_ptr<NvbHostData> host_;
    NvbShape shape_;
    std::uint32_t batchFirst_;
    std::uint32_t batchSize_;
};

class NvbApp : public BenchmarkApp
{
  public:
    std::string name() const override { return "NvB"; }
    std::string
    fullName() const override
    {
        return "NvBowtie FM-index read mapping";
    }

    AppRunResult
    run(rt::Device &dev, const AppOptions &opts) override
    {
        const NvbShape shape = shapeFor(opts.scale);
        Rng rng(opts.seed ^ 0xB0B0);

        MapperParams params;
        params.seedLength = std::min<std::size_t>(20, shape.readLen / 2);
        params.seedStride = params.seedLength / 2;
        params.maxSeedHits = kMaxCandidates;
        params.band = 8;

        auto read_set = genomics::makeReadSet(
            rng, shape.refLen, shape.totalReads(), shape.readLen, 0.01);
        const FmIndex index(read_set.reference);

        const std::uint32_t num_seeds = std::uint32_t(
            (shape.readLen - params.seedLength) / params.seedStride + 1);

        NvbBuffers bufs;
        bufs.bwtLen = std::uint32_t(index.bwt().size());
        bufs.refLen = shape.refLen;
        bufs.numSeeds = num_seeds;

        const auto occ = index.flatOccTable();
        const auto &sa = index.suffixArray();
        auto d_occ = dev.alloc<std::uint32_t>(occ.size());
        auto d_c = dev.alloc<std::uint32_t>(5);
        auto d_sa = dev.alloc<std::uint32_t>(sa.size());
        auto d_ref = dev.alloc<char>(shape.refLen);
        auto d_reads = dev.alloc<char>(std::size_t(shape.readsPerBatch) *
                                       shape.readLen);
        auto d_ranges = dev.alloc<std::uint32_t>(
            std::size_t(shape.readsPerBatch) * num_seeds * 2);
        auto d_cands = dev.alloc<std::uint32_t>(
            std::size_t(shape.readsPerBatch) * (kMaxCandidates + 1));
        auto d_results = dev.alloc<std::int32_t>(
            std::size_t(shape.readsPerBatch) * 2);
        bufs.occ = d_occ.addr;
        bufs.cArr = d_c.addr;
        bufs.sa = d_sa.addr;
        bufs.ref = d_ref.addr;
        bufs.reads = d_reads.addr;
        bufs.seedRanges = d_ranges.addr;
        bufs.candidates = d_cands.addr;
        bufs.results = d_results.addr;

        const Cycles start = dev.gpu().now();
        dev.upload(d_occ, occ);
        dev.upload(d_sa, sa);
        dev.copyIn(d_ref.addr, read_set.reference.data(), shape.refLen);

        AppRunResult result;
        std::vector<std::int32_t> all_results(
            std::size_t(shape.totalReads()) * 2);

        const Scoring scoring;
        for (std::uint32_t b = 0; b < shape.batches; ++b) {
            const std::uint32_t first = b * shape.readsPerBatch;

            auto host = std::make_shared<NvbHostData>();
            host->index = &index;
            host->reference = &read_set.reference;
            host->params = params;
            host->scoring = scoring;
            std::vector<char> flat(std::size_t(shape.readsPerBatch) *
                                   shape.readLen);
            for (std::uint32_t r = 0; r < shape.readsPerBatch; ++r) {
                const auto &read = read_set.reads[first + r].data;
                host->reads.push_back(read);
                std::copy(read.begin(), read.end(),
                          flat.begin() + std::size_t(r) * shape.readLen);
            }
            dev.upload(d_reads, flat);

            // NOTE: kernels index reads relative to the batch buffer.
            if (opts.cdp) {
                LaunchSpec parent;
                parent.name = "nvb_cdp_parent";
                parent.grid = {1, 1, 1};
                parent.cta = {32, 1, 1};
                parent.res.regsPerThread = 32;
                parent.body = std::make_shared<NvbCdpParent>(
                    bufs, host, shape, 0, shape.readsPerBatch);
                result.kernelCycles += dev.launch(parent).cycles;
                if (b == 0)
                    result.primarySpec = parent;
            } else {
                auto stage = [&](const std::string &name,
                                 std::shared_ptr<KernelBody> body) {
                    LaunchSpec spec;
                    spec.name = name;
                    spec.grid = shape.grid();
                    spec.cta = shape.cta();
                    spec.res.regsPerThread = 32;
                    spec.body = std::move(body);
                    result.kernelCycles += dev.launch(spec).cycles;
                    return spec;
                };
                auto s1 = stage("nvb_seed",
                                std::make_shared<NvbSeedKernel>(
                                    bufs, host, 0,
                                    shape.readsPerBatch));
                stage("nvb_locate", std::make_shared<NvbLocateKernel>(
                                        bufs, host, 0,
                                        shape.readsPerBatch));
                stage("nvb_extend", std::make_shared<NvbExtendKernel>(
                                        bufs, host, 0,
                                        shape.readsPerBatch));
                if (b == 0)
                    result.primarySpec = s1;
            }

            std::vector<std::int32_t> batch_out(
                std::size_t(shape.readsPerBatch) * 2);
            dev.copyOut(batch_out.data(), bufs.results,
                        batch_out.size() * 4);
            std::copy(batch_out.begin(), batch_out.end(),
                      all_results.begin() +
                          std::size_t(first) * 2);
        }

        result.totalCycles = dev.gpu().now() - start;

        // ---- CPU reference: the seed-and-extend mapper -------------
        const auto cpu_start = std::chrono::steady_clock::now();
        bool ok = true;
        std::uint32_t mapped = 0, correct = 0;
        for (std::uint32_t r = 0; r < shape.totalReads(); ++r) {
            const auto expected = genomics::mapRead(
                index, read_set.reference, read_set.reads[r].data,
                scoring, params);
            const std::int32_t gpu_score = all_results[r * 2];
            const std::int32_t gpu_pos = all_results[r * 2 + 1];
            const bool gpu_mapped = gpu_score > INT32_MIN / 8;
            if (gpu_mapped != expected.mapped ||
                (expected.mapped &&
                 (gpu_score != expected.score ||
                  std::uint32_t(gpu_pos) != expected.position))) {
                warn("NvB: read ", r, " GPU (", gpu_score, ",",
                     gpu_pos, ") CPU (", expected.score, ",",
                     expected.position, ")");
                ok = false;
            }
            mapped += expected.mapped;
            correct += expected.mapped &&
                       expected.position == read_set.truePos[r];
        }
        result.cpuReferenceSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - cpu_start).count();
        result.verified = ok;
        result.detail = std::to_string(mapped) + "/" +
                        std::to_string(shape.totalReads()) +
                        " mapped, " + std::to_string(correct) +
                        " at the true position";
        return result;
    }
};

} // namespace

std::unique_ptr<BenchmarkApp>
makeNvbApp()
{
    return std::make_unique<NvbApp>();
}

} // namespace ggpu::kernels
