/**
 * @file
 * GASAL2 benchmark family (GG = global, GL = local, GSG = semi-global,
 * GKSW = KSW-style local extension): one thread aligns one pair with
 * the affine-gap (Gotoh) DP, rolling H/E rows held in per-thread local
 * memory — which is why local accesses dominate these kernels' memory
 * mix (Fig 9). The host processes the workload in batches, uploading
 * query/target/metadata and downloading results around every launch,
 * so PCI transactions outnumber kernel launches (Fig 4). GKSW aligns
 * a short query against a long target with full-length rows, giving
 * it the large, cache-capacity-sensitive working set the paper
 * observes (Figs 12-15, 18). Table III: grid (40,1,1), CTA (128,1,1).
 */

#include "kernels/app.hh"

#include <algorithm>
#include <chrono>

#include "common/log.hh"
#include "common/random.hh"
#include "genomics/datagen.hh"
#include "sim/warp_ctx.hh"

namespace ggpu::kernels
{

namespace
{

using namespace ggpu::sim;
using genomics::AlignMode;
using genomics::Scoring;

struct GasalShape
{
    std::uint32_t queryLen;
    std::uint32_t targetLen;
    std::uint32_t gridX;     //!< CTAs per launch (Table III: 40)
    std::uint32_t batches;   //!< Host batch loop count

    Dim3 grid() const { return {gridX, 1, 1}; }
    Dim3 cta() const { return {128, 1, 1}; }
    std::uint32_t pairsPerBatch() const { return gridX * 128; }
    std::uint32_t totalPairs() const { return pairsPerBatch() * batches; }
};

GasalShape
shapeFor(InputScale scale, AlignMode mode)
{
    const bool ksw = mode == AlignMode::KswBanded;
    switch (scale) {
      case InputScale::Tiny:
        return ksw ? GasalShape{6, 48, 2, 1} : GasalShape{12, 12, 2, 1};
      case InputScale::Small:
        return ksw ? GasalShape{8, 192, 10, 2}
                   : GasalShape{24, 24, 10, 2};
      case InputScale::Medium:
        return ksw ? GasalShape{12, 256, 40, 2}
                   : GasalShape{24, 24, 40, 2};
    }
    panic("GasalApp: unknown scale");
}

struct GasalBuffers
{
    Addr query = 0;     //!< char, q[i * pairs + pair] (interleaved)
    Addr target = 0;    //!< char, t[j * pairs + pair]
    Addr meta = 0;      //!< per-pair metadata (lengths/offsets)
    Addr scores = 0;    //!< int32 per pair
    std::uint32_t totalPairs = 0;
};

/** Thread-per-pair affine-gap alignment over one batch. */
class GasalKernel : public KernelBody
{
  public:
    GasalKernel(const GasalBuffers &bufs, const GasalShape &shape,
                AlignMode mode, std::uint32_t batch_offset,
                const Scoring &scoring)
        : bufs_(bufs), shape_(shape), mode_(mode),
          batchOffset_(batch_offset), scoring_(scoring)
    {
    }

    void
    runPhase(WarpCtx &w, int) override
    {
        const std::uint32_t lq = shape_.queryLen;
        const std::uint32_t lt = shape_.targetLen;
        const int open = scoring_.gapOpen + scoring_.gapExtend;
        const int extend = scoring_.gapExtend;
        const bool local_mode = mode_ == AlignMode::Local ||
                                mode_ == AlignMode::KswBanded;
        constexpr int neg_inf = INT32_MIN / 4;

        auto pair = w.globalTid();
        for (int lane = 0; lane < warpSize; ++lane)
            pair[lane] += batchOffset_;
        w.emitInt(1);

        LaneMask active = 0;
        for (int lane = 0; lane < warpSize; ++lane)
            if (w.laneActive(lane) && pair[lane] < bufs_.totalPairs)
                active |= LaneMask(1) << lane;
        w.emitInt(1);
        if (active == 0)
            return;
        w.pushMask(active);

        // Scoring scheme + per-pair metadata.
        w.constRead(4);
        LaneArray<std::uint32_t> meta_idx = w.make<std::uint32_t>(
            [&](int lane) { return pair[lane]; });
        auto meta = w.loadGlobal<std::uint32_t>(bufs_.meta, meta_idx);
        (void)meta;

        // Cache the query in "registers" (one global gather per base).
        std::array<std::array<char, 64>, warpSize> query{};
        for (std::uint32_t i = 0; i < lq; ++i) {
            LaneArray<std::uint32_t> idx = w.make<std::uint32_t>(
                [&](int lane) {
                    return i * bufs_.totalPairs + pair[lane];
                });
            auto base = w.loadGlobal<char>(bufs_.query, idx);
            for (int lane = 0; lane < warpSize; ++lane)
                query[std::size_t(lane)][i] = base[lane];
        }

        // GG/GL/GSG work on short targets cached up front; GKSW
        // streams its long target from global memory as it walks
        // (packed-target walk), which is what makes it memory-bound.
        const bool stream_target = mode_ == AlignMode::KswBanded;
        std::array<std::vector<char>, warpSize> target_cache;
        if (!stream_target) {
            for (int lane = 0; lane < warpSize; ++lane)
                target_cache[std::size_t(lane)].resize(lt);
            for (std::uint32_t j = 0; j < lt; ++j) {
                LaneArray<std::uint32_t> idx = w.make<std::uint32_t>(
                    [&](int lane) {
                        return j * bufs_.totalPairs + pair[lane];
                    });
                auto base = w.loadGlobal<char>(bufs_.target, idx);
                for (int lane = 0; lane < warpSize; ++lane)
                    target_cache[std::size_t(lane)][j] = base[lane];
            }
        }

        // Functional DP state per lane: H rows and the vertical-gap F
        // column over the target; the horizontal-gap E runs along the
        // row as a scalar.
        std::array<std::vector<int>, warpSize> h_prev, h_curr, f_col;
        std::array<int, warpSize> best{};
        for (int lane = 0; lane < warpSize; ++lane) {
            auto &hp = h_prev[std::size_t(lane)];
            hp.assign(lt + 1, 0);
            if (mode_ == AlignMode::Global) {
                for (std::uint32_t j = 1; j <= lt; ++j)
                    hp[j] = open + int(j - 1) * extend;
            }
            h_curr[std::size_t(lane)].assign(lt + 1, 0);
            f_col[std::size_t(lane)].assign(lt + 1, neg_inf);
            best[std::size_t(lane)] = local_mode ? 0 : neg_inf;
        }

        for (std::uint32_t i = 1; i <= lq; ++i) {
            // Row boundary; E runs along the row per lane.
            w.emitInt(2);
            std::array<int, warpSize> e_run{};
            for (int lane = 0; lane < warpSize; ++lane) {
                e_run[std::size_t(lane)] = neg_inf;
                h_curr[std::size_t(lane)][0] = local_mode
                    ? 0 : open + int(i - 1) * extend;
            }

            std::int32_t stream_dep = -1;
            for (std::uint32_t j = 1; j <= lt; ++j) {
                LaneArray<char> tb;
                tb.ctx = &w;
                if (stream_target) {
                    // One packed 4-byte fetch covers four cells.
                    if (j % 4 == 1) {
                        LaneArray<std::uint32_t> t_idx =
                            w.make<std::uint32_t>([&](int lane) {
                                return ((j - 1) / 4) *
                                           bufs_.totalPairs +
                                       pair[lane];
                            });
                        stream_dep =
                            w.loadGlobal<std::uint32_t>(bufs_.target,
                                                        t_idx)
                                .dep;
                    }
                    for (int lane = 0; lane < warpSize; ++lane) {
                        if ((active >> lane) & 1u)
                            tb[lane] = w.mem().load<char>(
                                bufs_.target +
                                Addr(j - 1) * bufs_.totalPairs +
                                pair[lane]);
                    }
                    tb.dep = stream_dep;
                } else {
                    for (int lane = 0; lane < warpSize; ++lane) {
                        if ((active >> lane) & 1u)
                            tb[lane] =
                                target_cache[std::size_t(lane)][j - 1];
                    }
                }

                // H of the previous row from local memory, register-
                // blocked: one 16-byte packed access covers four DP
                // cells (E/F stay in registers, as in GASAL2).
                if (j % 4 == 1) {
                    const std::int32_t ld =
                        w.localAccess(false, j / 4, 16, tb.dep);
                    w.emitInt(6, ld);  // E, F, H max chains + best
                    w.localAccess(true, (lt + 4) / 4 + j / 4, 16);
                } else {
                    w.emitInt(6, tb.dep);
                }

                for (int lane = 0; lane < warpSize; ++lane) {
                    if (!((active >> lane) & 1u))
                        continue;
                    auto &hp = h_prev[std::size_t(lane)];
                    auto &hc = h_curr[std::size_t(lane)];
                    auto &fc = f_col[std::size_t(lane)];
                    const char qb = query[std::size_t(lane)][i - 1];
                    // E: horizontal gap, carried along the row.
                    int &e = e_run[std::size_t(lane)];
                    e = std::max(hc[j - 1] + open, e + extend);
                    // F: vertical gap, carried down the column.
                    fc[j] = std::max(hp[j] + open, fc[j] + extend);
                    int h = hp[j - 1] + scoring_.subst(qb, tb[lane]);
                    h = std::max({h, e, fc[j]});
                    if (local_mode)
                        h = std::max(h, 0);
                    hc[j] = h;

                    int &bl = best[std::size_t(lane)];
                    if (local_mode) {
                        bl = std::max(bl, h);
                    } else if (mode_ == AlignMode::SemiGlobal &&
                               i == lq) {
                        bl = std::max(bl, h);
                    } else if (mode_ == AlignMode::Global && i == lq &&
                               j == lt) {
                        bl = h;
                    }
                }
            }
            for (int lane = 0; lane < warpSize; ++lane)
                std::swap(h_prev[std::size_t(lane)],
                          h_curr[std::size_t(lane)]);
        }

        LaneArray<std::int32_t> out = w.make<std::int32_t>(
            [&best](int lane) { return best[std::size_t(lane)]; });
        LaneArray<std::uint32_t> out_idx = w.make<std::uint32_t>(
            [&pair](int lane) { return pair[lane]; });
        w.storeGlobal<std::int32_t>(bufs_.scores, out_idx, out);
        w.popMask();
    }

  private:
    GasalBuffers bufs_;
    GasalShape shape_;
    AlignMode mode_;
    std::uint32_t batchOffset_;
    Scoring scoring_;
};

/** CDP parent: launches per-batch children instead of the host loop. */
class GasalCdpParent : public KernelBody
{
  public:
    GasalCdpParent(const GasalBuffers &bufs, const GasalShape &shape,
                   AlignMode mode, const Scoring &scoring)
        : bufs_(bufs), shape_(shape), mode_(mode), scoring_(scoring)
    {
    }

    void
    runPhase(WarpCtx &w, int) override
    {
        w.constRead(2);
        const std::uint32_t half_grid =
            std::max(1u, shape_.gridX / 2);
        const std::uint32_t half_pairs = half_grid * 128;
        for (std::uint32_t b = 0; b < shape_.batches; ++b) {
            // Within a batch the pair range is split into two
            // concurrent half-grids (dynamic parallelism exposes the
            // slack the 40-CTA host launch leaves on a 78-SM device);
            // batches stay ordered because they share the staging
            // buffer.
            for (std::uint32_t h = 0; h < 2; ++h) {
                LaunchSpec child;
                child.name = "gasal_half_batch";
                child.grid = {half_grid, 1, 1};
                child.cta = shape_.cta();
                child.res.regsPerThread = 40;
                child.body = std::make_shared<GasalKernel>(
                    bufs_, shape_, mode_,
                    b * shape_.pairsPerBatch() + h * half_pairs,
                    scoring_);
                w.emitInt(2);
                w.launchChild(child);
            }
            w.deviceSync();
        }
    }

  private:
    GasalBuffers bufs_;
    GasalShape shape_;
    AlignMode mode_;
    Scoring scoring_;
};

std::string
abbrevFor(AlignMode mode)
{
    switch (mode) {
      case AlignMode::Global: return "GG";
      case AlignMode::Local: return "GL";
      case AlignMode::KswBanded: return "GKSW";
      case AlignMode::SemiGlobal: return "GSG";
    }
    return "G?";
}

class GasalApp : public BenchmarkApp
{
  public:
    explicit GasalApp(AlignMode mode) : mode_(mode) {}

    std::string name() const override { return abbrevFor(mode_); }
    std::string
    fullName() const override
    {
        return "GASAL2 " + genomics::toString(mode_);
    }

    AppRunResult
    run(rt::Device &dev, const AppOptions &opts) override
    {
        const GasalShape shape = shapeFor(opts.scale, mode_);
        const Scoring scoring;
        Rng rng(opts.seed ^ (0x77 + std::uint64_t(mode_)));

        const std::uint32_t pairs = shape.totalPairs();
        std::vector<std::string> queries(pairs), targets(pairs);
        for (std::uint32_t p = 0; p < pairs; ++p) {
            queries[p] = genomics::randomDna(rng, shape.queryLen);
            if (mode_ == AlignMode::KswBanded) {
                // Query embedded in a long target (extension case).
                const std::string pad_l = genomics::randomDna(
                    rng, rng.below(shape.targetLen - shape.queryLen));
                std::string t = pad_l +
                    genomics::mutate(rng, queries[p],
                                     genomics::MutationProfile{});
                if (t.size() > shape.targetLen)
                    t.resize(shape.targetLen);
                t += genomics::randomDna(rng,
                                         shape.targetLen - t.size());
                targets[p] = std::move(t);
            } else {
                genomics::MutationProfile profile;
                profile.insertionRate = 0;
                profile.deletionRate = 0;
                targets[p] =
                    genomics::mutate(rng, queries[p], profile);
            }
        }

        std::vector<char> q(std::size_t(shape.queryLen) * pairs);
        std::vector<char> t(std::size_t(shape.targetLen) * pairs);
        for (std::uint32_t p = 0; p < pairs; ++p) {
            for (std::uint32_t i = 0; i < shape.queryLen; ++i)
                q[std::size_t(i) * pairs + p] = queries[p][i];
            for (std::uint32_t j = 0; j < shape.targetLen; ++j)
                t[std::size_t(j) * pairs + p] = targets[p][j];
        }
        std::vector<std::uint32_t> meta(pairs);
        for (std::uint32_t p = 0; p < pairs; ++p)
            meta[p] = (shape.queryLen << 16) | shape.targetLen;

        GasalBuffers bufs;
        bufs.totalPairs = pairs;
        auto dq = dev.alloc<char>(q.size());
        auto dt = dev.alloc<char>(t.size());
        auto dm = dev.alloc<std::uint32_t>(pairs);
        auto ds = dev.alloc<std::int32_t>(pairs);
        bufs.query = dq.addr;
        bufs.target = dt.addr;
        bufs.meta = dm.addr;
        bufs.scores = ds.addr;

        const Cycles start = dev.gpu().now();
        AppRunResult result;

        if (opts.cdp) {
            // All copies up front, then one parent kernel drives the
            // batch loop on-device.
            dev.upload(dq, q);
            dev.upload(dt, t);
            dev.upload(dm, meta);
            LaunchSpec parent;
            parent.name = "gasal_cdp_parent";
            parent.grid = {1, 1, 1};
            parent.cta = {32, 1, 1};
            parent.res.regsPerThread = 32;
            parent.body = std::make_shared<GasalCdpParent>(
                bufs, shape, mode_, scoring);
            result.kernelCycles += dev.launch(parent).cycles;
            result.primarySpec = parent;
            (void)dev.download(ds);
        } else {
            // GASAL2 batch pipeline: copies bracket every launch, so
            // PCI transactions outnumber kernels.
            const std::uint32_t per = shape.pairsPerBatch();
            for (std::uint32_t b = 0; b < shape.batches; ++b) {
                const std::size_t qoff =
                    0;  // interleaved layout: upload whole planes
                (void)qoff;
                dev.copyIn(bufs.query, q.data(), q.size());
                dev.copyIn(bufs.target, t.data(), t.size());
                dev.copyIn(bufs.meta, meta.data(),
                           meta.size() * sizeof(std::uint32_t));
                LaunchSpec spec;
                spec.name = "gasal_batch";
                spec.grid = shape.grid();
                spec.cta = shape.cta();
                spec.res.regsPerThread = 40;
                spec.body = std::make_shared<GasalKernel>(
                    bufs, shape, mode_, b * per, scoring);
                result.kernelCycles += dev.launch(spec).cycles;
                if (b == 0)
                    result.primarySpec = spec;
                std::vector<std::int32_t> partial(per);
                dev.copyOut(partial.data(),
                            bufs.scores + Addr(b) * per * 4,
                            partial.size() * 4);
            }
        }

        const auto gpu_scores = dev.download(ds);
        result.totalCycles = dev.gpu().now() - start;

        const auto cpu_start = std::chrono::steady_clock::now();
        const AlignMode verify_mode = mode_ == AlignMode::KswBanded
            ? AlignMode::Local : mode_;  // GKSW computes full rows
        bool ok = true;
        for (std::uint32_t p = 0; p < pairs; ++p) {
            const int expected = genomics::alignAffine(
                queries[p], targets[p], scoring, verify_mode).score;
            if (gpu_scores[p] != expected) {
                warn(name(), ": pair ", p, " GPU ", gpu_scores[p],
                     " CPU ", expected);
                ok = false;
            }
        }
        result.cpuReferenceSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - cpu_start).count();
        result.verified = ok;
        result.detail = std::to_string(pairs) + " pairs " +
                        std::to_string(shape.queryLen) + "x" +
                        std::to_string(shape.targetLen);
        return result;
    }

  private:
    AlignMode mode_;
};

} // namespace

std::unique_ptr<BenchmarkApp>
makeGasalApp(genomics::AlignMode mode)
{
    return std::make_unique<GasalApp>(mode);
}

} // namespace ggpu::kernels
