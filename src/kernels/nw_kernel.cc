/**
 * @file
 * Needleman-Wunsch benchmark (NW): one CTA aligns one pair by
 * anti-diagonal wavefront. Each host launch advances a block of T
 * diagonals; within a launch the diagonals are barrier-separated
 * phases with the rolling diagonals held in shared memory (Table III:
 * grid (500,1,1), CTA (128,1,1), shared + constant memory). Boundary
 * diagonals persist between launches in global memory, so the kernel
 * count far exceeds the PCI count (Fig 4). The shared-memory-off
 * variant (Fig 7) keeps the diagonals in global memory throughout;
 * the CDP variant launches the diagonal blocks from a parent kernel.
 */

#include "kernels/app.hh"

#include <algorithm>
#include <chrono>

#include "common/log.hh"
#include "common/random.hh"
#include "genomics/align/nw.hh"
#include "genomics/datagen.hh"
#include "sim/warp_ctx.hh"

namespace ggpu::kernels
{

namespace
{

using namespace ggpu::sim;
using genomics::Scoring;

struct NwShape
{
    std::uint32_t seqLen;
    std::uint32_t pairs;        //!< == grid.x (one CTA per pair)
    std::uint32_t diagTile;     //!< Diagonals advanced per launch

    Dim3 grid() const { return {pairs, 1, 1}; }
    Dim3 cta() const { return {128, 1, 1}; }
    std::uint32_t diagonals() const { return 2 * seqLen + 1; }
    std::uint32_t launches() const
    {
        return (diagonals() + diagTile - 1) / diagTile;
    }
};

NwShape
shapeFor(InputScale scale)
{
    switch (scale) {
      case InputScale::Tiny: return {24, 8, 12};
      case InputScale::Small: return {64, 96, 16};
      case InputScale::Medium: return {128, 500, 16};  // Table III grid
    }
    panic("NwApp: unknown scale");
}

struct NwBuffers
{
    Addr query = 0;    //!< char, q[pair * len + i]
    Addr target = 0;   //!< char, t[pair * len + j]
    Addr diag[3] = {0, 0, 0};  //!< int32 [pair][len+1], slot = d % 3
    Addr scores = 0;   //!< int32 per pair
    std::uint32_t pairs = 0;
    std::uint32_t len = 0;
};

/**
 * One diagonal-block sweep. Computes diagonals [firstDiag,
 * firstDiag + tile) for its pair, phase-per-diagonal with barriers.
 */
class NwTileKernel : public KernelBody
{
  public:
    /**
     * @param fixed_pair Pair handled by CTA 0 when >= 0 (CDP child
     *        grids are per-pair); -1 means pair == CTA index.
     */
    NwTileKernel(const NwBuffers &bufs, std::uint32_t first_diag,
                 std::uint32_t tile, const Scoring &scoring,
                 bool use_shared, int fixed_pair = -1)
        : bufs_(bufs), firstDiag_(first_diag), tile_(tile),
          scoring_(scoring), useShared_(use_shared),
          fixedPair_(fixed_pair)
    {
    }

    int
    numPhases(Dim3, Dim3) const override
    {
        return int(tile_) + 2;  // load, tile diagonals, store
    }

    void
    runPhase(WarpCtx &w, int phase) override
    {
        const std::uint32_t len = bufs_.len;
        const std::uint32_t pair = fixedPair_ >= 0
            ? std::uint32_t(fixedPair_)
            : std::uint32_t(w.ctaLinear());

        // Shared layout: three diagonal slots then the cached bases.
        const std::uint32_t diag_words = len + 1;
        const std::uint32_t base_off = 3 * diag_words * 4;

        // Lane's matrix row index i.
        auto i_arr = w.tid();
        LaneMask rows = 0;
        for (int lane = 0; lane < warpSize; ++lane)
            if (w.laneActive(lane) && i_arr[lane] <= len)
                rows |= LaneMask(1) << lane;
        w.emitInt(1);  // row-bound compare

        if (phase == 0) {
            loadPhase(w, pair, rows, i_arr, base_off, diag_words);
            return;
        }
        if (phase == int(tile_) + 1) {
            storePhase(w, pair, rows, i_arr, diag_words);
            return;
        }

        const std::uint32_t d = firstDiag_ + std::uint32_t(phase - 1);
        if (d >= 2 * len + 1)
            return;  // tail launch past the last diagonal

        // Active cells of diagonal d: max(0, d-len) <= i <= min(d, len).
        const std::uint32_t ilo = d > len ? d - len : 0;
        const std::uint32_t ihi = std::min(d, len);
        LaneMask cells = 0;
        for (int lane = 0; lane < warpSize; ++lane) {
            const std::uint32_t i = i_arr[lane];
            if (((rows >> lane) & 1u) && i >= ilo && i <= ihi)
                cells |= LaneMask(1) << lane;
        }
        w.emitInt(2);  // diagonal-range compares
        w.branchPoint();
        if (cells == 0)
            return;
        w.pushMask(cells);

        const std::uint32_t cur = (d % 3) * diag_words;
        const std::uint32_t prev1 = ((d + 2) % 3) * diag_words;
        const std::uint32_t prev2 = ((d + 1) % 3) * diag_words;

        LaneArray<std::int32_t> value = w.broadcast<std::int32_t>(0);
        // Boundary lanes (i == 0 or j == 0) take d * gap directly.
        LaneMask interior = 0;
        for (int lane = 0; lane < warpSize; ++lane) {
            if (!((cells >> lane) & 1u))
                continue;
            const std::uint32_t i = i_arr[lane];
            const std::uint32_t j = d - i;
            if (i == 0 || j == 0)
                value[lane] = std::int32_t(d) * scoring_.gapExtend;
            else
                interior |= LaneMask(1) << lane;
        }
        w.emitInt(1);  // boundary select

        if (interior) {
            w.pushMask(interior);
            LaneArray<std::uint32_t> i_idx = w.make<std::uint32_t>(
                [&](int lane) { return i_arr[lane]; });
            LaneArray<std::uint32_t> im1 = w.make<std::uint32_t>(
                [&](int lane) {
                    return i_arr[lane] == 0 ? 0 : i_arr[lane] - 1;
                });

            // Bases a[i-1], b[j-1] from the shared caches.
            LaneArray<std::uint32_t> a_idx = w.make<std::uint32_t>(
                [&](int lane) { return i_arr[lane] - 1; });
            LaneArray<std::uint32_t> b_idx = w.make<std::uint32_t>(
                [&](int lane) { return len + (d - i_arr[lane]) - 1; });
            auto a = w.loadShared<char>(base_off, a_idx);
            auto b = w.loadShared<char>(base_off, b_idx);

            LaneArray<std::int32_t> up, left, diag;
            if (useShared_) {
                up = w.loadShared<std::int32_t>(prev1 * 4, im1);
                left = w.loadShared<std::int32_t>(prev1 * 4, i_idx);
                diag = w.loadShared<std::int32_t>(prev2 * 4, im1);
            } else {
                // Fig 7 variant: diagonals live in global memory.
                up = w.loadGlobal<std::int32_t>(
                    globalDiag(prev1 / diag_words, pair), im1);
                left = w.loadGlobal<std::int32_t>(
                    globalDiag(prev1 / diag_words, pair), i_idx);
                diag = w.loadGlobal<std::int32_t>(
                    globalDiag(prev2 / diag_words, pair), im1);
            }

            w.emitInt(4, std::max({up.dep, left.dep, diag.dep, a.dep,
                                   b.dep}));
            for (int lane = 0; lane < warpSize; ++lane) {
                if (!((interior >> lane) & 1u))
                    continue;
                const int subst = scoring_.subst(a[lane], b[lane]);
                value[lane] = std::max(
                    {diag[lane] + subst,
                     up[lane] + scoring_.gapExtend,
                     left[lane] + scoring_.gapExtend});
            }
            w.popMask();
        }

        if (useShared_) {
            w.storeShared<std::int32_t>(cur * 4, i_idx(w, i_arr),
                                        value);
        } else {
            w.storeGlobal<std::int32_t>(
                globalDiag(cur / diag_words, pair), i_idx(w, i_arr),
                value);
        }

        // The final cell (len, len) carries the score.
        if (d == 2 * len) {
            for (int lane = 0; lane < warpSize; ++lane) {
                if (((cells >> lane) & 1u) && i_arr[lane] == len) {
                    LaneMask one = LaneMask(1) << lane;
                    w.pushMask(one);
                    LaneArray<std::uint32_t> out_idx =
                        w.broadcast<std::uint32_t>(pair);
                    w.storeGlobal<std::int32_t>(bufs_.scores, out_idx,
                                                value);
                    w.popMask();
                }
            }
        }
        w.popMask();
    }

  private:
    /** Global address of rolling diagonal slot (0..2) for @p pair. */
    Addr
    globalDiag(std::uint32_t slot, std::uint32_t pair) const
    {
        return bufs_.diag[slot % 3] + Addr(pair) * (bufs_.len + 1) * 4;
    }

    static LaneArray<std::uint32_t>
    i_idx(WarpCtx &w, const LaneArray<std::uint32_t> &i_arr)
    {
        return w.make<std::uint32_t>(
            [&](int lane) { return i_arr[lane]; });
    }

    void
    loadPhase(WarpCtx &w, std::uint32_t pair, LaneMask rows,
              const LaneArray<std::uint32_t> &i_arr,
              std::uint32_t base_off, std::uint32_t diag_words)
    {
        const std::uint32_t len = bufs_.len;
        w.constRead(4);  // scoring parameters
        if (rows == 0)
            return;
        w.pushMask(rows);

        // Cache a and b into shared (a at [0,len), b at [len, 2len)).
        LaneMask base_lanes = 0;
        for (int lane = 0; lane < warpSize; ++lane)
            if (((rows >> lane) & 1u) && i_arr[lane] < len)
                base_lanes |= LaneMask(1) << lane;
        if (base_lanes) {
            w.pushMask(base_lanes);
            LaneArray<std::uint32_t> q_idx = w.make<std::uint32_t>(
                [&](int lane) { return pair * len + i_arr[lane]; });
            auto a = w.loadGlobal<char>(bufs_.query, q_idx);
            auto b = w.loadGlobal<char>(bufs_.target, q_idx);
            LaneArray<std::uint32_t> sa = w.make<std::uint32_t>(
                [&](int lane) { return i_arr[lane]; });
            LaneArray<std::uint32_t> sb = w.make<std::uint32_t>(
                [&](int lane) { return len + i_arr[lane]; });
            w.storeShared<char>(base_off, sa, a);
            w.storeShared<char>(base_off, sb, b);
            w.popMask();
        }

        // Restore the boundary diagonals from the previous launch
        // (global variant reads them from global directly).
        if (useShared_ && firstDiag_ > 0) {
            const std::uint32_t d1 = firstDiag_ - 1;
            LaneArray<std::uint32_t> idx = i_idx(w, i_arr);
            auto v1 = w.loadGlobal<std::int32_t>(
                globalDiag(d1 % 3, pair), idx);
            w.storeShared<std::int32_t>((d1 % 3) * diag_words * 4, idx,
                                        v1);
            if (firstDiag_ > 1) {
                const std::uint32_t d2 = firstDiag_ - 2;
                auto v2 = w.loadGlobal<std::int32_t>(
                    globalDiag(d2 % 3, pair), idx);
                w.storeShared<std::int32_t>((d2 % 3) * diag_words * 4,
                                            idx, v2);
            }
        }
        w.popMask();
    }

    void
    storePhase(WarpCtx &w, std::uint32_t pair, LaneMask rows,
               const LaneArray<std::uint32_t> &i_arr,
               std::uint32_t diag_words)
    {
        const std::uint32_t len = bufs_.len;
        const std::uint32_t last =
            std::min(firstDiag_ + tile_ - 1, 2 * len);
        if (!useShared_ || rows == 0)
            return;  // global variant keeps slots current as it goes
        w.pushMask(rows);
        LaneArray<std::uint32_t> idx = i_idx(w, i_arr);
        auto v1 = w.loadShared<std::int32_t>(
            (last % 3) * diag_words * 4, idx);
        w.storeGlobal<std::int32_t>(globalDiag(last % 3, pair), idx, v1);
        if (last > 0) {
            auto v2 = w.loadShared<std::int32_t>(
                ((last - 1) % 3) * diag_words * 4, idx);
            w.storeGlobal<std::int32_t>(globalDiag((last - 1) % 3, pair),
                                        idx, v2);
        }
        w.popMask();
    }

    NwBuffers bufs_;
    std::uint32_t firstDiag_;
    std::uint32_t tile_;
    Scoring scoring_;
    bool useShared_;
    int fixedPair_;
};

/** CDP parent: one CTA per pair; launches its diagonal blocks. */
class NwCdpParent : public KernelBody
{
  public:
    NwCdpParent(const NwBuffers &bufs, const NwShape &shape,
                const Scoring &scoring, bool use_shared)
        : bufs_(bufs), shape_(shape), scoring_(scoring),
          useShared_(use_shared)
    {
    }

    void
    runPhase(WarpCtx &w, int) override
    {
        const int pair = int(w.ctaLinear());
        w.constRead(2);
        for (std::uint32_t k = 0; k < shape_.launches(); ++k) {
            LaunchSpec child;
            child.name = "nw_tile";
            child.grid = {1, 1, 1};
            child.cta = shape_.cta();
            child.res.regsPerThread = 28;
            child.res.smemPerCtaBytes = 16 * 1024;
            child.body = std::make_shared<NwTileKernel>(
                bufs_, k * shape_.diagTile, shape_.diagTile, scoring_,
                useShared_, pair);
            w.emitInt(2);
            w.launchChild(child);
            w.deviceSync();  // diagonals are sequentially dependent
        }
    }

  private:
    NwBuffers bufs_;
    NwShape shape_;
    Scoring scoring_;
    bool useShared_;
};

class NwApp : public BenchmarkApp
{
  public:
    std::string name() const override { return "NW"; }
    std::string fullName() const override { return "Needleman-Wunsch"; }

    AppRunResult
    run(rt::Device &dev, const AppOptions &opts) override
    {
        const NwShape shape = shapeFor(opts.scale);
        const Scoring scoring;
        Rng rng(opts.seed ^ 0x11);

        genomics::PairBatch batch;
        genomics::MutationProfile profile;
        profile.insertionRate = 0;
        profile.deletionRate = 0;  // keep equal lengths
        for (std::uint32_t p = 0; p < shape.pairs; ++p) {
            batch.queries.push_back(
                genomics::randomDna(rng, shape.seqLen));
            batch.targets.push_back(
                genomics::mutate(rng, batch.queries.back(), profile));
        }

        std::vector<char> q(std::size_t(shape.pairs) * shape.seqLen);
        std::vector<char> t(q.size());
        for (std::uint32_t p = 0; p < shape.pairs; ++p) {
            for (std::uint32_t i = 0; i < shape.seqLen; ++i) {
                q[std::size_t(p) * shape.seqLen + i] =
                    batch.queries[p][i];
                t[std::size_t(p) * shape.seqLen + i] =
                    batch.targets[p][i];
            }
        }

        NwBuffers bufs;
        bufs.pairs = shape.pairs;
        bufs.len = shape.seqLen;
        auto dq = dev.alloc<char>(q.size());
        auto dt = dev.alloc<char>(t.size());
        const std::size_t diag_count =
            std::size_t(shape.pairs) * (shape.seqLen + 1);
        auto d_diag0 = dev.alloc<std::int32_t>(diag_count);
        auto d_diag1 = dev.alloc<std::int32_t>(diag_count);
        auto d_diag2 = dev.alloc<std::int32_t>(diag_count);
        auto ds = dev.alloc<std::int32_t>(shape.pairs);
        bufs.query = dq.addr;
        bufs.target = dt.addr;
        bufs.diag[0] = d_diag0.addr;
        bufs.diag[1] = d_diag1.addr;
        bufs.diag[2] = d_diag2.addr;
        bufs.scores = ds.addr;

        const Cycles start = dev.gpu().now();
        dev.upload(dq, q);
        dev.upload(dt, t);

        AppRunResult result;
        if (opts.cdp) {
            LaunchSpec parent;
            parent.name = "nw_cdp_parent";
            parent.grid = {shape.pairs, 1, 1};
            parent.cta = {32, 1, 1};
            parent.res.regsPerThread = 24;
            parent.body = std::make_shared<NwCdpParent>(
                bufs, shape, scoring, opts.sharedMem);
            result.kernelCycles += dev.launch(parent).cycles;
            result.primarySpec = parent;
        } else {
            for (std::uint32_t k = 0; k < shape.launches(); ++k) {
                LaunchSpec spec;
                spec.name = "nw_tile";
                spec.grid = shape.grid();
                spec.cta = shape.cta();
                spec.res.regsPerThread = 28;
                spec.res.smemPerCtaBytes = 16 * 1024;
                spec.body = std::make_shared<NwTileKernel>(
                    bufs, k * shape.diagTile, shape.diagTile, scoring,
                    opts.sharedMem);
                result.kernelCycles += dev.launch(spec).cycles;
                if (k == 0)
                    result.primarySpec = spec;
            }
        }

        const auto gpu_scores = dev.download(ds);
        result.totalCycles = dev.gpu().now() - start;

        const auto cpu_start = std::chrono::steady_clock::now();
        bool ok = true;
        for (std::uint32_t p = 0; p < shape.pairs; ++p) {
            const int expected = genomics::nwScore(
                batch.queries[p], batch.targets[p], scoring);
            if (gpu_scores[p] != expected) {
                warn("NW: pair ", p, " GPU ", gpu_scores[p], " CPU ",
                     expected);
                ok = false;
            }
        }
        result.cpuReferenceSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - cpu_start).count();
        result.verified = ok;
        result.detail = std::to_string(shape.pairs) +
                        " pairs, wavefront tiles of " +
                        std::to_string(shape.diagTile) + " diagonals";
        return result;
    }
};

} // namespace

std::unique_ptr<BenchmarkApp>
makeNwApp()
{
    return std::make_unique<NwApp>();
}

} // namespace ggpu::kernels
