#include "mem/cache.hh"

#include <bit>

#include "common/log.hh"

namespace ggpu::mem
{

Cache::Cache(std::uint32_t size_bytes, std::uint32_t assoc,
             std::uint32_t line_bytes, std::string name)
    : enabled_(size_bytes != 0), lineBytes_(line_bytes), assoc_(assoc),
      numSets_(0), name_(std::move(name))
{
    if (line_bytes == 0 || !std::has_single_bit(line_bytes))
        fatal("cache ", name_, ": line size must be a power of two");
    if (!enabled_)
        return;
    if (assoc_ == 0)
        fatal("cache ", name_, ": associativity must be positive");
    std::uint32_t lines = size_bytes / lineBytes_;
    if (lines == 0)
        fatal("cache ", name_, ": capacity smaller than one line");
    if (assoc_ > lines)
        assoc_ = lines;  // fully-associative corner
    numSets_ = lines / assoc_;
    if (numSets_ == 0 || !std::has_single_bit(numSets_))
        fatal("cache ", name_, ": set count must be a power of two, got ",
              numSets_);
    lines_.resize(std::size_t(numSets_) * assoc_);
}

std::uint32_t
Cache::setIndex(Addr line_addr) const
{
    return std::uint32_t((line_addr / lineBytes_) & (numSets_ - 1));
}

CacheResult
Cache::access(Addr addr, bool write)
{
    (void)write;  // write-allocate: stores behave like loads for tags
    if (!enabled_)
        return CacheResult::Bypass;

    accesses_.inc();
    ++useClock_;

    const Addr line = lineAddr(addr);
    const std::size_t base = std::size_t(setIndex(line)) * assoc_;

    std::size_t victim = base;
    std::uint64_t oldest = UINT64_MAX;
    for (std::size_t i = base; i < base + assoc_; ++i) {
        Line &entry = lines_[i];
        if (entry.valid && entry.tag == line) {
            entry.lastUse = useClock_;
            hits_.inc();
            return CacheResult::Hit;
        }
        if (!entry.valid) {
            victim = i;
            oldest = 0;
        } else if (entry.lastUse < oldest) {
            victim = i;
            oldest = entry.lastUse;
        }
    }

    misses_.inc();
    lines_[victim] = {line, true, useClock_};
    return CacheResult::Miss;
}

bool
Cache::contains(Addr addr) const
{
    if (!enabled_)
        return false;
    const Addr line = lineAddr(addr);
    const std::size_t base = std::size_t(setIndex(line)) * assoc_;
    for (std::size_t i = base; i < base + assoc_; ++i)
        if (lines_[i].valid && lines_[i].tag == line)
            return true;
    return false;
}

void
Cache::invalidate(Addr addr)
{
    if (!enabled_)
        return;
    const Addr line = lineAddr(addr);
    const std::size_t base = std::size_t(setIndex(line)) * assoc_;
    for (std::size_t i = base; i < base + assoc_; ++i) {
        if (lines_[i].valid && lines_[i].tag == line) {
            lines_[i].valid = false;
            return;
        }
    }
}

void
Cache::flush()
{
    for (auto &entry : lines_)
        entry.valid = false;
}

void
Cache::resetStats()
{
    accesses_.reset();
    hits_.reset();
    misses_.reset();
}

} // namespace ggpu::mem
