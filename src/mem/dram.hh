/**
 * @file
 * GDDR channel model with banked row buffers and pluggable request
 * scheduling (FIFO, FR-FCFS, OoO-128 — Table I / Fig 16). Tracks the
 * data-pin busy time needed for the paper's DRAM efficiency (Fig 17)
 * and DRAM utilization (Fig 18) metrics.
 */

#ifndef GGPU_MEM_DRAM_HH
#define GGPU_MEM_DRAM_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace ggpu::mem
{

/** One memory request as seen by a DRAM channel. */
struct DramRequest
{
    Addr lineAddr = 0;
    bool write = false;
    Cycles arrival = 0;
    std::uint64_t reqId = 0;   //!< Opaque tag for completion routing
};

/** A serviced request and the cycle its data transfer finished. */
struct DramCompletion
{
    std::uint64_t reqId = 0;
    bool write = false;
    Cycles doneAt = 0;
};

/**
 * One DRAM channel: a request queue, a set of banks with open-row
 * tracking, and a shared data bus.
 *
 * Timing approximation: a request issues when its bank is ready; the
 * data transfer starts after the row-hit or row-miss service latency
 * (whichever applies) and once the shared data pins are free, occupying
 * them for lineBytes/burstBytes bursts. Bank-level parallelism overlaps
 * activation latencies across banks.
 */
class DramChannel
{
  public:
    DramChannel(const GpuConfig &cfg, int channel_id);

    /** Whether the request queue has space under the active policy. */
    bool canAccept() const;

    /** Enqueue a request. Caller must have checked canAccept(). */
    void push(const DramRequest &req);

    /**
     * Advance to cycle @p now in one call, replaying every cycle in
     * (lastTick, now) at which the channel could have changed state
     * exactly as the per-cycle loop would have: transfers retire at
     * their exact doneAt cycle (handed back in (doneAt, reqId) age
     * order), at most one request issues per replayed cycle under the
     * active scheduler, and — when @p overflow is given — the queue
     * refills from it at interior cycles as slots free up. The
     * boundary cycle @p now itself never refills from @p overflow:
     * that drain belongs to the caller, after this cycle's arrivals
     * have been pushed. A repeated call at the same @p now retires
     * due transfers and issues at most one more request, preserving
     * the old one-issue-per-tick contract within a cycle.
     */
    void advanceTo(Cycles now, std::vector<DramCompletion> &completed,
                   std::deque<DramRequest> *overflow = nullptr);

    /** True when no request is queued or in flight. */
    bool idle() const { return queue_.empty() && inFlight_.empty(); }

    /** Requests waiting in the scheduler queue (deadlock forensics). */
    std::size_t queueDepth() const { return queue_.size(); }

    /** Issued requests whose data transfer has not completed yet. */
    std::size_t inFlightCount() const { return inFlight_.size(); }

    /**
     * Earliest future cycle (> @p now) at which this channel could make
     * progress (issue a queued request or complete a transfer); ~0 when
     * idle. The reference loop's wake bound: it must never skip a cycle
     * at which a request becomes issuable.
     */
    Cycles nextEventAt(Cycles now) const;

    /**
     * Lower bound (> @p now) on the next cycle a transfer completes;
     * ~0 when idle. Coarser than nextEventAt(): advanceTo() replays
     * issues and overflow refills internally, so a caller using it
     * only needs to wake at completions — the only events with
     * externally visible effects. Exact for in-flight transfers;
     * for queued requests it bounds the earliest possible completion
     * (first issuable cycle plus the cheapest service latency, or the
     * data-pin backlog, plus the line transfer), which also bounds
     * every later issue because service latencies and the pin
     * reservation only push completions further out.
     */
    Cycles nextCompletionAt(Cycles now) const;

    void resetStats();

    // Statistics for Figs 16-18.
    std::uint64_t served() const { return served_.value(); }
    std::uint64_t rowHits() const { return rowHits_.value(); }
    std::uint64_t rowMisses() const { return rowMisses_.value(); }
    std::uint64_t pinBusyCycles() const { return pinBusy_.value(); }
    std::uint64_t activeCycles() const { return active_.value(); }

    /** Fraction of active (pending-work) cycles spent moving data. */
    double efficiency() const { return ratio(pinBusyCycles(),
                                             activeCycles()); }

  private:
    struct Bank
    {
        Addr openRow = ~Addr(0);
        Cycles readyAt = 0;
    };

    std::uint32_t bankOf(Addr line_addr) const;
    Addr rowOf(Addr line_addr) const;

    /** Index into queue_ of the request to issue now, or -1. */
    int pickRequest(Cycles now) const;

    /** Earliest cycle >= @p from a queued request can issue; ~0 if none. */
    Cycles nextIssuableAt(Cycles from) const;

    /** Move transfers with doneAt <= @p now into @p completed, age-ordered. */
    void retireDue(Cycles now, std::vector<DramCompletion> &completed);

    /** Issue at most one queued request at cycle @p now. */
    void issueOne(Cycles now);

    const GpuConfig &cfg_;
    int channelId_;
    std::size_t queueCapacity_;
    Cycles dataCyclesPerLine_;
    Cycles minServiceLatency_;

    std::deque<DramRequest> queue_;
    std::vector<Bank> banks_;
    Cycles pinFreeAt_ = 0;
    Cycles lastTick_ = 0;
    std::vector<DramCompletion> inFlight_;

    Counter served_;
    Counter rowHits_;
    Counter rowMisses_;
    Counter pinBusy_;
    Counter active_;
};

} // namespace ggpu::mem

#endif // GGPU_MEM_DRAM_HH
