/**
 * @file
 * Set-associative tag-array cache model with LRU replacement, used for
 * both the per-SM L1 data caches and the chip-wide sliced L2 (Table I
 * geometries). The simulator is trace-driven, so the cache tracks tags
 * and statistics only; data correctness is handled by the functional
 * emission phase.
 */

#ifndef GGPU_MEM_CACHE_HH
#define GGPU_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ggpu::mem
{

/** Outcome of a cache lookup. */
enum class CacheResult
{
    Hit,
    Miss,
    Bypass  //!< Cache disabled (size 0); access goes straight through
};

/**
 * Tag-only set-associative cache with true-LRU replacement.
 *
 * Addresses are line-aligned internally; the caller may pass any byte
 * address within the line.
 */
class Cache
{
  public:
    /**
     * @param size_bytes Total capacity; 0 creates a disabled (bypass) cache.
     * @param assoc Ways per set. When size/assoc yields fewer than one set
     *        the associativity is clamped down (fully-associative corner).
     * @param line_bytes Cache line size (power of two).
     * @param name Label used in error messages.
     */
    Cache(std::uint32_t size_bytes, std::uint32_t assoc,
          std::uint32_t line_bytes, std::string name);

    /**
     * Look up @p addr; allocate on miss.
     * @param write True for store accesses (write-allocate policy).
     * @return Hit, Miss, or Bypass when the cache is disabled.
     */
    CacheResult access(Addr addr, bool write);

    /** Probe without updating LRU, allocating, or counting stats. */
    bool contains(Addr addr) const;

    /** Drop one line if present (write-through write-invalidate). */
    void invalidate(Addr addr);

    /** Drop all cached lines (models the inter-kernel locality loss the
     *  paper attributes to cudaMemcpy between launches). */
    void flush();

    /** Reset statistics but keep cache contents. */
    void resetStats();

    bool enabled() const { return enabled_; }
    std::uint32_t lineBytes() const { return lineBytes_; }
    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return assoc_; }

    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    double missRate() const { return ratio(misses(), accesses()); }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    Addr lineAddr(Addr addr) const { return addr & ~Addr(lineBytes_ - 1); }
    std::uint32_t setIndex(Addr line_addr) const;

    bool enabled_;
    std::uint32_t lineBytes_;
    std::uint32_t assoc_;
    std::uint32_t numSets_;
    std::string name_;
    std::uint64_t useClock_ = 0;
    std::vector<Line> lines_;  //!< numSets_ * assoc_, set-major

    Counter accesses_;
    Counter hits_;
    Counter misses_;
};

} // namespace ggpu::mem

#endif // GGPU_MEM_CACHE_HH
