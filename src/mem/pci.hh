/**
 * @file
 * Host-device interconnect (PCIe) transfer-time model. Figure 4 of the
 * paper counts cudaMemcpy ("PCI") transactions and their total/average
 * time; this model supplies the per-transfer latency used there.
 */

#ifndef GGPU_MEM_PCI_HH
#define GGPU_MEM_PCI_HH

#include <cstdint>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace ggpu::mem
{

/** Direction of a host-device transfer. */
enum class PciDirection { HostToDevice, DeviceToHost };

/** Latency/bandwidth model of PCIe transfers plus transaction stats. */
class PciModel
{
  public:
    explicit PciModel(const PciConfig &cfg) : cfg_(cfg) {}

    /**
     * Record one cudaMemcpy-style transfer and return its duration in
     * GPU core cycles at @p core_clock_ghz.
     */
    Cycles transfer(std::uint64_t bytes, PciDirection dir,
                    double core_clock_ghz);

    /** Duration of a @p bytes transfer in seconds. */
    double transferSeconds(std::uint64_t bytes) const;

    std::uint64_t transactions() const { return transactions_.value(); }
    std::uint64_t bytesMoved() const { return bytes_.value(); }
    double totalSeconds() const { return totalSeconds_; }

    void resetStats();

  private:
    PciConfig cfg_;
    Counter transactions_;
    Counter bytes_;
    double totalSeconds_ = 0.0;
};

} // namespace ggpu::mem

#endif // GGPU_MEM_PCI_HH
