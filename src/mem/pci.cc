#include "mem/pci.hh"

#include <cmath>

namespace ggpu::mem
{

double
PciModel::transferSeconds(std::uint64_t bytes) const
{
    const double latency_s = cfg_.latencyUs * 1e-6;
    const double bw_bytes_per_s = cfg_.bandwidthGBs * 1e9;
    return latency_s + double(bytes) / bw_bytes_per_s;
}

Cycles
PciModel::transfer(std::uint64_t bytes, PciDirection dir,
                   double core_clock_ghz)
{
    (void)dir;  // symmetric link; direction kept for future asymmetry
    transactions_.inc();
    bytes_.inc(bytes);
    const double seconds = transferSeconds(bytes);
    totalSeconds_ += seconds;
    return Cycles(std::llround(seconds * core_clock_ghz * 1e9));
}

void
PciModel::resetStats()
{
    transactions_.reset();
    bytes_.reset();
    totalSeconds_ = 0.0;
}

} // namespace ggpu::mem
