#include "mem/dram.hh"

#include <algorithm>

#include "common/log.hh"

namespace ggpu::mem
{

DramChannel::DramChannel(const GpuConfig &cfg, int channel_id)
    : cfg_(cfg), channelId_(channel_id)
{
    queueCapacity_ = cfg.memSched == MemSchedPolicy::OoO128
        ? 128 : std::size_t(cfg.memSchedQueueSize);
    banks_.resize(cfg.dramBanksPerChannel);
    const std::uint32_t bursts =
        (cfg.lineBytes + cfg.dramBurstBytes - 1) / cfg.dramBurstBytes;
    dataCyclesPerLine_ = Cycles(bursts) * cfg.dramBurstCycles;
}

std::uint32_t
DramChannel::bankOf(Addr line_addr) const
{
    return std::uint32_t((line_addr / cfg_.dramRowBytes)
                         % banks_.size());
}

Addr
DramChannel::rowOf(Addr line_addr) const
{
    return line_addr / (Addr(cfg_.dramRowBytes) * banks_.size());
}

bool
DramChannel::canAccept() const
{
    return queue_.size() < queueCapacity_;
}

void
DramChannel::push(const DramRequest &req)
{
    if (!canAccept())
        panic("DramChannel ", channelId_, ": push on full queue");
    queue_.push_back(req);
}

int
DramChannel::pickRequest(Cycles now) const
{
    if (queue_.empty())
        return -1;

    if (cfg_.memSched == MemSchedPolicy::Fifo) {
        // Strict in-order: only the head may issue, and only when its
        // bank has finished its previous operation.
        const DramRequest &head = queue_.front();
        return banks_[bankOf(head.lineAddr)].readyAt <= now ? 0 : -1;
    }

    // FR-FCFS (and its larger-window OoO-128 variant): prefer the oldest
    // row-buffer hit whose bank is ready; otherwise the oldest ready
    // request (which opens a new row).
    int oldest_ready = -1;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        const DramRequest &req = queue_[i];
        const Bank &bank = banks_[bankOf(req.lineAddr)];
        if (bank.readyAt > now)
            continue;
        if (bank.openRow == rowOf(req.lineAddr))
            return int(i);
        if (oldest_ready < 0)
            oldest_ready = int(i);
    }
    return oldest_ready;
}

void
DramChannel::tick(Cycles now, std::vector<DramCompletion> &completed)
{
    // Account active cycles (work pending or in flight) since last tick.
    if (now > lastTick_) {
        if (!queue_.empty() || !inFlight_.empty())
            active_.inc(now - lastTick_);
        lastTick_ = now;
    }

    // Retire finished transfers. The swap-with-back removal scrambles
    // vector order, so sort the batch by completion age before handing
    // it downstream — arbitration must see age-ordered retirement.
    const std::size_t first_retired = completed.size();
    for (std::size_t i = 0; i < inFlight_.size();) {
        if (inFlight_[i].doneAt <= now) {
            completed.push_back(inFlight_[i]);
            inFlight_[i] = inFlight_.back();
            inFlight_.pop_back();
        } else {
            ++i;
        }
    }
    std::sort(completed.begin() + std::ptrdiff_t(first_retired),
              completed.end(),
              [](const DramCompletion &a, const DramCompletion &b) {
                  return a.doneAt != b.doneAt ? a.doneAt < b.doneAt
                                              : a.reqId < b.reqId;
              });

    // Issue at most one request per cycle.
    const int pick = pickRequest(now);
    if (pick < 0)
        return;

    const DramRequest req = queue_[std::size_t(pick)];
    queue_.erase(queue_.begin() + pick);

    Bank &bank = banks_[bankOf(req.lineAddr)];
    const bool row_hit = bank.openRow == rowOf(req.lineAddr);
    const Cycles service = row_hit
        ? cfg_.dramRowHitLatency : cfg_.dramRowMissLatency;
    (row_hit ? rowHits_ : rowMisses_).inc();

    const Cycles data_start = std::max(now + service, pinFreeAt_);
    const Cycles done = data_start + dataCyclesPerLine_;
    pinFreeAt_ = done;
    bank.readyAt = done;
    bank.openRow = rowOf(req.lineAddr);

    pinBusy_.inc(dataCyclesPerLine_);
    served_.inc();
    inFlight_.push_back({req.reqId, req.write, done});
}

Cycles
DramChannel::nextEventAt(Cycles now) const
{
    Cycles next = ~Cycles(0);
    for (const auto &inflight : inFlight_)
        next = std::min(next, inflight.doneAt);
    for (const auto &req : queue_) {
        const Bank &bank = banks_[bankOf(req.lineAddr)];
        next = std::min(next, std::max(bank.readyAt, now + 1));
    }
    return next <= now ? now + 1 : next;
}

void
DramChannel::resetStats()
{
    served_.reset();
    rowHits_.reset();
    rowMisses_.reset();
    pinBusy_.reset();
    active_.reset();
}

} // namespace ggpu::mem
