#include "mem/dram.hh"

#include <algorithm>

#include "common/log.hh"

namespace ggpu::mem
{

DramChannel::DramChannel(const GpuConfig &cfg, int channel_id)
    : cfg_(cfg), channelId_(channel_id)
{
    queueCapacity_ = cfg.memSched == MemSchedPolicy::OoO128
        ? 128 : std::size_t(cfg.memSchedQueueSize);
    banks_.resize(cfg.dramBanksPerChannel);
    const std::uint32_t bursts =
        (cfg.lineBytes + cfg.dramBurstBytes - 1) / cfg.dramBurstBytes;
    dataCyclesPerLine_ = Cycles(bursts) * cfg.dramBurstCycles;
    minServiceLatency_ =
        std::min(cfg.dramRowHitLatency, cfg.dramRowMissLatency);
}

std::uint32_t
DramChannel::bankOf(Addr line_addr) const
{
    return std::uint32_t((line_addr / cfg_.dramRowBytes)
                         % banks_.size());
}

Addr
DramChannel::rowOf(Addr line_addr) const
{
    return line_addr / (Addr(cfg_.dramRowBytes) * banks_.size());
}

bool
DramChannel::canAccept() const
{
    return queue_.size() < queueCapacity_;
}

void
DramChannel::push(const DramRequest &req)
{
    if (!canAccept())
        panic("DramChannel ", channelId_, ": push on full queue");
    queue_.push_back(req);
}

int
DramChannel::pickRequest(Cycles now) const
{
    if (queue_.empty())
        return -1;

    if (cfg_.memSched == MemSchedPolicy::Fifo) {
        // Strict in-order: only the head may issue, and only when its
        // bank has finished its previous operation.
        const DramRequest &head = queue_.front();
        return banks_[bankOf(head.lineAddr)].readyAt <= now ? 0 : -1;
    }

    // FR-FCFS (and its larger-window OoO-128 variant): prefer the oldest
    // row-buffer hit whose bank is ready; otherwise the oldest ready
    // request (which opens a new row).
    int oldest_ready = -1;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        const DramRequest &req = queue_[i];
        const Bank &bank = banks_[bankOf(req.lineAddr)];
        if (bank.readyAt > now)
            continue;
        if (bank.openRow == rowOf(req.lineAddr))
            return int(i);
        if (oldest_ready < 0)
            oldest_ready = int(i);
    }
    return oldest_ready;
}

Cycles
DramChannel::nextIssuableAt(Cycles from) const
{
    if (queue_.empty())
        return ~Cycles(0);

    if (cfg_.memSched == MemSchedPolicy::Fifo) {
        // Strict in-order: only the head can ever issue.
        const DramRequest &head = queue_.front();
        return std::max(from, banks_[bankOf(head.lineAddr)].readyAt);
    }

    Cycles best = ~Cycles(0);
    for (const auto &req : queue_) {
        const Bank &bank = banks_[bankOf(req.lineAddr)];
        best = std::min(best, std::max(from, bank.readyAt));
    }
    return best;
}

void
DramChannel::retireDue(Cycles now, std::vector<DramCompletion> &completed)
{
    // The swap-with-back removal scrambles vector order, so sort the
    // batch by completion age before handing it downstream —
    // arbitration must see age-ordered retirement.
    const std::size_t first_retired = completed.size();
    for (std::size_t i = 0; i < inFlight_.size();) {
        if (inFlight_[i].doneAt <= now) {
            completed.push_back(inFlight_[i]);
            inFlight_[i] = inFlight_.back();
            inFlight_.pop_back();
        } else {
            ++i;
        }
    }
    std::sort(completed.begin() + std::ptrdiff_t(first_retired),
              completed.end(),
              [](const DramCompletion &a, const DramCompletion &b) {
                  return a.doneAt != b.doneAt ? a.doneAt < b.doneAt
                                              : a.reqId < b.reqId;
              });
}

void
DramChannel::issueOne(Cycles now)
{
    const int pick = pickRequest(now);
    if (pick < 0)
        return;

    const DramRequest req = queue_[std::size_t(pick)];
    queue_.erase(queue_.begin() + pick);

    Bank &bank = banks_[bankOf(req.lineAddr)];
    const bool row_hit = bank.openRow == rowOf(req.lineAddr);
    const Cycles service = row_hit
        ? cfg_.dramRowHitLatency : cfg_.dramRowMissLatency;
    (row_hit ? rowHits_ : rowMisses_).inc();

    const Cycles data_start = std::max(now + service, pinFreeAt_);
    const Cycles done = data_start + dataCyclesPerLine_;
    pinFreeAt_ = done;
    bank.readyAt = done;
    bank.openRow = rowOf(req.lineAddr);

    pinBusy_.inc(dataCyclesPerLine_);
    served_.inc();
    inFlight_.push_back({req.reqId, req.write, done});
}

void
DramChannel::advanceTo(Cycles now, std::vector<DramCompletion> &completed,
                       std::deque<DramRequest> *overflow)
{
    if (now <= lastTick_) {
        // Repeated call within the same cycle (the simulator ticks a
        // partition once per arriving event plus once in its main
        // loop): each call may issue at most one more request, the
        // same contract per-cycle ticking had.
        retireDue(now, completed);
        issueOne(now);
        return;
    }

    // Replay every cycle in (lastTick_, now] at which the channel
    // state can change — a transfer retiring or a request becoming
    // issuable — exactly as cycle-by-cycle ticking would have. The
    // state is constant across the stretches in between, so bulk
    // active-cycle accounting per stretch matches what per-cycle
    // ticks would have recorded.
    while (lastTick_ < now) {
        Cycles next = now;
        for (const auto &inflight : inFlight_)
            next = std::min(next, inflight.doneAt);
        next = std::min(next, nextIssuableAt(lastTick_ + 1));
        next = std::max(std::min(next, now), lastTick_ + 1);

        if (!queue_.empty() || !inFlight_.empty())
            active_.inc(next - lastTick_);
        lastTick_ = next;

        retireDue(next, completed);
        issueOne(next);

        // Refill freed queue slots at interior cycles only. The
        // boundary cycle's drain belongs to the caller so that
        // requests arriving at `now` keep entering the queue ahead
        // of older overflow entries, as the per-cycle loop's
        // event-before-drain ordering did.
        if (overflow && next < now) {
            while (!overflow->empty() && canAccept()) {
                queue_.push_back(overflow->front());
                overflow->pop_front();
            }
        }
    }
}

Cycles
DramChannel::nextEventAt(Cycles now) const
{
    // nextIssuableAt respects the scheduler: under FIFO only the head
    // can issue, so min-ing over every queued request's bank (as an
    // earlier revision did) woke the caller at cycles where nothing
    // could happen and then crept cycle-by-cycle to the real one.
    Cycles next = nextIssuableAt(now + 1);
    for (const auto &inflight : inFlight_)
        next = std::min(next, inflight.doneAt);
    return next <= now ? now + 1 : next;
}

Cycles
DramChannel::nextCompletionAt(Cycles now) const
{
    Cycles next = ~Cycles(0);
    for (const auto &inflight : inFlight_)
        next = std::min(next, inflight.doneAt);
    if (!queue_.empty()) {
        // Earliest completion any queued request could produce: first
        // issuable cycle plus the cheapest service latency, deferred
        // by the data-pin backlog, plus the line transfer. Every later
        // issue finishes no earlier (pinFreeAt_ is monotone and each
        // transfer extends it), so this also bounds requests that
        // refill from an overflow queue after interior issues.
        const Cycles issue = nextIssuableAt(now + 1);
        const Cycles start =
            std::max(issue + minServiceLatency_, pinFreeAt_);
        next = std::min(next, start + dataCyclesPerLine_);
    }
    return next <= now ? now + 1 : next;
}

void
DramChannel::resetStats()
{
    served_.reset();
    rowHits_.reset();
    rowMisses_.reset();
    pinBusy_.reset();
    active_.reset();
}

} // namespace ggpu::mem
