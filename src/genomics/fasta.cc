#include "genomics/fasta.hh"

#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace ggpu::genomics
{

std::vector<Sequence>
parseFasta(const std::string &text)
{
    std::vector<Sequence> seqs;
    std::istringstream in(text);
    std::string line;
    Sequence current;
    bool have_record = false;

    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (line[0] == '>') {
            if (have_record)
                seqs.push_back(std::move(current));
            current = Sequence{};
            current.name = line.substr(1);
            have_record = true;
        } else if (line[0] == ';') {
            continue;  // classic FASTA comment
        } else {
            if (!have_record)
                fatal("FASTA: sequence data before any '>' header");
            current.data += line;
        }
    }
    if (have_record)
        seqs.push_back(std::move(current));
    return seqs;
}

std::vector<Sequence>
parseFastq(const std::string &text)
{
    std::vector<Sequence> seqs;
    std::istringstream in(text);
    std::string header, bases, plus, qual;

    while (std::getline(in, header)) {
        if (header.empty())
            continue;
        if (header[0] != '@')
            fatal("FASTQ: expected '@' header, got: ", header);
        if (!std::getline(in, bases) || !std::getline(in, plus) ||
            !std::getline(in, qual))
            fatal("FASTQ: truncated record for ", header);
        if (plus.empty() || plus[0] != '+')
            fatal("FASTQ: expected '+' separator for ", header);
        if (qual.size() != bases.size())
            fatal("FASTQ: quality length mismatch for ", header);
        Sequence seq;
        seq.name = header.substr(1);
        seq.data = bases;
        seq.qual = qual;
        seqs.push_back(std::move(seq));
    }
    return seqs;
}

std::string
writeFasta(const std::vector<Sequence> &seqs, std::size_t width)
{
    if (width == 0)
        fatal("writeFasta: width must be positive");
    std::ostringstream out;
    for (const Sequence &seq : seqs) {
        out << '>' << seq.name << '\n';
        for (std::size_t i = 0; i < seq.data.size(); i += width)
            out << seq.data.substr(i, width) << '\n';
    }
    return out.str();
}

std::string
writeFastq(const std::vector<Sequence> &seqs)
{
    std::ostringstream out;
    for (const Sequence &seq : seqs) {
        out << '@' << seq.name << '\n' << seq.data << '\n' << "+\n";
        if (seq.qual.size() == seq.data.size())
            out << seq.qual << '\n';
        else
            out << std::string(seq.data.size(), 'I') << '\n';
    }
    return out.str();
}

std::vector<Sequence>
readSequenceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open sequence file: ", path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    for (char c : text) {
        if (c == '>')
            return parseFasta(text);
        if (c == '@')
            return parseFastq(text);
        if (!std::isspace(static_cast<unsigned char>(c)))
            fatal("file ", path, " is neither FASTA nor FASTQ");
    }
    return {};
}

void
writeFastaFile(const std::string &path, const std::vector<Sequence> &seqs)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot write sequence file: ", path);
    out << writeFasta(seqs);
}

} // namespace ggpu::genomics
