#include "genomics/index/fm_index.hh"

#include <algorithm>
#include <numeric>

#include "common/log.hh"
#include "genomics/sequence.hh"

namespace ggpu::genomics
{

std::vector<std::uint32_t>
buildSuffixArray(const std::vector<std::uint8_t> &codes)
{
    const std::size_t n = codes.size();
    std::vector<std::uint32_t> sa(n), rank(n), tmp(n);
    std::iota(sa.begin(), sa.end(), 0);
    for (std::size_t i = 0; i < n; ++i)
        rank[i] = codes[i];

    for (std::size_t k = 1;; k *= 2) {
        auto key = [&rank, n, k](std::uint32_t i) {
            const std::uint32_t second =
                i + k < n ? rank[i + k] + 1 : 0;
            return std::pair<std::uint32_t, std::uint32_t>(rank[i],
                                                           second);
        };
        std::sort(sa.begin(), sa.end(),
                  [&key](std::uint32_t a, std::uint32_t b) {
                      return key(a) < key(b);
                  });
        tmp[sa[0]] = 0;
        for (std::size_t i = 1; i < n; ++i) {
            tmp[sa[i]] = tmp[sa[i - 1]] +
                         (key(sa[i - 1]) < key(sa[i]) ? 1 : 0);
        }
        rank = tmp;
        if (rank[sa[n - 1]] == n - 1)
            break;
    }
    return sa;
}

FmIndex::FmIndex(const std::string &text, std::uint32_t sa_sample_rate)
    : saSampleRate_(sa_sample_rate)
{
    if (text.empty())
        fatal("FmIndex: empty text");
    if (sa_sample_rate == 0)
        fatal("FmIndex: SA sample rate must be positive");
    textSize_ = text.size();

    std::vector<std::uint8_t> codes;
    codes.reserve(text.size() + 1);
    for (char c : text)
        codes.push_back(baseToCode(c));
    codes.push_back(sentinel);

    sa_ = buildSuffixArray(codes);
    const std::size_t n = codes.size();

    bwt_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t suffix = sa_[i];
        bwt_[i] = suffix == 0 ? codes[n - 1] : codes[suffix - 1];
        if (bwt_[i] == sentinel)
            sentinelRow_ = std::uint32_t(i);
    }

    // C array: codes strictly smaller than c across the text.
    std::array<std::uint32_t, 6> counts{};
    for (std::uint8_t c : codes)
        ++counts[c];
    std::uint32_t running = 0;
    for (std::size_t c = 0; c < 5; ++c) {
        c_[c] = running;
        running += counts[c];
    }

    // Occ checkpoints every occStride_ BWT positions, codes 0..3.
    const std::size_t blocks = n / occStride_ + 1;
    occCheckpoints_.assign(4 * blocks, 0);
    std::array<std::uint32_t, 4> acc{};
    for (std::size_t i = 0; i < n; ++i) {
        if (i % occStride_ == 0) {
            for (std::size_t c = 0; c < 4; ++c)
                occCheckpoints_[c * blocks + i / occStride_] = acc[c];
        }
        if (bwt_[i] < 4)
            ++acc[bwt_[i]];
    }

    // SA samples at rows whose suffix position is a sampling multiple.
    saSamples_.assign(n, UINT32_MAX);
    for (std::size_t i = 0; i < n; ++i)
        if (sa_[i] % saSampleRate_ == 0)
            saSamples_[i] = sa_[i];
}

std::uint32_t
FmIndex::occ(std::uint8_t code, std::uint32_t pos) const
{
    if (code >= 4)
        panic("FmIndex::occ: code ", int(code), " out of range");
    const std::size_t blocks = bwt_.size() / occStride_ + 1;
    const std::uint32_t block = pos / occStride_;
    std::uint32_t count = occCheckpoints_[code * blocks + block];
    for (std::uint32_t i = block * occStride_; i < pos; ++i)
        if (bwt_[i] == code)
            ++count;
    return count;
}

FmIndex::Range
FmIndex::extend(const Range &range, std::uint8_t code) const
{
    Range out;
    out.lo = c_[code] + occ(code, range.lo);
    out.hi = c_[code] + occ(code, range.hi);
    return out;
}

FmIndex::Range
FmIndex::search(const std::string &pattern) const
{
    Range range = wholeRange();
    for (auto it = pattern.rbegin(); it != pattern.rend(); ++it) {
        range = extend(range, baseToCode(*it));
        if (range.empty())
            return range;
    }
    return range;
}

std::uint32_t
FmIndex::lfMap(std::uint32_t row) const
{
    const std::uint8_t code = bwt_[row];
    if (code == sentinel)
        return c_[sentinel];
    return c_[code] + occ(code, row);
}

std::vector<std::uint32_t>
FmIndex::locate(const Range &range, std::size_t max_hits) const
{
    std::vector<std::uint32_t> hits;
    const std::uint32_t limit =
        std::min<std::uint32_t>(range.hi,
                                range.lo +
                                    std::uint32_t(max_hits));
    for (std::uint32_t row = range.lo; row < limit; ++row) {
        std::uint32_t r = row;
        std::uint32_t steps = 0;
        while (saSamples_[r] == UINT32_MAX) {
            r = lfMap(r);
            ++steps;
            if (steps > bwt_.size())
                panic("FmIndex::locate: LF walk did not terminate");
        }
        hits.push_back(saSamples_[r] + steps);
    }
    std::sort(hits.begin(), hits.end());
    return hits;
}

std::vector<std::uint32_t>
FmIndex::flatOccTable() const
{
    const std::size_t n = bwt_.size();
    std::vector<std::uint32_t> flat(4 * (n + 1), 0);
    std::array<std::uint32_t, 4> acc{};
    for (std::size_t i = 0; i <= n; ++i) {
        for (std::size_t c = 0; c < 4; ++c)
            flat[c * (n + 1) + i] = acc[c];
        if (i < n && bwt_[i] < 4)
            ++acc[bwt_[i]];
    }
    return flat;
}

} // namespace ggpu::genomics
