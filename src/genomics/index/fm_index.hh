/**
 * @file
 * FM-index over 2-bit DNA (suffix array + BWT + rank structure), the
 * substrate of the NvBowtie-style read-mapping benchmark: exact-match
 * backward search and sampled-SA locate, plus a flattened occurrence
 * table exportable to simulated device memory for the GPU kernel.
 */

#ifndef GGPU_GENOMICS_INDEX_FM_INDEX_HH
#define GGPU_GENOMICS_INDEX_FM_INDEX_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace ggpu::genomics
{

/** FM-index of one canonical-DNA text. */
class FmIndex
{
  public:
    /** Half-open suffix-array interval of pattern occurrences. */
    struct Range
    {
        std::uint32_t lo = 0;
        std::uint32_t hi = 0;

        bool empty() const { return hi <= lo; }
        std::uint32_t count() const { return empty() ? 0 : hi - lo; }
    };

    /**
     * Build from @p text (A/C/G/T only). A sentinel is appended
     * internally. @p sa_sample_rate controls locate() memory/time.
     */
    explicit FmIndex(const std::string &text,
                     std::uint32_t sa_sample_rate = 4);

    std::size_t textSize() const { return textSize_; }

    /** Exact-match backward search for @p pattern. */
    Range search(const std::string &pattern) const;

    /** One backward-extension step with base code @p code (0..3). */
    Range extend(const Range &range, std::uint8_t code) const;

    /** Initial range covering the whole index. */
    Range wholeRange() const
    {
        return {0, std::uint32_t(bwt_.size())};
    }

    /** Text positions of up to @p max_hits occurrences in @p range. */
    std::vector<std::uint32_t> locate(const Range &range,
                                      std::size_t max_hits = 16) const;

    /** rank of @p code in bwt[0, pos). */
    std::uint32_t occ(std::uint8_t code, std::uint32_t pos) const;
    /** Number of codes strictly smaller than @p code in the text. */
    std::uint32_t cOf(std::uint8_t code) const
    {
        return c_[code];
    }

    /**
     * Dense per-position occurrence table (occ[c][i] for all i), the
     * layout the GPU kernel walks: row-major [code][position], with
     * bwt.size()+1 entries per code.
     */
    std::vector<std::uint32_t> flatOccTable() const;
    const std::vector<std::uint8_t> &bwt() const { return bwt_; }
    const std::vector<std::uint32_t> &suffixArray() const { return sa_; }

  private:
    static constexpr std::uint8_t sentinel = 4;  //!< '$', smallest code

    std::uint32_t lfMap(std::uint32_t row) const;

    std::size_t textSize_ = 0;
    std::vector<std::uint8_t> bwt_;        //!< Codes 0..3 plus sentinel
    std::uint32_t sentinelRow_ = 0;        //!< BWT row holding '$'
    std::array<std::uint32_t, 5> c_{};     //!< C array over 0..4
    std::uint32_t occStride_ = 64;         //!< Checkpoint spacing
    std::vector<std::uint32_t> occCheckpoints_;  //!< [code][block]
    std::uint32_t saSampleRate_;
    std::vector<std::uint32_t> saSamples_; //!< SA values at sampled rows
    std::vector<std::uint32_t> sa_;        //!< Full SA (kept for tests)
};

/** Suffix array of @p codes (terminated text) by prefix doubling. */
std::vector<std::uint32_t> buildSuffixArray(
    const std::vector<std::uint8_t> &codes);

} // namespace ggpu::genomics

#endif // GGPU_GENOMICS_INDEX_FM_INDEX_HH
