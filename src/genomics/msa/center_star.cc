#include "genomics/msa/center_star.hh"

#include <algorithm>

#include "common/log.hh"
#include "genomics/align/nw.hh"

namespace ggpu::genomics
{

long long
centerScore(const std::vector<std::string> &seqs, std::size_t center,
            const Scoring &scoring)
{
    long long total = 0;
    for (std::size_t i = 0; i < seqs.size(); ++i) {
        if (i != center)
            total += nwScore(seqs[center], seqs[i], scoring);
    }
    return total;
}

std::size_t
pickCenter(const std::vector<std::string> &seqs, const Scoring &scoring)
{
    if (seqs.empty())
        fatal("pickCenter: empty sequence set");

    // All-pairs scores, reused symmetrically.
    const std::size_t k = seqs.size();
    std::vector<long long> sums(k, 0);
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = i + 1; j < k; ++j) {
            const int s = nwScore(seqs[i], seqs[j], scoring);
            sums[i] += s;
            sums[j] += s;
        }
    }
    return std::size_t(
        std::max_element(sums.begin(), sums.end()) - sums.begin());
}

MsaResult
centerStarAlign(const std::vector<std::string> &seqs,
                const Scoring &scoring)
{
    if (seqs.empty())
        fatal("centerStarAlign: empty sequence set");

    MsaResult out;
    out.centerIndex = pickCenter(seqs, scoring);
    const std::string &center = seqs[out.centerIndex];
    const std::size_t clen = center.size();

    // Pairwise alignments of every sequence against the center.
    std::vector<NwAlignment> alns(seqs.size());
    for (std::size_t i = 0; i < seqs.size(); ++i) {
        if (i != out.centerIndex)
            alns[i] = nwAlign(center, seqs[i], scoring);
    }

    // ins[p] = max gaps any pairwise alignment inserts into the center
    // immediately before center position p (p == clen: at the end).
    std::vector<std::size_t> ins(clen + 1, 0);
    for (std::size_t i = 0; i < seqs.size(); ++i) {
        if (i == out.centerIndex)
            continue;
        std::size_t pos = 0, run = 0;
        for (char c : alns[i].alignedA) {
            if (c == '-') {
                ++run;
            } else {
                ins[pos] = std::max(ins[pos], run);
                run = 0;
                ++pos;
            }
        }
        ins[clen] = std::max(ins[clen], run);
    }

    // Build the master (center) row.
    std::string master;
    for (std::size_t p = 0; p < clen; ++p) {
        master.append(ins[p], '-');
        master.push_back(center[p]);
    }
    master.append(ins[clen], '-');

    // Re-pad every pairwise alignment onto the master gap pattern.
    out.rows.assign(seqs.size(), std::string());
    out.rows[out.centerIndex] = master;
    for (std::size_t i = 0; i < seqs.size(); ++i) {
        if (i == out.centerIndex)
            continue;
        const std::string &ga = alns[i].alignedA;  // gapped center
        const std::string &gb = alns[i].alignedB;  // gapped member
        std::string row;
        std::size_t pos = 0;   // center position reached
        std::size_t k2 = 0;    // cursor in the pairwise alignment
        for (std::size_t p = 0; p <= clen; ++p) {
            // Gaps this alignment inserts before center position p.
            std::size_t run = 0;
            while (k2 < ga.size() && ga[k2] == '-') {
                row.push_back(gb[k2]);
                ++k2;
                ++run;
            }
            row.append(ins[p] - run, '-');
            if (p < clen) {
                if (k2 >= ga.size() || ga[k2] != center[pos])
                    panic("centerStarAlign: master merge out of sync");
                row.push_back(gb[k2]);
                ++k2;
                ++pos;
            }
        }
        if (row.size() != master.size())
            panic("centerStarAlign: row length ", row.size(),
                  " != master length ", master.size());
        out.rows[i] = std::move(row);
    }

    out.sumOfPairsScore = sumOfPairs(out.rows, scoring);
    return out;
}

long long
sumOfPairs(const std::vector<std::string> &rows, const Scoring &scoring)
{
    long long total = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        for (std::size_t j = i + 1; j < rows.size(); ++j) {
            if (rows[i].size() != rows[j].size())
                fatal("sumOfPairs: ragged MSA rows");
            for (std::size_t c = 0; c < rows[i].size(); ++c) {
                const char a = rows[i][c];
                const char b = rows[j][c];
                if (a == '-' && b == '-')
                    continue;
                if (a == '-' || b == '-')
                    total += scoring.gapExtend;
                else
                    total += scoring.subst(a, b);
            }
        }
    }
    return total;
}

} // namespace ggpu::genomics
