/**
 * @file
 * Center-star multiple sequence alignment (the STAR benchmark): pick
 * the sequence with the best summed pairwise score as the center,
 * align every other sequence to it, and merge the pairwise gap
 * patterns into one MSA.
 */

#ifndef GGPU_GENOMICS_MSA_CENTER_STAR_HH
#define GGPU_GENOMICS_MSA_CENTER_STAR_HH

#include <cstddef>
#include <string>
#include <vector>

#include "genomics/align/scoring.hh"

namespace ggpu::genomics
{

/** A finished multiple alignment. */
struct MsaResult
{
    std::size_t centerIndex = 0;
    std::vector<std::string> rows;  //!< Gapped rows, equal lengths
    long long sumOfPairsScore = 0;  //!< SP score of the final MSA
};

/**
 * Sum of pairwise global scores of sequence @p center against all
 * others (the center-selection objective).
 */
long long centerScore(const std::vector<std::string> &seqs,
                      std::size_t center, const Scoring &scoring);

/** Index of the sequence maximizing centerScore(). */
std::size_t pickCenter(const std::vector<std::string> &seqs,
                       const Scoring &scoring);

/** Run the full center-star MSA. */
MsaResult centerStarAlign(const std::vector<std::string> &seqs,
                          const Scoring &scoring);

/** Sum-of-pairs score of an MSA (gap columns use gapExtend). */
long long sumOfPairs(const std::vector<std::string> &rows,
                     const Scoring &scoring);

} // namespace ggpu::genomics

#endif // GGPU_GENOMICS_MSA_CENTER_STAR_HH
