/**
 * @file
 * Greedy incremental alignment-based clustering (the nGIA / CLUSTER
 * benchmark): sequences sorted by length seed clusters greedily; a
 * short-word (k-mer) filter rejects obvious non-members before the
 * exact identity check via global alignment, exactly the pre-filter +
 * greedy-incremental structure of nGIA/CD-HIT.
 */

#ifndef GGPU_GENOMICS_CLUSTER_GREEDY_CLUSTER_HH
#define GGPU_GENOMICS_CLUSTER_GREEDY_CLUSTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "genomics/align/scoring.hh"
#include "genomics/sequence.hh"

namespace ggpu::genomics
{

/** Clustering knobs (CD-HIT-style defaults). */
struct ClusterParams
{
    double identityThreshold = 0.9;
    int wordLength = 5;            //!< Short-word filter k
    /** Minimum shared-word fraction to bother aligning. Derived from
     *  the identity threshold the way CD-HIT bounds word overlap. */
    double wordFilterSlack = 0.5;
    /** Length ratio below which a pair can never reach the identity
     *  threshold (pre-filter). */
    double minLengthRatio = 0.8;
};

/** Cluster assignment result. */
struct ClusterResult
{
    /** assignment[i] = cluster id of input sequence i. */
    std::vector<int> assignment;
    /** representatives[c] = input index of cluster c's representative. */
    std::vector<std::size_t> representatives;
    /** Number of candidate pairs that passed the k-mer filter. */
    std::uint64_t alignmentsPerformed = 0;
    /** Number of pairs rejected by the pre-filters. */
    std::uint64_t filteredOut = 0;
};

/** k-mer presence profile used by the short-word filter. */
std::vector<std::uint32_t> kmerProfile(const std::string &seq, int k);

/** Fraction of @p probe's k-mers present in @p reference's profile. */
double sharedWordFraction(const std::vector<std::uint32_t> &ref_profile,
                          const std::string &probe, int k);

/** Run greedy incremental clustering over @p seqs. */
ClusterResult greedyCluster(const std::vector<Sequence> &seqs,
                            const ClusterParams &params,
                            const Scoring &scoring);

} // namespace ggpu::genomics

#endif // GGPU_GENOMICS_CLUSTER_GREEDY_CLUSTER_HH
