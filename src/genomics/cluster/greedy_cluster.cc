#include "genomics/cluster/greedy_cluster.hh"

#include <algorithm>
#include <numeric>

#include "common/log.hh"
#include "genomics/align/banded.hh"

namespace ggpu::genomics
{

std::vector<std::uint32_t>
kmerProfile(const std::string &seq, int k)
{
    if (k <= 0 || k > 12)
        fatal("kmerProfile: k must be in [1, 12], got ", k);
    const std::size_t words = (std::size_t(1) << (2 * k)) / 32 + 1;
    std::vector<std::uint32_t> bits(words, 0);
    if (seq.size() < std::size_t(k))
        return bits;

    const std::uint32_t mask = (1u << (2 * k)) - 1;
    std::uint32_t code = 0;
    for (std::size_t i = 0; i < seq.size(); ++i) {
        code = ((code << 2) | baseToCode(seq[i])) & mask;
        if (i + 1 >= std::size_t(k))
            bits[code / 32] |= 1u << (code % 32);
    }
    return bits;
}

double
sharedWordFraction(const std::vector<std::uint32_t> &ref_profile,
                   const std::string &probe, int k)
{
    if (probe.size() < std::size_t(k))
        return 0.0;
    const std::uint32_t mask = (1u << (2 * k)) - 1;
    std::uint32_t code = 0;
    std::size_t total = 0, shared = 0;
    for (std::size_t i = 0; i < probe.size(); ++i) {
        code = ((code << 2) | baseToCode(probe[i])) & mask;
        if (i + 1 >= std::size_t(k)) {
            ++total;
            if (ref_profile[code / 32] & (1u << (code % 32)))
                ++shared;
        }
    }
    return total == 0 ? 0.0 : double(shared) / double(total);
}

ClusterResult
greedyCluster(const std::vector<Sequence> &seqs,
              const ClusterParams &params, const Scoring &scoring)
{
    if (params.identityThreshold <= 0.0 ||
        params.identityThreshold > 1.0)
        fatal("greedyCluster: identity threshold must be in (0, 1]");

    ClusterResult out;
    out.assignment.assign(seqs.size(), -1);

    // Process longest-first: representatives are always at least as
    // long as their members (the greedy incremental invariant).
    std::vector<std::size_t> order(seqs.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&seqs](std::size_t a, std::size_t b) {
                         return seqs[a].size() > seqs[b].size();
                     });

    struct Rep
    {
        std::size_t index;
        std::vector<std::uint32_t> profile;
    };
    std::vector<Rep> reps;

    for (std::size_t idx : order) {
        const std::string &probe = seqs[idx].data;
        int assigned = -1;

        for (std::size_t c = 0; c < reps.size(); ++c) {
            const std::string &rep = seqs[reps[c].index].data;

            // Pre-filter 1: length ratio bound.
            if (double(probe.size()) <
                params.minLengthRatio * double(rep.size())) {
                ++out.filteredOut;
                continue;
            }
            // Pre-filter 2: shared short words.
            const double shared = sharedWordFraction(
                reps[c].profile, probe, params.wordLength);
            if (shared <
                params.identityThreshold * params.wordFilterSlack) {
                ++out.filteredOut;
                continue;
            }

            ++out.alignmentsPerformed;
            const double identity = globalIdentity(rep, probe, scoring);
            if (identity >= params.identityThreshold) {
                assigned = int(c);
                break;
            }
        }

        if (assigned < 0) {
            assigned = int(reps.size());
            reps.push_back({idx, kmerProfile(probe, params.wordLength)});
            out.representatives.push_back(idx);
        }
        out.assignment[idx] = assigned;
    }
    return out;
}

} // namespace ggpu::genomics
