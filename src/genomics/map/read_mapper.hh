/**
 * @file
 * Bowtie2-style seed-and-extend read mapper (CPU reference for the
 * NvBowtie benchmark): exact-match seeds from the FM-index anchor
 * candidate positions; a banded global alignment around each anchor
 * scores the full read; the best-scoring position wins.
 */

#ifndef GGPU_GENOMICS_MAP_READ_MAPPER_HH
#define GGPU_GENOMICS_MAP_READ_MAPPER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "genomics/align/scoring.hh"
#include "genomics/index/fm_index.hh"
#include "genomics/sequence.hh"

namespace ggpu::genomics
{

/** Mapper knobs. */
struct MapperParams
{
    std::size_t seedLength = 20;
    std::size_t seedStride = 10;     //!< Seed start spacing in the read
    std::size_t maxSeedHits = 16;    //!< locate() cap per seed
    int band = 8;                    //!< Extension band half-width
    int minScore = 0;                //!< Report threshold
};

/** One read's mapping result. */
struct MapResult
{
    bool mapped = false;
    std::uint32_t position = 0;  //!< Reference start of the alignment
    int score = 0;
    std::uint32_t candidates = 0;  //!< Anchors scored
};

/** Map one read against @p reference using @p index. */
MapResult mapRead(const FmIndex &index, const std::string &reference,
                  const std::string &read,
                  const Scoring &scoring = Scoring{},
                  const MapperParams &params = MapperParams{});

/** Map a batch of reads; results align index-wise with @p reads. */
std::vector<MapResult> mapReads(const FmIndex &index,
                                const std::string &reference,
                                const std::vector<Sequence> &reads,
                                const Scoring &scoring = Scoring{},
                                const MapperParams &params =
                                    MapperParams{});

} // namespace ggpu::genomics

#endif // GGPU_GENOMICS_MAP_READ_MAPPER_HH
