#include "genomics/map/read_mapper.hh"

#include <algorithm>
#include <set>

#include "common/log.hh"
#include "genomics/align/banded.hh"

namespace ggpu::genomics
{

MapResult
mapRead(const FmIndex &index, const std::string &reference,
        const std::string &read, const Scoring &scoring,
        const MapperParams &params)
{
    if (params.seedLength == 0 || params.seedStride == 0)
        fatal("mapRead: seed length/stride must be positive");

    MapResult out;
    if (read.size() < params.seedLength)
        return out;

    // Collect candidate reference start positions from seed hits.
    std::set<std::uint32_t> candidates;
    for (std::size_t start = 0;
         start + params.seedLength <= read.size();
         start += params.seedStride) {
        const std::string seed = read.substr(start, params.seedLength);
        const FmIndex::Range range = index.search(seed);
        if (range.empty())
            continue;
        for (std::uint32_t hit :
             index.locate(range, params.maxSeedHits)) {
            // Anchor implies the read started seed-offset earlier.
            if (hit >= start)
                candidates.insert(std::uint32_t(hit - start));
        }
    }

    // Score each anchor with a banded global alignment of the read
    // against the reference window it implies.
    for (std::uint32_t pos : candidates) {
        if (pos + read.size() > reference.size())
            continue;
        const std::string window =
            reference.substr(pos, read.size() + std::size_t(params.band));
        const AffineResult aln = alignAffine(
            read, window, scoring, AlignMode::SemiGlobal, params.band);
        ++out.candidates;
        if (!out.mapped || aln.score > out.score) {
            out.mapped = aln.score >= params.minScore;
            out.score = aln.score;
            out.position = pos;
        }
    }
    return out;
}

std::vector<MapResult>
mapReads(const FmIndex &index, const std::string &reference,
         const std::vector<Sequence> &reads, const Scoring &scoring,
         const MapperParams &params)
{
    std::vector<MapResult> out;
    out.reserve(reads.size());
    for (const Sequence &read : reads)
        out.push_back(mapRead(index, reference, read.data, scoring,
                              params));
    return out;
}

} // namespace ggpu::genomics
