/**
 * @file
 * Synthetic dataset generators standing in for the paper's inputs
 * (Table III): random genomes, mutated read sets with a sequencing
 * error profile (for SRR493095.fastq / hg19.fa), batches of query/
 * target pairs (query_batch.fasta), protein sets (protein.txt), and
 * similarity-structured families (testData.fasta for clustering).
 * Everything is seeded and bit-reproducible.
 */

#ifndef GGPU_GENOMICS_DATAGEN_HH
#define GGPU_GENOMICS_DATAGEN_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "genomics/sequence.hh"

namespace ggpu::genomics
{

/** Uniform random DNA of length @p length. */
std::string randomDna(Rng &rng, std::size_t length);
/** Uniform random protein of length @p length. */
std::string randomProtein(Rng &rng, std::size_t length);

/** Point-mutation / indel profile applied by mutate(). */
struct MutationProfile
{
    double substitutionRate = 0.02;
    double insertionRate = 0.005;
    double deletionRate = 0.005;
    std::size_t maxIndelLength = 3;
};

/** Apply @p profile to a copy of @p seq (DNA). */
std::string mutate(Rng &rng, const std::string &seq,
                   const MutationProfile &profile);

/** A reference genome plus reads sampled from it. */
struct ReadSet
{
    std::string reference;
    std::vector<Sequence> reads;
    std::vector<std::size_t> truePos;  //!< Sampled start positions
};

/**
 * Sample @p count reads of length @p read_len from a fresh random
 * reference of length @p ref_len, applying sequencing errors at
 * @p error_rate (substitutions only, like Illumina) and attaching
 * plausible phred qualities.
 */
ReadSet makeReadSet(Rng &rng, std::size_t ref_len, std::size_t count,
                    std::size_t read_len, double error_rate = 0.01);

/** A batch of query/target pairs for pairwise-alignment kernels. */
struct PairBatch
{
    std::vector<std::string> queries;
    std::vector<std::string> targets;  //!< Mutated copies of queries
};

/** GASAL2-style batch: targets are mutated queries (alignable pairs). */
PairBatch makePairBatch(Rng &rng, std::size_t pairs,
                        std::size_t query_len,
                        const MutationProfile &profile = {});

/**
 * Family-structured set for MSA/clustering: @p families ancestors,
 * each with @p members mutated descendants, lengths jittered by
 * @p length_jitter around @p length.
 */
std::vector<Sequence> makeFamilies(Rng &rng, std::size_t families,
                                   std::size_t members,
                                   std::size_t length,
                                   double divergence = 0.05,
                                   double length_jitter = 0.1);

/** Protein set standing in for the STAR benchmark's protein.txt. */
std::vector<Sequence> makeProteinSet(Rng &rng, std::size_t count,
                                     std::size_t length,
                                     double divergence = 0.08);

} // namespace ggpu::genomics

#endif // GGPU_GENOMICS_DATAGEN_HH
