/**
 * @file
 * Smith-Waterman local alignment (linear gaps), the CPU reference for
 * the SW benchmark.
 */

#ifndef GGPU_GENOMICS_ALIGN_SW_HH
#define GGPU_GENOMICS_ALIGN_SW_HH

#include <cstddef>
#include <string>

#include "genomics/align/scoring.hh"

namespace ggpu::genomics
{

/** Best local alignment score and its matrix end coordinates. */
struct SwResult
{
    int score = 0;
    std::size_t endA = 0;  //!< 1-based row of the best cell
    std::size_t endB = 0;  //!< 1-based column of the best cell
};

/** Local alignment with traceback. */
struct SwAlignment
{
    int score = 0;
    std::size_t startA = 0, endA = 0;  //!< [startA, endA) in a
    std::size_t startB = 0, endB = 0;
    std::string alignedA;
    std::string alignedB;
};

/** Best-score local alignment (linear gaps, O(min) memory). */
SwResult swScore(const std::string &a, const std::string &b,
                 const Scoring &scoring);

/** Full local alignment with traceback. */
SwAlignment swAlign(const std::string &a, const std::string &b,
                    const Scoring &scoring);

} // namespace ggpu::genomics

#endif // GGPU_GENOMICS_ALIGN_SW_HH
