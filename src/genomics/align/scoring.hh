/**
 * @file
 * Shared scoring scheme for all pairwise aligners in the suite.
 */

#ifndef GGPU_GENOMICS_ALIGN_SCORING_HH
#define GGPU_GENOMICS_ALIGN_SCORING_HH

namespace ggpu::genomics
{

/** Match/mismatch/affine-gap scores (GASAL2 defaults). */
struct Scoring
{
    int match = 2;
    int mismatch = -3;
    int gapOpen = -5;    //!< Charged when a gap is opened
    int gapExtend = -1;  //!< Charged per gap residue, including the first

    int
    subst(char a, char b) const
    {
        return a == b ? match : mismatch;
    }
};

} // namespace ggpu::genomics

#endif // GGPU_GENOMICS_ALIGN_SCORING_HH
