/**
 * @file
 * Needleman-Wunsch global alignment (linear gap penalty), the CPU
 * reference for the NW benchmark and the pairwise engine inside the
 * center-star MSA.
 */

#ifndef GGPU_GENOMICS_ALIGN_NW_HH
#define GGPU_GENOMICS_ALIGN_NW_HH

#include <string>

#include "genomics/align/scoring.hh"

namespace ggpu::genomics
{

/** Global alignment with traceback. */
struct NwAlignment
{
    int score = 0;
    std::string alignedA;  //!< With '-' gap characters
    std::string alignedB;
};

/** Global alignment score, linear gaps (gapExtend per residue). */
int nwScore(const std::string &a, const std::string &b,
            const Scoring &scoring);

/** Full global alignment with traceback. */
NwAlignment nwAlign(const std::string &a, const std::string &b,
                    const Scoring &scoring);

/**
 * Anti-diagonal wavefront evaluation of the same DP — the order the
 * GPU kernel computes cells in. Used by tests to prove the kernel's
 * schedule preserves the recurrence.
 */
int nwScoreWavefront(const std::string &a, const std::string &b,
                     const Scoring &scoring);

} // namespace ggpu::genomics

#endif // GGPU_GENOMICS_ALIGN_NW_HH
