#include "genomics/align/hirschberg.hh"

#include <algorithm>
#include <climits>
#include <vector>

#include "common/log.hh"

namespace ggpu::genomics
{

namespace
{

/** Last row of the NW score matrix of @p a vs @p b (linear space). */
std::vector<int>
nwLastRow(const std::string &a, const std::string &b,
          const Scoring &scoring)
{
    const int gap = scoring.gapExtend;
    std::vector<int> prev(b.size() + 1), curr(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = int(j) * gap;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        curr[0] = int(i) * gap;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const int diag =
                prev[j - 1] + scoring.subst(a[i - 1], b[j - 1]);
            curr[j] = std::max({diag, prev[j] + gap, curr[j - 1] + gap});
        }
        std::swap(prev, curr);
    }
    return prev;
}

void
recurse(const std::string &a, const std::string &b,
        const Scoring &scoring, std::string &out_a, std::string &out_b)
{
    const int gap = scoring.gapExtend;
    if (a.empty()) {
        out_a.append(b.size(), '-');
        out_b.append(b);
        return;
    }
    if (b.empty()) {
        out_a.append(a);
        out_b.append(a.size(), '-');
        return;
    }
    if (a.size() == 1 || b.size() == 1) {
        // Small base case: full-matrix alignment is O(n) here.
        const NwAlignment aln = nwAlign(a, b, scoring);
        out_a += aln.alignedA;
        out_b += aln.alignedB;
        return;
    }

    const std::size_t mid = a.size() / 2;
    const std::string a_top = a.substr(0, mid);
    const std::string a_bot = a.substr(mid);
    const std::string b_rev(b.rbegin(), b.rend());
    const std::string a_bot_rev(a_bot.rbegin(), a_bot.rend());

    const std::vector<int> fwd = nwLastRow(a_top, b, scoring);
    const std::vector<int> rev = nwLastRow(a_bot_rev, b_rev, scoring);

    std::size_t split = 0;
    int best = INT_MIN;
    for (std::size_t j = 0; j <= b.size(); ++j) {
        const int total = fwd[j] + rev[b.size() - j];
        if (total > best) {
            best = total;
            split = j;
        }
    }
    (void)gap;

    recurse(a_top, b.substr(0, split), scoring, out_a, out_b);
    recurse(a_bot, b.substr(split), scoring, out_a, out_b);
}

} // namespace

NwAlignment
hirschbergAlign(const std::string &a, const std::string &b,
                const Scoring &scoring)
{
    NwAlignment out;
    recurse(a, b, scoring, out.alignedA, out.alignedB);
    if (out.alignedA.size() != out.alignedB.size())
        panic("hirschbergAlign: ragged alignment rows");

    out.score = 0;
    for (std::size_t i = 0; i < out.alignedA.size(); ++i) {
        const char ca = out.alignedA[i];
        const char cb = out.alignedB[i];
        if (ca == '-' && cb == '-')
            panic("hirschbergAlign: double-gap column");
        out.score += (ca == '-' || cb == '-')
            ? scoring.gapExtend : scoring.subst(ca, cb);
    }
    return out;
}

} // namespace ggpu::genomics
