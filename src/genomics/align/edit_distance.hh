/**
 * @file
 * Myers bit-parallel edit distance: O(n*m/64) Levenshtein distance,
 * the standard fast pre-filter in clustering/mapping pipelines (the
 * nGIA paper's filter family). Also provides a banded variant that
 * reports early when the distance provably exceeds a threshold.
 */

#ifndef GGPU_GENOMICS_ALIGN_EDIT_DISTANCE_HH
#define GGPU_GENOMICS_ALIGN_EDIT_DISTANCE_HH

#include <cstdint>
#include <string>

namespace ggpu::genomics
{

/** Plain dynamic-programming Levenshtein distance (reference). */
std::size_t editDistanceDp(const std::string &a, const std::string &b);

/**
 * Myers bit-parallel edit distance over arbitrary byte alphabets.
 * Equivalent to editDistanceDp for any inputs.
 */
std::size_t editDistanceMyers(const std::string &a,
                              const std::string &b);

/**
 * Thresholded distance: returns the exact distance when it is
 * <= @p limit, otherwise returns limit + 1 (possibly much faster via
 * the Ukkonen band).
 */
std::size_t editDistanceBounded(const std::string &a,
                                const std::string &b,
                                std::size_t limit);

} // namespace ggpu::genomics

#endif // GGPU_GENOMICS_ALIGN_EDIT_DISTANCE_HH
