#include "genomics/align/nw.hh"

#include <algorithm>
#include <vector>

#include "common/log.hh"

namespace ggpu::genomics
{

int
nwScore(const std::string &a, const std::string &b, const Scoring &scoring)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    const int gap = scoring.gapExtend;

    std::vector<int> prev(m + 1), curr(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        prev[j] = int(j) * gap;

    for (std::size_t i = 1; i <= n; ++i) {
        curr[0] = int(i) * gap;
        for (std::size_t j = 1; j <= m; ++j) {
            const int diag = prev[j - 1] + scoring.subst(a[i - 1],
                                                         b[j - 1]);
            const int up = prev[j] + gap;
            const int left = curr[j - 1] + gap;
            curr[j] = std::max({diag, up, left});
        }
        std::swap(prev, curr);
    }
    return prev[m];
}

NwAlignment
nwAlign(const std::string &a, const std::string &b, const Scoring &scoring)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    const int gap = scoring.gapExtend;

    // Full matrix for traceback; inputs used with traceback are short
    // (MSA rows), so the O(nm) memory is acceptable.
    std::vector<int> dp((n + 1) * (m + 1));
    auto at = [&dp, m](std::size_t i, std::size_t j) -> int & {
        return dp[i * (m + 1) + j];
    };

    for (std::size_t i = 0; i <= n; ++i)
        at(i, 0) = int(i) * gap;
    for (std::size_t j = 0; j <= m; ++j)
        at(0, j) = int(j) * gap;

    for (std::size_t i = 1; i <= n; ++i) {
        for (std::size_t j = 1; j <= m; ++j) {
            const int diag =
                at(i - 1, j - 1) + scoring.subst(a[i - 1], b[j - 1]);
            const int up = at(i - 1, j) + gap;
            const int left = at(i, j - 1) + gap;
            at(i, j) = std::max({diag, up, left});
        }
    }

    NwAlignment out;
    out.score = at(n, m);

    std::size_t i = n, j = m;
    std::string ra, rb;
    while (i > 0 || j > 0) {
        if (i > 0 && j > 0 &&
            at(i, j) == at(i - 1, j - 1) + scoring.subst(a[i - 1],
                                                         b[j - 1])) {
            ra.push_back(a[i - 1]);
            rb.push_back(b[j - 1]);
            --i;
            --j;
        } else if (i > 0 && at(i, j) == at(i - 1, j) + gap) {
            ra.push_back(a[i - 1]);
            rb.push_back('-');
            --i;
        } else if (j > 0 && at(i, j) == at(i, j - 1) + gap) {
            ra.push_back('-');
            rb.push_back(b[j - 1]);
            --j;
        } else {
            panic("nwAlign: traceback inconsistent at (", i, ",", j, ")");
        }
    }
    out.alignedA.assign(ra.rbegin(), ra.rend());
    out.alignedB.assign(rb.rbegin(), rb.rend());
    return out;
}

int
nwScoreWavefront(const std::string &a, const std::string &b,
                 const Scoring &scoring)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    const int gap = scoring.gapExtend;

    // Three rolling anti-diagonals indexed by row i; diagonal d holds
    // cells (i, d - i).
    const std::size_t diags = n + m + 1;
    std::vector<int> d2(n + 1), d1(n + 1), d0(n + 1);

    int result = 0;
    for (std::size_t d = 0; d < diags; ++d) {
        const std::size_t ilo = d > m ? d - m : 0;
        const std::size_t ihi = std::min(d, n);
        for (std::size_t i = ilo; i <= ihi; ++i) {
            const std::size_t j = d - i;
            int value;
            if (i == 0) {
                value = int(j) * gap;
            } else if (j == 0) {
                value = int(i) * gap;
            } else {
                const int diag =
                    d2[i - 1] + scoring.subst(a[i - 1], b[j - 1]);
                const int up = d1[i - 1] + gap;
                const int left = d1[i] + gap;
                value = std::max({diag, up, left});
            }
            d0[i] = value;
            if (i == n && j == m)
                result = value;
        }
        std::swap(d2, d1);
        std::swap(d1, d0);
    }
    return result;
}

} // namespace ggpu::genomics
