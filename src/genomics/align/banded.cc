#include "genomics/align/banded.hh"

#include <algorithm>
#include <climits>
#include <vector>

#include "common/log.hh"
#include "genomics/align/nw.hh"

namespace ggpu::genomics
{

namespace
{

constexpr int negInf = INT_MIN / 4;

} // namespace

AffineResult
alignAffine(const std::string &q, const std::string &t,
            const Scoring &scoring, AlignMode mode, int band)
{
    const std::size_t n = q.size();
    const std::size_t m = t.size();
    const int open = scoring.gapOpen + scoring.gapExtend;
    const int extend = scoring.gapExtend;
    const bool local =
        mode == AlignMode::Local || mode == AlignMode::KswBanded;
    const bool banded = mode == AlignMode::KswBanded;
    if (banded && band <= 0)
        fatal("alignAffine: KswBanded needs a positive band width");

    // Rolling rows of H (match) and E (gap-in-target, horizontal move
    // consumes target) plus a full row of F (gap-in-query, vertical).
    std::vector<int> h_prev(m + 1), h_curr(m + 1);
    std::vector<int> f_prev(m + 1, negInf), f_curr(m + 1, negInf);

    // Row 0 boundary.
    for (std::size_t j = 0; j <= m; ++j) {
        switch (mode) {
          case AlignMode::Global:
            h_prev[j] = j == 0 ? 0 : open + int(j - 1) * extend;
            break;
          case AlignMode::Local:
          case AlignMode::KswBanded:
          case AlignMode::SemiGlobal:
            h_prev[j] = 0;  // free target prefix
            break;
        }
    }

    AffineResult best;
    best.score = local ? 0 : negInf;

    for (std::size_t i = 1; i <= n; ++i) {
        int e = negInf;  // E for (i, j) carried along the row
        switch (mode) {
          case AlignMode::Global:
          case AlignMode::SemiGlobal:
            h_curr[0] = open + int(i - 1) * extend;
            break;
          case AlignMode::Local:
          case AlignMode::KswBanded:
            h_curr[0] = 0;
            break;
        }
        f_curr[0] = negInf;

        std::size_t jlo = 1, jhi = m;
        if (banded) {
            const long center = long(i);
            jlo = std::size_t(std::max(1L, center - band));
            jhi = std::size_t(
                std::min(long(m), center + band));
            if (jlo > 1)
                h_curr[jlo - 1] = negInf;
            for (std::size_t j = 1; j < jlo; ++j)
                f_curr[j] = negInf;
        }

        for (std::size_t j = jlo; j <= jhi; ++j) {
            e = std::max(h_curr[j - 1] + open, e + extend);
            const int f =
                std::max(h_prev[j] + open, f_prev[j] + extend);
            f_curr[j] = f;
            int h = h_prev[j - 1] + scoring.subst(q[i - 1], t[j - 1]);
            h = std::max({h, e, f});
            if (local)
                h = std::max(h, 0);
            h_curr[j] = h;

            const bool track = local ||
                (mode == AlignMode::SemiGlobal && i == n) ||
                (mode == AlignMode::Global && i == n && j == m);
            if (track && h > best.score) {
                best.score = h;
                best.endQ = i;
                best.endT = j;
            }
        }
        if (banded && jhi < m)
            h_curr[jhi + 1] = negInf;

        std::swap(h_prev, h_curr);
        std::swap(f_prev, f_curr);
    }

    if (mode == AlignMode::Global) {
        best.score = h_prev[m];
        best.endQ = n;
        best.endT = m;
    }
    return best;
}

double
globalIdentity(const std::string &a, const std::string &b,
               const Scoring &scoring)
{
    if (a.empty() && b.empty())
        return 1.0;
    const NwAlignment aln = nwAlign(a, b, scoring);
    std::size_t matches = 0;
    for (std::size_t i = 0; i < aln.alignedA.size(); ++i)
        if (aln.alignedA[i] == aln.alignedB[i])
            ++matches;
    return aln.alignedA.empty()
        ? 0.0 : double(matches) / double(aln.alignedA.size());
}

std::string
toString(AlignMode mode)
{
    switch (mode) {
      case AlignMode::Global: return "global";
      case AlignMode::Local: return "local";
      case AlignMode::SemiGlobal: return "semi-global";
      case AlignMode::KswBanded: return "ksw-banded";
    }
    return "unknown";
}

} // namespace ggpu::genomics
