#include "genomics/align/sw.hh"

#include <algorithm>
#include <vector>

#include "common/log.hh"

namespace ggpu::genomics
{

SwResult
swScore(const std::string &a, const std::string &b, const Scoring &scoring)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    const int gap = scoring.gapExtend;

    std::vector<int> prev(m + 1, 0), curr(m + 1, 0);
    SwResult best;

    for (std::size_t i = 1; i <= n; ++i) {
        curr[0] = 0;
        for (std::size_t j = 1; j <= m; ++j) {
            const int diag =
                prev[j - 1] + scoring.subst(a[i - 1], b[j - 1]);
            const int up = prev[j] + gap;
            const int left = curr[j - 1] + gap;
            const int value = std::max({0, diag, up, left});
            curr[j] = value;
            if (value > best.score) {
                best.score = value;
                best.endA = i;
                best.endB = j;
            }
        }
        std::swap(prev, curr);
    }
    return best;
}

SwAlignment
swAlign(const std::string &a, const std::string &b, const Scoring &scoring)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    const int gap = scoring.gapExtend;

    std::vector<int> dp((n + 1) * (m + 1), 0);
    auto at = [&dp, m](std::size_t i, std::size_t j) -> int & {
        return dp[i * (m + 1) + j];
    };

    SwAlignment out;
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 1; i <= n; ++i) {
        for (std::size_t j = 1; j <= m; ++j) {
            const int diag =
                at(i - 1, j - 1) + scoring.subst(a[i - 1], b[j - 1]);
            const int up = at(i - 1, j) + gap;
            const int left = at(i, j - 1) + gap;
            const int value = std::max({0, diag, up, left});
            at(i, j) = value;
            if (value > out.score) {
                out.score = value;
                bi = i;
                bj = j;
            }
        }
    }

    out.endA = bi;
    out.endB = bj;

    std::string ra, rb;
    std::size_t i = bi, j = bj;
    while (i > 0 && j > 0 && at(i, j) > 0) {
        if (at(i, j) ==
            at(i - 1, j - 1) + scoring.subst(a[i - 1], b[j - 1])) {
            ra.push_back(a[i - 1]);
            rb.push_back(b[j - 1]);
            --i;
            --j;
        } else if (at(i, j) == at(i - 1, j) + gap) {
            ra.push_back(a[i - 1]);
            rb.push_back('-');
            --i;
        } else if (at(i, j) == at(i, j - 1) + gap) {
            ra.push_back('-');
            rb.push_back(b[j - 1]);
            --j;
        } else {
            panic("swAlign: traceback inconsistent at (", i, ",", j, ")");
        }
    }
    out.startA = i;
    out.startB = j;
    out.alignedA.assign(ra.rbegin(), ra.rend());
    out.alignedB.assign(rb.rbegin(), rb.rend());
    return out;
}

} // namespace ggpu::genomics
