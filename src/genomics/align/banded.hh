/**
 * @file
 * Affine-gap pairwise alignment engine covering the four GASAL2
 * kernels of the paper: global (GG), local (GL), semi-global (GSG,
 * query end-to-end, target free), and KSW-style banded local (GKSW).
 */

#ifndef GGPU_GENOMICS_ALIGN_BANDED_HH
#define GGPU_GENOMICS_ALIGN_BANDED_HH

#include <cstddef>
#include <string>

#include "genomics/align/scoring.hh"

namespace ggpu::genomics
{

/** Alignment mode, matching the GASAL2 kernel set. */
enum class AlignMode
{
    Global,      //!< GG: both sequences end-to-end
    Local,       //!< GL: best-scoring subsequence pair
    SemiGlobal,  //!< GSG: all of the query, any target substring
    KswBanded    //!< GKSW: banded local with affine gaps
};

/** Result of an affine-gap alignment. */
struct AffineResult
{
    int score = 0;
    std::size_t endQ = 0;  //!< 1-based end row (query)
    std::size_t endT = 0;  //!< 1-based end column (target)
};

/**
 * Affine-gap DP (Gotoh) over query @p q and target @p t.
 *
 * @param band Half band width around the main diagonal for
 *             AlignMode::KswBanded; ignored otherwise. Cells outside
 *             the band are treated as -infinity.
 */
AffineResult alignAffine(const std::string &q, const std::string &t,
                         const Scoring &scoring, AlignMode mode,
                         int band = 16);

/** Alignment identity: exact matches / aligned columns, via global
 *  affine alignment with traceback-free column counting. */
double globalIdentity(const std::string &a, const std::string &b,
                      const Scoring &scoring);

std::string toString(AlignMode mode);

} // namespace ggpu::genomics

#endif // GGPU_GENOMICS_ALIGN_BANDED_HH
