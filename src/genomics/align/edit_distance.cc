#include "genomics/align/edit_distance.hh"

#include <algorithm>
#include <array>
#include <vector>

#include "common/log.hh"

namespace ggpu::genomics
{

std::size_t
editDistanceDp(const std::string &a, const std::string &b)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    std::vector<std::size_t> prev(m + 1), curr(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
        curr[0] = i;
        for (std::size_t j = 1; j <= m; ++j) {
            const std::size_t subst =
                prev[j - 1] + (a[i - 1] != b[j - 1]);
            curr[j] = std::min({subst, prev[j] + 1, curr[j - 1] + 1});
        }
        std::swap(prev, curr);
    }
    return prev[m];
}

std::size_t
editDistanceMyers(const std::string &a, const std::string &b)
{
    // Myers 1999, blocked into 64-bit words along the pattern (a); the
    // text (b) streams column by column. The score is tracked at the
    // pattern's last row via the pre-shift horizontal delta bit.
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    if (n == 0)
        return m;
    if (m == 0)
        return n;

    const std::size_t words = (n + 63) / 64;
    const std::size_t last_word = words - 1;
    const std::uint64_t score_bit = std::uint64_t(1) << ((n - 1) % 64);

    std::array<std::vector<std::uint64_t>, 256> peq;
    for (auto &v : peq)
        v.assign(words, 0);
    for (std::size_t i = 0; i < n; ++i) {
        peq[std::uint8_t(a[i])][i / 64] |= std::uint64_t(1)
                                           << (i % 64);
    }

    std::vector<std::uint64_t> pv(words, ~std::uint64_t(0));
    std::vector<std::uint64_t> mv(words, 0);
    std::size_t score = n;
    constexpr std::uint64_t highBit = std::uint64_t(1) << 63;

    for (std::size_t j = 0; j < m; ++j) {
        const auto &peq_col = peq[std::uint8_t(b[j])];
        int hin = 1;  // row-0 boundary: D[0][j] -> D[0][j+1] is +1

        for (std::size_t w = 0; w < words; ++w) {
            const std::uint64_t pvw = pv[w];
            const std::uint64_t mvw = mv[w];
            std::uint64_t eq = peq_col[w];
            const std::uint64_t xv = eq | mvw;
            if (hin < 0)
                eq |= 1;  // incoming -1 acts as a free match
            const std::uint64_t xh =
                (((eq & pvw) + pvw) ^ pvw) | eq;

            std::uint64_t ph = mvw | ~(xh | pvw);
            std::uint64_t mh = pvw & xh;

            if (w == last_word) {
                score += (ph & score_bit) ? 1 : 0;
                score -= (mh & score_bit) ? 1 : 0;
            }

            int hout = 0;
            if (ph & highBit)
                hout = 1;
            else if (mh & highBit)
                hout = -1;

            ph <<= 1;
            mh <<= 1;
            if (hin < 0)
                mh |= 1;
            else if (hin > 0)
                ph |= 1;

            pv[w] = mh | ~(xv | ph);
            mv[w] = ph & xv;
            hin = hout;
        }
    }
    return score;
}

std::size_t
editDistanceBounded(const std::string &a, const std::string &b,
                    std::size_t limit)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    const std::size_t len_gap = n > m ? n - m : m - n;
    if (len_gap > limit)
        return limit + 1;

    // Ukkonen band: only cells with |i - j| <= limit can stay under
    // the threshold; abandon as soon as a whole band row exceeds it.
    const std::size_t inf = limit + 1;
    std::vector<std::size_t> prev(m + 1, inf), curr(m + 1, inf);
    for (std::size_t j = 0; j <= std::min(m, limit); ++j)
        prev[j] = j;

    for (std::size_t i = 1; i <= n; ++i) {
        const std::size_t jlo = i > limit ? i - limit : 0;
        const std::size_t jhi = std::min(m, i + limit);
        std::size_t row_min = inf;
        if (jlo == 0) {
            curr[0] = i <= limit ? i : inf;
            row_min = curr[0];
        } else {
            curr[jlo - 1] = inf;
        }
        for (std::size_t j = std::max<std::size_t>(1, jlo); j <= jhi;
             ++j) {
            const std::size_t subst =
                prev[j - 1] + (a[i - 1] != b[j - 1]);
            const std::size_t del = prev[j] + 1;
            const std::size_t ins = curr[j - 1] + 1;
            curr[j] = std::min({subst, del, ins, inf});
            row_min = std::min(row_min, curr[j]);
        }
        if (jhi < m)
            curr[jhi + 1] = inf;
        if (row_min > limit)
            return limit + 1;
        std::swap(prev, curr);
    }
    return std::min(prev[m], inf);
}

} // namespace ggpu::genomics
