/**
 * @file
 * Hirschberg linear-space global alignment: the same optimal alignment
 * nwAlign() produces, computed with O(min(n, m)) memory via
 * divide-and-conquer — the right tool for long sequences where the
 * full traceback matrix does not fit (e.g. megabase references).
 */

#ifndef GGPU_GENOMICS_ALIGN_HIRSCHBERG_HH
#define GGPU_GENOMICS_ALIGN_HIRSCHBERG_HH

#include <string>

#include "genomics/align/nw.hh"
#include "genomics/align/scoring.hh"

namespace ggpu::genomics
{

/**
 * Optimal global alignment (linear gap penalties) in linear space.
 * The score always equals nwScore(a, b, scoring); the traceback is an
 * optimal alignment (possibly a different co-optimal one than
 * nwAlign's).
 */
NwAlignment hirschbergAlign(const std::string &a, const std::string &b,
                            const Scoring &scoring);

} // namespace ggpu::genomics

#endif // GGPU_GENOMICS_ALIGN_HIRSCHBERG_HH
