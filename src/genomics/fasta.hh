/**
 * @file
 * FASTA and FASTQ readers/writers so the suite can consume the same
 * file formats the paper's datasets use (query_batch.fasta,
 * protein.txt, hg19.fa, SRR493095.fastq); synthetic equivalents are
 * produced by the datagen module in these formats.
 */

#ifndef GGPU_GENOMICS_FASTA_HH
#define GGPU_GENOMICS_FASTA_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "genomics/sequence.hh"

namespace ggpu::genomics
{

/** Parse FASTA text. Throws FatalError on malformed input. */
std::vector<Sequence> parseFasta(const std::string &text);
/** Parse FASTQ text (4-line records). */
std::vector<Sequence> parseFastq(const std::string &text);

/** Serialize to FASTA with @p width residues per line. */
std::string writeFasta(const std::vector<Sequence> &seqs,
                       std::size_t width = 70);
/** Serialize to FASTQ; sequences without quality get 'I' (Q40). */
std::string writeFastq(const std::vector<Sequence> &seqs);

/** Read a whole file; dispatches on leading '>' vs '@'. */
std::vector<Sequence> readSequenceFile(const std::string &path);
/** Write sequences to @p path as FASTA. */
void writeFastaFile(const std::string &path,
                    const std::vector<Sequence> &seqs);

} // namespace ggpu::genomics

#endif // GGPU_GENOMICS_FASTA_HH
