#include "genomics/sequence.hh"

#include <algorithm>
#include <array>
#include <cctype>

#include "common/log.hh"

namespace ggpu::genomics
{

namespace
{

const std::string dnaLetters = "ACGT";
const std::string rnaLetters = "ACGU";
const std::string proteinLetters20 = "ACDEFGHIKLMNPQRSTVWY";

const std::string &
lettersFor(Alphabet alphabet)
{
    switch (alphabet) {
      case Alphabet::Dna: return dnaLetters;
      case Alphabet::Rna: return rnaLetters;
      case Alphabet::Protein: return proteinLetters20;
    }
    panic("unknown alphabet");
}

bool
isAmbiguityCode(char c)
{
    // IUPAC nucleotide ambiguity codes.
    static const std::string codes = "NRYSWKMBDHV";
    return codes.find(c) != std::string::npos;
}

} // namespace

const std::string &
proteinLetters()
{
    return proteinLetters20;
}

bool
isValid(const std::string &data, Alphabet alphabet)
{
    const std::string &letters = lettersFor(alphabet);
    return std::all_of(data.begin(), data.end(), [&letters](char c) {
        return letters.find(char(std::toupper(c))) != std::string::npos;
    });
}

std::string
canonicalize(const std::string &data, Alphabet alphabet)
{
    const std::string &letters = lettersFor(alphabet);
    std::string out;
    out.reserve(data.size());
    for (char raw : data) {
        const char c = char(std::toupper(raw));
        if (letters.find(c) != std::string::npos) {
            out.push_back(c);
        } else if (alphabet != Alphabet::Protein && isAmbiguityCode(c)) {
            out.push_back('A');
        } else if (alphabet == Alphabet::Dna && c == 'U') {
            out.push_back('T');
        } else if (alphabet == Alphabet::Rna && c == 'T') {
            out.push_back('U');
        } else {
            fatal("sequence: residue '", c, "' is not valid in this ",
                  "alphabet");
        }
    }
    return out;
}

std::uint8_t
baseToCode(char base)
{
    switch (base) {
      case 'A': return 0;
      case 'C': return 1;
      case 'G': return 2;
      case 'T': case 'U': return 3;
      default:
        fatal("baseToCode: non-canonical base '", base, "'");
    }
}

char
codeToBase(std::uint8_t code)
{
    if (code > 3)
        fatal("codeToBase: code ", int(code), " out of range");
    return dnaLetters[code];
}

std::vector<std::uint32_t>
packDna2bit(const std::string &data)
{
    std::vector<std::uint32_t> packed((data.size() + 15) / 16, 0);
    for (std::size_t i = 0; i < data.size(); ++i) {
        packed[i / 16] |= std::uint32_t(baseToCode(data[i]))
                          << (2 * (i % 16));
    }
    return packed;
}

std::uint8_t
packedBaseAt(const std::vector<std::uint32_t> &packed, std::size_t index)
{
    if (index / 16 >= packed.size())
        panic("packedBaseAt: index ", index, " out of range");
    return std::uint8_t((packed[index / 16] >> (2 * (index % 16))) & 3u);
}

std::string
reverseComplement(const std::string &data)
{
    std::string out;
    out.reserve(data.size());
    for (auto it = data.rbegin(); it != data.rend(); ++it) {
        switch (*it) {
          case 'A': out.push_back('T'); break;
          case 'C': out.push_back('G'); break;
          case 'G': out.push_back('C'); break;
          case 'T': out.push_back('A'); break;
          default:
            fatal("reverseComplement: non-canonical base '", *it, "'");
        }
    }
    return out;
}

std::vector<std::uint8_t>
encode(const std::string &data, Alphabet alphabet)
{
    const std::string &letters = lettersFor(alphabet);
    std::vector<std::uint8_t> out;
    out.reserve(data.size());
    for (char c : data) {
        const auto pos = letters.find(c);
        if (pos == std::string::npos)
            fatal("encode: residue '", c, "' is not canonical");
        out.push_back(std::uint8_t(pos));
    }
    return out;
}

} // namespace ggpu::genomics
