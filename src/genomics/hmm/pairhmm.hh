/**
 * @file
 * Pair Hidden Markov Model forward algorithm (the PairHMM benchmark),
 * in the GATK HaplotypeCaller formulation: a read with per-base
 * qualities is evaluated against a candidate haplotype; the forward
 * sum over match/insert/delete state paths yields the likelihood
 * P(read | haplotype).
 */

#ifndef GGPU_GENOMICS_HMM_PAIRHMM_HH
#define GGPU_GENOMICS_HMM_PAIRHMM_HH

#include <string>

namespace ggpu::genomics
{

/** Transition parameters of the 3-state pair HMM. */
struct PairHmmParams
{
    double gapOpen = 1e-3;       //!< Match -> Insert/Delete
    double gapExtend = 1e-1;     //!< Insert -> Insert, Delete -> Delete
    /** Substitution probability used when no quality string is given. */
    double defaultBaseError = 1e-2;
};

/**
 * log10 P(read | haplotype) by the forward algorithm.
 *
 * @param read Read bases (canonical DNA).
 * @param qual Optional phred+33 qualities (empty -> defaultBaseError).
 * @param hap Haplotype bases.
 */
double pairHmmForward(const std::string &read, const std::string &qual,
                      const std::string &hap,
                      const PairHmmParams &params = {});

/**
 * Same recurrence evaluated along anti-diagonals (the GPU kernel's
 * schedule); used by tests to prove schedule equivalence.
 */
double pairHmmForwardWavefront(const std::string &read,
                               const std::string &qual,
                               const std::string &hap,
                               const PairHmmParams &params = {});

} // namespace ggpu::genomics

#endif // GGPU_GENOMICS_HMM_PAIRHMM_HH
