#include "genomics/hmm/pairhmm.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/log.hh"

namespace ggpu::genomics
{

namespace
{

/** Per-base substitution probability from a phred+33 quality char. */
double
errorProb(char qual_char, double fallback)
{
    if (qual_char == 0)
        return fallback;
    const int phred = qual_char - 33;
    if (phred < 0 || phred > 60)
        fatal("pairHmm: quality character out of phred+33 range");
    return std::pow(10.0, -phred / 10.0);
}

struct Transitions
{
    double mm, mx, xx, xm;
};

Transitions
transitionsFor(const PairHmmParams &params)
{
    if (params.gapOpen <= 0.0 || params.gapOpen >= 0.5)
        fatal("pairHmm: gapOpen must be in (0, 0.5)");
    if (params.gapExtend <= 0.0 || params.gapExtend >= 1.0)
        fatal("pairHmm: gapExtend must be in (0, 1)");
    return {1.0 - 2.0 * params.gapOpen, params.gapOpen,
            params.gapExtend, 1.0 - params.gapExtend};
}

double
matchEmission(char read_base, char hap_base, double err)
{
    return read_base == hap_base ? 1.0 - err : err / 3.0;
}

} // namespace

double
pairHmmForward(const std::string &read, const std::string &qual,
               const std::string &hap, const PairHmmParams &params)
{
    const std::size_t n = read.size();
    const std::size_t m = hap.size();
    if (n == 0 || m == 0)
        fatal("pairHmm: empty read or haplotype");
    if (!qual.empty() && qual.size() != n)
        fatal("pairHmm: quality length mismatch");

    const Transitions tr = transitionsFor(params);

    // Row-major forward over (read position, haplotype position).
    std::vector<double> m_prev(m + 1, 0.0), m_curr(m + 1, 0.0);
    std::vector<double> i_prev(m + 1, 0.0), i_curr(m + 1, 0.0);
    std::vector<double> d_prev(m + 1, 0.0), d_curr(m + 1, 0.0);

    // Free haplotype offset: probability mass enters through D.
    const double init = 1.0 / double(m);
    for (std::size_t j = 0; j <= m; ++j)
        d_prev[j] = init;

    for (std::size_t i = 1; i <= n; ++i) {
        const double err =
            errorProb(qual.empty() ? char(0) : qual[i - 1],
                      params.defaultBaseError);
        m_curr[0] = 0.0;
        i_curr[0] = 0.0;
        d_curr[0] = 0.0;
        for (std::size_t j = 1; j <= m; ++j) {
            const double emit =
                matchEmission(read[i - 1], hap[j - 1], err);
            m_curr[j] = emit * (tr.mm * m_prev[j - 1] +
                                tr.xm * (i_prev[j - 1] + d_prev[j - 1]));
            i_curr[j] = tr.mx * m_prev[j] + tr.xx * i_prev[j];
            d_curr[j] = tr.mx * m_curr[j - 1] + tr.xx * d_curr[j - 1];
        }
        std::swap(m_prev, m_curr);
        std::swap(i_prev, i_curr);
        std::swap(d_prev, d_curr);
    }

    double likelihood = 0.0;
    for (std::size_t j = 1; j <= m; ++j)
        likelihood += m_prev[j] + i_prev[j];
    if (likelihood <= 0.0)
        return -400.0;  // hard floor, matches GATK's log10 clamp idea
    return std::log10(likelihood);
}

double
pairHmmForwardWavefront(const std::string &read, const std::string &qual,
                        const std::string &hap,
                        const PairHmmParams &params)
{
    const std::size_t n = read.size();
    const std::size_t m = hap.size();
    if (n == 0 || m == 0)
        fatal("pairHmm: empty read or haplotype");

    const Transitions tr = transitionsFor(params);
    const double init = 1.0 / double(m);

    // Diagonals indexed by read position i; diagonal d holds (i, d-i).
    struct Cell
    {
        double m = 0.0, i = 0.0, d = 0.0;
    };
    std::vector<Cell> d2(n + 1), d1(n + 1), d0(n + 1);

    double likelihood = 0.0;
    const std::size_t diags = n + m + 1;
    for (std::size_t d = 0; d < diags; ++d) {
        const std::size_t ilo = d > m ? d - m : 0;
        const std::size_t ihi = std::min(d, n);
        // D has a same-row dependency on (i, j-1), which lives on the
        // previous diagonal; within a diagonal all cells are
        // independent — exactly why the GPU kernel parallelizes this.
        for (std::size_t i = ilo; i <= ihi; ++i) {
            const std::size_t j = d - i;
            Cell cell;
            if (i == 0) {
                cell.d = init;
            } else if (j == 0) {
                // Column 0 is all-zero for M/I/D with i >= 1.
            } else {
                const double err = errorProb(
                    qual.empty() ? char(0) : qual[i - 1],
                    params.defaultBaseError);
                const double emit =
                    matchEmission(read[i - 1], hap[j - 1], err);
                const Cell &up_left = d2[i - 1];   // (i-1, j-1)
                const Cell &up = d1[i - 1];        // (i-1, j)
                const Cell &left = d1[i];          // (i, j-1)
                cell.m = emit * (tr.mm * up_left.m +
                                 tr.xm * (up_left.i + up_left.d));
                cell.i = tr.mx * up.m + tr.xx * up.i;
                cell.d = tr.mx * left.m + tr.xx * left.d;
            }
            d0[i] = cell;
            if (i == n && j >= 1)
                likelihood += cell.m + cell.i;
        }
        std::swap(d2, d1);
        std::swap(d1, d0);
    }
    if (likelihood <= 0.0)
        return -400.0;
    return std::log10(likelihood);
}

} // namespace ggpu::genomics
