/**
 * @file
 * Biological sequence types shared by every genomics algorithm in the
 * suite: DNA/RNA/protein alphabets, validation, 2-bit packing for GPU
 * kernels, and reverse complement.
 */

#ifndef GGPU_GENOMICS_SEQUENCE_HH
#define GGPU_GENOMICS_SEQUENCE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ggpu::genomics
{

/** Residue alphabet of a sequence. */
enum class Alphabet
{
    Dna,      //!< A, C, G, T (N tolerated on input, mapped to A)
    Rna,      //!< A, C, G, U
    Protein   //!< 20 standard amino acids
};

/** A named biological sequence. */
struct Sequence
{
    std::string name;
    std::string data;   //!< Upper-case residues
    std::string qual;   //!< Optional per-base quality (FASTQ), phred+33

    std::size_t size() const { return data.size(); }
    bool empty() const { return data.empty(); }
};

/** True when every residue of @p data is legal in @p alphabet. */
bool isValid(const std::string &data, Alphabet alphabet);

/**
 * Upper-case @p data and replace IUPAC ambiguity codes with 'A' (DNA)
 * so downstream 2-bit packing is total. Throws FatalError on residues
 * outside the alphabet.
 */
std::string canonicalize(const std::string &data, Alphabet alphabet);

/** Map A/C/G/T -> 0..3. Input must be canonical DNA. */
std::uint8_t baseToCode(char base);
/** Map 0..3 -> A/C/G/T. */
char codeToBase(std::uint8_t code);

/** Pack canonical DNA into 2-bit codes, 16 bases per 32-bit word. */
std::vector<std::uint32_t> packDna2bit(const std::string &data);
/** Extract base @p index from a 2-bit packed buffer. */
std::uint8_t packedBaseAt(const std::vector<std::uint32_t> &packed,
                          std::size_t index);

/** Reverse complement of canonical DNA. */
std::string reverseComplement(const std::string &data);

/** Encode each residue as a small integer (DNA 0..3, protein 0..19). */
std::vector<std::uint8_t> encode(const std::string &data,
                                 Alphabet alphabet);

/** The 20 standard amino-acid letters in index order. */
const std::string &proteinLetters();

} // namespace ggpu::genomics

#endif // GGPU_GENOMICS_SEQUENCE_HH
