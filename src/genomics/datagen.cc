#include "genomics/datagen.hh"

#include <algorithm>

#include "common/log.hh"

namespace ggpu::genomics
{

std::string
randomDna(Rng &rng, std::size_t length)
{
    static const char bases[] = "ACGT";
    std::string out(length, 'A');
    for (auto &c : out)
        c = bases[rng.below(4)];
    return out;
}

std::string
randomProtein(Rng &rng, std::size_t length)
{
    const std::string &letters = proteinLetters();
    std::string out(length, 'A');
    for (auto &c : out)
        c = letters[rng.below(letters.size())];
    return out;
}

std::string
mutate(Rng &rng, const std::string &seq, const MutationProfile &profile)
{
    static const char bases[] = "ACGT";
    std::string out;
    out.reserve(seq.size() + 16);
    for (char c : seq) {
        if (rng.chance(profile.deletionRate))
            continue;
        if (rng.chance(profile.insertionRate)) {
            const std::size_t len =
                1 + rng.below(std::max<std::size_t>(
                        1, profile.maxIndelLength));
            for (std::size_t i = 0; i < len; ++i)
                out.push_back(bases[rng.below(4)]);
        }
        if (rng.chance(profile.substitutionRate)) {
            char replacement = c;
            while (replacement == c)
                replacement = bases[rng.below(4)];
            out.push_back(replacement);
        } else {
            out.push_back(c);
        }
    }
    if (out.empty())
        out.push_back(bases[rng.below(4)]);
    return out;
}

ReadSet
makeReadSet(Rng &rng, std::size_t ref_len, std::size_t count,
            std::size_t read_len, double error_rate)
{
    if (read_len == 0 || ref_len < read_len)
        fatal("makeReadSet: reference shorter than read length");

    static const char bases[] = "ACGT";
    ReadSet set;
    set.reference = randomDna(rng, ref_len);
    set.reads.reserve(count);
    set.truePos.reserve(count);

    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t pos = rng.below(ref_len - read_len + 1);
        std::string bases_out = set.reference.substr(pos, read_len);
        std::string qual(read_len, 'I');
        for (std::size_t b = 0; b < read_len; ++b) {
            if (rng.chance(error_rate)) {
                char replacement = bases_out[b];
                while (replacement == bases_out[b])
                    replacement = bases[rng.below(4)];
                bases_out[b] = replacement;
                qual[b] = '#';  // low quality at the error site
            }
        }
        Sequence read;
        read.name = "read" + std::to_string(i) + "/" + std::to_string(pos);
        read.data = std::move(bases_out);
        read.qual = std::move(qual);
        set.reads.push_back(std::move(read));
        set.truePos.push_back(pos);
    }
    return set;
}

PairBatch
makePairBatch(Rng &rng, std::size_t pairs, std::size_t query_len,
              const MutationProfile &profile)
{
    PairBatch batch;
    batch.queries.reserve(pairs);
    batch.targets.reserve(pairs);
    for (std::size_t i = 0; i < pairs; ++i) {
        batch.queries.push_back(randomDna(rng, query_len));
        batch.targets.push_back(mutate(rng, batch.queries.back(),
                                       profile));
    }
    return batch;
}

std::vector<Sequence>
makeFamilies(Rng &rng, std::size_t families, std::size_t members,
             std::size_t length, double divergence, double length_jitter)
{
    MutationProfile profile;
    profile.substitutionRate = divergence;
    profile.insertionRate = divergence / 8.0;
    profile.deletionRate = divergence / 8.0;

    std::vector<Sequence> out;
    out.reserve(families * members);
    for (std::size_t f = 0; f < families; ++f) {
        const double jitter =
            1.0 + length_jitter * (rng.uniform() * 2.0 - 1.0);
        const std::size_t base_len = std::max<std::size_t>(
            16, std::size_t(double(length) * jitter));
        const std::string ancestor = randomDna(rng, base_len);
        for (std::size_t m = 0; m < members; ++m) {
            Sequence seq;
            seq.name = "fam" + std::to_string(f) + "_m" +
                       std::to_string(m);
            seq.data = m == 0 ? ancestor : mutate(rng, ancestor, profile);
            out.push_back(std::move(seq));
        }
    }
    return out;
}

std::vector<Sequence>
makeProteinSet(Rng &rng, std::size_t count, std::size_t length,
               double divergence)
{
    const std::string &letters = proteinLetters();
    const std::string ancestor = randomProtein(rng, length);
    std::vector<Sequence> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Sequence seq;
        seq.name = "prot" + std::to_string(i);
        seq.data = ancestor;
        for (auto &c : seq.data) {
            if (rng.chance(divergence))
                c = letters[rng.below(letters.size())];
        }
        out.push_back(std::move(seq));
    }
    return out;
}

} // namespace ggpu::genomics
