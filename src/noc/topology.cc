#include "noc/topology.hh"

#include <bit>
#include <cmath>

#include "common/log.hh"

namespace ggpu::noc
{

double
Topology::linkWidthFactor(int link) const
{
    (void)link;
    return 1.0;
}

int
Topology::hops(int src, int dst) const
{
    std::vector<int> links;
    route(src, dst, links);
    return int(links.size());
}

std::unique_ptr<Topology>
Topology::create(NocTopology kind, int num_nodes)
{
    switch (kind) {
      case NocTopology::Xbar:
        return std::make_unique<XbarTopology>(num_nodes);
      case NocTopology::Mesh:
        return std::make_unique<MeshTopology>(num_nodes);
      case NocTopology::FatTree:
        return std::make_unique<FatTreeTopology>(num_nodes);
      case NocTopology::Butterfly:
        return std::make_unique<ButterflyTopology>(num_nodes);
    }
    panic("unknown NocTopology");
}

// ---------------------------------------------------------------- Xbar

XbarTopology::XbarTopology(int num_nodes) : numNodes_(num_nodes)
{
    if (num_nodes <= 0)
        fatal("XbarTopology: need at least one node");
}

void
XbarTopology::route(int src, int dst, std::vector<int> &out) const
{
    if (src < 0 || src >= numNodes_ || dst < 0 || dst >= numNodes_)
        panic("XbarTopology: route outside node range");
    // Input port of the source, then output port of the destination.
    out.push_back(src);
    out.push_back(numNodes_ + dst);
}

// ---------------------------------------------------------------- Mesh

MeshTopology::MeshTopology(int num_nodes) : numNodes_(num_nodes)
{
    if (num_nodes <= 0)
        fatal("MeshTopology: need at least one node");
    cols_ = int(std::ceil(std::sqrt(double(num_nodes))));
    rows_ = (num_nodes + cols_ - 1) / cols_;
}

int
MeshTopology::numLinks() const
{
    // Routes traverse filler grid positions beyond the last node when
    // the node count is not a perfect rectangle, so links exist for
    // every grid position.
    return rows_ * cols_ * 4;
}

void
MeshTopology::route(int src, int dst, std::vector<int> &out) const
{
    if (src < 0 || src >= numNodes_ || dst < 0 || dst >= numNodes_)
        panic("MeshTopology: route outside node range");

    int x = src % cols_;
    int y = src / cols_;
    const int dx = dst % cols_;
    const int dy = dst / cols_;

    // Dimension-order: resolve X first, then Y. Each hop uses the
    // outgoing directional link of the node it leaves.
    while (x != dx) {
        const int dir = x < dx ? 0 : 1;  // E : W
        out.push_back(linkId(y * cols_ + x, dir));
        x += x < dx ? 1 : -1;
    }
    while (y != dy) {
        const int dir = y < dy ? 2 : 3;  // S : N
        out.push_back(linkId(y * cols_ + x, dir));
        y += y < dy ? 1 : -1;
    }
}

// ------------------------------------------------------------- FatTree

FatTreeTopology::FatTreeTopology(int num_nodes) : numNodes_(num_nodes)
{
    if (num_nodes <= 0)
        fatal("FatTreeTopology: need at least one node");
    leaves_ = int(std::bit_ceil(unsigned(num_nodes)));
    levels_ = leaves_ > 1 ? std::countr_zero(unsigned(leaves_)) : 1;

    levelOffset_.resize(std::size_t(levels_) + 1, 0);
    int edges = 0;
    for (int level = 0; level < levels_; ++level) {
        levelOffset_[std::size_t(level)] = edges;
        edges += leaves_ >> level;  // edges from level to level+1
    }
    levelOffset_[std::size_t(levels_)] = edges;
    numEdges_ = edges;
}

int
FatTreeTopology::edgeIndex(int level, int pos) const
{
    return levelOffset_[std::size_t(level)] + pos;
}

void
FatTreeTopology::route(int src, int dst, std::vector<int> &out) const
{
    if (src < 0 || src >= numNodes_ || dst < 0 || dst >= numNodes_)
        panic("FatTreeTopology: route outside node range");
    if (src == dst)
        return;

    // Climb from both leaves until the positions coincide: that is the
    // nearest common ancestor. Record up-links on the way up from src
    // and down-links (in order) on the way down to dst.
    int up = src;
    int down = dst;
    std::vector<int> down_links;
    int level = 0;
    while (up != down) {
        if (level >= levels_)
            panic("FatTreeTopology: NCA search escaped the root");
        out.push_back(2 * edgeIndex(level, up));            // up link
        down_links.push_back(2 * edgeIndex(level, down) + 1); // down link
        up >>= 1;
        down >>= 1;
        ++level;
    }
    for (auto it = down_links.rbegin(); it != down_links.rend(); ++it)
        out.push_back(*it);
}

double
FatTreeTopology::linkWidthFactor(int link) const
{
    // Find the level this edge sits on; capacity doubles per level.
    const int edge = link / 2;
    for (int level = 0; level < levels_; ++level) {
        if (edge < levelOffset_[std::size_t(level) + 1])
            return double(1 << level);
    }
    return double(1 << (levels_ - 1));
}

// ----------------------------------------------------------- Butterfly

ButterflyTopology::ButterflyTopology(int num_nodes) : numNodes_(num_nodes)
{
    if (num_nodes <= 0)
        fatal("ButterflyTopology: need at least one node");
    ports_ = int(std::bit_ceil(unsigned(num_nodes)));
    stages_ = ports_ > 1 ? std::countr_zero(unsigned(ports_)) : 1;
}

void
ButterflyTopology::route(int src, int dst, std::vector<int> &out) const
{
    if (src < 0 || src >= numNodes_ || dst < 0 || dst >= numNodes_)
        panic("ButterflyTopology: route outside node range");

    // Destination-tag routing: stage s replaces bit (stages-1-s) of the
    // current position with the destination's bit. Forward traffic
    // (src < dst in node id is irrelevant) uses the first links array;
    // the same wiring exists in the reverse direction for replies.
    const bool reverse = src > dst;
    int current = src;
    for (int s = 0; s < stages_; ++s) {
        const int bit = stages_ - 1 - s;
        const int next = (current & ~(1 << bit)) | (dst & (1 << bit));
        const int base = reverse ? stages_ * ports_ : 0;
        out.push_back(base + s * ports_ + next);
        current = next;
    }
}

} // namespace ggpu::noc
