/**
 * @file
 * Interconnect topologies from Table II of the paper: local crossbar
 * (baseline), 2-D mesh with dimension-order routing, fat tree with
 * nearest-common-ancestor routing, and butterfly with destination-tag
 * routing. A topology maps a (source, destination) node pair to the
 * ordered list of links a packet traverses.
 */

#ifndef GGPU_NOC_TOPOLOGY_HH
#define GGPU_NOC_TOPOLOGY_HH

#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"

namespace ggpu::noc
{

/**
 * Abstract network topology. Nodes are numbered 0..numNodes-1; links
 * are numbered 0..numLinks-1 and are unidirectional.
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    virtual std::string name() const = 0;
    virtual int numNodes() const = 0;
    virtual int numLinks() const = 0;

    /** Append the link ids of the @p src -> @p dst route to @p out. */
    virtual void route(int src, int dst, std::vector<int> &out) const = 0;

    /**
     * Relative bandwidth of @p link (1.0 = one flit/cycle). Fat trees
     * fatten links toward the root.
     */
    virtual double linkWidthFactor(int link) const;

    /** Hop count of the src -> dst route. */
    int hops(int src, int dst) const;

    /** Factory keyed by the Table II topology enum. */
    static std::unique_ptr<Topology> create(NocTopology kind, int num_nodes);
};

/** Single-stage crossbar: every route is input port -> output port. */
class XbarTopology : public Topology
{
  public:
    explicit XbarTopology(int num_nodes);

    std::string name() const override { return "local-xbar"; }
    int numNodes() const override { return numNodes_; }
    int numLinks() const override { return 2 * numNodes_; }
    void route(int src, int dst, std::vector<int> &out) const override;

  private:
    int numNodes_;
};

/** 2-D mesh with X-then-Y dimension-order routing. */
class MeshTopology : public Topology
{
  public:
    explicit MeshTopology(int num_nodes);

    std::string name() const override { return "mesh"; }
    int numNodes() const override { return numNodes_; }
    int numLinks() const override;
    void route(int src, int dst, std::vector<int> &out) const override;

    int cols() const { return cols_; }
    int rows() const { return rows_; }

  private:
    /** Link leaving @p node in direction @p dir (0=E,1=W,2=S,3=N). */
    int linkId(int node, int dir) const { return node * 4 + dir; }

    int numNodes_;
    int cols_;
    int rows_;
};

/** Binary fat tree; route climbs to the nearest common ancestor. */
class FatTreeTopology : public Topology
{
  public:
    explicit FatTreeTopology(int num_nodes);

    std::string name() const override { return "fat-tree"; }
    int numNodes() const override { return numNodes_; }
    int numLinks() const override { return 2 * numEdges_; }
    void route(int src, int dst, std::vector<int> &out) const override;
    double linkWidthFactor(int link) const override;

    int levels() const { return levels_; }

  private:
    int edgeIndex(int level, int pos) const;

    int numNodes_;
    int leaves_;    //!< next power of two >= numNodes_
    int levels_;    //!< log2(leaves_)
    int numEdges_;
    std::vector<int> levelOffset_;
};

/** 2-ary n-fly butterfly with destination-tag routing. */
class ButterflyTopology : public Topology
{
  public:
    explicit ButterflyTopology(int num_nodes);

    std::string name() const override { return "butterfly"; }
    int numNodes() const override { return numNodes_; }
    int numLinks() const override { return 2 * stages_ * ports_; }
    void route(int src, int dst, std::vector<int> &out) const override;

    int stages() const { return stages_; }

  private:
    int numNodes_;
    int ports_;   //!< next power of two >= numNodes_
    int stages_;  //!< log2(ports_)
};

} // namespace ggpu::noc

#endif // GGPU_NOC_TOPOLOGY_HH
