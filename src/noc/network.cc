#include "noc/network.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace ggpu::noc
{

Network::Network(const NocConfig &cfg, int num_nodes)
    : cfg_(cfg), topo_(Topology::create(cfg.topology, num_nodes))
{
    cfg_.validate();
    perHopLatency_ = cfg_.linkDelay + cfg_.routerDelay + cfg_.vcAllocDelay;
    linkFreeAt_.assign(std::size_t(topo_->numLinks()), 0);
}

std::uint32_t
Network::flitsFor(std::uint32_t payload_bytes) const
{
    const std::uint32_t total = payload_bytes + headerBytes;
    return (total + cfg_.flitBytes - 1) / cfg_.flitBytes;
}

Cycles
Network::serialization(int link, std::uint32_t flit_count) const
{
    const double width = topo_->linkWidthFactor(link);
    return Cycles(std::max<std::uint64_t>(
        1, std::uint64_t(std::ceil(double(flit_count) / width))));
}

Cycles
Network::send(int src, int dst, std::uint32_t payload_bytes, Cycles now)
{
    const std::uint32_t flit_count = flitsFor(payload_bytes);
    packets_.inc();
    flits_.inc(flit_count);

    if (src == dst) {
        // Core-local traffic (e.g. a partition replying to itself in
        // degenerate configs) still pays one router traversal.
        latencySum_.inc(perHopLatency_);
        return now + perHopLatency_;
    }

    std::vector<int> links;
    topo_->route(src, dst, links);
    if (links.empty())
        panic("Network: empty route from ", src, " to ", dst);

    Cycles t = now;
    for (int link : links) {
        Cycles &free_at = linkFreeAt_[std::size_t(link)];
        const Cycles start = std::max(t, free_at);
        const Cycles ser = serialization(link, flit_count);
        free_at = start + ser;
        // Head flit reaches the next router after the hop latency; the
        // tail arrives a serialization time later (wormhole pipeline).
        t = start + perHopLatency_ + ser - 1;
    }

    latencySum_.inc(t - now);
    return t;
}

Cycles
Network::zeroLoadLatency(int src, int dst,
                         std::uint32_t payload_bytes) const
{
    if (src == dst)
        return perHopLatency_;
    const std::uint32_t flit_count = flitsFor(payload_bytes);
    std::vector<int> links;
    topo_->route(src, dst, links);
    Cycles t = 0;
    for (int link : links)
        t += perHopLatency_ + serialization(link, flit_count) - 1;
    return t;
}

void
Network::resetStats()
{
    packets_.reset();
    flits_.reset();
    latencySum_.reset();
}

void
Network::resetState()
{
    std::fill(linkFreeAt_.begin(), linkFreeAt_.end(), 0);
}

} // namespace ggpu::noc
