/**
 * @file
 * Flit-level interconnect timing model (Booksim substitute). Packets
 * are serialized into flits by the channel width (Table II flit size),
 * contend for each link along the topology route, and pay a per-hop
 * router pipeline latency. Captures exactly the sensitivities the
 * paper sweeps: topology (Fig 20), router latency (Fig 21), and
 * channel bandwidth (Fig 22).
 */

#ifndef GGPU_NOC_NETWORK_HH
#define GGPU_NOC_NETWORK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "noc/topology.hh"

namespace ggpu::noc
{

/**
 * Link-contention network. Each unidirectional link transfers one flit
 * per cycle (scaled by the topology's width factor); a packet holds
 * each link on its route for its serialization time, wormhole style.
 *
 * Fast-forward contract (docs/PARALLEL_ENGINE.md): the network is not
 * ticked. send() resolves a packet's full delivery cycle eagerly and
 * the Gpu schedules that as an event, so in-flight traffic surfaces in
 * nextComponentEventAt() through the event queue — the network needs
 * no nextEventAt() of its own. Link reservations (linkFreeAt_) are
 * cycle-stamped rather than decremented, so jumping the global clock
 * over idle stretches cannot change any routing or contention outcome.
 */
class Network
{
  public:
    /**
     * @param cfg Table II configuration.
     * @param num_nodes Total endpoints (SM cores + memory partitions).
     */
    Network(const NocConfig &cfg, int num_nodes);

    /**
     * Inject a packet of @p payload_bytes at @p now; returns the cycle
     * it is fully delivered at @p dst.
     */
    Cycles send(int src, int dst, std::uint32_t payload_bytes, Cycles now);

    /** Zero-load latency of a route (no contention), for tests. */
    Cycles zeroLoadLatency(int src, int dst,
                           std::uint32_t payload_bytes) const;

    const Topology &topology() const { return *topo_; }

    std::uint64_t packets() const { return packets_.value(); }
    std::uint64_t flits() const { return flits_.value(); }
    /** Sum of end-to-end packet latencies in cycles. */
    std::uint64_t latencySum() const { return latencySum_.value(); }
    /** Mean end-to-end packet latency in cycles. */
    double avgLatency() const
    {
        return ratio(latencySum_.value(), packets());
    }

    void resetStats();
    /** Also clears link reservations (between kernels). */
    void resetState();

  private:
    std::uint32_t flitsFor(std::uint32_t payload_bytes) const;
    Cycles serialization(int link, std::uint32_t flits) const;

    static constexpr std::uint32_t headerBytes = 8;

    NocConfig cfg_;
    std::unique_ptr<Topology> topo_;
    Cycles perHopLatency_;
    std::vector<Cycles> linkFreeAt_;

    Counter packets_;
    Counter flits_;
    Counter latencySum_;
};

} // namespace ggpu::noc

#endif // GGPU_NOC_NETWORK_HH
