#include "common/config.hh"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "common/log.hh"

namespace ggpu
{

void
GpuConfig::scaleCtaResources(double factor)
{
    if (factor <= 0.0)
        fatal("CTA resource scale factor must be positive, got ", factor);
    auto scale_u32 = [factor](std::uint32_t v) {
        double scaled = std::round(double(v) * factor);
        return std::uint32_t(scaled < 1.0 ? 1.0 : scaled);
    };
    registersPerCore = scale_u32(registersPerCore);
    maxCtasPerCore = scale_u32(maxCtasPerCore);
    maxThreadsPerCore = scale_u32(maxThreadsPerCore);
    sharedMemPerCoreBytes = scale_u32(sharedMemPerCoreBytes);
    // The warp-slot file cannot exceed the 64-entry scoreboard.
    maxWarpsPerCore = int(std::min<std::uint32_t>(
        64, scale_u32(std::uint32_t(maxWarpsPerCore))));
}

void
GpuConfig::validate() const
{
    if (numCores <= 0)
        fatal("GpuConfig: numCores must be positive");
    if (warpSizeLanes != warpSize)
        fatal("GpuConfig: only warp size 32 is supported");
    if (lineBytes == 0 || !std::has_single_bit(lineBytes))
        fatal("GpuConfig: cache line size must be a power of two");
    if (l1SizeBytes != 0 && l1SizeBytes % (lineBytes * l1Assoc) != 0)
        fatal("GpuConfig: L1 size must be a multiple of assoc * line size");
    if (l2SizeBytes == 0)
        fatal("GpuConfig: L2 cache cannot be disabled");
    if (l2SizeBytes % std::uint32_t(numMemPartitions) != 0)
        fatal("GpuConfig: L2 size must divide evenly across partitions");
    if ((l2SizeBytes / numMemPartitions) % (lineBytes * l2Assoc) != 0)
        fatal("GpuConfig: L2 slice size must be a multiple of assoc * line");
    if (numMemPartitions <= 0)
        fatal("GpuConfig: need at least one memory partition");
    if (maxThreadsPerCore % std::uint32_t(warpSize) != 0)
        fatal("GpuConfig: threads per core must be a multiple of warp size");
    if (issueWidth <= 0)
        fatal("GpuConfig: issue width must be positive");
    if (coreClockGhz <= 0.0)
        fatal("GpuConfig: core clock must be positive");
    if (dramRowBytes == 0 || dramBurstBytes == 0)
        fatal("GpuConfig: DRAM row/burst sizes must be positive");
}

const std::vector<std::uint32_t> &
GpuConfig::registerSweep()
{
    static const std::vector<std::uint32_t> values{
        16384, 32768, 65536, 131072, 262144};
    return values;
}

const std::vector<std::uint32_t> &
GpuConfig::ctaSweep()
{
    static const std::vector<std::uint32_t> values{8, 16, 32, 64, 128};
    return values;
}

const std::vector<std::uint32_t> &
GpuConfig::threadSweep()
{
    static const std::vector<std::uint32_t> values{
        384, 768, 1536, 3072, 6144};
    return values;
}

const std::vector<std::uint32_t> &
GpuConfig::sharedMemSweepKb()
{
    static const std::vector<std::uint32_t> values{32, 64, 100, 256, 512};
    return values;
}

const std::vector<std::pair<std::uint32_t, std::uint32_t>> &
GpuConfig::cacheSweep()
{
    static const std::vector<std::pair<std::uint32_t, std::uint32_t>> values{
        {0, 128u << 10},
        {32u << 10, 512u << 10},
        {128u << 10, 4u << 20},
        {256u << 10, 8u << 20},
        {512u << 10, 16u << 20},
        {4u << 20, 128u << 20},
    };
    return values;
}

void
NocConfig::validate() const
{
    if (flitBytes == 0)
        fatal("NocConfig: flit size must be positive");
    if (virtualChannels <= 0 || vcBufferFlits <= 0)
        fatal("NocConfig: VC count and buffers must be positive");
    if (allocIters <= 0 || inputSpeedup <= 0)
        fatal("NocConfig: allocator parameters must be positive");
}

const std::vector<std::uint32_t> &
NocConfig::flitSweep()
{
    static const std::vector<std::uint32_t> values{8, 16, 32, 40};
    return values;
}

int
SimConfig::resolvedThreads() const
{
    if (threads != 0)
        return threads;
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : int(hc);
}

bool
SimConfig::resolvedFastForward() const
{
    // Not cached: the equivalence harness toggles the variable between
    // runs inside one process.
    const char *env = std::getenv("GGPU_NO_FAST_FORWARD");
    if (env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0'))
        return false;
    return fastForward;
}

void
SimConfig::validate() const
{
    if (threads < 0 || threads > 1024)
        fatal("SimConfig: threads must be in [0, 1024] (0 = hardware "
              "concurrency), got ", threads);
}

void
SystemConfig::validate() const
{
    gpu.validate();
    noc.validate();
    sim.validate();
    if (pci.bandwidthGBs <= 0.0 || pci.latencyUs < 0.0)
        fatal("PciConfig: invalid bandwidth/latency");
}

std::string
toString(MemSchedPolicy policy)
{
    switch (policy) {
      case MemSchedPolicy::FrFcfs: return "FR-FCFS";
      case MemSchedPolicy::Fifo: return "FIFO";
      case MemSchedPolicy::OoO128: return "OoO-128";
    }
    return "unknown";
}

std::string
toString(WarpSchedPolicy policy)
{
    switch (policy) {
      case WarpSchedPolicy::Lrr: return "LRR";
      case WarpSchedPolicy::Gto: return "GTO";
      case WarpSchedPolicy::Oldest: return "OLD";
      case WarpSchedPolicy::TwoLevel: return "2LV";
    }
    return "unknown";
}

std::string
toString(NocTopology topo)
{
    switch (topo) {
      case NocTopology::Xbar: return "local-xbar";
      case NocTopology::Mesh: return "mesh";
      case NocTopology::FatTree: return "fat-tree";
      case NocTopology::Butterfly: return "butterfly";
    }
    return "unknown";
}

} // namespace ggpu
