/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**) so every
 * dataset, workload, and simulation outcome is bit-reproducible across
 * runs regardless of the standard library implementation.
 */

#ifndef GGPU_COMMON_RANDOM_HH
#define GGPU_COMMON_RANDOM_HH

#include <cstdint>

namespace ggpu
{

/** Reproducible RNG with a gem5-style simple interface. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding to fill the xoshiro state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + std::int64_t(below(std::uint64_t(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace ggpu

#endif // GGPU_COMMON_RANDOM_HH
