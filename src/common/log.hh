/**
 * @file
 * Status/error reporting helpers in the gem5 tradition: panic() for
 * simulator bugs, fatal() for user errors, warn()/inform() for advisories.
 */

#ifndef GGPU_COMMON_LOG_HH
#define GGPU_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace ggpu
{

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Emit a formatted message; Fatal and Panic throw (so tests can observe
 * them) carrying the message. Panic indicates a simulator bug, Fatal a
 * user/configuration error.
 */
[[noreturn]] void logFail(LogLevel level, const std::string &msg);
void logNote(LogLevel level, const std::string &msg);

/** Error thrown by fatal(): the user asked for something unsupported. */
class FatalError : public std::exception
{
  public:
    explicit FatalError(std::string msg) : msg_(std::move(msg)) {}
    const char *what() const noexcept override { return msg_.c_str(); }

  private:
    std::string msg_;
};

/** Error thrown by panic(): an internal invariant was violated. */
class PanicError : public std::exception
{
  public:
    explicit PanicError(std::string msg) : msg_(std::move(msg)) {}
    const char *what() const noexcept override { return msg_.c_str(); }

  private:
    std::string msg_;
};

namespace detail
{

inline void
streamInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
streamInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    streamInto(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    streamInto(os, args...);
    return os.str();
}

} // namespace detail

/** Abort simulation due to an internal bug. Throws PanicError. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    logFail(LogLevel::Panic, detail::concat(args...));
}

/** Abort simulation due to a user/configuration error. Throws FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    logFail(LogLevel::Fatal, detail::concat(args...));
}

/** Non-fatal advisory about questionable behaviour. */
template <typename... Args>
void
warn(const Args &...args)
{
    logNote(LogLevel::Warn, detail::concat(args...));
}

/** Normal operating status message. */
template <typename... Args>
void
inform(const Args &...args)
{
    logNote(LogLevel::Inform, detail::concat(args...));
}

/** Suppress or restore warn()/inform() output (used by quiet benches). */
void setLogQuiet(bool quiet);

} // namespace ggpu

#endif // GGPU_COMMON_LOG_HH
