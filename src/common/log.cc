#include "common/log.hh"

#include <atomic>
#include <iostream>

namespace ggpu
{

namespace
{

std::atomic<bool> quietFlag{false};

const char *
prefixFor(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info: ";
      case LogLevel::Warn: return "warn: ";
      case LogLevel::Fatal: return "fatal: ";
      case LogLevel::Panic: return "panic: ";
    }
    return "";
}

} // namespace

void
logFail(LogLevel level, const std::string &msg)
{
    if (!quietFlag.load())
        std::cerr << prefixFor(level) << msg << std::endl;
    if (level == LogLevel::Panic)
        throw PanicError(msg);
    throw FatalError(msg);
}

void
logNote(LogLevel level, const std::string &msg)
{
    if (!quietFlag.load())
        std::cerr << prefixFor(level) << msg << std::endl;
}

void
setLogQuiet(bool quiet)
{
    quietFlag.store(quiet);
}

} // namespace ggpu
