/**
 * @file
 * Lightweight statistics primitives used by every timing component:
 * scalar counters, ratio helpers, and bucketed histograms (for warp
 * occupancy, stall breakdowns, instruction mixes).
 */

#ifndef GGPU_COMMON_STATS_HH
#define GGPU_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ggpu
{

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Safe ratio helper: returns 0 when the denominator is 0. */
double ratio(std::uint64_t num, std::uint64_t den);

/**
 * Nearest-rank percentile of an ascending-sorted sample vector: the
 * smallest element whose rank is >= ceil(p * n). @p p is clamped to
 * [0, 1]; p == 0 returns the minimum, p == 1 the maximum, and an
 * empty vector returns 0. Integer in, integer out — no interpolation,
 * so results are bit-reproducible across platforms.
 */
std::uint64_t percentileOfSorted(const std::vector<std::uint64_t> &sorted,
                                 double p);

/**
 * Fixed-bucket histogram over small integer keys (e.g. warp occupancy
 * 1..32, or enum-indexed stall reasons).
 */
class Histogram
{
  public:
    /** @param buckets Number of buckets (keys 0..buckets-1). */
    explicit Histogram(std::size_t buckets) : counts_(buckets, 0) {}

    /**
     * Add @p n samples to bucket @p key. Out-of-range keys indicate a
     * producer bug (e.g. an enum grew past the bucket count): they
     * panic in debug builds and land in overflow() in release builds
     * instead of silently corrupting the last bucket.
     */
    void add(std::size_t key, std::uint64_t n = 1);
    void reset();

    std::uint64_t count(std::size_t key) const;
    /** Sum of in-range buckets (overflow() samples excluded). */
    std::uint64_t total() const;
    /** Samples whose key was >= buckets(). */
    std::uint64_t overflow() const { return overflow_; }
    /** Fraction of all samples in bucket @p key (0 when empty). */
    double fraction(std::size_t key) const;
    std::size_t buckets() const { return counts_.size(); }

    /** Merge another histogram of the same shape into this one. */
    void merge(const Histogram &other);

    /**
     * Nearest-rank percentile over the bucket keys: the smallest key
     * whose cumulative count reaches ceil(p * total()). @p p is
     * clamped to [0, 1]; an empty histogram (total() == 0) returns 0.
     * Overflow samples are excluded, matching total().
     */
    std::size_t percentile(double p) const;

    /** Exact bucket-wise equality (differential determinism tests). */
    bool operator==(const Histogram &other) const = default;

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t overflow_ = 0;
};

/**
 * Named scalar collection used by the report layer: components export
 * their counters into one of these so benches can print uniform tables.
 */
class StatSet
{
  public:
    void set(const std::string &name, double value);
    void add(const std::string &name, double value);
    bool has(const std::string &name) const;
    /** Throws PanicError when @p name was never set. */
    double get(const std::string &name) const;
    double getOr(const std::string &name, double fallback) const;

    const std::map<std::string, double> &all() const { return values_; }

  private:
    std::map<std::string, double> values_;
};

} // namespace ggpu

#endif // GGPU_COMMON_STATS_HH
