#include "common/thread_pool.hh"

#include "common/log.hh"

namespace ggpu
{

namespace
{

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Spin budget before a waiter yields the CPU, and yield budget before a
// worker falls back to the condition variable. The sim dispatches one
// job per cycle, so the inter-job gap is usually far shorter than the
// spin window; the sleep path only triggers between kernel launches and
// on oversubscribed machines.
constexpr int spinIterations = 256;
constexpr int yieldIterations = 64;

} // namespace

int
ThreadPool::hardwareLanes()
{
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : int(hc);
}

ThreadPool::ThreadPool(int lanes)
{
    if (lanes == 0)
        lanes = hardwareLanes();
    if (lanes < 0)
        fatal("ThreadPool: lane count must be >= 0, got ", lanes);
    workers_.reserve(std::size_t(lanes - 1));
    for (int i = 0; i < lanes - 1; ++i) {
        // Worker i always runs chunk i + 1; the caller runs chunk 0.
        workers_.emplace_back(
            [this, i] { workerLoop(std::size_t(i) + 1); });
    }
}

ThreadPool::~ThreadPool()
{
    stop_.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        epoch_.fetch_add(1, std::memory_order_release);
    }
    wakeCv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::runChunk(std::size_t chunk)
{
    // Contiguous block partition: depends only on (jobSize_, lanes), so
    // the index->lane mapping is stable for a given configuration.
    const std::size_t lane_count = workers_.size() + 1;
    const std::size_t begin = jobSize_ * chunk / lane_count;
    const std::size_t end = jobSize_ * (chunk + 1) / lane_count;
    if (begin >= end)
        return;
    try {
        (*body_)(begin, end);
    } catch (...) {
        std::lock_guard<std::mutex> lock(excMutex_);
        if (!firstExc_)
            firstExc_ = std::current_exception();
    }
}

void
ThreadPool::workerLoop(std::size_t chunk)
{
    // Baseline is the construction-time epoch (0), NOT a fresh load: a
    // worker whose thread starts after the owner already dispatched a
    // job must still see that epoch as new, or the barrier never fills.
    // Jobs are synchronous, so the epoch is never more than one ahead.
    std::uint64_t seen = 0;
    for (;;) {
        // Wait for the next epoch: spin, yield, then sleep.
        int spins = 0;
        int yields = 0;
        while (epoch_.load(std::memory_order_acquire) == seen) {
            if (spins < spinIterations) {
                ++spins;
                cpuRelax();
                continue;
            }
            if (yields < yieldIterations) {
                ++yields;
                std::this_thread::yield();
                continue;
            }
            std::unique_lock<std::mutex> lock(wakeMutex_);
            ++sleepers_;
            wakeCv_.wait(lock, [&] {
                return epoch_.load(std::memory_order_acquire) != seen;
            });
            --sleepers_;
        }
        seen = epoch_.load(std::memory_order_acquire);
        if (stop_.load(std::memory_order_acquire))
            return;
        runChunk(chunk);
        done_.fetch_add(1, std::memory_order_release);
    }
}

void
ThreadPool::parallelFor(std::size_t n, const RangeFn &body)
{
    if (n == 0)
        return;
    if (workers_.empty()) {
        body(0, n);
        return;
    }

    body_ = &body;
    jobSize_ = n;
    done_.store(0, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        epoch_.fetch_add(1, std::memory_order_release);
        if (sleepers_ == 0) {
            // Every worker is inside its spin/yield window; skip the
            // notification syscall on the per-cycle fast path.
        } else {
            wakeCv_.notify_all();
        }
    }

    runChunk(0);

    int spins = 0;
    while (done_.load(std::memory_order_acquire) != workers_.size()) {
        if (spins < spinIterations) {
            ++spins;
            cpuRelax();
        } else {
            std::this_thread::yield();
        }
    }

    body_ = nullptr;
    jobSize_ = 0;
    if (firstExc_) {
        std::exception_ptr exc;
        {
            std::lock_guard<std::mutex> lock(excMutex_);
            exc = firstExc_;
            firstExc_ = nullptr;
        }
        std::rethrow_exception(exc);
    }
}

} // namespace ggpu
