/**
 * @file
 * Reusable barrier-phased worker pool for the deterministic parallel
 * simulation engine. One pool is created per Gpu and re-dispatched every
 * simulated cycle, so the dispatch/join path must cost well under a
 * microsecond: workers spin briefly on an epoch counter before falling
 * back to a condition variable, and the caller participates as lane 0.
 */

#ifndef GGPU_COMMON_THREAD_POOL_HH
#define GGPU_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ggpu
{

/**
 * Fixed-size pool executing fork/join parallel-for jobs.
 *
 * parallelFor(n, body) splits [0, n) into one contiguous chunk per lane
 * (workers plus the calling thread) and returns once every chunk has
 * completed, rethrowing the first exception any chunk raised. The chunk
 * partition depends only on n and the lane count, never on scheduling,
 * so callers that keep per-index state disjoint get deterministic
 * results for any lane count.
 *
 * The pool is reusable across an arbitrary number of jobs (the sim
 * dispatches one per cycle). parallelFor must only be called from the
 * thread that owns the pool; jobs never overlap.
 */
class ThreadPool
{
  public:
    /** body(begin, end) processes the half-open index range [begin, end). */
    using RangeFn = std::function<void(std::size_t, std::size_t)>;

    /** @param lanes Total parallel lanes including the caller (>= 1);
     *               0 selects one lane per hardware thread. */
    explicit ThreadPool(int lanes);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total lanes: worker threads + the calling thread. */
    int lanes() const { return int(workers_.size()) + 1; }

    /** Run @p body over [0, n); synchronous, rethrows chunk exceptions. */
    void parallelFor(std::size_t n, const RangeFn &body);

    /** Hardware thread count (>= 1 even when the OS reports unknown). */
    static int hardwareLanes();

  private:
    void workerLoop(std::size_t chunk);
    void runChunk(std::size_t chunk);

    // Job state: written by the caller before the epoch bump (release),
    // read by workers after observing the new epoch (acquire).
    const RangeFn *body_ = nullptr;
    std::size_t jobSize_ = 0;

    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<std::size_t> done_{0};
    std::atomic<bool> stop_{false};

    std::mutex wakeMutex_;
    std::condition_variable wakeCv_;
    std::size_t sleepers_ = 0;  //!< Guarded by wakeMutex_

    std::mutex excMutex_;
    std::exception_ptr firstExc_;  //!< Guarded by excMutex_

    std::vector<std::thread> workers_;
};

} // namespace ggpu

#endif // GGPU_COMMON_THREAD_POOL_HH
