#include "common/stats.hh"

#include "common/log.hh"

namespace ggpu
{

double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0 : double(num) / double(den);
}

void
Histogram::add(std::size_t key, std::uint64_t n)
{
    if (counts_.empty())
        panic("Histogram::add on a zero-bucket histogram");
    if (key >= counts_.size()) {
#ifndef NDEBUG
        panic("Histogram::add: key ", key, " out of range [0, ",
              counts_.size(), ")");
#else
        overflow_ += n;
        return;
#endif
    }
    counts_[key] += n;
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c = 0;
    overflow_ = 0;
}

std::uint64_t
Histogram::count(std::size_t key) const
{
    return key < counts_.size() ? counts_[key] : 0;
}

std::uint64_t
Histogram::total() const
{
    std::uint64_t sum = 0;
    for (auto c : counts_)
        sum += c;
    return sum;
}

double
Histogram::fraction(std::size_t key) const
{
    return ratio(count(key), total());
}

namespace
{

/** ceil(p * n) as a rank in [1, n] for clamped p in (0, 1]. */
std::uint64_t
nearestRank(double p, std::uint64_t n)
{
    if (p <= 0.0)
        return 1;
    if (p >= 1.0)
        return n;
    const std::uint64_t rank = std::uint64_t(p * double(n));
    // Integer truncation floors; bump unless p * n was exact.
    return double(rank) >= p * double(n) ? (rank == 0 ? 1 : rank)
                                         : rank + 1;
}

} // namespace

std::uint64_t
percentileOfSorted(const std::vector<std::uint64_t> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    const std::uint64_t rank = nearestRank(p, sorted.size());
    return sorted[std::size_t(rank - 1)];
}

std::size_t
Histogram::percentile(double p) const
{
    const std::uint64_t samples = total();
    if (samples == 0)
        return 0;
    const std::uint64_t rank = nearestRank(p, samples);
    std::uint64_t cumulative = 0;
    for (std::size_t key = 0; key < counts_.size(); ++key) {
        cumulative += counts_[key];
        if (cumulative >= rank)
            return key;
    }
    return counts_.size() - 1;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.counts_.size() != counts_.size())
        panic("Histogram::merge with mismatched bucket counts");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    overflow_ += other.overflow_;
}

void
StatSet::set(const std::string &name, double value)
{
    values_[name] = value;
}

void
StatSet::add(const std::string &name, double value)
{
    values_[name] += value;
}

bool
StatSet::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

double
StatSet::get(const std::string &name) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        panic("StatSet: unknown stat '", name, "'");
    return it->second;
}

double
StatSet::getOr(const std::string &name, double fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

} // namespace ggpu
