/**
 * @file
 * Fundamental scalar types shared by every Genomics-GPU subsystem.
 */

#ifndef GGPU_COMMON_TYPES_HH
#define GGPU_COMMON_TYPES_HH

#include <cstdint>

namespace ggpu
{

/** Byte address inside the simulated device (or host) address space. */
using Addr = std::uint64_t;

/** Simulation time expressed in GPU core clock cycles. */
using Cycles = std::uint64_t;

/** 32-wide warp lane mask; bit i set means lane i is active. */
using LaneMask = std::uint32_t;

/** Number of lanes in a warp. Fixed at 32 across all NVIDIA generations. */
inline constexpr int warpSize = 32;

/** Mask with every lane of a warp active. */
inline constexpr LaneMask fullMask = 0xffffffffu;

/** Three-component launch dimension (grid or CTA), mirroring dim3. */
struct Dim3
{
    std::uint32_t x = 1;
    std::uint32_t y = 1;
    std::uint32_t z = 1;

    constexpr std::uint64_t count() const
    {
        return std::uint64_t(x) * y * z;
    }

    constexpr bool operator==(const Dim3 &other) const = default;
};

} // namespace ggpu

#endif // GGPU_COMMON_TYPES_HH
