/**
 * @file
 * Simulator configuration structures mirroring Tables I and II of the
 * Genomics-GPU paper (hardware configuration and interconnect
 * configuration). Bold values in the paper are the defaults here; the
 * remaining values form the sweep lists used by the benchmark harness.
 */

#ifndef GGPU_COMMON_CONFIG_HH
#define GGPU_COMMON_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ggpu
{

/** DRAM memory-controller request scheduling policy (Table I / Fig 16). */
enum class MemSchedPolicy
{
    FrFcfs,   //!< First-Row First-Come-First-Serve (baseline, out of order)
    Fifo,     //!< Simple in-order FIFO
    OoO128    //!< FR-FCFS with a 128-entry out-of-order buffer
};

/** Warp scheduler algorithm (Fig 19). */
enum class WarpSchedPolicy
{
    Lrr,      //!< Loose round robin (Accel-Sim default)
    Gto,      //!< Greedy-then-oldest
    Oldest,   //!< Oldest-first
    TwoLevel  //!< Two-level active/pending scheduler
};

/** Interconnect topology (Table II / Fig 20). */
enum class NocTopology
{
    Xbar,      //!< Local crossbar (RTX 3070 baseline)
    Mesh,      //!< 2-D mesh, dimension-order routing
    FatTree,   //!< Fat tree, nearest-common-ancestor routing
    Butterfly  //!< k-ary butterfly, destination-tag routing
};

/** Per-SM-core and chip-wide hardware configuration (Table I). */
struct GpuConfig
{
    // --- Core array ----------------------------------------------------
    int numCores = 78;              //!< Shader cores (SMs); RTX 3070 GA104
    int warpSizeLanes = warpSize;   //!< SIMD width
    double coreClockGhz = 1.5;      //!< Base clock used to convert cycles

    // --- Per-core SRAM resources (occupancy limits) ---------------------
    std::uint32_t registersPerCore = 65536;   //!< 32-bit registers
    std::uint32_t maxCtasPerCore = 32;
    std::uint32_t maxThreadsPerCore = 1536;
    std::uint32_t sharedMemPerCoreBytes = 100 * 1024;
    std::uint32_t constMemBytes = 64 * 1024;  //!< Constant cache per core
    std::uint32_t texCacheBytes = 128 * 1024; //!< Texture cache per core

    // --- Issue / execution ----------------------------------------------
    int issueWidth = 2;             //!< Warp instructions issued per cycle
    int maxWarpsPerCore = 48;       //!< 1536 threads / 32 lanes
    Cycles intAluLatency = 4;
    Cycles fpAluLatency = 4;
    Cycles sfuLatency = 16;
    Cycles sharedMemLatency = 24;
    Cycles constMemLatency = 8;     //!< On constant-cache hit
    Cycles branchPenalty = 2;       //!< Control-hazard bubble after branch

    // --- Caches ---------------------------------------------------------
    std::uint32_t l1SizeBytes = 128 * 1024;   //!< Per core; 0 disables L1
    std::uint32_t l1Assoc = 256;
    std::uint32_t l2SizeBytes = 4 * 1024 * 1024; //!< Chip-wide, sliced
    std::uint32_t l2Assoc = 16;
    std::uint32_t lineBytes = 128;
    Cycles l1HitLatency = 28;
    Cycles l2HitLatency = 120;

    // --- Memory system --------------------------------------------------
    int numMemPartitions = 8;       //!< L2 slices / DRAM channels
    MemSchedPolicy memSched = MemSchedPolicy::FrFcfs;
    Cycles dramRowHitLatency = 100;
    Cycles dramRowMissLatency = 250;
    std::uint32_t dramBanksPerChannel = 16;
    std::uint32_t dramRowBytes = 2048;
    std::uint32_t dramBurstBytes = 32;
    Cycles dramBurstCycles = 2;     //!< Data-pin occupancy per burst
    int memSchedQueueSize = 64;     //!< Request-queue entries (128 for OoO128)
    bool perfectMemory = false;     //!< Fig 15: zero memory access latency

    // --- Scheduler / kernel management -----------------------------------
    WarpSchedPolicy warpSched = WarpSchedPolicy::Lrr;
    Cycles kernelLaunchOverhead = 2500;  //!< Host-side launch setup cycles
    Cycles cdpLaunchOverhead = 800;      //!< Device-side child-launch setup
    Cycles cdpRuntimeSetup = 1500;       //!< One-time device runtime setup

    /** Scale CTA/thread/register/smem limits together (Fig 11 sweep). */
    void scaleCtaResources(double factor);

    /** Throw FatalError when a field combination is unsupported. */
    void validate() const;

    /** Sweep lists straight out of Table I (non-bold entries included). */
    static const std::vector<std::uint32_t> &registerSweep();
    static const std::vector<std::uint32_t> &ctaSweep();
    static const std::vector<std::uint32_t> &threadSweep();
    static const std::vector<std::uint32_t> &sharedMemSweepKb();
    static const std::vector<std::pair<std::uint32_t, std::uint32_t>> &
    cacheSweep(); //!< (L1 bytes, L2 bytes) pairs used in Fig 12
};

/** Interconnection-network configuration (Table II). */
struct NocConfig
{
    NocTopology topology = NocTopology::Xbar;
    std::uint32_t flitBytes = 40;       //!< Channel width; Table II bold
    int virtualChannels = 2;
    int vcBufferFlits = 4;
    Cycles routerDelay = 0;             //!< Extra per-hop pipeline delay
    Cycles vcAllocDelay = 1;
    int allocIters = 1;
    int inputSpeedup = 2;
    Cycles linkDelay = 1;               //!< Base per-hop traversal cost

    void validate() const;

    /** Flit-size sweep from Table II / Fig 22. */
    static const std::vector<std::uint32_t> &flitSweep();
};

/** Host-device interconnect (PCIe) model parameters (Fig 4). */
struct PciConfig
{
    double bandwidthGBs = 8.0;   //!< Effective PCIe 3.0 x16 bandwidth
    double latencyUs = 8.0;      //!< Per-transaction fixed overhead
};

/**
 * Simulation-engine execution parameters. These control how the host
 * runs the timing model and never change simulated results: the
 * parallel engine is bit-deterministic for any thread count (see
 * docs/PARALLEL_ENGINE.md).
 */
struct SimConfig
{
    /** Worker lanes ticking SM cores each cycle: 1 = serial (default),
     *  0 = one lane per hardware thread, N = exactly N lanes. */
    int threads = 1;

    /**
     * Event-driven fast-forward: sleep fully stalled SMs and jump the
     * global clock over provably idle stretches instead of ticking
     * every cycle (see docs/PARALLEL_ENGINE.md). Bit-equivalent to
     * per-cycle stepping; disable to run the reference cycle loop.
     */
    bool fastForward = true;

    /** The effective lane count (resolves 0 to hardware concurrency). */
    int resolvedThreads() const;

    /** The effective fast-forward switch: the GGPU_NO_FAST_FORWARD
     *  environment escape hatch overrides the config field. */
    bool resolvedFastForward() const;

    void validate() const;
};

/** Full simulated-system configuration. */
struct SystemConfig
{
    GpuConfig gpu;
    NocConfig noc;
    PciConfig pci;
    SimConfig sim;

    void validate() const;
};

/** Human-readable names for reports. */
std::string toString(MemSchedPolicy policy);
std::string toString(WarpSchedPolicy policy);
std::string toString(NocTopology topo);

} // namespace ggpu

#endif // GGPU_COMMON_CONFIG_HH
