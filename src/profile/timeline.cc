#include "profile/timeline.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/trace.hh"

namespace ggpu::profile
{

namespace
{

using core::json::Value;

std::vector<std::string>
buildSmColumns()
{
    std::vector<std::string> columns = {
        "resident_ctas", "resident_warps", "stalled_warps",
        "issue_cycles",  "active_cycles",  "insns",
        "l1_accesses",   "l1_misses",
    };
    for (std::size_t r = 0;
         r < std::size_t(sim::StallReason::NumReasons); ++r)
        columns.push_back("stall:" +
                          sim::toString(sim::StallReason(r)));
    return columns;
}

} // namespace

const std::vector<std::string> &
smColumns()
{
    static const std::vector<std::string> columns = buildSmColumns();
    return columns;
}

const std::vector<std::string> &
partitionColumns()
{
    static const std::vector<std::string> columns = {
        "l2_accesses", "l2_misses",    "dram_served",
        "dram_row_hits", "dram_pin_busy", "dram_active",
    };
    return columns;
}

const std::vector<std::string> &
nocColumns()
{
    static const std::vector<std::string> columns = {
        "packets",
        "flits",
        "latency_sum",
    };
    return columns;
}

// ------------------------------------------------------ recorder

TimelineRecorder::TimelineRecorder(TimelineOptions options)
    : options_(options)
{
    options_.intervalCycles = std::max<Cycles>(1, options_.intervalCycles);
    timeline_.intervalCycles = options_.intervalCycles;
}

Cycles
TimelineRecorder::sampleInterval() const
{
    return options_.intervalCycles;
}

void
TimelineRecorder::noteCycle(Cycles at)
{
    timeline_.endCycle = std::max(timeline_.endCycle, at);
}

void
TimelineRecorder::onKernelBegin(const sim::LaunchSpec &spec,
                                std::uint64_t grid_id, Cycles now)
{
    KernelSlice slice;
    slice.name = spec.name;
    slice.gridId = grid_id;
    slice.start = now;
    slice.end = now;
    kernelIndex_[grid_id] = timeline_.kernels.size();
    timeline_.kernels.push_back(std::move(slice));
    // Counters were harvested (reset) after the previous launch; the
    // baseline sample that follows restarts delta tracking from it.
    havePrev_ = false;
    noteCycle(now);
}

void
TimelineRecorder::onKernelEnd(std::uint64_t grid_id, Cycles now,
                              std::uint64_t ctas,
                              std::uint64_t child_grids)
{
    auto it = kernelIndex_.find(grid_id);
    if (it == kernelIndex_.end())
        panic("TimelineRecorder: kernel end for unknown grid ",
              grid_id);
    KernelSlice &slice = timeline_.kernels[it->second];
    slice.end = now;
    slice.ctas = ctas;
    slice.childGrids = child_grids;
    noteCycle(now);
}

void
TimelineRecorder::onSample(const sim::IntervalSample &sample)
{
    noteCycle(sample.at);
    if (!havePrev_) {
        prev_ = sample;
        havePrev_ = true;
        return;
    }
    if (sample.at == prev_.at) {  // forced sample on a boundary
        prev_ = sample;
        return;
    }

    IntervalRow row;
    row.start = prev_.at;
    row.end = sample.at;
    row.sm.reserve(sample.sms.size());
    for (std::size_t i = 0; i < sample.sms.size(); ++i) {
        const sim::SmSample &cur = sample.sms[i];
        const sim::SmSample &old = prev_.sms[i];
        std::vector<std::uint64_t> cells;
        cells.reserve(smColumns().size());
        cells.push_back(cur.residentCtas);   // instantaneous
        cells.push_back(cur.residentWarps);  // instantaneous
        cells.push_back(cur.stalledWarps);   // instantaneous
        cells.push_back(cur.issueCycles - old.issueCycles);
        cells.push_back(cur.activeCycles - old.activeCycles);
        cells.push_back(cur.insns - old.insns);
        cells.push_back(cur.l1Accesses - old.l1Accesses);
        cells.push_back(cur.l1Misses - old.l1Misses);
        for (std::size_t r = 0; r < cur.stalls.size(); ++r)
            cells.push_back(cur.stalls[r] - old.stalls[r]);
        row.sm.push_back(std::move(cells));
    }
    row.partitions.reserve(sample.partitions.size());
    for (std::size_t p = 0; p < sample.partitions.size(); ++p) {
        const sim::PartitionSample &cur = sample.partitions[p];
        const sim::PartitionSample &old = prev_.partitions[p];
        row.partitions.push_back({
            cur.l2Accesses - old.l2Accesses,
            cur.l2Misses - old.l2Misses,
            cur.dramServed - old.dramServed,
            cur.dramRowHits - old.dramRowHits,
            cur.dramPinBusy - old.dramPinBusy,
            cur.dramActive - old.dramActive,
        });
    }
    row.noc = {
        sample.nocPackets - prev_.nocPackets,
        sample.nocFlits - prev_.nocFlits,
        sample.nocLatencySum - prev_.nocLatencySum,
    };
    timeline_.intervals.push_back(std::move(row));
    prev_ = sample;
}

void
TimelineRecorder::onChildEnqueued(const sim::LaunchSpec &spec,
                                  std::uint64_t grid_id,
                                  int parent_core, Cycles now,
                                  Cycles ready_at)
{
    ChildSlice child;
    child.name = spec.name;
    child.gridId = grid_id;
    child.parentCore = parent_core;
    child.enqueuedAt = now;
    child.readyAt = ready_at;
    childIndex_[grid_id] = timeline_.children.size();
    timeline_.children.push_back(std::move(child));
    noteCycle(now);
}

void
TimelineRecorder::onChildDispatchBegin(std::uint64_t grid_id,
                                       Cycles now)
{
    auto it = childIndex_.find(grid_id);
    if (it == childIndex_.end())
        panic("TimelineRecorder: dispatch for unknown child grid ",
              grid_id);
    ChildSlice &child = timeline_.children[it->second];
    child.firstDispatchAt = now;
    child.dispatched = true;
    noteCycle(now);
}

void
TimelineRecorder::onChildDone(std::uint64_t grid_id, Cycles now)
{
    auto it = childIndex_.find(grid_id);
    if (it == childIndex_.end())
        panic("TimelineRecorder: completion of unknown child grid ",
              grid_id);
    ChildSlice &child = timeline_.children[it->second];
    child.doneAt = now;
    child.completed = true;
    noteCycle(now);
}

void
TimelineRecorder::onCtaDispatch(std::uint64_t grid_id,
                                std::uint64_t cta_index, int core,
                                Cycles now)
{
    if (!options_.recordCtas)
        return;
    timeline_.ctas.push_back({grid_id, cta_index, core, now, true});
    noteCycle(now);
}

void
TimelineRecorder::onCtaRetire(std::uint64_t grid_id, int core,
                              Cycles now)
{
    if (!options_.recordCtas)
        return;
    timeline_.ctas.push_back({grid_id, 0, core, now, false});
    noteCycle(now);
}

void
TimelineRecorder::onTransfer(bool h2d, std::uint64_t bytes,
                             Cycles start, Cycles end)
{
    timeline_.transfers.push_back({h2d, bytes, start, end});
    noteCycle(end);
}

// ------------------------------------------------------ export

core::json::Value
toJson(const Timeline &timeline)
{
    Value doc = Value::object();
    doc.set("schema", timelineSchema);
    doc.set("app", timeline.app);
    doc.set("cdp", timeline.cdp);
    doc.set("scale", timeline.scale);
    doc.set("seed", timeline.seed);
    doc.set("interval_cycles", timeline.intervalCycles);
    doc.set("clock_ghz", timeline.coreClockGhz);

    Value geometry = Value::object();
    geometry.set("num_cores", timeline.numCores);
    geometry.set("num_partitions", timeline.numPartitions);
    geometry.set("line_bytes", std::uint64_t(timeline.lineBytes));
    doc.set("geometry", std::move(geometry));
    doc.set("end_cycle", timeline.endCycle);

    Value sm_cols = Value::array();
    for (const auto &name : smColumns())
        sm_cols.push(name);
    doc.set("sm_columns", std::move(sm_cols));
    Value part_cols = Value::array();
    for (const auto &name : partitionColumns())
        part_cols.push(name);
    doc.set("partition_columns", std::move(part_cols));
    Value noc_cols = Value::array();
    for (const auto &name : nocColumns())
        noc_cols.push(name);
    doc.set("noc_columns", std::move(noc_cols));

    Value kernels = Value::array();
    for (const KernelSlice &k : timeline.kernels) {
        Value v = Value::object();
        v.set("name", k.name);
        v.set("grid", k.gridId);
        v.set("start", k.start);
        v.set("end", k.end);
        v.set("ctas", k.ctas);
        v.set("child_grids", k.childGrids);
        kernels.push(std::move(v));
    }
    doc.set("kernels", std::move(kernels));

    Value transfers = Value::array();
    for (const TransferSlice &t : timeline.transfers) {
        Value v = Value::object();
        v.set("dir", t.h2d ? "h2d" : "d2h");
        v.set("bytes", t.bytes);
        v.set("start", t.start);
        v.set("end", t.end);
        transfers.push(std::move(v));
    }
    doc.set("transfers", std::move(transfers));

    Value children = Value::array();
    for (const ChildSlice &c : timeline.children) {
        Value v = Value::object();
        v.set("name", c.name);
        v.set("grid", c.gridId);
        v.set("parent_core", c.parentCore);
        v.set("enqueued", c.enqueuedAt);
        v.set("ready", c.readyAt);
        v.set("begin", c.dispatched ? c.firstDispatchAt : c.readyAt);
        v.set("end", c.completed ? c.doneAt : c.readyAt);
        children.push(std::move(v));
    }
    doc.set("children", std::move(children));

    Value ctas = Value::array();
    for (const CtaEvent &e : timeline.ctas) {
        Value v = Value::object();
        v.set("kind", e.dispatch ? "dispatch" : "retire");
        v.set("grid", e.gridId);
        v.set("core", e.core);
        v.set("at", e.at);
        if (e.dispatch)
            v.set("index", e.ctaIndex);
        ctas.push(std::move(v));
    }
    doc.set("cta_events", std::move(ctas));

    Value intervals = Value::array();
    for (const IntervalRow &row : timeline.intervals) {
        Value v = Value::object();
        v.set("start", row.start);
        v.set("end", row.end);
        Value sm = Value::array();
        for (const auto &cells : row.sm) {
            Value one = Value::array();
            for (std::uint64_t cell : cells)
                one.push(cell);
            sm.push(std::move(one));
        }
        v.set("sm", std::move(sm));
        Value partitions = Value::array();
        for (const auto &cells : row.partitions) {
            Value one = Value::array();
            for (std::uint64_t cell : cells)
                one.push(cell);
            partitions.push(std::move(one));
        }
        v.set("partitions", std::move(partitions));
        Value noc = Value::array();
        for (std::uint64_t cell : row.noc)
            noc.push(cell);
        v.set("noc", std::move(noc));
        intervals.push(std::move(v));
    }
    doc.set("intervals", std::move(intervals));
    return doc;
}

// ------------------------------------------------------ validation

namespace
{

void
requireNumberRow(const std::string &label, const Value &row,
                 std::size_t width, const char *what, std::size_t index)
{
    if (!row.isArray() || row.size() != width)
        fatal(label, ": interval ", index, ": ", what, " row has ",
              row.size(), " cells, expected ", width);
    for (std::size_t c = 0; c < row.size(); ++c)
        row.at(c).asNumber();
}

} // namespace

void
validateTimeline(const std::string &label, const Value &doc)
{
    if (!doc.isObject())
        fatal(label, ": top-level value is not an object");
    if (doc.at("schema").asString() != timelineSchema)
        fatal(label, ": schema is '", doc.at("schema").asString(),
              "', expected '", timelineSchema, "'");
    doc.at("app").asString();
    doc.at("cdp").asBool();
    doc.at("scale").asString();
    if (doc.at("interval_cycles").asNumber() < 1)
        fatal(label, ": interval_cycles must be >= 1");
    if (doc.at("clock_ghz").asNumber() <= 0)
        fatal(label, ": clock_ghz must be positive");

    const Value &geometry = doc.at("geometry");
    const std::size_t num_cores =
        std::size_t(geometry.at("num_cores").asNumber());
    const std::size_t num_partitions =
        std::size_t(geometry.at("num_partitions").asNumber());
    if (num_cores == 0 || num_partitions == 0 ||
        geometry.at("line_bytes").asNumber() <= 0)
        fatal(label, ": geometry fields must be positive");

    const std::size_t sm_width = doc.at("sm_columns").size();
    const std::size_t part_width = doc.at("partition_columns").size();
    const std::size_t noc_width = doc.at("noc_columns").size();
    if (sm_width == 0 || part_width == 0 || noc_width == 0)
        fatal(label, ": empty column legend");

    const Value &kernels = doc.at("kernels");
    if (!kernels.isArray())
        fatal(label, ": 'kernels' is not an array");
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const Value &k = kernels.at(i);
        k.at("name").asString();
        k.at("grid").asNumber();
        k.at("ctas").asNumber();
        k.at("child_grids").asNumber();
        if (k.at("end").asNumber() < k.at("start").asNumber())
            fatal(label, ": kernel ", i, " ends before it starts");
    }

    const Value &transfers = doc.at("transfers");
    if (!transfers.isArray())
        fatal(label, ": 'transfers' is not an array");
    for (std::size_t i = 0; i < transfers.size(); ++i) {
        const Value &t = transfers.at(i);
        const std::string &dir = t.at("dir").asString();
        if (dir != "h2d" && dir != "d2h")
            fatal(label, ": transfer ", i, " has direction '", dir,
                  "'");
        t.at("bytes").asNumber();
        if (t.at("end").asNumber() < t.at("start").asNumber())
            fatal(label, ": transfer ", i, " ends before it starts");
    }

    const Value &children = doc.at("children");
    if (!children.isArray())
        fatal(label, ": 'children' is not an array");
    for (std::size_t i = 0; i < children.size(); ++i) {
        const Value &c = children.at(i);
        c.at("name").asString();
        c.at("grid").asNumber();
        c.at("parent_core").asNumber();
        const double enq = c.at("enqueued").asNumber();
        const double ready = c.at("ready").asNumber();
        const double begin = c.at("begin").asNumber();
        const double end = c.at("end").asNumber();
        if (!(enq <= ready && ready <= begin && begin <= end))
            fatal(label, ": child ", i,
                  " violates enqueued <= ready <= begin <= end");
    }

    const Value &cta_events = doc.at("cta_events");
    if (!cta_events.isArray())
        fatal(label, ": 'cta_events' is not an array");
    for (std::size_t i = 0; i < cta_events.size(); ++i) {
        const Value &e = cta_events.at(i);
        const std::string &kind = e.at("kind").asString();
        if (kind != "dispatch" && kind != "retire")
            fatal(label, ": cta_event ", i, " has kind '", kind, "'");
        e.at("grid").asNumber();
        e.at("core").asNumber();
        e.at("at").asNumber();
    }

    const Value &intervals = doc.at("intervals");
    if (!intervals.isArray())
        fatal(label, ": 'intervals' is not an array");
    double prev_end = 0;
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        const Value &row = intervals.at(i);
        const double start = row.at("start").asNumber();
        const double end = row.at("end").asNumber();
        if (end <= start)
            fatal(label, ": interval ", i, " is empty or reversed");
        if (start < prev_end)
            fatal(label, ": interval ", i,
                  " overlaps the previous interval");
        prev_end = end;
        const Value &sm = row.at("sm");
        if (!sm.isArray() || sm.size() != num_cores)
            fatal(label, ": interval ", i, " has ", sm.size(),
                  " SM rows, expected ", num_cores);
        for (std::size_t s = 0; s < sm.size(); ++s)
            requireNumberRow(label, sm.at(s), sm_width, "SM", i);
        const Value &partitions = row.at("partitions");
        if (!partitions.isArray() ||
            partitions.size() != num_partitions)
            fatal(label, ": interval ", i, " has ", partitions.size(),
                  " partition rows, expected ", num_partitions);
        for (std::size_t p = 0; p < partitions.size(); ++p)
            requireNumberRow(label, partitions.at(p), part_width,
                             "partition", i);
        requireNumberRow(label, row.at("noc"), noc_width, "NoC", i);
    }
}

} // namespace ggpu::profile
