#include "profile/run_profile.hh"

#include <cstdlib>
#include <fstream>

#include "common/log.hh"
#include "core/trace_store.hh"

namespace ggpu::profile
{

TimelineOptions
timelineOptionsFromEnv()
{
    TimelineOptions options;
    if (const char *raw = std::getenv("GGPU_TIMELINE_INTERVAL")) {
        const long value = std::atol(raw);
        if (value < 1)
            fatal("GGPU_TIMELINE_INTERVAL must be a positive cycle "
                  "count, got '", raw, "'");
        options.intervalCycles = Cycles(value);
    }
    if (const char *raw = std::getenv("GGPU_TIMELINE_CTAS"))
        options.recordCtas = std::string(raw) == "1";
    return options;
}

void
fillTimelineContext(Timeline &timeline, const std::string &app,
                    const core::RunConfig &config,
                    const TimelineOptions &options)
{
    timeline.app = app;
    timeline.cdp = config.options.cdp;
    timeline.scale = core::scaleName(config.options.scale);
    timeline.seed = config.options.seed;
    timeline.intervalCycles = std::max<Cycles>(1, options.intervalCycles);
    timeline.numCores = config.system.gpu.numCores;
    timeline.numPartitions = config.system.gpu.numMemPartitions;
    timeline.lineBytes = config.system.gpu.lineBytes;
    timeline.coreClockGhz = config.system.gpu.coreClockGhz;
}

ProfileRun
profileApp(const std::string &app, const core::RunConfig &config,
           const TimelineOptions &options)
{
    const sim::TraceBundle bundle = core::emitTrace(
        app, config.options, config.system.gpu.lineBytes);

    TimelineRecorder recorder(options);
    ProfileRun run;
    {
        sim::ScopedTimingObserver scope(&recorder);
        run.record = core::timeTrace(bundle, config.system);
    }
    run.timeline = std::move(recorder.timeline());
    fillTimelineContext(run.timeline, app, config, options);
    return run;
}

std::string
timelineFileName(const std::string &tag)
{
    std::string safe = tag;
    for (char &c : safe) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' ||
                        c == '.' || c == '_';
        if (!ok)
            c = '_';
    }
    return "TIMELINE_" + safe + ".json";
}

void
writeJsonFile(const std::string &path, const core::json::Value &doc)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    os << doc.dump();
    if (!os.flush())
        fatal("short write to '", path, "'");
}

} // namespace ggpu::profile
