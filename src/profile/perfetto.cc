#include "profile/perfetto.hh"

#include <string>

#include "common/log.hh"

namespace ggpu::profile
{

namespace
{

using core::json::Value;

constexpr int pidDevice = 1;   //!< Kernel/transfer/CDP slices
constexpr int pidSm = 2;       //!< Per-SM counter tracks
constexpr int pidMemory = 3;   //!< Aggregate memory/NoC counters

constexpr int tidKernels = 1;
constexpr int tidPci = 2;
constexpr int tidCdp = 3;
constexpr int tidCtas = 4;

/** Device cycles -> trace microseconds at the core clock. */
double
usOf(Cycles cycles, double ghz)
{
    return double(cycles) / (ghz * 1e3);
}

Value
metadataEvent(const char *name, int pid, int tid, const std::string &value)
{
    Value event = Value::object();
    event.set("name", name);
    event.set("ph", "M");
    event.set("pid", pid);
    event.set("tid", tid);
    Value args = Value::object();
    args.set("name", value);
    event.set("args", std::move(args));
    return event;
}

Value
counterEvent(const std::string &name, int pid, double ts, Value args)
{
    Value event = Value::object();
    event.set("name", name);
    event.set("ph", "C");
    event.set("pid", pid);
    event.set("tid", 0);
    event.set("ts", ts);
    event.set("args", std::move(args));
    return event;
}

std::string
smTrackName(std::size_t index)
{
    std::string digits = std::to_string(index);
    while (digits.size() < 2)
        digits.insert(digits.begin(), '0');
    return "SM" + digits;
}

} // namespace

core::json::Value
toPerfettoTrace(const Timeline &timeline)
{
    if (timeline.coreClockGhz <= 0)
        fatal("toPerfettoTrace: timeline has no core clock (context "
              "fields not filled in)");
    const double ghz = timeline.coreClockGhz;

    Value events = Value::array();
    const std::string run_label =
        timeline.app + (timeline.cdp ? "-CDP" : "") +
        (timeline.scale.empty() ? "" : " (" + timeline.scale + ")");
    events.push(metadataEvent("process_name", pidDevice, 0,
                              "Device: " + run_label));
    events.push(metadataEvent("process_name", pidSm, 0, "SM counters"));
    events.push(
        metadataEvent("process_name", pidMemory, 0, "Memory & NoC"));
    events.push(
        metadataEvent("thread_name", pidDevice, tidKernels, "Kernels"));
    events.push(metadataEvent("thread_name", pidDevice, tidPci,
                              "PCIe transfers"));
    events.push(metadataEvent("thread_name", pidDevice, tidCdp,
                              "CDP child grids"));
    if (!timeline.ctas.empty())
        events.push(metadataEvent("thread_name", pidDevice, tidCtas,
                                  "CTA events"));

    for (const KernelSlice &k : timeline.kernels) {
        Value event = Value::object();
        event.set("name", k.name);
        event.set("cat", "kernel");
        event.set("ph", "X");
        event.set("pid", pidDevice);
        event.set("tid", tidKernels);
        event.set("ts", usOf(k.start, ghz));
        event.set("dur", usOf(k.end - k.start, ghz));
        Value args = Value::object();
        args.set("cycles", k.end - k.start);
        args.set("ctas", k.ctas);
        args.set("child_grids", k.childGrids);
        event.set("args", std::move(args));
        events.push(std::move(event));
    }

    for (const TransferSlice &t : timeline.transfers) {
        Value event = Value::object();
        event.set("name", std::string(t.h2d ? "H2D " : "D2H ") +
                              std::to_string(t.bytes) + " B");
        event.set("cat", "pci");
        event.set("ph", "X");
        event.set("pid", pidDevice);
        event.set("tid", tidPci);
        event.set("ts", usOf(t.start, ghz));
        event.set("dur", usOf(t.end - t.start, ghz));
        Value args = Value::object();
        args.set("bytes", t.bytes);
        args.set("cycles", t.end - t.start);
        event.set("args", std::move(args));
        events.push(std::move(event));
    }

    // CDP children overlap freely, so they go on an async track keyed
    // by grid id: "b" at enqueue, "e" at completion.
    for (const ChildSlice &c : timeline.children) {
        Value begin = Value::object();
        begin.set("name", c.name);
        begin.set("cat", "cdp");
        begin.set("ph", "b");
        begin.set("id", std::to_string(c.gridId));
        begin.set("pid", pidDevice);
        begin.set("tid", tidCdp);
        begin.set("ts", usOf(c.enqueuedAt, ghz));
        Value args = Value::object();
        args.set("grid", c.gridId);
        args.set("parent_core", c.parentCore);
        args.set("launch_overhead_cycles", c.readyAt - c.enqueuedAt);
        begin.set("args", std::move(args));
        events.push(std::move(begin));

        Value end = Value::object();
        end.set("name", c.name);
        end.set("cat", "cdp");
        end.set("ph", "e");
        end.set("id", std::to_string(c.gridId));
        end.set("pid", pidDevice);
        end.set("tid", tidCdp);
        end.set("ts",
                usOf(c.completed ? c.doneAt : c.readyAt, ghz));
        events.push(std::move(end));
    }

    for (const CtaEvent &e : timeline.ctas) {
        Value event = Value::object();
        event.set("name", std::string(e.dispatch ? "cta-dispatch"
                                                 : "cta-retire"));
        event.set("cat", "cta");
        event.set("ph", "i");
        event.set("s", "t");
        event.set("pid", pidDevice);
        event.set("tid", tidCtas);
        event.set("ts", usOf(e.at, ghz));
        Value args = Value::object();
        args.set("grid", e.gridId);
        args.set("core", e.core);
        if (e.dispatch)
            args.set("index", e.ctaIndex);
        event.set("args", std::move(args));
        events.push(std::move(event));
    }

    // Counter tracks. A counter event's value holds from its ts until
    // the next event on the same (pid, name), so one event per row at
    // the row's start renders the interval's value across its window.
    for (const IntervalRow &row : timeline.intervals) {
        const double ts = usOf(row.start, ghz);
        std::uint64_t l1_misses = 0;
        for (std::size_t s = 0; s < row.sm.size(); ++s) {
            const auto &cells = row.sm[s];
            // Columns (see smColumns()): 1 resident_warps,
            // 2 stalled_warps, 3 issue_cycles, 7 l1_misses.
            Value warps = Value::object();
            warps.set("active", cells[1] - cells[2]);
            warps.set("stalled", cells[2]);
            events.push(counterEvent(smTrackName(s) + " warps", pidSm,
                                     ts, std::move(warps)));
            Value issue = Value::object();
            issue.set("issued", cells[3]);
            events.push(counterEvent(smTrackName(s) + " issue", pidSm,
                                     ts, std::move(issue)));
            l1_misses += cells[7];
        }
        std::uint64_t l2_misses = 0, dram_served = 0, dram_busy = 0;
        for (const auto &cells : row.partitions) {
            // Columns (see partitionColumns()): 1 l2_misses,
            // 2 dram_served, 4 dram_pin_busy.
            l2_misses += cells[1];
            dram_served += cells[2];
            dram_busy += cells[4];
        }
        Value l1 = Value::object();
        l1.set("misses", l1_misses);
        events.push(counterEvent("L1 misses", pidMemory, ts,
                                 std::move(l1)));
        Value l2 = Value::object();
        l2.set("misses", l2_misses);
        events.push(counterEvent("L2 misses", pidMemory, ts,
                                 std::move(l2)));
        Value dram = Value::object();
        dram.set("served_lines", dram_served);
        dram.set("pin_busy_cycles", dram_busy);
        events.push(counterEvent("DRAM", pidMemory, ts,
                                 std::move(dram)));
        Value noc = Value::object();
        noc.set("flits", row.noc[1]);
        events.push(
            counterEvent("NoC flits", pidMemory, ts, std::move(noc)));
    }
    // Zero the counters after the last interval of each run so the
    // final value doesn't bleed to the end of the viewport.
    if (!timeline.intervals.empty()) {
        const double ts = usOf(timeline.endCycle, ghz);
        for (std::size_t s = 0; s < timeline.intervals.back().sm.size();
             ++s) {
            Value warps = Value::object();
            warps.set("active", 0);
            warps.set("stalled", 0);
            events.push(counterEvent(smTrackName(s) + " warps", pidSm,
                                     ts, std::move(warps)));
        }
    }

    Value doc = Value::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", "ms");
    Value other = Value::object();
    other.set("schema", timelineSchema);
    other.set("app", timeline.app);
    other.set("cdp", timeline.cdp);
    other.set("scale", timeline.scale);
    other.set("clock_ghz", timeline.coreClockGhz);
    doc.set("otherData", std::move(other));
    return doc;
}

} // namespace ggpu::profile
