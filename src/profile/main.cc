/**
 * @file
 * ggpu_profile — time-resolved profiler CLI. Runs one application (or
 * the whole suite) with the timing-observer seam attached and writes
 * per-run artifacts:
 *
 *   ggpu.timeline.v1 JSON  (TIMELINE_<label>.json; validated by
 *                           ggpu_metrics_tool validate)
 *   Chrome/Perfetto trace  (trace.json for a single run, otherwise
 *                           TRACE_<label>.json; open in
 *                           ui.perfetto.dev or chrome://tracing)
 *
 *   ggpu_profile [--app NAME] [--base|--cdp] [--scale TIER]
 *                [--seed N] [--threads N] [--interval CYCLES]
 *                [--ctas] [--format timeline|perfetto|both]
 *                [--out DIR]
 *
 * Default: every suite app, base and CDP variants, GGPU_SCALE tier,
 * both formats, current directory. App names match case-insensitively
 * ("--app sw" selects SW). Exit 0 on success, 1 when any run fails
 * functional verification, 2 on usage errors.
 */

#include <algorithm>
#include <cctype>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/log.hh"
#include "core/suite.hh"
#include "profile/perfetto.hh"
#include "profile/run_profile.hh"

namespace
{

int
usage()
{
    std::cerr
        << "usage: ggpu_profile [options]\n"
        << "  --app NAME      profile one app, case-insensitive\n"
        << "                  (default: whole suite)\n"
        << "  --base          only the non-CDP variant\n"
        << "  --cdp           only the CDP variant\n"
        << "  --scale TIER    tiny|small|medium (default: GGPU_SCALE)\n"
        << "  --seed N        input-generation seed\n"
        << "  --threads N     simulation-engine lanes "
           "(default: GGPU_THREADS)\n"
        << "  --interval N    cycles per counter sample "
           "(default 1000)\n"
        << "  --ctas          record per-CTA dispatch/retire events\n"
        << "  --format F      timeline|perfetto|both (default both)\n"
        << "  --out DIR       output directory (default .)\n";
    return 2;
}

std::optional<ggpu::kernels::InputScale>
parseScale(const std::string &name)
{
    if (name == "tiny")
        return ggpu::kernels::InputScale::Tiny;
    if (name == "small")
        return ggpu::kernels::InputScale::Small;
    if (name == "medium")
        return ggpu::kernels::InputScale::Medium;
    return std::nullopt;
}

std::string
lowered(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return char(std::tolower(c)); });
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    std::string app;
    std::string out_dir = ".";
    std::string format = "both";
    bool base_only = false;
    bool cdp_only = false;
    ggpu::profile::TimelineOptions topts =
        ggpu::profile::timelineOptionsFromEnv();
    ggpu::core::RunConfig config;
    config.options.scale = ggpu::core::scaleFromEnv();
    config.system.sim.threads = ggpu::core::threadsFromEnv();

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        const bool has_value = i + 1 < args.size();
        if (arg == "--app" && has_value) {
            app = args[++i];
        } else if (arg == "--base") {
            base_only = true;
        } else if (arg == "--cdp") {
            cdp_only = true;
        } else if (arg == "--scale" && has_value) {
            auto scale = parseScale(args[++i]);
            if (!scale) {
                std::cerr << "ggpu_profile: unknown scale '" << args[i]
                          << "'\n";
                return 2;
            }
            config.options.scale = *scale;
        } else if (arg == "--seed" && has_value) {
            config.options.seed = std::stoull(args[++i]);
        } else if (arg == "--threads" && has_value) {
            config.system.sim.threads = std::stoi(args[++i]);
        } else if (arg == "--interval" && has_value) {
            const long value = std::stol(args[++i]);
            if (value < 1) {
                std::cerr << "ggpu_profile: --interval must be >= 1\n";
                return 2;
            }
            topts.intervalCycles = ggpu::Cycles(value);
        } else if (arg == "--ctas") {
            topts.recordCtas = true;
        } else if (arg == "--format" && has_value) {
            format = args[++i];
            if (format != "timeline" && format != "perfetto" &&
                format != "both") {
                std::cerr << "ggpu_profile: unknown format '" << format
                          << "'\n";
                return 2;
            }
        } else if (arg == "--out" && has_value) {
            out_dir = args[++i];
        } else {
            return usage();
        }
    }
    if (base_only && cdp_only)
        return usage();

    std::vector<std::string> apps;
    if (app.empty()) {
        apps = ggpu::core::appNames();
    } else {
        const auto &known = ggpu::core::appNames();
        const std::string wanted = lowered(app);
        for (const auto &name : known)
            if (lowered(name) == wanted)
                apps.push_back(name);
        if (apps.empty()) {
            std::cerr << "ggpu_profile: unknown app '" << app << "'\n";
            return 2;
        }
    }

    std::string dir = out_dir;
    if (!dir.empty() && dir.back() != '/')
        dir += '/';

    std::size_t runs = 0;
    for (const auto &name : apps)
        for (const bool cdp : {false, true})
            runs += std::size_t(!((cdp && base_only) ||
                                  (!cdp && cdp_only)));
    const bool single_run = runs == 1;

    bool all_verified = true;
    try {
        for (const auto &name : apps) {
            for (const bool cdp : {false, true}) {
                if ((cdp && base_only) || (!cdp && cdp_only))
                    continue;
                ggpu::core::RunConfig run_config = config;
                run_config.options.cdp = cdp;
                const ggpu::profile::ProfileRun run =
                    ggpu::profile::profileApp(name, run_config, topts);
                all_verified &= run.record.verified;

                const std::string label = run.record.label();
                std::vector<std::string> written;
                if (format != "perfetto") {
                    const std::string path =
                        dir +
                        ggpu::profile::timelineFileName(label);
                    ggpu::profile::writeJsonFile(
                        path, ggpu::profile::toJson(run.timeline));
                    written.push_back(path);
                }
                if (format != "timeline") {
                    const std::string path =
                        single_run ? dir + "trace.json"
                                   : dir + "TRACE_" + label + ".json";
                    ggpu::profile::writeJsonFile(
                        path,
                        ggpu::profile::toPerfettoTrace(run.timeline));
                    written.push_back(path);
                }

                std::cout << label << ": "
                          << run.timeline.kernels.size()
                          << " kernels, "
                          << run.timeline.children.size()
                          << " CDP children, "
                          << run.timeline.transfers.size()
                          << " transfers, "
                          << run.timeline.intervals.size()
                          << " intervals over " << run.timeline.endCycle
                          << " cycles";
                if (!run.record.verified)
                    std::cout << "; NOT FUNCTIONALLY VERIFIED";
                std::cout << "\n";
                for (const auto &path : written)
                    std::cout << "  wrote " << path << "\n";
            }
        }
    } catch (const std::exception &e) {
        std::cerr << "ggpu_profile: " << e.what() << "\n";
        return 1;
    }
    std::cout.flush();
    return all_verified ? 0 : 1;
}
