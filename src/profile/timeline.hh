/**
 * @file
 * Time-resolved profiling timeline: the data model filled by a
 * TimelineRecorder attached to the sim's timing-observer seam
 * (sim/profile_hooks), its `ggpu.timeline.v1` JSON rendering, and the
 * schema validator shared by ggpu_metrics_tool and the tests.
 *
 * A timeline holds two kinds of data:
 *  - discrete slices/events: kernel launches, PCIe transfers, CDP
 *    child grids (enqueue -> ready -> first dispatch -> completion)
 *    and, optionally, per-CTA dispatch/retire points;
 *  - interval rows: per-SM / per-partition / NoC counter *deltas*
 *    over [start, end) windows of a configurable cycle width, plus
 *    instantaneous warp-occupancy numbers sampled at the row's end.
 * Rows tile each kernel exactly: a baseline sample at launch and a
 * forced sample at retire bound the first and last windows.
 */

#ifndef GGPU_PROFILE_TIMELINE_HH
#define GGPU_PROFILE_TIMELINE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "core/json.hh"
#include "sim/profile_hooks.hh"

namespace ggpu::profile
{

/** Schema tag of the timeline artifact (bumped deliberately). */
inline constexpr const char *timelineSchema = "ggpu.timeline.v1";

/** Recorder knobs. */
struct TimelineOptions
{
    Cycles intervalCycles = 1000;  //!< Counter-sampling window
    bool recordCtas = false;       //!< Per-CTA dispatch/retire events
};

/** One traced kernel launch, start to drain. */
struct KernelSlice
{
    std::string name;
    std::uint64_t gridId = 0;
    Cycles start = 0;
    Cycles end = 0;
    std::uint64_t ctas = 0;
    std::uint64_t childGrids = 0;
};

/** One H2D/D2H transfer occupying device time [start, end). */
struct TransferSlice
{
    bool h2d = true;
    std::uint64_t bytes = 0;
    Cycles start = 0;
    Cycles end = 0;
};

/** One CDP child grid's lifetime. */
struct ChildSlice
{
    std::string name;
    std::uint64_t gridId = 0;
    int parentCore = -1;
    Cycles enqueuedAt = 0;       //!< postChildLaunch reached the queue
    Cycles readyAt = 0;          //!< Dispatchable (launch overhead paid)
    Cycles firstDispatchAt = 0;  //!< First CTA placed on an SM
    Cycles doneAt = 0;           //!< Last CTA completed
    bool dispatched = false;
    bool completed = false;
};

/** One CTA dispatch or retire point (recorded when recordCtas). */
struct CtaEvent
{
    std::uint64_t gridId = 0;
    std::uint64_t ctaIndex = 0;  //!< Meaningful for dispatch only
    int core = -1;
    Cycles at = 0;
    bool dispatch = true;        //!< false = retire
};

/** Per-interval counter deltas; row layouts follow the column lists. */
struct IntervalRow
{
    Cycles start = 0;
    Cycles end = 0;
    /** One row per SM, columns as smColumns(). */
    std::vector<std::vector<std::uint64_t>> sm;
    /** One row per memory partition, columns as partitionColumns(). */
    std::vector<std::vector<std::uint64_t>> partitions;
    /** Columns as nocColumns(). */
    std::vector<std::uint64_t> noc;
};

/** A fully recorded run, ready for export. */
struct Timeline
{
    // Context (filled by the run driver, not the recorder).
    std::string app;
    bool cdp = false;
    std::string scale;
    std::uint64_t seed = 0;
    Cycles intervalCycles = 0;
    int numCores = 0;
    int numPartitions = 0;
    std::uint32_t lineBytes = 0;
    double coreClockGhz = 0.0;

    Cycles endCycle = 0;  //!< Last recorded device cycle
    std::vector<KernelSlice> kernels;
    std::vector<TransferSlice> transfers;
    std::vector<ChildSlice> children;
    std::vector<CtaEvent> ctas;
    std::vector<IntervalRow> intervals;
};

/** Column legends of the interval matrices. The first three SM
 *  columns are instantaneous values at the row's end; every other
 *  column is the counter's delta over the row's window. */
const std::vector<std::string> &smColumns();
const std::vector<std::string> &partitionColumns();
const std::vector<std::string> &nocColumns();

/** Render @p timeline as a ggpu.timeline.v1 document. */
core::json::Value toJson(const Timeline &timeline);

/** Check a parsed artifact against the ggpu.timeline.v1 contract;
 *  throws FatalError naming @p label and the defect. */
void validateTimeline(const std::string &label,
                      const core::json::Value &doc);

/**
 * The TimingObserver that fills a Timeline. Attach around a timed run
 * with sim::ScopedTimingObserver; afterwards fill the context fields
 * and export. The recorder converts cumulative counter samples into
 * per-interval deltas and drops zero-length windows.
 */
class TimelineRecorder : public sim::TimingObserver
{
  public:
    explicit TimelineRecorder(TimelineOptions options = {});

    Timeline &timeline() { return timeline_; }
    const Timeline &timeline() const { return timeline_; }
    const TimelineOptions &options() const { return options_; }

    // ---- sim::TimingObserver -------------------------------------
    Cycles sampleInterval() const override;
    void onKernelBegin(const sim::LaunchSpec &spec,
                       std::uint64_t grid_id, Cycles now) override;
    void onKernelEnd(std::uint64_t grid_id, Cycles now,
                     std::uint64_t ctas,
                     std::uint64_t child_grids) override;
    void onSample(const sim::IntervalSample &sample) override;
    void onChildEnqueued(const sim::LaunchSpec &spec,
                         std::uint64_t grid_id, int parent_core,
                         Cycles now, Cycles ready_at) override;
    void onChildDispatchBegin(std::uint64_t grid_id,
                              Cycles now) override;
    void onChildDone(std::uint64_t grid_id, Cycles now) override;
    void onCtaDispatch(std::uint64_t grid_id, std::uint64_t cta_index,
                       int core, Cycles now) override;
    void onCtaRetire(std::uint64_t grid_id, int core,
                     Cycles now) override;
    void onTransfer(bool h2d, std::uint64_t bytes, Cycles start,
                    Cycles end) override;

  private:
    void noteCycle(Cycles at);

    TimelineOptions options_;
    Timeline timeline_;
    sim::IntervalSample prev_;
    bool havePrev_ = false;
    std::unordered_map<std::uint64_t, std::size_t> kernelIndex_;
    std::unordered_map<std::uint64_t, std::size_t> childIndex_;
};

} // namespace ggpu::profile

#endif // GGPU_PROFILE_TIMELINE_HH
