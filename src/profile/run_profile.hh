/**
 * @file
 * Profiled-run orchestration: run one application through the
 * emit-once/time-many pipeline with a TimelineRecorder attached to
 * the timing replay, fill the timeline's context fields, and write
 * the artifacts. Used by the ggpu_profile CLI and by the bench
 * harness's GGPU_TIMELINE hook.
 */

#ifndef GGPU_PROFILE_RUN_PROFILE_HH
#define GGPU_PROFILE_RUN_PROFILE_HH

#include <string>

#include "core/suite.hh"
#include "profile/timeline.hh"

namespace ggpu::profile
{

/** One profiled run: the timeline plus the ordinary RunRecord the
 *  same replay produced (identical to an unprofiled run's record). */
struct ProfileRun
{
    Timeline timeline;
    core::RunRecord record;
};

/** Recorder knobs from the environment: GGPU_TIMELINE_INTERVAL
 *  (cycles per sampling window, default 1000) and GGPU_TIMELINE_CTAS
 *  (=1 records per-CTA dispatch/retire events). */
TimelineOptions timelineOptionsFromEnv();

/**
 * Emit (and CPU-verify) @p app's trace, then time it under
 * @p config.system with a TimelineRecorder attached. The returned
 * timeline has all context fields filled.
 */
ProfileRun profileApp(const std::string &app,
                      const core::RunConfig &config,
                      const TimelineOptions &options);

/** Copy run context (app/scale/geometry/clock) into @p timeline. */
void fillTimelineContext(Timeline &timeline, const std::string &app,
                         const core::RunConfig &config,
                         const TimelineOptions &options);

/** "TIMELINE_<tag>.json" with non-filename characters sanitized. */
std::string timelineFileName(const std::string &tag);

/** Serialize @p doc to @p path (fatal on IO failure). */
void writeJsonFile(const std::string &path,
                   const core::json::Value &doc);

} // namespace ggpu::profile

#endif // GGPU_PROFILE_RUN_PROFILE_HH
