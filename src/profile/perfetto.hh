/**
 * @file
 * Chrome Trace Event export of a profiling Timeline, loadable by
 * Perfetto (ui.perfetto.dev) and chrome://tracing: complete slices
 * for kernels and PCIe transfers, async begin/end pairs for CDP child
 * grids (they overlap freely), instants for CTA events, per-SM warp
 * and issue counter tracks, and aggregate memory/NoC counters.
 */

#ifndef GGPU_PROFILE_PERFETTO_HH
#define GGPU_PROFILE_PERFETTO_HH

#include "core/json.hh"
#include "profile/timeline.hh"

namespace ggpu::profile
{

/** Render @p timeline as a Chrome Trace Event document. Timestamps
 *  are microseconds of device time at the timeline's core clock. */
core::json::Value toPerfettoTrace(const Timeline &timeline);

} // namespace ggpu::profile

#endif // GGPU_PROFILE_PERFETTO_HH
