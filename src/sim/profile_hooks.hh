/**
 * @file
 * Timing-observer seam for the time-resolved profiler (ggpu::profile).
 * The kernel checker observes the *emission* path (sim/check_hooks);
 * this seam is its twin on the *timing* path: when an observer is
 * installed (thread-local; the cycle loop runs on one thread — SM
 * ticks on worker lanes never touch these hooks), the Gpu reports
 * discrete timing events (kernel launch/retire, CDP child enqueue /
 * first dispatch / completion, CTA dispatch/retire, PCIe transfers)
 * and periodic counter samples at a configurable cycle interval. With
 * no observer installed every hook reduces to one thread-local null
 * check, and timing results are byte-identical to an unprofiled run
 * (enforced by a differential test).
 */

#ifndef GGPU_SIM_PROFILE_HOOKS_HH
#define GGPU_SIM_PROFILE_HOOKS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/stall.hh"

namespace ggpu::sim
{

struct LaunchSpec;

/** One SM's counters at a sample point. Cycle/access counters are
 *  cumulative since the launch began (the Gpu resets per-SM stats at
 *  every harvest); warp/CTA counts are instantaneous. */
struct SmSample
{
    std::uint32_t residentCtas = 0;
    std::uint32_t residentWarps = 0;  //!< Valid, unfinished warp slots
    std::uint32_t stalledWarps = 0;   //!< Resident but not issuable now
    std::uint64_t issueCycles = 0;
    std::uint64_t activeCycles = 0;
    std::uint64_t insns = 0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Misses = 0;
    std::array<std::uint64_t, std::size_t(StallReason::NumReasons)>
        stalls{};
};

/** One memory partition's counters at a sample point (cumulative
 *  since the launch began). */
struct PartitionSample
{
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t dramServed = 0;
    std::uint64_t dramRowHits = 0;
    std::uint64_t dramPinBusy = 0;
    std::uint64_t dramActive = 0;
};

/** Whole-device counter snapshot taken at cycle @ref at. */
struct IntervalSample
{
    Cycles at = 0;
    std::vector<SmSample> sms;
    std::vector<PartitionSample> partitions;
    std::uint64_t nocPackets = 0;
    std::uint64_t nocFlits = 0;
    std::uint64_t nocLatencySum = 0;
};

/** Interface the profiler implements; default callbacks do nothing. */
class TimingObserver
{
  public:
    virtual ~TimingObserver() = default;

    /** Cycles between counter samples (clamped to >= 1 by the Gpu). */
    virtual Cycles sampleInterval() const { return 1000; }

    /** A traced kernel launch is starting. A baseline sample follows
     *  immediately so the first interval's deltas start from zero. */
    virtual void
    onKernelBegin(const LaunchSpec &spec, std::uint64_t grid_id,
                  Cycles now)
    {
        (void)spec;
        (void)grid_id;
        (void)now;
    }

    /** The launch begun with @p grid_id drained (a final sample was
     *  just delivered, so intervals tile the kernel exactly). */
    virtual void
    onKernelEnd(std::uint64_t grid_id, Cycles now, std::uint64_t ctas,
                std::uint64_t child_grids)
    {
        (void)grid_id;
        (void)now;
        (void)ctas;
        (void)child_grids;
    }

    /** Periodic counter snapshot (also at kernel begin/end). */
    virtual void onSample(const IntervalSample &sample) { (void)sample; }

    /** A CDP child grid was queued; dispatchable from @p ready_at. */
    virtual void
    onChildEnqueued(const LaunchSpec &spec, std::uint64_t grid_id,
                    int parent_core, Cycles now, Cycles ready_at)
    {
        (void)spec;
        (void)grid_id;
        (void)parent_core;
        (void)now;
        (void)ready_at;
    }

    /** A CDP child grid placed its first CTA on an SM. */
    virtual void
    onChildDispatchBegin(std::uint64_t grid_id, Cycles now)
    {
        (void)grid_id;
        (void)now;
    }

    /** A CDP child grid's last CTA completed. */
    virtual void onChildDone(std::uint64_t grid_id, Cycles now)
    {
        (void)grid_id;
        (void)now;
    }

    /** CTA @p cta_index of grid @p grid_id was placed on @p core. */
    virtual void
    onCtaDispatch(std::uint64_t grid_id, std::uint64_t cta_index,
                  int core, Cycles now)
    {
        (void)grid_id;
        (void)cta_index;
        (void)core;
        (void)now;
    }

    /** A CTA of grid @p grid_id drained from @p core. */
    virtual void
    onCtaRetire(std::uint64_t grid_id, int core, Cycles now)
    {
        (void)grid_id;
        (void)core;
        (void)now;
    }

    /** A PCIe transfer occupied device time [@p start, @p end). */
    virtual void
    onTransfer(bool h2d, std::uint64_t bytes, Cycles start, Cycles end)
    {
        (void)h2d;
        (void)bytes;
        (void)start;
        (void)end;
    }
};

/** The observer installed on this thread, or nullptr (the default). */
TimingObserver *timingObserver();

/** Install @p observer on this thread for the current scope. */
class ScopedTimingObserver
{
  public:
    explicit ScopedTimingObserver(TimingObserver *observer);
    ~ScopedTimingObserver();

    ScopedTimingObserver(const ScopedTimingObserver &) = delete;
    ScopedTimingObserver &operator=(const ScopedTimingObserver &) = delete;

  private:
    TimingObserver *previous_;
};

} // namespace ggpu::sim

#endif // GGPU_SIM_PROFILE_HOOKS_HH
