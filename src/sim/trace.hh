/**
 * @file
 * Trace containers and kernel-launch descriptors. A kernel launch is a
 * LaunchSpec (grid/CTA dims, resource usage, kernel body); emission
 * lowers each CTA into a CtaTrace of per-warp instruction streams,
 * including eagerly emitted CDP child grids.
 */

#ifndef GGPU_SIM_TRACE_HH
#define GGPU_SIM_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "sim/isa.hh"

namespace ggpu::sim
{

class WarpCtx;

/** Static per-kernel resource declaration (drives occupancy, Fig 6). */
struct ResourceUsage
{
    std::uint32_t regsPerThread = 32;
    std::uint32_t smemPerCtaBytes = 0;
    std::uint32_t constBytes = 256;   //!< Constant-memory footprint
    bool usesShared() const { return smemPerCtaBytes != 0; }
};

/**
 * A kernel body. Emission calls runPhase() once per warp per phase;
 * phases are separated by implicit CTA-wide barriers, which is how
 * barrier-synchronized algorithms (wavefront DP) express themselves.
 */
class KernelBody
{
  public:
    virtual ~KernelBody() = default;

    /** Barrier-separated phase count for one CTA (default: no barriers). */
    virtual int numPhases(Dim3 cta_coord, Dim3 cta_dim) const;

    /** Emit (and functionally execute) one warp's slice of @p phase. */
    virtual void runPhase(WarpCtx &warp, int phase) = 0;
};

/** Everything needed to launch a kernel. */
struct LaunchSpec
{
    std::string name = "kernel";
    Dim3 grid;
    Dim3 cta;
    std::shared_ptr<KernelBody> body;
    ResourceUsage res;
    std::uint32_t numParams = 4;  //!< Parameter words read at warp start

    std::uint32_t warpsPerCta() const
    {
        return std::uint32_t((cta.count() + warpSize - 1) / warpSize);
    }
};

/**
 * Copy-on-write handle to one warp's instruction stream.
 *
 * Regular kernels emit byte-identical op streams for most of their
 * warps (the per-warp data differences live in WarpTrace::transactions
 * and in the functional memory image, not in the op sequence), so
 * TraceBundles used to hold thousands of duplicate TraceOp vectors.
 * An OpStream instead shares one canonical vector between identical
 * streams once intern() has run against the installed interner; the
 * read API mirrors the const surface of std::vector so replay and
 * test code is agnostic to the sharing.
 *
 * Mutation (push_back / mutableBack) copies a shared stream first, so
 * interned streams stay frozen. The use-count check is not atomic with
 * respect to concurrent writers; streams must only be built on one
 * thread, which matches emission (replay never mutates).
 */
class OpStream
{
  public:
    using const_iterator = std::vector<TraceOp>::const_iterator;

    std::size_t size() const { return ops_ ? ops_->size() : 0; }
    bool empty() const { return size() == 0; }
    const TraceOp &operator[](std::size_t i) const { return (*ops_)[i]; }
    const TraceOp &back() const { return ops_->back(); }
    const_iterator begin() const { return storage().begin(); }
    const_iterator end() const { return storage().end(); }

    void push_back(const TraceOp &op);
    /** Mutable tail op (run-length merge); stream must be non-empty. */
    TraceOp &mutableBack();

    /** Content equality, with an identity fast path for interned
     *  streams. */
    bool operator==(const OpStream &other) const;

    /** Whether this stream and @p other share one canonical vector. */
    bool sharedWith(const OpStream &other) const
    {
        return ops_ != nullptr && ops_ == other.ops_;
    }

    /** Replace the backing vector with the canonical copy held by the
     *  installed OpStreamInterner (no-op when none is installed). */
    void intern();

    /**
     * Identity of the backing vector (nullptr for an empty stream).
     * The trace serializer keys its stream table on this, so interned
     * sharing survives a round trip through the on-disk cache.
     */
    const std::vector<TraceOp> *backing() const { return ops_.get(); }

    /** Build a stream around an existing (possibly shared) vector —
     *  the deserializer's path to reconstructing interned sharing. */
    static OpStream fromShared(std::shared_ptr<std::vector<TraceOp>> ops);

  private:
    const std::vector<TraceOp> &storage() const;
    void ensureUnique();

    std::shared_ptr<std::vector<TraceOp>> ops_;
};

/**
 * Content-addressed pool of canonical op streams. One interner is
 * installed (thread-locally, via ScopedOpStreamInterner) around an
 * emission pass; OpStream::intern() folds duplicate streams onto the
 * pooled vector. Collisions fall back to deep equality, so pooling is
 * exact.
 */
class OpStreamInterner
{
  public:
    /** Return the pooled vector equal to @p ops (registering it as
     *  the canonical copy when it is the first of its content). */
    std::shared_ptr<std::vector<TraceOp>>
    canonical(const std::shared_ptr<std::vector<TraceOp>> &ops);

    std::uint64_t streamsSeen() const { return seen_; }
    std::uint64_t streamsShared() const { return shared_; }
    /** TraceOp entries eliminated by sharing. */
    std::uint64_t opsDeduped() const { return opsDeduped_; }

  private:
    std::unordered_map<std::uint64_t,
                       std::vector<std::shared_ptr<std::vector<TraceOp>>>>
        pool_;
    std::uint64_t seen_ = 0;
    std::uint64_t shared_ = 0;
    std::uint64_t opsDeduped_ = 0;
};

/** The interner installed on this thread (null when none). */
OpStreamInterner *opStreamInterner();

/** RAII installer mirroring the observer seams: installs @p interner
 *  as the thread's interner for the enclosing emission pass. */
class ScopedOpStreamInterner
{
  public:
    explicit ScopedOpStreamInterner(OpStreamInterner &interner);
    ~ScopedOpStreamInterner();

    ScopedOpStreamInterner(const ScopedOpStreamInterner &) = delete;
    ScopedOpStreamInterner &
    operator=(const ScopedOpStreamInterner &) = delete;

  private:
    OpStreamInterner *previous_;
};

/** Instruction stream of one warp plus its memory transactions. */
struct WarpTrace
{
    OpStream ops;
    std::vector<Addr> transactions;  //!< Coalesced line addresses

    /** Append @p op, merging with the previous op when identical
     *  (ALU-run compression). */
    void append(const TraceOp &op);
};

struct ChildGrid;

/** Emitted trace of one CTA: its warps and any CDP child grids. */
struct CtaTrace
{
    std::vector<WarpTrace> warps;
    std::vector<std::unique_ptr<ChildGrid>> children;
};

/**
 * A device-launched (CDP) grid. Children are emitted eagerly during
 * parent emission (functional order) but only become schedulable when
 * the parent's ChildLaunch op issues in the timing phase.
 */
struct ChildGrid
{
    LaunchSpec spec;
    std::vector<CtaTrace> ctas;
};

/**
 * Pre-emitted trace of one host kernel launch: every CTA of the grid
 * in linear order, each carrying its eagerly emitted CDP children.
 * The timing phase only reads it, so one KernelTrace can be replayed
 * under any number of timing configurations.
 */
struct KernelTrace
{
    LaunchSpec spec;
    std::vector<CtaTrace> ctas;
};

/** ChildGrid count of @p trace, recursing into nested CDP children. */
std::uint64_t countChildGrids(const CtaTrace &trace);
std::uint64_t countChildGrids(const KernelTrace &kernel);

/**
 * One recorded host-side device operation. The emission phase records
 * the command stream an application issued; the timing phase replays
 * it (transfers advance the PCI model, kernels replay their traces).
 */
struct TraceCommand
{
    enum class Kind : std::uint8_t
    {
        H2D,    //!< cudaMemcpy host-to-device (bytes)
        D2H,    //!< cudaMemcpy device-to-host (bytes)
        Kernel  //!< Kernel launch (index into TraceBundle::kernels)
    };
    Kind kind = Kind::Kernel;
    std::uint64_t bytes = 0;    //!< Transfer size (H2D/D2H)
    std::size_t kernel = 0;     //!< Index into kernels (Kernel)
};

/**
 * Immutable emit-once artifact of one application run: the recorded
 * host command stream, every launch's pre-emitted trace, and the
 * functional outcome (CPU-reference verdict) of the single emission
 * pass. A bundle never changes after emission; `timeTrace`-style
 * replay may consume it repeatedly, concurrently across sim.threads
 * lanes, and under any timing configuration that shares the bundle's
 * coalescing line size (WarpTrace::transactions are line-granular).
 */
struct TraceBundle
{
    std::string app;            //!< Table III abbreviation
    bool cdp = false;
    std::uint32_t lineBytes = 128;  //!< Coalescing granularity baked in

    std::vector<TraceCommand> commands;
    std::vector<KernelTrace> kernels;

    // Functional outcome of the emission pass.
    bool verified = false;
    std::string detail;
    double cpuReferenceSeconds = 0.0;
    LaunchSpec primarySpec;
};

} // namespace ggpu::sim

#endif // GGPU_SIM_TRACE_HH
