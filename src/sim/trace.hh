/**
 * @file
 * Trace containers and kernel-launch descriptors. A kernel launch is a
 * LaunchSpec (grid/CTA dims, resource usage, kernel body); emission
 * lowers each CTA into a CtaTrace of per-warp instruction streams,
 * including eagerly emitted CDP child grids.
 */

#ifndef GGPU_SIM_TRACE_HH
#define GGPU_SIM_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/isa.hh"

namespace ggpu::sim
{

class WarpCtx;

/** Static per-kernel resource declaration (drives occupancy, Fig 6). */
struct ResourceUsage
{
    std::uint32_t regsPerThread = 32;
    std::uint32_t smemPerCtaBytes = 0;
    std::uint32_t constBytes = 256;   //!< Constant-memory footprint
    bool usesShared() const { return smemPerCtaBytes != 0; }
};

/**
 * A kernel body. Emission calls runPhase() once per warp per phase;
 * phases are separated by implicit CTA-wide barriers, which is how
 * barrier-synchronized algorithms (wavefront DP) express themselves.
 */
class KernelBody
{
  public:
    virtual ~KernelBody() = default;

    /** Barrier-separated phase count for one CTA (default: no barriers). */
    virtual int numPhases(Dim3 cta_coord, Dim3 cta_dim) const;

    /** Emit (and functionally execute) one warp's slice of @p phase. */
    virtual void runPhase(WarpCtx &warp, int phase) = 0;
};

/** Everything needed to launch a kernel. */
struct LaunchSpec
{
    std::string name = "kernel";
    Dim3 grid;
    Dim3 cta;
    std::shared_ptr<KernelBody> body;
    ResourceUsage res;
    std::uint32_t numParams = 4;  //!< Parameter words read at warp start

    std::uint32_t warpsPerCta() const
    {
        return std::uint32_t((cta.count() + warpSize - 1) / warpSize);
    }
};

/** Instruction stream of one warp plus its memory transactions. */
struct WarpTrace
{
    std::vector<TraceOp> ops;
    std::vector<Addr> transactions;  //!< Coalesced line addresses

    /** Append @p op, merging with the previous op when identical
     *  (ALU-run compression). */
    void append(const TraceOp &op);
};

struct ChildGrid;

/** Emitted trace of one CTA: its warps and any CDP child grids. */
struct CtaTrace
{
    std::vector<WarpTrace> warps;
    std::vector<std::unique_ptr<ChildGrid>> children;
};

/**
 * A device-launched (CDP) grid. Children are emitted eagerly during
 * parent emission (functional order) but only become schedulable when
 * the parent's ChildLaunch op issues in the timing phase.
 */
struct ChildGrid
{
    LaunchSpec spec;
    std::vector<CtaTrace> ctas;
};

} // namespace ggpu::sim

#endif // GGPU_SIM_TRACE_HH
