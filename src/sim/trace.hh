/**
 * @file
 * Trace containers and kernel-launch descriptors. A kernel launch is a
 * LaunchSpec (grid/CTA dims, resource usage, kernel body); emission
 * lowers each CTA into a CtaTrace of per-warp instruction streams,
 * including eagerly emitted CDP child grids.
 */

#ifndef GGPU_SIM_TRACE_HH
#define GGPU_SIM_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/isa.hh"

namespace ggpu::sim
{

class WarpCtx;

/** Static per-kernel resource declaration (drives occupancy, Fig 6). */
struct ResourceUsage
{
    std::uint32_t regsPerThread = 32;
    std::uint32_t smemPerCtaBytes = 0;
    std::uint32_t constBytes = 256;   //!< Constant-memory footprint
    bool usesShared() const { return smemPerCtaBytes != 0; }
};

/**
 * A kernel body. Emission calls runPhase() once per warp per phase;
 * phases are separated by implicit CTA-wide barriers, which is how
 * barrier-synchronized algorithms (wavefront DP) express themselves.
 */
class KernelBody
{
  public:
    virtual ~KernelBody() = default;

    /** Barrier-separated phase count for one CTA (default: no barriers). */
    virtual int numPhases(Dim3 cta_coord, Dim3 cta_dim) const;

    /** Emit (and functionally execute) one warp's slice of @p phase. */
    virtual void runPhase(WarpCtx &warp, int phase) = 0;
};

/** Everything needed to launch a kernel. */
struct LaunchSpec
{
    std::string name = "kernel";
    Dim3 grid;
    Dim3 cta;
    std::shared_ptr<KernelBody> body;
    ResourceUsage res;
    std::uint32_t numParams = 4;  //!< Parameter words read at warp start

    std::uint32_t warpsPerCta() const
    {
        return std::uint32_t((cta.count() + warpSize - 1) / warpSize);
    }
};

/** Instruction stream of one warp plus its memory transactions. */
struct WarpTrace
{
    std::vector<TraceOp> ops;
    std::vector<Addr> transactions;  //!< Coalesced line addresses

    /** Append @p op, merging with the previous op when identical
     *  (ALU-run compression). */
    void append(const TraceOp &op);
};

struct ChildGrid;

/** Emitted trace of one CTA: its warps and any CDP child grids. */
struct CtaTrace
{
    std::vector<WarpTrace> warps;
    std::vector<std::unique_ptr<ChildGrid>> children;
};

/**
 * A device-launched (CDP) grid. Children are emitted eagerly during
 * parent emission (functional order) but only become schedulable when
 * the parent's ChildLaunch op issues in the timing phase.
 */
struct ChildGrid
{
    LaunchSpec spec;
    std::vector<CtaTrace> ctas;
};

/**
 * Pre-emitted trace of one host kernel launch: every CTA of the grid
 * in linear order, each carrying its eagerly emitted CDP children.
 * The timing phase only reads it, so one KernelTrace can be replayed
 * under any number of timing configurations.
 */
struct KernelTrace
{
    LaunchSpec spec;
    std::vector<CtaTrace> ctas;
};

/** ChildGrid count of @p trace, recursing into nested CDP children. */
std::uint64_t countChildGrids(const CtaTrace &trace);
std::uint64_t countChildGrids(const KernelTrace &kernel);

/**
 * One recorded host-side device operation. The emission phase records
 * the command stream an application issued; the timing phase replays
 * it (transfers advance the PCI model, kernels replay their traces).
 */
struct TraceCommand
{
    enum class Kind : std::uint8_t
    {
        H2D,    //!< cudaMemcpy host-to-device (bytes)
        D2H,    //!< cudaMemcpy device-to-host (bytes)
        Kernel  //!< Kernel launch (index into TraceBundle::kernels)
    };
    Kind kind = Kind::Kernel;
    std::uint64_t bytes = 0;    //!< Transfer size (H2D/D2H)
    std::size_t kernel = 0;     //!< Index into kernels (Kernel)
};

/**
 * Immutable emit-once artifact of one application run: the recorded
 * host command stream, every launch's pre-emitted trace, and the
 * functional outcome (CPU-reference verdict) of the single emission
 * pass. A bundle never changes after emission; `timeTrace`-style
 * replay may consume it repeatedly, concurrently across sim.threads
 * lanes, and under any timing configuration that shares the bundle's
 * coalescing line size (WarpTrace::transactions are line-granular).
 */
struct TraceBundle
{
    std::string app;            //!< Table III abbreviation
    bool cdp = false;
    std::uint32_t lineBytes = 128;  //!< Coalescing granularity baked in

    std::vector<TraceCommand> commands;
    std::vector<KernelTrace> kernels;

    // Functional outcome of the emission pass.
    bool verified = false;
    std::string detail;
    double cpuReferenceSeconds = 0.0;
    LaunchSpec primarySpec;
};

} // namespace ggpu::sim

#endif // GGPU_SIM_TRACE_HH
