/**
 * @file
 * Binary wire format for sim::TraceBundle — the unit the persistent
 * trace cache (core::TraceStore with GGPU_TRACE_CACHE) stores on disk
 * so emission and CPU verification happen once per cache key across
 * any number of processes.
 *
 * Layout: an 8-byte magic, the format version, the payload size and an
 * FNV-1a checksum of the payload, then the payload itself with every
 * integer written little-endian byte-by-byte (no struct dumps, so the
 * format is independent of compiler padding). Duplicate warp op
 * streams are written once through a stream table keyed on the
 * interner's canonical vectors, and loads reconstruct the same
 * sharing, so a cached bundle costs the same memory as a fresh one.
 *
 * KernelBody pointers are deliberately NOT serialized: a bundle is a
 * pre-emitted artifact and replay (`timeTrace`) never calls back into
 * kernel code. Loaded LaunchSpecs carry a null body.
 */

#ifndef GGPU_SIM_TRACE_SERIALIZE_HH
#define GGPU_SIM_TRACE_SERIALIZE_HH

#include <cstdint>
#include <string>

#include "sim/trace.hh"

namespace ggpu::sim
{

/**
 * Version of the on-disk trace wire format. Bump on ANY change to the
 * serialized layout or to trace semantics (TraceOp fields, emission
 * ordering, ...): the cache key incorporates it, so old entries become
 * unreachable instead of being misread.
 */
constexpr std::uint32_t traceWireVersion = 1;

/** Serialize @p bundle to its on-disk byte image (header + payload). */
std::string serializeBundle(const TraceBundle &bundle);

/**
 * Parse @p data into @p out. Returns false (leaving @p out
 * unspecified) when the image is truncated, corrupt (checksum or
 * structural mismatch), or carries a different wire version; @p error
 * receives a one-line reason. Never throws on malformed input.
 */
bool deserializeBundle(const std::string &data, TraceBundle &out,
                       std::string *error = nullptr);

/** FNV-1a 64-bit hash (the checksum/key hash used by the cache). */
std::uint64_t fnv1a64(const void *data, std::size_t bytes,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

} // namespace ggpu::sim

#endif // GGPU_SIM_TRACE_SERIALIZE_HH
