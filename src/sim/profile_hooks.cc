#include "sim/profile_hooks.hh"

namespace ggpu::sim
{

namespace
{

thread_local TimingObserver *currentTimingObserver = nullptr;

} // namespace

TimingObserver *
timingObserver()
{
    return currentTimingObserver;
}

ScopedTimingObserver::ScopedTimingObserver(TimingObserver *observer)
    : previous_(currentTimingObserver)
{
    currentTimingObserver = observer;
}

ScopedTimingObserver::~ScopedTimingObserver()
{
    currentTimingObserver = previous_;
}

} // namespace ggpu::sim
