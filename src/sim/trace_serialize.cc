#include "sim/trace_serialize.hh"

#include <bit>
#include <cstring>
#include <unordered_map>

namespace ggpu::sim
{

namespace
{

constexpr char kMagic[8] = {'G', 'G', 'P', 'U', 'T', 'R', 'B', '\0'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;

// ---- Writer --------------------------------------------------------

/** Appends little-endian fields to a byte buffer. Writing byte-wise
 *  keeps the image independent of host struct layout and padding. */
class Writer
{
  public:
    explicit Writer(std::string &out) : out_(out) {}

    void u8(std::uint8_t v) { out_.push_back(char(v)); }

    void u16(std::uint16_t v)
    {
        u8(std::uint8_t(v));
        u8(std::uint8_t(v >> 8));
    }

    void u32(std::uint32_t v)
    {
        u16(std::uint16_t(v));
        u16(std::uint16_t(v >> 16));
    }

    void u64(std::uint64_t v)
    {
        u32(std::uint32_t(v));
        u32(std::uint32_t(v >> 32));
    }

    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void str(const std::string &s)
    {
        u64(s.size());
        out_.append(s);
    }

  private:
    std::string &out_;
};

// ---- Reader --------------------------------------------------------

/** Bounds-checked little-endian reader. Every accessor reports failure
 *  through ok() instead of reading past the end, so corrupt or
 *  truncated images degrade to a clean reject. */
class Reader
{
  public:
    Reader(const char *data, std::size_t size) : data_(data), size_(size) {}

    bool ok() const { return ok_; }
    std::size_t remaining() const { return size_ - pos_; }

    std::uint8_t u8()
    {
        if (!need(1))
            return 0;
        return std::uint8_t(data_[pos_++]);
    }

    std::uint16_t u16()
    {
        std::uint16_t lo = u8();
        return std::uint16_t(lo | (std::uint16_t(u8()) << 8));
    }

    std::uint32_t u32()
    {
        std::uint32_t lo = u16();
        return lo | (std::uint32_t(u16()) << 16);
    }

    std::uint64_t u64()
    {
        std::uint64_t lo = u32();
        return lo | (std::uint64_t(u32()) << 32);
    }

    double f64() { return std::bit_cast<double>(u64()); }

    std::string str()
    {
        std::uint64_t len = u64();
        if (!need(len))
            return {};
        std::string s(data_ + pos_, std::size_t(len));
        pos_ += std::size_t(len);
        return s;
    }

    /** Element count for a sequence whose entries occupy at least
     *  @p minBytesEach — rejects counts the remaining bytes cannot
     *  possibly hold, so a corrupt length cannot trigger a huge
     *  allocation. */
    std::uint64_t count(std::size_t minBytesEach)
    {
        std::uint64_t n = u64();
        if (ok_ && minBytesEach != 0 && n > remaining() / minBytesEach)
            ok_ = false;
        return ok_ ? n : 0;
    }

  private:
    bool need(std::uint64_t bytes)
    {
        if (!ok_ || bytes > remaining())
            ok_ = false;
        return ok_;
    }

    const char *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

// ---- Payload encoding ----------------------------------------------

/** Table of canonical op-stream vectors, keyed on backing identity so
 *  streams interned together serialize as one table entry. */
class StreamTable
{
  public:
    explicit StreamTable(const TraceBundle &bundle)
    {
        for (const KernelTrace &kernel : bundle.kernels)
            for (const CtaTrace &cta : kernel.ctas)
                collect(cta);
    }

    /** 0 = empty stream; entry i is index i+1. */
    std::uint64_t indexOf(const OpStream &ops) const
    {
        if (ops.empty())
            return 0;
        return index_.at(ops.backing());
    }

    const std::vector<const std::vector<TraceOp> *> &entries() const
    {
        return entries_;
    }

  private:
    void collect(const CtaTrace &cta)
    {
        for (const WarpTrace &warp : cta.warps) {
            const std::vector<TraceOp> *backing = warp.ops.backing();
            if (backing == nullptr || backing->empty())
                continue;
            if (index_.emplace(backing, entries_.size() + 1).second)
                entries_.push_back(backing);
        }
        for (const auto &child : cta.children)
            for (const CtaTrace &child_cta : child->ctas)
                collect(child_cta);
    }

    std::unordered_map<const std::vector<TraceOp> *, std::uint64_t> index_;
    std::vector<const std::vector<TraceOp> *> entries_;
};

void
putOp(Writer &w, const TraceOp &op)
{
    w.u8(std::uint8_t(op.kind));
    w.u8(std::uint8_t(op.space));
    w.u16(op.repeat);
    w.u32(op.mask);
    w.u32(std::uint32_t(op.dep));
    w.u32(op.txBegin);
    w.u16(op.txCount);
    w.u16(op.bytesPerLane);
    w.u32(op.child);
}

void
putSpec(Writer &w, const LaunchSpec &spec)
{
    w.str(spec.name);
    w.u32(spec.grid.x);
    w.u32(spec.grid.y);
    w.u32(spec.grid.z);
    w.u32(spec.cta.x);
    w.u32(spec.cta.y);
    w.u32(spec.cta.z);
    w.u32(spec.res.regsPerThread);
    w.u32(spec.res.smemPerCtaBytes);
    w.u32(spec.res.constBytes);
    w.u32(spec.numParams);
    // spec.body intentionally omitted: replay never calls kernel code.
}

void putCta(Writer &w, const CtaTrace &cta, const StreamTable &streams);

void
putChild(Writer &w, const ChildGrid &child, const StreamTable &streams)
{
    putSpec(w, child.spec);
    w.u64(child.ctas.size());
    for (const CtaTrace &cta : child.ctas)
        putCta(w, cta, streams);
}

void
putCta(Writer &w, const CtaTrace &cta, const StreamTable &streams)
{
    w.u64(cta.warps.size());
    for (const WarpTrace &warp : cta.warps) {
        w.u64(streams.indexOf(warp.ops));
        w.u64(warp.transactions.size());
        for (Addr addr : warp.transactions)
            w.u64(addr);
    }
    w.u64(cta.children.size());
    for (const auto &child : cta.children)
        putChild(w, *child, streams);
}

// ---- Payload decoding ----------------------------------------------

using StreamPool = std::vector<std::shared_ptr<std::vector<TraceOp>>>;

TraceOp
getOp(Reader &r)
{
    TraceOp op;
    op.kind = OpKind(r.u8());
    op.space = MemSpace(r.u8());
    op.repeat = r.u16();
    op.mask = r.u32();
    op.dep = std::int32_t(r.u32());
    op.txBegin = r.u32();
    op.txCount = r.u16();
    op.bytesPerLane = r.u16();
    op.child = r.u32();
    return op;
}

LaunchSpec
getSpec(Reader &r)
{
    LaunchSpec spec;
    spec.name = r.str();
    spec.grid.x = r.u32();
    spec.grid.y = r.u32();
    spec.grid.z = r.u32();
    spec.cta.x = r.u32();
    spec.cta.y = r.u32();
    spec.cta.z = r.u32();
    spec.res.regsPerThread = r.u32();
    spec.res.smemPerCtaBytes = r.u32();
    spec.res.constBytes = r.u32();
    spec.numParams = r.u32();
    return spec;
}

bool getCta(Reader &r, CtaTrace &cta, const StreamPool &pool);

bool
getChild(Reader &r, ChildGrid &child, const StreamPool &pool)
{
    child.spec = getSpec(r);
    std::uint64_t ctas = r.count(8);
    child.ctas.resize(std::size_t(ctas));
    for (CtaTrace &cta : child.ctas)
        if (!getCta(r, cta, pool))
            return false;
    return r.ok();
}

bool
getCta(Reader &r, CtaTrace &cta, const StreamPool &pool)
{
    std::uint64_t warps = r.count(16);
    cta.warps.resize(std::size_t(warps));
    for (WarpTrace &warp : cta.warps) {
        std::uint64_t stream = r.u64();
        if (stream > pool.size()) {
            return false;
        } else if (stream != 0) {
            warp.ops = OpStream::fromShared(pool[std::size_t(stream - 1)]);
        }
        std::uint64_t txs = r.count(8);
        warp.transactions.resize(std::size_t(txs));
        for (Addr &addr : warp.transactions)
            addr = r.u64();
    }
    std::uint64_t children = r.count(8);
    cta.children.resize(std::size_t(children));
    for (auto &child : cta.children) {
        child = std::make_unique<ChildGrid>();
        if (!getChild(r, *child, pool))
            return false;
    }
    return r.ok();
}

bool
fail(std::string *error, const char *reason)
{
    if (error != nullptr)
        *error = reason;
    return false;
}

} // namespace

std::uint64_t
fnv1a64(const void *data, std::size_t bytes, std::uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
serializeBundle(const TraceBundle &bundle)
{
    std::string payload;
    Writer w(payload);

    w.str(bundle.app);
    w.u8(bundle.cdp ? 1 : 0);
    w.u32(bundle.lineBytes);
    w.u8(bundle.verified ? 1 : 0);
    w.str(bundle.detail);
    w.f64(bundle.cpuReferenceSeconds);
    putSpec(w, bundle.primarySpec);

    w.u64(bundle.commands.size());
    for (const TraceCommand &cmd : bundle.commands) {
        w.u8(std::uint8_t(cmd.kind));
        w.u64(cmd.bytes);
        w.u64(cmd.kernel);
    }

    StreamTable streams(bundle);
    w.u64(streams.entries().size());
    for (const std::vector<TraceOp> *entry : streams.entries()) {
        w.u64(entry->size());
        for (const TraceOp &op : *entry)
            putOp(w, op);
    }

    w.u64(bundle.kernels.size());
    for (const KernelTrace &kernel : bundle.kernels) {
        putSpec(w, kernel.spec);
        w.u64(kernel.ctas.size());
        for (const CtaTrace &cta : kernel.ctas)
            putCta(w, cta, streams);
    }

    std::string image;
    image.reserve(kHeaderBytes + payload.size());
    image.append(kMagic, sizeof(kMagic));
    Writer header(image);
    header.u32(traceWireVersion);
    header.u64(payload.size());
    header.u64(fnv1a64(payload.data(), payload.size()));
    image.append(payload);
    return image;
}

bool
deserializeBundle(const std::string &data, TraceBundle &out,
                  std::string *error)
{
    if (data.size() < kHeaderBytes)
        return fail(error, "truncated header");
    if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0)
        return fail(error, "bad magic");

    Reader header(data.data() + sizeof(kMagic),
                  kHeaderBytes - sizeof(kMagic));
    std::uint32_t version = header.u32();
    std::uint64_t payload_size = header.u64();
    std::uint64_t checksum = header.u64();
    if (version != traceWireVersion)
        return fail(error, "wire version mismatch");
    if (payload_size != data.size() - kHeaderBytes)
        return fail(error, "payload size mismatch");

    const char *payload = data.data() + kHeaderBytes;
    if (fnv1a64(payload, std::size_t(payload_size)) != checksum)
        return fail(error, "checksum mismatch");

    Reader r(payload, std::size_t(payload_size));
    TraceBundle bundle;
    bundle.app = r.str();
    bundle.cdp = r.u8() != 0;
    bundle.lineBytes = r.u32();
    bundle.verified = r.u8() != 0;
    bundle.detail = r.str();
    bundle.cpuReferenceSeconds = r.f64();
    bundle.primarySpec = getSpec(r);

    std::uint64_t commands = r.count(17);
    bundle.commands.resize(std::size_t(commands));
    for (TraceCommand &cmd : bundle.commands) {
        cmd.kind = TraceCommand::Kind(r.u8());
        cmd.bytes = r.u64();
        cmd.kernel = std::size_t(r.u64());
    }

    StreamPool pool;
    std::uint64_t stream_entries = r.count(8);
    pool.reserve(std::size_t(stream_entries));
    for (std::uint64_t i = 0; i < stream_entries && r.ok(); ++i) {
        std::uint64_t ops = r.count(22);
        auto vec = std::make_shared<std::vector<TraceOp>>();
        vec->resize(std::size_t(ops));
        for (TraceOp &op : *vec)
            op = getOp(r);
        pool.push_back(std::move(vec));
    }

    std::uint64_t kernels = r.count(8);
    bundle.kernels.resize(std::size_t(kernels));
    for (KernelTrace &kernel : bundle.kernels) {
        kernel.spec = getSpec(r);
        std::uint64_t ctas = r.count(8);
        kernel.ctas.resize(std::size_t(ctas));
        for (CtaTrace &cta : kernel.ctas)
            if (!getCta(r, cta, pool))
                return fail(error, "corrupt trace structure");
    }

    if (!r.ok())
        return fail(error, "corrupt trace structure");
    if (r.remaining() != 0)
        return fail(error, "trailing bytes after payload");

    out = std::move(bundle);
    return true;
}

} // namespace ggpu::sim
