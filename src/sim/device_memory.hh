/**
 * @file
 * Functional backing store for the simulated device's global address
 * space. A bump allocator hands out buffer base addresses; typed
 * helpers let the emission phase and the runtime read/write real data
 * so every kernel is functionally checkable against its CPU reference.
 */

#ifndef GGPU_SIM_DEVICE_MEMORY_HH
#define GGPU_SIM_DEVICE_MEMORY_HH

#include <cstring>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace ggpu::sim
{

/** Flat functional device memory with bump allocation. */
class DeviceMemory
{
  public:
    /** Base of the per-thread local-memory window (not backed). */
    static constexpr Addr localRegionBase = Addr(1) << 40;

    explicit DeviceMemory(std::size_t capacity_bytes = 256u << 20)
        : capacity_(capacity_bytes)
    {
    }

    /** Allocate @p bytes, aligned to @p align (power of two). */
    Addr
    alloc(std::size_t bytes, std::size_t align = 256)
    {
        Addr base = (next_ + align - 1) & ~Addr(align - 1);
        if (base + bytes > capacity_)
            fatal("DeviceMemory: out of device memory (",
                  base + bytes, " > ", capacity_, " bytes)");
        next_ = base + bytes;
        if (data_.size() < next_)
            data_.resize(next_);
        return base;
    }

    /** Release everything (bump allocator reset between app runs). */
    void
    reset()
    {
        next_ = 4096;
        data_.clear();
    }

    std::size_t allocated() const { return next_; }

    void
    write(Addr addr, const void *src, std::size_t bytes)
    {
        check(addr, bytes);
        std::memcpy(data_.data() + addr, src, bytes);
    }

    void
    read(Addr addr, void *dst, std::size_t bytes) const
    {
        check(addr, bytes);
        std::memcpy(dst, data_.data() + addr, bytes);
    }

    template <typename T>
    T
    load(Addr addr) const
    {
        T value;
        read(addr, &value, sizeof(T));
        return value;
    }

    template <typename T>
    void
    store(Addr addr, const T &value)
    {
        write(addr, &value, sizeof(T));
    }

  private:
    void
    check(Addr addr, std::size_t bytes) const
    {
        if (addr < 4096)
            panic("DeviceMemory: null-page access at ", addr);
        if (addr + bytes > data_.size())
            panic("DeviceMemory: out-of-bounds access at ", addr,
                  " + ", bytes, " (allocated ", next_, ")");
    }

    std::size_t capacity_;
    Addr next_ = 4096;
    std::vector<std::uint8_t> data_;
};

} // namespace ggpu::sim

#endif // GGPU_SIM_DEVICE_MEMORY_HH
