/**
 * @file
 * Functional backing store for the simulated device's global address
 * space. A bump allocator hands out buffer base addresses; typed
 * helpers let the emission phase and the runtime read/write real data
 * so every kernel is functionally checkable against its CPU reference.
 */

#ifndef GGPU_SIM_DEVICE_MEMORY_HH
#define GGPU_SIM_DEVICE_MEMORY_HH

#include <cstring>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace ggpu::sim
{

/** Flat functional device memory with bump allocation. */
class DeviceMemory
{
  public:
    /** Base of the per-thread local-memory window (not backed). */
    static constexpr Addr localRegionBase = Addr(1) << 40;

    /**
     * One recorded buffer. The bump allocator never reuses address
     * space, so freed allocations stay in the table (live = false) and
     * the checker can attribute a use-after-free to the exact buffer.
     */
    struct Allocation
    {
        Addr base = 0;
        std::uint64_t bytes = 0;
        std::uint64_t serial = 0;  //!< Allocation order (0-based)
        bool live = true;

        bool
        contains(Addr addr) const
        {
            return addr >= base && addr < base + bytes;
        }
    };

    explicit DeviceMemory(std::size_t capacity_bytes = 256u << 20)
        : capacity_(capacity_bytes)
    {
    }

    /** Allocate @p bytes, aligned to @p align (power of two). */
    Addr
    alloc(std::size_t bytes, std::size_t align = 256)
    {
        Addr base = (next_ + align - 1) & ~Addr(align - 1);
        if (base + bytes > capacity_)
            fatal("DeviceMemory: out of device memory (",
                  base + bytes, " > ", capacity_, " bytes)");
        next_ = base + bytes;
        if (data_.size() < next_)
            data_.resize(next_);
        allocs_.push_back({base, bytes, allocs_.size(), true});
        return base;
    }

    /**
     * cudaFree equivalent: mark the allocation starting at @p base
     * dead. The backing bytes stay mapped (the bump allocator never
     * reuses them), so stray functional accesses still read stale data
     * rather than crashing — the checker reports them instead.
     */
    void
    free(Addr base)
    {
        for (auto it = allocs_.rbegin(); it != allocs_.rend(); ++it) {
            if (it->base != base)
                continue;
            if (!it->live)
                panic("DeviceMemory: double free of allocation #",
                      it->serial, " at ", base);
            it->live = false;
            return;
        }
        panic("DeviceMemory: free(", base,
              ") does not match any allocation base");
    }

    /** Every allocation ever made, in ascending base order. */
    const std::vector<Allocation> &allocations() const
    {
        return allocs_;
    }

    /** Release everything (bump allocator reset between app runs). */
    void
    reset()
    {
        next_ = 4096;
        data_.clear();
        allocs_.clear();
    }

    std::size_t allocated() const { return next_; }

    void
    write(Addr addr, const void *src, std::size_t bytes)
    {
        check(addr, bytes);
        std::memcpy(data_.data() + addr, src, bytes);
    }

    void
    read(Addr addr, void *dst, std::size_t bytes) const
    {
        check(addr, bytes);
        std::memcpy(dst, data_.data() + addr, bytes);
    }

    template <typename T>
    T
    load(Addr addr) const
    {
        T value;
        read(addr, &value, sizeof(T));
        return value;
    }

    template <typename T>
    void
    store(Addr addr, const T &value)
    {
        write(addr, &value, sizeof(T));
    }

  private:
    void
    check(Addr addr, std::size_t bytes) const
    {
        if (addr < 4096)
            panic("DeviceMemory: null-page access at ", addr);
        if (addr + bytes > data_.size())
            panic("DeviceMemory: out-of-bounds access at ", addr,
                  " + ", bytes, " (allocated ", next_, ")");
    }

    std::size_t capacity_;
    Addr next_ = 4096;
    std::vector<std::uint8_t> data_;
    std::vector<Allocation> allocs_;
};

} // namespace ggpu::sim

#endif // GGPU_SIM_DEVICE_MEMORY_HH
