#include "sim/scheduler.hh"

#include <bit>

#include "common/log.hh"
#include "sim/stall.hh"

namespace ggpu::sim
{

std::string
toString(StallReason reason)
{
    switch (reason) {
      case StallReason::None: return "issued";
      case StallReason::MemLatency: return "mem-latency";
      case StallReason::ControlHazard: return "control-hazard";
      case StallReason::Sync: return "synchronization";
      case StallReason::DataHazard: return "data-hazard";
      case StallReason::Structural: return "structural";
      case StallReason::FunctionalDone: return "functional-done";
      case StallReason::Idle: return "idle";
      case StallReason::NumReasons: break;
    }
    return "unknown";
}

WarpScheduler::WarpScheduler(WarpSchedPolicy policy, int num_slots)
    : policy_(policy), numSlots_(num_slots)
{
    if (num_slots <= 0 || num_slots > 64)
        fatal("WarpScheduler: slot count must be in [1, 64], got ",
              num_slots);
}

int
WarpScheduler::pickLrr(std::uint64_t issuable)
{
    if (!issuable)
        return -1;
    // Rotate: first set bit at or after rrNext_, wrapping.
    const std::uint64_t hi = issuable >> rrNext_ << rrNext_;
    const int slot = hi ? std::countr_zero(hi) : std::countr_zero(issuable);
    rrNext_ = (slot + 1) % numSlots_;
    return slot;
}

int
WarpScheduler::pickOldest(std::uint64_t issuable,
                          const std::vector<std::uint64_t> &age) const
{
    int best = -1;
    std::uint64_t best_age = UINT64_MAX;
    std::uint64_t bits = issuable;
    while (bits) {
        const int slot = std::countr_zero(bits);
        bits &= bits - 1;
        if (age[std::size_t(slot)] < best_age) {
            best_age = age[std::size_t(slot)];
            best = slot;
        }
    }
    return best;
}

int
WarpScheduler::pick(std::uint64_t issuable,
                    const std::vector<std::uint64_t> &age)
{
    if (!issuable)
        return -1;

    switch (policy_) {
      case WarpSchedPolicy::Lrr:
        return pickLrr(issuable);

      case WarpSchedPolicy::Gto:
        if (greedy_ >= 0 && (issuable >> greedy_) & 1)
            return greedy_;
        greedy_ = pickOldest(issuable, age);
        return greedy_;

      case WarpSchedPolicy::Oldest:
        return pickOldest(issuable, age);

      case WarpSchedPolicy::TwoLevel: {
        // Issue LRR among the active set; when no active warp can
        // issue, promote the oldest issuable pending warp.
        const std::uint64_t active_issuable = issuable & activeSet_;
        if (active_issuable)
            return pickLrr(active_issuable);
        const int promoted = pickOldest(issuable, age);
        if (promoted >= 0) {
            if (std::popcount(activeSet_) >= activeSetSize) {
                // Demote the least-recently promoted active warp.
                int victim = -1;
                std::uint64_t victim_stamp = UINT64_MAX;
                std::uint64_t bits = activeSet_;
                while (bits) {
                    const int slot = std::countr_zero(bits);
                    bits &= bits - 1;
                    if (promotedAt_[std::size_t(slot)] < victim_stamp) {
                        victim_stamp = promotedAt_[std::size_t(slot)];
                        victim = slot;
                    }
                }
                activeSet_ &= ~(std::uint64_t(1) << victim);
            }
            activeSet_ |= std::uint64_t(1) << promoted;
            promotedAt_[std::size_t(promoted)] = promoStamp_++;
        }
        return promoted;
      }
    }
    panic("WarpScheduler: unknown policy");
}

void
WarpScheduler::onStall(int slot)
{
    if (policy_ == WarpSchedPolicy::Gto && greedy_ == slot)
        greedy_ = -1;
    if (policy_ == WarpSchedPolicy::TwoLevel)
        activeSet_ &= ~(std::uint64_t(1) << slot);
}

void
WarpScheduler::onRelease(int slot)
{
    if (greedy_ == slot)
        greedy_ = -1;
    activeSet_ &= ~(std::uint64_t(1) << slot);
}

} // namespace ggpu::sim
