#include "sim/check_hooks.hh"

namespace ggpu::sim
{

namespace
{

thread_local EmissionObserver *currentObserver = nullptr;

} // namespace

EmissionObserver *
emissionObserver()
{
    return currentObserver;
}

ScopedEmissionObserver::ScopedEmissionObserver(EmissionObserver *observer)
    : previous_(currentObserver)
{
    currentObserver = observer;
}

ScopedEmissionObserver::~ScopedEmissionObserver()
{
    currentObserver = previous_;
}

} // namespace ggpu::sim
