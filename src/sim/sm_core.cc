#include "sim/sm_core.hh"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/log.hh"
#include "sim/gpu.hh"

namespace ggpu::sim
{

SmCore::SmCore(const GpuConfig &cfg, int core_id, Gpu *gpu)
    : cfg_(cfg), coreId_(core_id), gpu_(gpu),
      l1_(cfg.l1SizeBytes, cfg.l1Assoc, cfg.lineBytes,
          "l1-core" + std::to_string(core_id)),
      scheduler_(cfg.warpSched, cfg.maxWarpsPerCore),
      warps_(std::size_t(cfg.maxWarpsPerCore)),
      ctas_(std::size_t(cfg.maxCtasPerCore)),
      warpAge_(std::size_t(cfg.maxWarpsPerCore), 0),
      warpReadyAt_(std::size_t(cfg.maxWarpsPerCore), 0),
      warpBusyReason_(std::size_t(cfg.maxWarpsPerCore),
                      StallReason::None),
      freeRegs_(cfg.registersPerCore),
      freeThreads_(cfg.maxThreadsPerCore),
      freeSmem_(cfg.sharedMemPerCoreBytes),
      freeCtaSlots_(cfg.maxCtasPerCore),
      freeWarpSlots_(std::uint32_t(cfg.maxWarpsPerCore)),
      mshrEntries_(64), storeQueueDepth_(64),
      stallHist_(std::size_t(StallReason::NumReasons)),
      occHist_(warpSize)
{
}

bool
SmCore::canFit(const LaunchSpec &spec) const
{
    const std::uint32_t threads = std::uint32_t(spec.cta.count());
    const std::uint32_t warps = spec.warpsPerCta();
    return freeCtaSlots_ >= 1 && freeThreads_ >= threads &&
           freeWarpSlots_ >= warps &&
           freeRegs_ >= spec.res.regsPerThread * threads &&
           freeSmem_ >= spec.res.smemPerCtaBytes;
}

void
SmCore::dispatchCta(GridState &grid, const CtaTrace &trace, Cycles now)
{
    if (!canFit(grid.spec))
        panic("SmCore ", coreId_, ": dispatchCta without room");

    int cta_slot = -1;
    for (std::size_t i = 0; i < ctas_.size(); ++i) {
        if (!ctas_[i].valid) {
            cta_slot = int(i);
            break;
        }
    }
    if (cta_slot < 0)
        panic("SmCore ", coreId_, ": no free CTA slot despite canFit");

    CtaSlot &cta = ctas_[std::size_t(cta_slot)];
    cta.valid = true;
    cta.trace = &trace;
    cta.grid = &grid;
    cta.activeWarps = std::uint32_t(trace.warps.size());
    cta.barrierArrived = 0;
    cta.pendingChildGrids = 0;
    cta.warpSlots.clear();

    const std::uint32_t threads = std::uint32_t(grid.spec.cta.count());
    cta.regs = grid.spec.res.regsPerThread * threads;
    cta.threads = threads;
    cta.smem = grid.spec.res.smemPerCtaBytes;

    freeRegs_ -= cta.regs;
    freeThreads_ -= cta.threads;
    freeSmem_ -= cta.smem;
    freeCtaSlots_ -= 1;
    freeWarpSlots_ -= cta.activeWarps;

    for (const auto &warp_trace : cta.trace->warps) {
        int slot = -1;
        for (std::size_t i = 0; i < warps_.size(); ++i) {
            if (!(validMask_ >> i & 1)) {
                slot = int(i);
                break;
            }
        }
        if (slot < 0)
            panic("SmCore ", coreId_, ": no free warp slot despite canFit");
        const std::uint64_t bit = std::uint64_t(1) << slot;
        WarpSlot &warp = warps_[std::size_t(slot)];
        validMask_ |= bit;
        finishedMask_ &= ~bit;
        barrierMask_ &= ~bit;
        warp.trace = &warp_trace;
        warp.pc = 0;
        warpReadyAt_[std::size_t(slot)] = now + 1;
        warpBusyReason_[std::size_t(slot)] = StallReason::None;
        warp.ctaSlot = cta_slot;
        warp.outstanding.clear();
        warp.children.clear();
        warpAge_[std::size_t(slot)] = ageStamp_++;
        cta.warpSlots.push_back(slot);
    }

    ++residentCtas_;
}

bool
SmCore::depSatisfied(const WarpSlot &slot, std::int32_t dep,
                     Cycles now) const
{
    if (dep < 0)
        return true;
    for (const auto &load : slot.outstanding) {
        if (load.opIdx > dep)
            continue;
        if (load.remaining > 0 || load.doneAt > now)
            return false;
    }
    return true;
}

bool
SmCore::issuable(std::size_t idx, Cycles now, StallReason &reason) const
{
    if (barrierMask_ >> idx & 1) {
        reason = StallReason::Sync;
        return false;
    }
    if (warpReadyAt_[idx] > now) {
        reason = warpBusyReason_[idx] == StallReason::None
            ? StallReason::DataHazard : warpBusyReason_[idx];
        return false;
    }

    const WarpSlot &slot = warps_[idx];
    const TraceOp &op = slot.trace->ops[slot.pc];
    if (!depSatisfied(slot, op.dep, now)) {
        reason = StallReason::MemLatency;
        return false;
    }

    if (op.kind == OpKind::DeviceSync) {
        for (const GridState *child : slot.children) {
            if (!child->done) {
                reason = StallReason::Sync;
                return false;
            }
        }
    }

    if ((op.kind == OpKind::Load || op.kind == OpKind::Store) &&
        isOffCore(op.space) && !cfg_.perfectMemory) {
        if (op.kind == OpKind::Load &&
            mshr_.size() + op.txCount > mshrEntries_) {
            reason = StallReason::Structural;
            return false;
        }
        if (op.kind == OpKind::Store &&
            outstandingWrites_ + op.txCount > storeQueueDepth_) {
            reason = StallReason::Structural;
            return false;
        }
    }

    reason = StallReason::None;
    return true;
}

void
SmCore::issueMemOp(int slot_idx, const TraceOp &op, Cycles now)
{
    WarpSlot &slot = warps_[std::size_t(slot_idx)];
    const std::int32_t op_idx = std::int32_t(slot.pc);

    if (!isOffCore(op.space)) {
        // On-chip spaces: fixed-latency pipelines, no traffic.
        if (op.kind == OpKind::Load) {
            Cycles latency = 1;
            switch (op.space) {
              case MemSpace::Shared:
                latency = cfg_.sharedMemLatency;
                break;
              case MemSpace::Const:
                latency = cfg_.constMemLatency;
                break;
              case MemSpace::Param:
                latency = cfg_.constMemLatency;
                break;
              default:
                break;
            }
            slot.outstanding.push_back({op_idx, 0, now + latency});
        }
        return;
    }

    if (cfg_.perfectMemory) {
        if (op.kind == OpKind::Load)
            slot.outstanding.push_back({op_idx, 0, now + 1});
        return;
    }

    const WarpTrace &trace = *slot.trace;
    std::uint16_t miss_count = 0;

    for (std::uint32_t t = 0; t < op.txCount; ++t) {
        const Addr line = trace.transactions[op.txBegin + t];

        if (op.kind == OpKind::Store) {
            // Global/tex stores are write-through no-write-allocate
            // (NVIDIA L1 policy): they always travel to the L2 slice.
            // Local-memory stores are write-back cached in L1.
            if (op.space == MemSpace::Local) {
                l1_.access(line, true);  // write-back: allocate, no
                continue;                // immediate traffic
            }
            l1_.invalidate(line);  // write-through write-invalidate
            ++outstandingWrites_;
            gpu_->sendWriteRequest(coreId_, line, now);
            continue;
        }

        const mem::CacheResult result = l1_.access(line, false);

        if (result == mem::CacheResult::Hit)
            continue;
        auto &waiters = mshr_[line];
        if (waiters.empty())
            gpu_->sendReadRequest(coreId_, line, now);
        waiters.push_back({slot_idx, op_idx});
        ++miss_count;
    }

    if (op.kind == OpKind::Load) {
        slot.outstanding.push_back(
            {op_idx, miss_count, now + cfg_.l1HitLatency});
    }
}

void
SmCore::issue(int slot_idx, Cycles now)
{
    WarpSlot &slot = warps_[std::size_t(slot_idx)];
    const TraceOp &op = slot.trace->ops[slot.pc];

    insnByKind_[std::size_t(op.kind)] += op.repeat;
    occHist_.add(std::size_t(std::popcount(op.mask) > 0
                                 ? std::popcount(op.mask) - 1 : 0),
                 op.repeat);

    warpBusyReason_[std::size_t(slot_idx)] = StallReason::None;
    warpReadyAt_[std::size_t(slot_idx)] = now + op.repeat;

    switch (op.kind) {
      case OpKind::IntAlu:
      case OpKind::FpAlu:
        break;
      case OpKind::Sfu:
        // Quarter-rate unit: each SFU op occupies four issue slots.
        warpReadyAt_[std::size_t(slot_idx)] =
            now + Cycles(op.repeat) * 4;
        warpBusyReason_[std::size_t(slot_idx)] = StallReason::Structural;
        break;
      case OpKind::Branch:
        warpReadyAt_[std::size_t(slot_idx)] = now + cfg_.branchPenalty;
        warpBusyReason_[std::size_t(slot_idx)] =
            StallReason::ControlHazard;
        break;
      case OpKind::Load:
      case OpKind::Store:
        memBySpace_[std::size_t(op.space)] += op.repeat;
        issueMemOp(slot_idx, op, now);
        break;
      case OpKind::Barrier: {
        CtaSlot &cta = ctas_[std::size_t(slot.ctaSlot)];
        barrierMask_ |= std::uint64_t(1) << slot_idx;
        ++cta.barrierArrived;
        if (cta.barrierArrived >= cta.activeWarps)
            releaseBarrier(cta, now);
        break;
      }
      case OpKind::ChildLaunch: {
        CtaSlot &cta = ctas_[std::size_t(slot.ctaSlot)];
        const ChildGrid *child = cta.trace->children[op.child].get();
        // The CTA's pending-child count rises immediately (it gates
        // CTA teardown this same cycle); the device-side enqueue is
        // posted and lands at the cycle barrier.
        ++cta.pendingChildGrids;
        gpu_->postChildLaunch(coreId_, *child, slot_idx, slot.ctaSlot,
                              now);
        warpReadyAt_[std::size_t(slot_idx)] =
            now + 4;  // launch-instruction occupancy
        break;
      }
      case OpKind::DeviceSync:
        // Children verified complete in issuable(); forget them so a
        // later sync only waits on newer launches.
        slot.children.clear();
        break;
      case OpKind::Exit:
        finishWarp(slot_idx, now);
        return;  // pc must not advance past the trace end
      case OpKind::NumKinds:
        panic("SmCore: corrupt trace op");
    }

    ++slot.pc;
    if (slot.pc >= slot.trace->ops.size())
        panic("SmCore: warp ran past the end of its trace (missing Exit)");

    // Garbage-collect satisfied loads occasionally.
    if (slot.outstanding.size() > 8) {
        std::erase_if(slot.outstanding, [now](const OutstandingLoad &l) {
            return l.remaining == 0 && l.doneAt <= now;
        });
    }
}

void
SmCore::finishWarp(int slot_idx, Cycles now)
{
    WarpSlot &slot = warps_[std::size_t(slot_idx)];
    finishedMask_ |= std::uint64_t(1) << slot_idx;
    scheduler_.onRelease(slot_idx);

    CtaSlot &cta = ctas_[std::size_t(slot.ctaSlot)];
    if (cta.activeWarps == 0)
        panic("SmCore: warp finished in an empty CTA");
    --cta.activeWarps;
    if (cta.activeWarps == 0)
        maybeFreeCta(slot.ctaSlot, now);
}

void
SmCore::maybeFreeCta(int cta_slot, Cycles now)
{
    CtaSlot &cta = ctas_[std::size_t(cta_slot)];
    if (!cta.valid || cta.activeWarps > 0 || cta.pendingChildGrids > 0)
        return;

    for (int warp_slot : cta.warpSlots) {
        WarpSlot &warp = warps_[std::size_t(warp_slot)];
        validMask_ &= ~(std::uint64_t(1) << warp_slot);
        warp.trace = nullptr;
        ++freeWarpSlots_;
    }

    freeRegs_ += cta.regs;
    freeThreads_ += cta.threads;
    freeSmem_ += cta.smem;
    freeCtaSlots_ += 1;
    --residentCtas_;

    GridState *grid = cta.grid;
    cta.valid = false;
    cta.grid = nullptr;
    cta.trace = nullptr;

    gpu_->postCtaComplete(coreId_, *grid, now);
}

void
SmCore::releaseBarrier(CtaSlot &cta, Cycles now)
{
    for (int warp_slot : cta.warpSlots) {
        const std::uint64_t bit = std::uint64_t(1) << warp_slot;
        if ((validMask_ & bit) && !(finishedMask_ & bit) &&
            (barrierMask_ & bit)) {
            barrierMask_ &= ~bit;
            warpReadyAt_[std::size_t(warp_slot)] = now + 2;
            warpBusyReason_[std::size_t(warp_slot)] = StallReason::Sync;
        }
    }
    cta.barrierArrived = 0;
}

StallReason
SmCore::classify(Cycles now) const
{
    if (residentCtas_ == 0) {
        return gpu_->launchPending(now) ? StallReason::FunctionalDone
                                        : StallReason::Idle;
    }

    std::array<std::uint32_t, std::size_t(StallReason::NumReasons)>
        votes{};
    bool any = false;
    for (std::uint64_t live = validMask_ & ~finishedMask_; live != 0;
         live &= live - 1) {
        const std::size_t i = std::size_t(std::countr_zero(live));
        StallReason reason = StallReason::None;
        if (!issuable(i, now, reason)) {
            ++votes[std::size_t(reason)];
            any = true;
        }
    }
    if (!any)
        return StallReason::Idle;  // only drained warps remain

    // Majority vote; ties break toward the more fundamental cause.
    static constexpr StallReason priority[] = {
        StallReason::MemLatency, StallReason::Sync,
        StallReason::ControlHazard, StallReason::Structural,
        StallReason::DataHazard, StallReason::FunctionalDone,
        StallReason::Idle,
    };
    StallReason best = StallReason::Idle;
    std::uint32_t best_votes = 0;
    for (StallReason candidate : priority) {
        const std::uint32_t v = votes[std::size_t(candidate)];
        if (v > best_votes) {
            best_votes = v;
            best = candidate;
        }
    }
    return best;
}

bool
SmCore::tick(Cycles now)
{
    ++tickCount_;
    if (residentCtas_ == 0) {
        // A core with no resident work is only sampled while a kernel
        // launch is being set up ("functional done"); fully idle cores
        // do not contribute stall samples, matching how Accel-Sim
        // attributes cycles to active shaders.
        if (gpu_->launchPending(now)) {
            activeCycles_.inc();
            lastStall_ = StallReason::FunctionalDone;
            stallHist_.add(std::size_t(lastStall_));
        } else {
            lastStall_ = StallReason::None;  // not sampled
        }
        return false;
    }

    activeCycles_.inc();
    std::uint64_t issuable_mask = 0;
    for (std::uint64_t live = validMask_ & ~finishedMask_; live != 0;
         live &= live - 1) {
        const std::size_t i = std::size_t(std::countr_zero(live));
        StallReason reason = StallReason::None;
        if (issuable(i, now, reason))
            issuable_mask |= std::uint64_t(1) << i;
    }

    int issued = 0;
    for (int port = 0; port < cfg_.issueWidth && issuable_mask; ++port) {
        const int pick = scheduler_.pick(issuable_mask, warpAge_);
        if (pick < 0)
            break;
        issuable_mask &= ~(std::uint64_t(1) << pick);
        issue(pick, now);
        ++issued;
    }

    if (issued > 0) {
        issueCycles_.inc();
        lastStall_ = StallReason::None;
        return true;
    }

    lastStall_ = classify(now);
    stallHist_.add(std::size_t(lastStall_));
    return false;
}

void
SmCore::accountSkip(Cycles n)
{
    // Unsampled cores (no resident work, no pending launch) skip
    // silently; everything else repeats its last classification.
    if (lastStall_ == StallReason::None)
        return;
    activeCycles_.inc(n);
    stallHist_.add(std::size_t(lastStall_), n);
}

void
SmCore::enterSkip(Cycles first_skipped, std::uint64_t pending_cycles)
{
    skipping_ = true;
    skipFirst_ = first_skipped;
    skipPendingBase_ = pending_cycles;
}

void
SmCore::exitSkip(Cycles resume_at, std::uint64_t pending_cycles)
{
    if (!skipping_)
        return;
    skipping_ = false;
    if (residentCtas_ > 0) {
        // The classification is provably constant over the skipped
        // stretch: no warp crossed a readyAt/doneAt boundary (those
        // bound the wake time) and external state changes wake first.
        const Cycles n = resume_at - skipFirst_;
        if (n > 0) {
            activeCycles_.inc(n);
            stallHist_.add(std::size_t(lastStall_), n);
        }
        return;
    }
    // Empty core: a per-cycle loop samples FunctionalDone exactly on
    // launch-pending cycles; replay the engine's cumulative count.
    const std::uint64_t n = pending_cycles - skipPendingBase_;
    if (n > 0) {
        activeCycles_.inc(n);
        stallHist_.add(std::size_t(StallReason::FunctionalDone), n);
    }
}

Cycles
SmCore::nextReadyTime(Cycles now) const
{
    Cycles next = ~Cycles(0);
    for (std::uint64_t bits = validMask_ & ~finishedMask_ & ~barrierMask_;
         bits != 0; bits &= bits - 1) {
        const std::size_t i = std::size_t(std::countr_zero(bits));
        if (warpReadyAt_[i] > now) {
            next = std::min(next, warpReadyAt_[i]);
            continue;
        }
        // Ready by timer; may still be gated by an on-chip fixed-latency
        // load whose completion is not an event.
        const WarpSlot &slot = warps_[i];
        const TraceOp &op = slot.trace->ops[slot.pc];
        if (op.dep >= 0) {
            for (const auto &load : slot.outstanding) {
                if (load.opIdx <= op.dep && load.remaining == 0 &&
                    load.doneAt > now)
                    next = std::min(next, load.doneAt);
            }
        }
    }
    return next;
}

void
SmCore::onLineFill(Addr line, Cycles now)
{
    auto it = mshr_.find(line);
    if (it == mshr_.end())
        return;  // e.g. a write-retire raced with a flush
    for (const auto &[warp_slot, op_idx] : it->second) {
        WarpSlot &slot = warps_[std::size_t(warp_slot)];
        if (!(validMask_ >> warp_slot & 1))
            continue;
        for (auto &load : slot.outstanding) {
            if (load.opIdx == op_idx && load.remaining > 0) {
                if (--load.remaining == 0)
                    load.doneAt = std::max(load.doneAt, now);
                break;
            }
        }
    }
    mshr_.erase(it);
}

void
SmCore::onWriteRetired()
{
    if (outstandingWrites_ == 0)
        panic("SmCore ", coreId_, ": write retired with none outstanding");
    --outstandingWrites_;
}

void
SmCore::onChildGridEnqueued(int warp_slot, GridState *grid)
{
    // Safe even when the launching warp already ran its Exit op: the
    // slot cannot be recycled while the CTA's pendingChildGrids (raised
    // at issue time) is nonzero.
    warps_[std::size_t(warp_slot)].children.push_back(grid);
}

std::string
SmCore::pendingWorkReport(Cycles now) const
{
    std::ostringstream os;
    os << "    sm " << coreId_ << ": residentCtas " << residentCtas_
       << ", mshr lines " << mshr_.size() << ", outstanding writes "
       << outstandingWrites_ << "\n";
    for (std::size_t i = 0; i < warps_.size(); ++i) {
        if (!(validMask_ >> i & 1) || (finishedMask_ >> i & 1))
            continue;
        const WarpSlot &slot = warps_[i];
        StallReason reason = StallReason::None;
        const bool ready = issuable(i, now, reason);
        std::size_t pending_loads = 0;
        for (const auto &load : slot.outstanding)
            if (load.remaining > 0)
                ++pending_loads;
        std::size_t pending_children = 0;
        for (const GridState *child : slot.children)
            if (child != nullptr && !child->done)
                ++pending_children;
        os << "      warp " << i << " (cta " << slot.ctaSlot << "): pc "
           << slot.pc << ", readyAt " << warpReadyAt_[i] << ", "
           << (ready ? "issuable" : "stalled on " + toString(reason))
           << ", pending loads " << pending_loads
           << ", pending child grids " << pending_children << "\n";
    }
    return os.str();
}

void
SmCore::onChildGridDone(int cta_slot, Cycles now)
{
    CtaSlot &cta = ctas_[std::size_t(cta_slot)];
    if (!cta.valid || cta.pendingChildGrids == 0)
        panic("SmCore ", coreId_, ": spurious child-grid completion");
    --cta.pendingChildGrids;
    maybeFreeCta(cta_slot, now);
}

std::uint32_t
SmCore::residentWarpCount() const
{
    return std::uint32_t(std::popcount(validMask_ & ~finishedMask_));
}

std::uint32_t
SmCore::stalledWarpCount(Cycles now) const
{
    std::uint32_t count = 0;
    StallReason reason = StallReason::None;
    for (std::uint64_t live = validMask_ & ~finishedMask_; live != 0;
         live &= live - 1) {
        const std::size_t i = std::size_t(std::countr_zero(live));
        if (!issuable(i, now, reason))
            ++count;
    }
    return count;
}

void
SmCore::resetStats()
{
    stallHist_.reset();
    occHist_.reset();
    insnByKind_.fill(0);
    memBySpace_.fill(0);
    issueCycles_.reset();
    activeCycles_.reset();
    l1_.resetStats();
}

} // namespace ggpu::sim
