#include "sim/trace.hh"

namespace ggpu::sim
{

std::string
toString(OpKind kind)
{
    switch (kind) {
      case OpKind::IntAlu: return "int";
      case OpKind::FpAlu: return "fp";
      case OpKind::Sfu: return "sfu";
      case OpKind::Load: return "load";
      case OpKind::Store: return "store";
      case OpKind::Branch: return "branch";
      case OpKind::Barrier: return "barrier";
      case OpKind::ChildLaunch: return "child-launch";
      case OpKind::DeviceSync: return "device-sync";
      case OpKind::Exit: return "exit";
      case OpKind::NumKinds: break;
    }
    return "unknown";
}

std::string
toString(MemSpace space)
{
    switch (space) {
      case MemSpace::Global: return "global";
      case MemSpace::Shared: return "shared";
      case MemSpace::Local: return "local";
      case MemSpace::Const: return "const";
      case MemSpace::Tex: return "tex";
      case MemSpace::Param: return "param";
      case MemSpace::NumSpaces: break;
    }
    return "unknown";
}

int
KernelBody::numPhases(Dim3 cta_coord, Dim3 cta_dim) const
{
    (void)cta_coord;
    (void)cta_dim;
    return 1;
}

std::uint64_t
countChildGrids(const CtaTrace &trace)
{
    std::uint64_t count = trace.children.size();
    for (const auto &child : trace.children)
        for (const CtaTrace &cta : child->ctas)
            count += countChildGrids(cta);
    return count;
}

std::uint64_t
countChildGrids(const KernelTrace &kernel)
{
    std::uint64_t count = 0;
    for (const CtaTrace &cta : kernel.ctas)
        count += countChildGrids(cta);
    return count;
}

void
WarpTrace::append(const TraceOp &op)
{
    if (!ops.empty()) {
        TraceOp &last = ops.back();
        const bool mergeable =
            last.kind == op.kind && last.mask == op.mask &&
            last.dep == op.dep && last.txCount == 0 && op.txCount == 0 &&
            (op.kind == OpKind::IntAlu || op.kind == OpKind::FpAlu ||
             op.kind == OpKind::Sfu) &&
            std::uint32_t(last.repeat) + op.repeat <= 0xffff;
        if (mergeable) {
            last.repeat = std::uint16_t(last.repeat + op.repeat);
            return;
        }
    }
    ops.push_back(op);
}

} // namespace ggpu::sim
