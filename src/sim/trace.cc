#include "sim/trace.hh"

namespace ggpu::sim
{

std::string
toString(OpKind kind)
{
    switch (kind) {
      case OpKind::IntAlu: return "int";
      case OpKind::FpAlu: return "fp";
      case OpKind::Sfu: return "sfu";
      case OpKind::Load: return "load";
      case OpKind::Store: return "store";
      case OpKind::Branch: return "branch";
      case OpKind::Barrier: return "barrier";
      case OpKind::ChildLaunch: return "child-launch";
      case OpKind::DeviceSync: return "device-sync";
      case OpKind::Exit: return "exit";
      case OpKind::NumKinds: break;
    }
    return "unknown";
}

std::string
toString(MemSpace space)
{
    switch (space) {
      case MemSpace::Global: return "global";
      case MemSpace::Shared: return "shared";
      case MemSpace::Local: return "local";
      case MemSpace::Const: return "const";
      case MemSpace::Tex: return "tex";
      case MemSpace::Param: return "param";
      case MemSpace::NumSpaces: break;
    }
    return "unknown";
}

int
KernelBody::numPhases(Dim3 cta_coord, Dim3 cta_dim) const
{
    (void)cta_coord;
    (void)cta_dim;
    return 1;
}

std::uint64_t
countChildGrids(const CtaTrace &trace)
{
    std::uint64_t count = trace.children.size();
    for (const auto &child : trace.children)
        for (const CtaTrace &cta : child->ctas)
            count += countChildGrids(cta);
    return count;
}

std::uint64_t
countChildGrids(const KernelTrace &kernel)
{
    std::uint64_t count = 0;
    for (const CtaTrace &cta : kernel.ctas)
        count += countChildGrids(cta);
    return count;
}

// ---- OpStream ------------------------------------------------------

const std::vector<TraceOp> &
OpStream::storage() const
{
    static const std::vector<TraceOp> kEmpty;
    return ops_ ? *ops_ : kEmpty;
}

void
OpStream::ensureUnique()
{
    if (!ops_)
        ops_ = std::make_shared<std::vector<TraceOp>>();
    else if (ops_.use_count() > 1)
        ops_ = std::make_shared<std::vector<TraceOp>>(*ops_);
}

void
OpStream::push_back(const TraceOp &op)
{
    ensureUnique();
    ops_->push_back(op);
}

TraceOp &
OpStream::mutableBack()
{
    ensureUnique();
    return ops_->back();
}

bool
OpStream::operator==(const OpStream &other) const
{
    if (ops_ == other.ops_)
        return true;
    return storage() == other.storage();
}

OpStream
OpStream::fromShared(std::shared_ptr<std::vector<TraceOp>> ops)
{
    OpStream stream;
    if (ops && !ops->empty())
        stream.ops_ = std::move(ops);
    return stream;
}

void
OpStream::intern()
{
    OpStreamInterner *interner = opStreamInterner();
    if (interner == nullptr || !ops_ || ops_->empty())
        return;
    ops_ = interner->canonical(ops_);
}

// ---- OpStreamInterner ----------------------------------------------

namespace
{

/** FNV-1a over the semantic fields of each op. TraceOp has padding,
 *  so hashing its raw bytes would mix indeterminate values. */
std::uint64_t
hashStream(const std::vector<TraceOp> &ops)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    mix(ops.size());
    for (const TraceOp &op : ops) {
        mix(std::uint64_t(op.kind));
        mix(std::uint64_t(op.space));
        mix(op.repeat);
        mix(std::uint64_t(op.mask));
        mix(std::uint64_t(std::uint32_t(op.dep)));
        mix(op.txBegin);
        mix(op.txCount);
        mix(op.bytesPerLane);
        mix(op.child);
    }
    return h;
}

thread_local OpStreamInterner *tlsInterner = nullptr;

} // namespace

std::shared_ptr<std::vector<TraceOp>>
OpStreamInterner::canonical(const std::shared_ptr<std::vector<TraceOp>> &ops)
{
    ++seen_;
    auto &bucket = pool_[hashStream(*ops)];
    for (const auto &candidate : bucket) {
        if (candidate == ops)
            return ops;  // Already the canonical copy.
        if (*candidate == *ops) {
            ++shared_;
            opsDeduped_ += ops->size();
            return candidate;
        }
    }
    bucket.push_back(ops);
    return ops;
}

OpStreamInterner *
opStreamInterner()
{
    return tlsInterner;
}

ScopedOpStreamInterner::ScopedOpStreamInterner(OpStreamInterner &interner)
    : previous_(tlsInterner)
{
    tlsInterner = &interner;
}

ScopedOpStreamInterner::~ScopedOpStreamInterner()
{
    tlsInterner = previous_;
}

// ---- WarpTrace -----------------------------------------------------

void
WarpTrace::append(const TraceOp &op)
{
    if (!ops.empty()) {
        const TraceOp &last = ops.back();
        const bool mergeable =
            last.kind == op.kind && last.mask == op.mask &&
            last.dep == op.dep && last.txCount == 0 && op.txCount == 0 &&
            (op.kind == OpKind::IntAlu || op.kind == OpKind::FpAlu ||
             op.kind == OpKind::Sfu) &&
            std::uint32_t(last.repeat) + op.repeat <= 0xffff;
        if (mergeable) {
            TraceOp &tail = ops.mutableBack();
            tail.repeat = std::uint16_t(tail.repeat + op.repeat);
            return;
        }
    }
    ops.push_back(op);
}

} // namespace ggpu::sim
