#include "sim/warp_ctx.hh"

#include <algorithm>

namespace ggpu::sim
{

namespace
{

/** Maximum CDP nesting depth before emission refuses to recurse. */
constexpr int maxNestDepth = 8;

/** Per-warp local-memory window (synthetic addressing). */
constexpr Addr localWindowBytes = 64 * 1024;

} // namespace

LaneArray<std::uint32_t>
WarpCtx::laneId()
{
    return make<std::uint32_t>([](int lane) {
        return std::uint32_t(lane);
    });
}

LaneArray<std::uint32_t>
WarpCtx::tid()
{
    const std::uint32_t base = std::uint32_t(warpInCta_) * warpSize;
    return make<std::uint32_t>([base](int lane) {
        return base + std::uint32_t(lane);
    });
}

LaneArray<std::uint32_t>
WarpCtx::globalTid()
{
    const std::uint32_t base =
        std::uint32_t(ctaLinear_ * spec_->cta.count()) +
        std::uint32_t(warpInCta_) * warpSize;
    return make<std::uint32_t>([base](int lane) {
        return base + std::uint32_t(lane);
    });
}

LaneArray<std::uint32_t>
WarpCtx::iota(std::uint32_t start, std::uint32_t step)
{
    return make<std::uint32_t>([start, step](int lane) {
        return start + std::uint32_t(lane) * step;
    });
}

std::int32_t
WarpCtx::emitOp(TraceOp op)
{
    op.mask = activeMask();
    trace_->append(op);
    return std::int32_t(trace_->ops.size()) - 1;
}

void
WarpCtx::emitInt(std::uint32_t n, std::int32_t dep)
{
    TraceOp op;
    op.kind = OpKind::IntAlu;
    op.dep = dep;
    for (std::uint32_t i = 0; i < n; ++i)
        emitOp(op);
}

void
WarpCtx::emitFp(std::uint32_t n, std::int32_t dep)
{
    TraceOp op;
    op.kind = OpKind::FpAlu;
    op.dep = dep;
    for (std::uint32_t i = 0; i < n; ++i)
        emitOp(op);
}

void
WarpCtx::emitSfu(std::uint32_t n, std::int32_t dep)
{
    TraceOp op;
    op.kind = OpKind::Sfu;
    op.dep = dep;
    for (std::uint32_t i = 0; i < n; ++i)
        emitOp(op);
}

std::int32_t
WarpCtx::emitMemOp(OpKind kind, MemSpace space,
                   const std::array<Addr, warpSize> &addrs,
                   std::uint16_t bytes_per_lane, std::int32_t dep)
{
    TraceOp op;
    op.kind = kind;
    op.space = space;
    op.bytesPerLane = bytes_per_lane;
    op.dep = dep;
    op.mask = activeMask();
    if (isOffCore(space) && op.mask != 0) {
        Coalescer coal(lineBytes_);
        op.txBegin = std::uint32_t(trace_->transactions.size());
        op.txCount = std::uint16_t(coal.coalesce(
            addrs, op.mask, bytes_per_lane, trace_->transactions));
    }
    trace_->append(op);
    const std::int32_t index = std::int32_t(trace_->ops.size()) - 1;
    if (emissionObserver())
        noteAccess(kind == OpKind::Store, space, addrs, bytes_per_lane,
                   index);
    return index;
}

void
WarpCtx::noteAccess(bool write, MemSpace space,
                    const std::array<Addr, warpSize> &addrs,
                    std::uint16_t bytes_per_lane, std::int32_t op_index)
{
    EmissionObserver *observer = emissionObserver();
    if (!observer)
        return;
    MemAccess access;
    access.spec = spec_;
    access.mem = mem_;
    access.ctaLinear = ctaLinear_;
    access.warpInCta = warpInCta_;
    access.phase = phase_;
    access.nestDepth = nestDepth_;
    access.write = write;
    access.space = space;
    access.mask = activeMask();
    access.baseMask = baseMask_;
    access.bytesPerLane = bytes_per_lane;
    access.opIndex = op_index;
    access.addrs = &addrs;
    observer->onMemAccess(access);
}

std::int32_t
WarpCtx::constRead(std::uint32_t count, std::uint16_t bytes_per_lane)
{
    TraceOp op;
    op.kind = OpKind::Load;
    op.space = MemSpace::Const;
    op.bytesPerLane = bytes_per_lane;
    std::int32_t last = -1;
    for (std::uint32_t i = 0; i < count; ++i)
        last = emitOp(op);
    return last;
}

std::int32_t
WarpCtx::localAccess(bool write, std::uint32_t slot,
                     std::uint16_t bytes_per_lane, std::int32_t dep)
{
    // Local memory is interleaved per lane so that simultaneous
    // accesses by a warp coalesce, exactly as CUDA lays out .local.
    const std::uint64_t warp_unique =
        gridSalt_ * 0x10000 + ctaLinear_ * spec_->warpsPerCta() +
        std::uint64_t(warpInCta_);
    const Addr window =
        DeviceMemory::localRegionBase + warp_unique * localWindowBytes;
    const Addr stride = Addr(bytes_per_lane) * warpSize;
    const Addr slot_base =
        window + (Addr(slot) * stride) % localWindowBytes;

    std::array<Addr, warpSize> addrs{};
    for (int lane = 0; lane < warpSize; ++lane)
        addrs[std::size_t(lane)] =
            slot_base + Addr(lane) * bytes_per_lane;

    return emitMemOp(write ? OpKind::Store : OpKind::Load,
                     MemSpace::Local, addrs, bytes_per_lane, dep);
}

std::int32_t
WarpCtx::sharedNote(bool write, std::uint16_t bytes_per_lane,
                    std::int32_t dep)
{
    TraceOp op;
    op.kind = write ? OpKind::Store : OpKind::Load;
    op.space = MemSpace::Shared;
    op.bytesPerLane = bytes_per_lane;
    op.dep = dep;
    return emitOp(op);
}

std::int32_t
WarpCtx::memNote(bool write, MemSpace space, Addr base,
                 const LaneArray<std::uint32_t> &idx,
                 std::uint16_t bytes_per_lane, std::int32_t dep)
{
    std::array<Addr, warpSize> addrs{};
    for (int lane = 0; lane < warpSize; ++lane) {
        if (laneActive(lane))
            addrs[std::size_t(lane)] =
                base + Addr(idx[lane]) * bytes_per_lane;
    }
    return emitMemOp(write ? OpKind::Store : OpKind::Load, space, addrs,
                     bytes_per_lane, detail::mergeDep(dep, idx.dep));
}

LaneMask
WarpCtx::ballot(const LaneArray<bool> &pred)
{
    emitInt(1, pred.dep);  // warp-vote instruction
    LaneMask mask = 0;
    for (int lane = 0; lane < warpSize; ++lane)
        if (laneActive(lane) && pred[lane])
            mask |= LaneMask(1) << lane;
    return mask;
}

void
WarpCtx::branchPoint(std::int32_t dep)
{
    TraceOp op;
    op.kind = OpKind::Branch;
    op.dep = dep;
    emitOp(op);
}

void
WarpCtx::pushMask(LaneMask mask)
{
    maskStack_.push_back(mask & activeMask());
}

void
WarpCtx::popMask()
{
    if (maskStack_.size() <= 1)
        panic("WarpCtx::popMask: mask stack underflow");
    maskStack_.pop_back();
}

LaneArray<std::int32_t>
WarpCtx::reduceMax(const LaneArray<std::int32_t> &value)
{
    emitInt(5, value.dep);  // 5 butterfly shuffle+max steps
    std::int32_t best = INT32_MIN;
    for (int lane = 0; lane < warpSize; ++lane)
        if (laneActive(lane))
            best = std::max(best, value[lane]);
    return broadcast<std::int32_t>(best);
}

LaneArray<float>
WarpCtx::reduceSum(const LaneArray<float> &value)
{
    emitFp(5, value.dep);
    float sum = 0.0f;
    for (int lane = 0; lane < warpSize; ++lane)
        if (laneActive(lane))
            sum += value[lane];
    return broadcast<float>(sum);
}

void
WarpCtx::launchChild(const LaunchSpec &child)
{
    if (nestDepth_ + 1 > maxNestDepth)
        fatal("CDP nesting deeper than ", maxNestDepth, " levels");
    if (!child.body)
        panic("launchChild: child kernel has no body");

    auto grid = std::make_unique<ChildGrid>();
    grid->spec = child;

    // Eager functional emission of the whole child grid, preserving
    // program order: the parent may consume child results after its
    // deviceSync().
    const std::uint64_t ctas = child.grid.count();
    const std::uint64_t salt =
        gridSalt_ * 131 + ctaLinear_ * 31 + std::uint64_t(warpInCta_) + 1;
    grid->ctas.reserve(ctas);
    for (std::uint64_t c = 0; c < ctas; ++c) {
        grid->ctas.push_back(emitCta(child, c, *mem_, lineBytes_,
                                     nestDepth_ + 1, salt + c));
    }

    TraceOp op;
    op.kind = OpKind::ChildLaunch;
    op.child = std::uint32_t(children_->size());
    children_->push_back(std::move(grid));
    emitOp(op);
}

void
WarpCtx::deviceSync()
{
    TraceOp op;
    op.kind = OpKind::DeviceSync;
    emitOp(op);
}

CtaTrace
emitCta(const LaunchSpec &spec, std::uint64_t cta_linear,
        DeviceMemory &mem, std::uint32_t line_bytes, int nest_depth,
        std::uint64_t grid_salt)
{
    if (!spec.body)
        panic("emitCta: kernel '", spec.name, "' has no body");

    const std::uint32_t threads = std::uint32_t(spec.cta.count());
    const std::uint32_t warps = spec.warpsPerCta();
    if (threads == 0)
        fatal("emitCta: kernel '", spec.name, "' launches empty CTAs");

    CtaTrace trace;
    trace.warps.resize(warps);
    std::vector<std::uint8_t> shared(spec.res.smemPerCtaBytes, 0);
    std::vector<std::shared_ptr<void>> states(warps);

    // Linear CTA index -> coordinate (x fastest) for numPhases().
    Dim3 coord;
    coord.x = std::uint32_t(cta_linear % spec.grid.x);
    coord.y = std::uint32_t((cta_linear / spec.grid.x) % spec.grid.y);
    coord.z = std::uint32_t(cta_linear / (std::uint64_t(spec.grid.x) *
                                          spec.grid.y));

    const int phases = spec.body->numPhases(coord, spec.cta);
    if (phases <= 0)
        panic("emitCta: kernel '", spec.name, "' declares ", phases,
              " phases");

    std::vector<WarpCtx> ctxs(warps);
    for (std::uint32_t w = 0; w < warps; ++w) {
        WarpCtx &ctx = ctxs[w];
        ctx.spec_ = &spec;
        ctx.ctaLinear_ = cta_linear;
        ctx.warpInCta_ = int(w);
        ctx.gridSalt_ = grid_salt;
        ctx.nestDepth_ = nest_depth;
        ctx.lineBytes_ = line_bytes;
        ctx.trace_ = &trace.warps[w];
        ctx.shared_ = &shared;
        ctx.mem_ = &mem;
        ctx.children_ = &trace.children;
        ctx.statePtr_ = &states[w];

        const std::uint32_t lanes =
            std::min<std::uint32_t>(warpSize, threads - w * warpSize);
        ctx.baseMask_ = lanes == warpSize
            ? fullMask : ((LaneMask(1) << lanes) - 1);
        ctx.maskStack_ = {ctx.baseMask_};

        // Kernel-parameter reads at warp start (Fig 9 "Param").
        TraceOp param;
        param.kind = OpKind::Load;
        param.space = MemSpace::Param;
        param.bytesPerLane = 4;
        for (std::uint32_t p = 0; p < spec.numParams; ++p)
            ctx.emitOp(param);
    }

    EmissionObserver *observer = emissionObserver();
    if (observer)
        observer->onCtaBegin(spec, cta_linear, nest_depth);

    for (int phase = 0; phase < phases; ++phase) {
        for (std::uint32_t w = 0; w < warps; ++w) {
            WarpCtx &ctx = ctxs[w];
            ctx.phase_ = phase;
            spec.body->runPhase(ctx, phase);
            if (ctx.maskStack_.size() != 1)
                panic("kernel '", spec.name,
                      "': unbalanced mask stack at end of phase ", phase);
            if (phase + 1 < phases) {
                TraceOp barrier;
                barrier.kind = OpKind::Barrier;
                ctx.emitOp(barrier);
            }
        }
    }

    for (std::uint32_t w = 0; w < warps; ++w) {
        TraceOp exit_op;
        exit_op.kind = OpKind::Exit;
        ctxs[w].emitOp(exit_op);
    }

    // Re-read the thread-local: a defect-seeking observer could in
    // principle uninstall itself mid-CTA, and begin/end must pair.
    if (observer && observer == emissionObserver())
        observer->onCtaEnd();

    // Fold duplicate per-warp op streams onto pooled canonical copies.
    // Child grids interned their own warps inside launchChild's
    // recursive emitCta, so this covers every stream exactly once.
    for (WarpTrace &warp : trace.warps)
        warp.ops.intern();

    return trace;
}

} // namespace ggpu::sim
