/**
 * @file
 * Emission-observer seam for the kernel checker (ggpu::check). When an
 * observer is installed (thread-local; emission runs on one thread),
 * the WarpCtx load/store paths report every memory instruction with
 * full per-lane byte addresses and provenance, and emitCta brackets
 * each CTA so per-CTA analyses (racecheck) can run the moment a CTA's
 * emission completes — including nested CDP child CTAs, which arrive
 * between their parent's begin/end pair in stack order. With no
 * observer installed every hook reduces to one thread-local null
 * check, and the emitted trace is byte-identical to an unchecked run.
 */

#ifndef GGPU_SIM_CHECK_HOOKS_HH
#define GGPU_SIM_CHECK_HOOKS_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "sim/isa.hh"

namespace ggpu::sim
{

class DeviceMemory;
struct LaunchSpec;

/** One observed warp memory instruction with per-lane addresses. */
struct MemAccess
{
    const LaunchSpec *spec = nullptr;   //!< Kernel being emitted
    const DeviceMemory *mem = nullptr;  //!< Allocation table (memcheck)
    std::uint64_t ctaLinear = 0;
    int warpInCta = 0;
    int phase = 0;          //!< Barrier-interval index within the CTA
    int nestDepth = 0;      //!< CDP nesting depth (0 = host launch)
    bool write = false;
    MemSpace space = MemSpace::Global;
    LaneMask mask = 0;      //!< Active lanes; addrs valid only there
    LaneMask baseMask = 0;  //!< Warp's full-participation mask
    std::uint16_t bytesPerLane = 0;
    std::int32_t opIndex = -1;  //!< Index into the warp's op stream
    /** Per-lane starting byte. Shared space: CTA-local byte offset;
     *  off-core spaces: device address. */
    const std::array<Addr, warpSize> *addrs = nullptr;
};

/** Interface the checker implements; default callbacks do nothing. */
class EmissionObserver
{
  public:
    virtual ~EmissionObserver() = default;

    /** A CTA's emission is starting (CDP children re-enter). */
    virtual void
    onCtaBegin(const LaunchSpec &spec, std::uint64_t cta_linear,
               int nest_depth)
    {
        (void)spec;
        (void)cta_linear;
        (void)nest_depth;
    }

    /** The most recently begun CTA is fully emitted (stack order). */
    virtual void onCtaEnd() {}

    /** One warp memory instruction with per-lane addresses. */
    virtual void onMemAccess(const MemAccess &access) { (void)access; }
};

/** The observer installed on this thread, or nullptr (the default). */
EmissionObserver *emissionObserver();

/** Install @p observer on this thread for the current scope. */
class ScopedEmissionObserver
{
  public:
    explicit ScopedEmissionObserver(EmissionObserver *observer);
    ~ScopedEmissionObserver();

    ScopedEmissionObserver(const ScopedEmissionObserver &) = delete;
    ScopedEmissionObserver &
    operator=(const ScopedEmissionObserver &) = delete;

  private:
    EmissionObserver *previous_;
};

} // namespace ggpu::sim

#endif // GGPU_SIM_CHECK_HOOKS_HH
