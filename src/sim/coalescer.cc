#include "sim/coalescer.hh"

#include <bit>

#include "common/log.hh"

namespace ggpu::sim
{

Coalescer::Coalescer(std::uint32_t line_bytes) : lineBytes_(line_bytes)
{
    if (line_bytes == 0 || !std::has_single_bit(line_bytes))
        fatal("Coalescer: line size must be a power of two");
}

std::uint32_t
Coalescer::coalesce(const std::array<Addr, warpSize> &addrs, LaneMask mask,
                    std::uint32_t bytes_per_lane,
                    std::vector<Addr> &out) const
{
    if (bytes_per_lane == 0)
        panic("Coalescer: zero-byte access");

    const std::size_t before = out.size();
    const Addr line_mask = ~Addr(lineBytes_ - 1);

    for (int lane = 0; lane < warpSize; ++lane) {
        if (!(mask & (LaneMask(1) << lane)))
            continue;
        const Addr first = addrs[std::size_t(lane)] & line_mask;
        const Addr last =
            (addrs[std::size_t(lane)] + bytes_per_lane - 1) & line_mask;
        for (Addr line = first; line <= last; line += lineBytes_) {
            bool seen = false;
            for (std::size_t i = before; i < out.size(); ++i) {
                if (out[i] == line) {
                    seen = true;
                    break;
                }
            }
            if (!seen)
                out.push_back(line);
        }
    }
    return std::uint32_t(out.size() - before);
}

} // namespace ggpu::sim
