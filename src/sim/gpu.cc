#include "sim/gpu.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"
#include "sim/check_hooks.hh"
#include "sim/occupancy.hh"
#include "sim/warp_ctx.hh"

namespace ggpu::sim
{

std::uint64_t
SimStats::totalInsns() const
{
    std::uint64_t total = 0;
    for (auto count : insnByKind)
        total += count;
    return total;
}

double
SimStats::ipc() const
{
    return ratio(totalInsns(), gpuCycles);
}

void
SimStats::merge(const SimStats &other)
{
    gpuCycles += other.gpuCycles;
    launches += other.launches;
    for (std::size_t i = 0; i < insnByKind.size(); ++i)
        insnByKind[i] += other.insnByKind[i];
    for (std::size_t i = 0; i < memBySpace.size(); ++i)
        memBySpace[i] += other.memBySpace[i];
    warpOcc.merge(other.warpOcc);
    stalls.merge(other.stalls);
    issueCycles += other.issueCycles;
    smCycles += other.smCycles;
    l1Accesses += other.l1Accesses;
    l1Misses += other.l1Misses;
    l2Accesses += other.l2Accesses;
    l2Misses += other.l2Misses;
    dramServed += other.dramServed;
    dramRowHits += other.dramRowHits;
    dramPinBusy += other.dramPinBusy;
    dramActive += other.dramActive;
    nocPackets += other.nocPackets;
    nocFlits += other.nocFlits;
    nocLatencySum += other.nocLatencySum;
}

Gpu::Partition::Partition(const GpuConfig &cfg, int id)
    : l2(cfg.l2SizeBytes / std::uint32_t(cfg.numMemPartitions),
         cfg.l2Assoc, cfg.lineBytes, "l2-slice" + std::to_string(id)),
      dram(cfg, id)
{
}

Gpu::Gpu(const SystemConfig &cfg)
    : cfg_(cfg),
      noc_(cfg.noc, cfg.gpu.numCores + cfg.gpu.numMemPartitions)
{
    cfg_.validate();
    sms_.reserve(std::size_t(cfg_.gpu.numCores));
    for (int i = 0; i < cfg_.gpu.numCores; ++i)
        sms_.push_back(std::make_unique<SmCore>(cfg_.gpu, i, this));
    partitions_.reserve(std::size_t(cfg_.gpu.numMemPartitions));
    for (int i = 0; i < cfg_.gpu.numMemPartitions; ++i)
        partitions_.push_back(std::make_unique<Partition>(cfg_.gpu, i));

    outboxes_ = std::vector<SmOutbox>(sms_.size());
    smIssued_.assign(sms_.size(), 0);
    smWakeAt_.assign(sms_.size(), 0);
    dramNextAt_.assign(partitions_.size(), 0);
    const int lanes = cfg_.sim.resolvedThreads();
    if (lanes > 1)
        pool_ = std::make_unique<ThreadPool>(lanes);
}

Gpu::~Gpu() = default;

int
Gpu::partitionOf(Addr line) const
{
    return int((line / cfg_.gpu.lineBytes) %
               std::uint64_t(cfg_.gpu.numMemPartitions));
}

std::uint64_t
Gpu::encodeReq(int core, bool write, Addr line) const
{
    // Line number in the high bits; bit 7 is the write flag and bits
    // 0..6 identify the requesting core.
    return ((line / cfg_.gpu.lineBytes) << 8) | (write ? 0x80u : 0u) |
           std::uint64_t(core);
}

void
Gpu::decodeReq(std::uint64_t req_id, int &core, bool &write,
               Addr &line) const
{
    core = int(req_id & 0x7f);
    write = (req_id & 0x80) != 0;
    line = (req_id >> 8) * cfg_.gpu.lineBytes;
}

void
Gpu::schedule(Event event)
{
    event.seq = eventSeq_++;
    events_.push(event);
}

void
Gpu::applyRead(int core, Addr line, Cycles now)
{
    const int partition = partitionOf(line);
    const Cycles arrive =
        noc_.send(core, nodeOfPartition(partition), 8, now);
    schedule({arrive, 0, Event::Kind::ReqAtPartition, partition, core,
              line, false});
}

void
Gpu::applyWrite(int core, Addr line, Cycles now)
{
    const int partition = partitionOf(line);
    const Cycles arrive = noc_.send(core, nodeOfPartition(partition),
                                    cfg_.gpu.lineBytes, now);
    schedule({arrive, 0, Event::Kind::ReqAtPartition, partition, core,
              line, true});
}

void
Gpu::sendReadRequest(int core, Addr line, Cycles now)
{
    if (inSmPhase_) {
        SmOp op;
        op.kind = SmOp::Kind::Read;
        op.line = line;
        outboxes_[std::size_t(core)].ops.push_back(op);
        return;
    }
    applyRead(core, line, now);
}

void
Gpu::sendWriteRequest(int core, Addr line, Cycles now)
{
    if (inSmPhase_) {
        SmOp op;
        op.kind = SmOp::Kind::Write;
        op.line = line;
        outboxes_[std::size_t(core)].ops.push_back(op);
        return;
    }
    applyWrite(core, line, now);
}

void
Gpu::postChildLaunch(int core, const ChildGrid &child, int warp_slot,
                     int cta_slot, Cycles now)
{
    if (inSmPhase_) {
        SmOp op;
        op.kind = SmOp::Kind::ChildLaunch;
        op.child = &child;
        op.warpSlot = warp_slot;
        op.ctaSlot = cta_slot;
        outboxes_[std::size_t(core)].ops.push_back(op);
        return;
    }
    GridState *grid = enqueueChildGrid(child, core, cta_slot, now);
    sms_[std::size_t(core)]->onChildGridEnqueued(warp_slot, grid);
}

void
Gpu::postCtaComplete(int core, GridState &grid, Cycles now)
{
    if (inSmPhase_) {
        SmOp op;
        op.kind = SmOp::Kind::CtaComplete;
        op.grid = &grid;
        outboxes_[std::size_t(core)].ops.push_back(op);
        return;
    }
    onGridCtaComplete(grid, core, now);
}

GridState *
Gpu::enqueueChildGrid(const ChildGrid &child, int parent_core,
                      int parent_cta_slot, Cycles now)
{
    auto grid = std::make_unique<GridState>();
    grid->spec = child.spec;
    grid->ctaSrc = &child.ctas;
    grid->totalCtas = child.spec.grid.count();
    grid->remaining = grid->totalCtas;
    grid->profileId = ++profileGridSeq_;
    grid->depth = 1;
    grid->parentCore = parent_core;
    grid->parentCtaSlot = parent_cta_slot;

    Cycles overhead = cfg_.gpu.cdpLaunchOverhead;
    if (!cdpRuntimeInitialized_) {
        overhead += cfg_.gpu.cdpRuntimeSetup;
        cdpRuntimeInitialized_ = true;
    }
    grid->readyAt = now + overhead;
    launchPendingBound_ = std::max(launchPendingBound_, grid->readyAt);

    GridState *raw = grid.get();
    activeGrids_.push_back(std::move(grid));
    // Children jump the queue so parents waiting on deviceSync make
    // progress as soon as possible.
    dispatchQueue_.push_front(raw);
    ++liveGrids_;
    ++childGridsThisLaunch_;
    if (ffActive_ && dispatchNextAt_ > raw->readyAt)
        dispatchNextAt_ = raw->readyAt;
    if (TimingObserver *obs = timingObserver()) {
        obs->onChildEnqueued(raw->spec, raw->profileId, parent_core,
                             now, raw->readyAt);
    }
    return raw;
}

void
Gpu::onGridCtaComplete(GridState &grid, int core, Cycles now)
{
    if (grid.remaining == 0)
        panic("Gpu: CTA completed on a drained grid");
    --grid.remaining;
    if (ffActive_ && dispatchNextAt_ > now + 1) {
        // CTA resources were just freed; a grid the dispatcher parked
        // for lack of room can try again next cycle. CTA completion is
        // the only way room comes back, so this is the only retry seam.
        for (const GridState *queued : dispatchQueue_) {
            if (queued->nextCta < queued->totalCtas) {
                dispatchNextAt_ = now + 1;
                break;
            }
        }
    }
    TimingObserver *obs = timingObserver();
    if (obs)
        obs->onCtaRetire(grid.profileId, core, now);
    if (grid.remaining > 0)
        return;
    grid.done = true;
    --liveGrids_;
    if (grid.streamTicket != 0)
        streamCompletions_.push_back({grid.streamTicket, now});
    if (obs && grid.depth > 0)
        obs->onChildDone(grid.profileId, now);
    if (grid.parentCore >= 0) {
        // CTA completion only surfaces at the cycle barrier, so the
        // parent core ticks again from the next cycle.
        if (ffActive_)
            wakeSmAt(std::size_t(grid.parentCore), now + 1);
        sms_[std::size_t(grid.parentCore)]->onChildGridDone(
            grid.parentCtaSlot, now);
    }
}

bool
Gpu::launchPending(Cycles now) const
{
    if (now < launchReadyAt_)
        return true;
    for (const GridState *grid : dispatchQueue_)
        if (now < grid->readyAt)
            return true;
    return false;
}

bool
Gpu::processEvents()
{
    bool progress = false;
    while (!events_.empty() && events_.top().time <= now_) {
        const Event event = events_.top();
        events_.pop();
        progress = true;
        switch (event.kind) {
          case Event::Kind::ReqAtPartition:
            handlePartitionRequest(event.node, event.core, event.line,
                                   event.write, now_);
            break;
          case Event::Kind::ReplyAtCore:
            if (ffActive_)
                wakeSmAt(std::size_t(event.node), now_);
            sms_[std::size_t(event.node)]->onLineFill(event.line, now_);
            break;
          case Event::Kind::WriteRetire:
            if (ffActive_)
                wakeSmAt(std::size_t(event.node), now_);
            sms_[std::size_t(event.node)]->onWriteRetired();
            break;
        }
    }
    return progress;
}

void
Gpu::handleDramCompletions(
    int partition, const std::vector<mem::DramCompletion> &completed)
{
    for (const auto &done : completed) {
        int core;
        bool write;
        Addr line;
        decodeReq(done.reqId, core, write, line);
        if (write) {
            schedule({std::max(now_, done.doneAt), 0,
                      Event::Kind::WriteRetire, core, core, line, true});
        } else {
            const Cycles arrive = noc_.send(
                nodeOfPartition(partition), core, cfg_.gpu.lineBytes,
                std::max(now_, done.doneAt));
            schedule({arrive, 0, Event::Kind::ReplyAtCore, core, core,
                      line, false});
        }
    }
}

void
Gpu::handlePartitionRequest(int partition, int core, Addr line,
                            bool write, Cycles now)
{
    // The tick below changes the channel's schedule, and a pushed
    // request may issue on this very cycle's regular DRAM tick (the
    // per-cycle loop always ticks after processing events). Force the
    // fast path to tick this partition again this cycle too.
    if (ffActive_)
        dramNextAt_[std::size_t(partition)] = now;
    Partition &part = *partitions_[std::size_t(partition)];
    // Close out the DRAM active-time window before changing its queue.
    // Interior cycles replay inside advanceTo (issues and overflow
    // refills); the boundary cycle deliberately does not drain the
    // overflow queue, so this cycle's arrival below still enters the
    // scheduler queue ahead of older overflow entries — the same order
    // the per-cycle loop produces (events before tickDram's drain).
    dramCompleted_.clear();
    part.dram.advanceTo(now, dramCompleted_, &part.overflow);
    handleDramCompletions(partition, dramCompleted_);

    const mem::CacheResult result = part.l2.access(line, write);
    if (result == mem::CacheResult::Hit) {
        if (write) {
            schedule({now + cfg_.gpu.l2HitLatency, 0,
                      Event::Kind::WriteRetire, core, core, line, true});
        } else {
            const Cycles arrive =
                noc_.send(nodeOfPartition(partition), core,
                          cfg_.gpu.lineBytes, now + cfg_.gpu.l2HitLatency);
            schedule({arrive, 0, Event::Kind::ReplyAtCore, core, core,
                      line, false});
        }
        return;
    }

    mem::DramRequest request;
    request.lineAddr = line;
    request.write = write;
    request.arrival = now;
    request.reqId = encodeReq(core, write, line);
    if (part.dram.canAccept())
        part.dram.push(request);
    else
        part.overflow.push_back(request);
}

void
Gpu::drainOverflow(Partition &part, Cycles now)
{
    while (!part.overflow.empty() && part.dram.canAccept()) {
        part.dram.push(part.overflow.front());
        part.overflow.pop_front();
    }
    (void)now;
}

bool
Gpu::tickDram()
{
    bool progress = false;
    for (std::size_t p = 0; p < partitions_.size(); ++p) {
        Partition &part = *partitions_[p];
        dramCompleted_.clear();
        part.dram.advanceTo(now_, dramCompleted_, &part.overflow);
        drainOverflow(part, now_);
        if (!dramCompleted_.empty()) {
            progress = true;
            handleDramCompletions(int(p), dramCompleted_);
        }
    }
    return progress;
}

bool
Gpu::dispatchCtas()
{
    constexpr int maxDispatchPerCycle = 8;
    int dispatched = 0;
    TimingObserver *obs = timingObserver();

    for (auto it = dispatchQueue_.begin();
         it != dispatchQueue_.end() && dispatched < maxDispatchPerCycle;) {
        GridState *grid = *it;
        if (now_ < grid->readyAt || grid->nextCta >= grid->totalCtas) {
            ++it;
            continue;
        }

        bool placed_any = false;
        for (int attempt = 0;
             attempt < cfg_.gpu.numCores &&
             grid->nextCta < grid->totalCtas &&
             dispatched < maxDispatchPerCycle;
             ++attempt) {
            const std::size_t core = std::size_t(dispatchCursor_);
            SmCore &sm = *sms_[core];
            dispatchCursor_ = (dispatchCursor_ + 1) % cfg_.gpu.numCores;
            if (!sm.canFit(grid->spec))
                continue;

            if (ffActive_)
                wakeSmAt(core, now_);  // catch up before mutating
            const CtaTrace &trace =
                (*grid->ctaSrc)[std::size_t(grid->nextCta)];
            sm.dispatchCta(*grid, trace, now_);
            if (obs) {
                if (grid->depth > 0 && grid->nextCta == 0)
                    obs->onChildDispatchBegin(grid->profileId, now_);
                obs->onCtaDispatch(grid->profileId, grid->nextCta,
                                   sm.coreId(), now_);
            }
            ++grid->nextCta;
            ++dispatched;
            placed_any = true;
        }

        if (grid->nextCta >= grid->totalCtas) {
            it = dispatchQueue_.erase(it);
        } else if (!placed_any) {
            ++it;  // no SM had room; try again later
        }
    }

    if (ffActive_) {
        // Next cycle this call can do anything: immediately when the
        // per-cycle cap was hit, else the earliest future readyAt. A
        // ready grid that found no room waits for a CTA completion
        // (onGridCtaComplete re-arms the retry).
        Cycles next = ~Cycles(0);
        if (dispatched >= maxDispatchPerCycle) {
            next = now_ + 1;
        } else {
            for (const GridState *grid : dispatchQueue_) {
                if (grid->nextCta < grid->totalCtas &&
                    now_ < grid->readyAt)
                    next = std::min(next, grid->readyAt);
            }
        }
        dispatchNextAt_ = next;
    }
    return dispatched > 0;
}

Cycles
Gpu::nextWakeup() const
{
    Cycles next = ~Cycles(0);
    if (!events_.empty())
        next = std::min(next, events_.top().time);
    for (const GridState *grid : dispatchQueue_) {
        if (grid->nextCta < grid->totalCtas)
            next = std::min(next, std::max(grid->readyAt, now_ + 1));
    }
    for (const auto &part : partitions_) {
        if (!part->overflow.empty())
            next = std::min(next, now_ + 1);
        next = std::min(next, part->dram.nextEventAt(now_));
    }
    for (const auto &sm : sms_)
        next = std::min(next, sm->nextReadyTime(now_));
    return next;
}

bool
Gpu::drained() const
{
    if (liveGrids_ != 0 || !events_.empty())
        return false;
    for (const auto &part : partitions_)
        if (!part->dram.idle() || !part->overflow.empty())
            return false;
    for (const auto &sm : sms_)
        if (sm->hasWork())
            return false;
    return true;
}

void
Gpu::tickSmRange(std::size_t begin, std::size_t end)
{
    // Reference path: nothing reads per-core flags, only whether any
    // core issued, so fold the chunk locally and publish one bit.
    bool any = false;
    for (std::size_t i = begin; i < end; ++i)
        any |= sms_[i]->tick(now_);
    if (any)
        anySmIssued_.store(true, std::memory_order_relaxed);
}

void
Gpu::tickSmDueRange(std::size_t begin, std::size_t end)
{
    // Fast path: only cores that are due tick (collectDueSms built the
    // list from the wake heap). A core woken by its own timer (rather
    // than by wakeSmAt) is still marked skipping here; settle the bulk
    // accounting for the stretch it slept through before the tick
    // overwrites its frozen classification. Safe under the pool: each
    // lane owns its slice of distinct cores outright and
    // pendingCycles_ is frozen for the cycle.
    for (std::size_t k = begin; k < end; ++k) {
        const std::size_t i = smDue_[k];
        SmCore &sm = *sms_[i];
        if (sm.skipping())
            sm.exitSkip(now_, pendingCycles_);
        smIssued_[i] = sm.tick(now_) ? 1 : 0;
    }
}

void
Gpu::drainSmOutboxes()
{
    // SM-index order, issue order within an SM: the exact order a
    // serial cycle loop would have touched the NoC, the grid queue,
    // and the event calendar. Cascades triggered here (a completing
    // child grid freeing its parent CTA, which may complete another
    // grid) run inline because inSmPhase_ is already false. In the
    // fast path only cores in smDue_ ticked this cycle — and outboxes
    // are only written from inside the SM phase — so only those can
    // hold ops; smDue_ is ascending, preserving the scan order.
    if (ffActive_) {
        for (const std::uint32_t core : smDue_)
            drainOneOutbox(core);
        return;
    }
    for (std::size_t core = 0; core < outboxes_.size(); ++core)
        drainOneOutbox(core);
}

void
Gpu::drainOneOutbox(std::size_t core)
{
    auto &ops = outboxes_[core].ops;
    for (const SmOp &op : ops) {
        switch (op.kind) {
          case SmOp::Kind::Read:
            applyRead(int(core), op.line, now_);
            break;
          case SmOp::Kind::Write:
            applyWrite(int(core), op.line, now_);
            break;
          case SmOp::Kind::ChildLaunch: {
            GridState *grid = enqueueChildGrid(
                *op.child, int(core), op.ctaSlot, now_);
            sms_[core]->onChildGridEnqueued(op.warpSlot, grid);
            break;
          }
          case SmOp::Kind::CtaComplete:
            onGridCtaComplete(*op.grid, int(core), now_);
            break;
        }
    }
    ops.clear();
}

void
Gpu::runUntilDrained()
{
    runUntil(~Cycles(0), false);
}

void
Gpu::runUntil(Cycles stop_at, bool stop_on_completion)
{
    // Observers (timing profiler, emission checker) are promised one
    // callback-consistent step per cycle, so their presence — like the
    // GGPU_NO_FAST_FORWARD escape hatch — forces the reference loop.
    const bool ff = cfg_.sim.resolvedFastForward() &&
                    timingObserver() == nullptr &&
                    emissionObserver() == nullptr;
    lastRunFastForward_ = ff;
    stopAt_ = stop_at;
    stopOnCompletion_ = stop_on_completion;
    streamBreakBase_ = streamCompletions_.size();
    try {
        if (ff) {
            ffActive_ = true;
            runEventDriven();
            ffActive_ = false;
        } else {
            runPerCycle();
        }
    } catch (...) {
        ffActive_ = false;
        stopAt_ = ~Cycles(0);
        stopOnCompletion_ = false;
        throw;
    }
    stopAt_ = ~Cycles(0);
    stopOnCompletion_ = false;
}

void
Gpu::wakeSmAt(std::size_t core, Cycles resume_at)
{
    SmCore &sm = *sms_[core];
    if (sm.skipping())
        sm.exitSkip(resume_at, pendingCycles_);
    if (smWakeAt_[core] > resume_at) {
        smWakeAt_[core] = resume_at;
        pushSmWake(core, resume_at);
    }
}

void
Gpu::pushSmWake(std::size_t core, Cycles at)
{
    if (at == ~Cycles(0))
        return;  // "never": prior entries surface as stale and drop
    smWakeHeap_.emplace_back(at, std::uint32_t(core));
    std::push_heap(smWakeHeap_.begin(), smWakeHeap_.end(),
                   std::greater<>());
}

void
Gpu::collectDueSms()
{
    smDue_.clear();
    while (!smWakeHeap_.empty() && smWakeHeap_.front().first <= now_) {
        const std::uint32_t core = smWakeHeap_.front().second;
        std::pop_heap(smWakeHeap_.begin(), smWakeHeap_.end(),
                      std::greater<>());
        smWakeHeap_.pop_back();
        // Stale entry: the core was re-armed to a later cycle after
        // this entry was pushed (its live value has its own entry).
        if (smWakeAt_[core] > now_)
            continue;
        smDue_.push_back(core);
    }
    // Core-index order: the SM phase's lane split and the outbox drain
    // must see the same ordering a full scan would have produced. A
    // core can surface more than once (wakeSmAt lowering an armed
    // timer leaves both entries due); collapse duplicates.
    std::sort(smDue_.begin(), smDue_.end());
    smDue_.erase(std::unique(smDue_.begin(), smDue_.end()), smDue_.end());
}

Cycles
Gpu::dramNextEvent(std::size_t partition) const
{
    // Completion-only bound: advanceTo() replays issues and overflow
    // refills across the whole window in one call, so the fast path
    // only needs to wake when a transfer can finish. After the drain
    // below, overflow is non-empty only while the queue is full, so
    // queued requests carry the bound for overflowed ones too; the
    // clamp covers the (unreachable in practice) drained-empty case.
    const Partition &part = *partitions_[partition];
    Cycles next = part.dram.nextCompletionAt(now_);
    if (!part.overflow.empty() && part.dram.queueDepth() == 0)
        next = std::min(next, now_ + 1);
    return next;
}

void
Gpu::tickDramDue()
{
    for (std::size_t p = 0; p < partitions_.size(); ++p) {
        if (dramNextAt_[p] > now_)
            continue;
        Partition &part = *partitions_[p];
        dramCompleted_.clear();
        part.dram.advanceTo(now_, dramCompleted_, &part.overflow);
        drainOverflow(part, now_);
        if (!dramCompleted_.empty())
            handleDramCompletions(int(p), dramCompleted_);
        dramNextAt_[p] = dramNextEvent(p);
    }
}

Cycles
Gpu::launchPendingUntil() const
{
    // launchPendingBound_ folds in every readyAt edge at enqueue time,
    // so a fast-forward jump no longer rescans the dispatch queue.
    // Dispatched grids left behind in the max are bounded by now_, and
    // the jump only consumes bounds strictly above now_ + 1.
    return std::max(launchReadyAt_, launchPendingBound_);
}

Cycles
Gpu::nextComponentEventAt()
{
    Cycles next = ~Cycles(0);
    if (!events_.empty())
        next = std::min(next, events_.top().time);
    next = std::min(next, dispatchNextAt_);
    for (Cycles at : dramNextAt_)
        next = std::min(next, at);
    // Soonest-waking core, from the heap instead of an every-SM scan.
    // Entries below the core's live wake time were superseded by a
    // later re-arm (the live value always has its own entry); drop
    // them as they surface so they can't trigger useless iterations.
    while (!smWakeHeap_.empty() &&
           smWakeHeap_.front().first <
               smWakeAt_[smWakeHeap_.front().second]) {
        std::pop_heap(smWakeHeap_.begin(), smWakeHeap_.end(),
                      std::greater<>());
        smWakeHeap_.pop_back();
    }
    if (!smWakeHeap_.empty())
        next = std::min(next, smWakeHeap_.front().first);
    return next;
}

void
Gpu::runEventDriven()
{
    // Every core starts asleep; dispatches, line fills, write retires,
    // and child-grid completions wake exactly the cores that can act.
    // For a run-to-completion entry every core is empty and stays
    // armed at "never" (the old behavior); a stream-mode window resume
    // instead arms every core holding work at now_ so it ticks
    // immediately and the per-cycle sleep decision takes over.
    // nextReadyTime() is NOT a safe resume bound: it reports "never"
    // for a warp whose timer already expired, assuming such a core is
    // awake this cycle — true after a tick, false for a core parked at
    // the previous window's stop edge.
    smWakeHeap_.clear();
    for (std::size_t i = 0; i < sms_.size(); ++i) {
        smWakeAt_[i] = sms_[i]->hasWork() ? now_ : ~Cycles(0);
        pushSmWake(i, smWakeAt_[i]);
        sms_[i]->enterSkip(now_, pendingCycles_);
    }
    for (std::size_t p = 0; p < partitions_.size(); ++p)
        dramNextAt_[p] = dramNextEvent(p);
    dispatchNextAt_ = ~Cycles(0);
    for (const GridState *grid : dispatchQueue_) {
        if (grid->nextCta < grid->totalCtas)
            dispatchNextAt_ = std::min(dispatchNextAt_,
                                       std::max(grid->readyAt, now_));
    }

    while (true) {
        if (now_ >= stopAt_)
            break;
        ++engineIterations_;
        processEvents();
        tickDramDue();
        if (dispatchNextAt_ <= now_)
            dispatchCtas();
        if (launchPending(now_))
            ++pendingCycles_;

        // SM phase over awake cores only (same barrier discipline as
        // the reference loop: shared state is frozen for the cycle).
        // The due list comes from the wake heap, so iterations spent
        // ferrying DRAM/NoC events don't scan every core — or pay a
        // pool dispatch — just to find them all asleep.
        collectDueSms();
        if (!smDue_.empty()) {
            inSmPhase_ = true;
            try {
                if (pool_) {
                    pool_->parallelFor(
                        smDue_.size(), [this](std::size_t begin,
                                              std::size_t end) {
                            tickSmDueRange(begin, end);
                        });
                } else {
                    tickSmDueRange(0, smDue_.size());
                }
            } catch (...) {
                inSmPhase_ = false;
                throw;
            }
            inSmPhase_ = false;
        }

        // Sleep decisions must precede the cycle barrier: a core the
        // barrier wakes for the next cycle must not be put back to
        // sleep past that wake.
        for (const std::uint32_t i : smDue_) {
            if (smIssued_[i]) {
                smWakeAt_[i] = now_ + 1;
                pushSmWake(i, now_ + 1);
            } else {
                smWakeAt_[i] = sms_[i]->nextReadyTime(now_);
                pushSmWake(i, smWakeAt_[i]);
                sms_[i]->enterSkip(now_ + 1, pendingCycles_);
            }
        }

        // Cycle barrier: replay buffered SM->device traffic serially.
        drainSmOutboxes();

        if (drained()) {
            ++now_;
            break;
        }
        // A stream kernel retired at this cycle's barrier: stop at the
        // same cycle edge run-to-completion would have, handing control
        // back to the serving driver.
        if (stopOnCompletion_ &&
            streamCompletions_.size() > streamBreakBase_) {
            ++now_;
            break;
        }

        const Cycles next = nextComponentEventAt();
        if (next == ~Cycles(0))
            panic("Gpu: deadlock — no wakeup but work remains\n",
                  pendingWorkReport());
        const Cycles target =
            std::min(std::max(next, now_ + 1), stopAt_);
        if (target > now_ + 1) {
            // Count launch-pending cycles inside the jump; sleeping
            // empty cores sample FunctionalDone off this counter. The
            // dispatch queue is frozen between serial phases, so the
            // pending window's edge is exact.
            const Cycles until = launchPendingUntil();
            if (until > now_ + 1)
                pendingCycles_ += std::min(target, until) - (now_ + 1);
        }
        now_ = target;
    }

    // Catch up cores that slept through the tail of the run.
    for (std::size_t i = 0; i < sms_.size(); ++i) {
        sms_[i]->exitSkip(now_, pendingCycles_);
        smWakeAt_[i] = ~Cycles(0);
    }
}

void
Gpu::runPerCycle()
{
    std::uint64_t idle_iterations = 0;
    while (!drained()) {
        if (now_ >= stopAt_)
            break;
        ++engineIterations_;
        bool progress = false;
        progress |= processEvents();
        progress |= tickDram();
        progress |= dispatchCtas();
        anySmIssued_.store(false, std::memory_order_relaxed);

        // SM phase: cores only read shared state frozen for the cycle
        // and write their own outboxes, so they may tick concurrently.
        inSmPhase_ = true;
        try {
            if (pool_) {
                pool_->parallelFor(
                    sms_.size(), [this](std::size_t begin,
                                        std::size_t end) {
                        tickSmRange(begin, end);
                    });
            } else {
                tickSmRange(0, sms_.size());
            }
        } catch (...) {
            inSmPhase_ = false;
            throw;
        }
        inSmPhase_ = false;

        // Cycle barrier: replay buffered SM->device traffic serially.
        drainSmOutboxes();

        progress |= anySmIssued_.load(std::memory_order_relaxed);

        // Mirror of the fast path's completion break: a stream kernel
        // that retired at this barrier stops the window at the next
        // cycle edge regardless of whether the cycle made progress.
        const bool stream_break =
            stopOnCompletion_ &&
            streamCompletions_.size() > streamBreakBase_;

        if (progress) {
            idle_iterations = 0;
            ++now_;
            if (TimingObserver *obs = timingObserver())
                profileMaybeSample(*obs);
            if (stream_break)
                break;
            continue;
        }
        if (stream_break) {
            ++now_;
            break;
        }

        const Cycles wake = nextWakeup();
        if (wake == ~Cycles(0)) {
            if (drained())
                break;
            panic("Gpu: deadlock — no wakeup but work remains\n",
                  pendingWorkReport());
        }
        const Cycles target =
            std::min(std::max(wake, now_ + 1), stopAt_);
        const Cycles skip = target - (now_ + 1);
        if (skip > 0) {
            for (auto &sm : sms_)
                sm->accountSkip(skip);
        }
        now_ = target;
        if (TimingObserver *obs = timingObserver())
            profileMaybeSample(*obs);
        if (++idle_iterations > 100000000ull)
            panic("Gpu: livelock — 100000000 wakeups without progress\n",
                  pendingWorkReport());
    }
}

std::string
Gpu::pendingWorkReport() const
{
    std::ostringstream os;
    os << "  cycle " << now_ << ": live grids " << liveGrids_
       << ", queued events " << events_.size() << ", dispatch queue "
       << dispatchQueue_.size() << " grid(s)\n";
    for (const GridState *grid : dispatchQueue_) {
        os << "    grid '" << grid->spec.name << "': dispatched "
           << grid->nextCta << "/" << grid->totalCtas << " CTAs, "
           << grid->remaining << " remaining, readyAt " << grid->readyAt;
        if (grid->totalCtas == 0)
            os << " [zero-CTA grid: will never complete]";
        os << "\n";
    }
    for (std::size_t p = 0; p < partitions_.size(); ++p) {
        const Partition &part = *partitions_[p];
        const std::size_t queued = part.dram.queueDepth();
        const std::size_t in_flight = part.dram.inFlightCount();
        if (queued == 0 && in_flight == 0 && part.overflow.empty())
            continue;
        os << "    partition " << p << ": dram queued " << queued
           << ", in flight " << in_flight << ", overflow "
           << part.overflow.size() << "\n";
    }
    bool any_sm = false;
    for (const auto &sm : sms_) {
        if (!sm->hasWork())
            continue;
        any_sm = true;
        os << sm->pendingWorkReport(now_);
    }
    if (!any_sm)
        os << "    no SM holds resident work (no stalled warps)\n";
    return os.str();
}

void
Gpu::profileMaybeSample(TimingObserver &obs)
{
    if (now_ < profileNextSampleAt_)
        return;
    profileEmitSample(obs);
    // Snap the next boundary to the first interval multiple past now_
    // (time jumps can leap several boundaries at once).
    const Cycles interval = std::max<Cycles>(1, obs.sampleInterval());
    profileNextSampleAt_ = now_ - (now_ % interval) + interval;
}

void
Gpu::profileEmitSample(TimingObserver &obs)
{
    IntervalSample &sample = profileSample_;
    sample.at = now_;
    sample.sms.resize(sms_.size());
    for (std::size_t i = 0; i < sms_.size(); ++i) {
        SmCore &sm = *sms_[i];
        SmSample &out = sample.sms[i];
        out.residentCtas = sm.residentCtaCount();
        out.residentWarps = sm.residentWarpCount();
        out.stalledWarps = sm.stalledWarpCount(now_);
        out.issueCycles = sm.issueCycles();
        out.activeCycles = sm.activeCycles();
        out.insns = 0;
        for (std::uint64_t count : sm.insnByKind())
            out.insns += count;
        out.l1Accesses = sm.l1().accesses();
        out.l1Misses = sm.l1().misses();
        const Histogram &stalls = sm.stallHist();
        for (std::size_t r = 0; r < out.stalls.size(); ++r)
            out.stalls[r] = stalls.count(r);
    }
    sample.partitions.resize(partitions_.size());
    for (std::size_t p = 0; p < partitions_.size(); ++p) {
        const Partition &part = *partitions_[p];
        PartitionSample &out = sample.partitions[p];
        out.l2Accesses = part.l2.accesses();
        out.l2Misses = part.l2.misses();
        out.dramServed = part.dram.served();
        out.dramRowHits = part.dram.rowHits();
        out.dramPinBusy = part.dram.pinBusyCycles();
        out.dramActive = part.dram.activeCycles();
    }
    sample.nocPackets = noc_.packets();
    sample.nocFlits = noc_.flits();
    sample.nocLatencySum = noc_.latencySum();
    obs.onSample(sample);
}

void
Gpu::harvestStats()
{
    for (auto &sm : sms_) {
        stats_.stalls.merge(sm->stallHist());
        stats_.warpOcc.merge(sm->occupancyHist());
        const auto &kinds = sm->insnByKind();
        for (std::size_t i = 0; i < kinds.size(); ++i)
            stats_.insnByKind[i] += kinds[i];
        const auto &spaces = sm->memBySpace();
        for (std::size_t i = 0; i < spaces.size(); ++i)
            stats_.memBySpace[i] += spaces[i];
        stats_.issueCycles += sm->issueCycles();
        stats_.smCycles += sm->activeCycles();
        stats_.l1Accesses += sm->l1().accesses();
        stats_.l1Misses += sm->l1().misses();
        sm->resetStats();
    }
    for (auto &part : partitions_) {
        stats_.l2Accesses += part->l2.accesses();
        stats_.l2Misses += part->l2.misses();
        stats_.dramServed += part->dram.served();
        stats_.dramRowHits += part->dram.rowHits();
        stats_.dramPinBusy += part->dram.pinBusyCycles();
        stats_.dramActive += part->dram.activeCycles();
        part->l2.resetStats();
        part->dram.resetStats();
    }
    stats_.nocPackets += noc_.packets();
    stats_.nocFlits += noc_.flits();
    stats_.nocLatencySum +=
        std::uint64_t(noc_.avgLatency() * double(noc_.packets()));
    noc_.resetStats();
}

LaunchResult
Gpu::launch(const LaunchSpec &spec)
{
    const KernelTrace kernel = emitGrid(spec);
    return launchTraced(kernel);
}

KernelTrace
Gpu::emitGrid(const LaunchSpec &spec)
{
    if (!spec.body)
        fatal("Gpu::emitGrid: kernel '", spec.name, "' has no body");
    if (spec.grid.count() == 0)
        fatal("Gpu::emitGrid: kernel '", spec.name,
              "' has an empty grid");
    computeOccupancy(cfg_.gpu, spec);  // fatal when a CTA cannot fit

    KernelTrace kernel;
    kernel.spec = spec;
    const std::uint64_t salt = ++gridSeq_;
    kernel.ctas.reserve(std::size_t(spec.grid.count()));
    // Pool duplicate warp op streams across the whole grid (and its
    // eagerly emitted CDP children) while this emission pass runs.
    ScopedOpStreamInterner internScope(interner_);
    for (std::uint64_t c = 0; c < spec.grid.count(); ++c) {
        kernel.ctas.push_back(
            emitCta(spec, c, mem_, cfg_.gpu.lineBytes, 0, salt));
    }
    // Each CDP child the timed replay enqueues used to consume one
    // gridSeq_ increment; skip past them so the salt sequence seen by
    // later launches is independent of when this trace gets timed.
    gridSeq_ += countChildGrids(kernel);
    return kernel;
}

LaunchResult
Gpu::launchTraced(const KernelTrace &kernel)
{
    const LaunchSpec &spec = kernel.spec;
    if (kernel.ctas.size() != spec.grid.count())
        fatal("Gpu::launchTraced: kernel '", spec.name, "' trace has ",
              kernel.ctas.size(), " CTAs for a grid of ",
              spec.grid.count());
    computeOccupancy(cfg_.gpu, spec);  // fatal when a CTA cannot fit

    const Cycles started = now_;
    launchReadyAt_ = now_ + cfg_.gpu.kernelLaunchOverhead;
    launchPendingBound_ = std::max(launchPendingBound_, launchReadyAt_);
    childGridsThisLaunch_ = 0;

    auto grid = std::make_unique<GridState>();
    grid->spec = spec;
    grid->ctaSrc = &kernel.ctas;
    grid->totalCtas = spec.grid.count();
    grid->remaining = grid->totalCtas;
    grid->profileId = ++profileGridSeq_;
    grid->readyAt = launchReadyAt_;
    GridState *raw = grid.get();
    activeGrids_.push_back(std::move(grid));
    dispatchQueue_.push_back(raw);
    ++liveGrids_;

    TimingObserver *obs = timingObserver();
    const std::uint64_t launch_id = raw->profileId;
    if (obs) {
        const Cycles interval =
            std::max<Cycles>(1, obs->sampleInterval());
        profileNextSampleAt_ = now_ - (now_ % interval) + interval;
        obs->onKernelBegin(spec, launch_id, now_);
        profileEmitSample(*obs);  // baseline: first deltas start at 0
    }

    runUntilDrained();

    LaunchResult result;
    result.cycles = now_ - started;
    result.ctas = raw->totalCtas;
    result.childGrids = childGridsThisLaunch_;
    engineCycles_ += result.cycles;

    if (obs) {
        profileEmitSample(*obs);  // final: intervals tile the kernel
        obs->onKernelEnd(launch_id, now_, result.ctas,
                         result.childGrids);
    }

    stats_.gpuCycles += result.cycles;
    stats_.launches += 1;
    harvestStats();

    activeGrids_.clear();
    noc_.resetState();
    return result;
}

void
Gpu::beginStreamMode()
{
    if (streamMode_)
        panic("Gpu::beginStreamMode: already in stream mode");
    if (!drained())
        panic("Gpu::beginStreamMode: device busy");
    streamMode_ = true;
    streamStartedAt_ = now_;
    streamLaunches_ = 0;
    streamTicketSeq_ = 0;
    streamCompletions_.clear();
    // No host launch is being set up; don't let a bound left over from
    // an earlier blocking launch classify stream cycles as pending.
    launchReadyAt_ = now_;
}

std::uint64_t
Gpu::enqueueStream(const KernelTrace &kernel, std::uint64_t ctas,
                   Cycles ready_at)
{
    if (!streamMode_)
        panic("Gpu::enqueueStream outside stream mode");
    if (ctas == 0 || kernel.ctas.empty())
        panic("Gpu::enqueueStream: empty kernel slice");
    computeOccupancy(cfg_.gpu, kernel.spec);  // fatal when CTA can't fit

    auto grid = std::make_unique<GridState>();
    grid->spec = kernel.spec;
    grid->ctaSrc = &kernel.ctas;
    // Serving batches replay a prefix of the template kernel's trace:
    // CtaTraces are independent, so a truncated grid is a valid grid.
    grid->totalCtas = std::min<std::uint64_t>(ctas, kernel.ctas.size());
    grid->remaining = grid->totalCtas;
    grid->profileId = ++profileGridSeq_;
    grid->readyAt = std::max(ready_at, now_);
    grid->streamTicket = ++streamTicketSeq_;
    launchPendingBound_ = std::max(launchPendingBound_, grid->readyAt);

    GridState *raw = grid.get();
    activeGrids_.push_back(std::move(grid));
    dispatchQueue_.push_back(raw);
    ++liveGrids_;
    ++streamLaunches_;
    return raw->streamTicket;
}

void
Gpu::advanceStreams(Cycles stop_at)
{
    if (!streamMode_)
        panic("Gpu::advanceStreams outside stream mode");
    if (stop_at == ~Cycles(0) && drained())
        panic("Gpu::advanceStreams: unbounded advance on idle device");
    const std::size_t seen = streamCompletions_.size();
    while (now_ < stop_at) {
        if (drained()) {
            // Idle gap: host time passes, the device sleeps. Neither
            // engine loop runs, so no cycles are accounted — exactly
            // what a per-cycle walk over a grid-free device would do.
            now_ = stop_at;
            break;
        }
        runUntil(stop_at, true);
        if (streamCompletions_.size() > seen)
            break;  // hand fresh completions back to the driver
    }
}

std::vector<StreamCompletion>
Gpu::takeStreamCompletions()
{
    // Prune retired stream grids so a long serve session's grid list
    // stays bounded (fully-dispatched grids already left the queue).
    std::erase_if(activeGrids_, [](const std::unique_ptr<GridState> &g) {
        return g->done && g->streamTicket != 0;
    });
    std::vector<StreamCompletion> taken;
    taken.swap(streamCompletions_);
    return taken;
}

bool
Gpu::streamIdle() const
{
    return drained() && streamCompletions_.empty();
}

void
Gpu::endStreamMode()
{
    if (!streamMode_)
        panic("Gpu::endStreamMode outside stream mode");
    if (!drained())
        panic("Gpu::endStreamMode: stream work still in flight");
    streamMode_ = false;
    const Cycles window = now_ - streamStartedAt_;
    stats_.gpuCycles += window;
    stats_.launches += streamLaunches_;
    engineCycles_ += window;
    harvestStats();
    activeGrids_.clear();
    noc_.resetState();
}

void
Gpu::flushCaches()
{
    for (auto &sm : sms_)
        sm->l1().flush();
    for (auto &part : partitions_)
        part->l2.flush();
}

void
Gpu::resetStats()
{
    stats_ = SimStats{};
}

EngineStats
Gpu::engineStats() const
{
    EngineStats engine;
    engine.cycles = engineCycles_;
    engine.iterations = engineIterations_;
    for (const auto &sm : sms_)
        engine.smTicks += sm->tickCount();
    engine.fastForward = lastRunFastForward_;
    return engine;
}

} // namespace ggpu::sim
