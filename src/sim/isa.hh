/**
 * @file
 * Trace instruction-set definitions for the Genomics-GPU simulator.
 * The emission phase turns each warp's execution into a sequence of
 * TraceOps; the timing phase replays them through the SM pipeline
 * model. Op kinds and memory spaces match the categories the paper
 * reports in its instruction-mix (Fig 8) and memory-mix (Fig 9)
 * breakdowns.
 */

#ifndef GGPU_SIM_ISA_HH
#define GGPU_SIM_ISA_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace ggpu::sim
{

/** Dynamic instruction classes (Fig 8 categories). */
enum class OpKind : std::uint8_t
{
    IntAlu,       //!< Integer arithmetic/logic
    FpAlu,        //!< Floating-point arithmetic
    Sfu,          //!< Special-function unit (exp, log, rcp, ...)
    Load,         //!< Memory read (space in TraceOp::space)
    Store,        //!< Memory write
    Branch,       //!< Control-flow instruction (divergence point)
    Barrier,      //!< CTA-wide __syncthreads()
    ChildLaunch,  //!< CDP device-side kernel launch
    DeviceSync,   //!< CDP cudaDeviceSynchronize (wait for children)
    Exit,         //!< Warp termination
    NumKinds
};

/** Memory spaces (Fig 9 categories). */
enum class MemSpace : std::uint8_t
{
    Global,
    Shared,
    Local,
    Const,
    Tex,
    Param,
    NumSpaces
};

/** Whether ops of @p space travel off-core (through L1/NoC/L2/DRAM). */
constexpr bool
isOffCore(MemSpace space)
{
    return space == MemSpace::Global || space == MemSpace::Local ||
           space == MemSpace::Tex;
}

std::string toString(OpKind kind);
std::string toString(MemSpace space);

/**
 * One warp-level trace instruction.
 *
 * @c repeat folds runs of identical back-to-back ALU ops into one entry;
 * the timing model charges one issue cycle per repeat and the stat
 * layer counts repeat dynamic instructions.
 */
struct TraceOp
{
    OpKind kind = OpKind::IntAlu;
    MemSpace space = MemSpace::Global;
    std::uint16_t repeat = 1;
    LaneMask mask = fullMask;
    /** Trace index of the newest load this op consumes, or -1. The warp
     *  may not issue this op while any load at index <= dep is
     *  outstanding (in-order scoreboard approximation). */
    std::int32_t dep = -1;
    /** [txBegin, txBegin+txCount) indexes WarpTrace::transactions. */
    std::uint32_t txBegin = 0;
    std::uint16_t txCount = 0;
    /** Bytes accessed per active lane (memory ops). */
    std::uint16_t bytesPerLane = 0;
    /** ChildLaunch: index into CtaTrace::children. */
    std::uint32_t child = 0;

    /** Exact equality (checker zero-perturbation differential test). */
    bool operator==(const TraceOp &other) const = default;
};

} // namespace ggpu::sim

#endif // GGPU_SIM_ISA_HH
