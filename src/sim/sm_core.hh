/**
 * @file
 * Streaming-multiprocessor timing model: warp slots, per-cycle issue
 * through a pluggable warp scheduler, an L1 cache with MSHR-style miss
 * merging, CTA resource accounting, barrier and CDP synchronization,
 * and the Fig 5 stall-reason classifier.
 */

#ifndef GGPU_SIM_SM_CORE_HH
#define GGPU_SIM_SM_CORE_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "mem/cache.hh"
#include "sim/grid.hh"
#include "sim/scheduler.hh"
#include "sim/stall.hh"
#include "sim/trace.hh"

namespace ggpu::sim
{

class Gpu;

/** One SM core. */
class SmCore
{
  public:
    SmCore(const GpuConfig &cfg, int core_id, Gpu *gpu);

    /** Whether a CTA of @p spec fits in the currently free resources. */
    bool canFit(const LaunchSpec &spec) const;

    /** Place one CTA of @p grid. @p trace is a pre-emitted trace the
     *  core only reads (it may be shared with concurrent replays). */
    void dispatchCta(GridState &grid, const CtaTrace &trace, Cycles now);

    /** Advance one cycle; returns true when any warp issued. */
    bool tick(Cycles now);

    /** Re-apply the last cycle's stall classification for @p n skipped
     *  cycles (used by the time-jump fast path). */
    void accountSkip(Cycles n);

    bool hasWork() const { return residentCtas_ > 0; }

    /** Earliest future cycle a warp becomes ready by timer alone
     *  (UINT64_MAX when all waits are event-driven). */
    Cycles nextReadyTime(Cycles now) const;

    // ---- Event-driven fast-forward (docs/PARALLEL_ENGINE.md) ------
    // The engine stops ticking a core that cannot issue and replays
    // the skipped stretch in bulk on wake. While skipping, the core's
    // state is frozen: the engine must exitSkip() before any
    // state-mutating callback (onLineFill, dispatchCta, ...) or tick.

    /** Stop per-cycle ticking: cycles from @p first_skipped onward are
     *  accounted in bulk at exitSkip(). @p pending_cycles is the
     *  engine's cumulative launch-pending cycle count (empty cores
     *  sample FunctionalDone exactly on launch-pending cycles). */
    void enterSkip(Cycles first_skipped, std::uint64_t pending_cycles);

    /** Catch up accounting for [first_skipped, resume_at): resident
     *  cores repeat the frozen stall classification, empty cores add
     *  the launch-pending delta as FunctionalDone samples. No-op when
     *  the core is not skipping. */
    void exitSkip(Cycles resume_at, std::uint64_t pending_cycles);

    bool skipping() const { return skipping_; }

    /** tick() calls served by this core (engine instrumentation). */
    std::uint64_t tickCount() const { return tickCount_; }

    /** A missed line returned from L2/DRAM. */
    void onLineFill(Addr line, Cycles now);
    /** An off-core store fully retired. */
    void onWriteRetired();
    /** A child grid launched from CTA @p cta_slot completed. */
    void onChildGridDone(int cta_slot, Cycles now);
    /** The child grid posted by warp @p warp_slot is now queued (cycle
     *  barrier callback; the warp tracks it for deviceSync). */
    void onChildGridEnqueued(int warp_slot, GridState *grid);

    /** Per-warp stall forensics appended to deadlock/livelock panics. */
    std::string pendingWorkReport(Cycles now) const;

    int coreId() const { return coreId_; }
    mem::Cache &l1() { return l1_; }

    // ------------------------------------------------------- stats
    const Histogram &stallHist() const { return stallHist_; }
    const Histogram &occupancyHist() const { return occHist_; }
    const std::array<std::uint64_t,
                     std::size_t(OpKind::NumKinds)> &insnByKind() const
    {
        return insnByKind_;
    }
    const std::array<std::uint64_t,
                     std::size_t(MemSpace::NumSpaces)> &memBySpace() const
    {
        return memBySpace_;
    }
    std::uint64_t issueCycles() const { return issueCycles_.value(); }
    std::uint64_t activeCycles() const { return activeCycles_.value(); }

    // Instantaneous occupancy snapshots for the timing profiler.
    std::uint32_t residentCtaCount() const
    {
        return std::uint32_t(residentCtas_);
    }
    /** Valid, unfinished warp slots. */
    std::uint32_t residentWarpCount() const;
    /** Resident warps that cannot issue at @p now. */
    std::uint32_t stalledWarpCount(Cycles now) const;

    void resetStats();

  private:
    struct OutstandingLoad
    {
        std::int32_t opIdx = -1;
        std::uint16_t remaining = 0;  //!< Pending line fills
        Cycles doneAt = 0;            //!< Valid once remaining == 0
    };

    /**
     * Cold per-warp state. The fields the per-cycle issue scan reads
     * every cycle (valid/finished/atBarrier flags, readyAt timer,
     * busy reason) live in packed structure-of-arrays form — bitmasks
     * and parallel arrays — so the scan touches a handful of cache
     * lines instead of one ~100-byte slot per warp.
     */
    struct WarpSlot
    {
        const WarpTrace *trace = nullptr;
        std::uint32_t pc = 0;
        int ctaSlot = -1;
        std::vector<OutstandingLoad> outstanding;
        std::vector<GridState *> children;
    };

    struct CtaSlot
    {
        bool valid = false;
        const CtaTrace *trace = nullptr;
        GridState *grid = nullptr;
        std::uint32_t activeWarps = 0;   //!< Unfinished warps
        std::uint32_t barrierArrived = 0;
        std::uint32_t pendingChildGrids = 0;
        std::vector<int> warpSlots;
        // Resources held (released at completion).
        std::uint32_t regs = 0;
        std::uint32_t threads = 0;
        std::uint32_t smem = 0;
    };

    /** Whether warp slot @p idx can issue at @p now; sets @p reason
     *  otherwise. */
    bool issuable(std::size_t idx, Cycles now, StallReason &reason) const;
    /** True when no load with index <= dep is still outstanding. */
    bool depSatisfied(const WarpSlot &slot, std::int32_t dep,
                      Cycles now) const;
    void issue(int slot_idx, Cycles now);
    void issueMemOp(int slot_idx, const TraceOp &op, Cycles now);
    void finishWarp(int slot_idx, Cycles now);
    void maybeFreeCta(int cta_slot, Cycles now);
    void releaseBarrier(CtaSlot &cta, Cycles now);
    StallReason classify(Cycles now) const;

    const GpuConfig &cfg_;
    int coreId_;
    Gpu *gpu_;

    mem::Cache l1_;
    WarpScheduler scheduler_;

    std::vector<WarpSlot> warps_;
    std::vector<CtaSlot> ctas_;
    std::vector<std::uint64_t> warpAge_;
    std::uint64_t ageStamp_ = 0;
    int residentCtas_ = 0;

    // Hot per-warp scheduler/scoreboard state, SoA-packed (bit i of a
    // mask / element i of an array belongs to warp slot i; the
    // 64-entry scoreboard bound is enforced by WarpScheduler).
    std::uint64_t validMask_ = 0;
    std::uint64_t finishedMask_ = 0;
    std::uint64_t barrierMask_ = 0;
    std::vector<Cycles> warpReadyAt_;
    std::vector<StallReason> warpBusyReason_;

    // Free resources.
    std::uint32_t freeRegs_;
    std::uint32_t freeThreads_;
    std::uint32_t freeSmem_;
    std::uint32_t freeCtaSlots_;
    std::uint32_t freeWarpSlots_;

    // Miss handling.
    std::unordered_map<Addr, std::vector<std::pair<int, std::int32_t>>>
        mshr_;  //!< line -> (warp slot, load op idx) waiters
    std::uint32_t mshrEntries_;
    std::uint32_t outstandingWrites_ = 0;
    std::uint32_t storeQueueDepth_;

    // Stats.
    Histogram stallHist_;
    Histogram occHist_;
    std::array<std::uint64_t, std::size_t(OpKind::NumKinds)> insnByKind_{};
    std::array<std::uint64_t, std::size_t(MemSpace::NumSpaces)>
        memBySpace_{};
    Counter issueCycles_;
    Counter activeCycles_;
    StallReason lastStall_ = StallReason::Idle;

    // Fast-forward bookkeeping (see enterSkip/exitSkip).
    bool skipping_ = false;
    Cycles skipFirst_ = 0;          //!< First cycle not ticked
    std::uint64_t skipPendingBase_ = 0;
    std::uint64_t tickCount_ = 0;
};

} // namespace ggpu::sim

#endif // GGPU_SIM_SM_CORE_HH
