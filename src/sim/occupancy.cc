#include "sim/occupancy.hh"

#include <algorithm>

#include "common/log.hh"

namespace ggpu::sim
{

Occupancy
computeOccupancy(const GpuConfig &cfg, const LaunchSpec &spec)
{
    const std::uint32_t threads_per_cta = std::uint32_t(spec.cta.count());
    if (threads_per_cta == 0)
        fatal("occupancy: kernel '", spec.name, "' has an empty CTA");

    const std::uint32_t regs_per_cta =
        spec.res.regsPerThread * threads_per_cta;

    Occupancy occ;
    occ.ctasPerCore = cfg.maxCtasPerCore;
    occ.limiter = Occupancy::Limit::CtaSlots;

    const std::uint32_t by_threads = cfg.maxThreadsPerCore / threads_per_cta;
    if (by_threads < occ.ctasPerCore) {
        occ.ctasPerCore = by_threads;
        occ.limiter = Occupancy::Limit::Threads;
    }

    if (regs_per_cta > 0) {
        const std::uint32_t by_regs = cfg.registersPerCore / regs_per_cta;
        if (by_regs < occ.ctasPerCore) {
            occ.ctasPerCore = by_regs;
            occ.limiter = Occupancy::Limit::Registers;
        }
    }

    if (spec.res.smemPerCtaBytes > 0) {
        const std::uint32_t by_smem =
            cfg.sharedMemPerCoreBytes / spec.res.smemPerCtaBytes;
        if (by_smem < occ.ctasPerCore) {
            occ.ctasPerCore = by_smem;
            occ.limiter = Occupancy::Limit::SharedMem;
        }
    }

    // The warp-slot ceiling is part of the thread limit in hardware.
    const std::uint32_t warps_per_cta = spec.warpsPerCta();
    const std::uint32_t by_warps =
        std::uint32_t(cfg.maxWarpsPerCore) / warps_per_cta;
    if (by_warps < occ.ctasPerCore) {
        occ.ctasPerCore = by_warps;
        occ.limiter = Occupancy::Limit::Threads;
    }

    if (occ.ctasPerCore == 0)
        fatal("occupancy: kernel '", spec.name,
              "' cannot fit a single CTA per core (",
              threads_per_cta, " threads, ", spec.res.regsPerThread,
              " regs/thread, ", spec.res.smemPerCtaBytes, "B smem)");

    const double n = occ.ctasPerCore;
    occ.registerUtilization =
        std::min(1.0, n * regs_per_cta / double(cfg.registersPerCore));
    occ.sharedMemUtilization = cfg.sharedMemPerCoreBytes == 0 ? 0.0
        : std::min(1.0, n * spec.res.smemPerCtaBytes /
                            double(cfg.sharedMemPerCoreBytes));
    occ.constMemUtilization = cfg.constMemBytes == 0 ? 0.0
        : std::min(1.0, double(spec.res.constBytes) /
                            double(cfg.constMemBytes));
    return occ;
}

std::string
toString(Occupancy::Limit limit)
{
    switch (limit) {
      case Occupancy::Limit::CtaSlots: return "cta-slots";
      case Occupancy::Limit::Threads: return "threads";
      case Occupancy::Limit::Registers: return "registers";
      case Occupancy::Limit::SharedMem: return "shared-memory";
    }
    return "unknown";
}

} // namespace ggpu::sim
