/**
 * @file
 * Runtime state of one grid (host-launched kernel or CDP child) as it
 * is dispatched CTA-by-CTA onto the SM array.
 */

#ifndef GGPU_SIM_GRID_HH
#define GGPU_SIM_GRID_HH

#include <cstdint>

#include "common/types.hh"
#include "sim/trace.hh"

namespace ggpu::sim
{

/** Dispatch/completion bookkeeping for an in-flight grid. */
struct GridState
{
    LaunchSpec spec;
    /**
     * Pre-emitted CTA traces this grid dispatches from (a KernelTrace
     * for host launches, the parent trace's ChildGrid for CDP grids).
     * The timing phase never mutates them, so the same source can be
     * replayed by any number of runs.
     */
    const std::vector<CtaTrace> *ctaSrc = nullptr;

    std::uint64_t totalCtas = 0;
    std::uint64_t nextCta = 0;    //!< Next CTA linear index to dispatch
    /** Device-unique id assigned at enqueue; identifies this grid in
     *  timing-observer events (sim/profile_hooks). */
    std::uint64_t profileId = 0;
    std::uint64_t remaining = 0;  //!< CTAs not yet completed
    Cycles readyAt = 0;           //!< Dispatchable once now >= readyAt
    bool done = false;
    int depth = 0;                //!< CDP nesting depth (0 = host)

    /** Stream-mode serve ticket (Gpu::enqueueStream). 0 for host and
     *  CDP grids; nonzero grids report their completion through
     *  Gpu::takeStreamCompletions instead of a blocking launch. */
    std::uint64_t streamTicket = 0;

    /** Parent CTA holding this child grid (resource-release ordering). */
    int parentCore = -1;
    int parentCtaSlot = -1;
};

} // namespace ggpu::sim

#endif // GGPU_SIM_GRID_HH
