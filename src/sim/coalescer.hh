/**
 * @file
 * Memory-access coalescer: collapses the per-lane byte addresses of a
 * warp memory instruction into the minimal set of cache-line
 * transactions, exactly as the hardware LSU does. The transaction
 * count is what the timing model charges L1/NoC/DRAM for.
 */

#ifndef GGPU_SIM_COALESCER_HH
#define GGPU_SIM_COALESCER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ggpu::sim
{

/** Stateless coalescing helper parameterized by cache-line size. */
class Coalescer
{
  public:
    explicit Coalescer(std::uint32_t line_bytes);

    /**
     * Compute the unique line transactions touched by one warp access.
     *
     * @param addrs Per-lane starting byte address.
     * @param mask Active lanes.
     * @param bytes_per_lane Access width per lane (may straddle lines).
     * @param out Line-aligned transaction addresses, order preserved by
     *            first touching lane; appended to.
     * @return Number of transactions appended.
     */
    std::uint32_t coalesce(const std::array<Addr, warpSize> &addrs,
                           LaneMask mask, std::uint32_t bytes_per_lane,
                           std::vector<Addr> &out) const;

    std::uint32_t lineBytes() const { return lineBytes_; }

  private:
    std::uint32_t lineBytes_;
};

} // namespace ggpu::sim

#endif // GGPU_SIM_COALESCER_HH
