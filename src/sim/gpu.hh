/**
 * @file
 * Whole-GPU timing model: the SM array, the SM<->memory-partition
 * interconnect, sliced L2, DRAM channels, the CTA dispatcher, and the
 * CDP child-grid queue. One Gpu instance simulates one device; the
 * runtime layer (ggpu::rt) drives it with launches and memcpys.
 */

#ifndef GGPU_SIM_GPU_HH
#define GGPU_SIM_GPU_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "noc/network.hh"
#include "sim/device_memory.hh"
#include "sim/grid.hh"
#include "sim/profile_hooks.hh"
#include "sim/sm_core.hh"
#include "sim/stall.hh"
#include "sim/trace.hh"

namespace ggpu::sim
{

/** Aggregated timing statistics (accumulated across launches). */
struct SimStats
{
    Cycles gpuCycles = 0;  //!< Kernel-active cycles
    std::uint64_t launches = 0;

    std::array<std::uint64_t, std::size_t(OpKind::NumKinds)> insnByKind{};
    std::array<std::uint64_t, std::size_t(MemSpace::NumSpaces)>
        memBySpace{};
    Histogram warpOcc{warpSize};
    Histogram stalls{std::size_t(StallReason::NumReasons)};
    std::uint64_t issueCycles = 0;
    std::uint64_t smCycles = 0;  //!< Total per-SM cycles simulated

    std::uint64_t l1Accesses = 0, l1Misses = 0;
    std::uint64_t l2Accesses = 0, l2Misses = 0;
    std::uint64_t dramServed = 0, dramRowHits = 0;
    std::uint64_t dramPinBusy = 0, dramActive = 0;
    std::uint64_t nocPackets = 0, nocFlits = 0, nocLatencySum = 0;

    std::uint64_t totalInsns() const;
    double ipc() const;
    double l1MissRate() const { return ratio(l1Misses, l1Accesses); }
    double l2MissRate() const { return ratio(l2Misses, l2Accesses); }
    double dramEfficiency() const { return ratio(dramPinBusy, dramActive); }
    double dramUtilization() const { return ratio(dramPinBusy, gpuCycles); }

    void merge(const SimStats &other);

    /** Exact field-wise equality (differential determinism tests). */
    bool operator==(const SimStats &other) const = default;
};

/** Result of one kernel launch. */
struct LaunchResult
{
    Cycles cycles = 0;   //!< Wall cycles from launch call to completion
    std::uint64_t ctas = 0;
    std::uint64_t childGrids = 0;
};

/** Completion of one stream-enqueued kernel (Gpu::enqueueStream). */
struct StreamCompletion
{
    std::uint64_t ticket = 0;  //!< enqueueStream's return value
    Cycles doneAt = 0;         //!< Cycle the last CTA retired

    bool operator==(const StreamCompletion &other) const = default;
};

/**
 * Host-side engine execution counters (accumulated across launches).
 * These describe how the host simulated — not what was simulated — so
 * they live outside SimStats and never enter RunRecords: fast-forward
 * ON and OFF must stay byte-identical there.
 */
struct EngineStats
{
    std::uint64_t cycles = 0;      //!< Simulated kernel-active cycles
    std::uint64_t iterations = 0;  //!< Cycle-loop iterations executed
    std::uint64_t smTicks = 0;     //!< SmCore::tick calls served
    bool fastForward = false;      //!< Last launch used the fast path

    /** Fraction of per-SM cycle slots the engine never ticked. */
    double skippedSmTickFraction(int num_cores) const
    {
        const double slots = double(cycles) * double(num_cores);
        if (slots <= 0.0)
            return 0.0;
        const double skipped = slots - double(smTicks);
        return skipped < 0.0 ? 0.0 : skipped / slots;
    }
};

/** The simulated device. */
class Gpu
{
  public:
    explicit Gpu(const SystemConfig &cfg);
    ~Gpu();

    Gpu(const Gpu &) = delete;
    Gpu &operator=(const Gpu &) = delete;

    /** Synchronously run @p spec to completion (emits the grid's
     *  trace, then times it — equivalent to emitGrid + launchTraced). */
    LaunchResult launch(const LaunchSpec &spec);

    /**
     * Functional emission only: run every CTA of @p spec through the
     * emission front end (mutating functional device memory exactly as
     * a timed launch would) without advancing the timing model. The
     * grid-salt counter advances as a timed launch would, so a later
     * launch emits identical traces either way.
     */
    KernelTrace emitGrid(const LaunchSpec &spec);

    /**
     * Timing only: synchronously replay a pre-emitted kernel trace to
     * completion. @p kernel is not mutated and may outlive any number
     * of replays on any device with the same lineBytes.
     */
    LaunchResult launchTraced(const KernelTrace &kernel);

    DeviceMemory &mem() { return mem_; }
    const SystemConfig &config() const { return cfg_; }
    Cycles now() const { return now_; }

    /** Advance device time (PCI transfers, host compute). */
    void advance(Cycles cycles) { now_ += cycles; }

    /** Drop cache contents (locality loss across cudaMemcpy). */
    void flushCaches();

    const SimStats &stats() const { return stats_; }
    void resetStats();

    /** Engine execution counters (tick/skip bookkeeping). */
    EngineStats engineStats() const;

    /** Op-stream pool shared by every emitGrid on this device. */
    const OpStreamInterner &opInterner() const { return interner_; }

    /**
     * Multi-line forensic dump of all pending work: queued grids, in
     * flight events, per-partition DRAM state, and every stalled warp
     * with its stall reason. Attached to deadlock/livelock panics.
     */
    std::string pendingWorkReport() const;

    // ---- Interface used by SmCore (not for end users) -------------
    // During the parallel SM phase these buffer into the calling
    // core's outbox; the buffers drain in SM-index order at the cycle
    // barrier so shared-structure arbitration is deterministic.
    void sendReadRequest(int core, Addr line, Cycles now);
    void sendWriteRequest(int core, Addr line, Cycles now);
    void postChildLaunch(int core, const ChildGrid &child, int warp_slot,
                         int cta_slot, Cycles now);
    void postCtaComplete(int core, GridState &grid, Cycles now);
    bool launchPending(Cycles now) const;

    /** Directly queue a CDP grid (drain path; also used by deadlock
     *  regression tests to inject never-completing grids). */
    GridState *enqueueChildGrid(const ChildGrid &child, int parent_core,
                                int parent_cta_slot, Cycles now);

    // ---- Stream mode (serving front end; docs/SERVING.md) ---------
    // Instead of one blocking launchTraced() per kernel, a serving
    // driver opens stream mode, enqueues kernels with explicit ready
    // times as its host-side pipeline admits them, and advances
    // simulated time in bounded windows. Kernels from any number of
    // logical streams share the SM array concurrently (the driver
    // enforces intra-stream ordering by enqueueing a successor only
    // after its predecessor's completion is observed).
    /** Open stream mode. The device must be idle (between launches). */
    void beginStreamMode();
    /**
     * Enqueue a truncated replay of @p kernel — its first @p ctas CTA
     * traces — that becomes dispatchable at @p ready_at (>= now()).
     * Returns a ticket that identifies the completion. Must be called
     * outside advanceStreams (at a host sync point).
     */
    std::uint64_t enqueueStream(const KernelTrace &kernel,
                                std::uint64_t ctas, Cycles ready_at);
    /**
     * Advance simulated time to @p stop_at, or just past the cycle a
     * stream kernel completes, whichever is earlier (the early return
     * lets the driver enqueue a dependent kernel without inflating the
     * simulated gap). When the device is idle the clock jumps straight
     * to @p stop_at. Identical across engines and thread counts.
     */
    void advanceStreams(Cycles stop_at);
    /** Completions recorded since the last call, in completion order.
     *  Also prunes the retired grids' dispatch state. */
    std::vector<StreamCompletion> takeStreamCompletions();
    /** Whether no stream work is queued, running, or unreported. */
    bool streamIdle() const;
    /** Close stream mode: the device must be idle; folds the window's
     *  cycle span and per-launch counters into stats(). */
    void endStreamMode();

  private:
    struct Event
    {
        Cycles time = 0;
        std::uint64_t seq = 0;
        enum class Kind : std::uint8_t
        {
            ReqAtPartition,
            ReplyAtCore,
            WriteRetire
        } kind = Kind::ReqAtPartition;
        int node = 0;   //!< Destination (partition or core index)
        int core = 0;   //!< Requesting core (ReqAtPartition only)
        Addr line = 0;
        bool write = false;

        bool operator>(const Event &other) const
        {
            return time != other.time ? time > other.time
                                      : seq > other.seq;
        }
    };

    struct Partition
    {
        mem::Cache l2;
        mem::DramChannel dram;
        std::deque<mem::DramRequest> overflow;

        Partition(const GpuConfig &cfg, int id);
    };

    /**
     * One outbound SM->device operation recorded during the parallel
     * SM phase. Replayed at the cycle barrier in SM-index order (and,
     * within one SM, in issue order), reproducing the arbitration
     * order of a fully serial cycle loop.
     */
    struct SmOp
    {
        enum class Kind : std::uint8_t
        {
            Read,         //!< L1 miss -> NoC request to an L2 slice
            Write,        //!< Write-through store -> L2 slice
            ChildLaunch,  //!< CDP child-grid enqueue
            CtaComplete   //!< CTA drained; notify its grid
        } kind = Kind::Read;
        Addr line = 0;
        const ChildGrid *child = nullptr;
        GridState *grid = nullptr;
        int warpSlot = -1;
        int ctaSlot = -1;
    };

    /** Per-SM buffer; cache-line aligned so worker lanes never share. */
    struct alignas(64) SmOutbox
    {
        std::vector<SmOp> ops;
    };

    void onGridCtaComplete(GridState &grid, int core, Cycles now);
    void applyRead(int core, Addr line, Cycles now);
    void applyWrite(int core, Addr line, Cycles now);
    void tickSmRange(std::size_t begin, std::size_t end);
    void drainSmOutboxes();

    int partitionOf(Addr line) const;
    int nodeOfPartition(int partition) const
    {
        return cfg_.gpu.numCores + partition;
    }
    std::uint64_t encodeReq(int core, bool write, Addr line) const;
    void decodeReq(std::uint64_t req_id, int &core, bool &write,
                   Addr &line) const;

    void schedule(Event event);
    void runUntilDrained();
    /** Engine-dispatch core shared by runUntilDrained (stop bound ~0)
     *  and advanceStreams (window stop + stop-on-completion). */
    void runUntil(Cycles stop_at, bool stop_on_completion);
    void runPerCycle();
    void runEventDriven();
    bool processEvents();
    bool tickDram();
    bool dispatchCtas();
    // ---- Event-driven fast-forward helpers (docs/PARALLEL_ENGINE.md)
    /** Wake a skipping core so it ticks from @p resume_at onward,
     *  catching up its bulk accounting first. */
    void wakeSmAt(std::size_t core, Cycles resume_at);
    /** Advance only memory partitions whose cached completion bound is
     *  due, jumping each across its busy window in one advanceTo(). */
    void tickDramDue();
    Cycles dramNextEvent(std::size_t partition) const;
    /** Record a wake time in the lazy min-heap mirror of smWakeAt_. */
    void pushSmWake(std::size_t core, Cycles at);
    /** Collect cores due this cycle (smWakeAt_ <= now_) into smDue_,
     *  ascending, consuming their heap entries. */
    void collectDueSms();
    /** Tick the smDue_[begin, end) slice (fast path's SM phase). */
    void tickSmDueRange(std::size_t begin, std::size_t end);
    /** Replay one core's buffered SM->device ops (cycle barrier). */
    void drainOneOutbox(std::size_t core);
    /** Earliest cycle at which any component can act (lower bound).
     *  Non-const: prunes stale smWakeHeap_ entries as a side effect. */
    Cycles nextComponentEventAt();
    /** First cycle from which launchPending() stays false (the queue
     *  frozen as of now; exact during a jump: grids only leave the
     *  queue in the serial dispatch phase). */
    Cycles launchPendingUntil() const;
    void handlePartitionRequest(int partition, int core, Addr line,
                                bool write, Cycles now);
    void handleDramCompletions(int partition,
                               const std::vector<mem::DramCompletion> &
                                   completed);
    void drainOverflow(Partition &part, Cycles now);
    void harvestStats();
    Cycles nextWakeup() const;
    bool drained() const;

    // Timing-profiler support (sim/profile_hooks). Only touched when
    // an observer is installed; detached runs pay one thread-local
    // null check per cycle-loop iteration.
    void profileMaybeSample(TimingObserver &obs);
    void profileEmitSample(TimingObserver &obs);

    SystemConfig cfg_;
    DeviceMemory mem_;
    noc::Network noc_;
    std::vector<std::unique_ptr<SmCore>> sms_;
    std::vector<std::unique_ptr<Partition>> partitions_;

    // Parallel cycle engine (null pool when sim.threads resolves to 1).
    std::unique_ptr<ThreadPool> pool_;
    std::vector<SmOutbox> outboxes_;
    std::vector<std::uint8_t> smIssued_;
    /** Whether any SM issued this cycle (reference loop). Set once per
     *  worker chunk instead of writing per-core flag bytes that the
     *  serial phase would rescan. */
    std::atomic<bool> anySmIssued_{false};
    bool inSmPhase_ = false;

    /** Scratch for DramChannel::tick completions, reused across the
     *  three (serial-phase, non-reentrant) tick sites so the hot loop
     *  stops allocating a vector per partition per cycle. */
    std::vector<mem::DramCompletion> dramCompleted_;

    // Event-driven fast-forward state (valid while ffActive_). A core
    // with smWakeAt_[i] > now_ is asleep: its accounting is caught up
    // in bulk by wakeSmAt()/exitSkip() before it is touched again.
    bool ffActive_ = false;
    std::vector<Cycles> smWakeAt_;
    /** Lazy min-heap over smWakeAt_ writes: every assignment pushes a
     *  (wake, core) pair, so the fast-forward loop finds due and
     *  soonest-waking cores without scanning every SM per iteration.
     *  Superseded entries (wake < smWakeAt_[core]) are dropped when
     *  they surface; an entry equal to the live value always exists. */
    std::vector<std::pair<Cycles, std::uint32_t>> smWakeHeap_;
    std::vector<std::uint32_t> smDue_;  //!< Cores awake this iteration
    std::vector<Cycles> dramNextAt_;   //!< Cached per-partition bound
    Cycles dispatchNextAt_ = 0;        //!< Next useful dispatchCtas()
    /** Cumulative count of simulated cycles with launchPending() true
     *  (drives empty-core FunctionalDone accounting across skips). */
    std::uint64_t pendingCycles_ = 0;

    // Engine instrumentation (outside SimStats; see EngineStats).
    std::uint64_t engineCycles_ = 0;
    std::uint64_t engineIterations_ = 0;
    bool lastRunFastForward_ = false;

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events_;
    std::uint64_t eventSeq_ = 0;

    /** Canonical op-stream pool; installed thread-locally during
     *  emitGrid so every CTA of every launch dedups against it. */
    OpStreamInterner interner_;

    std::vector<std::unique_ptr<GridState>> activeGrids_;
    std::deque<GridState *> dispatchQueue_;
    /** Emission-salt counter: advanced only by emitGrid, by one per
     *  grid (host or CDP child) the emitted trace will enqueue. */
    std::uint64_t gridSeq_ = 0;
    std::uint64_t liveGrids_ = 0;
    std::uint64_t childGridsThisLaunch_ = 0;
    bool cdpRuntimeInitialized_ = false;

    // Stream-mode state (valid while streamMode_). The engine loops
    // honor stopAt_/stopOnCompletion_ in every mode; outside stream
    // mode they are ~0/false, reproducing run-to-completion exactly.
    bool streamMode_ = false;
    Cycles stopAt_ = ~Cycles(0);      //!< Engine window stop (exclusive)
    bool stopOnCompletion_ = false;   //!< Break after a stream grid ends
    std::uint64_t streamTicketSeq_ = 0;
    std::uint64_t streamLaunches_ = 0;  //!< Enqueues this stream session
    Cycles streamStartedAt_ = 0;        //!< now() at beginStreamMode
    std::vector<StreamCompletion> streamCompletions_;
    /** streamCompletions_ size at runUntil entry: the loops break only
     *  on completions recorded inside the current window. */
    std::size_t streamBreakBase_ = 0;

    Cycles now_ = 0;
    Cycles launchReadyAt_ = 0;
    /** Running max of every launch-pending edge (launchReadyAt_ and
     *  each enqueued grid's readyAt) — the O(1) answer to
     *  launchPendingUntil(). Stale entries (dispatched grids) are
     *  harmless: a grid leaves the queue only once now_ passed its
     *  readyAt, and callers ignore bounds at or below now_ + 1. */
    Cycles launchPendingBound_ = 0;
    int dispatchCursor_ = 0;

    /** Monotonic GridState::profileId source (host + CDP grids). */
    std::uint64_t profileGridSeq_ = 0;
    Cycles profileNextSampleAt_ = 0;
    IntervalSample profileSample_;  //!< Reused snapshot buffer

    SimStats stats_;
};

} // namespace ggpu::sim

#endif // GGPU_SIM_GPU_HH
