/**
 * @file
 * Pipeline-stall taxonomy matching the paper's Fig 5 breakdown: long
 * memory latency, control hazards, pipeline idle, synchronization,
 * data hazards, structural hazards, and "functional done" (cores
 * waiting for the next kernel to be set up).
 */

#ifndef GGPU_SIM_STALL_HH
#define GGPU_SIM_STALL_HH

#include <cstdint>
#include <string>

namespace ggpu::sim
{

enum class StallReason : std::uint8_t
{
    None,            //!< Issued this cycle (not a stall)
    MemLatency,      //!< All candidate warps waiting on memory data
    ControlHazard,   //!< Branch-resolution bubbles
    Sync,            //!< Barrier or CDP device-sync waits
    DataHazard,      //!< In-pipeline result not ready (non-memory)
    Structural,      //!< MSHR/store-queue full, exec unit busy
    FunctionalDone,  //!< Core idle while a kernel launch is being set up
    Idle,            //!< No work assigned to the core
    NumReasons
};

std::string toString(StallReason reason);

} // namespace ggpu::sim

#endif // GGPU_SIM_STALL_HH
