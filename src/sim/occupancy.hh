/**
 * @file
 * CTA occupancy calculator: how many CTAs of a kernel fit on one SM
 * given the Table I per-core resource limits (registers, threads,
 * CTA slots, shared memory). Also reports per-resource SRAM
 * utilization for Fig 6.
 */

#ifndef GGPU_SIM_OCCUPANCY_HH
#define GGPU_SIM_OCCUPANCY_HH

#include "common/config.hh"
#include "sim/trace.hh"

namespace ggpu::sim
{

/** Result of an occupancy computation. */
struct Occupancy
{
    std::uint32_t ctasPerCore = 0;
    /** Which resource capped the result. */
    enum class Limit { CtaSlots, Threads, Registers, SharedMem } limiter =
        Limit::CtaSlots;

    // Fractions of each SRAM structure used at full occupancy (Fig 6).
    double registerUtilization = 0.0;
    double sharedMemUtilization = 0.0;
    double constMemUtilization = 0.0;
};

/**
 * Compute how many CTAs of @p spec run concurrently per SM.
 * Throws FatalError when even a single CTA does not fit.
 */
Occupancy computeOccupancy(const GpuConfig &cfg, const LaunchSpec &spec);

/** Human-readable limiter name. */
std::string toString(Occupancy::Limit limit);

} // namespace ggpu::sim

#endif // GGPU_SIM_OCCUPANCY_HH
