/**
 * @file
 * Warp-synchronous emission API. Kernel bodies execute real C++ code
 * over 32-lane LaneArray values; every arithmetic operation, memory
 * access, vote, and CDP launch simultaneously (a) computes the
 * functional result and (b) appends a TraceOp to the warp's trace with
 * the current SIMT active mask. This mirrors how Accel-Sim couples a
 * functional front end to a timing back end.
 */

#ifndef GGPU_SIM_WARP_CTX_HH
#define GGPU_SIM_WARP_CTX_HH

#include <array>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "sim/check_hooks.hh"
#include "sim/coalescer.hh"
#include "sim/device_memory.hh"
#include "sim/trace.hh"

namespace ggpu::sim
{

class WarpCtx;

/** 32-lane SIMD register value carried through kernel code. */
template <typename T>
struct LaneArray
{
    std::array<T, warpSize> v{};
    WarpCtx *ctx = nullptr;
    /** Trace index of the load that produced this value, or -1. */
    std::int32_t dep = -1;

    T &operator[](int lane) { return v[std::size_t(lane)]; }
    const T &operator[](int lane) const { return v[std::size_t(lane)]; }
};

namespace detail
{

inline std::int32_t
mergeDep(std::int32_t a, std::int32_t b)
{
    return a > b ? a : b;
}

} // namespace detail

/**
 * Per-warp emission context handed to KernelBody::runPhase. One
 * instance exists per (CTA, warp) and persists across phases so that
 * kernels can keep per-warp state via state<T>().
 */
class WarpCtx
{
  public:
    // ------------------------------------------------------ identity
    const LaunchSpec &spec() const { return *spec_; }
    Dim3 ctaDim() const { return spec_->cta; }
    Dim3 gridDim() const { return spec_->grid; }
    std::uint64_t ctaLinear() const { return ctaLinear_; }
    int warpInCta() const { return warpInCta_; }
    /** Barrier-interval (phase) currently being emitted. */
    int phase() const { return phase_; }
    /** Threads in this CTA (linearized). */
    std::uint32_t ctaThreads() const
    {
        return std::uint32_t(spec_->cta.count());
    }
    /** Active lanes of this warp before any divergence. */
    LaneMask baseMask() const { return baseMask_; }
    LaneMask activeMask() const { return maskStack_.back(); }
    bool laneActive(int lane) const
    {
        return (activeMask() >> lane) & 1u;
    }

    /** Lane index 0..31 (free; no instruction emitted). */
    LaneArray<std::uint32_t> laneId();
    /** Linear thread index within the CTA (free). */
    LaneArray<std::uint32_t> tid();
    /** Linear thread index within the grid (free). */
    LaneArray<std::uint32_t> globalTid();
    /** Broadcast a scalar to all lanes (free). */
    template <typename T> LaneArray<T> broadcast(T value);
    /** Per-lane values start + laneId * step (free). */
    LaneArray<std::uint32_t> iota(std::uint32_t start = 0,
                                  std::uint32_t step = 1);
    /** Build a LaneArray from a per-lane generator (free). */
    template <typename T, typename Fn> LaneArray<T> make(Fn &&fn);

    // ----------------------------------------------- compute emission
    /** Emit @p n integer-ALU instructions. */
    void emitInt(std::uint32_t n = 1, std::int32_t dep = -1);
    /** Emit @p n floating-point instructions. */
    void emitFp(std::uint32_t n = 1, std::int32_t dep = -1);
    /** Emit @p n special-function-unit instructions. */
    void emitSfu(std::uint32_t n = 1, std::int32_t dep = -1);

    // --------------------------------------------------- memory: typed
    /** Gather from global memory: base + index * sizeof(T). */
    template <typename T>
    LaneArray<T> loadGlobal(Addr base, const LaneArray<std::uint32_t> &idx);
    /** Warp-uniform global load (single transaction). */
    template <typename T> LaneArray<T> loadGlobalUniform(Addr addr);
    /** Scatter to global memory. */
    template <typename T>
    void storeGlobal(Addr base, const LaneArray<std::uint32_t> &idx,
                     const LaneArray<T> &value);
    /** Gather through the texture path (read-only). */
    template <typename T>
    LaneArray<T> loadTex(Addr base, const LaneArray<std::uint32_t> &idx);

    /** Shared-memory gather; offsets are byte offsets of element 0. */
    template <typename T>
    LaneArray<T> loadShared(std::uint32_t base_offset,
                            const LaneArray<std::uint32_t> &idx);
    template <typename T>
    void storeShared(std::uint32_t base_offset,
                     const LaneArray<std::uint32_t> &idx,
                     const LaneArray<T> &value);

    // ----------------------------------------- memory: emission-only
    /** Constant-cache read (value supplied by kernel code). */
    std::int32_t constRead(std::uint32_t count = 1,
                           std::uint16_t bytes_per_lane = 4);
    /** Per-thread local-memory access at logical slot @p slot. */
    std::int32_t localAccess(bool write, std::uint32_t slot,
                             std::uint16_t bytes_per_lane = 4,
                             std::int32_t dep = -1);

    /** Emit-only shared-memory access (kernel manages the values). */
    std::int32_t sharedNote(bool write, std::uint16_t bytes_per_lane = 4,
                            std::int32_t dep = -1);

    /**
     * Emit-only off-core access with real per-lane addresses (base +
     * idx * bytes_per_lane), coalesced into line transactions. Use for
     * scratch traffic whose values the kernel tracks itself.
     */
    std::int32_t memNote(bool write, MemSpace space, Addr base,
                         const LaneArray<std::uint32_t> &idx,
                         std::uint16_t bytes_per_lane,
                         std::int32_t dep = -1);

    /** Attach a load-dependency token to a kernel-managed value. */
    template <typename T>
    void
    attachDep(LaneArray<T> &value, std::int32_t token)
    {
        value.dep = detail::mergeDep(value.dep, token);
    }

    // ------------------------------------------------- control flow
    /** Warp vote: mask of active lanes whose predicate is true. */
    LaneMask ballot(const LaneArray<bool> &pred);
    /** Emit a branch and run @p fn with the mask narrowed to @p mask. */
    template <typename Fn> void ifMask(LaneMask mask, Fn &&fn);
    /** Emit a branch op only (hand-managed divergence loops). */
    void branchPoint(std::int32_t dep = -1);
    void pushMask(LaneMask mask);
    void popMask();

    /** Butterfly-shuffle max-reduction (5 ops); result in all lanes. */
    LaneArray<std::int32_t> reduceMax(const LaneArray<std::int32_t> &value);
    LaneArray<float> reduceSum(const LaneArray<float> &value);

    // ------------------------------------------------------ CDP
    /** Launch a child grid (CUDA Dynamic Parallelism). */
    void launchChild(const LaunchSpec &child);
    /** Wait for all children launched by this warp (device sync). */
    void deviceSync();

    // --------------------------------------------------- warp state
    /** Per-warp state persisting across phases of one CTA. */
    template <typename T>
    T &
    state()
    {
        if (!*statePtr_)
            *statePtr_ = std::make_shared<T>();
        return *std::static_pointer_cast<T>(*statePtr_);
    }

    DeviceMemory &mem() { return *mem_; }

    /** Raw op append (used by operators; kernels rarely need it). */
    std::int32_t emitOp(TraceOp op);

  private:
    friend CtaTrace emitCta(const LaunchSpec &, std::uint64_t,
                            DeviceMemory &, std::uint32_t, int,
                            std::uint64_t);

    template <typename T>
    LaneArray<T> gatherOffCore(MemSpace space, Addr base,
                               const LaneArray<std::uint32_t> &idx);

    std::int32_t emitMemOp(OpKind kind, MemSpace space,
                           const std::array<Addr, warpSize> &addrs,
                           std::uint16_t bytes_per_lane, std::int32_t dep);

    /** Report a memory instruction to the installed checker. */
    void noteAccess(bool write, MemSpace space,
                    const std::array<Addr, warpSize> &addrs,
                    std::uint16_t bytes_per_lane, std::int32_t op_index);

    const LaunchSpec *spec_ = nullptr;
    std::uint64_t ctaLinear_ = 0;
    int warpInCta_ = 0;
    int phase_ = 0;
    std::uint64_t gridSalt_ = 0;
    int nestDepth_ = 0;
    std::uint32_t lineBytes_ = 128;

    WarpTrace *trace_ = nullptr;
    std::vector<std::uint8_t> *shared_ = nullptr;
    DeviceMemory *mem_ = nullptr;
    std::vector<std::unique_ptr<ChildGrid>> *children_ = nullptr;
    std::shared_ptr<void> *statePtr_ = nullptr;

    LaneMask baseMask_ = fullMask;
    std::vector<LaneMask> maskStack_{fullMask};
};

/**
 * Emit one CTA of @p spec: runs every warp through every phase with
 * implicit inter-phase barriers, parameter reads at entry, and Exit
 * ops at the end. CDP children are emitted eagerly into the trace.
 *
 * @param cta_linear Linearized CTA index within the grid.
 * @param line_bytes Coalescing granularity (cache line size).
 * @param nest_depth CDP nesting depth of this grid (0 = host launch).
 * @param grid_salt Unique id for local-memory address disambiguation.
 */
CtaTrace emitCta(const LaunchSpec &spec, std::uint64_t cta_linear,
                 DeviceMemory &mem, std::uint32_t line_bytes = 128,
                 int nest_depth = 0, std::uint64_t grid_salt = 0);

// ===================================================================
// LaneArray operator/templating implementation
// ===================================================================

namespace detail
{

template <typename T>
constexpr OpKind
aluKind()
{
    return std::is_floating_point_v<T> ? OpKind::FpAlu : OpKind::IntAlu;
}

} // namespace detail

template <typename T>
LaneArray<T>
WarpCtx::broadcast(T value)
{
    LaneArray<T> out;
    out.ctx = this;
    out.v.fill(value);
    return out;
}

template <typename T, typename Fn>
LaneArray<T>
WarpCtx::make(Fn &&fn)
{
    LaneArray<T> out;
    out.ctx = this;
    for (int lane = 0; lane < warpSize; ++lane)
        out.v[std::size_t(lane)] = fn(lane);
    return out;
}

template <typename Fn>
void
WarpCtx::ifMask(LaneMask mask, Fn &&fn)
{
    branchPoint();
    const LaneMask narrowed = mask & activeMask();
    if (narrowed == 0)
        return;
    pushMask(narrowed);
    fn();
    popMask();
}

template <typename T>
LaneArray<T>
WarpCtx::gatherOffCore(MemSpace space, Addr base,
                       const LaneArray<std::uint32_t> &idx)
{
    std::array<Addr, warpSize> addrs{};
    LaneArray<T> out;
    out.ctx = this;
    for (int lane = 0; lane < warpSize; ++lane) {
        if (!laneActive(lane))
            continue;
        const Addr addr = base + Addr(idx[lane]) * sizeof(T);
        addrs[std::size_t(lane)] = addr;
        out.v[std::size_t(lane)] = mem_->load<T>(addr);
    }
    out.dep = emitMemOp(OpKind::Load, space, addrs, sizeof(T), idx.dep);
    return out;
}

template <typename T>
LaneArray<T>
WarpCtx::loadGlobal(Addr base, const LaneArray<std::uint32_t> &idx)
{
    return gatherOffCore<T>(MemSpace::Global, base, idx);
}

template <typename T>
LaneArray<T>
WarpCtx::loadTex(Addr base, const LaneArray<std::uint32_t> &idx)
{
    return gatherOffCore<T>(MemSpace::Tex, base, idx);
}

template <typename T>
LaneArray<T>
WarpCtx::loadGlobalUniform(Addr addr)
{
    std::array<Addr, warpSize> addrs{};
    LaneArray<T> out;
    out.ctx = this;
    const T value = mem_->load<T>(addr);
    for (int lane = 0; lane < warpSize; ++lane) {
        addrs[std::size_t(lane)] = addr;
        out.v[std::size_t(lane)] = value;
    }
    out.dep = emitMemOp(OpKind::Load, MemSpace::Global, addrs,
                        sizeof(T), -1);
    return out;
}

template <typename T>
void
WarpCtx::storeGlobal(Addr base, const LaneArray<std::uint32_t> &idx,
                     const LaneArray<T> &value)
{
    std::array<Addr, warpSize> addrs{};
    for (int lane = 0; lane < warpSize; ++lane) {
        if (!laneActive(lane))
            continue;
        const Addr addr = base + Addr(idx[lane]) * sizeof(T);
        addrs[std::size_t(lane)] = addr;
        mem_->store<T>(addr, value[lane]);
    }
    emitMemOp(OpKind::Store, MemSpace::Global, addrs, sizeof(T),
              detail::mergeDep(idx.dep, value.dep));
}

template <typename T>
LaneArray<T>
WarpCtx::loadShared(std::uint32_t base_offset,
                    const LaneArray<std::uint32_t> &idx)
{
    LaneArray<T> out;
    out.ctx = this;
    for (int lane = 0; lane < warpSize; ++lane) {
        if (!laneActive(lane))
            continue;
        const std::size_t off =
            base_offset + std::size_t(idx[lane]) * sizeof(T);
        if (off + sizeof(T) > shared_->size())
            panic("loadShared: offset ", off, " beyond CTA shared memory (",
                  shared_->size(), " bytes declared)");
        T value;
        std::memcpy(&value, shared_->data() + off, sizeof(T));
        out.v[std::size_t(lane)] = value;
    }
    TraceOp op;
    op.kind = OpKind::Load;
    op.space = MemSpace::Shared;
    op.bytesPerLane = sizeof(T);
    op.dep = idx.dep;
    out.dep = emitOp(op);
    if (emissionObserver()) {
        std::array<Addr, warpSize> offs{};
        for (int lane = 0; lane < warpSize; ++lane)
            if (laneActive(lane))
                offs[std::size_t(lane)] =
                    base_offset + Addr(idx[lane]) * sizeof(T);
        noteAccess(false, MemSpace::Shared, offs, sizeof(T), out.dep);
    }
    return out;
}

template <typename T>
void
WarpCtx::storeShared(std::uint32_t base_offset,
                     const LaneArray<std::uint32_t> &idx,
                     const LaneArray<T> &value)
{
    for (int lane = 0; lane < warpSize; ++lane) {
        if (!laneActive(lane))
            continue;
        const std::size_t off =
            base_offset + std::size_t(idx[lane]) * sizeof(T);
        if (off + sizeof(T) > shared_->size())
            panic("storeShared: offset ", off,
                  " beyond CTA shared memory (", shared_->size(),
                  " bytes declared)");
        std::memcpy(shared_->data() + off, &value[lane], sizeof(T));
    }
    TraceOp op;
    op.kind = OpKind::Store;
    op.space = MemSpace::Shared;
    op.bytesPerLane = sizeof(T);
    op.dep = detail::mergeDep(idx.dep, value.dep);
    const std::int32_t index = emitOp(op);
    if (emissionObserver()) {
        std::array<Addr, warpSize> offs{};
        for (int lane = 0; lane < warpSize; ++lane)
            if (laneActive(lane))
                offs[std::size_t(lane)] =
                    base_offset + Addr(idx[lane]) * sizeof(T);
        noteAccess(true, MemSpace::Shared, offs, sizeof(T), index);
    }
}

// --------------------------------------------------------- operators

namespace detail
{

template <typename T, typename Fn>
LaneArray<T>
zip(const LaneArray<T> &a, const LaneArray<T> &b, Fn &&fn)
{
    WarpCtx *ctx = a.ctx ? a.ctx : b.ctx;
    if (!ctx)
        panic("LaneArray operation without a WarpCtx");
    LaneArray<T> out;
    out.ctx = ctx;
    for (int lane = 0; lane < warpSize; ++lane)
        out.v[std::size_t(lane)] = fn(a[lane], b[lane]);
    if constexpr (std::is_floating_point_v<T>)
        ctx->emitFp(1, mergeDep(a.dep, b.dep));
    else
        ctx->emitInt(1, mergeDep(a.dep, b.dep));
    return out;
}

template <typename T, typename Fn>
LaneArray<bool>
zipCmp(const LaneArray<T> &a, const LaneArray<T> &b, Fn &&fn)
{
    WarpCtx *ctx = a.ctx ? a.ctx : b.ctx;
    if (!ctx)
        panic("LaneArray comparison without a WarpCtx");
    LaneArray<bool> out;
    out.ctx = ctx;
    for (int lane = 0; lane < warpSize; ++lane)
        out.v[std::size_t(lane)] = fn(a[lane], b[lane]);
    ctx->emitInt(1, mergeDep(a.dep, b.dep));
    return out;
}

} // namespace detail

template <typename T>
LaneArray<T>
operator+(const LaneArray<T> &a, const LaneArray<T> &b)
{
    return detail::zip(a, b, [](T x, T y) { return T(x + y); });
}

template <typename T>
LaneArray<T>
operator-(const LaneArray<T> &a, const LaneArray<T> &b)
{
    return detail::zip(a, b, [](T x, T y) { return T(x - y); });
}

template <typename T>
LaneArray<T>
operator*(const LaneArray<T> &a, const LaneArray<T> &b)
{
    return detail::zip(a, b, [](T x, T y) { return T(x * y); });
}

template <typename T>
LaneArray<bool>
operator<(const LaneArray<T> &a, const LaneArray<T> &b)
{
    return detail::zipCmp(a, b, [](T x, T y) { return x < y; });
}

template <typename T>
LaneArray<bool>
operator>(const LaneArray<T> &a, const LaneArray<T> &b)
{
    return detail::zipCmp(a, b, [](T x, T y) { return x > y; });
}

template <typename T>
LaneArray<bool>
operator==(const LaneArray<T> &a, const LaneArray<T> &b)
{
    return detail::zipCmp(a, b, [](T x, T y) { return x == y; });
}

/** Per-lane maximum (one ALU op, like SASS IMNMX/FMNMX). */
template <typename T>
LaneArray<T>
laneMax(const LaneArray<T> &a, const LaneArray<T> &b)
{
    return detail::zip(a, b, [](T x, T y) { return x > y ? x : y; });
}

/** Per-lane select: lane set in @p mask -> a, else b (one ALU op). */
template <typename T>
LaneArray<T>
laneSelect(LaneMask mask, const LaneArray<T> &a, const LaneArray<T> &b)
{
    WarpCtx *ctx = a.ctx ? a.ctx : b.ctx;
    if (!ctx)
        panic("laneSelect without a WarpCtx");
    LaneArray<T> out;
    out.ctx = ctx;
    for (int lane = 0; lane < warpSize; ++lane) {
        out.v[std::size_t(lane)] =
            (mask >> lane) & 1u ? a[lane] : b[lane];
    }
    if constexpr (std::is_floating_point_v<T>)
        ctx->emitFp(1, detail::mergeDep(a.dep, b.dep));
    else
        ctx->emitInt(1, detail::mergeDep(a.dep, b.dep));
    return out;
}

} // namespace ggpu::sim

#endif // GGPU_SIM_WARP_CTX_HH
