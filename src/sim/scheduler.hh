/**
 * @file
 * Warp schedulers evaluated in Fig 19: loose round robin (LRR, the
 * Accel-Sim default), greedy-then-oldest (GTO), oldest-first (OLD),
 * and the two-level active/pending scheduler (2LV).
 */

#ifndef GGPU_SIM_SCHEDULER_HH
#define GGPU_SIM_SCHEDULER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace ggpu::sim
{

/**
 * Picks which issuable warp slot issues next. The SM computes the set
 * of issuable slots each cycle; the scheduler only encodes policy.
 */
class WarpScheduler
{
  public:
    WarpScheduler(WarpSchedPolicy policy, int num_slots);

    /**
     * Choose a slot from @p issuable (bitmask over slots; bit i set =
     * slot i can issue now). @p age maps slot -> dispatch stamp
     * (smaller = older). Returns the chosen slot or -1.
     */
    int pick(std::uint64_t issuable, const std::vector<std::uint64_t> &age);

    /** Tell the scheduler its current greedy warp stalled (GTO/2LV). */
    void onStall(int slot);
    /** Slot freed (warp finished / CTA completed). */
    void onRelease(int slot);

    WarpSchedPolicy policy() const { return policy_; }

  private:
    int pickLrr(std::uint64_t issuable);
    int pickOldest(std::uint64_t issuable,
                   const std::vector<std::uint64_t> &age) const;

    static constexpr int activeSetSize = 8;

    WarpSchedPolicy policy_;
    int numSlots_;
    int rrNext_ = 0;
    int greedy_ = -1;             //!< GTO sticky warp
    std::uint64_t activeSet_ = 0; //!< 2LV active-warp bitmask
    /** 2LV promotion stamps, inline (slots are capped at 64) so the
     *  eviction scan never chases a heap pointer per pick. */
    std::array<std::uint64_t, 64> promotedAt_{};
    std::uint64_t promoStamp_ = 0;
};

} // namespace ggpu::sim

#endif // GGPU_SIM_SCHEDULER_HH
