/**
 * @file
 * CUDA-runtime-like host API over the simulated GPU: device-memory
 * allocation, host<->device copies over the PCIe model (each copy is a
 * profiled "PCI" transaction), and synchronous kernel launches.
 */

#ifndef GGPU_RUNTIME_DEVICE_HH
#define GGPU_RUNTIME_DEVICE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "mem/pci.hh"
#include "runtime/profiler.hh"
#include "sim/gpu.hh"

namespace ggpu::rt
{

/** Typed device allocation handle. */
template <typename T>
struct DeviceBuffer
{
    Addr addr = 0;
    std::size_t count = 0;

    std::uint64_t bytes() const { return count * sizeof(T); }
};

/** Timing outcome of replaying a pre-emitted TraceBundle. */
struct ReplayResult
{
    Cycles kernelCycles = 0;  //!< Sum of kernel durations
    Cycles totalCycles = 0;   //!< Kernels + PCI transfers
};

/** One simulated device plus its host-side runtime state. */
class Device
{
  public:
    explicit Device(const SystemConfig &cfg = SystemConfig{});

    /**
     * Capture-mode device: application host code runs normally, but
     * copies and launches only execute functionally — each operation
     * is recorded into @p capture (commands + emitted kernel traces)
     * instead of advancing the timing model. Launch results report
     * zero cycles; replay() on a fresh device supplies the timing.
     */
    Device(const SystemConfig &cfg, sim::TraceBundle *capture);

    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;

    /** cudaMalloc equivalent. */
    template <typename T>
    DeviceBuffer<T>
    alloc(std::size_t count)
    {
        DeviceBuffer<T> buffer;
        buffer.addr = gpu_->mem().alloc(count * sizeof(T));
        buffer.count = count;
        return buffer;
    }

    /** cudaMemcpy host-to-device: one profiled PCI transaction. */
    template <typename T>
    void
    upload(const DeviceBuffer<T> &dst, const std::vector<T> &src)
    {
        copyIn(dst.addr, src.data(),
               std::min(src.size(), dst.count) * sizeof(T));
    }

    /** cudaMemcpy device-to-host. */
    template <typename T>
    std::vector<T>
    download(const DeviceBuffer<T> &src)
    {
        std::vector<T> out(src.count);
        copyOut(out.data(), src.addr, src.bytes());
        return out;
    }

    /**
     * cudaFree equivalent: retire @p buffer's allocation. The address
     * space is never reused (bump allocator), so later access through
     * a stale handle is a checker-reportable use-after-free rather
     * than silent corruption.
     */
    template <typename T>
    void
    free(DeviceBuffer<T> &buffer)
    {
        gpu_->mem().free(buffer.addr);
        buffer = DeviceBuffer<T>{};
    }

    /** Raw-byte H2D copy (counts one PCI transaction). */
    void copyIn(Addr dst, const void *src, std::size_t bytes);
    /** Raw-byte D2H copy (counts one PCI transaction). */
    void copyOut(void *dst, Addr src, std::size_t bytes);

    /** Synchronous kernel launch (default-stream semantics). */
    sim::LaunchResult launch(const sim::LaunchSpec &spec);

    /**
     * Replay a pre-emitted bundle's command stream against this
     * device's timing model: transfers advance the PCI model, kernels
     * replay their traces. The bundle is read-only and may be replayed
     * concurrently by other devices. Fatal when the bundle was emitted
     * under a different coalescing line size.
     */
    ReplayResult replay(const sim::TraceBundle &bundle);

    sim::Gpu &gpu() { return *gpu_; }
    Profiler &profiler() { return profiler_; }
    const SystemConfig &config() const { return cfg_; }

    /** Host-side engine counters for the work run so far (how the
     *  simulation executed, not what it simulated — see EngineStats). */
    sim::EngineStats engineStats() const { return gpu_->engineStats(); }

    /** Convert device cycles to seconds at the configured core clock. */
    double seconds(Cycles cycles) const;

    /** Total device time (kernels + transfers) in seconds. */
    double elapsedSeconds() const { return seconds(gpu_->now()); }

  private:
    SystemConfig cfg_;
    std::unique_ptr<sim::Gpu> gpu_;
    mem::PciModel pci_;
    Profiler profiler_;
    sim::TraceBundle *capture_ = nullptr;  //!< Non-null in capture mode
};

} // namespace ggpu::rt

#endif // GGPU_RUNTIME_DEVICE_HH
