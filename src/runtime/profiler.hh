/**
 * @file
 * nvprof/Nsight substitute: counts kernel launches and PCI (memcpy)
 * transactions and accumulates their durations — the exact quantities
 * plotted in Fig 4 of the paper.
 */

#ifndef GGPU_RUNTIME_PROFILER_HH
#define GGPU_RUNTIME_PROFILER_HH

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.hh"
#include "common/types.hh"

namespace ggpu::rt
{

/** Per-application launch/transfer profile. */
class Profiler
{
  public:
    void recordKernel(const std::string &name, Cycles cycles);
    void recordPci(std::uint64_t bytes, Cycles cycles);

    std::uint64_t kernelInvocations() const { return kernelCount_.value(); }
    std::uint64_t pciTransactions() const { return pciCount_.value(); }
    Cycles kernelCycles() const { return kernelCycles_.value(); }
    Cycles pciCycles() const { return pciCycles_.value(); }
    std::uint64_t pciBytes() const { return pciBytes_.value(); }

    double avgKernelCycles() const
    {
        return ratio(kernelCycles(), kernelInvocations());
    }
    double avgPciCycles() const
    {
        return ratio(pciCycles(), pciTransactions());
    }

    /** Per-kernel-name invocation counts (diagnostics). */
    const std::map<std::string, std::uint64_t> &byKernel() const
    {
        return byKernel_;
    }

    void reset();

  private:
    Counter kernelCount_;
    Counter pciCount_;
    Counter kernelCycles_;
    Counter pciCycles_;
    Counter pciBytes_;
    std::map<std::string, std::uint64_t> byKernel_;
};

} // namespace ggpu::rt

#endif // GGPU_RUNTIME_PROFILER_HH
