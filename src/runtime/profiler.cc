#include "runtime/profiler.hh"

namespace ggpu::rt
{

void
Profiler::recordKernel(const std::string &name, Cycles cycles)
{
    kernelCount_.inc();
    kernelCycles_.inc(cycles);
    ++byKernel_[name];
}

void
Profiler::recordPci(std::uint64_t bytes, Cycles cycles)
{
    pciCount_.inc();
    pciCycles_.inc(cycles);
    pciBytes_.inc(bytes);
}

void
Profiler::reset()
{
    kernelCount_.reset();
    pciCount_.reset();
    kernelCycles_.reset();
    pciCycles_.reset();
    pciBytes_.reset();
    byKernel_.clear();
}

} // namespace ggpu::rt
