#include "runtime/device.hh"

#include "common/log.hh"
#include "sim/profile_hooks.hh"

namespace ggpu::rt
{

Device::Device(const SystemConfig &cfg)
    : cfg_(cfg), gpu_(std::make_unique<sim::Gpu>(cfg)), pci_(cfg.pci)
{
}

Device::Device(const SystemConfig &cfg, sim::TraceBundle *capture)
    : Device(cfg)
{
    capture_ = capture;
    if (capture_)
        capture_->lineBytes = cfg_.gpu.lineBytes;
}

void
Device::copyIn(Addr dst, const void *src, std::size_t bytes)
{
    gpu_->mem().write(dst, src, bytes);
    if (capture_) {
        capture_->commands.push_back(
            {sim::TraceCommand::Kind::H2D, bytes, 0});
        return;
    }
    const Cycles start = gpu_->now();
    const Cycles cost = pci_.transfer(bytes, mem::PciDirection::HostToDevice,
                                      cfg_.gpu.coreClockGhz);
    gpu_->advance(cost);
    profiler_.recordPci(bytes, cost);
    if (auto *obs = sim::timingObserver())
        obs->onTransfer(true, bytes, start, gpu_->now());
    // Kernel-to-kernel cache locality is lost across host transfers
    // (the effect the paper blames for cache-size insensitivity).
    gpu_->flushCaches();
}

void
Device::copyOut(void *dst, Addr src, std::size_t bytes)
{
    gpu_->mem().read(src, dst, bytes);
    if (capture_) {
        capture_->commands.push_back(
            {sim::TraceCommand::Kind::D2H, bytes, 0});
        return;
    }
    const Cycles start = gpu_->now();
    const Cycles cost = pci_.transfer(bytes, mem::PciDirection::DeviceToHost,
                                      cfg_.gpu.coreClockGhz);
    gpu_->advance(cost);
    profiler_.recordPci(bytes, cost);
    if (auto *obs = sim::timingObserver())
        obs->onTransfer(false, bytes, start, gpu_->now());
    gpu_->flushCaches();
}

sim::LaunchResult
Device::launch(const sim::LaunchSpec &spec)
{
    if (capture_) {
        sim::KernelTrace kernel = gpu_->emitGrid(spec);
        sim::LaunchResult result;
        result.ctas = spec.grid.count();
        result.childGrids = 0;
        for (const sim::CtaTrace &cta : kernel.ctas)
            result.childGrids += sim::countChildGrids(cta);
        capture_->commands.push_back({sim::TraceCommand::Kind::Kernel, 0,
                                      capture_->kernels.size()});
        capture_->kernels.push_back(std::move(kernel));
        return result;
    }
    const sim::LaunchResult result = gpu_->launch(spec);
    profiler_.recordKernel(spec.name, result.cycles);
    return result;
}

ReplayResult
Device::replay(const sim::TraceBundle &bundle)
{
    if (capture_)
        fatal("Device::replay: capture-mode devices cannot replay");
    if (bundle.lineBytes != cfg_.gpu.lineBytes)
        fatal("Device::replay: bundle for app '", bundle.app,
              "' was emitted with lineBytes=", bundle.lineBytes,
              " but this device uses lineBytes=", cfg_.gpu.lineBytes,
              " (re-emit the trace for this line size)");

    const Cycles started = gpu_->now();
    ReplayResult result;
    for (const sim::TraceCommand &cmd : bundle.commands) {
        switch (cmd.kind) {
          case sim::TraceCommand::Kind::H2D: {
            const Cycles start = gpu_->now();
            const Cycles cost =
                pci_.transfer(cmd.bytes, mem::PciDirection::HostToDevice,
                              cfg_.gpu.coreClockGhz);
            gpu_->advance(cost);
            profiler_.recordPci(cmd.bytes, cost);
            if (auto *obs = sim::timingObserver())
                obs->onTransfer(true, cmd.bytes, start, gpu_->now());
            gpu_->flushCaches();
            break;
          }
          case sim::TraceCommand::Kind::D2H: {
            const Cycles start = gpu_->now();
            const Cycles cost =
                pci_.transfer(cmd.bytes, mem::PciDirection::DeviceToHost,
                              cfg_.gpu.coreClockGhz);
            gpu_->advance(cost);
            profiler_.recordPci(cmd.bytes, cost);
            if (auto *obs = sim::timingObserver())
                obs->onTransfer(false, cmd.bytes, start, gpu_->now());
            gpu_->flushCaches();
            break;
          }
          case sim::TraceCommand::Kind::Kernel: {
            const sim::KernelTrace &kernel = bundle.kernels[cmd.kernel];
            const sim::LaunchResult launched = gpu_->launchTraced(kernel);
            profiler_.recordKernel(kernel.spec.name, launched.cycles);
            result.kernelCycles += launched.cycles;
            break;
          }
        }
    }
    result.totalCycles = gpu_->now() - started;
    return result;
}

double
Device::seconds(Cycles cycles) const
{
    return double(cycles) / (cfg_.gpu.coreClockGhz * 1e9);
}

} // namespace ggpu::rt
