#include "runtime/device.hh"

namespace ggpu::rt
{

Device::Device(const SystemConfig &cfg)
    : cfg_(cfg), gpu_(std::make_unique<sim::Gpu>(cfg)), pci_(cfg.pci)
{
}

void
Device::copyIn(Addr dst, const void *src, std::size_t bytes)
{
    gpu_->mem().write(dst, src, bytes);
    const Cycles cost = pci_.transfer(bytes, mem::PciDirection::HostToDevice,
                                      cfg_.gpu.coreClockGhz);
    gpu_->advance(cost);
    profiler_.recordPci(bytes, cost);
    // Kernel-to-kernel cache locality is lost across host transfers
    // (the effect the paper blames for cache-size insensitivity).
    gpu_->flushCaches();
}

void
Device::copyOut(void *dst, Addr src, std::size_t bytes)
{
    gpu_->mem().read(src, dst, bytes);
    const Cycles cost = pci_.transfer(bytes, mem::PciDirection::DeviceToHost,
                                      cfg_.gpu.coreClockGhz);
    gpu_->advance(cost);
    profiler_.recordPci(bytes, cost);
    gpu_->flushCaches();
}

sim::LaunchResult
Device::launch(const sim::LaunchSpec &spec)
{
    const sim::LaunchResult result = gpu_->launch(spec);
    profiler_.recordKernel(spec.name, result.cycles);
    return result;
}

double
Device::seconds(Cycles cycles) const
{
    return double(cycles) / (cfg_.gpu.coreClockGhz * 1e9);
}

} // namespace ggpu::rt
