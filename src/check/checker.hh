/**
 * @file
 * The compute-sanitizer-style kernel checker. A Checker is installed
 * as the emission observer (sim::ScopedEmissionObserver) while an
 * application's traces are emitted; its three detectors mirror the
 * NVIDIA tools the CUDA originals of this suite are validated with:
 *
 *  - racecheck: per-CTA shadow memory over the shared bytes. Two
 *    accesses to overlapping bytes by *different warps* inside the
 *    same barrier interval (KernelBody phase), at least one a write,
 *    are a hazard — the intervals are structural, so no happens-before
 *    approximation is needed.
 *  - synccheck: a purely structural pass over the finished trace
 *    bundle. Flags CTAs whose warps disagree on barrier counts,
 *    barriers issued under a partial active mask, and CDP deviceSync
 *    ops reachable under a partial mask.
 *  - memcheck: validates every global/tex access against the
 *    DeviceMemory allocation table (out-of-bounds, use-after-free,
 *    unallocated) and shared offsets against smemPerCtaBytes.
 *
 * Diagnostics are deduplicated by structural key (kind + kernel +
 * phase/warp) with an occurrence count, and capped at
 * CheckMode::maxDiagnostics (overflow counted, never silent).
 */

#ifndef GGPU_CHECK_CHECKER_HH
#define GGPU_CHECK_CHECKER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "check/diagnostic.hh"
#include "sim/check_hooks.hh"
#include "sim/trace.hh"

namespace ggpu::check
{

/** Which detectors run (all by default) and the diagnostic cap. */
struct CheckMode
{
    bool race = true;
    bool sync = true;
    bool mem = true;
    /** Distinct diagnostics kept; extras bump droppedDiagnostics(). */
    std::size_t maxDiagnostics = 256;
};

/** Emission-time collector plus post-emission structural passes. */
class Checker : public sim::EmissionObserver
{
  public:
    explicit Checker(CheckMode mode = {});

    // ---- sim::EmissionObserver ------------------------------------
    void onCtaBegin(const sim::LaunchSpec &spec,
                    std::uint64_t cta_linear, int nest_depth) override;
    void onCtaEnd() override;
    void onMemAccess(const sim::MemAccess &access) override;

    /** Structural synccheck over a finished bundle (host kernels and
     *  every CDP child grid, recursively). */
    void checkBundle(const sim::TraceBundle &bundle);

    const std::vector<Diagnostic> &diagnostics() const
    {
        return diags_;
    }
    /** Memory instructions observed during emission. */
    std::uint64_t accessesChecked() const { return accesses_; }
    /** Kernel traces (host + CDP) covered by checkBundle(). */
    std::uint64_t kernelsChecked() const { return kernels_; }
    /** Distinct diagnostics discarded past maxDiagnostics. */
    std::uint64_t droppedDiagnostics() const { return dropped_; }

  private:
    /** Shadow state of one shared-memory byte within one phase. */
    struct ByteState
    {
        std::int32_t phase = -1;   //!< Epoch; stale entries are reset
        std::int16_t writerWarp = -1;
        std::int16_t readerWarpA = -1;
        std::int16_t readerWarpB = -1;
    };

    /** Live racecheck state of one CTA being emitted (stacked: CDP
     *  children are emitted inside their parent's frame). */
    struct CtaFrame
    {
        const sim::LaunchSpec *spec = nullptr;
        std::uint64_t ctaLinear = 0;
        int nestDepth = 0;
        std::vector<ByteState> shadow;  //!< smemPerCtaBytes entries
    };

    void report(Diagnostic diag, const std::string &dedup_key);
    void raceCheckShared(const sim::MemAccess &access, CtaFrame &frame);
    void memCheckOffCore(const sim::MemAccess &access);
    void syncCheckCtas(const sim::LaunchSpec &spec,
                       const std::vector<sim::CtaTrace> &ctas,
                       int nest_depth);

    CheckMode mode_;
    std::vector<CtaFrame> frames_;
    std::vector<Diagnostic> diags_;
    std::map<std::string, std::size_t> dedup_;
    std::uint64_t accesses_ = 0;
    std::uint64_t kernels_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace ggpu::check

#endif // GGPU_CHECK_CHECKER_HH
