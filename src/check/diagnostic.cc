#include "check/diagnostic.hh"

#include <sstream>

#include "common/log.hh"

namespace ggpu::check
{

Detector
detectorOf(DiagKind kind)
{
    switch (kind) {
      case DiagKind::SharedWriteWrite:
      case DiagKind::SharedReadWrite:
        return Detector::Race;
      case DiagKind::PhaseCountMismatch:
      case DiagKind::DivergentBarrier:
      case DiagKind::DivergentDeviceSync:
        return Detector::Sync;
      case DiagKind::GlobalOutOfBounds:
      case DiagKind::UseAfterFree:
      case DiagKind::UnallocatedAccess:
      case DiagKind::SharedOutOfBounds:
        return Detector::Mem;
    }
    panic("detectorOf: unknown DiagKind ", int(kind));
}

std::string
toString(Detector detector)
{
    switch (detector) {
      case Detector::Race: return "racecheck";
      case Detector::Sync: return "synccheck";
      case Detector::Mem: return "memcheck";
    }
    return "unknown";
}

std::string
toString(DiagKind kind)
{
    switch (kind) {
      case DiagKind::SharedWriteWrite: return "shared-write-write";
      case DiagKind::SharedReadWrite: return "shared-read-write";
      case DiagKind::PhaseCountMismatch: return "phase-count-mismatch";
      case DiagKind::DivergentBarrier: return "divergent-barrier";
      case DiagKind::DivergentDeviceSync: return "divergent-device-sync";
      case DiagKind::GlobalOutOfBounds: return "global-out-of-bounds";
      case DiagKind::UseAfterFree: return "use-after-free";
      case DiagKind::UnallocatedAccess: return "unallocated-access";
      case DiagKind::SharedOutOfBounds: return "shared-out-of-bounds";
    }
    return "unknown";
}

std::string
toString(const Diagnostic &diag)
{
    std::ostringstream os;
    os << toString(diag.detector()) << ": " << toString(diag.kind)
       << " in kernel '" << diag.kernel << "'";
    if (diag.nestDepth > 0)
        os << " (CDP depth " << diag.nestDepth << ")";
    os << " cta " << diag.cta;
    if (diag.warp >= 0)
        os << " warp " << diag.warp;
    if (diag.lane >= 0)
        os << " lane " << diag.lane;
    if (diag.phase >= 0)
        os << " phase " << diag.phase;
    if (diag.otherWarp >= 0)
        os << " vs warp " << diag.otherWarp;
    if (diag.bytes > 0)
        os << " @ " << diag.addr << " (" << diag.bytes << " B)";
    if (!diag.message.empty())
        os << ": " << diag.message;
    if (diag.occurrences > 1)
        os << " [x" << diag.occurrences << "]";
    return os.str();
}

core::json::Value
toJson(const Diagnostic &diag)
{
    core::json::Value value = core::json::Value::object();
    value.set("detector", toString(diag.detector()));
    value.set("kind", toString(diag.kind));
    value.set("kernel", diag.kernel);
    value.set("cta", std::uint64_t(diag.cta));
    value.set("warp", diag.warp);
    value.set("lane", diag.lane);
    value.set("phase", diag.phase);
    value.set("other_warp", diag.otherWarp);
    value.set("nest_depth", diag.nestDepth);
    value.set("addr", std::uint64_t(diag.addr));
    value.set("bytes", std::uint64_t(diag.bytes));
    value.set("occurrences", std::uint64_t(diag.occurrences));
    value.set("message", diag.message);
    return value;
}

const std::vector<std::string> &
requiredDiagnosticKeys()
{
    static const std::vector<std::string> keys{
        "detector", "kind", "kernel", "cta", "warp", "lane", "phase",
        "other_warp", "nest_depth", "addr", "bytes", "occurrences",
        "message"};
    return keys;
}

const std::vector<std::string> &
requiredCheckRunKeys()
{
    static const std::vector<std::string> keys{
        "app", "cdp", "verified", "kernels", "accesses_checked",
        "diagnostic_count", "dropped_diagnostics", "diagnostics"};
    return keys;
}

} // namespace ggpu::check
