/**
 * @file
 * ggpu_check — compute-sanitizer-style checker CLI. Replays the
 * emission of one application (or the whole suite) under the
 * racecheck/synccheck/memcheck detectors and reports every diagnostic
 * with full kernel/CTA/warp/lane/phase provenance.
 *
 *   ggpu_check [--app NAME] [--base|--cdp] [--scale TIER] [--seed N]
 *              [--no-race] [--no-sync] [--no-mem] [--max-diags N]
 *              [--json FILE]
 *
 * Default: every suite app, base and CDP variants, GGPU_SCALE tier.
 * Exit 0 when clean, 1 when any diagnostic fired, 2 on usage errors.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "check/run_check.hh"
#include "common/log.hh"
#include "core/suite.hh"

namespace
{

using ggpu::check::CheckMode;
using ggpu::check::CheckResult;

int
usage()
{
    std::cerr
        << "usage: ggpu_check [options]\n"
        << "  --app NAME      check one app (default: whole suite)\n"
        << "  --base          only the non-CDP variant\n"
        << "  --cdp           only the CDP variant\n"
        << "  --scale TIER    tiny|small|medium (default: GGPU_SCALE)\n"
        << "  --seed N        input-generation seed\n"
        << "  --no-race       disable racecheck\n"
        << "  --no-sync       disable synccheck\n"
        << "  --no-mem        disable memcheck\n"
        << "  --max-diags N   distinct-diagnostic cap (default 256)\n"
        << "  --json FILE     also write a ggpu.check.v1 artifact\n";
    return 2;
}

std::optional<ggpu::kernels::InputScale>
parseScale(const std::string &name)
{
    if (name == "tiny")
        return ggpu::kernels::InputScale::Tiny;
    if (name == "small")
        return ggpu::kernels::InputScale::Small;
    if (name == "medium")
        return ggpu::kernels::InputScale::Medium;
    return std::nullopt;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    std::string app;
    std::string json_path;
    bool base_only = false;
    bool cdp_only = false;
    CheckMode mode;
    ggpu::kernels::AppOptions options;
    options.scale = ggpu::core::scaleFromEnv();

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        const bool has_value = i + 1 < args.size();
        if (arg == "--app" && has_value) {
            app = args[++i];
        } else if (arg == "--base") {
            base_only = true;
        } else if (arg == "--cdp") {
            cdp_only = true;
        } else if (arg == "--scale" && has_value) {
            auto scale = parseScale(args[++i]);
            if (!scale) {
                std::cerr << "ggpu_check: unknown scale '" << args[i]
                          << "'\n";
                return 2;
            }
            options.scale = *scale;
        } else if (arg == "--seed" && has_value) {
            options.seed = std::stoull(args[++i]);
        } else if (arg == "--no-race") {
            mode.race = false;
        } else if (arg == "--no-sync") {
            mode.sync = false;
        } else if (arg == "--no-mem") {
            mode.mem = false;
        } else if (arg == "--max-diags" && has_value) {
            mode.maxDiagnostics = std::stoull(args[++i]);
        } else if (arg == "--json" && has_value) {
            json_path = args[++i];
        } else {
            return usage();
        }
    }
    if (base_only && cdp_only)
        return usage();

    std::vector<std::string> apps;
    if (app.empty()) {
        apps = ggpu::core::appNames();
    } else {
        const auto &known = ggpu::core::appNames();
        if (std::find(known.begin(), known.end(), app) == known.end()) {
            std::cerr << "ggpu_check: unknown app '" << app << "'\n";
            return 2;
        }
        apps.push_back(app);
    }

    std::vector<CheckResult> results;
    std::uint64_t total_diags = 0;
    try {
        for (const auto &name : apps) {
            for (const bool cdp : {false, true}) {
                if ((cdp && base_only) || (!cdp && cdp_only))
                    continue;
                ggpu::kernels::AppOptions run_options = options;
                run_options.cdp = cdp;
                CheckResult result =
                    ggpu::check::checkApp(name, run_options, mode);
                std::cout << (cdp ? name + "-CDP" : name) << ": "
                          << (result.clean() ? "clean" : "FAILED")
                          << " (" << result.kernels << " kernels, "
                          << result.accessesChecked
                          << " accesses checked";
                if (!result.verified)
                    std::cout << "; NOT FUNCTIONALLY VERIFIED";
                std::cout << ")\n";
                for (const auto &diag : result.diagnostics)
                    std::cout << "  " << toString(diag) << "\n";
                if (result.droppedDiagnostics > 0)
                    std::cout << "  ... and "
                              << result.droppedDiagnostics
                              << " further distinct diagnostics "
                                 "dropped (--max-diags)\n";
                total_diags += result.diagnostics.size();
                results.push_back(std::move(result));
            }
        }

        if (!json_path.empty()) {
            const auto artifact = ggpu::check::checkArtifact(
                results,
                ggpu::core::scaleName(options.scale));
            std::ofstream os(json_path);
            if (!os)
                ggpu::fatal("cannot open '", json_path,
                            "' for writing");
            os << artifact.dump();
            if (!os.flush())
                ggpu::fatal("short write to '", json_path, "'");
        }
    } catch (const std::exception &e) {
        std::cerr << "ggpu_check: " << e.what() << "\n";
        return 1;
    }

    std::cout << (total_diags == 0 ? "ggpu_check: clean"
                                   : "ggpu_check: diagnostics found")
              << " (" << results.size() << " run(s), " << total_diags
              << " diagnostic(s))\n";
    return total_diags == 0 ? 0 : 1;
}
