#include "check/run_check.hh"

#include "common/config.hh"
#include "core/trace_store.hh"

namespace ggpu::check
{

namespace
{

CheckResult
packageResult(std::string label, bool cdp, const sim::TraceBundle &bundle,
              const Checker &checker)
{
    CheckResult result;
    result.app = std::move(label);
    result.cdp = cdp;
    result.verified = bundle.verified;
    result.detail = bundle.detail;
    result.kernels = checker.kernelsChecked();
    result.accessesChecked = checker.accessesChecked();
    result.droppedDiagnostics = checker.droppedDiagnostics();
    result.diagnostics = checker.diagnostics();
    return result;
}

} // namespace

CheckResult
checkApp(const std::string &app, const kernels::AppOptions &options,
         CheckMode mode)
{
    Checker checker(mode);
    sim::TraceBundle bundle;
    {
        sim::ScopedEmissionObserver scope(&checker);
        bundle = core::emitTrace(app, options, GpuConfig{}.lineBytes);
    }
    checker.checkBundle(bundle);
    return packageResult(app, options.cdp, bundle, checker);
}

CheckResult
checkProgram(const std::string &label,
             const std::function<void(rt::Device &)> &program,
             CheckMode mode)
{
    Checker checker(mode);
    sim::TraceBundle bundle;
    {
        rt::Device dev(SystemConfig{}, &bundle);
        sim::ScopedEmissionObserver scope(&checker);
        program(dev);
    }
    checker.checkBundle(bundle);
    // Programs carry no CPU reference; "verified" records only that the
    // functional emission itself completed.
    bundle.verified = true;
    CheckResult result = packageResult(label, false, bundle, checker);
    result.verified = true;
    return result;
}

core::json::Value
toJson(const CheckResult &result)
{
    core::json::Value value = core::json::Value::object();
    value.set("app", result.app);
    value.set("cdp", result.cdp);
    value.set("verified", result.verified);
    value.set("kernels", result.kernels);
    value.set("accesses_checked", result.accessesChecked);
    value.set("diagnostic_count", std::uint64_t(result.diagnostics.size()));
    value.set("dropped_diagnostics", result.droppedDiagnostics);
    core::json::Value diags = core::json::Value::array();
    for (const auto &diag : result.diagnostics)
        diags.push(toJson(diag));
    value.set("diagnostics", std::move(diags));
    value.set("detail", result.detail);
    return value;
}

core::json::Value
checkArtifact(const std::vector<CheckResult> &results,
              const std::string &scale)
{
    core::json::Value value = core::json::Value::object();
    value.set("schema", checkerSchema);
    value.set("scale", scale);
    core::json::Value runs = core::json::Value::array();
    for (const auto &result : results)
        runs.push(toJson(result));
    value.set("runs", std::move(runs));
    return value;
}

} // namespace ggpu::check
