#include "check/checker.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"
#include "sim/device_memory.hh"

namespace ggpu::check
{

namespace
{

/** Canonical dedup key; -1 fields are simply folded in as "-1". */
std::string
key(DiagKind kind, const std::string &kernel, int a, int b = -1)
{
    std::ostringstream os;
    os << int(kind) << '|' << kernel << '|' << a << '|' << b;
    return os.str();
}

} // namespace

Checker::Checker(CheckMode mode) : mode_(mode) {}

void
Checker::onCtaBegin(const sim::LaunchSpec &spec, std::uint64_t cta_linear,
                    int nest_depth)
{
    CtaFrame frame;
    frame.spec = &spec;
    frame.ctaLinear = cta_linear;
    frame.nestDepth = nest_depth;
    frames_.push_back(std::move(frame));
}

void
Checker::onCtaEnd()
{
    if (frames_.empty())
        panic("Checker: onCtaEnd without a matching onCtaBegin");
    frames_.pop_back();
}

void
Checker::onMemAccess(const sim::MemAccess &access)
{
    ++accesses_;
    if (access.space == sim::MemSpace::Shared) {
        // Shared accesses arrive only while a CTA is being emitted; the
        // innermost frame is that CTA (CDP children nest in stack order).
        if (frames_.empty())
            panic("Checker: shared access outside any CTA frame");
        raceCheckShared(access, frames_.back());
    } else if (mode_.mem && sim::isOffCore(access.space) &&
               access.space != sim::MemSpace::Local) {
        // Local is a synthetic per-thread window with no allocation
        // backing it; Param/Const loads carry no addresses at all.
        memCheckOffCore(access);
    }
}

void
Checker::raceCheckShared(const sim::MemAccess &access, CtaFrame &frame)
{
    const std::uint32_t smem_bytes = frame.spec->res.smemPerCtaBytes;
    if (frame.shadow.empty() && smem_bytes != 0 && mode_.race)
        frame.shadow.resize(smem_bytes);

    const auto warp = std::int16_t(access.warpInCta);
    for (int lane = 0; lane < warpSize; ++lane) {
        if (!(access.mask & (LaneMask(1) << lane)))
            continue;
        const Addr off = (*access.addrs)[std::size_t(lane)];
        if (mode_.mem && off + access.bytesPerLane > smem_bytes) {
            Diagnostic diag;
            diag.kind = DiagKind::SharedOutOfBounds;
            diag.kernel = frame.spec->name;
            diag.cta = frame.ctaLinear;
            diag.warp = access.warpInCta;
            diag.lane = lane;
            diag.phase = access.phase;
            diag.nestDepth = access.nestDepth;
            diag.addr = off;
            diag.bytes = access.bytesPerLane;
            std::ostringstream os;
            os << (access.write ? "store" : "load") << " at shared offset "
               << off << " exceeds the CTA's " << smem_bytes
               << "-byte shared allocation";
            diag.message = os.str();
            std::string dedup =
                key(diag.kind, frame.spec->name, access.phase);
            report(std::move(diag), dedup);
            continue;
        }
        if (!mode_.race || frame.shadow.empty())
            continue;
        for (std::uint32_t i = 0; i < access.bytesPerLane; ++i) {
            ByteState &state = frame.shadow[std::size_t(off) + i];
            if (state.phase != access.phase)
                state = {access.phase, -1, -1, -1};

            std::int16_t conflict = -1;
            DiagKind kind = DiagKind::SharedReadWrite;
            if (access.write) {
                if (state.writerWarp >= 0 && state.writerWarp != warp) {
                    conflict = state.writerWarp;
                    kind = DiagKind::SharedWriteWrite;
                } else if (state.readerWarpA >= 0 &&
                           state.readerWarpA != warp) {
                    conflict = state.readerWarpA;
                } else if (state.readerWarpB >= 0 &&
                           state.readerWarpB != warp) {
                    conflict = state.readerWarpB;
                }
                if (state.writerWarp < 0)
                    state.writerWarp = warp;
            } else {
                if (state.writerWarp >= 0 && state.writerWarp != warp)
                    conflict = state.writerWarp;
                if (state.readerWarpA < 0 || state.readerWarpA == warp)
                    state.readerWarpA = warp;
                else if (state.readerWarpB < 0)
                    state.readerWarpB = warp;
            }
            if (conflict < 0)
                continue;

            Diagnostic diag;
            diag.kind = kind;
            diag.kernel = frame.spec->name;
            diag.cta = frame.ctaLinear;
            diag.warp = access.warpInCta;
            diag.lane = lane;
            diag.phase = access.phase;
            diag.otherWarp = conflict;
            diag.nestDepth = access.nestDepth;
            diag.addr = off + i;
            diag.bytes = 1;
            std::ostringstream os;
            os << "shared byte " << off + i << " "
               << (kind == DiagKind::SharedWriteWrite
                       ? "written by both warps"
                       : "written by one warp and read by the other")
               << " inside barrier interval " << access.phase;
            diag.message = os.str();
            const int wlo = std::min(access.warpInCta, int(conflict));
            const int whi = std::max(access.warpInCta, int(conflict));
            report(std::move(diag),
                   key(kind, frame.spec->name, access.phase,
                       wlo * 1024 + whi));
        }
    }
}

void
Checker::memCheckOffCore(const sim::MemAccess &access)
{
    /** Accesses this far past an allocation's end are still attributed
     *  to it (alignment-padding overruns); farther means wild. */
    constexpr Addr allocSlack = 256;

    if (access.mem == nullptr)
        return;
    const auto &allocs = access.mem->allocations();

    for (int lane = 0; lane < warpSize; ++lane) {
        if (!(access.mask & (LaneMask(1) << lane)))
            continue;
        const Addr addr = (*access.addrs)[std::size_t(lane)];
        const Addr end = addr + access.bytesPerLane;

        // Last allocation whose base is <= addr (table is in ascending
        // base order: the bump allocator never reuses address space).
        auto it = std::upper_bound(
            allocs.begin(), allocs.end(), addr,
            [](Addr a, const sim::DeviceMemory::Allocation &alloc) {
                return a < alloc.base;
            });

        DiagKind kind;
        std::ostringstream os;
        if (it == allocs.begin()) {
            kind = DiagKind::UnallocatedAccess;
            os << (access.write ? "store" : "load") << " at " << addr
               << " precedes every allocation";
        } else {
            const auto &alloc = *std::prev(it);
            const Addr alloc_end = alloc.base + alloc.bytes;
            if (addr < alloc_end && !alloc.live) {
                kind = DiagKind::UseAfterFree;
                os << (access.write ? "store" : "load") << " at " << addr
                   << " hits freed allocation #" << alloc.serial
                   << " (base " << alloc.base << ", " << alloc.bytes
                   << " bytes)";
            } else if (addr < alloc_end && end > alloc_end) {
                kind = DiagKind::GlobalOutOfBounds;
                os << (access.write ? "store" : "load") << " at " << addr
                   << " straddles the end of allocation #" << alloc.serial
                   << " (base " << alloc.base << ", " << alloc.bytes
                   << " bytes)";
            } else if (addr >= alloc_end && addr < alloc_end + allocSlack) {
                kind = DiagKind::GlobalOutOfBounds;
                os << (access.write ? "store" : "load") << " at " << addr
                   << " is " << addr - alloc_end
                   << " bytes past the end of allocation #" << alloc.serial
                   << " (base " << alloc.base << ", " << alloc.bytes
                   << " bytes)";
            } else if (addr >= alloc_end) {
                kind = DiagKind::UnallocatedAccess;
                os << (access.write ? "store" : "load") << " at " << addr
                   << " matches no allocation";
            } else {
                continue;  // Inside a live allocation: fine.
            }
        }

        Diagnostic diag;
        diag.kind = kind;
        diag.kernel = access.spec->name;
        diag.cta = access.ctaLinear;
        diag.warp = access.warpInCta;
        diag.lane = lane;
        diag.phase = access.phase;
        diag.nestDepth = access.nestDepth;
        diag.addr = addr;
        diag.bytes = access.bytesPerLane;
        diag.message = os.str();
        report(std::move(diag),
               key(kind, access.spec->name, access.phase));
    }
}

void
Checker::checkBundle(const sim::TraceBundle &bundle)
{
    if (!mode_.sync) {
        for (const auto &kernel : bundle.kernels)
            kernels_ += 1 + countChildGrids(kernel);
        return;
    }
    for (const auto &kernel : bundle.kernels)
        syncCheckCtas(kernel.spec, kernel.ctas, 0);
}

void
Checker::syncCheckCtas(const sim::LaunchSpec &spec,
                       const std::vector<sim::CtaTrace> &ctas,
                       int nest_depth)
{
    ++kernels_;
    for (std::size_t cta = 0; cta < ctas.size(); ++cta) {
        const auto &warps = ctas[cta].warps;
        std::vector<int> barrier_counts(warps.size(), 0);
        for (std::size_t w = 0; w < warps.size(); ++w) {
            const auto &ops = warps[w].ops;
            if (ops.empty())
                continue;
            // Every warp stream ends with an Exit at the warp's
            // full-participation mask; that is the reference mask every
            // barrier and device-sync must match.
            const LaneMask base_mask = ops.back().mask;
            int phase = 0;
            for (const auto &op : ops) {
                if (op.kind == sim::OpKind::Barrier) {
                    if (op.mask != base_mask) {
                        Diagnostic diag;
                        diag.kind = DiagKind::DivergentBarrier;
                        diag.kernel = spec.name;
                        diag.cta = cta;
                        diag.warp = int(w);
                        diag.phase = phase;
                        diag.nestDepth = nest_depth;
                        std::ostringstream os;
                        os << "barrier ending phase " << phase
                           << " issued under partial mask " << op.mask
                           << " (warp participates as " << base_mask
                           << ")";
                        diag.message = os.str();
                        std::string dedup =
                            key(diag.kind, spec.name, int(w));
                        report(std::move(diag), dedup);
                    }
                    phase += op.repeat;
                } else if (op.kind == sim::OpKind::DeviceSync &&
                           op.mask != base_mask) {
                    Diagnostic diag;
                    diag.kind = DiagKind::DivergentDeviceSync;
                    diag.kernel = spec.name;
                    diag.cta = cta;
                    diag.warp = int(w);
                    diag.phase = phase;
                    diag.nestDepth = nest_depth;
                    std::ostringstream os;
                    os << "deviceSync in phase " << phase
                       << " reachable under partial mask " << op.mask
                       << " (warp participates as " << base_mask << ")";
                    diag.message = os.str();
                    std::string dedup = key(diag.kind, spec.name, int(w));
                    report(std::move(diag), dedup);
                }
            }
            barrier_counts[w] = phase;
        }
        for (std::size_t w = 1; w < warps.size(); ++w) {
            if (barrier_counts[w] == barrier_counts[0])
                continue;
            Diagnostic diag;
            diag.kind = DiagKind::PhaseCountMismatch;
            diag.kernel = spec.name;
            diag.cta = cta;
            diag.warp = int(w);
            diag.otherWarp = 0;
            diag.nestDepth = nest_depth;
            std::ostringstream os;
            os << "warp " << w << " reaches " << barrier_counts[w]
               << " barriers but warp 0 reaches " << barrier_counts[0]
               << " (deadlock on hardware)";
            diag.message = os.str();
            std::string dedup = key(diag.kind, spec.name, int(w));
            report(std::move(diag), dedup);
        }
        for (const auto &child : ctas[cta].children)
            syncCheckCtas(child->spec, child->ctas, nest_depth + 1);
    }
}

void
Checker::report(Diagnostic diag, const std::string &dedup_key)
{
    auto it = dedup_.find(dedup_key);
    if (it != dedup_.end()) {
        ++diags_[it->second].occurrences;
        return;
    }
    if (diags_.size() >= mode_.maxDiagnostics) {
        ++dropped_;
        return;
    }
    dedup_.emplace(dedup_key, diags_.size());
    diags_.push_back(std::move(diag));
}

} // namespace ggpu::check
