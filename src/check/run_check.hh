/**
 * @file
 * Checker orchestration: run one suite application (or an arbitrary
 * host program) on a capture-mode device with a Checker installed as
 * the emission observer, then run the structural bundle passes and
 * package the findings. Also the JSON artifact ("ggpu.check.v1")
 * writer the ggpu_check CLI and the contract tests share.
 */

#ifndef GGPU_CHECK_RUN_CHECK_HH
#define GGPU_CHECK_RUN_CHECK_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/checker.hh"
#include "core/json.hh"
#include "kernels/app.hh"
#include "runtime/device.hh"

namespace ggpu::check
{

/** Outcome of checking one application (or program) end to end. */
struct CheckResult
{
    std::string app;       //!< Abbreviation or program label
    bool cdp = false;
    bool verified = false; //!< Functional CPU-reference verdict
    std::string detail;    //!< Free-form functional summary
    std::uint64_t kernels = 0;          //!< Kernel traces covered
    std::uint64_t accessesChecked = 0;  //!< Memory instructions seen
    std::uint64_t droppedDiagnostics = 0;
    std::vector<Diagnostic> diagnostics;

    bool clean() const { return diagnostics.empty(); }
};

/**
 * Emit @p app's traces (same path as core::emitTrace, so functional
 * verification runs too) under a Checker, then run the bundle passes.
 */
CheckResult checkApp(const std::string &app,
                     const kernels::AppOptions &options,
                     CheckMode mode = {});

/**
 * Run @p program — arbitrary host code issuing allocations, copies and
 * launches — on a capture-mode device under a Checker. This is how the
 * seeded-defect tests drive single kernels through the checker.
 */
CheckResult checkProgram(
    const std::string &label,
    const std::function<void(rt::Device &)> &program,
    CheckMode mode = {});

/** One run's JSON object (carries every requiredCheckRunKeys() key). */
core::json::Value toJson(const CheckResult &result);

/** Whole-artifact wrapper: schema tag, scale name, runs array. */
core::json::Value checkArtifact(const std::vector<CheckResult> &results,
                                const std::string &scale);

} // namespace ggpu::check

#endif // GGPU_CHECK_RUN_CHECK_HH
