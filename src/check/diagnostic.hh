/**
 * @file
 * Diagnostic records produced by the ggpu::check kernel checker: the
 * detector taxonomy (racecheck / synccheck / memcheck, mirroring
 * NVIDIA compute-sanitizer's tool names), the per-finding provenance
 * (kernel, CTA, warp, lane, phase), and the JSON projection that lets
 * checker artifacts ride the machine-readable-results pipeline.
 */

#ifndef GGPU_CHECK_DIAGNOSTIC_HH
#define GGPU_CHECK_DIAGNOSTIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/json.hh"

namespace ggpu::check
{

/** Which detector produced a finding (compute-sanitizer tool names). */
enum class Detector : std::uint8_t
{
    Race,  //!< Shared-memory hazards between warps (racecheck)
    Sync,  //!< Barrier/CDP-sync discipline violations (synccheck)
    Mem    //!< Allocation-granular address violations (memcheck)
};

/** Specific defect classes, grouped by detector. */
enum class DiagKind : std::uint8_t
{
    // Racecheck: conflicting shared-memory accesses by different warps
    // inside one barrier interval (KernelBody phase).
    SharedWriteWrite,
    SharedReadWrite,

    // Synccheck.
    PhaseCountMismatch,   //!< Warps of one CTA emit unequal barrier counts
    DivergentBarrier,     //!< Barrier issued under a partial active mask
    DivergentDeviceSync,  //!< CDP deviceSync reachable under partial mask

    // Memcheck.
    GlobalOutOfBounds,    //!< Access past the end of a live allocation
    UseAfterFree,         //!< Access inside a freed allocation
    UnallocatedAccess,    //!< Access matching no allocation at all
    SharedOutOfBounds     //!< Shared offset beyond smemPerCtaBytes
};

Detector detectorOf(DiagKind kind);
std::string toString(Detector detector);
std::string toString(DiagKind kind);

/** One checker finding with full emission provenance. */
struct Diagnostic
{
    DiagKind kind = DiagKind::SharedWriteWrite;
    std::string kernel;       //!< LaunchSpec::name
    std::uint64_t cta = 0;    //!< Linear CTA index within its grid
    int warp = -1;            //!< Warp within the CTA (-1: whole CTA)
    int lane = -1;            //!< Lane within the warp (-1: whole warp)
    int phase = -1;           //!< Barrier interval (-1: not phase-local)
    int otherWarp = -1;       //!< Conflicting warp (racecheck)
    int nestDepth = 0;        //!< CDP nesting depth (0 = host launch)
    Addr addr = 0;            //!< Device address / shared byte offset
    std::uint32_t bytes = 0;  //!< Bytes of the offending access
    std::string message;      //!< Human-readable elaboration
    std::uint64_t occurrences = 1;  //!< Deduplicated repeat count

    Detector detector() const { return detectorOf(kind); }
};

/** One-line human-readable rendering (CLI output). */
std::string toString(const Diagnostic &diag);

/** JSON projection carrying every requiredDiagnosticKeys() member. */
core::json::Value toJson(const Diagnostic &diag);

/** Schema tag of ggpu_check JSON artifacts. */
inline constexpr const char *checkerSchema = "ggpu.check.v1";

/** Keys every exported diagnostic object must carry (contract). */
const std::vector<std::string> &requiredDiagnosticKeys();

/** Keys every exported per-run object must carry (contract). */
const std::vector<std::string> &requiredCheckRunKeys();

} // namespace ggpu::check

#endif // GGPU_CHECK_DIAGNOSTIC_HH
