/**
 * @file
 * Request batcher of the serving mode: packs arriving requests into
 * kernel-launch-sized batches under a timeout-or-full policy. Three
 * queueing disciplines (docs/SERVING.md):
 *
 *  - Fifo: one app-oblivious queue. A batch may mix applications and
 *    is timed with the oldest request's kernel template — the
 *    mismatch cost is the point of comparison against per-app queues.
 *  - PerApp: one queue per application; batches are app-homogeneous.
 *  - LengthBinned: one queue per (application, read-count bin), the
 *    gpuPairHMM-style discipline that keeps similar-sized work in the
 *    same launch.
 *
 * A queue flushes when it holds maxBatch requests (at the arrival that
 * filled it) or when its oldest request has waited timeout cycles.
 */

#ifndef GGPU_SERVE_BATCHER_HH
#define GGPU_SERVE_BATCHER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hh"

namespace ggpu::serve
{

/** Queueing discipline of the batcher. */
enum class BatchPolicy
{
    Fifo,         //!< One mixed queue
    PerApp,       //!< One queue per application
    LengthBinned  //!< One queue per (application, read-length bin)
};

/** "fifo" / "perapp" / "binned". */
const char *policyName(BatchPolicy policy);

/** Parse a policy name; returns false on unknown names. */
bool parsePolicy(const std::string &name, BatchPolicy &out);

/** Read-count bin edges of the LengthBinned policy: bin 0 holds reads
 *  <= 16, bin 1 <= 32, bin 2 the rest. */
std::size_t lengthBin(std::uint32_t reads);
constexpr std::size_t numLengthBins = 3;

/** Batcher knobs (one serving sweep point). */
struct BatcherConfig
{
    BatchPolicy policy = BatchPolicy::Fifo;
    std::uint64_t maxBatch = 32;  //!< Requests per kernel launch
    Cycles timeout = 500000;      //!< Flush partial queues after this
};

/** One formed batch, ready to stage onto a stream. */
struct Batch
{
    std::uint32_t app = 0;   //!< Kernel template (oldest request's app)
    Cycles formedAt = 0;     //!< Cycle the batch left its queue
    std::vector<Request> requests;

    std::uint64_t reads() const;
};

/**
 * The batching stage between the tape and the stream server. Purely
 * host-side bookkeeping in integer cycles: enqueue() files a request,
 * ready() pops every batch due at the current cycle, nextDeadline()
 * tells the serve loop when a timeout flush comes due.
 */
class Batcher
{
  public:
    Batcher(const BatcherConfig &config, std::uint32_t num_apps);

    /** File @p request; @p now is its arrival cycle. */
    void enqueue(const Request &request, Cycles now);

    /**
     * Pop the batches due at @p now: every full queue, and every
     * non-empty queue whose oldest request arrived timeout cycles ago.
     * Queues are scanned in a fixed index order (app-major), so the
     * result is deterministic.
     */
    std::vector<Batch> ready(Cycles now);

    /** Earliest timeout flush across non-empty queues (~Cycles(0)
     *  when everything is empty). */
    Cycles nextDeadline() const;

    bool empty() const { return pending_ == 0; }
    std::uint64_t pendingRequests() const { return pending_; }

  private:
    struct Queue
    {
        std::vector<Request> requests;
        Cycles oldestArrival = 0;  //!< Valid while non-empty
    };

    std::size_t queueFor(const Request &request) const;
    void popBatch(Queue &queue, Cycles now, std::vector<Batch> &out);

    BatcherConfig cfg_;
    std::vector<Queue> queues_;
    std::uint64_t pending_ = 0;
};

} // namespace ggpu::serve

#endif // GGPU_SERVE_BATCHER_HH
