/**
 * @file
 * The stream server of the serving mode: replays a request tape
 * against one simulated device, batching requests (serve/batcher),
 * overlapping H2D/D2H slices with compute via the PCIe model, and
 * running batches on N concurrent simulated streams through the
 * Gpu stream-mode API (beginStreamMode / enqueueStream /
 * advanceStreams). See docs/SERVING.md for the pipeline semantics.
 *
 * Everything host-side is integer-cycle arithmetic over a seeded
 * tape, and the device is the byte-deterministic timing engine, so a
 * serving run is reproducible across sim.threads lane counts and the
 * fast-forward on/off engines (tests/test_serving.cc holds the line).
 */

#ifndef GGPU_SERVE_SERVER_HH
#define GGPU_SERVE_SERVER_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "core/trace_store.hh"
#include "serve/batcher.hh"
#include "serve/request.hh"
#include "sim/gpu.hh"

namespace ggpu::serve
{

/** One serving experiment's knobs (beyond the tape itself). */
struct ServeConfig
{
    SystemConfig system;
    kernels::InputScale scale = kernels::InputScale::Tiny;
    BatcherConfig batcher;
    int streams = 2;  //!< Concurrent simulated streams (>= 1)

    // Modelled request payload: bytes moved per read over PCIe. Reads
    // upload query+reference slices and download score/traceback
    // summaries, so H2D dominates.
    std::uint64_t h2dBytesPerRead = 256;
    std::uint64_t d2hBytesPerRead = 64;
};

/** Timing of one served batch (report detail + tests). */
struct BatchRecord
{
    std::uint32_t app = 0;
    int stream = 0;
    std::uint64_t requests = 0;
    std::uint64_t reads = 0;
    Cycles formedAt = 0;
    Cycles h2dDoneAt = 0;
    Cycles kernelReadyAt = 0;  //!< enqueueStream ready_at
    Cycles kernelDoneAt = 0;
    Cycles d2hDoneAt = 0;
};

/** Outcome of one serving run. */
struct ServeResult
{
    std::uint64_t requests = 0;  //!< Tape length
    std::uint64_t served = 0;    //!< Requests whose D2H completed
    std::uint64_t reads = 0;
    std::uint64_t batches = 0;

    /** Last D2H completion (the tape starts near cycle 0). */
    Cycles makespan = 0;

    /** Per-request latency (D2H done - arrival), ascending. */
    std::vector<std::uint64_t> latencyCycles;

    /** Batch-size histogram: bucket k = batches carrying k requests
     *  (bucket 0 unused; buckets = maxBatch + 1). */
    Histogram batchOccupancy{1};

    /** Per-stream kernel-busy cycles (enqueue ready to completion). */
    std::vector<Cycles> streamBusy;

    std::vector<BatchRecord> batchLog;

    std::uint64_t h2dBytes = 0;
    std::uint64_t d2hBytes = 0;
    std::uint64_t pciTransactions = 0;

    sim::SimStats stats;  //!< Device counters for the serve session
};

/**
 * Serve @p tape under @p config. Kernel templates are emitted (or
 * reused) through @p store: one tiny-grid trace bundle per application
 * in the tape's mix; a batch of R reads replays the first
 * min(R, grid) CTAs of its app's largest kernel.
 */
ServeResult runServing(const RequestTape &tape, const ServeConfig &config,
                       core::TraceStore &store);

} // namespace ggpu::serve

#endif // GGPU_SERVE_SERVER_HH
