/**
 * @file
 * `ggpu_serve`: run one streaming serving experiment from the command
 * line — generate a seeded request tape, serve it on a simulated
 * device, print the latency/throughput summary, and optionally write
 * a `ggpu.serving.v1` artifact. Every flag has a GGPU_SERVE_* env
 * default (docs/CONFIGURATION.md); scale and engine lanes come from
 * the usual GGPU_SCALE / GGPU_THREADS.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "core/metrics_merge.hh"
#include "core/report.hh"
#include "core/trace_store.hh"
#include "serve/report.hh"
#include "serve/server.hh"

namespace
{

using namespace ggpu;

std::string
envOr(const char *name, const std::string &fallback)
{
    const char *value = std::getenv(name);
    return value && *value ? value : fallback;
}

double
parseNumber(const std::string &what, const std::string &text)
{
    try {
        std::size_t used = 0;
        const double value = std::stod(text, &used);
        if (used == text.size())
            return value;
    } catch (...) {
    }
    fatal("ggpu_serve: bad ", what, " '", text, "'");
}

std::vector<std::string>
splitApps(const std::string &list)
{
    std::vector<std::string> apps;
    std::istringstream in(list);
    std::string app;
    while (std::getline(in, app, ','))
        if (!app.empty())
            apps.push_back(app);
    return apps;
}

void
usage()
{
    std::cout
        << "usage: ggpu_serve [options]\n"
           "  --rate R        mean arrivals/second (GGPU_SERVE_RATE)\n"
           "  --requests N    tape length (GGPU_SERVE_REQUESTS)\n"
           "  --process P     poisson|bursty (GGPU_SERVE_PROCESS)\n"
           "  --policy P      fifo|perapp|binned (GGPU_SERVE_POLICY)\n"
           "  --streams N     concurrent streams (GGPU_SERVE_STREAMS)\n"
           "  --max-batch N   requests/launch (GGPU_SERVE_MAX_BATCH)\n"
           "  --timeout-us U  batch flush timeout "
           "(GGPU_SERVE_TIMEOUT_US)\n"
           "  --seed S        tape seed (GGPU_SERVE_SEED)\n"
           "  --apps A,B      application mix (GGPU_SERVE_APPS)\n"
           "  --json PATH     write a ggpu.serving.v1 artifact\n"
           "Scale/threads come from GGPU_SCALE / GGPU_THREADS.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string rate = envOr("GGPU_SERVE_RATE", "2000");
    std::string requests = envOr("GGPU_SERVE_REQUESTS", "128");
    std::string process = envOr("GGPU_SERVE_PROCESS", "poisson");
    std::string policy = envOr("GGPU_SERVE_POLICY", "perapp");
    std::string streams = envOr("GGPU_SERVE_STREAMS", "2");
    std::string max_batch = envOr("GGPU_SERVE_MAX_BATCH", "32");
    std::string timeout_us = envOr("GGPU_SERVE_TIMEOUT_US", "300");
    std::string seed = envOr("GGPU_SERVE_SEED", "24317");
    std::string apps = envOr("GGPU_SERVE_APPS", "SW,GL");
    std::string json_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("ggpu_serve: ", arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--rate")
            rate = next();
        else if (arg == "--requests")
            requests = next();
        else if (arg == "--process")
            process = next();
        else if (arg == "--policy")
            policy = next();
        else if (arg == "--streams")
            streams = next();
        else if (arg == "--max-batch")
            max_batch = next();
        else if (arg == "--timeout-us")
            timeout_us = next();
        else if (arg == "--seed")
            seed = next();
        else if (arg == "--apps")
            apps = next();
        else if (arg == "--json")
            json_path = next();
        else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("ggpu_serve: unknown option '", arg, "'");
        }
    }

    serve::ServeConfig config;
    config.system.sim.threads = core::threadsFromEnv();
    config.scale = core::scaleFromEnv();
    config.streams = int(parseNumber("--streams", streams));
    config.batcher.maxBatch =
        std::uint64_t(parseNumber("--max-batch", max_batch));
    config.batcher.timeout =
        Cycles(parseNumber("--timeout-us", timeout_us) *
               config.system.gpu.coreClockGhz * 1e3);
    if (!serve::parsePolicy(policy, config.batcher.policy))
        fatal("ggpu_serve: unknown policy '", policy, "'");

    serve::TapeConfig tape_config;
    tape_config.ratePerSec = parseNumber("--rate", rate);
    tape_config.requests =
        std::uint64_t(parseNumber("--requests", requests));
    tape_config.seed = std::uint64_t(parseNumber("--seed", seed));
    tape_config.coreClockGhz = config.system.gpu.coreClockGhz;
    tape_config.apps = splitApps(apps);
    if (!serve::parseArrivalProcess(process, tape_config.process))
        fatal("ggpu_serve: unknown arrival process '", process, "'");
    if (tape_config.apps.empty())
        fatal("ggpu_serve: empty --apps list");

    const serve::RequestTape tape = serve::generateTape(tape_config);
    core::TraceStore store;
    const serve::ServeResult result =
        serve::runServing(tape, config, store);

    const std::string label =
        std::string(serve::arrivalProcessName(tape_config.process)) +
        "-" + rate + "/" + serve::policyName(config.batcher.policy) +
        "/s" + streams;

    core::Table table({"metric", "value"});
    const double ghz = config.system.gpu.coreClockGhz;
    auto ms = [&](double p) {
        return core::Table::num(
            double(percentileOfSorted(result.latencyCycles, p)) /
                (ghz * 1e6),
            3);
    };
    table.addRow({"requests", std::to_string(result.requests)});
    table.addRow({"served", std::to_string(result.served)});
    table.addRow({"reads", std::to_string(result.reads)});
    table.addRow({"batches", std::to_string(result.batches)});
    table.addRow(
        {"makespan_cycles", std::to_string(result.makespan)});
    table.addRow(
        {"reads_per_sec",
         core::Table::num(result.makespan > 0
                              ? double(result.reads) /
                                    (double(result.makespan) /
                                     (ghz * 1e9))
                              : 0.0,
                          1)});
    table.addRow({"latency_p50_ms", ms(0.50)});
    table.addRow({"latency_p95_ms", ms(0.95)});
    table.addRow({"latency_p99_ms", ms(0.99)});
    std::cout << "== serving " << label << " ==\n";
    table.print(std::cout);

    if (!json_path.empty()) {
        std::vector<core::json::Value> points;
        points.push_back(
            serve::pointToJson(label, tape, config, result));
        const core::json::Value doc = serve::buildServingArtifact(
            core::scaleName(config.scale),
            config.system.sim.threads, tape_config.seed,
            std::move(points));
        serve::validateServingArtifact(json_path, doc);
        core::writeJsonFile(json_path, doc);
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}
