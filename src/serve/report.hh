/**
 * @file
 * The `ggpu.serving.v1` artifact: JSON export of a serving sweep
 * (sustained throughput, latency percentiles, batch-occupancy
 * histograms, per-stream utilization per sweep point) plus the
 * validator that CI's serving_artifact_contract test and
 * `ggpu_metrics_tool validate` apply to it. The annotated schema
 * lives in docs/SERVING.md.
 */

#ifndef GGPU_SERVE_REPORT_HH
#define GGPU_SERVE_REPORT_HH

#include <string>
#include <vector>

#include "core/json.hh"
#include "serve/server.hh"

namespace ggpu::serve
{

/** Schema identifier stamped into every serving artifact. */
inline constexpr const char *servingSchema = "ggpu.serving.v1";

/**
 * Flatten one sweep point — the tape/batcher/stream configuration it
 * ran under and everything it measured — into the artifact's "points"
 * element. Deterministic: every number derives from the seeded tape
 * and the byte-deterministic device, so the same configuration dumps
 * the same bytes under any engine or lane count.
 */
core::json::Value pointToJson(const std::string &label,
                              const RequestTape &tape,
                              const ServeConfig &config,
                              const ServeResult &result);

/** Assemble the whole artifact from rendered points. */
core::json::Value
buildServingArtifact(const std::string &scale_name, int threads,
                     std::uint64_t seed,
                     std::vector<core::json::Value> points);

/**
 * Check one parsed `ggpu.serving.v1` artifact: schema tag,
 * provenance, and per-point invariants (every request served,
 * latency percentiles monotone in the percentile, occupancy counts
 * summing to the batch count, utilizations within [0, 1]). Throws
 * FatalError naming @p path and the defect.
 */
void validateServingArtifact(const std::string &path,
                             const core::json::Value &doc);

} // namespace ggpu::serve

#endif // GGPU_SERVE_REPORT_HH
