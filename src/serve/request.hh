/**
 * @file
 * Request model of the streaming serving mode: an arrival-timed,
 * seeded tape of alignment requests (mixed applications, per-request
 * read counts) that the batcher and stream server consume. The tape is
 * generated once per experiment from a TapeConfig, so every sweep
 * point — and every engine/thread configuration — replays the exact
 * same request sequence.
 */

#ifndef GGPU_SERVE_REQUEST_HH
#define GGPU_SERVE_REQUEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ggpu::serve
{

/** Shape of the arrival process (docs/SERVING.md). */
enum class ArrivalProcess
{
    Poisson,  //!< Independent exponential inter-arrival gaps
    Bursty    //!< Alternating high/low-rate phases (same mean rate)
};

/** "poisson" / "bursty". */
const char *arrivalProcessName(ArrivalProcess process);

/** Parse an arrival-process name; returns false on unknown names. */
bool parseArrivalProcess(const std::string &name, ArrivalProcess &out);

/** Everything the tape generator depends on (all of it is in the
 *  reproducibility key of a serving experiment). */
struct TapeConfig
{
    ArrivalProcess process = ArrivalProcess::Poisson;
    double ratePerSec = 2000.0;      //!< Mean request arrival rate
    std::uint64_t requests = 256;    //!< Tape length
    std::uint64_t seed = 0x5eedu;    //!< Generator seed
    double coreClockGhz = 1.5;       //!< Converts seconds to cycles

    // Bursty shape: phases of phaseLen requests alternate between
    // rate * burstFactor and rate * calmFactor. The first phase is a
    // burst. Ignored by the Poisson process.
    double burstFactor = 4.0;
    double calmFactor = 0.25;
    std::uint64_t phaseLen = 32;

    /** Application mix, drawn uniformly per request (Table III
     *  abbreviations, e.g. {"SW", "GL"}). Must be non-empty. */
    std::vector<std::string> apps = {"SW"};

    /** Per-request read-count range (uniform in [minReads, maxReads]). */
    std::uint64_t minReads = 8;
    std::uint64_t maxReads = 64;
};

/** One serving request on the tape. */
struct Request
{
    std::uint64_t id = 0;     //!< Tape position (0-based, arrival order)
    Cycles arrival = 0;       //!< Arrival time in core cycles
    std::uint32_t app = 0;    //!< Index into TapeConfig::apps
    std::uint32_t reads = 0;  //!< Alignment reads carried by the request
};

/** An immutable, arrival-sorted request tape. */
struct RequestTape
{
    TapeConfig config;
    std::vector<Request> requests;

    std::uint64_t totalReads() const;
};

/**
 * Generate the request tape for @p config. Deterministic: the same
 * config (seed included) yields the same tape on every platform —
 * inter-arrival gaps are derived from ggpu::Rng draws and rounded to
 * whole cycles, never from wall-clock state.
 */
RequestTape generateTape(const TapeConfig &config);

} // namespace ggpu::serve

#endif // GGPU_SERVE_REQUEST_HH
