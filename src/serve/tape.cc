#include "serve/request.hh"

#include <cmath>

#include "common/log.hh"
#include "common/random.hh"

namespace ggpu::serve
{

const char *
arrivalProcessName(ArrivalProcess process)
{
    switch (process) {
      case ArrivalProcess::Poisson:
        return "poisson";
      case ArrivalProcess::Bursty:
        return "bursty";
    }
    return "?";
}

bool
parseArrivalProcess(const std::string &name, ArrivalProcess &out)
{
    if (name == "poisson") {
        out = ArrivalProcess::Poisson;
        return true;
    }
    if (name == "bursty") {
        out = ArrivalProcess::Bursty;
        return true;
    }
    return false;
}

std::uint64_t
RequestTape::totalReads() const
{
    std::uint64_t reads = 0;
    for (const Request &r : requests)
        reads += r.reads;
    return reads;
}

namespace
{

/** Exponential inter-arrival gap at @p rate_per_sec, in whole core
 *  cycles (floored, minimum 1 so arrivals stay strictly ordered in
 *  time only when the draw allows — equal-cycle arrivals are legal). */
Cycles
expGapCycles(Rng &rng, double rate_per_sec, double ghz)
{
    // uniform() is in [0, 1); 1 - u is in (0, 1], so the log is finite.
    const double u = rng.uniform();
    const double gap_seconds = -std::log(1.0 - u) / rate_per_sec;
    return Cycles(gap_seconds * ghz * 1e9);
}

} // namespace

RequestTape
generateTape(const TapeConfig &config)
{
    if (config.apps.empty())
        panic("generateTape: empty application mix");
    if (config.ratePerSec <= 0.0)
        panic("generateTape: arrival rate must be positive");
    if (config.minReads == 0 || config.minReads > config.maxReads)
        panic("generateTape: bad read-count range [", config.minReads,
              ", ", config.maxReads, "]");
    if (config.process == ArrivalProcess::Bursty && config.phaseLen == 0)
        panic("generateTape: bursty phase length must be nonzero");

    RequestTape tape;
    tape.config = config;
    tape.requests.reserve(std::size_t(config.requests));

    Rng rng(config.seed);
    Cycles clock = 0;
    for (std::uint64_t i = 0; i < config.requests; ++i) {
        double rate = config.ratePerSec;
        if (config.process == ArrivalProcess::Bursty) {
            const bool burst = (i / config.phaseLen) % 2 == 0;
            rate *= burst ? config.burstFactor : config.calmFactor;
        }
        clock += expGapCycles(rng, rate, config.coreClockGhz);

        Request request;
        request.id = i;
        request.arrival = clock;
        request.app =
            std::uint32_t(rng.below(std::uint64_t(config.apps.size())));
        request.reads = std::uint32_t(
            rng.between(std::int64_t(config.minReads),
                        std::int64_t(config.maxReads)));
        tape.requests.push_back(request);
    }
    return tape;
}

} // namespace ggpu::serve
