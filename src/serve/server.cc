#include "serve/server.hh"

#include <algorithm>
#include <deque>
#include <map>

#include "common/log.hh"
#include "mem/pci.hh"

namespace ggpu::serve
{

namespace
{

/** Per-application kernel template a batch replays a prefix of. */
struct Template
{
    const sim::KernelTrace *kernel = nullptr;
};

/** A batch staged onto a stream (H2D scheduled, kernel maybe not). */
struct InFlight
{
    Batch batch;
    std::uint64_t reads = 0;
    int stream = 0;
    Cycles h2dDoneAt = 0;
    Cycles kernelReadyAt = 0;
    std::uint64_t ticket = 0;  //!< 0 until the kernel is enqueued
};

} // namespace

ServeResult
runServing(const RequestTape &tape, const ServeConfig &config,
           core::TraceStore &store)
{
    if (config.streams < 1)
        panic("runServing: need at least one stream");
    const SystemConfig &system = config.system;
    const double ghz = system.gpu.coreClockGhz;

    // Emit (or reuse) one trace bundle per application in the mix; a
    // batch replays a CTA prefix of the app's largest kernel, so the
    // template only has to be emitted once regardless of batch sizes.
    kernels::AppOptions options;
    options.cdp = false;
    options.scale = config.scale;
    std::vector<Template> templates;
    templates.reserve(tape.config.apps.size());
    for (const std::string &app : tape.config.apps) {
        const sim::TraceBundle &bundle =
            store.get(app, options, system.gpu.lineBytes);
        if (bundle.lineBytes != system.gpu.lineBytes)
            panic("runServing: bundle line size ", bundle.lineBytes,
                  " != device line size ", system.gpu.lineBytes);
        const sim::KernelTrace *largest = nullptr;
        for (const sim::KernelTrace &kernel : bundle.kernels) {
            if (!largest || kernel.ctas.size() > largest->ctas.size())
                largest = &kernel;
        }
        if (!largest)
            panic("runServing: app '", app, "' emitted no kernels");
        templates.push_back(Template{largest});
    }

    ServeResult result;
    result.requests = tape.requests.size();
    result.batchOccupancy =
        Histogram(std::size_t(config.batcher.maxBatch) + 1);
    result.streamBusy.assign(std::size_t(config.streams), 0);

    sim::Gpu gpu(system);
    gpu.beginStreamMode();
    mem::PciModel pci(system.pci);
    Batcher batcher(config.batcher,
                    std::uint32_t(tape.config.apps.size()));

    std::size_t tapeIdx = 0;
    std::deque<Batch> backlog;
    std::vector<std::deque<InFlight>> staged(std::size_t(config.streams));
    std::vector<bool> kernelInFlight(std::size_t(config.streams), false);
    std::map<std::uint64_t, int> ticketStream;
    // The two copy engines. One transfer at a time per direction,
    // back-to-back transfers queue: classic DMA-engine serialization,
    // overlapped with whatever compute the streams have in flight.
    Cycles h2dFreeAt = 0;
    Cycles d2hFreeAt = 0;

    // Launch the stream's next staged batch once its predecessor left
    // the device. ready_at carries the H2D and launch-overhead edges,
    // so enqueueing eagerly (possibly before the data lands) is safe.
    auto maybeLaunch = [&](int s, Cycles now) {
        auto &queue = staged[std::size_t(s)];
        if (kernelInFlight[std::size_t(s)] || queue.empty())
            return;
        InFlight &flight = queue.front();
        const Template &tmpl = templates[flight.batch.app];
        const std::uint64_t ctas = std::min<std::uint64_t>(
            std::max<std::uint64_t>(flight.reads, 1),
            tmpl.kernel->ctas.size());
        flight.kernelReadyAt = std::max(now, flight.h2dDoneAt) +
                               system.gpu.kernelLaunchOverhead;
        flight.ticket =
            gpu.enqueueStream(*tmpl.kernel, ctas, flight.kernelReadyAt);
        ticketStream[flight.ticket] = s;
        kernelInFlight[std::size_t(s)] = true;
    };

    // Double-buffer admission: each stream holds at most two staged
    // batches (one computing, one with its H2D in flight), so a burst
    // backs up in the host-side backlog instead of over-committing
    // transfer bandwidth far ahead of compute.
    auto admitBacklog = [&](Cycles now) {
        while (!backlog.empty()) {
            int best = -1;
            std::size_t bestLoad = 2;
            for (int s = 0; s < config.streams; ++s) {
                if (staged[std::size_t(s)].size() < bestLoad) {
                    bestLoad = staged[std::size_t(s)].size();
                    best = s;
                }
            }
            if (best < 0)
                break;
            InFlight flight;
            flight.batch = std::move(backlog.front());
            backlog.pop_front();
            flight.reads = flight.batch.reads();
            flight.stream = best;
            const std::uint64_t bytes =
                flight.reads * config.h2dBytesPerRead;
            const Cycles start = std::max(now, h2dFreeAt);
            flight.h2dDoneAt =
                start + pci.transfer(bytes,
                                     mem::PciDirection::HostToDevice,
                                     ghz);
            h2dFreeAt = flight.h2dDoneAt;
            result.h2dBytes += bytes;
            staged[std::size_t(best)].push_back(std::move(flight));
            maybeLaunch(best, now);
        }
    };

    auto processCompletions =
        [&](std::vector<sim::StreamCompletion> done) {
            // Recording order is already deterministic (cycle barrier,
            // core-index order); sort to make the contract explicit.
            std::sort(done.begin(), done.end(),
                      [](const sim::StreamCompletion &a,
                         const sim::StreamCompletion &b) {
                          return a.doneAt != b.doneAt
                                     ? a.doneAt < b.doneAt
                                     : a.ticket < b.ticket;
                      });
            for (const sim::StreamCompletion &completion : done) {
                const auto it = ticketStream.find(completion.ticket);
                if (it == ticketStream.end())
                    panic("runServing: unknown stream ticket ",
                          completion.ticket);
                const int s = it->second;
                ticketStream.erase(it);
                auto &queue = staged[std::size_t(s)];
                if (queue.empty() ||
                    queue.front().ticket != completion.ticket)
                    panic("runServing: completion out of stream order");
                InFlight flight = std::move(queue.front());
                queue.pop_front();
                kernelInFlight[std::size_t(s)] = false;

                result.streamBusy[std::size_t(s)] +=
                    completion.doneAt - flight.kernelReadyAt;
                const std::uint64_t bytes =
                    flight.reads * config.d2hBytesPerRead;
                const Cycles start =
                    std::max(completion.doneAt, d2hFreeAt);
                const Cycles d2h_done =
                    start + pci.transfer(
                                bytes,
                                mem::PciDirection::DeviceToHost, ghz);
                d2hFreeAt = d2h_done;
                result.d2hBytes += bytes;

                for (const Request &request : flight.batch.requests) {
                    result.latencyCycles.push_back(d2h_done -
                                                   request.arrival);
                }
                result.served += flight.batch.requests.size();
                result.reads += flight.reads;
                ++result.batches;
                result.batchOccupancy.add(flight.batch.requests.size());
                result.makespan = std::max(result.makespan, d2h_done);

                BatchRecord record;
                record.app = flight.batch.app;
                record.stream = s;
                record.requests = flight.batch.requests.size();
                record.reads = flight.reads;
                record.formedAt = flight.batch.formedAt;
                record.h2dDoneAt = flight.h2dDoneAt;
                record.kernelReadyAt = flight.kernelReadyAt;
                record.kernelDoneAt = completion.doneAt;
                record.d2hDoneAt = d2h_done;
                result.batchLog.push_back(record);

                maybeLaunch(s, gpu.now());
            }
            admitBacklog(gpu.now());
        };

    // The serve loop: hop between host events (arrivals, batcher
    // timeout deadlines) and device events (stream kernel
    // completions), whichever comes first. advanceStreams() never
    // overshoots the requested stop, so every host event is processed
    // at exactly its own cycle.
    while (true) {
        const Cycles next_arrival = tapeIdx < tape.requests.size()
                                        ? tape.requests[tapeIdx].arrival
                                        : ~Cycles(0);
        const Cycles next_host =
            std::min(next_arrival, batcher.nextDeadline());
        if (next_host == ~Cycles(0) && gpu.streamIdle()) {
            bool pending = !backlog.empty();
            for (const auto &queue : staged)
                pending = pending || !queue.empty();
            if (pending)
                panic("runServing: stalled with staged work");
            break;
        }
        if (next_host > gpu.now()) {
            gpu.advanceStreams(next_host);
            std::vector<sim::StreamCompletion> done =
                gpu.takeStreamCompletions();
            if (!done.empty())
                processCompletions(std::move(done));
        }
        const Cycles now = gpu.now();
        while (tapeIdx < tape.requests.size() &&
               tape.requests[tapeIdx].arrival <= now) {
            batcher.enqueue(tape.requests[tapeIdx],
                            tape.requests[tapeIdx].arrival);
            ++tapeIdx;
        }
        for (Batch &batch : batcher.ready(now))
            backlog.push_back(std::move(batch));
        admitBacklog(now);
    }

    gpu.endStreamMode();
    result.stats = gpu.stats();
    result.pciTransactions = pci.transactions();
    std::sort(result.latencyCycles.begin(), result.latencyCycles.end());
    return result;
}

} // namespace ggpu::serve
