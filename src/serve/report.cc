#include "serve/report.hh"

#include "common/log.hh"

namespace ggpu::serve
{

using core::json::Value;

namespace
{

double
cyclesToMs(std::uint64_t cycles, double ghz)
{
    return double(cycles) / (ghz * 1e9) * 1e3;
}

Value
latencyObject(const std::vector<std::uint64_t> &sorted)
{
    Value out = Value::object();
    out.set("p50", percentileOfSorted(sorted, 0.50));
    out.set("p95", percentileOfSorted(sorted, 0.95));
    out.set("p99", percentileOfSorted(sorted, 0.99));
    std::uint64_t sum = 0;
    for (std::uint64_t v : sorted)
        sum += v;
    out.set("mean", ratio(sum, sorted.size()));
    out.set("max", sorted.empty() ? std::uint64_t(0) : sorted.back());
    return out;
}

} // namespace

Value
pointToJson(const std::string &label, const RequestTape &tape,
            const ServeConfig &config, const ServeResult &result)
{
    const TapeConfig &tc = tape.config;
    const double ghz = config.system.gpu.coreClockGhz;

    Value point = Value::object();
    point.set("label", label);

    Value arrival = Value::object();
    arrival.set("process", arrivalProcessName(tc.process));
    arrival.set("rate_per_sec", tc.ratePerSec);
    arrival.set("requests", tc.requests);
    arrival.set("seed", tc.seed);
    Value apps = Value::array();
    for (const std::string &app : tc.apps)
        apps.push(app);
    arrival.set("apps", std::move(apps));
    arrival.set("min_reads", tc.minReads);
    arrival.set("max_reads", tc.maxReads);
    point.set("arrival", std::move(arrival));

    Value batcher = Value::object();
    batcher.set("policy", policyName(config.batcher.policy));
    batcher.set("max_batch", config.batcher.maxBatch);
    batcher.set("timeout_cycles", std::uint64_t(config.batcher.timeout));
    point.set("batcher", std::move(batcher));

    point.set("streams", config.streams);
    point.set("requests", result.requests);
    point.set("served", result.served);
    point.set("reads", result.reads);
    point.set("batches", result.batches);
    point.set("makespan_cycles", std::uint64_t(result.makespan));
    const double makespan_seconds =
        double(result.makespan) / (ghz * 1e9);
    point.set("reads_per_sec",
              makespan_seconds > 0.0
                  ? double(result.reads) / makespan_seconds
                  : 0.0);

    point.set("latency_cycles", latencyObject(result.latencyCycles));
    Value latency_ms = Value::object();
    latency_ms.set(
        "p50", cyclesToMs(percentileOfSorted(result.latencyCycles, 0.50),
                          ghz));
    latency_ms.set(
        "p95", cyclesToMs(percentileOfSorted(result.latencyCycles, 0.95),
                          ghz));
    latency_ms.set(
        "p99", cyclesToMs(percentileOfSorted(result.latencyCycles, 0.99),
                          ghz));
    point.set("latency_ms", std::move(latency_ms));

    Value occupancy = Value::object();
    Value counts = Value::array();
    for (std::size_t k = 0; k < result.batchOccupancy.buckets(); ++k)
        counts.push(result.batchOccupancy.count(k));
    occupancy.set("counts", std::move(counts));
    occupancy.set("total", result.batchOccupancy.total());
    occupancy.set("overflow", result.batchOccupancy.overflow());
    point.set("batch_occupancy", std::move(occupancy));

    Value utilization = Value::array();
    for (Cycles busy : result.streamBusy) {
        utilization.push(result.makespan > 0
                             ? double(busy) / double(result.makespan)
                             : 0.0);
    }
    point.set("stream_utilization", std::move(utilization));

    Value pci = Value::object();
    pci.set("h2d_bytes", result.h2dBytes);
    pci.set("d2h_bytes", result.d2hBytes);
    pci.set("transactions", result.pciTransactions);
    point.set("pci", std::move(pci));

    Value device = Value::object();
    device.set("gpu_cycles", std::uint64_t(result.stats.gpuCycles));
    device.set("launches", result.stats.launches);
    device.set("instructions", result.stats.totalInsns());
    device.set("l2_accesses", result.stats.l2Accesses);
    device.set("dram_served", result.stats.dramServed);
    point.set("device", std::move(device));
    return point;
}

Value
buildServingArtifact(const std::string &scale_name, int threads,
                     std::uint64_t seed, std::vector<Value> points)
{
    Value doc = Value::object();
    doc.set("schema", servingSchema);
    Value provenance = Value::object();
    provenance.set("scale", scale_name);
    provenance.set("threads", threads);
    provenance.set("seed", seed);
    doc.set("provenance", std::move(provenance));
    Value array = Value::array();
    for (Value &point : points)
        array.push(std::move(point));
    doc.set("points", std::move(array));
    return doc;
}

namespace
{

[[noreturn]] void
fail(const std::string &path, const std::string &what)
{
    fatal("serving artifact ", path, ": ", what);
}

double
number(const std::string &path, const Value &obj, const std::string &key)
{
    const Value *v = obj.find(key);
    if (!v || !v->isNumber())
        fail(path, "missing numeric '" + key + "'");
    return v->asNumber();
}

} // namespace

void
validateServingArtifact(const std::string &path, const Value &doc)
{
    if (!doc.isObject())
        fail(path, "top level is not an object");
    const Value *schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != servingSchema)
        fail(path, std::string("schema tag is not ") + servingSchema);
    const Value *provenance = doc.find("provenance");
    if (!provenance || !provenance->isObject())
        fail(path, "missing provenance object");
    for (const char *key : {"scale", "threads", "seed"}) {
        if (!provenance->has(key))
            fail(path, std::string("provenance lacks '") + key + "'");
    }
    const Value *points = doc.find("points");
    if (!points || !points->isArray())
        fail(path, "missing points array");

    for (std::size_t i = 0; i < points->size(); ++i) {
        const Value &point = points->at(i);
        const std::string where = "points[" + std::to_string(i) + "] ";
        if (!point.isObject())
            fail(path, where + "is not an object");
        for (const char *key :
             {"label", "arrival", "batcher", "streams", "requests",
              "served", "reads", "batches", "makespan_cycles",
              "reads_per_sec", "latency_cycles", "latency_ms",
              "batch_occupancy", "stream_utilization", "pci"}) {
            if (!point.has(key))
                fail(path, where + "lacks '" + key + "'");
        }

        const double requests = number(path, point, "requests");
        const double served = number(path, point, "served");
        if (served != requests)
            fail(path, where + "served != requests (dropped work)");
        if (requests > 0 && number(path, point, "reads") <= 0)
            fail(path, where + "has requests but no reads");

        const Value &latency = point.at("latency_cycles");
        const double p50 = number(path, latency, "p50");
        const double p95 = number(path, latency, "p95");
        const double p99 = number(path, latency, "p99");
        const double max = number(path, latency, "max");
        if (p50 > p95 || p95 > p99 || p99 > max)
            fail(path,
                 where + "latency percentiles not monotone in p");

        const Value &occupancy = point.at("batch_occupancy");
        const Value *counts = occupancy.find("counts");
        if (!counts || !counts->isArray())
            fail(path, where + "occupancy lacks counts array");
        double occupancy_sum = 0;
        for (std::size_t k = 0; k < counts->size(); ++k)
            occupancy_sum += counts->at(k).asNumber();
        if (occupancy_sum != number(path, occupancy, "total"))
            fail(path, where + "occupancy counts do not sum to total");
        if (occupancy_sum != number(path, point, "batches"))
            fail(path, where + "occupancy total != batch count");
        if (number(path, occupancy, "overflow") != 0)
            fail(path, where + "occupancy histogram overflowed");

        const Value &utilization = point.at("stream_utilization");
        if (!utilization.isArray() ||
            utilization.size() !=
                std::size_t(number(path, point, "streams")))
            fail(path, where + "stream_utilization size != streams");
        for (std::size_t s = 0; s < utilization.size(); ++s) {
            const double u = utilization.at(s).asNumber();
            if (u < 0.0 || u > 1.0)
                fail(path, where + "stream utilization outside [0,1]");
        }
    }
}

} // namespace ggpu::serve
