#include "serve/batcher.hh"

#include "common/log.hh"

namespace ggpu::serve
{

const char *
policyName(BatchPolicy policy)
{
    switch (policy) {
      case BatchPolicy::Fifo:
        return "fifo";
      case BatchPolicy::PerApp:
        return "perapp";
      case BatchPolicy::LengthBinned:
        return "binned";
    }
    return "?";
}

bool
parsePolicy(const std::string &name, BatchPolicy &out)
{
    if (name == "fifo") {
        out = BatchPolicy::Fifo;
        return true;
    }
    if (name == "perapp") {
        out = BatchPolicy::PerApp;
        return true;
    }
    if (name == "binned") {
        out = BatchPolicy::LengthBinned;
        return true;
    }
    return false;
}

std::size_t
lengthBin(std::uint32_t reads)
{
    if (reads <= 16)
        return 0;
    if (reads <= 32)
        return 1;
    return 2;
}

std::uint64_t
Batch::reads() const
{
    std::uint64_t total = 0;
    for (const Request &r : requests)
        total += r.reads;
    return total;
}

Batcher::Batcher(const BatcherConfig &config, std::uint32_t num_apps)
    : cfg_(config)
{
    if (num_apps == 0)
        panic("Batcher: zero applications");
    if (cfg_.maxBatch == 0)
        panic("Batcher: maxBatch must be nonzero");
    std::size_t queues = 1;
    switch (cfg_.policy) {
      case BatchPolicy::Fifo:
        queues = 1;
        break;
      case BatchPolicy::PerApp:
        queues = num_apps;
        break;
      case BatchPolicy::LengthBinned:
        queues = std::size_t(num_apps) * numLengthBins;
        break;
    }
    queues_.resize(queues);
}

std::size_t
Batcher::queueFor(const Request &request) const
{
    switch (cfg_.policy) {
      case BatchPolicy::Fifo:
        return 0;
      case BatchPolicy::PerApp:
        return request.app;
      case BatchPolicy::LengthBinned:
        return std::size_t(request.app) * numLengthBins +
               lengthBin(request.reads);
    }
    return 0;
}

void
Batcher::enqueue(const Request &request, Cycles now)
{
    Queue &queue = queues_[queueFor(request)];
    if (queue.requests.empty())
        queue.oldestArrival = now;
    queue.requests.push_back(request);
    ++pending_;
}

void
Batcher::popBatch(Queue &queue, Cycles now, std::vector<Batch> &out)
{
    const std::size_t take =
        std::min<std::size_t>(queue.requests.size(),
                              std::size_t(cfg_.maxBatch));
    Batch batch;
    batch.app = queue.requests.front().app;
    batch.formedAt = now;
    batch.requests.assign(queue.requests.begin(),
                          queue.requests.begin() +
                              std::ptrdiff_t(take));
    queue.requests.erase(queue.requests.begin(),
                         queue.requests.begin() + std::ptrdiff_t(take));
    pending_ -= take;
    if (!queue.requests.empty()) {
        // The timeout clock restarts for the remainder: they became
        // the head of the queue now, after their elders left.
        queue.oldestArrival = now;
    }
    out.push_back(std::move(batch));
}

std::vector<Batch>
Batcher::ready(Cycles now)
{
    std::vector<Batch> out;
    for (Queue &queue : queues_) {
        while (queue.requests.size() >= std::size_t(cfg_.maxBatch))
            popBatch(queue, now, out);
        if (!queue.requests.empty() &&
            now >= queue.oldestArrival + cfg_.timeout) {
            popBatch(queue, now, out);
        }
    }
    return out;
}

Cycles
Batcher::nextDeadline() const
{
    Cycles next = ~Cycles(0);
    for (const Queue &queue : queues_) {
        if (!queue.requests.empty())
            next = std::min(next, queue.oldestArrival + cfg_.timeout);
    }
    return next;
}

} // namespace ggpu::serve
