#include "core/metrics.hh"

#include <fstream>

#include "common/log.hh"
#include "sim/isa.hh"
#include "sim/stall.hh"

namespace ggpu::core
{

MetricsSink::MetricsSink(std::string figure, std::string scale,
                         int threads)
    : figure_(std::move(figure)), scale_(std::move(scale)),
      threads_(threads)
{
    if (figure_.empty())
        fatal("MetricsSink: figure id must not be empty");
}

void
MetricsSink::addRun(const std::string &config, const RunRecord &record)
{
    runs_.emplace_back(config, record);
}

void
MetricsSink::addSeries(const std::string &title, const Table &table)
{
    series_.emplace_back(title, table);
}

void
MetricsSink::setSection(const std::string &key, json::Value value)
{
    for (auto &[name, existing] : sections_) {
        if (name == key) {
            existing = std::move(value);
            return;
        }
    }
    sections_.emplace_back(key, std::move(value));
}

namespace
{

json::Value
dim3ToJson(const Dim3 &d)
{
    json::Value arr = json::Value::array();
    arr.push(std::uint64_t(d.x));
    arr.push(std::uint64_t(d.y));
    arr.push(std::uint64_t(d.z));
    return arr;
}

json::Value
histogramToJson(const Histogram &hist)
{
    json::Value obj = json::Value::object();
    json::Value counts = json::Value::array();
    for (std::size_t i = 0; i < hist.buckets(); ++i)
        counts.push(hist.count(i));
    obj.set("counts", std::move(counts));
    obj.set("total", hist.total());
    obj.set("overflow", hist.overflow());
    return obj;
}

json::Value
tableToJson(const std::string &title, const Table &table)
{
    json::Value obj = json::Value::object();
    obj.set("title", title);
    json::Value headers = json::Value::array();
    for (const auto &h : table.headers())
        headers.push(h);
    obj.set("headers", std::move(headers));
    json::Value rows = json::Value::array();
    for (const auto &row : table.rows()) {
        json::Value cells = json::Value::array();
        for (const auto &cell : row)
            cells.push(cell);
        rows.push(std::move(cells));
    }
    obj.set("rows", std::move(rows));
    return obj;
}

} // namespace

json::Value
MetricsSink::runToJson(const std::string &config,
                       const RunRecord &record)
{
    const sim::SimStats &stats = record.stats;

    json::Value run = json::Value::object();
    run.set("config", config);
    run.set("app", record.app);
    run.set("cdp", record.cdp);
    run.set("label", record.label());
    run.set("verified", record.verified);
    if (!record.detail.empty())
        run.set("detail", record.detail);

    run.set("kernel_cycles", record.kernelCycles);
    run.set("total_cycles", record.totalCycles);
    run.set("gpu_seconds", record.gpuSeconds);
    run.set("cpu_seconds", record.cpuSeconds);

    run.set("instructions", stats.totalInsns());
    run.set("ipc", stats.ipc());
    run.set("launches", stats.launches);
    run.set("issue_cycles", stats.issueCycles);
    run.set("sm_cycles", stats.smCycles);

    // nvprof-substitute profile (Fig 4): host-visible launch and
    // transfer counts/durations.
    run.set("kernel_invocations", record.kernelInvocations);
    run.set("pci_transactions", record.pciTransactions);
    run.set("profiled_kernel_cycles", record.profiledKernelCycles);
    run.set("profiled_pci_cycles", record.profiledPciCycles);
    run.set("pci_bytes", record.pciBytes);
    json::Value by_kernel = json::Value::object();
    for (const auto &[name, count] : record.kernelsByName)
        by_kernel.set(name, count);
    run.set("kernels_by_name", std::move(by_kernel));

    run.set("l1_accesses", stats.l1Accesses);
    run.set("l1_misses", stats.l1Misses);
    run.set("l1_miss_rate", stats.l1MissRate());
    run.set("l2_accesses", stats.l2Accesses);
    run.set("l2_misses", stats.l2Misses);
    run.set("l2_miss_rate", stats.l2MissRate());

    run.set("dram_served", stats.dramServed);
    run.set("dram_row_hits", stats.dramRowHits);
    run.set("dram_efficiency", stats.dramEfficiency());
    run.set("dram_utilization", stats.dramUtilization());

    run.set("noc_packets", stats.nocPackets);
    run.set("noc_flits", stats.nocFlits);
    run.set("noc_avg_latency",
            ratio(stats.nocLatencySum, stats.nocPackets));

    // Fractions go through the same figure extractors the text tables
    // use, so the artifact can never drift from what is printed.
    json::Value stalls = json::Value::object();
    for (std::size_t r = 0; r < std::size_t(sim::StallReason::NumReasons);
         ++r)
        stalls.set(sim::toString(sim::StallReason(r)),
                   stallFraction(record, sim::StallReason(r)));
    run.set("stalls", std::move(stalls));

    json::Value insn_mix = json::Value::object();
    for (std::size_t k = 0; k < std::size_t(sim::OpKind::NumKinds); ++k)
        insn_mix.set(sim::toString(sim::OpKind(k)),
                     insnFraction(record, sim::OpKind(k)));
    run.set("insn_mix", std::move(insn_mix));

    json::Value mem_mix = json::Value::object();
    for (std::size_t s = 0; s < std::size_t(sim::MemSpace::NumSpaces);
         ++s)
        mem_mix.set(sim::toString(sim::MemSpace(s)),
                    memFraction(record, sim::MemSpace(s)));
    run.set("mem_mix", std::move(mem_mix));

    run.set("occupancy", histogramToJson(stats.warpOcc));
    run.set("stall_samples", histogramToJson(stats.stalls));

    json::Value launch = json::Value::object();
    launch.set("kernel", record.primarySpec.name);
    launch.set("grid", dim3ToJson(record.primarySpec.grid));
    launch.set("cta", dim3ToJson(record.primarySpec.cta));
    run.set("launch", std::move(launch));

    return run;
}

const std::vector<std::string> &
MetricsSink::requiredRunKeys()
{
    static const std::vector<std::string> keys{
        "config",         "app",
        "cdp",            "label",
        "verified",       "kernel_cycles",
        "total_cycles",   "gpu_seconds",
        "instructions",   "ipc",
        "kernel_invocations", "pci_transactions",
        "l1_miss_rate",   "l2_miss_rate",
        "dram_efficiency", "dram_utilization",
        "noc_avg_latency", "stalls",
        "insn_mix",       "mem_mix",
        "occupancy",      "launch",
    };
    return keys;
}

json::Value
MetricsSink::toJson() const
{
    json::Value doc = json::Value::object();
    doc.set("schema", metricsSchema);
    doc.set("figure", figure_);

    json::Value provenance = json::Value::object();
    provenance.set("suite", "genomics-gpu");
    provenance.set("scale", scale_);
    provenance.set("threads", threads_);
    json::Value configs = json::Value::array();
    std::vector<std::string> seen;
    for (const auto &[config, record] : runs_) {
        (void)record;
        bool dup = false;
        for (const auto &s : seen)
            dup = dup || s == config;
        if (!dup) {
            seen.push_back(config);
            configs.push(config);
        }
    }
    provenance.set("configs", std::move(configs));
    doc.set("provenance", std::move(provenance));

    json::Value series = json::Value::array();
    for (const auto &[title, table] : series_)
        series.push(tableToJson(title, table));
    doc.set("series", std::move(series));

    json::Value runs = json::Value::array();
    for (const auto &[config, record] : runs_)
        runs.push(runToJson(config, record));
    doc.set("runs", std::move(runs));

    for (const auto &[key, value] : sections_)
        doc.set(key, value);

    return doc;
}

void
MetricsSink::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        fatal("MetricsSink: cannot open '", path, "' for writing");
    os << toJson().dump();
    os.flush();
    if (!os)
        fatal("MetricsSink: short write to '", path, "'");
}

} // namespace ggpu::core
