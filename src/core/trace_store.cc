#include "core/trace_store.hh"

#include <chrono>
#include <cstdlib>
#include <sstream>

#include "common/log.hh"
#include "runtime/device.hh"

namespace ggpu::core
{

namespace
{

std::string
storeKey(const std::string &app, const kernels::AppOptions &options,
         std::uint32_t line_bytes)
{
    std::ostringstream os;
    os << app << "|cdp=" << options.cdp
       << "|smem=" << options.sharedMem
       << "|scale=" << int(options.scale)
       << "|seed=" << options.seed
       << "|line=" << line_bytes;
    return os.str();
}

} // namespace

sim::TraceBundle
emitTrace(const std::string &app, const kernels::AppOptions &options,
          std::uint32_t line_bytes)
{
    sim::TraceBundle bundle;
    bundle.app = app;
    bundle.cdp = options.cdp;

    // Only lineBytes is trace-affecting; every other SystemConfig knob
    // is timing-only, so emission runs under the defaults.
    SystemConfig cfg;
    cfg.gpu.lineBytes = line_bytes;
    rt::Device device(cfg, &bundle);
    auto application = makeApp(app);
    const kernels::AppRunResult result = application->run(device, options);

    bundle.verified = result.verified;
    bundle.detail = result.detail;
    bundle.cpuReferenceSeconds = result.cpuReferenceSeconds;
    bundle.primarySpec = result.primarySpec;
    if (!bundle.verified)
        warn("trace-store: ", app, options.cdp ? "-CDP" : "",
             " failed functional verification at emission");
    return bundle;
}

RunRecord
timeTrace(const sim::TraceBundle &bundle, const SystemConfig &system,
          ReplayTelemetry *telemetry)
{
    rt::Device device(system);
    const auto start = std::chrono::steady_clock::now();
    const rt::ReplayResult replayed = device.replay(bundle);
    if (telemetry) {
        telemetry->wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        telemetry->engine = device.engineStats();
    }

    RunRecord record;
    record.app = bundle.app;
    record.cdp = bundle.cdp;
    record.verified = bundle.verified;
    record.detail = bundle.detail;
    record.kernelCycles = replayed.kernelCycles;
    record.totalCycles = replayed.totalCycles;
    record.gpuSeconds = device.seconds(replayed.kernelCycles);
    record.cpuSeconds = bundle.cpuReferenceSeconds;
    record.stats = device.gpu().stats();
    record.kernelInvocations = device.profiler().kernelInvocations();
    record.pciTransactions = device.profiler().pciTransactions();
    record.profiledKernelCycles = device.profiler().kernelCycles();
    record.profiledPciCycles = device.profiler().pciCycles();
    record.pciBytes = device.profiler().pciBytes();
    record.kernelsByName = device.profiler().byKernel();
    record.primarySpec = bundle.primarySpec;
    return record;
}

const sim::TraceBundle &
TraceStore::get(const std::string &app,
                const kernels::AppOptions &options,
                std::uint32_t line_bytes)
{
    const std::string key = storeKey(app, options, line_bytes);
    auto it = bundles_.find(key);
    if (it != bundles_.end()) {
        ++hits_;
        return *it->second;
    }
    ++emissions_;
    auto bundle = std::make_unique<sim::TraceBundle>(
        emitTrace(app, options, line_bytes));
    return *bundles_.emplace(key, std::move(bundle)).first->second;
}

bool
traceCacheDisabled()
{
    const char *env = std::getenv("GGPU_NO_TRACE_CACHE");
    return env != nullptr && std::string(env) == "1";
}

RunRecord
runAppCached(TraceStore &store, const std::string &name,
             const RunConfig &config)
{
    if (traceCacheDisabled())
        return runApp(name, config);
    const sim::TraceBundle &bundle =
        store.get(name, config.options, config.system.gpu.lineBytes);
    return timeTrace(bundle, config.system);
}

} // namespace ggpu::core
