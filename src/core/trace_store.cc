#include "core/trace_store.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "runtime/device.hh"
#include "sim/trace_serialize.hh"

namespace ggpu::core
{

namespace
{

bool
envFlag(const char *name)
{
    const char *env = std::getenv(name);
    return env != nullptr && std::string(env) == "1";
}

/** Key with every shell-hostile character folded to '_' — readable in
 *  a directory listing; the appended key hash provides uniqueness. */
std::string
sanitizeKey(const std::string &key)
{
    std::string out;
    out.reserve(key.size());
    for (char c : key) {
        const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '.' || c == '-';
        out.push_back(keep ? c : '_');
    }
    return out;
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/**
 * RAII exclusive flock on a sidecar lock file. Serializes emission of
 * one cache key across processes; bundle files themselves are never
 * locked (atomic rename makes plain reads safe).
 */
class FileLock
{
  public:
    explicit FileLock(const std::string &path)
        : fd_(::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644))
    {
        if (fd_ < 0) {
            warn("trace-store: cannot open lock file ", path);
            return;
        }
        while (::flock(fd_, LOCK_EX) != 0 && errno == EINTR) {}
    }

    ~FileLock()
    {
        if (fd_ >= 0)
            ::close(fd_);  // Releases the flock.
    }

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

  private:
    int fd_;
};

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return in.good() || in.eof();
}

} // namespace

std::string
traceStoreKey(const std::string &app, const kernels::AppOptions &options,
              std::uint32_t line_bytes)
{
    std::ostringstream os;
    os << app << "|cdp=" << options.cdp
       << "|smem=" << options.sharedMem
       << "|scale=" << int(options.scale)
       << "|seed=" << options.seed
       << "|line=" << line_bytes;
    return os.str();
}

sim::TraceBundle
emitTrace(const std::string &app, const kernels::AppOptions &options,
          std::uint32_t line_bytes)
{
    sim::TraceBundle bundle;
    bundle.app = app;
    bundle.cdp = options.cdp;

    // Only lineBytes is trace-affecting; every other SystemConfig knob
    // is timing-only, so emission runs under the defaults.
    SystemConfig cfg;
    cfg.gpu.lineBytes = line_bytes;
    rt::Device device(cfg, &bundle);
    auto application = makeApp(app);
    const kernels::AppRunResult result = application->run(device, options);

    bundle.verified = result.verified;
    bundle.detail = result.detail;
    bundle.cpuReferenceSeconds = result.cpuReferenceSeconds;
    bundle.primarySpec = result.primarySpec;
    if (!bundle.verified)
        warn("trace-store: ", app, options.cdp ? "-CDP" : "",
             " failed functional verification at emission");
    return bundle;
}

RunRecord
timeTrace(const sim::TraceBundle &bundle, const SystemConfig &system,
          ReplayTelemetry *telemetry)
{
    rt::Device device(system);
    const auto start = std::chrono::steady_clock::now();
    const rt::ReplayResult replayed = device.replay(bundle);
    if (telemetry) {
        telemetry->wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        telemetry->engine = device.engineStats();
    }

    RunRecord record;
    record.app = bundle.app;
    record.cdp = bundle.cdp;
    record.verified = bundle.verified;
    record.detail = bundle.detail;
    record.kernelCycles = replayed.kernelCycles;
    record.totalCycles = replayed.totalCycles;
    record.gpuSeconds = device.seconds(replayed.kernelCycles);
    record.cpuSeconds = bundle.cpuReferenceSeconds;
    record.stats = device.gpu().stats();
    record.kernelInvocations = device.profiler().kernelInvocations();
    record.pciTransactions = device.profiler().pciTransactions();
    record.profiledKernelCycles = device.profiler().kernelCycles();
    record.profiledPciCycles = device.profiler().pciCycles();
    record.pciBytes = device.profiler().pciBytes();
    record.kernelsByName = device.profiler().byKernel();
    record.primarySpec = bundle.primarySpec;
    return record;
}

TraceStore::TraceStore()
{
    const char *env = std::getenv("GGPU_TRACE_CACHE");
    if (env != nullptr && *env != '\0')
        dir_ = env;
    if (!dir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir_, ec);
        if (ec) {
            warn("trace-store: cannot create cache dir ", dir_, ": ",
                 ec.message(), "; disk layer disabled");
            dir_.clear();
        }
    }
}

TraceStore::TraceStore(std::string cache_dir) : dir_(std::move(cache_dir))
{
    if (!dir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir_, ec);
        if (ec)
            fatal("trace-store: cannot create cache dir ", dir_, ": ",
                  ec.message());
    }
}

std::string
TraceStore::filePath(const std::string &key) const
{
    if (dir_.empty())
        return {};
    // The wire version is part of the content address: a format bump
    // makes every old entry unreachable instead of unreadable.
    const std::string versioned =
        key + "|v" + std::to_string(sim::traceWireVersion);
    const std::uint64_t hash =
        sim::fnv1a64(versioned.data(), versioned.size());
    return dir_ + "/" + sanitizeKey(key) + "-" + hex16(hash) + ".ggputrace";
}

std::string
TraceStore::cacheFilePath(const std::string &app,
                          const kernels::AppOptions &options,
                          std::uint32_t line_bytes) const
{
    return filePath(traceStoreKey(app, options, line_bytes));
}

std::unique_ptr<sim::TraceBundle>
TraceStore::loadFromDisk(const std::string &key)
{
    const std::string path = filePath(key);
    std::string image;
    if (!readFile(path, image))
        return nullptr;  // Plain miss.
    auto bundle = std::make_unique<sim::TraceBundle>();
    std::string error;
    // Touch the entry so eviction order reflects use, not just
    // creation: a null utimensat timespec means "now".
    ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
    if (!sim::deserializeBundle(image, *bundle, &error)) {
        ++corruptRejects_;
        warn("trace-store: rejecting cache entry ", path, " (", error,
             "); re-emitting");
        ::unlink(path.c_str());
        return nullptr;
    }
    if (!bundle->verified) {
        // Should be unreachable (unverified bundles are never stored),
        // but a foreign or hand-built file must not bypass the gate.
        ++corruptRejects_;
        warn("trace-store: cache entry ", path,
             " holds an unverified bundle; re-emitting");
        ::unlink(path.c_str());
        return nullptr;
    }
    return bundle;
}

void
TraceStore::storeToDisk(const std::string &key,
                        const sim::TraceBundle &bundle)
{
    const std::string path = filePath(key);
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    const std::string image = sim::serializeBundle(bundle);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out.write(image.data(), std::streamsize(image.size()));
        if (!out) {
            warn("trace-store: cannot write ", tmp, "; entry not cached");
            ::unlink(tmp.c_str());
            return;
        }
    }
    // Publish atomically: readers see the old state or the complete
    // file, never a torn write, even across a crash.
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("trace-store: cannot publish ", path, "; entry not cached");
        ::unlink(tmp.c_str());
        return;
    }
    ++diskStores_;

    // Keep the cache bounded. The caller holds this key's flock, so
    // the GC pass can never evict the entry just published.
    const std::uint64_t budget = traceCacheMaxBytes();
    if (budget > 0)
        traceCacheGc(dir_, budget);
}

const sim::TraceBundle &
TraceStore::insert(const std::string &key, sim::TraceBundle bundle)
{
    auto owned = std::make_unique<sim::TraceBundle>(std::move(bundle));
    auto &slot = bundles_[key];
    slot = std::move(owned);
    return *slot;
}

const sim::TraceBundle &
TraceStore::get(const std::string &app,
                const kernels::AppOptions &options,
                std::uint32_t line_bytes)
{
    const std::string key = traceStoreKey(app, options, line_bytes);

    auto it = bundles_.find(key);
    if (it != bundles_.end()) {
        if (it->second->verified) {
            ++hits_;
            return *it->second;
        }
        // Unverified bundles are never reused: fall through and
        // re-emit (strict mode rejects them outright below).
    }

    if (!dir_.empty()) {
        // Optimistic lock-free load: rename-on-write means any file
        // present is complete, so most warm hits never take the lock.
        if (auto loaded = loadFromDisk(key)) {
            ++diskHits_;
            return insert(key, std::move(*loaded));
        }
        FileLock lock(filePath(key) + ".lock");
        // Another process may have emitted while we waited.
        if (auto loaded = loadFromDisk(key)) {
            ++diskHits_;
            return insert(key, std::move(*loaded));
        }
        ++emissions_;
        sim::TraceBundle bundle = emitter_
            ? emitter_(app, options, line_bytes)
            : emitTrace(app, options, line_bytes);
        if (bundle.verified)
            storeToDisk(key, bundle);
        else if (strictVerifyEnabled())
            fatal("trace-store: ", key,
                  " failed functional verification (GGPU_STRICT_VERIFY=1)");
        return insert(key, std::move(bundle));
    }

    ++emissions_;
    sim::TraceBundle bundle = emitter_
        ? emitter_(app, options, line_bytes)
        : emitTrace(app, options, line_bytes);
    if (!bundle.verified && strictVerifyEnabled())
        fatal("trace-store: ", key,
              " failed functional verification (GGPU_STRICT_VERIFY=1)");
    return insert(key, std::move(bundle));
}

json::Value
TraceStore::countersToJson() const
{
    json::Value counters = json::Value::object();
    counters.set("emissions", double(emissions_));
    counters.set("hits", double(hits_));
    counters.set("disk_hits", double(diskHits_));
    counters.set("disk_stores", double(diskStores_));
    counters.set("corrupt_rejects", double(corruptRejects_));
    return counters;
}

bool
traceCacheDisabled()
{
    return envFlag("GGPU_NO_TRACE_CACHE");
}

std::uint64_t
traceCacheMaxBytes()
{
    const char *env = std::getenv("GGPU_TRACE_CACHE_MAX_BYTES");
    if (env == nullptr || *env == '\0')
        return 0;
    try {
        return std::stoull(env);
    } catch (...) {
        warn("trace-store: unparseable GGPU_TRACE_CACHE_MAX_BYTES '",
             env, "'; cache unbounded");
        return 0;
    }
}

TraceCacheGcStats
traceCacheGc(const std::string &dir, std::uint64_t max_bytes)
{
    TraceCacheGcStats stats;
    if (dir.empty())
        return stats;

    struct Entry
    {
        std::string path;
        std::filesystem::file_time_type mtime;
        std::uint64_t size = 0;
    };
    std::vector<Entry> entries;
    std::error_code ec;
    for (const auto &item : std::filesystem::directory_iterator(dir, ec)) {
        if (!item.is_regular_file(ec) ||
            item.path().extension() != ".ggputrace")
            continue;
        Entry entry;
        entry.path = item.path().string();
        entry.mtime = std::filesystem::last_write_time(item.path(), ec);
        entry.size = item.file_size(ec);
        if (!ec)
            entries.push_back(std::move(entry));
    }

    stats.scanned = entries.size();
    for (const Entry &entry : entries)
        stats.bytesBefore += entry.size;
    stats.bytesAfter = stats.bytesBefore;
    if (max_bytes == 0 || stats.bytesBefore <= max_bytes)
        return stats;

    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.path < b.path;
              });
    for (const Entry &entry : entries) {
        if (stats.bytesAfter <= max_bytes)
            break;
        // An emission or load in progress holds the key's sidecar
        // flock; a non-blocking probe keeps such entries alive. flock
        // locks belong to the open file description, so this also
        // protects a store made by this very process further up the
        // call stack.
        const int fd = ::open((entry.path + ".lock").c_str(),
                              O_CREAT | O_RDWR | O_CLOEXEC, 0644);
        if (fd < 0 || ::flock(fd, LOCK_EX | LOCK_NB) != 0) {
            if (fd >= 0)
                ::close(fd);
            ++stats.lockSkipped;
            continue;
        }
        if (::unlink(entry.path.c_str()) == 0) {
            stats.bytesAfter -= entry.size;
            ++stats.evicted;
        }
        ::close(fd);
    }
    return stats;
}

bool
strictVerifyEnabled()
{
    return envFlag("GGPU_STRICT_VERIFY");
}

RunRecord
runAppCached(TraceStore &store, const std::string &name,
             const RunConfig &config)
{
    if (traceCacheDisabled())
        return runApp(name, config);
    const sim::TraceBundle &bundle =
        store.get(name, config.options, config.system.gpu.lineBytes);
    return timeTrace(bundle, config.system);
}

} // namespace ggpu::core
