#include "core/suite.hh"

#include <cstdlib>

#include "common/log.hh"

namespace ggpu::core
{

const std::vector<std::string> &
appNames()
{
    static const std::vector<std::string> names{
        "SW", "NW", "STAR", "GG", "GL", "GKSW", "GSG",
        "CLUSTER", "PairHMM", "NvB"};
    return names;
}

std::unique_ptr<kernels::BenchmarkApp>
makeApp(const std::string &name)
{
    using genomics::AlignMode;
    if (name == "SW")
        return kernels::makeSwApp();
    if (name == "NW")
        return kernels::makeNwApp();
    if (name == "STAR")
        return kernels::makeStarApp();
    if (name == "GG")
        return kernels::makeGasalApp(AlignMode::Global);
    if (name == "GL")
        return kernels::makeGasalApp(AlignMode::Local);
    if (name == "GKSW")
        return kernels::makeGasalApp(AlignMode::KswBanded);
    if (name == "GSG")
        return kernels::makeGasalApp(AlignMode::SemiGlobal);
    if (name == "CLUSTER")
        return kernels::makeClusterApp();
    if (name == "PairHMM")
        return kernels::makePairHmmApp();
    if (name == "NvB")
        return kernels::makeNvbApp();
    fatal("unknown benchmark application '", name, "'");
}

RunRecord
runApp(const std::string &name, const RunConfig &config)
{
    rt::Device device(config.system);
    auto app = makeApp(name);
    const kernels::AppRunResult result =
        app->run(device, config.options);

    RunRecord record;
    record.app = name;
    record.cdp = config.options.cdp;
    record.verified = result.verified;
    record.detail = result.detail;
    record.kernelCycles = result.kernelCycles;
    record.totalCycles = result.totalCycles;
    record.gpuSeconds = device.seconds(result.kernelCycles);
    record.cpuSeconds = result.cpuReferenceSeconds;
    record.stats = device.gpu().stats();
    record.kernelInvocations = device.profiler().kernelInvocations();
    record.pciTransactions = device.profiler().pciTransactions();
    record.profiledKernelCycles = device.profiler().kernelCycles();
    record.profiledPciCycles = device.profiler().pciCycles();
    record.pciBytes = device.profiler().pciBytes();
    record.kernelsByName = device.profiler().byKernel();
    record.primarySpec = result.primarySpec;

    if (!record.verified)
        warn("suite: ", record.label(),
             " failed functional verification");
    return record;
}

std::vector<RunRecord>
runSuite(const RunConfig &config, bool include_cdp)
{
    std::vector<RunRecord> records;
    for (const std::string &name : appNames()) {
        RunConfig cfg = config;
        cfg.options.cdp = false;
        records.push_back(runApp(name, cfg));
        if (include_cdp) {
            cfg.options.cdp = true;
            records.push_back(runApp(name, cfg));
        }
    }
    return records;
}

int
threadsFromEnv()
{
    const char *env = std::getenv("GGPU_THREADS");
    if (!env)
        return 1;
    char *end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (env == end || *end != '\0' || value < 0 || value > 1024)
        fatal("GGPU_THREADS must be an integer in [0, 1024] "
              "(0 = hardware concurrency), got '", env, "'");
    return int(value);
}

kernels::InputScale
scaleFromEnv()
{
    const char *env = std::getenv("GGPU_SCALE");
    if (!env)
        return kernels::InputScale::Small;
    const std::string value(env);
    if (value == "tiny")
        return kernels::InputScale::Tiny;
    if (value == "small")
        return kernels::InputScale::Small;
    if (value == "medium")
        return kernels::InputScale::Medium;
    fatal("GGPU_SCALE must be tiny|small|medium, got '", value, "'");
}

const char *
scaleName(kernels::InputScale scale)
{
    switch (scale) {
      case kernels::InputScale::Tiny:
        return "tiny";
      case kernels::InputScale::Small:
        return "small";
      case kernels::InputScale::Medium:
        return "medium";
    }
    return "unknown";
}

} // namespace ggpu::core
