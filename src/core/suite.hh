/**
 * @file
 * The Genomics-GPU suite: registry of the ten benchmark applications,
 * a run orchestrator that executes an app on a freshly configured
 * simulated device, and the per-run record (timing + microarchitecture
 * statistics + profiler counts) every evaluation figure draws from.
 */

#ifndef GGPU_CORE_SUITE_HH
#define GGPU_CORE_SUITE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernels/app.hh"

namespace ggpu::core
{

/** Table III order of the ten applications. */
const std::vector<std::string> &appNames();

/** Instantiate an application by its Table III abbreviation. */
std::unique_ptr<kernels::BenchmarkApp> makeApp(const std::string &name);

/** Everything needed to reproduce one run. */
struct RunConfig
{
    SystemConfig system;
    kernels::AppOptions options;
};

/** One application run's full outcome. */
struct RunRecord
{
    std::string app;        //!< Abbreviation ("SW", ...)
    bool cdp = false;
    bool verified = false;
    std::string detail;

    Cycles kernelCycles = 0;
    Cycles totalCycles = 0;
    double gpuSeconds = 0.0;      //!< kernelCycles at the core clock
    double cpuSeconds = 0.0;      //!< CPU reference wall time

    sim::SimStats stats;          //!< Microarchitectural counters
    std::uint64_t kernelInvocations = 0;
    std::uint64_t pciTransactions = 0;
    Cycles profiledKernelCycles = 0;
    Cycles profiledPciCycles = 0;
    std::uint64_t pciBytes = 0;
    /** Profiler's per-kernel-name invocation counts. */
    std::map<std::string, std::uint64_t> kernelsByName;

    sim::LaunchSpec primarySpec;

    /** Display label ("SW" / "SW-CDP"). */
    std::string label() const
    {
        return cdp ? app + "-CDP" : app;
    }
};

/** Run one application on a fresh device built from @p config. */
RunRecord runApp(const std::string &name, const RunConfig &config);

/**
 * Run the whole suite (optionally the CDP variant of every app too).
 * Records appear in Table III order, non-CDP before CDP per app.
 */
std::vector<RunRecord> runSuite(const RunConfig &config,
                                bool include_cdp = true);

/** The scale tier named by the GGPU_SCALE env var (default Small). */
kernels::InputScale scaleFromEnv();

/** GGPU_SCALE-style name of @p scale ("tiny"/"small"/"medium"). */
const char *scaleName(kernels::InputScale scale);

/**
 * Simulation-engine lane count named by the GGPU_THREADS env var
 * (default 1 = serial; 0 = one lane per hardware thread). Feeds
 * SystemConfig::sim.threads; never changes simulated results.
 */
int threadsFromEnv();

} // namespace ggpu::core

#endif // GGPU_CORE_SUITE_HH
