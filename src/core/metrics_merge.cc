#include "core/metrics_merge.hh"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/log.hh"
#include "core/metrics.hh"

namespace ggpu::core
{

namespace fs = std::filesystem;
using json::Value;

Value
readJsonFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '", path, "'");
    std::ostringstream os;
    os << is.rdbuf();
    return json::parse(os.str());
}

void
writeJsonFile(const std::string &path, const Value &doc)
{
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream os(tmp);
        if (!os)
            fatal("cannot open '", tmp, "' for writing");
        os << doc.dump();
        os.flush();
        if (!os) {
            ::unlink(tmp.c_str());
            fatal("short write to '", tmp, "'");
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        fatal("cannot rename '", tmp, "' to '", path, "'");
    }
}

void
validateBenchArtifact(const std::string &path, const Value &doc)
{
    if (!doc.isObject())
        fatal(path, ": top-level value is not an object");
    if (doc.at("schema").asString() != metricsSchema)
        fatal(path, ": schema is '", doc.at("schema").asString(),
              "', expected '", metricsSchema, "'");
    if (doc.at("figure").asString().empty())
        fatal(path, ": empty figure id");

    const Value &provenance = doc.at("provenance");
    provenance.at("scale").asString();
    provenance.at("threads").asNumber();

    const Value &series = doc.at("series");
    if (!series.isArray())
        fatal(path, ": 'series' is not an array");
    for (std::size_t i = 0; i < series.size(); ++i) {
        const Value &s = series.at(i);
        s.at("title").asString();
        const std::size_t columns = s.at("headers").size();
        const Value &rows = s.at("rows");
        for (std::size_t r = 0; r < rows.size(); ++r)
            if (rows.at(r).size() != columns)
                fatal(path, ": series ", i, " row ", r, " has ",
                      rows.at(r).size(), " cells, expected ", columns);
    }

    const Value &runs = doc.at("runs");
    if (!runs.isArray())
        fatal(path, ": 'runs' is not an array");
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const Value &run = runs.at(i);
        for (const auto &key : MetricsSink::requiredRunKeys())
            if (!run.has(key))
                fatal(path, ": run ", i, " is missing key '", key, "'");
    }
}

Value
mergeBenchArtifacts(const std::string &dir,
                    const std::string &status_path)
{
    std::vector<std::string> files;
    for (const auto &entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 &&
            entry.path().extension() == ".json" &&
            name != "BENCH_SUMMARY.json")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());

    Value summary = Value::object();
    summary.set("schema", metricsSummarySchema);
    Value figures = Value::object();
    for (const auto &file : files) {
        Value doc = readJsonFile(file);
        // The artifact directory is shared by every schema that CI
        // collects (e.g. BENCH_SERVING.json carries ggpu.serving.v1);
        // the bench summary only folds in bench.v1 documents — other
        // schemas have their own validators and consumers.
        const Value *schema = doc.isObject() ? doc.find("schema") : nullptr;
        if (schema && schema->isString() &&
            schema->asString() != metricsSchema)
            continue;
        validateBenchArtifact(file, doc);
        const std::string figure = doc.at("figure").asString();
        figures.set(figure, std::move(doc));
    }
    summary.set("figures", std::move(figures));

    if (!status_path.empty()) {
        Value benches = Value::array();
        std::ifstream is(status_path);
        if (!is)
            fatal("cannot open status file '", status_path, "'");
        std::string name;
        int code = 0;
        while (is >> name >> code) {
            Value b = Value::object();
            b.set("name", name);
            b.set("exit_status", code);
            benches.push(std::move(b));
        }
        summary.set("benches", std::move(benches));
    }

    return summary;
}

} // namespace ggpu::core
