#include "core/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/log.hh"

namespace ggpu::core::json
{

std::string
escapeJson(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (unsigned char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

std::string
escapeCsv(const std::string &raw)
{
    const bool needs_quoting =
        raw.find_first_of(",\"\r\n") != std::string::npos;
    if (!needs_quoting)
        return raw;
    std::string out = "\"";
    for (char c : raw) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

Value
Value::object()
{
    Value v;
    v.kind_ = Kind::Object;
    return v;
}

Value
Value::array()
{
    Value v;
    v.kind_ = Kind::Array;
    return v;
}

Value &
Value::set(const std::string &key, Value value)
{
    if (kind_ != Kind::Object)
        fatal("json: set('", key, "') on a non-object value");
    for (auto &[k, v] : members_) {
        if (k == key) {
            v = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        fatal("json: find('", key, "') on a non-object value");
    for (const auto &[k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

const Value &
Value::at(const std::string &key) const
{
    const Value *v = find(key);
    if (!v)
        fatal("json: missing object member '", key, "'");
    return *v;
}

const std::vector<std::pair<std::string, Value>> &
Value::members() const
{
    if (kind_ != Kind::Object)
        fatal("json: members() on a non-object value");
    return members_;
}

Value &
Value::push(Value value)
{
    if (kind_ != Kind::Array)
        fatal("json: push() on a non-array value");
    elems_.push_back(std::move(value));
    return *this;
}

const Value &
Value::at(std::size_t index) const
{
    if (kind_ != Kind::Array)
        fatal("json: at(", index, ") on a non-array value");
    if (index >= elems_.size())
        fatal("json: index ", index, " out of range (size ",
              elems_.size(), ")");
    return elems_[index];
}

std::size_t
Value::size() const
{
    if (kind_ == Kind::Array)
        return elems_.size();
    if (kind_ == Kind::Object)
        return members_.size();
    fatal("json: size() on a scalar value");
}

bool
Value::asBool() const
{
    if (kind_ != Kind::Bool)
        fatal("json: asBool() on a non-bool value");
    return bool_;
}

double
Value::asNumber() const
{
    if (kind_ != Kind::Number)
        fatal("json: asNumber() on a non-number value");
    return num_;
}

const std::string &
Value::asString() const
{
    if (kind_ != Kind::String)
        fatal("json: asString() on a non-string value");
    return str_;
}

bool
Value::operator==(const Value &other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return bool_ == other.bool_;
      case Kind::Number:
        return num_ == other.num_;
      case Kind::String:
        return str_ == other.str_;
      case Kind::Array:
        return elems_ == other.elems_;
      case Kind::Object:
        return members_ == other.members_;
    }
    return false;
}

namespace
{

/** Integral doubles print as integers so counters survive round
 *  trips textually; everything else keeps full precision. */
std::string
numberToString(double n)
{
    if (std::isfinite(n) && n == std::floor(n) &&
        std::abs(n) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", (long long)(n));
        return buf;
    }
    if (!std::isfinite(n))
        // JSON has no Infinity/NaN; null is the conventional stand-in.
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", n);
    return buf;
}

void
dumpTo(const Value &value, std::string &out, int indent, int depth)
{
    const std::string pad =
        indent > 0 ? std::string(std::size_t(indent) * (depth + 1), ' ')
                   : "";
    const std::string close_pad =
        indent > 0 ? std::string(std::size_t(indent) * depth, ' ') : "";
    const char *nl = indent > 0 ? "\n" : "";
    const char *kv_sep = indent > 0 ? ": " : ":";

    switch (value.kind()) {
      case Value::Kind::Null:
        out += "null";
        break;
      case Value::Kind::Bool:
        out += value.asBool() ? "true" : "false";
        break;
      case Value::Kind::Number:
        out += numberToString(value.asNumber());
        break;
      case Value::Kind::String:
        out += '"';
        out += escapeJson(value.asString());
        out += '"';
        break;
      case Value::Kind::Array: {
        if (value.size() == 0) {
            out += "[]";
            break;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < value.size(); ++i) {
            out += pad;
            dumpTo(value.at(i), out, indent, depth + 1);
            if (i + 1 < value.size())
                out += ',';
            out += nl;
        }
        out += close_pad;
        out += ']';
        break;
      }
      case Value::Kind::Object: {
        if (value.members().empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += nl;
        std::size_t i = 0;
        for (const auto &[key, member] : value.members()) {
            out += pad;
            out += '"';
            out += escapeJson(key);
            out += '"';
            out += kv_sep;
            dumpTo(member, out, indent, depth + 1);
            if (++i < value.members().size())
                out += ',';
            out += nl;
        }
        out += close_pad;
        out += '}';
        break;
      }
    }
}

/** Recursive-descent parser over the whole input. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    run()
    {
        Value v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        fatal("json parse error at byte ", pos_, ": ", why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() +
                 "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Value
    parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return Value(parseString());
          case 't':
            parseLiteral("true");
            return Value(true);
          case 'f':
            parseLiteral("false");
            return Value(false);
          case 'n':
            parseLiteral("null");
            return Value();
          default:
            return parseNumber();
        }
    }

    void
    parseLiteral(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("bad literal, expected '") + word +
                     "'");
            ++pos_;
        }
    }

    Value
    parseObject()
    {
        expect('{');
        Value obj = Value::object();
        skipWs();
        if (consume('}'))
            return obj;
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            obj.set(key, parseValue());
            skipWs();
            if (consume(','))
                continue;
            expect('}');
            return obj;
        }
    }

    Value
    parseArray()
    {
        expect('[');
        Value arr = Value::array();
        skipWs();
        if (consume(']'))
            return arr;
        while (true) {
            arr.push(parseValue());
            skipWs();
            if (consume(','))
                continue;
            expect(']');
            return arr;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // The writer only emits \u00xx; decode the Latin-1
                // range as UTF-8 and pass larger code points through
                // as-is (the metrics layer never produces them).
                if (code < 0x80) {
                    out += char(code);
                } else if (code < 0x800) {
                    out += char(0xc0 | (code >> 6));
                    out += char(0x80 | (code & 0x3f));
                } else {
                    out += char(0xe0 | (code >> 12));
                    out += char(0x80 | ((code >> 6) & 0x3f));
                    out += char(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("unknown escape sequence");
            }
        }
    }

    Value
    parseNumber()
    {
        const std::size_t start = pos_;
        consume('-');
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        const std::string token = text_.substr(start, pos_ - start);
        try {
            std::size_t used = 0;
            const double n = std::stod(token, &used);
            if (used != token.size())
                fail("malformed number '" + token + "'");
            return Value(n);
        } catch (const std::exception &) {
            fail("malformed number '" + token + "'");
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(*this, out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

Value
parse(const std::string &text)
{
    return Parser(text).run();
}

} // namespace ggpu::core::json
