#include "core/report.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/log.hh"
#include "core/json.hh"

namespace ggpu::core
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("Table: need at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        fatal("Table: row has ", cells.size(), " cells, expected ",
              headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(int(widths[c]) + 2)
               << cells[c];
        }
        os << '\n';
    };
    emit(headers_);
    std::string rule;
    for (std::size_t c = 0; c < headers_.size(); ++c)
        rule += std::string(widths[c], '-') + "  ";
    os << rule << '\n';
    for (const auto &row : rows_)
        emit(row);
}

std::string
Table::toCsv() const
{
    std::ostringstream os;
    auto emit = [&os](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << json::escapeCsv(cells[c]);
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
Table::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
Table::percent(double fraction, int precision)
{
    return num(fraction * 100.0, precision) + "%";
}

double
stallFraction(const RunRecord &record, sim::StallReason reason)
{
    return record.stats.stalls.fraction(std::size_t(reason));
}

double
insnFraction(const RunRecord &record, sim::OpKind kind)
{
    const auto &by_kind = record.stats.insnByKind;
    std::uint64_t total = 0;
    for (auto v : by_kind)
        total += v;
    return ratio(by_kind[std::size_t(kind)], total);
}

double
memFraction(const RunRecord &record, sim::MemSpace space)
{
    const auto &by_space = record.stats.memBySpace;
    std::uint64_t total = 0;
    for (auto v : by_space)
        total += v;
    return ratio(by_space[std::size_t(space)], total);
}

double
occupancyFraction(const RunRecord &record, int lo, int hi)
{
    const auto &hist = record.stats.warpOcc;
    std::uint64_t in_range = 0;
    for (int lanes = lo; lanes <= hi; ++lanes)
        in_range += hist.count(std::size_t(lanes - 1));
    return ratio(in_range, hist.total());
}

double
speedupVs(const RunRecord &baseline, const RunRecord &record)
{
    return record.kernelCycles == 0
        ? 0.0
        : double(baseline.kernelCycles) / double(record.kernelCycles);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        log_sum += std::log(v);
    }
    return std::exp(log_sum / double(values.size()));
}

} // namespace ggpu::core
