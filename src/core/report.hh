/**
 * @file
 * Reporting helpers: a fixed-width/CSV table printer and the figure
 * extractors that turn RunRecords into exactly the series each paper
 * figure plots.
 */

#ifndef GGPU_CORE_REPORT_HH
#define GGPU_CORE_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/suite.hh"

namespace ggpu::core
{

/** Simple column-aligned table with CSV export. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    /** Render with aligned columns. */
    void print(std::ostream &os) const;
    /** RFC-4180 CSV: cells with commas/quotes/newlines are quoted. */
    std::string toCsv() const;

    const std::vector<std::string> &headers() const { return headers_; }
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

    static std::string num(double value, int precision = 3);
    static std::string percent(double fraction, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Fraction of stall cycles attributed to @p reason (Fig 5). */
double stallFraction(const RunRecord &record, sim::StallReason reason);

/** Fraction of dynamic instructions of @p kind (Fig 8). */
double insnFraction(const RunRecord &record, sim::OpKind kind);

/** Fraction of memory instructions in @p space (Fig 9). */
double memFraction(const RunRecord &record, sim::MemSpace space);

/** Fraction of issued warps with occupancy in [lo, hi] lanes
 *  (Fig 10 buckets, 1-based). */
double occupancyFraction(const RunRecord &record, int lo, int hi);

/** Speedup of @p record versus @p baseline by kernel cycles. */
double speedupVs(const RunRecord &baseline, const RunRecord &record);

/** Geometric mean of positive values. */
double geomean(const std::vector<double> &values);

} // namespace ggpu::core

#endif // GGPU_CORE_REPORT_HH
