/**
 * @file
 * Minimal dependency-free JSON document model used by the metrics
 * export layer: an ordered Value builder, a writer whose output is
 * stable across runs (insertion-ordered object members, integral
 * numbers printed without exponents), and a strict parser so
 * artifacts can be contract-tested by round-trip. Also the single
 * home of the string escapers shared by the JSON writer and the
 * report layer's RFC-4180 CSV export.
 */

#ifndef GGPU_CORE_JSON_HH
#define GGPU_CORE_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ggpu::core::json
{

/**
 * Escape @p raw for embedding inside a JSON string literal (without
 * the surrounding quotes): control characters, quotes and backslashes
 * become their \-sequences.
 */
std::string escapeJson(const std::string &raw);

/**
 * RFC-4180 CSV cell quoting: returns @p raw unchanged unless it
 * contains a comma, double quote, CR or LF, in which case the cell is
 * wrapped in double quotes with embedded quotes doubled.
 */
std::string escapeCsv(const std::string &raw);

/** One JSON value; objects keep member insertion order. */
class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Value() = default;
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double n) : kind_(Kind::Number), num_(n) {}
    Value(int n) : kind_(Kind::Number), num_(n) {}
    Value(std::uint64_t n) : kind_(Kind::Number), num_(double(n)) {}
    Value(const char *s) : kind_(Kind::String), str_(s) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

    static Value object();
    static Value array();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isBool() const { return kind_ == Kind::Bool; }

    // ---- Object interface ----------------------------------------
    /** Append (or overwrite) member @p key. Fatal on non-objects. */
    Value &set(const std::string &key, Value value);
    /** Member lookup; nullptr when absent. Fatal on non-objects. */
    const Value *find(const std::string &key) const;
    bool has(const std::string &key) const { return find(key); }
    /** Member lookup; fatal when absent. */
    const Value &at(const std::string &key) const;
    const std::vector<std::pair<std::string, Value>> &members() const;

    // ---- Array interface -----------------------------------------
    /** Append an element. Fatal on non-arrays. */
    Value &push(Value value);
    /** Element lookup; fatal when out of range or not an array. */
    const Value &at(std::size_t index) const;
    /** Element/member count (arrays and objects). */
    std::size_t size() const;

    // ---- Scalar accessors (fatal on kind mismatch) ---------------
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Structural equality (round-trip tests). */
    bool operator==(const Value &other) const;

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces
     * per level; 0 emits a compact single line.
     */
    std::string dump(int indent = 2) const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Value> elems_;
    std::vector<std::pair<std::string, Value>> members_;
};

/**
 * Strict parser for the subset of JSON the writer emits (which is all
 * of JSON except exotic \u surrogate pairs, kept as-is). Throws
 * FatalError with a byte offset on malformed input.
 */
Value parse(const std::string &text);

} // namespace ggpu::core::json

#endif // GGPU_CORE_JSON_HH
