/**
 * @file
 * Emit-once/time-many run orchestration. A config sweep replays one
 * immutable ggpu::sim::TraceBundle under many timing configurations
 * instead of re-running functional emission and the CPU reference
 * verification at every sweep point. The TraceStore caches bundles
 * keyed by every input emission actually depends on; timing-only
 * knobs (cache sizes, DRAM scheduler, warp scheduler, NoC shape) are
 * deliberately absent from the key.
 *
 * With `GGPU_TRACE_CACHE=<dir>` the store extends across processes:
 * bundles are serialized (src/sim/trace_serialize.hh) into
 * content-addressed files under the directory, written atomically
 * (temp file + rename) and validated by checksum on load, so a fleet
 * of sweep workers pays emission exactly once per key and a corrupt
 * or stale file degrades to a re-emission, never a wrong result.
 */

#ifndef GGPU_CORE_TRACE_STORE_HH
#define GGPU_CORE_TRACE_STORE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/json.hh"
#include "core/suite.hh"
#include "sim/trace.hh"

namespace ggpu::core
{

/**
 * Run @p app's host workflow on a capture-mode device: kernels are
 * functionally emitted (and verified against the CPU reference) once,
 * producing an immutable bundle that timeTrace() can replay under any
 * timing configuration sharing @p line_bytes.
 */
sim::TraceBundle emitTrace(const std::string &app,
                           const kernels::AppOptions &options,
                           std::uint32_t line_bytes);

/**
 * Host-side telemetry of one timing replay: how the engine executed,
 * never what it simulated. Used by the engine-speed benchmark to
 * compare the fast-forward and per-cycle execution strategies on
 * identical simulated work.
 */
struct ReplayTelemetry
{
    double wallSeconds = 0.0;  //!< Replay wall time (no emission)
    sim::EngineStats engine;   //!< Tick/iteration counters
};

/**
 * Replay @p bundle on a fresh device built from @p system, producing
 * the same RunRecord a fresh runApp() under @p system would (modulo
 * cpuSeconds, which is the bundle's one-time reference wall clock).
 * When @p telemetry is non-null it receives the replay's wall time
 * and engine counters.
 */
RunRecord timeTrace(const sim::TraceBundle &bundle,
                    const SystemConfig &system,
                    ReplayTelemetry *telemetry = nullptr);

/** The cache key for one emission: app, every trace-affecting
 *  AppOptions field, and the coalescing line size. */
std::string traceStoreKey(const std::string &app,
                          const kernels::AppOptions &options,
                          std::uint32_t line_bytes);

/**
 * Bundle cache keyed by (app, AppOptions, lineBytes) — the complete
 * set of inputs emission depends on. `lineBytes` is in the key because
 * coalesced WarpTrace::transactions are line-granular: a line-size
 * sweep must re-emit, a cache/scheduler/NoC sweep must not.
 *
 * Two independent layers:
 *  - in-memory (always on): one bundle per key per store instance;
 *  - on-disk (when a cache directory is configured): serialized
 *    bundles shared across processes, guarded per key by a `flock`ed
 *    lock file so concurrent workers elect one emitter per key.
 *
 * Bundles that failed functional verification are never persisted and
 * never reused from memory: every get() of such a key re-emits (the
 * result may be input-dependent), and under `GGPU_STRICT_VERIFY=1`
 * the store raises a FatalError instead of returning one at all.
 */
class TraceStore
{
  public:
    /** Store whose disk layer follows `GGPU_TRACE_CACHE` (disabled
     *  when the variable is unset or empty). */
    TraceStore();

    /** Store with an explicit disk-cache directory (empty = memory
     *  only), independent of the environment. */
    explicit TraceStore(std::string cache_dir);

    /** The bundle for this key, emitting it on first use. */
    const sim::TraceBundle &get(const std::string &app,
                                const kernels::AppOptions &options,
                                std::uint32_t line_bytes);

    /** Where the disk layer keeps this key's bundle (empty when the
     *  disk layer is disabled). Exposed for tests and tooling. */
    std::string cacheFilePath(const std::string &app,
                              const kernels::AppOptions &options,
                              std::uint32_t line_bytes) const;

    const std::string &cacheDir() const { return dir_; }

    std::uint64_t emissions() const { return emissions_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t diskHits() const { return diskHits_; }
    std::uint64_t diskStores() const { return diskStores_; }
    std::uint64_t corruptRejects() const { return corruptRejects_; }

    /** Counters as a JSON object (exported into bench artifacts so a
     *  sweep can prove its one-emission-per-key economics). */
    json::Value countersToJson() const;

    /** Drop the in-memory layer (disk entries are untouched). */
    void clear() { bundles_.clear(); }

    using Emitter = std::function<sim::TraceBundle(
        const std::string &, const kernels::AppOptions &, std::uint32_t)>;

    /** Replace the emission function (tests inject failing or
     *  instrumented emitters); defaults to emitTrace(). */
    void setEmitter(Emitter emitter) { emitter_ = std::move(emitter); }

  private:
    const sim::TraceBundle &insert(const std::string &key,
                                   sim::TraceBundle bundle);
    std::unique_ptr<sim::TraceBundle> loadFromDisk(const std::string &key);
    void storeToDisk(const std::string &key,
                     const sim::TraceBundle &bundle);
    std::string filePath(const std::string &key) const;

    std::string dir_;  //!< Disk-cache directory ("" = memory only)
    Emitter emitter_;
    std::map<std::string, std::unique_ptr<sim::TraceBundle>> bundles_;
    std::uint64_t emissions_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t diskHits_ = 0;
    std::uint64_t diskStores_ = 0;
    std::uint64_t corruptRejects_ = 0;
};

/** Whether GGPU_NO_TRACE_CACHE=1 forces fresh per-run emission. */
bool traceCacheDisabled();

/** Byte budget for the disk cache from GGPU_TRACE_CACHE_MAX_BYTES
 *  (0 = unlimited; unparseable values warn and mean unlimited). */
std::uint64_t traceCacheMaxBytes();

/** Outcome of one garbage-collection pass over a cache directory. */
struct TraceCacheGcStats
{
    std::uint64_t bytesBefore = 0;  //!< Bundle bytes found
    std::uint64_t bytesAfter = 0;   //!< Bundle bytes kept
    std::size_t scanned = 0;        //!< Bundle files found
    std::size_t evicted = 0;        //!< Bundle files removed
    std::size_t lockSkipped = 0;    //!< Kept: per-key flock was held
};

/**
 * Shrink the disk cache at @p dir below @p max_bytes by deleting
 * bundles oldest-mtime first (loads touch mtime, so this is LRU).
 * A bundle whose per-key flock is currently held — an emission or
 * load in progress — is never evicted, even if that leaves the cache
 * above budget. @p max_bytes == 0 only reports the current size.
 * Safe to run concurrently with sweep workers: readers keep deleted
 * files alive through their open descriptors, and a deleted entry
 * degrades to a re-emission on next use.
 */
TraceCacheGcStats traceCacheGc(const std::string &dir,
                               std::uint64_t max_bytes);

/** Whether GGPU_STRICT_VERIFY=1 turns unverified emissions into
 *  FatalErrors instead of warnings. */
bool strictVerifyEnabled();

/**
 * runApp() through @p store: emit (or reuse) the trace bundle for
 * @p config's options, then time it under @p config's system. Falls
 * back to the fresh runApp() path when GGPU_NO_TRACE_CACHE=1.
 */
RunRecord runAppCached(TraceStore &store, const std::string &name,
                       const RunConfig &config);

} // namespace ggpu::core

#endif // GGPU_CORE_TRACE_STORE_HH
