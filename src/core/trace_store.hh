/**
 * @file
 * Emit-once/time-many run orchestration. A config sweep replays one
 * immutable ggpu::sim::TraceBundle under many timing configurations
 * instead of re-running functional emission and the CPU reference
 * verification at every sweep point. The TraceStore caches bundles
 * keyed by every input emission actually depends on; timing-only
 * knobs (cache sizes, DRAM scheduler, warp scheduler, NoC shape) are
 * deliberately absent from the key.
 */

#ifndef GGPU_CORE_TRACE_STORE_HH
#define GGPU_CORE_TRACE_STORE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/suite.hh"
#include "sim/trace.hh"

namespace ggpu::core
{

/**
 * Run @p app's host workflow on a capture-mode device: kernels are
 * functionally emitted (and verified against the CPU reference) once,
 * producing an immutable bundle that timeTrace() can replay under any
 * timing configuration sharing @p line_bytes.
 */
sim::TraceBundle emitTrace(const std::string &app,
                           const kernels::AppOptions &options,
                           std::uint32_t line_bytes);

/**
 * Host-side telemetry of one timing replay: how the engine executed,
 * never what it simulated. Used by the engine-speed benchmark to
 * compare the fast-forward and per-cycle execution strategies on
 * identical simulated work.
 */
struct ReplayTelemetry
{
    double wallSeconds = 0.0;  //!< Replay wall time (no emission)
    sim::EngineStats engine;   //!< Tick/iteration counters
};

/**
 * Replay @p bundle on a fresh device built from @p system, producing
 * the same RunRecord a fresh runApp() under @p system would (modulo
 * cpuSeconds, which is the bundle's one-time reference wall clock).
 * When @p telemetry is non-null it receives the replay's wall time
 * and engine counters.
 */
RunRecord timeTrace(const sim::TraceBundle &bundle,
                    const SystemConfig &system,
                    ReplayTelemetry *telemetry = nullptr);

/**
 * Bundle cache keyed by (app, AppOptions, lineBytes) — the complete
 * set of inputs emission depends on. `lineBytes` is in the key because
 * coalesced WarpTrace::transactions are line-granular: a line-size
 * sweep must re-emit, a cache/scheduler/NoC sweep must not.
 */
class TraceStore
{
  public:
    /** The bundle for this key, emitting it on first use. */
    const sim::TraceBundle &get(const std::string &app,
                                const kernels::AppOptions &options,
                                std::uint32_t line_bytes);

    std::uint64_t emissions() const { return emissions_; }
    std::uint64_t hits() const { return hits_; }
    void clear() { bundles_.clear(); }

  private:
    std::map<std::string, std::unique_ptr<sim::TraceBundle>> bundles_;
    std::uint64_t emissions_ = 0;
    std::uint64_t hits_ = 0;
};

/** Whether GGPU_NO_TRACE_CACHE=1 forces fresh per-run emission. */
bool traceCacheDisabled();

/**
 * runApp() through @p store: emit (or reuse) the trace bundle for
 * @p config's options, then time it under @p config's system. Falls
 * back to the fresh runApp() path when GGPU_NO_TRACE_CACHE=1.
 */
RunRecord runAppCached(TraceStore &store, const std::string &name,
                       const RunConfig &config);

} // namespace ggpu::core

#endif // GGPU_CORE_TRACE_STORE_HH
