/**
 * @file
 * Bench-artifact validation and merging, shared by the
 * `ggpu_metrics_tool` CLI and the `ggpu_sweep` orchestrator. One
 * implementation of the `ggpu.bench.v1` contract check and of the
 * BENCH_*.json -> BENCH_SUMMARY.json merge means a sweep's summary is
 * validated by exactly the rules CI applies to single-binary runs.
 */

#ifndef GGPU_CORE_METRICS_MERGE_HH
#define GGPU_CORE_METRICS_MERGE_HH

#include <string>

#include "core/json.hh"

namespace ggpu::core
{

/** Schema identifier of the merged summary document. */
inline constexpr const char *metricsSummarySchema =
    "ggpu.bench.summary.v1";

/** Read and parse one JSON file (fatal on I/O or parse failure);
 *  @p path labels diagnostics. */
json::Value readJsonFile(const std::string &path);

/** Atomically (temp + rename) write @p doc to @p path (fatal on I/O
 *  failure). */
void writeJsonFile(const std::string &path, const json::Value &doc);

/**
 * Check one parsed `ggpu.bench.v1` artifact against the schema
 * contract: schema tag, figure id, provenance, rectangular series,
 * and every required per-run key. Throws FatalError naming @p path
 * and the defect. Extra top-level sections (e.g. "trace_store") are
 * allowed — the contract is a floor, not a ceiling.
 */
void validateBenchArtifact(const std::string &path,
                           const json::Value &doc);

/**
 * Merge every BENCH_*.json in @p dir (except BENCH_SUMMARY.json, in
 * sorted filename order, each validated first) into one
 * `ggpu.bench.summary.v1` document keyed by figure id. When
 * @p status_path is non-empty its "<name> <code>" lines become the
 * summary's "benches" array.
 */
json::Value mergeBenchArtifacts(const std::string &dir,
                                const std::string &status_path = {});

} // namespace ggpu::core

#endif // GGPU_CORE_METRICS_MERGE_HH
