/**
 * @file
 * Structured metrics export: a MetricsSink gathers everything one
 * bench binary produced — the figure's plotted series (the same
 * tables the text printer shows) and the full per-run counter set —
 * and writes it as a BENCH_<figure>.json artifact. The schema is
 * contract-tested (tests/test_json_export.cc) and validated in CI
 * (ctest -L json), so downstream perf tracking can rely on it.
 */

#ifndef GGPU_CORE_METRICS_HH
#define GGPU_CORE_METRICS_HH

#include <string>
#include <utility>
#include <vector>

#include "core/json.hh"
#include "core/report.hh"
#include "core/suite.hh"

namespace ggpu::core
{

/** Schema identifier stamped into every artifact. */
inline constexpr const char *metricsSchema = "ggpu.bench.v1";

/** Collects one binary's runs + series and renders the artifact. */
class MetricsSink
{
  public:
    /**
     * @param figure Figure id (artifact is BENCH_<figure>.json).
     * @param scale  Input-scale name ("tiny"/"small"/"medium").
     * @param threads Host-thread knob the runs executed with.
     */
    MetricsSink(std::string figure, std::string scale, int threads);

    /** Record one completed run under its sweep-configuration label. */
    void addRun(const std::string &config, const RunRecord &record);

    /** Record one printed table as a named series. */
    void addSeries(const std::string &title, const Table &table);

    /**
     * Attach an extra top-level section (e.g. "trace_store" cache
     * counters). The validator treats the schema as a floor, so extra
     * sections never break the contract; later sets of one key win.
     */
    void setSection(const std::string &key, json::Value value);

    /** Render the whole artifact. */
    json::Value toJson() const;

    /** Serialize to @p path (fatal on I/O failure). */
    void writeFile(const std::string &path) const;

    /**
     * Flatten one run into its JSON object. Exposed so tests can
     * check the schema against a hand-built RunRecord.
     */
    static json::Value runToJson(const std::string &config,
                                 const RunRecord &record);

    /** Keys every element of "runs" must carry (validator contract). */
    static const std::vector<std::string> &requiredRunKeys();

  private:
    std::string figure_;
    std::string scale_;
    int threads_;
    std::vector<std::pair<std::string, RunRecord>> runs_;
    std::vector<std::pair<std::string, Table>> series_;
    std::vector<std::pair<std::string, json::Value>> sections_;
};

} // namespace ggpu::core

#endif // GGPU_CORE_METRICS_HH
