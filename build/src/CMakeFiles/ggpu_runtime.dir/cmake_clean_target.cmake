file(REMOVE_RECURSE
  "libggpu_runtime.a"
)
