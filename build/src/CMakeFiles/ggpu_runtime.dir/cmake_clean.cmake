file(REMOVE_RECURSE
  "CMakeFiles/ggpu_runtime.dir/runtime/device.cc.o"
  "CMakeFiles/ggpu_runtime.dir/runtime/device.cc.o.d"
  "CMakeFiles/ggpu_runtime.dir/runtime/profiler.cc.o"
  "CMakeFiles/ggpu_runtime.dir/runtime/profiler.cc.o.d"
  "libggpu_runtime.a"
  "libggpu_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ggpu_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
