# Empty dependencies file for ggpu_runtime.
# This may be replaced when dependencies are built.
