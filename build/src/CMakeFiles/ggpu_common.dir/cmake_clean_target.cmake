file(REMOVE_RECURSE
  "libggpu_common.a"
)
