# Empty compiler generated dependencies file for ggpu_common.
# This may be replaced when dependencies are built.
