file(REMOVE_RECURSE
  "CMakeFiles/ggpu_common.dir/common/config.cc.o"
  "CMakeFiles/ggpu_common.dir/common/config.cc.o.d"
  "CMakeFiles/ggpu_common.dir/common/log.cc.o"
  "CMakeFiles/ggpu_common.dir/common/log.cc.o.d"
  "CMakeFiles/ggpu_common.dir/common/stats.cc.o"
  "CMakeFiles/ggpu_common.dir/common/stats.cc.o.d"
  "libggpu_common.a"
  "libggpu_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ggpu_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
