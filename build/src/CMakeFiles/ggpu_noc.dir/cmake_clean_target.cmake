file(REMOVE_RECURSE
  "libggpu_noc.a"
)
