# Empty compiler generated dependencies file for ggpu_noc.
# This may be replaced when dependencies are built.
