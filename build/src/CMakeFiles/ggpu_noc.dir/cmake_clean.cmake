file(REMOVE_RECURSE
  "CMakeFiles/ggpu_noc.dir/noc/network.cc.o"
  "CMakeFiles/ggpu_noc.dir/noc/network.cc.o.d"
  "CMakeFiles/ggpu_noc.dir/noc/topology.cc.o"
  "CMakeFiles/ggpu_noc.dir/noc/topology.cc.o.d"
  "libggpu_noc.a"
  "libggpu_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ggpu_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
