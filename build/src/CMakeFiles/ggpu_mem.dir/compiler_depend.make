# Empty compiler generated dependencies file for ggpu_mem.
# This may be replaced when dependencies are built.
