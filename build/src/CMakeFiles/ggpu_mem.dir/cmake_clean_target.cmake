file(REMOVE_RECURSE
  "libggpu_mem.a"
)
