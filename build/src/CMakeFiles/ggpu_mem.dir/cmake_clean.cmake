file(REMOVE_RECURSE
  "CMakeFiles/ggpu_mem.dir/mem/cache.cc.o"
  "CMakeFiles/ggpu_mem.dir/mem/cache.cc.o.d"
  "CMakeFiles/ggpu_mem.dir/mem/dram.cc.o"
  "CMakeFiles/ggpu_mem.dir/mem/dram.cc.o.d"
  "CMakeFiles/ggpu_mem.dir/mem/pci.cc.o"
  "CMakeFiles/ggpu_mem.dir/mem/pci.cc.o.d"
  "libggpu_mem.a"
  "libggpu_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ggpu_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
