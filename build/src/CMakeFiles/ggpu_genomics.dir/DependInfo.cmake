
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/genomics/align/banded.cc" "src/CMakeFiles/ggpu_genomics.dir/genomics/align/banded.cc.o" "gcc" "src/CMakeFiles/ggpu_genomics.dir/genomics/align/banded.cc.o.d"
  "/root/repo/src/genomics/align/edit_distance.cc" "src/CMakeFiles/ggpu_genomics.dir/genomics/align/edit_distance.cc.o" "gcc" "src/CMakeFiles/ggpu_genomics.dir/genomics/align/edit_distance.cc.o.d"
  "/root/repo/src/genomics/align/hirschberg.cc" "src/CMakeFiles/ggpu_genomics.dir/genomics/align/hirschberg.cc.o" "gcc" "src/CMakeFiles/ggpu_genomics.dir/genomics/align/hirschberg.cc.o.d"
  "/root/repo/src/genomics/align/nw.cc" "src/CMakeFiles/ggpu_genomics.dir/genomics/align/nw.cc.o" "gcc" "src/CMakeFiles/ggpu_genomics.dir/genomics/align/nw.cc.o.d"
  "/root/repo/src/genomics/align/sw.cc" "src/CMakeFiles/ggpu_genomics.dir/genomics/align/sw.cc.o" "gcc" "src/CMakeFiles/ggpu_genomics.dir/genomics/align/sw.cc.o.d"
  "/root/repo/src/genomics/cluster/greedy_cluster.cc" "src/CMakeFiles/ggpu_genomics.dir/genomics/cluster/greedy_cluster.cc.o" "gcc" "src/CMakeFiles/ggpu_genomics.dir/genomics/cluster/greedy_cluster.cc.o.d"
  "/root/repo/src/genomics/datagen.cc" "src/CMakeFiles/ggpu_genomics.dir/genomics/datagen.cc.o" "gcc" "src/CMakeFiles/ggpu_genomics.dir/genomics/datagen.cc.o.d"
  "/root/repo/src/genomics/fasta.cc" "src/CMakeFiles/ggpu_genomics.dir/genomics/fasta.cc.o" "gcc" "src/CMakeFiles/ggpu_genomics.dir/genomics/fasta.cc.o.d"
  "/root/repo/src/genomics/hmm/pairhmm.cc" "src/CMakeFiles/ggpu_genomics.dir/genomics/hmm/pairhmm.cc.o" "gcc" "src/CMakeFiles/ggpu_genomics.dir/genomics/hmm/pairhmm.cc.o.d"
  "/root/repo/src/genomics/index/fm_index.cc" "src/CMakeFiles/ggpu_genomics.dir/genomics/index/fm_index.cc.o" "gcc" "src/CMakeFiles/ggpu_genomics.dir/genomics/index/fm_index.cc.o.d"
  "/root/repo/src/genomics/map/read_mapper.cc" "src/CMakeFiles/ggpu_genomics.dir/genomics/map/read_mapper.cc.o" "gcc" "src/CMakeFiles/ggpu_genomics.dir/genomics/map/read_mapper.cc.o.d"
  "/root/repo/src/genomics/msa/center_star.cc" "src/CMakeFiles/ggpu_genomics.dir/genomics/msa/center_star.cc.o" "gcc" "src/CMakeFiles/ggpu_genomics.dir/genomics/msa/center_star.cc.o.d"
  "/root/repo/src/genomics/sequence.cc" "src/CMakeFiles/ggpu_genomics.dir/genomics/sequence.cc.o" "gcc" "src/CMakeFiles/ggpu_genomics.dir/genomics/sequence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ggpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
