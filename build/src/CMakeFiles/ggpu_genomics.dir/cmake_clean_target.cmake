file(REMOVE_RECURSE
  "libggpu_genomics.a"
)
