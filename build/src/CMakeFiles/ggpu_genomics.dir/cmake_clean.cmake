file(REMOVE_RECURSE
  "CMakeFiles/ggpu_genomics.dir/genomics/align/banded.cc.o"
  "CMakeFiles/ggpu_genomics.dir/genomics/align/banded.cc.o.d"
  "CMakeFiles/ggpu_genomics.dir/genomics/align/edit_distance.cc.o"
  "CMakeFiles/ggpu_genomics.dir/genomics/align/edit_distance.cc.o.d"
  "CMakeFiles/ggpu_genomics.dir/genomics/align/hirschberg.cc.o"
  "CMakeFiles/ggpu_genomics.dir/genomics/align/hirschberg.cc.o.d"
  "CMakeFiles/ggpu_genomics.dir/genomics/align/nw.cc.o"
  "CMakeFiles/ggpu_genomics.dir/genomics/align/nw.cc.o.d"
  "CMakeFiles/ggpu_genomics.dir/genomics/align/sw.cc.o"
  "CMakeFiles/ggpu_genomics.dir/genomics/align/sw.cc.o.d"
  "CMakeFiles/ggpu_genomics.dir/genomics/cluster/greedy_cluster.cc.o"
  "CMakeFiles/ggpu_genomics.dir/genomics/cluster/greedy_cluster.cc.o.d"
  "CMakeFiles/ggpu_genomics.dir/genomics/datagen.cc.o"
  "CMakeFiles/ggpu_genomics.dir/genomics/datagen.cc.o.d"
  "CMakeFiles/ggpu_genomics.dir/genomics/fasta.cc.o"
  "CMakeFiles/ggpu_genomics.dir/genomics/fasta.cc.o.d"
  "CMakeFiles/ggpu_genomics.dir/genomics/hmm/pairhmm.cc.o"
  "CMakeFiles/ggpu_genomics.dir/genomics/hmm/pairhmm.cc.o.d"
  "CMakeFiles/ggpu_genomics.dir/genomics/index/fm_index.cc.o"
  "CMakeFiles/ggpu_genomics.dir/genomics/index/fm_index.cc.o.d"
  "CMakeFiles/ggpu_genomics.dir/genomics/map/read_mapper.cc.o"
  "CMakeFiles/ggpu_genomics.dir/genomics/map/read_mapper.cc.o.d"
  "CMakeFiles/ggpu_genomics.dir/genomics/msa/center_star.cc.o"
  "CMakeFiles/ggpu_genomics.dir/genomics/msa/center_star.cc.o.d"
  "CMakeFiles/ggpu_genomics.dir/genomics/sequence.cc.o"
  "CMakeFiles/ggpu_genomics.dir/genomics/sequence.cc.o.d"
  "libggpu_genomics.a"
  "libggpu_genomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ggpu_genomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
