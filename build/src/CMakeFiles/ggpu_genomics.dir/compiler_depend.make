# Empty compiler generated dependencies file for ggpu_genomics.
# This may be replaced when dependencies are built.
