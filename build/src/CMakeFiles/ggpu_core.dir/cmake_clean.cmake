file(REMOVE_RECURSE
  "CMakeFiles/ggpu_core.dir/core/report.cc.o"
  "CMakeFiles/ggpu_core.dir/core/report.cc.o.d"
  "CMakeFiles/ggpu_core.dir/core/suite.cc.o"
  "CMakeFiles/ggpu_core.dir/core/suite.cc.o.d"
  "libggpu_core.a"
  "libggpu_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ggpu_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
