# Empty compiler generated dependencies file for ggpu_core.
# This may be replaced when dependencies are built.
