file(REMOVE_RECURSE
  "libggpu_core.a"
)
