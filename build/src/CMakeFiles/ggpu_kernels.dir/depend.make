# Empty dependencies file for ggpu_kernels.
# This may be replaced when dependencies are built.
