file(REMOVE_RECURSE
  "libggpu_kernels.a"
)
