
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/cluster_kernel.cc" "src/CMakeFiles/ggpu_kernels.dir/kernels/cluster_kernel.cc.o" "gcc" "src/CMakeFiles/ggpu_kernels.dir/kernels/cluster_kernel.cc.o.d"
  "/root/repo/src/kernels/gasal_kernel.cc" "src/CMakeFiles/ggpu_kernels.dir/kernels/gasal_kernel.cc.o" "gcc" "src/CMakeFiles/ggpu_kernels.dir/kernels/gasal_kernel.cc.o.d"
  "/root/repo/src/kernels/nvb_kernel.cc" "src/CMakeFiles/ggpu_kernels.dir/kernels/nvb_kernel.cc.o" "gcc" "src/CMakeFiles/ggpu_kernels.dir/kernels/nvb_kernel.cc.o.d"
  "/root/repo/src/kernels/nw_kernel.cc" "src/CMakeFiles/ggpu_kernels.dir/kernels/nw_kernel.cc.o" "gcc" "src/CMakeFiles/ggpu_kernels.dir/kernels/nw_kernel.cc.o.d"
  "/root/repo/src/kernels/pairhmm_kernel.cc" "src/CMakeFiles/ggpu_kernels.dir/kernels/pairhmm_kernel.cc.o" "gcc" "src/CMakeFiles/ggpu_kernels.dir/kernels/pairhmm_kernel.cc.o.d"
  "/root/repo/src/kernels/star_kernel.cc" "src/CMakeFiles/ggpu_kernels.dir/kernels/star_kernel.cc.o" "gcc" "src/CMakeFiles/ggpu_kernels.dir/kernels/star_kernel.cc.o.d"
  "/root/repo/src/kernels/sw_kernel.cc" "src/CMakeFiles/ggpu_kernels.dir/kernels/sw_kernel.cc.o" "gcc" "src/CMakeFiles/ggpu_kernels.dir/kernels/sw_kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ggpu_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
