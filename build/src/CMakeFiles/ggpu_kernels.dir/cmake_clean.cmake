file(REMOVE_RECURSE
  "CMakeFiles/ggpu_kernels.dir/kernels/cluster_kernel.cc.o"
  "CMakeFiles/ggpu_kernels.dir/kernels/cluster_kernel.cc.o.d"
  "CMakeFiles/ggpu_kernels.dir/kernels/gasal_kernel.cc.o"
  "CMakeFiles/ggpu_kernels.dir/kernels/gasal_kernel.cc.o.d"
  "CMakeFiles/ggpu_kernels.dir/kernels/nvb_kernel.cc.o"
  "CMakeFiles/ggpu_kernels.dir/kernels/nvb_kernel.cc.o.d"
  "CMakeFiles/ggpu_kernels.dir/kernels/nw_kernel.cc.o"
  "CMakeFiles/ggpu_kernels.dir/kernels/nw_kernel.cc.o.d"
  "CMakeFiles/ggpu_kernels.dir/kernels/pairhmm_kernel.cc.o"
  "CMakeFiles/ggpu_kernels.dir/kernels/pairhmm_kernel.cc.o.d"
  "CMakeFiles/ggpu_kernels.dir/kernels/star_kernel.cc.o"
  "CMakeFiles/ggpu_kernels.dir/kernels/star_kernel.cc.o.d"
  "CMakeFiles/ggpu_kernels.dir/kernels/sw_kernel.cc.o"
  "CMakeFiles/ggpu_kernels.dir/kernels/sw_kernel.cc.o.d"
  "libggpu_kernels.a"
  "libggpu_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ggpu_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
