file(REMOVE_RECURSE
  "CMakeFiles/ggpu_sim.dir/sim/coalescer.cc.o"
  "CMakeFiles/ggpu_sim.dir/sim/coalescer.cc.o.d"
  "CMakeFiles/ggpu_sim.dir/sim/gpu.cc.o"
  "CMakeFiles/ggpu_sim.dir/sim/gpu.cc.o.d"
  "CMakeFiles/ggpu_sim.dir/sim/occupancy.cc.o"
  "CMakeFiles/ggpu_sim.dir/sim/occupancy.cc.o.d"
  "CMakeFiles/ggpu_sim.dir/sim/scheduler.cc.o"
  "CMakeFiles/ggpu_sim.dir/sim/scheduler.cc.o.d"
  "CMakeFiles/ggpu_sim.dir/sim/sm_core.cc.o"
  "CMakeFiles/ggpu_sim.dir/sim/sm_core.cc.o.d"
  "CMakeFiles/ggpu_sim.dir/sim/trace.cc.o"
  "CMakeFiles/ggpu_sim.dir/sim/trace.cc.o.d"
  "CMakeFiles/ggpu_sim.dir/sim/warp_ctx.cc.o"
  "CMakeFiles/ggpu_sim.dir/sim/warp_ctx.cc.o.d"
  "libggpu_sim.a"
  "libggpu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ggpu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
