
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/coalescer.cc" "src/CMakeFiles/ggpu_sim.dir/sim/coalescer.cc.o" "gcc" "src/CMakeFiles/ggpu_sim.dir/sim/coalescer.cc.o.d"
  "/root/repo/src/sim/gpu.cc" "src/CMakeFiles/ggpu_sim.dir/sim/gpu.cc.o" "gcc" "src/CMakeFiles/ggpu_sim.dir/sim/gpu.cc.o.d"
  "/root/repo/src/sim/occupancy.cc" "src/CMakeFiles/ggpu_sim.dir/sim/occupancy.cc.o" "gcc" "src/CMakeFiles/ggpu_sim.dir/sim/occupancy.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/CMakeFiles/ggpu_sim.dir/sim/scheduler.cc.o" "gcc" "src/CMakeFiles/ggpu_sim.dir/sim/scheduler.cc.o.d"
  "/root/repo/src/sim/sm_core.cc" "src/CMakeFiles/ggpu_sim.dir/sim/sm_core.cc.o" "gcc" "src/CMakeFiles/ggpu_sim.dir/sim/sm_core.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/ggpu_sim.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/ggpu_sim.dir/sim/trace.cc.o.d"
  "/root/repo/src/sim/warp_ctx.cc" "src/CMakeFiles/ggpu_sim.dir/sim/warp_ctx.cc.o" "gcc" "src/CMakeFiles/ggpu_sim.dir/sim/warp_ctx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ggpu_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
