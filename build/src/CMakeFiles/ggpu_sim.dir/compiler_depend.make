# Empty compiler generated dependencies file for ggpu_sim.
# This may be replaced when dependencies are built.
