file(REMOVE_RECURSE
  "libggpu_sim.a"
)
