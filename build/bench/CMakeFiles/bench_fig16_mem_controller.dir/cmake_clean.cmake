file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_mem_controller.dir/bench_fig16_mem_controller.cc.o"
  "CMakeFiles/bench_fig16_mem_controller.dir/bench_fig16_mem_controller.cc.o.d"
  "bench_fig16_mem_controller"
  "bench_fig16_mem_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_mem_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
