# Empty dependencies file for bench_fig04_kernel_pci.
# This may be replaced when dependencies are built.
