file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_kernel_pci.dir/bench_fig04_kernel_pci.cc.o"
  "CMakeFiles/bench_fig04_kernel_pci.dir/bench_fig04_kernel_pci.cc.o.d"
  "bench_fig04_kernel_pci"
  "bench_fig04_kernel_pci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_kernel_pci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
