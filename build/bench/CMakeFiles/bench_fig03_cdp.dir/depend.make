# Empty dependencies file for bench_fig03_cdp.
# This may be replaced when dependencies are built.
