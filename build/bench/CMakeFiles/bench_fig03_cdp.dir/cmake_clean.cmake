file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_cdp.dir/bench_fig03_cdp.cc.o"
  "CMakeFiles/bench_fig03_cdp.dir/bench_fig03_cdp.cc.o.d"
  "bench_fig03_cdp"
  "bench_fig03_cdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_cdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
