# Empty compiler generated dependencies file for bench_fig08_insn_mix.
# This may be replaced when dependencies are built.
