file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_insn_mix.dir/bench_fig08_insn_mix.cc.o"
  "CMakeFiles/bench_fig08_insn_mix.dir/bench_fig08_insn_mix.cc.o.d"
  "bench_fig08_insn_mix"
  "bench_fig08_insn_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_insn_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
