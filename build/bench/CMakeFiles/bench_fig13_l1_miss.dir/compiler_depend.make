# Empty compiler generated dependencies file for bench_fig13_l1_miss.
# This may be replaced when dependencies are built.
