file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_sram.dir/bench_fig06_sram.cc.o"
  "CMakeFiles/bench_fig06_sram.dir/bench_fig06_sram.cc.o.d"
  "bench_fig06_sram"
  "bench_fig06_sram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
