# Empty compiler generated dependencies file for bench_fig21_noc_latency.
# This may be replaced when dependencies are built.
