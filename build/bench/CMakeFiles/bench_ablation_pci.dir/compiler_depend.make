# Empty compiler generated dependencies file for bench_ablation_pci.
# This may be replaced when dependencies are built.
