file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pci.dir/bench_ablation_pci.cc.o"
  "CMakeFiles/bench_ablation_pci.dir/bench_ablation_pci.cc.o.d"
  "bench_ablation_pci"
  "bench_ablation_pci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
