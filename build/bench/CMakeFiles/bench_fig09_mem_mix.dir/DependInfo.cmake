
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig09_mem_mix.cc" "bench/CMakeFiles/bench_fig09_mem_mix.dir/bench_fig09_mem_mix.cc.o" "gcc" "bench/CMakeFiles/bench_fig09_mem_mix.dir/bench_fig09_mem_mix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ggpu_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
