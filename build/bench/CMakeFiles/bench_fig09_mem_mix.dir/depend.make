# Empty dependencies file for bench_fig09_mem_mix.
# This may be replaced when dependencies are built.
