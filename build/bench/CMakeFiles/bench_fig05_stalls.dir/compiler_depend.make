# Empty compiler generated dependencies file for bench_fig05_stalls.
# This may be replaced when dependencies are built.
