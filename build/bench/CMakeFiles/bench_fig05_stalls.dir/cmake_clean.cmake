file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_stalls.dir/bench_fig05_stalls.cc.o"
  "CMakeFiles/bench_fig05_stalls.dir/bench_fig05_stalls.cc.o.d"
  "bench_fig05_stalls"
  "bench_fig05_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
