file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_shared_memory.dir/bench_fig07_shared_memory.cc.o"
  "CMakeFiles/bench_fig07_shared_memory.dir/bench_fig07_shared_memory.cc.o.d"
  "bench_fig07_shared_memory"
  "bench_fig07_shared_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_shared_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
