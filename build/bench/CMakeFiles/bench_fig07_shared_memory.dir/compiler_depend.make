# Empty compiler generated dependencies file for bench_fig07_shared_memory.
# This may be replaced when dependencies are built.
