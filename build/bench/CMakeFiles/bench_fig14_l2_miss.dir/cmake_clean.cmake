file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_l2_miss.dir/bench_fig14_l2_miss.cc.o"
  "CMakeFiles/bench_fig14_l2_miss.dir/bench_fig14_l2_miss.cc.o.d"
  "bench_fig14_l2_miss"
  "bench_fig14_l2_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_l2_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
