# Empty compiler generated dependencies file for bench_fig14_l2_miss.
# This may be replaced when dependencies are built.
