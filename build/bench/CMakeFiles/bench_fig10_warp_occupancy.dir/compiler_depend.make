# Empty compiler generated dependencies file for bench_fig10_warp_occupancy.
# This may be replaced when dependencies are built.
