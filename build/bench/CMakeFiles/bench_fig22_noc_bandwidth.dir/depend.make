# Empty dependencies file for bench_fig22_noc_bandwidth.
# This may be replaced when dependencies are built.
