# Empty compiler generated dependencies file for bench_fig02_cpu_gpu.
# This may be replaced when dependencies are built.
