# Empty dependencies file for bench_table3_properties.
# This may be replaced when dependencies are built.
