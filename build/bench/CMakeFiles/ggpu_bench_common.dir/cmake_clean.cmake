file(REMOVE_RECURSE
  "CMakeFiles/ggpu_bench_common.dir/common.cc.o"
  "CMakeFiles/ggpu_bench_common.dir/common.cc.o.d"
  "libggpu_bench_common.a"
  "libggpu_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ggpu_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
