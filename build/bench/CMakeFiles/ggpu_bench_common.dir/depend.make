# Empty dependencies file for ggpu_bench_common.
# This may be replaced when dependencies are built.
