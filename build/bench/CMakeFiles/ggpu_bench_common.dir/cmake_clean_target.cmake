file(REMOVE_RECURSE
  "libggpu_bench_common.a"
)
