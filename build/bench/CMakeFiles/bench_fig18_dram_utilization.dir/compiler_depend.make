# Empty compiler generated dependencies file for bench_fig18_dram_utilization.
# This may be replaced when dependencies are built.
