# Empty compiler generated dependencies file for bench_fig17_dram_efficiency.
# This may be replaced when dependencies are built.
