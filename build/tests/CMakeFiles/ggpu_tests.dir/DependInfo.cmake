
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_align_extensions.cc" "tests/CMakeFiles/ggpu_tests.dir/test_align_extensions.cc.o" "gcc" "tests/CMakeFiles/ggpu_tests.dir/test_align_extensions.cc.o.d"
  "/root/repo/tests/test_apps.cc" "tests/CMakeFiles/ggpu_tests.dir/test_apps.cc.o" "gcc" "tests/CMakeFiles/ggpu_tests.dir/test_apps.cc.o.d"
  "/root/repo/tests/test_emission.cc" "tests/CMakeFiles/ggpu_tests.dir/test_emission.cc.o" "gcc" "tests/CMakeFiles/ggpu_tests.dir/test_emission.cc.o.d"
  "/root/repo/tests/test_genomics_align.cc" "tests/CMakeFiles/ggpu_tests.dir/test_genomics_align.cc.o" "gcc" "tests/CMakeFiles/ggpu_tests.dir/test_genomics_align.cc.o.d"
  "/root/repo/tests/test_genomics_misc.cc" "tests/CMakeFiles/ggpu_tests.dir/test_genomics_misc.cc.o" "gcc" "tests/CMakeFiles/ggpu_tests.dir/test_genomics_misc.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/ggpu_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/ggpu_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_noc.cc" "tests/CMakeFiles/ggpu_tests.dir/test_noc.cc.o" "gcc" "tests/CMakeFiles/ggpu_tests.dir/test_noc.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/ggpu_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/ggpu_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_report.cc" "tests/CMakeFiles/ggpu_tests.dir/test_report.cc.o" "gcc" "tests/CMakeFiles/ggpu_tests.dir/test_report.cc.o.d"
  "/root/repo/tests/test_runtime.cc" "tests/CMakeFiles/ggpu_tests.dir/test_runtime.cc.o" "gcc" "tests/CMakeFiles/ggpu_tests.dir/test_runtime.cc.o.d"
  "/root/repo/tests/test_sim_units.cc" "tests/CMakeFiles/ggpu_tests.dir/test_sim_units.cc.o" "gcc" "tests/CMakeFiles/ggpu_tests.dir/test_sim_units.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/ggpu_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/ggpu_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_table3_contract.cc" "tests/CMakeFiles/ggpu_tests.dir/test_table3_contract.cc.o" "gcc" "tests/CMakeFiles/ggpu_tests.dir/test_table3_contract.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ggpu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ggpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
