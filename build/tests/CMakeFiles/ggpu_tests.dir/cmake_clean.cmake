file(REMOVE_RECURSE
  "CMakeFiles/ggpu_tests.dir/test_align_extensions.cc.o"
  "CMakeFiles/ggpu_tests.dir/test_align_extensions.cc.o.d"
  "CMakeFiles/ggpu_tests.dir/test_apps.cc.o"
  "CMakeFiles/ggpu_tests.dir/test_apps.cc.o.d"
  "CMakeFiles/ggpu_tests.dir/test_emission.cc.o"
  "CMakeFiles/ggpu_tests.dir/test_emission.cc.o.d"
  "CMakeFiles/ggpu_tests.dir/test_genomics_align.cc.o"
  "CMakeFiles/ggpu_tests.dir/test_genomics_align.cc.o.d"
  "CMakeFiles/ggpu_tests.dir/test_genomics_misc.cc.o"
  "CMakeFiles/ggpu_tests.dir/test_genomics_misc.cc.o.d"
  "CMakeFiles/ggpu_tests.dir/test_mem.cc.o"
  "CMakeFiles/ggpu_tests.dir/test_mem.cc.o.d"
  "CMakeFiles/ggpu_tests.dir/test_noc.cc.o"
  "CMakeFiles/ggpu_tests.dir/test_noc.cc.o.d"
  "CMakeFiles/ggpu_tests.dir/test_properties.cc.o"
  "CMakeFiles/ggpu_tests.dir/test_properties.cc.o.d"
  "CMakeFiles/ggpu_tests.dir/test_report.cc.o"
  "CMakeFiles/ggpu_tests.dir/test_report.cc.o.d"
  "CMakeFiles/ggpu_tests.dir/test_runtime.cc.o"
  "CMakeFiles/ggpu_tests.dir/test_runtime.cc.o.d"
  "CMakeFiles/ggpu_tests.dir/test_sim_units.cc.o"
  "CMakeFiles/ggpu_tests.dir/test_sim_units.cc.o.d"
  "CMakeFiles/ggpu_tests.dir/test_smoke.cc.o"
  "CMakeFiles/ggpu_tests.dir/test_smoke.cc.o.d"
  "CMakeFiles/ggpu_tests.dir/test_table3_contract.cc.o"
  "CMakeFiles/ggpu_tests.dir/test_table3_contract.cc.o.d"
  "ggpu_tests"
  "ggpu_tests.pdb"
  "ggpu_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ggpu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
