# Empty compiler generated dependencies file for ggpu_tests.
# This may be replaced when dependencies are built.
