# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_read_mapping "/root/repo/build/examples/read_mapping")
set_tests_properties(example_read_mapping PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_msa_pipeline "/root/repo/build/examples/msa_pipeline")
set_tests_properties(example_msa_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_clustering_pipeline "/root/repo/build/examples/clustering_pipeline")
set_tests_properties(example_clustering_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_characterize "/root/repo/build/examples/characterize" "SW" "--cdp")
set_tests_properties(example_characterize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
