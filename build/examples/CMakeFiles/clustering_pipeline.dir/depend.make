# Empty dependencies file for clustering_pipeline.
# This may be replaced when dependencies are built.
