file(REMOVE_RECURSE
  "CMakeFiles/clustering_pipeline.dir/clustering_pipeline.cpp.o"
  "CMakeFiles/clustering_pipeline.dir/clustering_pipeline.cpp.o.d"
  "clustering_pipeline"
  "clustering_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
