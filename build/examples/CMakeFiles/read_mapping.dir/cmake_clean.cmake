file(REMOVE_RECURSE
  "CMakeFiles/read_mapping.dir/read_mapping.cpp.o"
  "CMakeFiles/read_mapping.dir/read_mapping.cpp.o.d"
  "read_mapping"
  "read_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
