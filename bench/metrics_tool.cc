/**
 * @file
 * CLI companion to the metrics export layer:
 *
 *   ggpu_metrics_tool validate <artifact.json>
 *       Parse one BENCH_<figure>.json and check the schema contract
 *       (schema tag, series/runs arrays, every required per-run key).
 *       Exit 0 on success, 1 with a diagnostic otherwise.
 *
 *   ggpu_metrics_tool merge <dir> <out.json> [--status <file>]
 *       Merge every BENCH_*.json in <dir> into one summary document
 *       keyed by figure id. --status embeds run_benches.sh's
 *       per-binary exit codes ("<name> <code>" lines).
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/diagnostic.hh"
#include "common/log.hh"
#include "core/json.hh"
#include "core/metrics.hh"
#include "core/metrics_merge.hh"
#include "profile/timeline.hh"
#include "serve/report.hh"

namespace
{

using ggpu::core::json::Value;

std::string
readFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        ggpu::fatal("cannot open '", path, "'");
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** Check one ggpu.check.v1 checker artifact (ggpu_check --json). */
void
checkCheckerArtifact(const std::string &path, const Value &doc)
{
    doc.at("scale").asString();
    const Value &runs = doc.at("runs");
    if (!runs.isArray())
        ggpu::fatal(path, ": 'runs' is not an array");
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const Value &run = runs.at(i);
        for (const auto &key : ggpu::check::requiredCheckRunKeys())
            if (!run.has(key))
                ggpu::fatal(path, ": run ", i, " is missing key '",
                            key, "'");
        const Value &diags = run.at("diagnostics");
        if (!diags.isArray())
            ggpu::fatal(path, ": run ", i,
                        ": 'diagnostics' is not an array");
        if (run.at("diagnostic_count").asNumber() !=
            double(diags.size()))
            ggpu::fatal(path, ": run ", i,
                        ": diagnostic_count disagrees with the "
                        "diagnostics array");
        for (std::size_t d = 0; d < diags.size(); ++d)
            for (const auto &key :
                 ggpu::check::requiredDiagnosticKeys())
                if (!diags.at(d).has(key))
                    ggpu::fatal(path, ": run ", i, " diagnostic ", d,
                                " is missing key '", key, "'");
    }
}

int
cmdValidate(const std::string &path)
{
    const Value doc = ggpu::core::json::parse(readFile(path));
    if (!doc.isObject())
        ggpu::fatal(path, ": top-level value is not an object");
    if (doc.at("schema").asString() == ggpu::check::checkerSchema) {
        checkCheckerArtifact(path, doc);
        std::cout << path << ": ok (" << doc.at("runs").size()
                  << " checker runs)\n";
        return 0;
    }
    if (doc.at("schema").asString() == ggpu::serve::servingSchema) {
        ggpu::serve::validateServingArtifact(path, doc);
        std::cout << path << ": ok (" << doc.at("points").size()
                  << " serving points)\n";
        return 0;
    }
    if (doc.at("schema").asString() == ggpu::profile::timelineSchema) {
        ggpu::profile::validateTimeline(path, doc);
        std::cout << path << ": ok (" << doc.at("kernels").size()
                  << " kernels, " << doc.at("intervals").size()
                  << " intervals)\n";
        return 0;
    }
    ggpu::core::validateBenchArtifact(path, doc);
    std::cout << path << ": ok (" << doc.at("runs").size()
              << " runs, " << doc.at("series").size() << " series)\n";
    return 0;
}

int
cmdMerge(const std::string &dir, const std::string &out_path,
         const std::string &status_path)
{
    const Value summary =
        ggpu::core::mergeBenchArtifacts(dir, status_path);
    ggpu::core::writeJsonFile(out_path, summary);
    std::cout << out_path << ": merged "
              << summary.at("figures").size() << " artifact(s)\n";
    return 0;
}

int
usage()
{
    std::cerr << "usage: ggpu_metrics_tool validate <artifact.json>\n"
              << "       ggpu_metrics_tool merge <dir> <out.json> "
                 "[--status <file>]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        if (args.size() == 2 && args[0] == "validate")
            return cmdValidate(args[1]);
        if (args.size() >= 3 && args[0] == "merge") {
            std::string status;
            if (args.size() == 5 && args[3] == "--status")
                status = args[4];
            else if (args.size() != 3)
                return usage();
            return cmdMerge(args[1], args[2], status);
        }
        return usage();
    } catch (const std::exception &e) {
        std::cerr << "ggpu_metrics_tool: " << e.what() << "\n";
        return 1;
    }
}
