/**
 * @file
 * Ablation: host-device (PCIe) bandwidth sensitivity of end-to-end
 * application time. Fig 4 shows the GASAL2 family is PCI-transaction
 * heavy; this ablation quantifies how much total time (kernels + PCI)
 * each application loses when the link slows down, and how little when
 * it speeds up.
 */

#include "bench/common.hh"

namespace
{

using namespace ggpu;

const std::vector<std::pair<std::string, double>> &
bandwidths()
{
    static const std::vector<std::pair<std::string, double>> values{
        {"2GB/s", 2.0}, {"8GB/s", 8.0}, {"32GB/s", 32.0}};
    return values;
}

bench::Collector collector;

void
registerRuns()
{
    for (const auto &[label, gbs] : bandwidths()) {
        core::RunConfig cfg = bench::baseConfig();
        cfg.system.pci.bandwidthGBs = gbs;
        bench::addSuite(collector, label, cfg,
                        /*include_cdp=*/false);
    }
}

void
printFigure()
{
    std::vector<std::string> headers{"App"};
    for (const auto &[label, gbs] : bandwidths())
        headers.push_back(label);
    headers.push_back("PCI share @8GB/s");
    core::Table table(headers);
    for (const auto &app : core::appNames()) {
        const auto *base = collector.find("8GB/s", app);
        if (!base)
            continue;
        std::vector<std::string> row{app};
        for (const auto &[label, gbs] : bandwidths()) {
            const auto *record = collector.find(label, app);
            // End-to-end (kernels + PCI) speedup vs the 8GB/s baseline.
            row.push_back(record
                              ? core::Table::num(
                                    double(base->totalCycles) /
                                        double(record->totalCycles),
                                    3)
                              : "-");
        }
        row.push_back(core::Table::percent(
            double(base->profiledPciCycles) /
            double(base->totalCycles)));
        table.addRow(row);
    }
    bench::emitTable(
        "Ablation: end-to-end speedup vs PCIe bandwidth "
        "(8GB/s baseline)",
        table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
