/**
 * @file
 * Serving-mode sweep: p50/p95/p99 latency and sustained throughput
 * across arrival rates x batch policies x stream counts on one
 * simulated device. Prints one table per sweep axis and, under
 * GGPU_JSON, writes BENCH_SERVING.json (`ggpu.serving.v1`,
 * docs/SERVING.md) next to the bench.v1 artifacts. Unlike the figure
 * benches this binary does not use Google Benchmark — a serving point
 * is a single deterministic replay, not a timed microbenchmark — but
 * it accepts (and ignores) run_benches.sh's --benchmark_* flags.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/metrics_merge.hh"
#include "core/report.hh"
#include "core/trace_store.hh"
#include "serve/report.hh"
#include "serve/server.hh"

namespace
{

using namespace ggpu;

struct Point
{
    double rate = 0.0;
    serve::BatchPolicy policy = serve::BatchPolicy::Fifo;
    int streams = 2;
};

std::uint64_t
requestsForScale(kernels::InputScale scale)
{
    switch (scale) {
      case kernels::InputScale::Tiny:
        return 48;
      case kernels::InputScale::Small:
        return 96;
      case kernels::InputScale::Medium:
        return 160;
    }
    return 48;
}

} // namespace

int
main(int, char **)
{
    const kernels::InputScale scale = core::scaleFromEnv();
    const int threads = core::threadsFromEnv();

    serve::ServeConfig config;
    config.system.sim.threads = threads;
    config.scale = scale;
    config.batcher.maxBatch = 24;

    serve::TapeConfig tape_config;
    tape_config.requests = requestsForScale(scale);
    tape_config.coreClockGhz = config.system.gpu.coreClockGhz;
    tape_config.apps = {"SW", "GL"};
    // ~200 us flush bound: far below any p50 a saturated device can
    // reach, so the timeout only shapes the partial-batch tail.
    config.batcher.timeout =
        Cycles(200.0 * config.system.gpu.coreClockGhz * 1e3);

    std::vector<Point> points;
    for (const double rate : {1000.0, 4000.0, 16000.0}) {
        for (const serve::BatchPolicy policy :
             {serve::BatchPolicy::Fifo, serve::BatchPolicy::PerApp,
              serve::BatchPolicy::LengthBinned})
            points.push_back({rate, policy, 2});
    }
    for (const int streams : {1, 4})
        points.push_back({4000.0, serve::BatchPolicy::PerApp, streams});

    core::TraceStore store;
    core::Table table({"point", "served", "batches", "reads/s",
                       "p50 ms", "p95 ms", "p99 ms", "util"});
    std::vector<core::json::Value> rendered;

    const double ghz = config.system.gpu.coreClockGhz;
    for (const Point &point : points) {
        tape_config.ratePerSec = point.rate;
        config.batcher.policy = point.policy;
        config.streams = point.streams;
        const serve::RequestTape tape =
            serve::generateTape(tape_config);
        const serve::ServeResult result =
            serve::runServing(tape, config, store);

        const std::string label =
            std::string(
                serve::arrivalProcessName(tape_config.process)) +
            "-" + std::to_string(std::uint64_t(point.rate)) + "/" +
            serve::policyName(point.policy) + "/s" +
            std::to_string(point.streams);
        auto ms = [&](double p) {
            return core::Table::num(
                double(percentileOfSorted(result.latencyCycles, p)) /
                    (ghz * 1e6),
                3);
        };
        double busy = 0.0;
        for (Cycles b : result.streamBusy)
            busy += double(b);
        const double makespan = double(result.makespan);
        table.addRow(
            {label, std::to_string(result.served),
             std::to_string(result.batches),
             core::Table::num(makespan > 0.0
                                  ? double(result.reads) /
                                        (makespan / (ghz * 1e9))
                                  : 0.0,
                              1),
             ms(0.50), ms(0.95), ms(0.99),
             core::Table::percent(
                 makespan > 0.0
                     ? busy / (makespan * double(point.streams))
                     : 0.0)});
        rendered.push_back(
            serve::pointToJson(label, tape, config, result));
    }

    std::cout << "== serving sweep (" << core::scaleName(scale)
              << ", " << threads << " thread(s)) ==\n";
    table.print(std::cout);

    if (const char *dir = std::getenv("GGPU_JSON"); dir && *dir) {
        const std::string path =
            std::string(dir) + "/BENCH_SERVING.json";
        const core::json::Value doc = serve::buildServingArtifact(
            core::scaleName(scale), threads, tape_config.seed,
            std::move(rendered));
        serve::validateServingArtifact(path, doc);
        core::writeJsonFile(path, doc);
        std::cout << "wrote " << path << "\n";
    }
    return 0;
}
