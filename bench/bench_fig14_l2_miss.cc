/**
 * @file
 * Figure 14: L2 miss rate across the cache-capacity sweep (paper: NW,
 * PairHMM, NvB stay high even with large L2; GASAL2 reaches ~95% at
 * the smallest capacity).
 */

#include "bench/common.hh"

namespace
{

using namespace ggpu;

bench::Collector collector;

std::string
cacheLabel(std::uint32_t l1, std::uint32_t l2)
{
    auto kb = [](std::uint32_t bytes) {
        return bytes >= 1024 * 1024
            ? std::to_string(bytes >> 20) + "M"
            : std::to_string(bytes >> 10) + "K";
    };
    return kb(l1) + "+" + kb(l2);
}

void
registerRuns()
{
    for (auto [l1, l2] : GpuConfig::cacheSweep()) {
        core::RunConfig cfg = bench::baseConfig();
        cfg.system.gpu.l1SizeBytes = l1;
        cfg.system.gpu.l2SizeBytes = l2;
        bench::addSuite(collector, cacheLabel(l1, l2), cfg, true);
    }
}

void
printFigure()
{
    std::vector<std::string> headers{"App"};
    for (auto [l1, l2] : GpuConfig::cacheSweep())
        headers.push_back(cacheLabel(l1, l2));
    core::Table table(headers);

    for (const auto &label : bench::suiteLabels(true)) {
        std::vector<std::string> row{label};
        for (auto [l1, l2] : GpuConfig::cacheSweep()) {
            const auto *record =
                collector.find(cacheLabel(l1, l2), label);
            row.push_back(record ? core::Table::percent(
                                       record->stats.l2MissRate())
                                 : "-");
        }
        table.addRow(row);
    }
    bench::emitTable("Figure 14: L2 miss rate vs cache size", table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
