/**
 * @file
 * Figure 5: pipeline-stall breakdown per application (CDP and
 * non-CDP). The paper's headline findings: long memory latency causes
 * up to 95% of stalls, and NvB is dominated (>90%) by "functional
 * done" (cores waiting for the next kernel's setup).
 */

#include "bench/common.hh"

namespace
{

using namespace ggpu;
using sim::StallReason;

bench::Collector collector;

void
registerRuns()
{
    bench::addSuite(collector, "fig5", bench::baseConfig(), true);
}

void
printFigure()
{
    core::Table table({"App", "MemLatency", "ControlHazard", "Sync",
                       "DataHazard", "Structural", "FunctionalDone",
                       "Idle"});
    for (const auto &record : collector.at("fig5")) {
        auto pct = [&record](StallReason reason) {
            return core::Table::percent(
                core::stallFraction(record, reason));
        };
        table.addRow({record.label(), pct(StallReason::MemLatency),
                      pct(StallReason::ControlHazard),
                      pct(StallReason::Sync),
                      pct(StallReason::DataHazard),
                      pct(StallReason::Structural),
                      pct(StallReason::FunctionalDone),
                      pct(StallReason::Idle)});
    }
    bench::emitTable("Figure 5: pipeline stall breakdown", table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
