/**
 * @file
 * Figure 4: (a) kernel-function invocation count vs PCI (cudaMemcpy)
 * transaction count per application; (b) total and average time spent
 * in kernels vs PCI transfers.
 */

#include "bench/common.hh"

namespace
{

using namespace ggpu;

bench::Collector collector;

void
registerRuns()
{
    bench::addSuite(collector, "fig4", bench::baseConfig(),
                    /*include_cdp=*/false);
}

void
printFigure()
{
    core::Table counts({"App", "Kernel count", "PCI count",
                        "Kernel/PCI"});
    core::Table times({"App", "Kernel total (ms)", "PCI total (ms)",
                       "Kernel avg (us)", "PCI avg (us)"});
    const double ghz = GpuConfig{}.coreClockGhz;
    for (const auto &record : collector.at("fig4")) {
        counts.addRow(
            {record.app, std::to_string(record.kernelInvocations),
             std::to_string(record.pciTransactions),
             core::Table::num(double(record.kernelInvocations) /
                                  double(record.pciTransactions),
                              2)});
        const double k_ms =
            double(record.profiledKernelCycles) / (ghz * 1e6);
        const double p_ms =
            double(record.profiledPciCycles) / (ghz * 1e6);
        times.addRow(
            {record.app, core::Table::num(k_ms, 3),
             core::Table::num(p_ms, 3),
             core::Table::num(k_ms * 1000.0 /
                                  double(record.kernelInvocations),
                              1),
             core::Table::num(p_ms * 1000.0 /
                                  double(record.pciTransactions),
                              1)});
    }
    bench::emitTable("Figure 4a: kernel vs PCI invocation counts",
                     counts);
    bench::emitTable("Figure 4b: kernel vs PCI execution time", times);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
