/**
 * @file
 * Figure 22: channel-bandwidth sensitivity on a mesh (flit width 40B
 * baseline, then 32/16/8B; paper: ~10% average loss at 32B and severe
 * degradation at 16/8B, ~34% average at 8B).
 */

#include "bench/common.hh"
#include "common/log.hh"

namespace
{

using namespace ggpu;

bench::Collector collector;

std::string
flitLabel(std::uint32_t flit)
{
    return std::to_string(flit) + "B";
}

void
registerRuns()
{
    for (auto flit : NocConfig::flitSweep()) {
        core::RunConfig cfg = bench::baseConfig();
        cfg.system.noc.topology = NocTopology::Mesh;
        cfg.system.noc.flitBytes = flit;
        bench::addSuite(collector, flitLabel(flit), cfg, true);
    }
}

void
printFigure()
{
    std::vector<std::string> headers{"App"};
    // Print widest first, matching the paper's normalization to 40B.
    std::vector<std::uint32_t> flits = NocConfig::flitSweep();
    std::sort(flits.rbegin(), flits.rend());
    for (auto flit : flits)
        headers.push_back(flitLabel(flit));
    core::Table table(headers);

    std::vector<std::vector<double>> degradations(flits.size());
    for (const auto &label : bench::suiteLabels(true)) {
        const auto *base = collector.find("40B", label);
        if (!base) {
            warn("fig22: no baseline (40B) record for ", label,
                 "; emitting placeholder row");
        }
        std::vector<std::string> row{label};
        for (std::size_t col = 0; col < flits.size(); ++col) {
            const auto *record =
                collector.find(flitLabel(flits[col]), label);
            if (base && record) {
                const double speedup = core::speedupVs(*base, *record);
                row.push_back(core::Table::num(speedup, 3));
                degradations[col].push_back(1.0 - speedup);
            } else {
                row.push_back("-");
            }
        }
        table.addRow(row);
    }
    std::vector<std::string> avg_row{"avg degradation"};
    for (const auto &column : degradations) {
        double sum = 0.0;
        for (double v : column)
            sum += v;
        avg_row.push_back(core::Table::percent(
            column.empty() ? 0.0 : sum / double(column.size())));
    }
    table.addRow(avg_row);
    bench::emitTable(
        "Figure 22: mesh channel-width speedup (40B flit = 1.0)",
        table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
