/**
 * @file
 * Figure 20: interconnect topology sensitivity (local crossbar
 * baseline vs mesh, fat tree, butterfly; paper: slight losses on the
 * alternatives; SW-CDP and NW-CDP drop sharply on the mesh).
 */

#include "bench/common.hh"
#include "common/log.hh"

namespace
{

using namespace ggpu;

const std::vector<std::pair<std::string, NocTopology>> &
topologies()
{
    static const std::vector<std::pair<std::string, NocTopology>>
        values{{"xbar", NocTopology::Xbar},
               {"mesh", NocTopology::Mesh},
               {"fat-tree", NocTopology::FatTree},
               {"butterfly", NocTopology::Butterfly}};
    return values;
}

bench::Collector collector;

void
registerRuns()
{
    for (const auto &[label, topo] : topologies()) {
        core::RunConfig cfg = bench::baseConfig();
        cfg.system.noc.topology = topo;
        bench::addSuite(collector, label, cfg, true);
    }
}

void
printFigure()
{
    std::vector<std::string> headers{"App"};
    for (const auto &[label, topo] : topologies())
        headers.push_back(label);
    core::Table table(headers);
    for (const auto &label : bench::suiteLabels(true)) {
        const auto *base = collector.find("xbar", label);
        if (!base) {
            warn("fig20: no baseline (xbar) record for ", label,
                 "; emitting placeholder row");
        }
        std::vector<std::string> row{label};
        for (const auto &[cfg_label, topo] : topologies()) {
            const auto *record = collector.find(cfg_label, label);
            row.push_back(base && record
                              ? core::Table::num(
                                    core::speedupVs(*base, *record), 3)
                              : "-");
        }
        table.addRow(row);
    }
    bench::emitTable(
        "Figure 20: topology speedup (local crossbar baseline)",
        table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
