/**
 * @file
 * Table II: interconnect configuration settings. Prints the Booksim-
 * style parameter table and validates each topology/flit-size point
 * by constructing a network and checking route sanity.
 */

#include "bench/common.hh"

#include "noc/network.hh"

namespace
{

using namespace ggpu;

void
registerRuns()
{
    benchmark::RegisterBenchmark(
        "table2/validate_topologies", [](benchmark::State &state) {
            for (auto _ : state) {
                (void)_;
                const int nodes = 86;  // 78 cores + 8 partitions
                std::uint64_t routes = 0;
                for (auto topo :
                     {NocTopology::Xbar, NocTopology::Mesh,
                      NocTopology::FatTree, NocTopology::Butterfly}) {
                    for (auto flit : NocConfig::flitSweep()) {
                        NocConfig cfg;
                        cfg.topology = topo;
                        cfg.flitBytes = flit;
                        noc::Network net(cfg, nodes);
                        for (int s = 0; s < nodes; s += 7)
                            for (int d = 0; d < nodes; d += 11)
                                routes += std::uint64_t(
                                    net.zeroLoadLatency(s, d, 32));
                    }
                }
                state.counters["route_latency_sum"] = double(routes);
            }
        })
        ->Iterations(1);
}

void
printFigure()
{
    const NocConfig def;
    core::Table table({"Configuration", "Settings ([x] = default)"});
    table.addRow({"Topology",
                  "[Local Xbar], Mesh, Fat Tree, Butterfly"});
    table.addRow({"Routing Mechanism",
                  "Dimension Order (mesh), Destination Tag "
                  "(butterfly), Nearest Common Ancestor (fat tree)"});
    table.addRow({"Routing delay", std::to_string(def.routerDelay)});
    table.addRow({"Virtual channels",
                  std::to_string(def.virtualChannels)});
    table.addRow({"Virtual channel buffers",
                  std::to_string(def.vcBufferFlits)});
    std::string flits;
    for (auto f : NocConfig::flitSweep()) {
        if (!flits.empty())
            flits += ", ";
        flits += f == def.flitBytes ? "[" + std::to_string(f) + "]"
                                    : std::to_string(f);
    }
    table.addRow({"Flit size (Bytes)", flits});
    table.addRow({"Alloc iters", std::to_string(def.allocIters)});
    table.addRow({"VC alloc delay", std::to_string(def.vcAllocDelay)});
    table.addRow({"Input Speedup", std::to_string(def.inputSpeedup)});
    ggpu::bench::emitTable(
        "Table II: interconnect configuration settings", table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
