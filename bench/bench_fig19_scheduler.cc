/**
 * @file
 * Figure 19: warp-scheduler sensitivity (LRR baseline vs GTO, OLD,
 * two-level; paper: small differences overall, slight gains for
 * NvB and PairHMM-CDP under GTO/OLD).
 */

#include "bench/common.hh"
#include "common/log.hh"

namespace
{

using namespace ggpu;

const std::vector<std::pair<std::string, WarpSchedPolicy>> &
schedulers()
{
    static const std::vector<std::pair<std::string, WarpSchedPolicy>>
        values{{"LRR", WarpSchedPolicy::Lrr},
               {"GTO", WarpSchedPolicy::Gto},
               {"OLD", WarpSchedPolicy::Oldest},
               {"2LV", WarpSchedPolicy::TwoLevel}};
    return values;
}

bench::Collector collector;

void
registerRuns()
{
    for (const auto &[label, policy] : schedulers()) {
        core::RunConfig cfg = bench::baseConfig();
        cfg.system.gpu.warpSched = policy;
        bench::addSuite(collector, label, cfg, true);
    }
}

void
printFigure()
{
    std::vector<std::string> headers{"App"};
    for (const auto &[label, policy] : schedulers())
        headers.push_back(label);
    core::Table table(headers);
    for (const auto &label : bench::suiteLabels(true)) {
        const auto *base = collector.find("LRR", label);
        if (!base) {
            warn("fig19: no baseline (LRR) record for ", label,
                 "; emitting placeholder row");
        }
        std::vector<std::string> row{label};
        for (const auto &[cfg_label, policy] : schedulers()) {
            const auto *record = collector.find(cfg_label, label);
            row.push_back(base && record
                              ? core::Table::num(
                                    core::speedupVs(*base, *record), 3)
                              : "-");
        }
        table.addRow(row);
    }
    bench::emitTable(
        "Figure 19: warp-scheduler speedup (LRR baseline)", table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
