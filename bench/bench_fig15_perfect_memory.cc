/**
 * @file
 * Figure 15: speedup under a perfect (zero-latency) memory system
 * (paper: ~27% average; STAR/CLUSTER flat; GG/GL ~25%; GKSW up to 5x).
 */

#include "bench/common.hh"
#include "common/log.hh"

namespace
{

using namespace ggpu;

bench::Collector collector;

void
registerRuns()
{
    bench::addSuite(collector, "baseline", bench::baseConfig(), true);
    core::RunConfig perfect = bench::baseConfig();
    perfect.system.gpu.perfectMemory = true;
    bench::addSuite(collector, "perfect", perfect, true);
}

void
printFigure()
{
    core::Table table({"App", "Baseline cycles", "Perfect cycles",
                       "Speedup"});
    std::vector<double> speedups;
    for (const auto &label : bench::suiteLabels(true)) {
        const auto *base = collector.find("baseline", label);
        const auto *perfect = collector.find("perfect", label);
        if (!base || !perfect) {
            warn("fig15: missing ", base ? "perfect" : "baseline",
                 " record for ", label, "; emitting placeholder row");
            table.addRow(
                {label, base ? std::to_string(base->kernelCycles) : "-",
                 perfect ? std::to_string(perfect->kernelCycles) : "-",
                 "-"});
            continue;
        }
        const double speedup = core::speedupVs(*base, *perfect);
        speedups.push_back(speedup);
        table.addRow({label, std::to_string(base->kernelCycles),
                      std::to_string(perfect->kernelCycles),
                      core::Table::num(speedup, 2) + "x"});
    }
    table.addRow({"geomean", "", "",
                  core::Table::num(core::geomean(speedups), 2) + "x"});
    bench::emitTable("Figure 15: perfect-memory speedup", table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
