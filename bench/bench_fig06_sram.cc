/**
 * @file
 * Figure 6: utilization of the SRAM structures (register file, shared
 * memory, constant memory) per application at full occupancy, from
 * each kernel's declared resources — the equivalent of the paper's
 * "-Xptxas=-v" methodology.
 */

#include "bench/common.hh"

#include "sim/occupancy.hh"

namespace
{

using namespace ggpu;

bench::Collector collector;

void
registerRuns()
{
    bench::addSuite(collector, "fig6", bench::baseConfig(),
                    /*include_cdp=*/false);
}

void
printFigure()
{
    core::Table table({"App", "Registers", "SharedMem", "ConstMem",
                       "Limiter"});
    const GpuConfig cfg;
    for (const auto &record : collector.at("fig6")) {
        const sim::Occupancy occ =
            sim::computeOccupancy(cfg, record.primarySpec);
        table.addRow({record.app,
                      core::Table::percent(occ.registerUtilization),
                      core::Table::percent(occ.sharedMemUtilization),
                      core::Table::percent(occ.constMemUtilization),
                      sim::toString(occ.limiter)});
    }
    bench::emitTable("Figure 6: SRAM structure utilization", table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
