/**
 * @file
 * Engine-speed gate: wall-clock time of the timing replay under the
 * event-driven fast-forward engine versus the reference per-cycle
 * loop, on identical simulated work (one shared emission per app via
 * the trace store). Reported times are host wall seconds of the
 * replay alone — the simulated results are byte-identical by
 * construction (see tests/test_engine_equivalence.cc), so the only
 * thing this binary measures is execution strategy. The artifact is
 * BENCH_ENGINE.json.
 */

#include "bench/common.hh"

#include <map>

namespace
{

using namespace ggpu;

bench::Collector collector;

/** (config label)/(run label) -> replay telemetry of the last run. */
std::map<std::string, core::ReplayTelemetry> telemetryByRun;

void
addSide(const std::string &config_label, bool fast_forward)
{
    core::RunConfig config = bench::baseConfig();
    config.system.sim.fastForward = fast_forward;
    for (const auto &app : core::appNames())
        for (const bool cdp : {false, true})
            bench::addWallRun(
                collector, config_label, app, cdp, config,
                [config_label](const core::RunRecord &record,
                               const core::ReplayTelemetry &telemetry) {
                    telemetryByRun[config_label + "/" +
                                   record.label()] = telemetry;
                });
}

void
registerRuns()
{
    addSide("per-cycle", false);
    addSide("fast-forward", true);
}

void
printFigure()
{
    core::Table table({"App", "per-cycle ms", "fast-forward ms",
                       "speedup", "skipped SM slots"});
    double sum = 0.0, best = 0.0;
    int counted = 0, atLeast2x = 0;
    for (const std::string &label : bench::suiteLabels()) {
        const auto off = telemetryByRun.find("per-cycle/" + label);
        const auto on = telemetryByRun.find("fast-forward/" + label);
        if (off == telemetryByRun.end() || on == telemetryByRun.end())
            continue;
        const double speedup = on->second.wallSeconds > 0.0
            ? off->second.wallSeconds / on->second.wallSeconds
            : 0.0;
        const int cores = bench::baseConfig().system.gpu.numCores;
        const double skipped =
            on->second.engine.skippedSmTickFraction(cores);
        table.addRow({label,
                      core::Table::num(off->second.wallSeconds * 1e3),
                      core::Table::num(on->second.wallSeconds * 1e3),
                      core::Table::num(speedup, 2),
                      core::Table::percent(skipped)});
        sum += speedup;
        best = std::max(best, speedup);
        ++counted;
        if (speedup >= 2.0)
            ++atLeast2x;
    }
    table.addRow({"average", "", "",
                  core::Table::num(counted ? sum / counted : 0.0, 2),
                  ""});
    table.addRow({"max", "", "", core::Table::num(best, 2), ""});
    table.addRow({">=2x runs", "", "", std::to_string(atLeast2x), ""});
    bench::emitTable(
        "Engine: fast-forward vs per-cycle replay wall time", table);
}

} // namespace

GGPU_BENCH_MAIN_FIGURE("ENGINE", registerRuns, printFigure)
