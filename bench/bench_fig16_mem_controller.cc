/**
 * @file
 * Figure 16: impact of the DRAM memory-controller policy (baseline
 * FR-FCFS vs FIFO vs OoO-128; paper: FIFO up to 15% slower for
 * GL/GKSW; OoO-128 roughly matches the baseline).
 */

#include "bench/common.hh"
#include "common/log.hh"

namespace
{

using namespace ggpu;

const std::vector<std::pair<std::string, MemSchedPolicy>> &
policies()
{
    static const std::vector<std::pair<std::string, MemSchedPolicy>>
        values{{"FR-FCFS", MemSchedPolicy::FrFcfs},
               {"FIFO", MemSchedPolicy::Fifo},
               {"OoO-128", MemSchedPolicy::OoO128}};
    return values;
}

bench::Collector collector;

void
registerRuns()
{
    for (const auto &[label, policy] : policies()) {
        core::RunConfig cfg = bench::baseConfig();
        cfg.system.gpu.memSched = policy;
        bench::addSuite(collector, label, cfg, true);
    }
}

void
printFigure()
{
    std::vector<std::string> headers{"App"};
    for (const auto &[label, policy] : policies())
        headers.push_back(label);
    core::Table table(headers);
    for (const auto &label : bench::suiteLabels(true)) {
        const auto *base = collector.find("FR-FCFS", label);
        if (!base) {
            warn("fig16: no baseline (FR-FCFS) record for ", label,
                 "; emitting placeholder row");
        }
        std::vector<std::string> row{label};
        for (const auto &[cfg_label, policy] : policies()) {
            const auto *record = collector.find(cfg_label, label);
            row.push_back(base && record
                              ? core::Table::num(
                                    core::speedupVs(*base, *record), 3)
                              : "-");
        }
        table.addRow(row);
    }
    bench::emitTable(
        "Figure 16: DRAM controller speedup (FR-FCFS baseline)",
        table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
