/**
 * @file
 * Figure 21: router-latency sensitivity on a mesh (ideal zero-delay
 * router baseline, then +4/+8/+16 cycles per hop; paper: average
 * degradation of 36%/60%/78%, with the CDP variants hurting most).
 */

#include "bench/common.hh"
#include "common/log.hh"

namespace
{

using namespace ggpu;

const std::vector<std::pair<std::string, Cycles>> &
delays()
{
    static const std::vector<std::pair<std::string, Cycles>> values{
        {"+0", 0}, {"+4", 4}, {"+8", 8}, {"+16", 16}};
    return values;
}

bench::Collector collector;

void
registerRuns()
{
    for (const auto &[label, delay] : delays()) {
        core::RunConfig cfg = bench::baseConfig();
        cfg.system.noc.topology = NocTopology::Mesh;
        cfg.system.noc.routerDelay = delay;
        bench::addSuite(collector, label, cfg, true);
    }
}

void
printFigure()
{
    std::vector<std::string> headers{"App"};
    for (const auto &[label, delay] : delays())
        headers.push_back(label);
    core::Table table(headers);
    std::vector<std::vector<double>> degradations(delays().size());
    for (const auto &label : bench::suiteLabels(true)) {
        const auto *base = collector.find("+0", label);
        if (!base) {
            warn("fig21: no baseline (+0) record for ", label,
                 "; emitting placeholder row");
        }
        std::vector<std::string> row{label};
        std::size_t col = 0;
        for (const auto &[cfg_label, delay] : delays()) {
            const auto *record = collector.find(cfg_label, label);
            if (base && record) {
                const double speedup = core::speedupVs(*base, *record);
                row.push_back(core::Table::num(speedup, 3));
                degradations[col].push_back(1.0 - speedup);
            } else {
                row.push_back("-");
            }
            ++col;
        }
        table.addRow(row);
    }
    std::vector<std::string> avg_row{"avg degradation"};
    for (const auto &column : degradations) {
        double sum = 0.0;
        for (double v : column)
            sum += v;
        avg_row.push_back(core::Table::percent(
            column.empty() ? 0.0 : sum / double(column.size())));
    }
    table.addRow(avg_row);
    bench::emitTable(
        "Figure 21: mesh router-latency speedup (ideal router = 1.0)",
        table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
