/**
 * @file
 * Figure 7: execution time with and without shared memory for the two
 * shared-memory-heavy kernels, NW and PairHMM (paper: 1.88x and
 * 36.92x slower without shared memory, respectively).
 */

#include "bench/common.hh"

namespace
{

using namespace ggpu;

bench::Collector collector;

void
registerRuns()
{
    core::RunConfig with = bench::baseConfig();
    core::RunConfig without = with;
    without.options.sharedMem = false;
    for (const std::string app : {"NW", "PairHMM"}) {
        bench::addRun(collector, "shared", app, false, with);
        bench::addRun(collector, "noshared", app, false, without);
    }
}

void
printFigure()
{
    core::Table table({"App", "Shared cycles", "Global cycles",
                       "Slowdown without shared"});
    for (const std::string app : {"NW", "PairHMM"}) {
        const auto *with = collector.find("shared", app);
        const auto *without = collector.find("noshared", app);
        if (!with || !without)
            continue;
        table.addRow({app, std::to_string(with->kernelCycles),
                      std::to_string(without->kernelCycles),
                      core::Table::num(double(without->kernelCycles) /
                                           double(with->kernelCycles),
                                       2) + "x"});
    }
    bench::emitTable(
        "Figure 7: execution time with/without shared memory", table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
