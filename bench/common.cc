#include "bench/common.hh"

#include <cstdlib>
#include <iostream>

#include "common/log.hh"

namespace ggpu::bench
{

core::RunConfig
baseConfig()
{
    core::RunConfig config;
    config.options.scale = core::scaleFromEnv();
    config.system.sim.threads = core::threadsFromEnv();
    return config;
}

void
addRun(Collector &collector, const std::string &config_label,
       const std::string &app, bool cdp, const core::RunConfig &config)
{
    const std::string bench_name =
        config_label + "/" + app + (cdp ? "-CDP" : "");
    benchmark::RegisterBenchmark(
        bench_name.c_str(),
        [&collector, config_label, app, cdp,
         config](benchmark::State &state) {
            core::RunConfig cfg = config;
            cfg.options.cdp = cdp;
            for (auto _ : state) {
                (void)_;
                core::RunRecord record = core::runApp(app, cfg);
                state.SetIterationTime(record.gpuSeconds);
                state.counters["sim_cycles"] =
                    double(record.kernelCycles);
                state.counters["ipc"] = record.stats.ipc();
                state.counters["verified"] =
                    record.verified ? 1.0 : 0.0;
                collector.add(config_label, std::move(record));
            }
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
}

void
addSuite(Collector &collector, const std::string &config_label,
         const core::RunConfig &config, bool include_cdp)
{
    for (const auto &app : core::appNames()) {
        addRun(collector, config_label, app, false, config);
        if (include_cdp)
            addRun(collector, config_label, app, true, config);
    }
}

void
emitTable(const std::string &title, const core::Table &table)
{
    std::cout << "\n== " << title << " ==\n";
    table.print(std::cout);
    if (std::getenv("GGPU_CSV"))
        std::cout << "[csv]\n" << table.toCsv();
    std::cout.flush();
}

std::vector<std::string>
suiteLabels(bool include_cdp)
{
    std::vector<std::string> labels;
    for (const auto &app : core::appNames()) {
        labels.push_back(app);
        if (include_cdp)
            labels.push_back(app + "-CDP");
    }
    return labels;
}

int
benchMain(int argc, char **argv,
          const std::function<void()> &register_runs,
          const std::function<void()> &print_figure)
{
    benchmark::Initialize(&argc, argv);
    register_runs();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    print_figure();
    return 0;
}

} // namespace ggpu::bench
