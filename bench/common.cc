#include "bench/common.hh"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <utility>

#include "common/log.hh"
#include "core/metrics.hh"
#include "core/trace_store.hh"
#include "profile/run_profile.hh"
#include "sim/profile_hooks.hh"

namespace ggpu::bench
{

namespace
{

/**
 * One store per bench binary: every sweep point whose (app, options,
 * lineBytes) key matches reuses the same emission + CPU verification.
 * GGPU_NO_TRACE_CACHE=1 restores fresh per-point emission.
 */
core::TraceStore &
traceStore()
{
    static core::TraceStore store;
    return store;
}

std::vector<Collector *> &
collectorRegistry()
{
    static std::vector<Collector *> registry;
    return registry;
}

/** Series captured by emitTable, in emission order. */
std::vector<std::pair<std::string, core::Table>> &
emittedSeries()
{
    static std::vector<std::pair<std::string, core::Table>> series;
    return series;
}

/**
 * GGPU_TIMELINE hook: when the env var names a directory, wrap the
 * run in a TimelineRecorder and write a ggpu.timeline.v1 artifact
 * per (config, app) point. Detached (the common case) this costs
 * nothing — the observer seam is never installed.
 */
core::RunRecord
runPoint(const std::string &config_label, const std::string &app,
         const core::RunConfig &cfg)
{
    const char *dir = std::getenv("GGPU_TIMELINE");
    if (!dir)
        return core::runAppCached(traceStore(), app, cfg);

    profile::TimelineRecorder recorder(
        profile::timelineOptionsFromEnv());
    core::RunRecord record;
    {
        sim::ScopedTimingObserver scope(&recorder);
        record = core::runAppCached(traceStore(), app, cfg);
    }
    profile::Timeline timeline = std::move(recorder.timeline());
    profile::fillTimelineContext(timeline, app, cfg,
                                 recorder.options());
    timeline.cdp = cfg.options.cdp;
    std::string path = dir;
    if (!path.empty() && path.back() != '/')
        path += '/';
    path += profile::timelineFileName(config_label + "_" +
                                      record.label());
    profile::writeJsonFile(path, profile::toJson(timeline));
    return record;
}

} // namespace

Collector::Collector()
{
    collectorRegistry().push_back(this);
}

Collector::~Collector()
{
    auto &registry = collectorRegistry();
    registry.erase(std::remove(registry.begin(), registry.end(), this),
                   registry.end());
}

const std::vector<Collector *> &
Collector::instances()
{
    return collectorRegistry();
}

core::RunConfig
baseConfig()
{
    core::RunConfig config;
    config.options.scale = core::scaleFromEnv();
    config.system.sim.threads = core::threadsFromEnv();
    return config;
}

void
addRun(Collector &collector, const std::string &config_label,
       const std::string &app, bool cdp, const core::RunConfig &config)
{
    const std::string bench_name =
        config_label + "/" + app + (cdp ? "-CDP" : "");
    benchmark::RegisterBenchmark(
        bench_name.c_str(),
        [&collector, config_label, app, cdp,
         config](benchmark::State &state) {
            core::RunConfig cfg = config;
            cfg.options.cdp = cdp;
            for (auto _ : state) {
                (void)_;
                core::RunRecord record =
                    runPoint(config_label, app, cfg);
                state.SetIterationTime(record.gpuSeconds);
                state.counters["sim_cycles"] =
                    double(record.kernelCycles);
                state.counters["ipc"] = record.stats.ipc();
                state.counters["verified"] =
                    record.verified ? 1.0 : 0.0;
                collector.add(config_label, std::move(record));
            }
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
}

void
addSuite(Collector &collector, const std::string &config_label,
         const core::RunConfig &config, bool include_cdp)
{
    for (const auto &app : core::appNames()) {
        addRun(collector, config_label, app, false, config);
        if (include_cdp)
            addRun(collector, config_label, app, true, config);
    }
}

void
addWallRun(Collector &collector, const std::string &config_label,
           const std::string &app, bool cdp,
           const core::RunConfig &config,
           const std::function<void(const core::RunRecord &,
                                    const core::ReplayTelemetry &)>
               &on_result)
{
    const std::string bench_name =
        config_label + "/" + app + (cdp ? "-CDP" : "");
    benchmark::RegisterBenchmark(
        bench_name.c_str(),
        [&collector, config_label, app, cdp, config,
         on_result](benchmark::State &state) {
            core::RunConfig cfg = config;
            cfg.options.cdp = cdp;
            const sim::TraceBundle &bundle = traceStore().get(
                app, cfg.options, cfg.system.gpu.lineBytes);
            for (auto _ : state) {
                (void)_;
                core::ReplayTelemetry telemetry;
                core::RunRecord record =
                    core::timeTrace(bundle, cfg.system, &telemetry);
                state.SetIterationTime(telemetry.wallSeconds);
                state.counters["sim_cycles"] =
                    double(record.kernelCycles);
                state.counters["iterations"] =
                    double(telemetry.engine.iterations);
                state.counters["skipped_sm_frac"] =
                    telemetry.engine.skippedSmTickFraction(
                        cfg.system.gpu.numCores);
                state.counters["verified"] =
                    record.verified ? 1.0 : 0.0;
                if (on_result)
                    on_result(record, telemetry);
                collector.add(config_label, std::move(record));
            }
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
}

void
emitTable(const std::string &title, const core::Table &table)
{
    std::cout << "\n== " << title << " ==\n";
    table.print(std::cout);
    if (std::getenv("GGPU_CSV"))
        std::cout << "[csv]\n" << table.toCsv();
    std::cout.flush();
    emittedSeries().emplace_back(title, table);
}

std::string
figureIdFromArgv0(const char *argv0)
{
    std::string name = argv0 ? argv0 : "";
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    if (name.rfind("bench_", 0) == 0)
        name = name.substr(6);
    return name.empty() ? "unknown" : name;
}

void
emitJson(const std::string &figure, const std::string &dir)
{
    core::MetricsSink sink(figure,
                           core::scaleName(core::scaleFromEnv()),
                           core::threadsFromEnv());
    for (const Collector *collector : Collector::instances())
        for (const auto &[config, records] : collector->all())
            for (const auto &record : records)
                sink.addRun(config, record);
    for (const auto &[title, table] : emittedSeries())
        sink.addSeries(title, table);
    // Cache economics of this binary's runs: a sweep merging many
    // per-worker artifacts sums these to prove one-emission-per-key.
    sink.setSection("trace_store", traceStore().countersToJson());

    std::string path = dir;
    if (!path.empty() && path.back() != '/')
        path += '/';
    path += "BENCH_" + figure + ".json";
    sink.writeFile(path);
    std::cout << "[json] wrote " << path << "\n";
    std::cout.flush();
}

std::vector<std::string>
suiteLabels(bool include_cdp)
{
    std::vector<std::string> labels;
    for (const auto &app : core::appNames()) {
        labels.push_back(app);
        if (include_cdp)
            labels.push_back(app + "-CDP");
    }
    return labels;
}

int
benchMain(int argc, char **argv,
          const std::function<void()> &register_runs,
          const std::function<void()> &print_figure)
{
    return benchMain(figureIdFromArgv0(argc > 0 ? argv[0] : nullptr),
                     argc, argv, register_runs, print_figure);
}

int
benchMain(const std::string &figure, int argc, char **argv,
          const std::function<void()> &register_runs,
          const std::function<void()> &print_figure)
{
    benchmark::Initialize(&argc, argv);
    register_runs();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    print_figure();
    if (const char *dir = std::getenv("GGPU_JSON"))
        emitJson(figure, dir);
    return 0;
}

} // namespace ggpu::bench
