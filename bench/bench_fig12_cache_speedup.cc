/**
 * @file
 * Figure 12: speedup across the L1/L2 capacity sweep of Table I,
 * normalized to the baseline 128KB L1 + 4MB L2 (paper: small caches
 * hurt; GKSW gains up to 7x non-CDP / 2.7x CDP at the largest sizes).
 */

#include "bench/common.hh"
#include "common/log.hh"

namespace
{

using namespace ggpu;

bench::Collector collector;

std::string
cacheLabel(std::uint32_t l1, std::uint32_t l2)
{
    auto kb = [](std::uint32_t bytes) {
        return bytes >= 1024 * 1024
            ? std::to_string(bytes >> 20) + "M"
            : std::to_string(bytes >> 10) + "K";
    };
    return kb(l1) + "+" + kb(l2);
}

void
registerRuns()
{
    for (auto [l1, l2] : GpuConfig::cacheSweep()) {
        core::RunConfig cfg = bench::baseConfig();
        cfg.system.gpu.l1SizeBytes = l1;
        cfg.system.gpu.l2SizeBytes = l2;
        bench::addSuite(collector, cacheLabel(l1, l2), cfg, true);
    }
}

void
printFigure()
{
    const std::string base_label = cacheLabel(128u << 10, 4u << 20);
    std::vector<std::string> headers{"App"};
    for (auto [l1, l2] : GpuConfig::cacheSweep())
        headers.push_back(cacheLabel(l1, l2));
    core::Table table(headers);

    for (const auto &label : bench::suiteLabels(true)) {
        const auto *base = collector.find(base_label, label);
        if (!base) {
            warn("fig12: no baseline (", base_label, ") record for ",
                 label, "; emitting placeholder row");
        }
        std::vector<std::string> row{label};
        for (auto [l1, l2] : GpuConfig::cacheSweep()) {
            const auto *record =
                collector.find(cacheLabel(l1, l2), label);
            row.push_back(base && record
                              ? core::Table::num(
                                    core::speedupVs(*base, *record), 3)
                              : "-");
        }
        table.addRow(row);
    }
    bench::emitTable(
        "Figure 12: speedup vs cache size (baseline 128K L1 + 4M L2)",
        table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
