/**
 * @file
 * Figure 18: DRAM utilization (data-pin busy time over total kernel
 * time). Paper: mostly low, with GKSW and NvB (and their CDP
 * variants) standing out as memory-intensive.
 */

#include "bench/common.hh"

namespace
{

using namespace ggpu;

bench::Collector collector;

void
registerRuns()
{
    bench::addSuite(collector, "fig18", bench::baseConfig(), true);
}

void
printFigure()
{
    core::Table table({"App", "DRAM utilization", "Pin-busy cycles",
                       "Kernel cycles"});
    for (const auto &record : collector.at("fig18")) {
        table.addRow({record.label(),
                      core::Table::percent(
                          record.stats.dramUtilization()),
                      std::to_string(record.stats.dramPinBusy),
                      std::to_string(record.stats.gpuCycles)});
    }
    bench::emitTable("Figure 18: DRAM utilization", table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
