/**
 * @file
 * Figure 9: distribution of memory-instruction types per application
 * (paper: GASAL2 kernels are local-dominant; NW and PairHMM are >95%
 * shared; the rest lean on global/local).
 */

#include "bench/common.hh"

namespace
{

using namespace ggpu;
using sim::MemSpace;

bench::Collector collector;

void
registerRuns()
{
    bench::addSuite(collector, "fig9", bench::baseConfig(), true);
}

void
printFigure()
{
    core::Table table({"App", "Global", "Local", "Shared", "Const",
                       "Tex", "Param"});
    for (const auto &record : collector.at("fig9")) {
        auto pct = [&record](MemSpace space) {
            return core::Table::percent(
                core::memFraction(record, space));
        };
        table.addRow({record.label(), pct(MemSpace::Global),
                      pct(MemSpace::Local), pct(MemSpace::Shared),
                      pct(MemSpace::Const), pct(MemSpace::Tex),
                      pct(MemSpace::Param)});
    }
    bench::emitTable("Figure 9: memory-instruction distribution",
                     table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
