/**
 * @file
 * Figure 8: distribution of executed instruction types per
 * application (paper: integer >60%, then load/store, then floating
 * point; special-function ops are rare).
 */

#include "bench/common.hh"

namespace
{

using namespace ggpu;
using sim::OpKind;

bench::Collector collector;

void
registerRuns()
{
    bench::addSuite(collector, "fig8", bench::baseConfig(), true);
}

void
printFigure()
{
    core::Table table({"App", "Int", "Fp", "LoadStore", "Sfu",
                       "Control", "Other"});
    for (const auto &record : collector.at("fig8")) {
        const double ld = core::insnFraction(record, OpKind::Load);
        const double st = core::insnFraction(record, OpKind::Store);
        const double br = core::insnFraction(record, OpKind::Branch);
        const double intf = core::insnFraction(record, OpKind::IntAlu);
        const double fp = core::insnFraction(record, OpKind::FpAlu);
        const double sfu = core::insnFraction(record, OpKind::Sfu);
        table.addRow({record.label(), core::Table::percent(intf),
                      core::Table::percent(fp),
                      core::Table::percent(ld + st),
                      core::Table::percent(sfu),
                      core::Table::percent(br),
                      core::Table::percent(
                          1.0 - intf - fp - ld - st - sfu - br)});
    }
    bench::emitTable("Figure 8: instruction-type distribution", table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
