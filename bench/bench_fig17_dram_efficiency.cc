/**
 * @file
 * Figure 17: DRAM efficiency (time moving data on the pins / time the
 * controller had pending work) per controller policy (paper: ~40%
 * average; NW/PairHMM/NvB at 60-80%; FIFO slightly worse).
 */

#include "bench/common.hh"

namespace
{

using namespace ggpu;

const std::vector<std::pair<std::string, MemSchedPolicy>> &
policies()
{
    static const std::vector<std::pair<std::string, MemSchedPolicy>>
        values{{"FR-FCFS", MemSchedPolicy::FrFcfs},
               {"FIFO", MemSchedPolicy::Fifo},
               {"OoO-128", MemSchedPolicy::OoO128}};
    return values;
}

bench::Collector collector;

void
registerRuns()
{
    for (const auto &[label, policy] : policies()) {
        core::RunConfig cfg = bench::baseConfig();
        cfg.system.gpu.memSched = policy;
        bench::addSuite(collector, label, cfg, true);
    }
}

void
printFigure()
{
    std::vector<std::string> headers{"App"};
    for (const auto &[label, policy] : policies())
        headers.push_back(label);
    core::Table table(headers);
    std::vector<double> base_values;
    for (const auto &label : bench::suiteLabels(true)) {
        std::vector<std::string> row{label};
        for (const auto &[cfg_label, policy] : policies()) {
            const auto *record = collector.find(cfg_label, label);
            if (!record) {
                row.push_back("-");
                continue;
            }
            const double eff = record->stats.dramEfficiency();
            row.push_back(core::Table::percent(eff));
            if (cfg_label == "FR-FCFS")
                base_values.push_back(eff);
        }
        table.addRow(row);
    }
    double avg = 0.0;
    for (double v : base_values)
        avg += v;
    if (!base_values.empty())
        avg /= double(base_values.size());
    table.addRow({"average", core::Table::percent(avg), "", ""});
    bench::emitTable("Figure 17: DRAM efficiency", table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
