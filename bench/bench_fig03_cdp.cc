/**
 * @file
 * Figure 3: kernel execution time of the CDP variant of every
 * application relative to its non-CDP version (paper: up to 59%
 * improvement, 14% on average).
 */

#include "bench/common.hh"

namespace
{

using namespace ggpu;

bench::Collector collector;

void
registerRuns()
{
    bench::addSuite(collector, "fig3", bench::baseConfig(), true);
}

void
printFigure()
{
    core::Table table({"App", "non-CDP cycles", "CDP cycles",
                       "CDP/non-CDP", "Improvement"});
    std::vector<double> improvements;
    for (const auto &app : core::appNames()) {
        const auto *base = collector.find("fig3", app);
        const auto *cdp = collector.find("fig3", app + "-CDP");
        if (!base || !cdp)
            continue;
        const double rel = double(cdp->kernelCycles) /
                           double(base->kernelCycles);
        improvements.push_back(1.0 - rel);
        table.addRow({app, std::to_string(base->kernelCycles),
                      std::to_string(cdp->kernelCycles),
                      core::Table::num(rel, 3),
                      core::Table::percent(1.0 - rel)});
    }
    double sum = 0.0, best = 0.0;
    for (double v : improvements) {
        sum += v;
        best = std::max(best, v);
    }
    table.addRow({"average", "", "", "",
                  core::Table::percent(
                      improvements.empty()
                          ? 0.0 : sum / double(improvements.size()))});
    table.addRow({"max", "", "", "", core::Table::percent(best)});
    bench::emitTable("Figure 3: CDP vs non-CDP kernel time", table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
