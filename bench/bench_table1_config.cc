/**
 * @file
 * Table I: hardware configuration settings. Prints the default
 * (bold-in-paper) configuration and every sweep list, and validates
 * that each sweep point forms a legal configuration.
 */

#include "bench/common.hh"

#include "sim/gpu.hh"

namespace
{

using namespace ggpu;

void
registerRuns()
{
    // Table I is static configuration; validate each sweep entry by
    // constructing a device from it inside a benchmark.
    benchmark::RegisterBenchmark(
        "table1/validate_sweeps", [](benchmark::State &state) {
            for (auto _ : state) {
                (void)_;
                int validated = 0;
                for (auto [l1, l2] : GpuConfig::cacheSweep()) {
                    SystemConfig cfg;
                    cfg.gpu.l1SizeBytes = l1;
                    cfg.gpu.l2SizeBytes = l2;
                    sim::Gpu gpu(cfg);
                    ++validated;
                }
                for (auto policy :
                     {MemSchedPolicy::FrFcfs, MemSchedPolicy::Fifo,
                      MemSchedPolicy::OoO128}) {
                    SystemConfig cfg;
                    cfg.gpu.memSched = policy;
                    sim::Gpu gpu(cfg);
                    ++validated;
                }
                state.counters["configs"] = validated;
            }
        })
        ->Iterations(1);
}

std::string
joinU32(const std::vector<std::uint32_t> &values,
        std::uint32_t bold)
{
    std::string out;
    for (auto v : values) {
        if (!out.empty())
            out += ", ";
        out += v == bold ? "[" + std::to_string(v) + "]"
                         : std::to_string(v);
    }
    return out;
}

void
printFigure()
{
    const GpuConfig def;
    core::Table table({"Configuration", "Settings ([x] = default)"});
    table.addRow({"Shader Cores", std::to_string(def.numCores)});
    table.addRow({"Warp Size", std::to_string(def.warpSizeLanes)});
    table.addRow({"Constant Cache Size / Core",
                  std::to_string(def.constMemBytes / 1024) + "KB"});
    table.addRow({"Texture Cache Size / Core",
                  std::to_string(def.texCacheBytes / 1024) + "KB"});
    table.addRow({"Number of Registers / Core",
                  joinU32(GpuConfig::registerSweep(),
                          def.registersPerCore)});
    table.addRow({"Number of CTAs / Core",
                  joinU32(GpuConfig::ctaSweep(), def.maxCtasPerCore)});
    table.addRow({"Number of Threads / Core",
                  joinU32(GpuConfig::threadSweep(),
                          def.maxThreadsPerCore)});
    table.addRow({"Shared Memory / Core (KB)",
                  joinU32(GpuConfig::sharedMemSweepKb(),
                          def.sharedMemPerCoreBytes / 1024)});
    std::string caches;
    for (auto [l1, l2] : GpuConfig::cacheSweep()) {
        if (!caches.empty())
            caches += ", ";
        const bool is_def = l1 == def.l1SizeBytes &&
                            l2 == def.l2SizeBytes;
        const std::string entry = std::to_string(l1 / 1024) + "K/" +
                                  std::to_string(l2 / 1024) + "K";
        caches += is_def ? "[" + entry + "]" : entry;
    }
    table.addRow({"L1/L2 Cache (L1 KB / L2 KB)", caches});
    table.addRow({"Memory Controller",
                  "[FR-FCFS], FIFO, OoO-128"});
    table.addRow({"Scheduler", "[LRR], GTO, OLD, 2LV"});
    ggpu::bench::emitTable("Table I: hardware configuration settings",
                           table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
