/**
 * @file
 * Figure 13: L1 miss rate across the cache-capacity sweep (paper:
 * ~30% average; SW and most GASAL2 kernels low; PairHMM and NvB very
 * high and insensitive to capacity).
 */

#include "bench/common.hh"

namespace
{

using namespace ggpu;

bench::Collector collector;

std::string
cacheLabel(std::uint32_t l1, std::uint32_t l2)
{
    auto kb = [](std::uint32_t bytes) {
        return bytes >= 1024 * 1024
            ? std::to_string(bytes >> 20) + "M"
            : std::to_string(bytes >> 10) + "K";
    };
    return kb(l1) + "+" + kb(l2);
}

void
registerRuns()
{
    for (auto [l1, l2] : GpuConfig::cacheSweep()) {
        if (l1 == 0)
            continue;  // no L1 -> no L1 miss rate
        core::RunConfig cfg = bench::baseConfig();
        cfg.system.gpu.l1SizeBytes = l1;
        cfg.system.gpu.l2SizeBytes = l2;
        bench::addSuite(collector, cacheLabel(l1, l2), cfg, true);
    }
}

void
printFigure()
{
    std::vector<std::string> headers{"App"};
    for (auto [l1, l2] : GpuConfig::cacheSweep()) {
        if (l1 != 0)
            headers.push_back(cacheLabel(l1, l2));
    }
    core::Table table(headers);

    std::vector<double> baseline_rates;
    for (const auto &label : bench::suiteLabels(true)) {
        std::vector<std::string> row{label};
        for (auto [l1, l2] : GpuConfig::cacheSweep()) {
            if (l1 == 0)
                continue;
            const auto *record =
                collector.find(cacheLabel(l1, l2), label);
            if (!record) {
                row.push_back("-");
                continue;
            }
            const double rate = record->stats.l1MissRate();
            row.push_back(core::Table::percent(rate));
            if (l1 == 128u << 10)
                baseline_rates.push_back(rate);
        }
        table.addRow(row);
    }
    double avg = 0.0;
    for (double r : baseline_rates)
        avg += r;
    if (!baseline_rates.empty())
        avg /= double(baseline_rates.size());
    std::vector<std::string> avg_row{"average(base)"};
    for (auto [l1, l2] : GpuConfig::cacheSweep()) {
        if (l1 == 0)
            continue;
        avg_row.push_back(l1 == 128u << 10 ? core::Table::percent(avg)
                                           : "");
    }
    table.addRow(avg_row);
    bench::emitTable("Figure 13: L1 miss rate vs cache size", table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
