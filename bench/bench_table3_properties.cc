/**
 * @file
 * Table III: benchmark properties — input, grid and CTA dimensions of
 * the primary kernel, shared/constant memory usage, and the computed
 * CTAs per core (occupancy), for every application.
 */

#include "bench/common.hh"

#include "sim/occupancy.hh"

namespace
{

using namespace ggpu;

bench::Collector collector;

void
registerRuns()
{
    bench::addSuite(collector, "base", bench::baseConfig(),
                    /*include_cdp=*/false);
}

std::string
dim3Str(const Dim3 &d)
{
    return "(" + std::to_string(d.x) + "," + std::to_string(d.y) +
           "," + std::to_string(d.z) + ")";
}

void
printFigure()
{
    core::Table table({"Benchmark", "Input", "Grid", "CTA",
                       "SharedMem?", "ConstMem?", "CTA/core",
                       "Verified"});
    const GpuConfig gpu_cfg;
    for (const auto &record : collector.at("base")) {
        const auto &spec = record.primarySpec;
        const sim::Occupancy occ =
            sim::computeOccupancy(gpu_cfg, spec);
        table.addRow({record.app, record.detail, dim3Str(spec.grid),
                      dim3Str(spec.cta),
                      spec.res.usesShared() ? "YES" : "NO",
                      spec.res.constBytes > 0 ? "YES" : "NO",
                      std::to_string(occ.ctasPerCore),
                      record.verified ? "yes" : "NO"});
    }
    bench::emitTable("Table III: benchmark properties", table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
