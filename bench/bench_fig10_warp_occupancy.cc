/**
 * @file
 * Figure 10: warp-occupancy distribution (active lanes per issued
 * warp, bucketed W1-4 .. W29-32) for the non-CDP and CDP variants.
 * Headlines to reproduce: NW/GASAL2 mostly W29-32; CLUSTER dominated
 * by W1-4; STAR around half occupancy; STAR-CDP >80% W1-4;
 * NW-CDP at full occupancy.
 */

#include "bench/common.hh"

namespace
{

using namespace ggpu;

bench::Collector collector;

void
registerRuns()
{
    bench::addSuite(collector, "fig10", bench::baseConfig(), true);
}

void
printFigure()
{
    core::Table table({"App", "W1-4", "W5-8", "W9-12", "W13-16",
                       "W17-20", "W21-24", "W25-28", "W29-32"});
    for (const auto &record : collector.at("fig10")) {
        std::vector<std::string> row{record.label()};
        for (int lo = 1; lo <= 29; lo += 4) {
            row.push_back(core::Table::percent(
                core::occupancyFraction(record, lo, lo + 3)));
        }
        table.addRow(row);
    }
    bench::emitTable("Figure 10: warp occupancy", table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
