/**
 * @file
 * Ablation: kernel-launch overhead sensitivity. The paper attributes
 * NvB's stall profile (>90% "functional done") to its many short
 * kernels; this ablation sweeps the modeled host-launch setup cost to
 * show which applications are launch-bound (NvB, NW, STAR — the
 * multi-launch pipelines) and which are compute-bound.
 */

#include "bench/common.hh"

namespace
{

using namespace ggpu;

const std::vector<std::pair<std::string, Cycles>> &
overheads()
{
    static const std::vector<std::pair<std::string, Cycles>> values{
        {"0", 0}, {"1250", 1250}, {"2500", 2500}, {"5000", 5000},
        {"10000", 10000}};
    return values;
}

bench::Collector collector;

void
registerRuns()
{
    for (const auto &[label, cycles] : overheads()) {
        core::RunConfig cfg = bench::baseConfig();
        cfg.system.gpu.kernelLaunchOverhead = cycles;
        bench::addSuite(collector, label, cfg,
                        /*include_cdp=*/false);
    }
}

void
printFigure()
{
    std::vector<std::string> headers{"App"};
    for (const auto &[label, cycles] : overheads())
        headers.push_back(label + "cy");
    core::Table table(headers);
    for (const auto &app : core::appNames()) {
        const auto *base = collector.find("2500", app);
        if (!base)
            continue;
        std::vector<std::string> row{app};
        for (const auto &[label, cycles] : overheads()) {
            const auto *record = collector.find(label, app);
            row.push_back(record
                              ? core::Table::num(
                                    core::speedupVs(*base, *record), 3)
                              : "-");
        }
        table.addRow(row);
    }
    bench::emitTable(
        "Ablation: speedup vs host kernel-launch overhead "
        "(2500-cycle baseline)",
        table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
