/**
 * @file
 * Shared harness for the per-figure benchmark binaries. Every binary
 * registers its (config, app) runs as google-benchmark entries whose
 * manual time is the *simulated* GPU time; after the runs, a printer
 * reproduces the corresponding paper table/figure as text (and CSV
 * when GGPU_CSV is set).
 */

#ifndef GGPU_BENCH_COMMON_HH
#define GGPU_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/report.hh"
#include "core/suite.hh"
#include "core/trace_store.hh"

namespace ggpu::bench
{

/**
 * All records one binary produced, keyed by (config label, run label).
 * Every live Collector self-registers so the JSON export path can
 * gather a binary's runs without threading the instance through
 * benchMain (each bench defines exactly one, at namespace scope).
 */
class Collector
{
  public:
    Collector();
    ~Collector();
    Collector(const Collector &) = delete;
    Collector &operator=(const Collector &) = delete;

    /** All live collectors, in construction order. */
    static const std::vector<Collector *> &instances();

    void
    add(const std::string &config, core::RunRecord record)
    {
        records_[config].push_back(std::move(record));
    }

    /** Records of one configuration, in registration order. */
    const std::vector<core::RunRecord> &
    at(const std::string &config) const
    {
        static const std::vector<core::RunRecord> empty;
        auto it = records_.find(config);
        return it == records_.end() ? empty : it->second;
    }

    /** Find a specific run; nullptr when missing. */
    const core::RunRecord *
    find(const std::string &config, const std::string &label) const
    {
        for (const auto &record : at(config))
            if (record.label() == label)
                return &record;
        return nullptr;
    }

    bool
    allVerified() const
    {
        for (const auto &[config, records] : records_)
            for (const auto &record : records)
                if (!record.verified)
                    return false;
        return true;
    }

    const std::map<std::string, std::vector<core::RunRecord>> &
    all() const
    {
        return records_;
    }

  private:
    std::map<std::string, std::vector<core::RunRecord>> records_;
};

/** Baseline system config (Table I/II bold values) + env scale. */
core::RunConfig baseConfig();

/**
 * Register one app run as a google-benchmark entry. The run executes
 * once; its simulated GPU seconds become the reported manual time and
 * the record lands in @p collector under @p config_label.
 */
void addRun(Collector &collector, const std::string &config_label,
            const std::string &app, bool cdp,
            const core::RunConfig &config);

/** Register the whole suite (optionally with CDP variants). */
void addSuite(Collector &collector, const std::string &config_label,
              const core::RunConfig &config, bool include_cdp = true);

/**
 * Like addRun, but the reported manual time is the *host wall time*
 * of the timing replay alone: the app's trace is emitted once through
 * the shared store, then replayed under @p config's system with a
 * steady clock around the replay. This is the engine-speed metric —
 * total process time would fold constant emission/verification work
 * into both sides of an engine comparison and mask the difference.
 * Counters carry the engine's tick telemetry (wall_ms, iterations,
 * skipped SM-slot fraction).
 */
void addWallRun(Collector &collector, const std::string &config_label,
                const std::string &app, bool cdp,
                const core::RunConfig &config,
                const std::function<void(const core::RunRecord &,
                                         const core::ReplayTelemetry &)>
                    &on_result = {});

/**
 * Print @p table, plus CSV when GGPU_CSV is set. The (title, table)
 * pair is also retained as a named series for the JSON artifact, so
 * the figure extractors feeding the text output are the single source
 * for both renderings.
 */
void emitTable(const std::string &title, const core::Table &table);

/**
 * Write BENCH_<figure>.json into @p dir: every registered collector's
 * runs plus every emitTable'd series. benchMain calls this when the
 * GGPU_JSON env var names a directory; exposed for tests.
 */
void emitJson(const std::string &figure, const std::string &dir);

/** Figure id for the artifact name: basename(argv0) minus "bench_". */
std::string figureIdFromArgv0(const char *argv0);

/**
 * Shared main: registers runs, executes them through the benchmark
 * library, then prints the figure tables.
 */
int benchMain(int argc, char **argv,
              const std::function<void()> &register_runs,
              const std::function<void()> &print_figure);

/** benchMain with an explicit artifact figure id (BENCH_<figure>.json)
 *  instead of the argv0-derived one. */
int benchMain(const std::string &figure, int argc, char **argv,
              const std::function<void()> &register_runs,
              const std::function<void()> &print_figure);

/** Standard labels for the 20 suite runs (Table III order x CDP). */
std::vector<std::string> suiteLabels(bool include_cdp = true);

} // namespace ggpu::bench

#define GGPU_BENCH_MAIN(register_runs, print_figure)                    \
    int                                                                 \
    main(int argc, char **argv)                                         \
    {                                                                   \
        return ggpu::bench::benchMain(argc, argv, (register_runs),      \
                                      (print_figure));                  \
    }

#define GGPU_BENCH_MAIN_FIGURE(figure, register_runs, print_figure)     \
    int                                                                 \
    main(int argc, char **argv)                                         \
    {                                                                   \
        return ggpu::bench::benchMain((figure), argc, argv,             \
                                      (register_runs),                  \
                                      (print_figure));                  \
    }

#endif // GGPU_BENCH_COMMON_HH
