/**
 * @file
 * Figure 2: CPU vs GPU vs GPU-CDP performance for SW, NW, and STAR.
 * CPU time is the wall clock of the reference implementation; GPU
 * time is simulated cycles at the 1.5 GHz core clock. All values are
 * normalized to the CPU (CPU = 1; higher speedup = shorter bar in the
 * paper).
 */

#include "bench/common.hh"

namespace
{

using namespace ggpu;

bench::Collector collector;

void
registerRuns()
{
    const core::RunConfig cfg = bench::baseConfig();
    for (const std::string app : {"SW", "NW", "STAR"}) {
        bench::addRun(collector, "fig2", app, false, cfg);
        bench::addRun(collector, "fig2", app, true, cfg);
    }
}

void
printFigure()
{
    core::Table table({"App", "CPU (s)", "GPU (s)", "GPU-CDP (s)",
                       "GPU speedup", "CDP speedup",
                       "CDP vs GPU"});
    for (const std::string app : {"SW", "NW", "STAR"}) {
        const auto *gpu = collector.find("fig2", app);
        const auto *cdp = collector.find("fig2", app + "-CDP");
        if (!gpu || !cdp)
            continue;
        const double cpu_s = gpu->cpuSeconds;
        table.addRow({app, core::Table::num(cpu_s, 4),
                      core::Table::num(gpu->gpuSeconds, 4),
                      core::Table::num(cdp->gpuSeconds, 4),
                      core::Table::num(cpu_s / gpu->gpuSeconds, 1) +
                          "x",
                      core::Table::num(cpu_s / cdp->gpuSeconds, 1) +
                          "x",
                      core::Table::num(gpu->gpuSeconds /
                                           cdp->gpuSeconds, 2) + "x"});
    }
    bench::emitTable(
        "Figure 2: CPU vs GPU vs GPU-CDP (normalized to CPU)", table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
