/**
 * @file
 * Figure 11: performance when the CTAs per core (and the matching
 * thread/register/shared-memory budgets) scale to 25%, 50%, 150% and
 * 200% of the baseline (paper: mostly flat; PairHMM-CDP and NvB
 * benefit from more CTAs).
 */

#include "bench/common.hh"
#include "common/log.hh"

namespace
{

using namespace ggpu;

bench::Collector collector;

const std::vector<std::pair<std::string, double>> &
factors()
{
    static const std::vector<std::pair<std::string, double>> values{
        {"25%", 0.25}, {"50%", 0.5}, {"100%", 1.0}, {"150%", 1.5},
        {"200%", 2.0}};
    return values;
}

void
registerRuns()
{
    for (const auto &[label, factor] : factors()) {
        core::RunConfig cfg = bench::baseConfig();
        cfg.system.gpu.scaleCtaResources(factor);
        bench::addSuite(collector, label, cfg, true);
    }
}

void
printFigure()
{
    std::vector<std::string> headers{"App"};
    for (const auto &[label, factor] : factors())
        headers.push_back(label);
    core::Table table(headers);

    for (const auto &label : bench::suiteLabels(true)) {
        const auto *base = collector.find("100%", label);
        if (!base) {
            warn("fig11: no baseline (100%) record for ", label,
                 "; emitting placeholder row");
        }
        std::vector<std::string> row{label};
        for (const auto &[cfg_label, factor] : factors()) {
            const auto *record = collector.find(cfg_label, label);
            row.push_back(base && record
                              ? core::Table::num(
                                    core::speedupVs(*base, *record), 3)
                              : "-");
        }
        table.addRow(row);
    }
    bench::emitTable(
        "Figure 11: speedup vs CTA/core scaling (1.0 = baseline)",
        table);
}

} // namespace

GGPU_BENCH_MAIN(registerRuns, printFigure)
