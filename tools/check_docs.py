#!/usr/bin/env python3
"""Documentation link/reference checker (stdlib only).

Walks every git-tracked Markdown file and fails (exit 1) on:

  * relative Markdown links whose target file does not exist
    (fragments are stripped; http(s)/mailto links are skipped);
  * inline-code repo paths (`src/...`, `docs/...`, `tests/...`,
    `bench/...`, `examples/...`, `tools/...`) that name a missing
    file or directory — an extensionless reference like
    `src/sim/check_hooks` is accepted when files with that stem
    exist;
  * inline-code build-target tokens (`ggpu_*` / `bench_*`, no dots)
    that are not declared by any add_executable/add_library in the
    repo's CMakeLists.txt files;
  * GGPU_* environment variables referenced as string literals in
    src/, bench/ or tools/ sources but not documented in
    docs/CONFIGURATION.md.

Fenced code blocks are ignored entirely; only prose and inline code
are checked. Run from anywhere inside the repo:

    python3 tools/check_docs.py
"""

import glob
import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_RE = re.compile(r"`([^`\n]+)`")
FENCE_RE = re.compile(r"^\s*(```|~~~)")
TARGET_RE = re.compile(r"^(ggpu|bench)_[a-z0-9_]+$")
CMAKE_DECL_RE = re.compile(
    r"add_(?:executable|library)\s*\(\s*([A-Za-z0-9_]+)")
# Targets declared by iterating a list variable, e.g.
#   set(GGPU_BENCHES bench_fig02_cpu_gpu ...)
#   foreach(bench ${GGPU_BENCHES}) add_executable(${bench} ...)
CMAKE_SET_RE = re.compile(r"set\s*\(\s*[A-Za-z0-9_]+([^)]*)\)",
                          re.DOTALL)
PATH_PREFIXES = ("src/", "docs/", "tests/", "bench/", "examples/",
                 "tools/")
ENV_VAR_RE = re.compile(r'"(GGPU_[A-Z0-9_]+)"')
ENV_SOURCE_DIRS = ("src", "bench", "tools")
CONFIG_DOC = os.path.join("docs", "CONFIGURATION.md")


def repo_root():
    out = subprocess.run(["git", "rev-parse", "--show-toplevel"],
                         capture_output=True, text=True, check=True)
    return out.stdout.strip()


def tracked_markdown(root):
    out = subprocess.run(["git", "ls-files", "*.md", "**/*.md"],
                         cwd=root, capture_output=True, text=True,
                         check=True)
    return sorted(set(p for p in out.stdout.splitlines() if p))


def cmake_targets(root):
    targets = set()
    for path in glob.glob(os.path.join(root, "**", "CMakeLists.txt"),
                          recursive=True):
        rel = os.path.relpath(path, root)
        if rel.startswith(("build", ".git")):
            continue
        with open(path, encoding="utf-8") as f:
            text = f.read()
        targets.update(CMAKE_DECL_RE.findall(text))
        for body in CMAKE_SET_RE.findall(text):
            targets.update(t for t in body.split()
                           if TARGET_RE.match(t))
    return targets


def prose_lines(text):
    """Yield (line_number, line) outside fenced code blocks."""
    fenced = False
    for number, line in enumerate(text.splitlines(), start=1):
        if FENCE_RE.match(line):
            fenced = not fenced
            continue
        if not fenced:
            yield number, line


def path_exists(root, rel):
    """The reference resolves to a file, a directory, or (for
    extensionless module references) any file with that stem."""
    full = os.path.join(root, rel.rstrip("/"))
    if os.path.exists(full):
        return True
    if not os.path.splitext(full)[1]:
        return bool(glob.glob(full + ".*"))
    return False


def check_file(root, md, targets, errors):
    directory = os.path.dirname(os.path.join(root, md))
    with open(os.path.join(root, md), encoding="utf-8") as f:
        text = f.read()

    for number, line in prose_lines(text):
        for link in LINK_RE.findall(line):
            if link.startswith(("http://", "https://", "mailto:")):
                continue
            rel = link.split("#", 1)[0]
            if not rel:  # pure fragment: same-file anchor
                continue
            if not os.path.exists(os.path.join(directory, rel)):
                errors.append(f"{md}:{number}: broken link '{link}'")

        for code in CODE_RE.findall(line):
            token = code.strip()
            if any(ch in token for ch in "<>*{}$ "):
                continue  # placeholder or command, not a reference
            if token.startswith(PATH_PREFIXES) and "/" in token:
                # Allow `path/file.cc:123` line references.
                bare = re.sub(r":\d+$", "", token)
                if not path_exists(root, bare):
                    errors.append(
                        f"{md}:{number}: path '{token}' not in repo")
            elif TARGET_RE.match(token):
                if token not in targets:
                    errors.append(
                        f"{md}:{number}: unknown build target "
                        f"'{token}'")


def check_env_vars(root, errors):
    """Every GGPU_* string literal in the sources must appear in
    docs/CONFIGURATION.md — the configuration reference promises to
    cover every runtime knob."""
    out = subprocess.run(["git", "ls-files"] +
                         [f"{d}/*" for d in ENV_SOURCE_DIRS],
                         cwd=root, capture_output=True, text=True,
                         check=True)
    referenced = {}  # var -> first "file:line" reference
    for rel in out.stdout.splitlines():
        if not rel.endswith((".cc", ".hh", ".h", ".py", ".sh")):
            continue
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            for number, line in enumerate(f, start=1):
                for var in ENV_VAR_RE.findall(line):
                    referenced.setdefault(var, f"{rel}:{number}")

    with open(os.path.join(root, CONFIG_DOC), encoding="utf-8") as f:
        documented = set(re.findall(r"GGPU_[A-Z0-9_]+", f.read()))

    for var in sorted(referenced):
        if var not in documented:
            errors.append(
                f"{referenced[var]}: env var '{var}' is not "
                f"documented in {CONFIG_DOC}")


def main():
    root = repo_root()
    targets = cmake_targets(root)
    if not targets:
        print("check_docs: no CMake targets found", file=sys.stderr)
        return 1
    files = tracked_markdown(root)
    if not files:
        print("check_docs: no tracked Markdown files", file=sys.stderr)
        return 1

    errors = []
    for md in files:
        check_file(root, md, targets, errors)
    check_env_vars(root, errors)

    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print(f"check_docs: {len(errors)} error(s) across "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"check_docs: {len(files)} Markdown file(s) OK "
          f"({len(targets)} known build targets)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
