/**
 * @file
 * Sweep-grid model for `ggpu_sweep`: a SweepSpec names the axes (apps,
 * CDP variants, timing-config values), expandPoints() flattens its
 * cross product into an ordered point list, and every SweepPoint knows
 * its RunConfig, its stable identity key, and its JSON form. The point
 * order is deterministic, so a resumed sweep sees exactly the point
 * list the original invocation journaled against.
 */

#ifndef GGPU_TOOLS_SWEEP_POINTS_HH
#define GGPU_TOOLS_SWEEP_POINTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/json.hh"
#include "core/suite.hh"

namespace ggpu::tools
{

namespace json = core::json;

/** One (app, variant, timing-config) cell of the sweep grid. */
struct SweepPoint
{
    std::string app;
    bool cdp = false;

    // Emission-affecting inputs (part of the trace-cache key).
    std::string scale = "tiny";  //!< tiny / small / medium
    std::uint64_t seed = 0x5eedu;

    // Timing-only axes.
    std::uint32_t lineBytes = 128;
    std::uint32_t l1SizeBytes = 128 * 1024;
    std::uint32_t l2SizeBytes = 4 * 1024 * 1024;
    std::string warpSched = "lrr";    //!< lrr / gto / oldest / twolevel
    std::string memSched = "frfcfs";  //!< frfcfs / fifo / ooo128
    std::string topology = "xbar";    //!< xbar / mesh / fattree / butterfly
    int threads = 1;                  //!< Engine lanes (never changes results)

    /** Sweep-config label ("line=128,l1=...,ws=lrr,..."), the
     *  per-run "config" field in the merged artifact. */
    std::string label() const;

    /** Full identity ("<app>|cdp=..|" + label()): one line of
     *  points.list, and the basis of result filenames. */
    std::string key() const;

    /** The RunConfig this point executes under (fatal on a name this
     *  grid vocabulary does not know). */
    core::RunConfig toRunConfig() const;

    json::Value toJson() const;
    static SweepPoint fromJson(const json::Value &value);

    bool operator==(const SweepPoint &other) const = default;
};

/** The user-facing grid: every combination is one SweepPoint. */
struct SweepSpec
{
    std::vector<std::string> apps;  //!< Empty = full Table III suite
    std::string cdpMode = "both";   //!< base / cdp / both
    std::string scale = "tiny";
    std::uint64_t seed = 0x5eedu;
    int threads = 1;
    std::vector<std::uint32_t> lineBytes{128};
    std::vector<std::uint32_t> l1SizeBytes{128 * 1024};
    std::vector<std::uint32_t> l2SizeBytes{4 * 1024 * 1024};
    std::vector<std::string> warpSched{"lrr"};
    std::vector<std::string> memSched{"frfcfs"};
    std::vector<std::string> topology{"xbar"};

    json::Value toJson() const;
    static SweepSpec fromJson(const json::Value &value);
};

/**
 * Flatten @p spec into its ordered point list: apps outermost (suite
 * order), then variant, then each timing axis — a stable order every
 * invocation of the same spec reproduces.
 */
std::vector<SweepPoint> expandPoints(const SweepSpec &spec);

/** InputScale named by @p name (fatal on unknown). */
kernels::InputScale scaleFromName(const std::string &name);

} // namespace ggpu::tools

#endif // GGPU_TOOLS_SWEEP_POINTS_HH
