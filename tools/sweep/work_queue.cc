#include "work_queue.hh"

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace ggpu::tools
{

namespace
{

/** RAII exclusive flock (same idiom as the trace store's per-key
 *  lock); every queue operation runs entirely under it. */
class QueueLock
{
  public:
    explicit QueueLock(const std::string &path)
        : fd_(::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644))
    {
        if (fd_ < 0)
            fatal("sweep-queue: cannot open lock file ", path);
        while (::flock(fd_, LOCK_EX) != 0 && errno == EINTR) {}
    }

    ~QueueLock()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    QueueLock(const QueueLock &) = delete;
    QueueLock &operator=(const QueueLock &) = delete;

  private:
    int fd_;
};

/** kill(0) liveness: does the pid name any current process? */
bool
pidLive(pid_t pid)
{
    return ::kill(pid, 0) == 0 || errno == EPERM;
}

/** This machine's name, cached (claim tokens embed it). */
const std::string &
localHostname()
{
    static const std::string host = [] {
        char buf[256] = {};
        if (::gethostname(buf, sizeof(buf) - 1) != 0)
            return std::string("localhost");
        return std::string(buf);
    }();
    return host;
}

/**
 * Start time of @p pid in clock ticks since boot, from field 22 of
 * /proc/<pid>/stat; 0 when unreadable. Parsed from the last ')' —
 * the comm field may itself contain spaces and parentheses.
 */
unsigned long long
procStartTime(pid_t pid)
{
    std::ifstream in("/proc/" + std::to_string(pid) + "/stat");
    if (!in)
        return 0;
    std::string stat;
    std::getline(in, stat);
    const std::size_t close = stat.rfind(')');
    if (close == std::string::npos)
        return 0;
    // Fields 3..: state ppid pgrp session tty_nr tpgid flags minflt
    // cminflt majflt cmajflt utime stime cutime cstime priority nice
    // num_threads itrealvalue starttime -> the 20th token after comm.
    std::istringstream rest(stat.substr(close + 1));
    std::string token;
    for (int field = 3; field <= 22; ++field)
        if (!(rest >> token))
            return 0;
    try {
        return std::stoull(token);
    } catch (...) {
        return 0;
    }
}

} // namespace

std::string
WorkQueue::claimToken(pid_t pid)
{
    std::ostringstream os;
    os << localHostname() << ":" << pid << ":" << procStartTime(pid);
    return os.str();
}

bool
WorkQueue::tokenAlive(const std::string &token)
{
    const std::size_t last = token.rfind(':');
    if (last == std::string::npos) {
        // Legacy bare-pid claim line: pid liveness is all we have.
        try {
            return pidLive(pid_t(std::stoll(token)));
        } catch (...) {
            return false;
        }
    }
    const std::size_t mid =
        last > 0 ? token.rfind(':', last - 1) : std::string::npos;
    if (mid == std::string::npos)
        return true;  // Malformed: never steal what we can't judge.
    long long pid = 0;
    unsigned long long start = 0;
    try {
        pid = std::stoll(token.substr(mid + 1, last - mid - 1));
        start = std::stoull(token.substr(last + 1));
    } catch (...) {
        return true;
    }
    if (token.compare(0, mid, localHostname()) != 0)
        return true;  // Remote worker: unprobeable, count as live.
    if (!pidLive(pid_t(pid)))
        return false;
    if (start != 0) {
        // The pid exists, but is it still the claimant? A different
        // start time means the pid was recycled by another process.
        const unsigned long long current = procStartTime(pid_t(pid));
        if (current != 0 && current != start)
            return false;
    }
    return true;
}

WorkQueue::WorkQueue(std::string dir, std::size_t num_points,
                     int max_attempts)
    : dir_(std::move(dir)),
      journalPath_(dir_ + "/journal.log"),
      lockPath_(dir_ + "/queue.lock"),
      maxAttempts_(max_attempts),
      states_(num_points),
      liveProbe_(&WorkQueue::tokenAlive)
{
    if (max_attempts < 1)
        fatal("sweep-queue: max_attempts must be >= 1");
}

void
WorkQueue::setLiveProbe(std::function<bool(const std::string &)> probe)
{
    liveProbe_ = std::move(probe);
}

void
WorkQueue::reload()
{
    states_.assign(states_.size(), PointState{});
    std::ifstream in(journalPath_);
    if (!in)
        return;  // No journal yet: everything pending.
    std::string line;
    while (std::getline(in, line)) {
        // A writer that died mid-append leaves a torn final line; it
        // (and any other malformed line) parses short and is skipped.
        std::istringstream fields(line);
        std::string verb;
        std::size_t index = 0;
        std::string token;
        if (!(fields >> verb >> index >> token))
            continue;
        if (index >= states_.size())
            continue;
        PointState &state = states_[index];
        if (verb == "claim") {
            ++state.attempts;
            state.claimedBy = token;
        } else if (verb == "done") {
            state.done = true;
            state.claimedBy.clear();
        } else if (verb == "fail") {
            ++state.failures;
            state.claimedBy.clear();
        }
    }
}

void
WorkQueue::append(const std::string &line)
{
    const int fd = ::open(journalPath_.c_str(),
                          O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC,
                          0644);
    if (fd < 0)
        fatal("sweep-queue: cannot open journal ", journalPath_);
    const std::string record = line + "\n";
    const ssize_t wrote = ::write(fd, record.data(), record.size());
    // One fsync per event: completion must be durable before the
    // worker moves on, or a crash could re-run a finished point.
    ::fsync(fd);
    ::close(fd);
    if (wrote != ssize_t(record.size()))
        fatal("sweep-queue: short journal append to ", journalPath_);
}

bool
WorkQueue::runnable(const PointState &state) const
{
    if (state.done || state.attempts >= maxAttempts_)
        return false;
    return state.claimedBy.empty() || !liveProbe_(state.claimedBy);
}

ClaimResult
WorkQueue::claim(pid_t self, std::size_t &index, int &prior_attempts)
{
    QueueLock lock(lockPath_);
    reload();
    bool anyOpen = false;
    for (std::size_t i = 0; i < states_.size(); ++i) {
        const PointState &state = states_[i];
        if (state.done)
            continue;
        if (runnable(state)) {
            index = i;
            prior_attempts = state.attempts;
            const std::string token = claimToken(self);
            std::ostringstream os;
            os << "claim " << i << " " << token;
            append(os.str());
            states_[i].claimedBy = token;
            ++states_[i].attempts;
            return ClaimResult::Claimed;
        }
        // Not runnable but not done: either live-claimed (may yet
        // fail back onto the queue) or out of attempts (dead).
        if (state.attempts < maxAttempts_ || !state.claimedBy.empty())
            anyOpen = true;
    }
    return anyOpen ? ClaimResult::WaitAndRetry : ClaimResult::NothingLeft;
}

void
WorkQueue::markDone(std::size_t index, pid_t self)
{
    QueueLock lock(lockPath_);
    std::ostringstream os;
    os << "done " << index << " " << claimToken(self);
    append(os.str());
    reload();
}

void
WorkQueue::markFailed(std::size_t index, pid_t self,
                      const std::string &reason)
{
    QueueLock lock(lockPath_);
    std::ostringstream os;
    // Newlines would corrupt the one-event-per-line grammar.
    std::string flat = reason;
    for (char &c : flat)
        if (c == '\n' || c == '\r')
            c = ' ';
    os << "fail " << index << " " << claimToken(self) << " " << flat;
    append(os.str());
    reload();
}

std::size_t
WorkQueue::doneCount() const
{
    std::size_t count = 0;
    for (const PointState &state : states_)
        count += state.done ? 1 : 0;
    return count;
}

std::vector<std::size_t>
WorkQueue::exhaustedPoints() const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < states_.size(); ++i) {
        const PointState &state = states_[i];
        if (!state.done && state.attempts >= maxAttempts_ &&
            (state.claimedBy.empty() || !liveProbe_(state.claimedBy)))
            out.push_back(i);
    }
    return out;
}

} // namespace ggpu::tools
