#include "work_queue.hh"

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace ggpu::tools
{

namespace
{

/** RAII exclusive flock (same idiom as the trace store's per-key
 *  lock); every queue operation runs entirely under it. */
class QueueLock
{
  public:
    explicit QueueLock(const std::string &path)
        : fd_(::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644))
    {
        if (fd_ < 0)
            fatal("sweep-queue: cannot open lock file ", path);
        while (::flock(fd_, LOCK_EX) != 0 && errno == EINTR) {}
    }

    ~QueueLock()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    QueueLock(const QueueLock &) = delete;
    QueueLock &operator=(const QueueLock &) = delete;

  private:
    int fd_;
};

} // namespace

WorkQueue::WorkQueue(std::string dir, std::size_t num_points,
                     int max_attempts)
    : dir_(std::move(dir)),
      journalPath_(dir_ + "/journal.log"),
      lockPath_(dir_ + "/queue.lock"),
      maxAttempts_(max_attempts),
      states_(num_points),
      liveProbe_([](pid_t pid) {
          return ::kill(pid, 0) == 0 || errno == EPERM;
      })
{
    if (max_attempts < 1)
        fatal("sweep-queue: max_attempts must be >= 1");
}

void
WorkQueue::setLiveProbe(std::function<bool(pid_t)> probe)
{
    liveProbe_ = std::move(probe);
}

void
WorkQueue::reload()
{
    states_.assign(states_.size(), PointState{});
    std::ifstream in(journalPath_);
    if (!in)
        return;  // No journal yet: everything pending.
    std::string line;
    while (std::getline(in, line)) {
        // A writer that died mid-append leaves a torn final line; it
        // (and any other malformed line) parses short and is skipped.
        std::istringstream fields(line);
        std::string verb;
        std::size_t index = 0;
        long long pid = 0;
        if (!(fields >> verb >> index >> pid))
            continue;
        if (index >= states_.size())
            continue;
        PointState &state = states_[index];
        if (verb == "claim") {
            ++state.attempts;
            state.claimedBy = pid_t(pid);
        } else if (verb == "done") {
            state.done = true;
            state.claimedBy = 0;
        } else if (verb == "fail") {
            ++state.failures;
            state.claimedBy = 0;
        }
    }
}

void
WorkQueue::append(const std::string &line)
{
    const int fd = ::open(journalPath_.c_str(),
                          O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC,
                          0644);
    if (fd < 0)
        fatal("sweep-queue: cannot open journal ", journalPath_);
    const std::string record = line + "\n";
    const ssize_t wrote = ::write(fd, record.data(), record.size());
    // One fsync per event: completion must be durable before the
    // worker moves on, or a crash could re-run a finished point.
    ::fsync(fd);
    ::close(fd);
    if (wrote != ssize_t(record.size()))
        fatal("sweep-queue: short journal append to ", journalPath_);
}

bool
WorkQueue::runnable(const PointState &state) const
{
    if (state.done || state.attempts >= maxAttempts_)
        return false;
    return state.claimedBy == 0 || !liveProbe_(state.claimedBy);
}

ClaimResult
WorkQueue::claim(pid_t self, std::size_t &index, int &prior_attempts)
{
    QueueLock lock(lockPath_);
    reload();
    bool anyOpen = false;
    for (std::size_t i = 0; i < states_.size(); ++i) {
        const PointState &state = states_[i];
        if (state.done)
            continue;
        if (runnable(state)) {
            index = i;
            prior_attempts = state.attempts;
            std::ostringstream os;
            os << "claim " << i << " " << self;
            append(os.str());
            states_[i].claimedBy = self;
            ++states_[i].attempts;
            return ClaimResult::Claimed;
        }
        // Not runnable but not done: either live-claimed (may yet
        // fail back onto the queue) or out of attempts (dead).
        if (state.attempts < maxAttempts_ || state.claimedBy != 0)
            anyOpen = true;
    }
    return anyOpen ? ClaimResult::WaitAndRetry : ClaimResult::NothingLeft;
}

void
WorkQueue::markDone(std::size_t index, pid_t self)
{
    QueueLock lock(lockPath_);
    std::ostringstream os;
    os << "done " << index << " " << self;
    append(os.str());
    reload();
}

void
WorkQueue::markFailed(std::size_t index, pid_t self,
                      const std::string &reason)
{
    QueueLock lock(lockPath_);
    std::ostringstream os;
    // Newlines would corrupt the one-event-per-line grammar.
    std::string flat = reason;
    for (char &c : flat)
        if (c == '\n' || c == '\r')
            c = ' ';
    os << "fail " << index << " " << self << " " << flat;
    append(os.str());
    reload();
}

std::size_t
WorkQueue::doneCount() const
{
    std::size_t count = 0;
    for (const PointState &state : states_)
        count += state.done ? 1 : 0;
    return count;
}

std::vector<std::size_t>
WorkQueue::exhaustedPoints() const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < states_.size(); ++i) {
        const PointState &state = states_[i];
        if (!state.done && state.attempts >= maxAttempts_ &&
            (state.claimedBy == 0 || !liveProbe_(state.claimedBy)))
            out.push_back(i);
    }
    return out;
}

} // namespace ggpu::tools
