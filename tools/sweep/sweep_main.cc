/**
 * @file
 * `ggpu_sweep` — multi-process sweep orchestrator. One invocation
 * expands a config grid (or the default full-suite sweep) into an
 * ordered point list, fans the points across worker processes through
 * the journaled work queue, and merges the per-point results into
 * `json/BENCH_sweep.json` + `BENCH_SUMMARY.json` via the same
 * validate/merge path `ggpu_metrics_tool merge` uses.
 *
 * The sweep directory is the whole state: `spec.json` (the expanded
 * grid, checked on resume), `points.list`, `journal.log` +
 * `queue.lock` (the work queue), `results/POINT_*.json` (one
 * atomically written artifact per completed point), `workers/`
 * (pid + per-worker store counters), `trace_cache/` (the default
 * `GGPU_TRACE_CACHE` directory, so every worker of every invocation
 * pays emission once per key). Killing any process and re-running the
 * identical command resumes: completed points are never re-run, stale
 * claims are requeued, failed points retry once with a backoff.
 *
 * Exit status: 0 all points done and merged; 3 incomplete (re-run to
 * resume); 1 points exhausted their attempts or hard error.
 */

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "core/metrics.hh"
#include "core/metrics_merge.hh"
#include "core/trace_store.hh"
#include "sim/trace_serialize.hh"
#include "sweep_points.hh"
#include "work_queue.hh"

namespace
{

namespace fs = std::filesystem;
using ggpu::core::json::Value;
using ggpu::tools::ClaimResult;
using ggpu::tools::SweepPoint;
using ggpu::tools::SweepSpec;
using ggpu::tools::WorkQueue;

struct Cli
{
    bool workerMode = false;
    bool cacheGc = false;
    int workerId = 0;
    std::string dir;
    int workers = 1;
    int backoffMs = 200;
    int staggerMs = 0;  //!< Test hook: worker i sleeps i * stagger ms
    SweepSpec spec;
};

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream is(arg);
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

std::vector<std::uint32_t>
splitU32List(const std::string &arg)
{
    std::vector<std::uint32_t> out;
    for (const auto &item : splitList(arg))
        out.push_back(std::uint32_t(std::stoull(item)));
    return out;
}

int
usage()
{
    std::cerr
        << "usage: ggpu_sweep --dir <dir> [options]\n"
        << "\n"
        << "grid options (defaults: full suite, both variants, one\n"
        << "baseline timing config):\n"
        << "  --apps SW,NW,...          apps to sweep (Table III codes)\n"
        << "  --cdp base|cdp|both       launch variants\n"
        << "  --scale tiny|small|medium input scale\n"
        << "  --seed N                  dataset seed\n"
        << "  --threads N               engine lanes per point\n"
        << "  --axis-line-bytes A,B     coalescing line sizes\n"
        << "  --axis-l1 A,B             L1 sizes (bytes)\n"
        << "  --axis-l2 A,B             L2 sizes (bytes)\n"
        << "  --axis-warp-sched A,B     lrr/gto/oldest/twolevel\n"
        << "  --axis-mem-sched A,B      frfcfs/fifo/ooo128\n"
        << "  --axis-topology A,B       xbar/mesh/fattree/butterfly\n"
        << "\n"
        << "execution options:\n"
        << "  --workers N               worker processes (default 1)\n"
        << "  --backoff-ms N            retry backoff (default 200)\n"
        << "  --stagger-ms N            delay worker i by i*N ms\n"
        << "\n"
        << "maintenance:\n"
        << "  --cache-gc                shrink the sweep's trace cache\n"
        << "                            to GGPU_TRACE_CACHE_MAX_BYTES\n"
        << "                            (report size only when unset)\n";
    return 2;
}

bool
parseCli(const std::vector<std::string> &args, Cli &cli)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                ggpu::fatal("", arg, " needs a value");
            return args[++i];
        };
        if (arg == "--worker")
            cli.workerMode = true;
        else if (arg == "--cache-gc")
            cli.cacheGc = true;
        else if (arg == "--id")
            cli.workerId = std::stoi(next());
        else if (arg == "--dir")
            cli.dir = next();
        else if (arg == "--workers")
            cli.workers = std::stoi(next());
        else if (arg == "--backoff-ms")
            cli.backoffMs = std::stoi(next());
        else if (arg == "--stagger-ms")
            cli.staggerMs = std::stoi(next());
        else if (arg == "--apps")
            cli.spec.apps = splitList(next());
        else if (arg == "--cdp")
            cli.spec.cdpMode = next();
        else if (arg == "--scale")
            cli.spec.scale = next();
        else if (arg == "--seed")
            cli.spec.seed = std::stoull(next());
        else if (arg == "--threads")
            cli.spec.threads = std::stoi(next());
        else if (arg == "--axis-line-bytes")
            cli.spec.lineBytes = splitU32List(next());
        else if (arg == "--axis-l1")
            cli.spec.l1SizeBytes = splitU32List(next());
        else if (arg == "--axis-l2")
            cli.spec.l2SizeBytes = splitU32List(next());
        else if (arg == "--axis-warp-sched")
            cli.spec.warpSched = splitList(next());
        else if (arg == "--axis-mem-sched")
            cli.spec.memSched = splitList(next());
        else if (arg == "--axis-topology")
            cli.spec.topology = splitList(next());
        else
            return false;
    }
    if (cli.dir.empty())
        return false;
    if (cli.workers < 1)
        ggpu::fatal("--workers must be >= 1");
    return true;
}

std::string
resultPath(const std::string &dir, std::size_t index,
           const SweepPoint &point)
{
    const std::string key = point.key();
    const std::uint64_t hash = ggpu::sim::fnv1a64(key.data(), key.size());
    char name[64];
    std::snprintf(name, sizeof(name), "POINT_%05zu_%016llx.json", index,
                  static_cast<unsigned long long>(hash));
    return dir + "/results/" + name;
}

/** Default GGPU_TRACE_CACHE to the sweep's own cache directory so
 *  every process of every invocation shares one emission store. */
void
defaultTraceCache(const std::string &dir)
{
    const char *env = std::getenv("GGPU_TRACE_CACHE");
    if (env == nullptr || *env == '\0')
        ::setenv("GGPU_TRACE_CACHE", (dir + "/trace_cache").c_str(), 1);
}

std::size_t
distinctTraceKeys(const std::vector<SweepPoint> &points)
{
    std::set<std::string> keys;
    for (const auto &point : points) {
        const ggpu::core::RunConfig config = point.toRunConfig();
        keys.insert(ggpu::core::traceStoreKey(
            point.app, config.options, config.system.gpu.lineBytes));
    }
    return keys.size();
}

// ---- Worker --------------------------------------------------------

int
runWorker(const Cli &cli)
{
    if (cli.staggerMs > 0)
        ::usleep(useconds_t(cli.workerId) * useconds_t(cli.staggerMs) *
                 1000u);
    defaultTraceCache(cli.dir);

    const Value spec_doc =
        ggpu::core::readJsonFile(cli.dir + "/spec.json");
    const SweepSpec spec = SweepSpec::fromJson(spec_doc);
    const std::vector<SweepPoint> points = ggpu::tools::expandPoints(spec);

    ggpu::core::TraceStore store;  // Disk layer via GGPU_TRACE_CACHE.
    WorkQueue queue(cli.dir, points.size());
    const pid_t self = ::getpid();
    std::uint64_t ran = 0;

    while (true) {
        std::size_t index = 0;
        int prior_attempts = 0;
        const ClaimResult claim = queue.claim(self, index, prior_attempts);
        if (claim == ClaimResult::NothingLeft)
            break;
        if (claim == ClaimResult::WaitAndRetry) {
            ::usleep(50 * 1000);
            continue;
        }
        if (prior_attempts > 0)
            ::usleep(useconds_t(cli.backoffMs) * 1000u);
        const SweepPoint &point = points[index];
        try {
            const ggpu::core::RunConfig config = point.toRunConfig();
            const ggpu::core::RunRecord record =
                ggpu::core::runAppCached(store, point.app, config);
            const Value run = ggpu::core::MetricsSink::runToJson(
                point.label(), record);
            // Result first, then the done record: a journaled point
            // always has its artifact on disk.
            ggpu::core::writeJsonFile(resultPath(cli.dir, index, point),
                                      run);
            queue.markDone(index, self);
            ++ran;
        } catch (const std::exception &e) {
            queue.markFailed(index, self, e.what());
        }
    }

    // Clean-exit stats: summed by the merge step to prove the sweep's
    // one-emission-per-key economics. A killed worker never writes
    // one, which only under-counts (never double-counts) emissions.
    Value stats = Value::object();
    stats.set("worker", cli.workerId);
    stats.set("pid", std::uint64_t(self));
    stats.set("points_run", ran);
    stats.set("trace_store", store.countersToJson());
    ggpu::core::writeJsonFile(cli.dir + "/workers/STATS_" +
                                  std::to_string(self) + ".json",
                              stats);
    return 0;
}

// ---- Orchestrator --------------------------------------------------

Value
sweepStats(const Cli &cli, const std::vector<SweepPoint> &points,
           WorkQueue &queue)
{
    queue.reload();
    std::uint64_t attempts = 0;
    for (const auto &state : queue.states())
        attempts += std::uint64_t(state.attempts);

    std::uint64_t emissions = 0, hits = 0, disk_hits = 0,
                  disk_stores = 0, corrupt = 0, workers = 0;
    for (const auto &entry :
         fs::directory_iterator(cli.dir + "/workers")) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("STATS_", 0) != 0)
            continue;
        const Value doc = ggpu::core::readJsonFile(entry.path().string());
        const Value &counters = doc.at("trace_store");
        emissions += std::uint64_t(counters.at("emissions").asNumber());
        hits += std::uint64_t(counters.at("hits").asNumber());
        disk_hits += std::uint64_t(counters.at("disk_hits").asNumber());
        disk_stores +=
            std::uint64_t(counters.at("disk_stores").asNumber());
        corrupt +=
            std::uint64_t(counters.at("corrupt_rejects").asNumber());
        ++workers;
    }

    Value counters = Value::object();
    counters.set("emissions", emissions);
    counters.set("hits", hits);
    counters.set("disk_hits", disk_hits);
    counters.set("disk_stores", disk_stores);
    counters.set("corrupt_rejects", corrupt);

    Value stats = Value::object();
    stats.set("points", std::uint64_t(points.size()));
    stats.set("done", std::uint64_t(queue.doneCount()));
    stats.set("attempts", attempts);
    stats.set("distinct_trace_keys",
              std::uint64_t(distinctTraceKeys(points)));
    stats.set("worker_stats_files", workers);
    stats.set("trace_store", std::move(counters));
    return stats;
}

void
mergeResults(const Cli &cli, const SweepSpec &spec,
             const std::vector<SweepPoint> &points, WorkQueue &queue)
{
    // The canonical artifact: every point's run in point order. Only
    // deterministic data goes in, so a resumed sweep is byte-identical
    // to an uninterrupted one over the same trace cache.
    Value doc = Value::object();
    doc.set("schema", ggpu::core::metricsSchema);
    doc.set("figure", "sweep");

    Value provenance = Value::object();
    provenance.set("suite", "genomics-gpu");
    provenance.set("scale", spec.scale);
    provenance.set("threads", spec.threads);
    Value configs = Value::array();
    std::vector<std::string> seen;
    for (const auto &point : points) {
        const std::string label = point.label();
        bool dup = false;
        for (const auto &s : seen)
            dup = dup || s == label;
        if (!dup) {
            seen.push_back(label);
            configs.push(label);
        }
    }
    provenance.set("configs", std::move(configs));
    doc.set("provenance", std::move(provenance));
    doc.set("series", Value::array());

    Value runs = Value::array();
    for (std::size_t i = 0; i < points.size(); ++i)
        runs.push(
            ggpu::core::readJsonFile(resultPath(cli.dir, i, points[i])));
    doc.set("runs", std::move(runs));
    ggpu::core::writeJsonFile(cli.dir + "/json/BENCH_sweep.json", doc);

    // Summary through the shared metrics_tool merge path (validates
    // every artifact), plus the sweep's own bookkeeping section.
    Value summary = ggpu::core::mergeBenchArtifacts(cli.dir + "/json");
    Value stats = sweepStats(cli, points, queue);
    ggpu::core::writeJsonFile(cli.dir + "/SWEEP_STATS.json", stats);
    summary.set("sweep", std::move(stats));
    ggpu::core::writeJsonFile(cli.dir + "/BENCH_SUMMARY.json", summary);
}

int
runOrchestrator(const Cli &cli)
{
    fs::create_directories(cli.dir);
    fs::create_directories(cli.dir + "/results");
    fs::create_directories(cli.dir + "/json");
    fs::create_directories(cli.dir + "/workers");
    defaultTraceCache(cli.dir);

    std::vector<SweepPoint> points = ggpu::tools::expandPoints(cli.spec);
    const std::string spec_path = cli.dir + "/spec.json";
    if (fs::exists(spec_path)) {
        // Resume: the journal indexes the original point list, so the
        // grid must be identical — a silent re-expansion mismatch
        // would attribute results to the wrong points.
        const SweepSpec stored =
            SweepSpec::fromJson(ggpu::core::readJsonFile(spec_path));
        const std::vector<SweepPoint> stored_points =
            ggpu::tools::expandPoints(stored);
        if (stored_points != points)
            ggpu::fatal("", cli.dir,
                        " holds a different sweep (", stored_points.size(),
                        " points); use a fresh --dir or repeat the "
                        "original grid flags");
    } else {
        ggpu::core::writeJsonFile(spec_path, cli.spec.toJson());
        std::ostringstream list;
        for (std::size_t i = 0; i < points.size(); ++i)
            list << i << " " << points[i].key() << "\n";
        std::ofstream os(cli.dir + "/points.list");
        os << list.str();
        if (!os.flush())
            ggpu::fatal("cannot write points.list");
    }
    std::cout << "[sweep] " << points.size() << " points, "
              << distinctTraceKeys(points) << " trace keys, "
              << cli.workers << " worker(s), dir " << cli.dir << "\n";

    // Fan out: each worker is this binary re-exec'd in --worker mode,
    // coordinating purely through the sweep directory.
    char exe[4096];
    const ssize_t len =
        ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    if (len <= 0)
        ggpu::fatal("cannot resolve /proc/self/exe");
    exe[len] = '\0';

    std::vector<pid_t> children;
    for (int w = 0; w < cli.workers; ++w) {
        const pid_t pid = ::fork();
        if (pid < 0)
            ggpu::fatal("fork failed");
        if (pid == 0) {
            const std::string id = std::to_string(w);
            const std::string backoff = std::to_string(cli.backoffMs);
            const std::string stagger = std::to_string(cli.staggerMs);
            std::vector<char *> argv;
            auto arg = [&argv](const char *s) {
                argv.push_back(const_cast<char *>(s));
            };
            arg(exe);
            arg("--worker");
            arg("--dir");
            arg(cli.dir.c_str());
            arg("--id");
            arg(id.c_str());
            arg("--backoff-ms");
            arg(backoff.c_str());
            arg("--stagger-ms");
            arg(stagger.c_str());
            argv.push_back(nullptr);
            ::execv(exe, argv.data());
            std::cerr << "ggpu_sweep: execv failed\n";
            ::_exit(127);
        }
        children.push_back(pid);
        std::ofstream os(cli.dir + "/workers/worker_" +
                         std::to_string(w) + ".pid");
        os << pid << "\n";
    }

    for (pid_t pid : children) {
        int status = 0;
        while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
    }

    WorkQueue queue(cli.dir, points.size());
    queue.reload();
    const auto exhausted = queue.exhaustedPoints();
    if (!exhausted.empty()) {
        for (std::size_t index : exhausted)
            std::cerr << "[sweep] point " << index << " ("
                      << points[index].key()
                      << ") failed every attempt\n";
        return 1;
    }
    if (!queue.allDone()) {
        std::cerr << "[sweep] incomplete: " << queue.doneCount() << "/"
                  << points.size()
                  << " points done; re-run the same command to resume\n";
        return 3;
    }

    mergeResults(cli, cli.spec, points, queue);
    std::cout << "[sweep] complete: " << points.size()
              << " points merged into " << cli.dir
              << "/BENCH_SUMMARY.json\n";
    return 0;
}

int
runCacheGc(const Cli &cli)
{
    defaultTraceCache(cli.dir);
    const std::string cache = std::getenv("GGPU_TRACE_CACHE");
    const std::uint64_t budget = ggpu::core::traceCacheMaxBytes();
    const ggpu::core::TraceCacheGcStats stats =
        ggpu::core::traceCacheGc(cache, budget);
    std::cout << "[sweep] cache-gc " << cache << ": " << stats.scanned
              << " bundles, " << stats.bytesBefore << " -> "
              << stats.bytesAfter << " bytes (budget "
              << (budget > 0 ? std::to_string(budget) : std::string("none"))
              << "), evicted " << stats.evicted << ", kept "
              << stats.lockSkipped << " in-use\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    Cli cli;
    try {
        if (!parseCli(args, cli))
            return usage();
        if (cli.cacheGc)
            return runCacheGc(cli);
        return cli.workerMode ? runWorker(cli) : runOrchestrator(cli);
    } catch (const std::exception &e) {
        std::cerr << "ggpu_sweep: " << e.what() << "\n";
        return 1;
    }
}
