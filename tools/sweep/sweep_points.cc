#include "sweep_points.hh"

#include <sstream>

#include "common/log.hh"

namespace ggpu::tools
{

using json::Value;

namespace
{

WarpSchedPolicy
warpSchedFromName(const std::string &name)
{
    if (name == "lrr")
        return WarpSchedPolicy::Lrr;
    if (name == "gto")
        return WarpSchedPolicy::Gto;
    if (name == "oldest")
        return WarpSchedPolicy::Oldest;
    if (name == "twolevel")
        return WarpSchedPolicy::TwoLevel;
    fatal("sweep: unknown warp scheduler '", name,
          "' (lrr/gto/oldest/twolevel)");
}

MemSchedPolicy
memSchedFromName(const std::string &name)
{
    if (name == "frfcfs")
        return MemSchedPolicy::FrFcfs;
    if (name == "fifo")
        return MemSchedPolicy::Fifo;
    if (name == "ooo128")
        return MemSchedPolicy::OoO128;
    fatal("sweep: unknown memory scheduler '", name,
          "' (frfcfs/fifo/ooo128)");
}

NocTopology
topologyFromName(const std::string &name)
{
    if (name == "xbar")
        return NocTopology::Xbar;
    if (name == "mesh")
        return NocTopology::Mesh;
    if (name == "fattree")
        return NocTopology::FatTree;
    if (name == "butterfly")
        return NocTopology::Butterfly;
    fatal("sweep: unknown topology '", name,
          "' (xbar/mesh/fattree/butterfly)");
}

std::vector<std::string>
stringList(const Value &arr)
{
    std::vector<std::string> out;
    for (std::size_t i = 0; i < arr.size(); ++i)
        out.push_back(arr.at(i).asString());
    return out;
}

std::vector<std::uint32_t>
u32List(const Value &arr)
{
    std::vector<std::uint32_t> out;
    for (std::size_t i = 0; i < arr.size(); ++i)
        out.push_back(std::uint32_t(arr.at(i).asNumber()));
    return out;
}

Value
toArray(const std::vector<std::string> &list)
{
    Value arr = Value::array();
    for (const auto &s : list)
        arr.push(s);
    return arr;
}

Value
toArray(const std::vector<std::uint32_t> &list)
{
    Value arr = Value::array();
    for (std::uint32_t v : list)
        arr.push(std::uint64_t(v));
    return arr;
}

} // namespace

kernels::InputScale
scaleFromName(const std::string &name)
{
    if (name == "tiny")
        return kernels::InputScale::Tiny;
    if (name == "small")
        return kernels::InputScale::Small;
    if (name == "medium")
        return kernels::InputScale::Medium;
    fatal("sweep: unknown scale '", name, "' (tiny/small/medium)");
}

std::string
SweepPoint::label() const
{
    std::ostringstream os;
    os << "line=" << lineBytes << ",l1=" << l1SizeBytes
       << ",l2=" << l2SizeBytes << ",ws=" << warpSched
       << ",ms=" << memSched << ",noc=" << topology;
    return os.str();
}

std::string
SweepPoint::key() const
{
    std::ostringstream os;
    os << app << "|cdp=" << (cdp ? 1 : 0) << "|scale=" << scale
       << "|seed=" << seed << "|" << label();
    return os.str();
}

core::RunConfig
SweepPoint::toRunConfig() const
{
    core::RunConfig config;
    config.options.cdp = cdp;
    config.options.scale = scaleFromName(scale);
    config.options.seed = seed;
    config.system.gpu.lineBytes = lineBytes;
    config.system.gpu.l1SizeBytes = l1SizeBytes;
    config.system.gpu.l2SizeBytes = l2SizeBytes;
    config.system.gpu.warpSched = warpSchedFromName(warpSched);
    config.system.gpu.memSched = memSchedFromName(memSched);
    config.system.noc.topology = topologyFromName(topology);
    config.system.sim.threads = threads;
    config.system.validate();
    return config;
}

Value
SweepPoint::toJson() const
{
    Value obj = Value::object();
    obj.set("app", app);
    obj.set("cdp", cdp);
    obj.set("scale", scale);
    obj.set("seed", seed);
    obj.set("line_bytes", std::uint64_t(lineBytes));
    obj.set("l1_bytes", std::uint64_t(l1SizeBytes));
    obj.set("l2_bytes", std::uint64_t(l2SizeBytes));
    obj.set("warp_sched", warpSched);
    obj.set("mem_sched", memSched);
    obj.set("topology", topology);
    obj.set("threads", threads);
    return obj;
}

SweepPoint
SweepPoint::fromJson(const Value &value)
{
    SweepPoint point;
    point.app = value.at("app").asString();
    point.cdp = value.at("cdp").asBool();
    point.scale = value.at("scale").asString();
    point.seed = std::uint64_t(value.at("seed").asNumber());
    point.lineBytes = std::uint32_t(value.at("line_bytes").asNumber());
    point.l1SizeBytes = std::uint32_t(value.at("l1_bytes").asNumber());
    point.l2SizeBytes = std::uint32_t(value.at("l2_bytes").asNumber());
    point.warpSched = value.at("warp_sched").asString();
    point.memSched = value.at("mem_sched").asString();
    point.topology = value.at("topology").asString();
    point.threads = int(value.at("threads").asNumber());
    return point;
}

Value
SweepSpec::toJson() const
{
    Value obj = Value::object();
    obj.set("apps", toArray(apps));
    obj.set("cdp_mode", cdpMode);
    obj.set("scale", scale);
    obj.set("seed", seed);
    obj.set("threads", threads);
    obj.set("line_bytes", toArray(lineBytes));
    obj.set("l1_bytes", toArray(l1SizeBytes));
    obj.set("l2_bytes", toArray(l2SizeBytes));
    obj.set("warp_sched", toArray(warpSched));
    obj.set("mem_sched", toArray(memSched));
    obj.set("topology", toArray(topology));
    return obj;
}

SweepSpec
SweepSpec::fromJson(const Value &value)
{
    SweepSpec spec;
    spec.apps = stringList(value.at("apps"));
    spec.cdpMode = value.at("cdp_mode").asString();
    spec.scale = value.at("scale").asString();
    spec.seed = std::uint64_t(value.at("seed").asNumber());
    spec.threads = int(value.at("threads").asNumber());
    spec.lineBytes = u32List(value.at("line_bytes"));
    spec.l1SizeBytes = u32List(value.at("l1_bytes"));
    spec.l2SizeBytes = u32List(value.at("l2_bytes"));
    spec.warpSched = stringList(value.at("warp_sched"));
    spec.memSched = stringList(value.at("mem_sched"));
    spec.topology = stringList(value.at("topology"));
    return spec;
}

std::vector<SweepPoint>
expandPoints(const SweepSpec &spec)
{
    const std::vector<std::string> &apps =
        spec.apps.empty() ? core::appNames() : spec.apps;
    std::vector<bool> variants;
    if (spec.cdpMode == "base")
        variants = {false};
    else if (spec.cdpMode == "cdp")
        variants = {true};
    else if (spec.cdpMode == "both")
        variants = {false, true};
    else
        fatal("sweep: unknown cdp mode '", spec.cdpMode,
              "' (base/cdp/both)");

    // Validate every axis name once up front: a bad grid must die at
    // expansion, not hours in on the first point that uses it.
    (void)scaleFromName(spec.scale);
    for (const auto &name : spec.warpSched)
        (void)warpSchedFromName(name);
    for (const auto &name : spec.memSched)
        (void)memSchedFromName(name);
    for (const auto &name : spec.topology)
        (void)topologyFromName(name);
    for (const auto &app : apps)
        (void)core::makeApp(app);  // fatal on unknown abbreviation

    std::vector<SweepPoint> points;
    for (const auto &app : apps) {
        for (bool cdp : variants) {
            for (std::uint32_t line : spec.lineBytes)
                for (std::uint32_t l1 : spec.l1SizeBytes)
                    for (std::uint32_t l2 : spec.l2SizeBytes)
                        for (const auto &ws : spec.warpSched)
                            for (const auto &ms : spec.memSched)
                                for (const auto &noc : spec.topology) {
                                    SweepPoint point;
                                    point.app = app;
                                    point.cdp = cdp;
                                    point.scale = spec.scale;
                                    point.seed = spec.seed;
                                    point.lineBytes = line;
                                    point.l1SizeBytes = l1;
                                    point.l2SizeBytes = l2;
                                    point.warpSched = ws;
                                    point.memSched = ms;
                                    point.topology = noc;
                                    point.threads = spec.threads;
                                    points.push_back(std::move(point));
                                }
        }
    }
    return points;
}

} // namespace ggpu::tools
