/**
 * @file
 * Cross-process work queue for `ggpu_sweep`, in the spirit of
 * external-memory pipelines' atomic work queues: the shared state is a
 * plain append-only journal (`journal.log`) guarded by a `flock`ed
 * lock file, so any number of worker processes — across any number of
 * orchestrator invocations — agree on which points are claimed, done,
 * or failed. A killed worker leaves only a stale `claim` line; the
 * next claimant probes the recorded pid and requeues the point.
 *
 * Journal grammar (one event per line, appended under the lock):
 *
 *     claim <point> <host:pid:starttime>
 *     done <point> <host:pid:starttime>
 *     fail <point> <host:pid:starttime> <reason...>
 *
 * The claimant token pins the worker's identity across pid reuse: pid
 * alone is ambiguous (a crashed worker's pid can be recycled by an
 * unrelated live process, which would block its point forever), so
 * claims carry the hostname and the process start time from
 * /proc/<pid>/stat field 22 and a claim is only honoured while all
 * three still match a live process. Legacy bare-pid tokens parse and
 * keep the old pid-liveness semantics.
 *
 * A torn final line (the writer died mid-append) is ignored on
 * replay. Every mutation re-reads the journal first, so the in-memory
 * view is only a cache between operations.
 */

#ifndef GGPU_TOOLS_SWEEP_WORK_QUEUE_HH
#define GGPU_TOOLS_SWEEP_WORK_QUEUE_HH

#include <sys/types.h>

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace ggpu::tools
{

/** Replayed state of one point. */
struct PointState
{
    int attempts = 0;         //!< claim lines seen
    int failures = 0;         //!< fail lines seen
    std::string claimedBy;    //!< Claimant token of an open claim
    bool done = false;
};

/** Outcome of one claim() call. */
enum class ClaimResult
{
    Claimed,      //!< A point was claimed (index returned)
    WaitAndRetry, //!< Runnable work exists but is claimed by live pids
    NothingLeft   //!< Every point is done or out of attempts
};

class WorkQueue
{
  public:
    /**
     * @param dir         Sweep directory (journal.log / queue.lock live
     *                    here; created by the orchestrator).
     * @param num_points  Size of the point list the journal indexes.
     * @param max_attempts Claims allowed per point (2 = retry once).
     */
    WorkQueue(std::string dir, std::size_t num_points,
              int max_attempts = 2);

    /**
     * Atomically claim the first runnable point: not done, attempts
     * left, and no claim held by a live process. @p index receives the
     * claimed point and its prior attempt count (>0 means this is a
     * retry and the caller should back off first).
     */
    ClaimResult claim(pid_t self, std::size_t &index,
                      int &prior_attempts);

    /** Journal successful completion of @p index. */
    void markDone(std::size_t index, pid_t self);

    /** Journal a failed attempt of @p index (releases the claim). */
    void markFailed(std::size_t index, pid_t self,
                    const std::string &reason);

    /** Re-read the journal into the cached view. */
    void reload();

    // Views over the cached state (call reload() first for freshness).
    const std::vector<PointState> &states() const { return states_; }
    std::size_t doneCount() const;
    bool allDone() const { return doneCount() == states_.size(); }
    /** Points whose attempts are exhausted without success. */
    std::vector<std::size_t> exhaustedPoints() const;

    /** Replace the liveness probe (tokenAlive() by default); tests
     *  inject "everything is dead" to exercise stale-claim requeue. */
    void setLiveProbe(std::function<bool(const std::string &)> probe);

    /** Claimant token for @p pid: `host:pid:starttime` (starttime 0
     *  when /proc/<pid>/stat is unreadable, e.g. a foreign pid). */
    static std::string claimToken(pid_t pid);

    /**
     * Default probe: does @p token still name a live worker? Remote
     * hosts can't be probed and count as live; a local token is live
     * only while its pid exists AND its recorded start time matches
     * the current /proc start time (a mismatch means the pid was
     * recycled by an unrelated process). Legacy bare-pid tokens fall
     * back to pid liveness alone.
     */
    static bool tokenAlive(const std::string &token);

    const std::string &journalPath() const { return journalPath_; }

  private:
    void append(const std::string &line);
    bool runnable(const PointState &state) const;

    std::string dir_;
    std::string journalPath_;
    std::string lockPath_;
    int maxAttempts_;
    std::vector<PointState> states_;
    std::function<bool(const std::string &)> liveProbe_;
};

} // namespace ggpu::tools

#endif // GGPU_TOOLS_SWEEP_WORK_QUEUE_HH
