#!/usr/bin/env python3
"""Engine-speed floor check for CI.

Reads a BENCH_ENGINE.json artifact (ggpu.bench.v1) produced by
bench_engine_speed, computes the average fast-forward-vs-per-cycle
speedup across all rows, and fails if it falls below the floor
recorded in bench/engine_speed_baseline.json.

The floor is a regression tripwire, not a target: it is set well below
the average measured before the batched DRAM window advance landed, so
only a real loss of fast-forward effectiveness (or an accidental
fallback to per-cycle stepping) trips it, not machine-to-machine
noise. Update the baseline file deliberately, with a measurement, when
the engine is intentionally changed.

Usage: check_engine_speed.py <BENCH_ENGINE.json> [baseline.json]
"""

import json
import sys
from pathlib import Path


# Trailing aggregate rows emitted after the per-app rows; they carry a
# value in the speedup column and must not be folded into the average.
SUMMARY_ROWS = {"average", "max", ">=2x runs"}


def average_speedup(artifact_path):
    with open(artifact_path) as handle:
        artifact = json.load(handle)
    series = artifact["series"][0]
    app_col = series["headers"].index("App")
    speedup_col = series["headers"].index("speedup")
    speedups = [
        float(row[speedup_col])
        for row in series["rows"]
        if row[app_col] not in SUMMARY_ROWS
    ]
    if not speedups:
        raise SystemExit(f"{artifact_path}: no benchmark rows")
    return sum(speedups) / len(speedups), len(speedups)


def main(argv):
    if len(argv) not in (2, 3):
        raise SystemExit(__doc__)
    artifact = argv[1]
    baseline_path = (
        argv[2]
        if len(argv) == 3
        else Path(__file__).resolve().parent.parent
        / "bench"
        / "engine_speed_baseline.json"
    )
    with open(baseline_path) as handle:
        baseline = json.load(handle)

    average, rows = average_speedup(artifact)
    floor = float(baseline["average_speedup_floor"])
    scale = baseline.get("scale", "?")
    print(
        f"engine-speed: average replay speedup {average:.2f}x over "
        f"{rows} runs (floor {floor:.2f}x at scale={scale}, pre-change "
        f"average {baseline.get('measured_baseline_average', '?')}x)"
    )
    if average < floor:
        raise SystemExit(
            f"engine-speed REGRESSION: average speedup {average:.2f}x "
            f"is below the recorded floor {floor:.2f}x "
            f"(see {baseline_path})"
        )
    print("engine-speed: OK")


if __name__ == "__main__":
    main(sys.argv)
