/**
 * @file
 * Detector-precision tests: each seeded-defect kernel must trigger
 * exactly its intended diagnostic kind — with correct kernel, CTA,
 * warp, phase and conflicting-warp provenance — and nothing else.
 * Also covers the checker's synthetic-access corners (shared bounds,
 * wild addresses, the diagnostic cap) and the ggpu.check.v1 JSON
 * contract.
 */

#include <gtest/gtest.h>

#include "check/run_check.hh"
#include "check_defects/defect_kernels.hh"
#include "core/json.hh"
#include "sim/device_memory.hh"

namespace
{

using ggpu::check::CheckResult;
using ggpu::check::DiagKind;
using ggpu::check::Diagnostic;
using ggpu::tests::HostProgram;

CheckResult
runDefect(const std::string &label, const HostProgram &program)
{
    return ggpu::check::checkProgram(label, program);
}

/** The run produced exactly one diagnostic; return it. */
const Diagnostic &
single(const CheckResult &result)
{
    EXPECT_EQ(result.diagnostics.size(), 1u) << [&] {
        std::string all;
        for (const auto &diag : result.diagnostics)
            all += "  " + toString(diag) + "\n";
        return all;
    }();
    if (result.diagnostics.empty()) {
        static const Diagnostic none;
        return none;
    }
    return result.diagnostics.front();
}

TEST(CheckDefects, SmemRaceIsExactlyOneWriteWrite)
{
    const CheckResult result =
        runDefect("smem_race", ggpu::tests::defectSmemRace());
    const Diagnostic &diag = single(result);
    EXPECT_EQ(diag.kind, DiagKind::SharedWriteWrite);
    EXPECT_EQ(diag.kernel, "defect_smem_race");
    EXPECT_EQ(diag.cta, 0u);
    EXPECT_EQ(diag.warp, 1);
    EXPECT_EQ(diag.otherWarp, 0);
    EXPECT_EQ(diag.phase, 0);
    EXPECT_EQ(diag.nestDepth, 0);
    // Both warps scatter 32 lanes x 4 bytes onto the same 128 bytes.
    EXPECT_EQ(diag.occurrences, 128u);
}

TEST(CheckDefects, SmemReadWriteIsExactlyOneReadWrite)
{
    const CheckResult result =
        runDefect("smem_rw", ggpu::tests::defectSmemReadWrite());
    const Diagnostic &diag = single(result);
    EXPECT_EQ(diag.kind, DiagKind::SharedReadWrite);
    EXPECT_EQ(diag.kernel, "defect_smem_read_write");
    EXPECT_EQ(diag.warp, 1);
    EXPECT_EQ(diag.otherWarp, 0);
    EXPECT_EQ(diag.phase, 0);
}

TEST(CheckDefects, ConditionalBarrierIsExactlyOnePhaseMismatch)
{
    const CheckResult result =
        runDefect("phase_mismatch", ggpu::tests::defectPhaseMismatch());
    const Diagnostic &diag = single(result);
    EXPECT_EQ(diag.kind, DiagKind::PhaseCountMismatch);
    EXPECT_EQ(diag.kernel, "defect_phase_mismatch");
    EXPECT_EQ(diag.cta, 0u);
    EXPECT_EQ(diag.warp, 1);
    EXPECT_EQ(diag.otherWarp, 0);
}

TEST(CheckDefects, OffByOneReadIsExactlyOneGlobalOob)
{
    const CheckResult result =
        runDefect("global_oob", ggpu::tests::defectGlobalOob());
    const Diagnostic &diag = single(result);
    EXPECT_EQ(diag.kind, DiagKind::GlobalOutOfBounds);
    EXPECT_EQ(diag.kernel, "defect_global_oob");
    EXPECT_EQ(diag.warp, 0);
    EXPECT_EQ(diag.phase, 0);
    EXPECT_EQ(diag.bytes, 4u);
    // Every lane reads element 10 of the 10-element buffer.
    EXPECT_EQ(diag.occurrences, 32u);
    EXPECT_NE(diag.message.find("past the end"), std::string::npos)
        << diag.message;
}

TEST(CheckDefects, StoreToFreedBufferIsExactlyOneUseAfterFree)
{
    const CheckResult result =
        runDefect("use_after_free", ggpu::tests::defectUseAfterFree());
    const Diagnostic &diag = single(result);
    EXPECT_EQ(diag.kind, DiagKind::UseAfterFree);
    EXPECT_EQ(diag.kernel, "defect_use_after_free");
    EXPECT_EQ(diag.warp, 0);
    EXPECT_EQ(diag.occurrences, 32u);
    EXPECT_NE(diag.message.find("freed allocation"), std::string::npos)
        << diag.message;
}

TEST(CheckDefects, PartialMaskBarrierIsExactlyOneDivergentBarrier)
{
    const CheckResult result = runDefect(
        "divergent_barrier", ggpu::tests::defectDivergentBarrier());
    const Diagnostic &diag = single(result);
    EXPECT_EQ(diag.kind, DiagKind::DivergentBarrier);
    EXPECT_EQ(diag.kernel, "defect_divergent_barrier");
    EXPECT_EQ(diag.warp, 0);
    EXPECT_EQ(diag.phase, 0);
}

TEST(CheckDefects, PartialMaskDeviceSyncIsExactlyOneDivergentSync)
{
    const CheckResult result = runDefect(
        "divergent_device_sync",
        ggpu::tests::defectDivergentDeviceSync());
    const Diagnostic &diag = single(result);
    EXPECT_EQ(diag.kind, DiagKind::DivergentDeviceSync);
    EXPECT_EQ(diag.kernel, "defect_divergent_device_sync");
    EXPECT_EQ(diag.warp, 0);
}

TEST(CheckDefects, DisabledDetectorStaysSilent)
{
    ggpu::check::CheckMode mode;
    mode.race = false;
    const CheckResult result = ggpu::check::checkProgram(
        "smem_race_off", ggpu::tests::defectSmemRace(), mode);
    EXPECT_TRUE(result.clean());

    mode = {};
    mode.mem = false;
    const CheckResult uaf = ggpu::check::checkProgram(
        "uaf_off", ggpu::tests::defectUseAfterFree(), mode);
    EXPECT_TRUE(uaf.clean());

    mode = {};
    mode.sync = false;
    const CheckResult sync = ggpu::check::checkProgram(
        "sync_off", ggpu::tests::defectPhaseMismatch(), mode);
    EXPECT_TRUE(sync.clean());
}

// ------------------------------------------------------------------
// Synthetic-access corners driven straight through the observer API.
// ------------------------------------------------------------------

struct SyntheticAccess
{
    ggpu::sim::LaunchSpec spec;
    ggpu::sim::DeviceMemory mem;
    std::array<ggpu::Addr, ggpu::warpSize> addrs{};

    SyntheticAccess()
    {
        spec.name = "synthetic";
        spec.res.smemPerCtaBytes = 64;
    }

    ggpu::sim::MemAccess
    access(bool write, ggpu::sim::MemSpace space, ggpu::Addr addr)
    {
        addrs[0] = addr;
        ggpu::sim::MemAccess out;
        out.spec = &spec;
        out.mem = &mem;
        out.write = write;
        out.space = space;
        out.mask = 0x1;
        out.baseMask = ggpu::fullMask;
        out.bytesPerLane = 4;
        out.addrs = &addrs;
        return out;
    }
};

TEST(CheckerUnits, WildAddressIsUnallocatedAccess)
{
    SyntheticAccess fix;
    const ggpu::Addr base = fix.mem.alloc(40);
    ggpu::check::Checker checker;
    checker.onCtaBegin(fix.spec, 0, 0);
    checker.onMemAccess(fix.access(false, ggpu::sim::MemSpace::Global,
                                   base + 40 + 4096));
    checker.onCtaEnd();
    ASSERT_EQ(checker.diagnostics().size(), 1u);
    EXPECT_EQ(checker.diagnostics().front().kind,
              DiagKind::UnallocatedAccess);
}

TEST(CheckerUnits, NullPageIsUnallocatedAccess)
{
    SyntheticAccess fix;
    ggpu::check::Checker checker;
    checker.onCtaBegin(fix.spec, 0, 0);
    checker.onMemAccess(fix.access(true, ggpu::sim::MemSpace::Global, 8));
    checker.onCtaEnd();
    ASSERT_EQ(checker.diagnostics().size(), 1u);
    EXPECT_EQ(checker.diagnostics().front().kind,
              DiagKind::UnallocatedAccess);
}

TEST(CheckerUnits, SharedOffsetBeyondDeclaredSizeIsSharedOob)
{
    SyntheticAccess fix;
    ggpu::check::Checker checker;
    checker.onCtaBegin(fix.spec, 0, 0);
    // Offset 62 + 4 bytes crosses the declared 64-byte boundary.
    checker.onMemAccess(fix.access(true, ggpu::sim::MemSpace::Shared, 62));
    checker.onCtaEnd();
    ASSERT_EQ(checker.diagnostics().size(), 1u);
    EXPECT_EQ(checker.diagnostics().front().kind,
              DiagKind::SharedOutOfBounds);
}

TEST(CheckerUnits, DiagnosticCapCountsDrops)
{
    SyntheticAccess fix;
    ggpu::check::CheckMode mode;
    mode.maxDiagnostics = 1;
    ggpu::check::Checker checker(mode);
    checker.onCtaBegin(fix.spec, 0, 0);
    checker.onMemAccess(fix.access(true, ggpu::sim::MemSpace::Global, 8));
    checker.onMemAccess(fix.access(true, ggpu::sim::MemSpace::Shared, 62));
    checker.onCtaEnd();
    EXPECT_EQ(checker.diagnostics().size(), 1u);
    EXPECT_EQ(checker.droppedDiagnostics(), 1u);
}

// ------------------------------------------------------------------
// ggpu.check.v1 JSON contract.
// ------------------------------------------------------------------

TEST(CheckJson, RunObjectCarriesEveryRequiredKey)
{
    const CheckResult result =
        runDefect("smem_race", ggpu::tests::defectSmemRace());
    const auto value = ggpu::check::toJson(result);
    for (const auto &key : ggpu::check::requiredCheckRunKeys())
        EXPECT_TRUE(value.has(key)) << "missing run key: " << key;
    const auto &diags = value.at("diagnostics");
    ASSERT_EQ(diags.size(), 1u);
    for (const auto &key : ggpu::check::requiredDiagnosticKeys())
        EXPECT_TRUE(diags.at(0).has(key))
            << "missing diagnostic key: " << key;
    EXPECT_EQ(std::uint64_t(value.at("diagnostic_count").asNumber()),
              1u);
}

TEST(CheckJson, ArtifactRoundTripsThroughParser)
{
    std::vector<CheckResult> results;
    results.push_back(
        runDefect("smem_race", ggpu::tests::defectSmemRace()));
    results.push_back(
        runDefect("uaf", ggpu::tests::defectUseAfterFree()));
    const auto artifact = ggpu::check::checkArtifact(results, "tiny");
    EXPECT_EQ(artifact.at("schema").asString(),
              ggpu::check::checkerSchema);
    const auto parsed = ggpu::core::json::parse(artifact.dump());
    EXPECT_EQ(parsed, artifact);
    EXPECT_EQ(parsed.at("runs").size(), 2u);
}

} // namespace
