/**
 * @file
 * Seeded-defect kernels for the ggpu::check detector tests. Each
 * factory returns a host program (to run under check::checkProgram)
 * containing exactly one planted bug; the tests assert that the
 * checker reports exactly the intended diagnostic kind with the right
 * provenance and nothing else. The defects mirror the classic CUDA
 * bug classes the compute-sanitizer tools exist for.
 */

#ifndef GGPU_TESTS_CHECK_DEFECTS_DEFECT_KERNELS_HH
#define GGPU_TESTS_CHECK_DEFECTS_DEFECT_KERNELS_HH

#include <functional>

#include "runtime/device.hh"

namespace ggpu::tests
{

using HostProgram = std::function<void(rt::Device &)>;

/** Two warps store to the same shared bytes inside one phase
 *  (missing __syncthreads before reuse): SharedWriteWrite. */
HostProgram defectSmemRace();

/** One warp writes shared bytes another warp reads in the same phase:
 *  SharedReadWrite. */
HostProgram defectSmemReadWrite();

/** Warp 0 executes a conditional extra __syncthreads (barrier-count
 *  divergence across warps; hardware deadlock): PhaseCountMismatch. */
HostProgram defectPhaseMismatch();

/** Off-by-one read of element N of an N-element buffer:
 *  GlobalOutOfBounds. */
HostProgram defectGlobalOob();

/** Store through a stale handle after cudaFree: UseAfterFree. */
HostProgram defectUseAfterFree();

/** __syncthreads inside a divergent single-lane branch:
 *  DivergentBarrier. */
HostProgram defectDivergentBarrier();

/** CDP cudaDeviceSynchronize under a partial mask:
 *  DivergentDeviceSync. */
HostProgram defectDivergentDeviceSync();

} // namespace ggpu::tests

#endif // GGPU_TESTS_CHECK_DEFECTS_DEFECT_KERNELS_HH
