#include "check_defects/defect_kernels.hh"

#include <memory>

#include "sim/warp_ctx.hh"

namespace ggpu::tests
{

namespace
{

/** Both warps scatter to shared bytes 0..127 in the same phase. */
class SmemRaceBody : public sim::KernelBody
{
  public:
    void
    runPhase(sim::WarpCtx &warp, int) override
    {
        const auto idx = warp.laneId();
        const auto value = warp.broadcast(std::uint32_t(1));
        warp.storeShared<std::uint32_t>(0, idx, value);
    }
};

/** Warp 0 writes the tile warp 1 reads, with no barrier between. */
class SmemReadWriteBody : public sim::KernelBody
{
  public:
    void
    runPhase(sim::WarpCtx &warp, int) override
    {
        const auto idx = warp.laneId();
        if (warp.warpInCta() == 0) {
            const auto value = warp.broadcast(std::uint32_t(2));
            warp.storeShared<std::uint32_t>(0, idx, value);
        } else {
            (void)warp.loadShared<std::uint32_t>(0, idx);
        }
    }
};

/** Conditional extra __syncthreads in warp 0 only. */
class PhaseMismatchBody : public sim::KernelBody
{
  public:
    int numPhases(Dim3, Dim3) const override { return 2; }

    void
    runPhase(sim::WarpCtx &warp, int phase) override
    {
        warp.emitInt(1);
        if (phase == 0 && warp.warpInCta() == 0) {
            sim::TraceOp barrier;
            barrier.kind = sim::OpKind::Barrier;
            warp.emitOp(barrier);
        }
    }
};

/** Every lane reads element 10 of a 10-element buffer. */
class GlobalOobBody : public sim::KernelBody
{
  public:
    explicit GlobalOobBody(Addr base) : base_(base) {}

    void
    runPhase(sim::WarpCtx &warp, int) override
    {
        const auto idx = warp.broadcast(std::uint32_t(10));
        (void)warp.loadGlobal<std::int32_t>(base_, idx);
    }

  private:
    Addr base_;
};

/** Scatter into a buffer the host already freed. */
class UseAfterFreeBody : public sim::KernelBody
{
  public:
    explicit UseAfterFreeBody(Addr base) : base_(base) {}

    void
    runPhase(sim::WarpCtx &warp, int) override
    {
        const auto idx = warp.laneId();
        const auto value = warp.broadcast(std::int32_t(7));
        warp.storeGlobal<std::int32_t>(base_, idx, value);
    }

  private:
    Addr base_;
};

/** __syncthreads reachable only by lane 0. */
class DivergentBarrierBody : public sim::KernelBody
{
  public:
    void
    runPhase(sim::WarpCtx &warp, int) override
    {
        warp.ifMask(0x1, [&] {
            sim::TraceOp barrier;
            barrier.kind = sim::OpKind::Barrier;
            warp.emitOp(barrier);
        });
    }
};

/** cudaDeviceSynchronize reachable only by lanes 0..1. */
class DivergentDeviceSyncBody : public sim::KernelBody
{
  public:
    void
    runPhase(sim::WarpCtx &warp, int) override
    {
        warp.ifMask(0x3, [&] { warp.deviceSync(); });
    }
};

sim::LaunchSpec
makeSpec(const std::string &name, std::uint32_t threads,
         std::uint32_t smem_bytes, std::shared_ptr<sim::KernelBody> body)
{
    sim::LaunchSpec spec;
    spec.name = name;
    spec.grid = {1, 1, 1};
    spec.cta = {threads, 1, 1};
    spec.res.smemPerCtaBytes = smem_bytes;
    spec.body = std::move(body);
    return spec;
}

} // namespace

HostProgram
defectSmemRace()
{
    return [](rt::Device &dev) {
        dev.launch(makeSpec("defect_smem_race", 64, 128,
                            std::make_shared<SmemRaceBody>()));
    };
}

HostProgram
defectSmemReadWrite()
{
    return [](rt::Device &dev) {
        dev.launch(makeSpec("defect_smem_read_write", 64, 128,
                            std::make_shared<SmemReadWriteBody>()));
    };
}

HostProgram
defectPhaseMismatch()
{
    return [](rt::Device &dev) {
        dev.launch(makeSpec("defect_phase_mismatch", 64, 0,
                            std::make_shared<PhaseMismatchBody>()));
    };
}

HostProgram
defectGlobalOob()
{
    return [](rt::Device &dev) {
        auto buffer = dev.alloc<std::int32_t>(10);
        // A second allocation keeps the functional heap mapped past the
        // first buffer's end, so the overrun lands in alignment padding
        // (silent functionally — exactly the bug class memcheck exists
        // for) instead of tripping the simulator's own bounds panic.
        auto guard = dev.alloc<std::int32_t>(64);
        (void)guard;
        dev.launch(makeSpec("defect_global_oob", 32, 0,
                            std::make_shared<GlobalOobBody>(buffer.addr)));
    };
}

HostProgram
defectUseAfterFree()
{
    return [](rt::Device &dev) {
        auto buffer = dev.alloc<std::int32_t>(64);
        const Addr stale = buffer.addr;
        dev.free(buffer);
        dev.launch(makeSpec("defect_use_after_free", 32, 0,
                            std::make_shared<UseAfterFreeBody>(stale)));
    };
}

HostProgram
defectDivergentBarrier()
{
    return [](rt::Device &dev) {
        dev.launch(makeSpec("defect_divergent_barrier", 32, 0,
                            std::make_shared<DivergentBarrierBody>()));
    };
}

HostProgram
defectDivergentDeviceSync()
{
    return [](rt::Device &dev) {
        dev.launch(makeSpec("defect_divergent_device_sync", 32, 0,
                            std::make_shared<DivergentDeviceSyncBody>()));
    };
}

} // namespace ggpu::tests
