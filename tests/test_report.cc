/**
 * @file
 * Tests for the reporting layer: table formatting/CSV, figure
 * extractors over synthetic records, and the suite orchestration
 * helpers the bench binaries rely on.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/log.hh"
#include "core/json.hh"
#include "core/report.hh"

namespace
{

using namespace ggpu;
using namespace ggpu::core;

TEST(Table, AlignsColumnsAndEmitsCsv)
{
    Table table({"Name", "Value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22222"});
    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("Name"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("-----"), std::string::npos);

    EXPECT_EQ(table.toCsv(), "Name,Value\nalpha,1\nb,22222\n");
}

TEST(Table, CsvQuotesCellsPerRfc4180)
{
    Table table({"App", "Note, with \"quotes\""});
    table.addRow({"a,b", "line\nbreak"});
    table.addRow({"plain", "say \"hi\""});
    table.addRow({"cr\rcell", "unchanged"});
    EXPECT_EQ(table.toCsv(),
              "App,\"Note, with \"\"quotes\"\"\"\n"
              "\"a,b\",\"line\nbreak\"\n"
              "plain,\"say \"\"hi\"\"\"\n"
              "\"cr\rcell\",unchanged\n");
}

TEST(Table, CsvEscaperLeavesPlainCellsAlone)
{
    EXPECT_EQ(json::escapeCsv("plain cell"), "plain cell");
    EXPECT_EQ(json::escapeCsv(""), "");
    EXPECT_EQ(json::escapeCsv("with space 1.5%"), "with space 1.5%");
    EXPECT_EQ(json::escapeCsv("a,b"), "\"a,b\"");
    EXPECT_EQ(json::escapeCsv("\""), "\"\"\"\"");
}

TEST(Table, RowArityIsChecked)
{
    Table table({"A", "B"});
    EXPECT_THROW(table.addRow({"only-one"}), FatalError);
    EXPECT_THROW(Table({}), FatalError);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::percent(0.1234), "12.3%");
    EXPECT_EQ(Table::percent(1.0, 0), "100%");
}

RunRecord
syntheticRecord()
{
    RunRecord record;
    record.app = "X";
    record.kernelCycles = 1000;
    record.stats.insnByKind[std::size_t(sim::OpKind::IntAlu)] = 60;
    record.stats.insnByKind[std::size_t(sim::OpKind::FpAlu)] = 20;
    record.stats.insnByKind[std::size_t(sim::OpKind::Load)] = 20;
    record.stats.memBySpace[std::size_t(sim::MemSpace::Shared)] = 30;
    record.stats.memBySpace[std::size_t(sim::MemSpace::Global)] = 10;
    record.stats.stalls.add(std::size_t(sim::StallReason::MemLatency),
                            75);
    record.stats.stalls.add(std::size_t(sim::StallReason::Idle), 25);
    record.stats.warpOcc.add(31, 90);  // W32
    record.stats.warpOcc.add(0, 10);   // W1
    return record;
}

TEST(Extractors, FractionsComputedFromRecord)
{
    const RunRecord record = syntheticRecord();
    EXPECT_DOUBLE_EQ(insnFraction(record, sim::OpKind::IntAlu), 0.6);
    EXPECT_DOUBLE_EQ(insnFraction(record, sim::OpKind::FpAlu), 0.2);
    EXPECT_DOUBLE_EQ(memFraction(record, sim::MemSpace::Shared), 0.75);
    EXPECT_DOUBLE_EQ(
        stallFraction(record, sim::StallReason::MemLatency), 0.75);
    EXPECT_DOUBLE_EQ(occupancyFraction(record, 29, 32), 0.9);
    EXPECT_DOUBLE_EQ(occupancyFraction(record, 1, 4), 0.1);
}

TEST(Extractors, SpeedupAndGeomean)
{
    RunRecord base = syntheticRecord();
    RunRecord fast = syntheticRecord();
    fast.kernelCycles = 500;
    EXPECT_DOUBLE_EQ(speedupVs(base, fast), 2.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({1.0, 0.0}), 0.0);  // guards non-positive
}

TEST(Suite, LabelsIncludeCdpSuffix)
{
    RunRecord record = syntheticRecord();
    EXPECT_EQ(record.label(), "X");
    record.cdp = true;
    EXPECT_EQ(record.label(), "X-CDP");
}

TEST(Suite, ScaleFromEnvParses)
{
    setenv("GGPU_SCALE", "tiny", 1);
    EXPECT_EQ(scaleFromEnv(), kernels::InputScale::Tiny);
    setenv("GGPU_SCALE", "medium", 1);
    EXPECT_EQ(scaleFromEnv(), kernels::InputScale::Medium);
    setenv("GGPU_SCALE", "bogus", 1);
    EXPECT_THROW(scaleFromEnv(), FatalError);
    unsetenv("GGPU_SCALE");
    EXPECT_EQ(scaleFromEnv(), kernels::InputScale::Small);
}

} // namespace
