/**
 * @file
 * Tests of the SIMT emission layer: trace contents produced by
 * emitCta for hand-built kernels — masks, coalesced transactions,
 * parameter reads, dependency tokens, divergence, CDP child grids,
 * and the phase/barrier protocol.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "sim/warp_ctx.hh"

namespace
{

using namespace ggpu;
using namespace ggpu::sim;

/** Wrap a lambda as a kernel body. */
template <typename Fn>
class LambdaKernel : public KernelBody
{
  public:
    LambdaKernel(Fn fn, int phases = 1)
        : fn_(std::move(fn)), phases_(phases)
    {
    }

    int numPhases(Dim3, Dim3) const override { return phases_; }

    void
    runPhase(WarpCtx &w, int phase) override
    {
        fn_(w, phase);
    }

  private:
    Fn fn_;
    int phases_;
};

template <typename Fn>
LaunchSpec
makeSpec(Fn fn, std::uint32_t threads = 32, int phases = 1)
{
    LaunchSpec spec;
    spec.name = "probe";
    spec.grid = {1, 1, 1};
    spec.cta = {threads, 1, 1};
    spec.body =
        std::make_shared<LambdaKernel<Fn>>(std::move(fn), phases);
    return spec;
}

std::uint64_t
countKind(const WarpTrace &trace, OpKind kind)
{
    std::uint64_t n = 0;
    for (const auto &op : trace.ops)
        if (op.kind == kind)
            n += op.repeat;
    return n;
}

TEST(Emission, ParamReadsAndExitAlwaysEmitted)
{
    DeviceMemory mem;
    auto spec = makeSpec([](WarpCtx &, int) {});
    spec.numParams = 6;
    const CtaTrace trace = emitCta(spec, 0, mem);
    ASSERT_EQ(trace.warps.size(), 1u);
    const WarpTrace &warp = trace.warps[0];
    std::uint64_t params = 0;
    for (const auto &op : warp.ops)
        if (op.kind == OpKind::Load && op.space == MemSpace::Param)
            params += op.repeat;
    EXPECT_EQ(params, 6u);
    EXPECT_EQ(warp.ops.back().kind, OpKind::Exit);
}

TEST(Emission, PartialLastWarpGetsPartialBaseMask)
{
    DeviceMemory mem;
    auto spec = makeSpec([](WarpCtx &w, int) { w.emitInt(1); }, 40);
    const CtaTrace trace = emitCta(spec, 0, mem);
    ASSERT_EQ(trace.warps.size(), 2u);
    EXPECT_EQ(trace.warps[0].ops.back().mask, fullMask);
    // Second warp has 8 active lanes.
    EXPECT_EQ(trace.warps[1].ops.back().mask, 0xffu);
}

TEST(Emission, CoalescedLoadProducesOneTransaction)
{
    DeviceMemory mem;
    const Addr buf = mem.alloc(4096);
    for (std::uint32_t i = 0; i < 32; ++i)
        mem.store<std::int32_t>(buf + i * 4, std::int32_t(i * 3));

    auto spec = makeSpec([buf](WarpCtx &w, int) {
        auto values = w.loadGlobal<std::int32_t>(buf, w.laneId());
        for (int lane = 0; lane < warpSize; ++lane)
            EXPECT_EQ(values[lane], lane * 3);
    });
    const CtaTrace trace = emitCta(spec, 0, mem);
    const WarpTrace &warp = trace.warps[0];
    for (const auto &op : warp.ops) {
        if (op.kind == OpKind::Load &&
            op.space == MemSpace::Global) {
            EXPECT_EQ(op.txCount, 1);
        }
    }
}

TEST(Emission, StridedLoadProducesManyTransactions)
{
    DeviceMemory mem;
    const Addr buf = mem.alloc(32 * 512 + 64);
    auto spec = makeSpec([buf](WarpCtx &w, int) {
        auto idx = w.make<std::uint32_t>(
            [](int lane) { return std::uint32_t(lane) * 128; });
        (void)w.loadGlobal<std::int32_t>(buf, idx);
    });
    const CtaTrace trace = emitCta(spec, 0, mem);
    bool found = false;
    for (const auto &op : trace.warps[0].ops) {
        if (op.kind == OpKind::Load && op.space == MemSpace::Global) {
            EXPECT_EQ(op.txCount, 32);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Emission, LoadProducesDepTokenConsumedByAlu)
{
    DeviceMemory mem;
    const Addr buf = mem.alloc(256);
    auto spec = makeSpec([buf](WarpCtx &w, int) {
        auto v = w.loadGlobal<std::int32_t>(buf, w.laneId());
        auto one = w.broadcast<std::int32_t>(1);
        auto sum = v + one;  // must carry the load dependency
        (void)sum;
    });
    const CtaTrace trace = emitCta(spec, 0, mem);
    const auto &ops = trace.warps[0].ops;
    std::int32_t load_idx = -1;
    bool dependent_alu = false;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].kind == OpKind::Load &&
            ops[i].space == MemSpace::Global)
            load_idx = std::int32_t(i);
        if (ops[i].kind == OpKind::IntAlu && ops[i].dep == load_idx &&
            load_idx >= 0)
            dependent_alu = true;
    }
    EXPECT_TRUE(dependent_alu);
}

TEST(Emission, IfMaskNarrowsAndRestores)
{
    DeviceMemory mem;
    auto spec = makeSpec([](WarpCtx &w, int) {
        w.ifMask(0x0f, [&] {
            w.emitInt(1);
            EXPECT_EQ(w.activeMask(), 0x0fu);
        });
        EXPECT_EQ(w.activeMask(), fullMask);
        w.emitInt(1);
    });
    const CtaTrace trace = emitCta(spec, 0, mem);
    const auto &ops = trace.warps[0].ops;
    bool narrow = false, wide = false;
    for (const auto &op : ops) {
        if (op.kind == OpKind::IntAlu && op.mask == 0x0f)
            narrow = true;
        if (op.kind == OpKind::IntAlu && op.mask == fullMask)
            wide = true;
    }
    EXPECT_TRUE(narrow);
    EXPECT_TRUE(wide);
    // The divergence point emitted a branch.
    EXPECT_GT(countKind(trace.warps[0], OpKind::Branch), 0u);
}

TEST(Emission, UnbalancedMaskStackPanics)
{
    DeviceMemory mem;
    auto spec = makeSpec([](WarpCtx &w, int) { w.pushMask(0x1); });
    EXPECT_THROW(emitCta(spec, 0, mem), PanicError);
}

TEST(Emission, BallotRespectsActiveMask)
{
    DeviceMemory mem;
    auto spec = makeSpec([](WarpCtx &w, int) {
        LaneArray<bool> pred = w.make<bool>(
            [](int lane) { return lane % 2 == 0; });
        w.pushMask(0x00ff);
        EXPECT_EQ(w.ballot(pred), 0x0055u);
        w.popMask();
    });
    emitCta(spec, 0, mem);
}

TEST(Emission, SharedRoundTripThroughBacking)
{
    DeviceMemory mem;
    auto spec = makeSpec([](WarpCtx &w, int) {
        auto lane = w.laneId();
        LaneArray<std::uint32_t> doubled = w.make<std::uint32_t>(
            [](int l) { return std::uint32_t(l) * 2; });
        w.storeShared<std::uint32_t>(0, lane, doubled);
        auto back = w.loadShared<std::uint32_t>(0, lane);
        for (int l = 0; l < warpSize; ++l)
            EXPECT_EQ(back[l], std::uint32_t(l) * 2);
    });
    spec.res.smemPerCtaBytes = 1024;
    emitCta(spec, 0, mem);
}

TEST(Emission, SharedOutOfBoundsPanics)
{
    DeviceMemory mem;
    auto spec = makeSpec([](WarpCtx &w, int) {
        (void)w.loadShared<std::uint32_t>(0, w.laneId());
    });
    spec.res.smemPerCtaBytes = 16;  // too small for 32 lanes
    EXPECT_THROW(emitCta(spec, 0, mem), PanicError);
}

TEST(Emission, PhasesSeparatedByBarriers)
{
    DeviceMemory mem;
    auto spec = makeSpec([](WarpCtx &w, int) { w.emitInt(1); }, 64, 3);
    const CtaTrace trace = emitCta(spec, 0, mem);
    for (const auto &warp : trace.warps)
        EXPECT_EQ(countKind(warp, OpKind::Barrier), 2u);  // phases - 1
}

TEST(Emission, ChildLaunchEmitsGridEagerly)
{
    DeviceMemory mem;
    const Addr buf = mem.alloc(256);
    mem.store<std::int32_t>(buf, 0);

    auto child_fn = [buf](WarpCtx &w, int) {
        LaneArray<std::uint32_t> zero = w.broadcast<std::uint32_t>(0);
        w.ifMask(0x1, [&] {
            auto v = w.loadGlobal<std::int32_t>(buf, zero);
            auto one = w.broadcast<std::int32_t>(1);
            w.storeGlobal<std::int32_t>(buf, zero, v + one);
        });
    };
    auto parent_fn = [buf, child_fn](WarpCtx &w, int) {
        LaunchSpec child = makeSpec(child_fn);
        child.name = "child";
        w.launchChild(child);
        w.deviceSync();
        // Functional order: the child already ran during emission.
        EXPECT_EQ(w.mem().load<std::int32_t>(buf), 1);
    };
    auto spec = makeSpec(parent_fn);
    const CtaTrace trace = emitCta(spec, 0, mem);
    ASSERT_EQ(trace.children.size(), 1u);
    EXPECT_EQ(trace.children[0]->spec.name, "child");
    EXPECT_EQ(trace.children[0]->ctas.size(), 1u);
    EXPECT_EQ(countKind(trace.warps[0], OpKind::ChildLaunch), 1u);
    EXPECT_EQ(countKind(trace.warps[0], OpKind::DeviceSync), 1u);
}

TEST(Emission, NestingDepthIsBounded)
{
    DeviceMemory mem;

    // A self-recursive kernel must trip the depth guard.
    struct Recursive : KernelBody
    {
        void
        runPhase(WarpCtx &w, int) override
        {
            LaunchSpec child;
            child.name = "deeper";
            child.grid = {1, 1, 1};
            child.cta = {32, 1, 1};
            child.body = std::make_shared<Recursive>();
            w.launchChild(child);
        }
    };
    LaunchSpec spec;
    spec.name = "root";
    spec.grid = {1, 1, 1};
    spec.cta = {32, 1, 1};
    spec.body = std::make_shared<Recursive>();
    EXPECT_THROW(emitCta(spec, 0, mem), FatalError);
}

TEST(Emission, LocalAccessCoalescesPerLaneInterleaved)
{
    DeviceMemory mem;
    auto spec = makeSpec([](WarpCtx &w, int) {
        w.localAccess(false, 3, 4);
        w.localAccess(true, 7, 4);
    });
    const CtaTrace trace = emitCta(spec, 0, mem);
    for (const auto &op : trace.warps[0].ops) {
        if (op.space == MemSpace::Local) {
            EXPECT_EQ(op.txCount, 1);  // 32 lanes x 4B = one line
        }
    }
}

TEST(Emission, ReduceMaxBroadcastsWarpMaximum)
{
    DeviceMemory mem;
    auto spec = makeSpec([](WarpCtx &w, int) {
        LaneArray<std::int32_t> v = w.make<std::int32_t>(
            [](int lane) { return lane == 13 ? 99 : lane; });
        auto m = w.reduceMax(v);
        for (int lane = 0; lane < warpSize; ++lane)
            EXPECT_EQ(m[lane], 99);
    });
    emitCta(spec, 0, mem);
}

TEST(Emission, MemNoteEmitsWithoutTouchingMemory)
{
    DeviceMemory mem;
    const std::size_t before = mem.allocated();
    auto spec = makeSpec([](WarpCtx &w, int) {
        // Addresses far outside any allocation: emit-only must not
        // read or write backing storage.
        w.memNote(false, MemSpace::Global, Addr(1) << 35, w.laneId(),
                  4);
        w.memNote(true, MemSpace::Tex, Addr(1) << 35, w.laneId(), 4);
    });
    const CtaTrace trace = emitCta(spec, 0, mem);
    EXPECT_EQ(mem.allocated(), before);
    EXPECT_EQ(countKind(trace.warps[0], OpKind::Load), 1u + 4u);
}

} // namespace
