/**
 * @file
 * Serving-mode validation: the percentile helpers, the seeded tape
 * generator, the batcher's policy/timeout semantics, and — the
 * load-bearing contract — the engine differential: one serving
 * experiment must render a byte-identical `ggpu.serving.v1` point
 * under fast-forward ON and OFF and under sim.threads {1, 2, 8}.
 * Serving drives the Gpu stream-mode API (window-bounded engine runs,
 * mid-flight resume), which is exactly the code path run-to-completion
 * tests cannot reach.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/stats.hh"
#include "core/json.hh"
#include "core/trace_store.hh"
#include "serve/batcher.hh"
#include "serve/report.hh"
#include "serve/server.hh"

namespace
{

using namespace ggpu;

// ---- Percentile helpers ------------------------------------------

TEST(Percentile, OfSortedNearestRank)
{
    const std::vector<std::uint64_t> sorted{10, 20, 30, 40, 50};
    EXPECT_EQ(percentileOfSorted(sorted, 0.0), 10u);
    EXPECT_EQ(percentileOfSorted(sorted, 0.5), 30u);
    EXPECT_EQ(percentileOfSorted(sorted, 0.9), 50u);
    EXPECT_EQ(percentileOfSorted(sorted, 1.0), 50u);
    // ceil(0.55 * 5) = 3 -> third element.
    EXPECT_EQ(percentileOfSorted(sorted, 0.55), 30u);
    EXPECT_EQ(percentileOfSorted({}, 0.5), 0u);
    EXPECT_EQ(percentileOfSorted({7}, 0.99), 7u);
}

TEST(Percentile, MonotoneInP)
{
    const std::vector<std::uint64_t> sorted{1, 1, 2, 3, 5, 8, 13, 21};
    std::uint64_t last = 0;
    for (double p = 0.0; p <= 1.0; p += 0.05) {
        const std::uint64_t v = percentileOfSorted(sorted, p);
        EXPECT_GE(v, last);
        last = v;
    }
}

TEST(Percentile, HistogramNearestRank)
{
    Histogram hist(8);
    hist.add(1, 50);  // keys 1..3, counts 50/30/20
    hist.add(2, 30);
    hist.add(3, 20);
    EXPECT_EQ(hist.percentile(0.0), 1u);
    EXPECT_EQ(hist.percentile(0.5), 1u);   // rank 50 inside bucket 1
    EXPECT_EQ(hist.percentile(0.51), 2u);
    EXPECT_EQ(hist.percentile(0.8), 2u);
    EXPECT_EQ(hist.percentile(0.81), 3u);
    EXPECT_EQ(hist.percentile(1.0), 3u);
    EXPECT_EQ(Histogram(4).percentile(0.5), 0u);
}

// ---- Tape generator ----------------------------------------------

serve::TapeConfig
tinyTapeConfig()
{
    serve::TapeConfig config;
    config.requests = 64;
    config.ratePerSec = 8000.0;
    config.seed = 1234;
    config.apps = {"SW", "GL"};
    config.minReads = 4;
    config.maxReads = 40;
    return config;
}

TEST(RequestTape, DeterministicAndWellFormed)
{
    const serve::TapeConfig config = tinyTapeConfig();
    const serve::RequestTape a = serve::generateTape(config);
    const serve::RequestTape b = serve::generateTape(config);
    ASSERT_EQ(a.requests.size(), 64u);
    Cycles last = 0;
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        const serve::Request &r = a.requests[i];
        EXPECT_EQ(r.id, i);
        EXPECT_GE(r.arrival, last);
        last = r.arrival;
        EXPECT_LT(r.app, config.apps.size());
        EXPECT_GE(r.reads, config.minReads);
        EXPECT_LE(r.reads, config.maxReads);
        EXPECT_EQ(r.arrival, b.requests[i].arrival);
        EXPECT_EQ(r.app, b.requests[i].app);
        EXPECT_EQ(r.reads, b.requests[i].reads);
    }
}

TEST(RequestTape, SeedAndProcessChangeTheTape)
{
    serve::TapeConfig config = tinyTapeConfig();
    const serve::RequestTape base = serve::generateTape(config);
    config.seed = 1235;
    const serve::RequestTape reseeded = serve::generateTape(config);
    EXPECT_NE(base.requests.back().arrival,
              reseeded.requests.back().arrival);

    config.seed = 1234;
    config.process = serve::ArrivalProcess::Bursty;
    const serve::RequestTape bursty = serve::generateTape(config);
    // Same seed: the per-request draws match, only the gaps rescale.
    EXPECT_EQ(base.requests[0].reads, bursty.requests[0].reads);
    EXPECT_NE(base.requests.back().arrival,
              bursty.requests.back().arrival);
}

// ---- Batcher ------------------------------------------------------

serve::Request
makeRequest(std::uint64_t id, Cycles at, std::uint32_t app,
            std::uint32_t reads)
{
    serve::Request r;
    r.id = id;
    r.arrival = at;
    r.app = app;
    r.reads = reads;
    return r;
}

TEST(Batcher, FullQueueFlushesAtArrival)
{
    serve::BatcherConfig config;
    config.policy = serve::BatchPolicy::Fifo;
    config.maxBatch = 4;
    config.timeout = 1000;
    serve::Batcher batcher(config, 2);
    for (std::uint64_t i = 0; i < 3; ++i) {
        batcher.enqueue(makeRequest(i, 10 + i, 0, 8), 10 + i);
        EXPECT_TRUE(batcher.ready(10 + i).empty());
    }
    batcher.enqueue(makeRequest(3, 20, 1, 8), 20);
    const std::vector<serve::Batch> formed = batcher.ready(20);
    ASSERT_EQ(formed.size(), 1u);
    EXPECT_EQ(formed[0].requests.size(), 4u);
    EXPECT_EQ(formed[0].app, 0u);  // oldest request's template
    EXPECT_EQ(formed[0].formedAt, 20u);
    EXPECT_TRUE(batcher.empty());
}

TEST(Batcher, TimeoutFlushesPartialBatch)
{
    serve::BatcherConfig config;
    config.policy = serve::BatchPolicy::Fifo;
    config.maxBatch = 8;
    config.timeout = 100;
    serve::Batcher batcher(config, 1);
    batcher.enqueue(makeRequest(0, 50, 0, 8), 50);
    batcher.enqueue(makeRequest(1, 60, 0, 8), 60);
    EXPECT_EQ(batcher.nextDeadline(), 150u);
    EXPECT_TRUE(batcher.ready(149).empty());
    const std::vector<serve::Batch> formed = batcher.ready(150);
    ASSERT_EQ(formed.size(), 1u);
    EXPECT_EQ(formed[0].requests.size(), 2u);
    EXPECT_EQ(batcher.nextDeadline(), ~Cycles(0));
}

TEST(Batcher, PerAppQueuesAreIndependent)
{
    serve::BatcherConfig config;
    config.policy = serve::BatchPolicy::PerApp;
    config.maxBatch = 2;
    config.timeout = 1000000;
    serve::Batcher batcher(config, 2);
    batcher.enqueue(makeRequest(0, 1, 0, 8), 1);
    batcher.enqueue(makeRequest(1, 2, 1, 8), 2);
    EXPECT_TRUE(batcher.ready(2).empty());  // both queues half full
    batcher.enqueue(makeRequest(2, 3, 1, 8), 3);
    const std::vector<serve::Batch> formed = batcher.ready(3);
    ASSERT_EQ(formed.size(), 1u);
    EXPECT_EQ(formed[0].app, 1u);
    EXPECT_EQ(batcher.pendingRequests(), 1u);
}

TEST(Batcher, LengthBinsSeparateReadCounts)
{
    EXPECT_EQ(serve::lengthBin(1), 0u);
    EXPECT_EQ(serve::lengthBin(16), 0u);
    EXPECT_EQ(serve::lengthBin(17), 1u);
    EXPECT_EQ(serve::lengthBin(32), 1u);
    EXPECT_EQ(serve::lengthBin(33), 2u);

    serve::BatcherConfig config;
    config.policy = serve::BatchPolicy::LengthBinned;
    config.maxBatch = 2;
    config.timeout = 1000000;
    serve::Batcher batcher(config, 1);
    batcher.enqueue(makeRequest(0, 1, 0, 8), 1);   // bin 0
    batcher.enqueue(makeRequest(1, 2, 0, 40), 2);  // bin 2
    EXPECT_TRUE(batcher.ready(2).empty());
    batcher.enqueue(makeRequest(2, 3, 0, 12), 3);  // fills bin 0
    const std::vector<serve::Batch> formed = batcher.ready(3);
    ASSERT_EQ(formed.size(), 1u);
    EXPECT_EQ(formed[0].requests[0].reads, 8u);
    EXPECT_EQ(formed[0].requests[1].reads, 12u);
}

// ---- Serving runs -------------------------------------------------

/** Shared store: templates are emitted once for the whole binary. */
core::TraceStore &
sharedStore()
{
    static core::TraceStore store;
    return store;
}

serve::ServeConfig
tinyServeConfig()
{
    serve::ServeConfig config;
    config.scale = kernels::InputScale::Tiny;
    config.batcher.policy = serve::BatchPolicy::LengthBinned;
    config.batcher.maxBatch = 6;
    config.batcher.timeout = 200000;
    config.streams = 3;
    return config;
}

TEST(Serving, ServesEveryRequestWithSaneTiming)
{
    serve::TapeConfig tape_config = tinyTapeConfig();
    tape_config.process = serve::ArrivalProcess::Bursty;
    const serve::RequestTape tape = serve::generateTape(tape_config);
    const serve::ServeConfig config = tinyServeConfig();
    const serve::ServeResult result =
        serve::runServing(tape, config, sharedStore());

    EXPECT_EQ(result.requests, tape.requests.size());
    EXPECT_EQ(result.served, result.requests);
    EXPECT_EQ(result.reads, tape.totalReads());
    EXPECT_EQ(result.latencyCycles.size(), result.served);
    EXPECT_EQ(result.batchOccupancy.total(), result.batches);
    EXPECT_EQ(result.batchOccupancy.overflow(), 0u);
    EXPECT_GT(result.batches, 0u);
    EXPECT_GT(result.makespan, 0u);
    EXPECT_TRUE(std::is_sorted(result.latencyCycles.begin(),
                               result.latencyCycles.end()));
    EXPECT_GT(result.latencyCycles.front(), 0u);

    ASSERT_EQ(result.batchLog.size(), result.batches);
    for (const serve::BatchRecord &record : result.batchLog) {
        EXPECT_GE(record.h2dDoneAt, record.formedAt);
        EXPECT_GT(record.kernelReadyAt, record.h2dDoneAt);
        EXPECT_GT(record.kernelDoneAt, record.kernelReadyAt);
        EXPECT_GT(record.d2hDoneAt, record.kernelDoneAt);
        EXPECT_GE(record.stream, 0);
        EXPECT_LT(record.stream, config.streams);
    }
    // Per-stream kernels never overlap: busy time fits the makespan.
    for (Cycles busy : result.streamBusy)
        EXPECT_LE(busy, result.makespan);
}

/** The acceptance gate: one serving experiment, six engine/lane
 *  configurations, byte-identical artifact points. */
TEST(Serving, EngineAndThreadDifferential)
{
    serve::TapeConfig tape_config = tinyTapeConfig();
    tape_config.process = serve::ArrivalProcess::Bursty;
    const serve::RequestTape tape = serve::generateTape(tape_config);

    std::string reference;
    sim::SimStats reference_stats;
    for (const bool fast_forward : {true, false}) {
        for (const int threads : {1, 2, 8}) {
            serve::ServeConfig config = tinyServeConfig();
            config.system.sim.fastForward = fast_forward;
            config.system.sim.threads = threads;
            const serve::ServeResult result =
                serve::runServing(tape, config, sharedStore());
            const std::string dump =
                serve::pointToJson("diff", tape, config, result)
                    .dump();
            if (reference.empty()) {
                reference = dump;
                reference_stats = result.stats;
                continue;
            }
            EXPECT_EQ(dump, reference)
                << "fast_forward=" << fast_forward
                << " threads=" << threads;
            EXPECT_TRUE(result.stats == reference_stats)
                << "fast_forward=" << fast_forward
                << " threads=" << threads;
        }
    }
}

TEST(Serving, StreamCountChangesScheduleNotWork)
{
    const serve::RequestTape tape =
        serve::generateTape(tinyTapeConfig());
    serve::ServeConfig config = tinyServeConfig();
    config.streams = 1;
    const serve::ServeResult serial =
        serve::runServing(tape, config, sharedStore());
    config.streams = 4;
    const serve::ServeResult wide =
        serve::runServing(tape, config, sharedStore());
    EXPECT_EQ(serial.served, wide.served);
    EXPECT_EQ(serial.reads, wide.reads);
    EXPECT_EQ(serial.batches, wide.batches);
    // More streams never hurt the backlog-bound tail at this load.
    EXPECT_LE(percentileOfSorted(wide.latencyCycles, 0.99),
              percentileOfSorted(serial.latencyCycles, 0.99) * 2);
}

TEST(Serving, ArtifactValidates)
{
    const serve::RequestTape tape =
        serve::generateTape(tinyTapeConfig());
    const serve::ServeConfig config = tinyServeConfig();
    const serve::ServeResult result =
        serve::runServing(tape, config, sharedStore());
    std::vector<core::json::Value> points;
    points.push_back(
        serve::pointToJson("unit", tape, config, result));
    const core::json::Value doc =
        serve::buildServingArtifact("tiny", 1, tape.config.seed,
                                    std::move(points));
    EXPECT_NO_THROW(
        serve::validateServingArtifact("unit-test", doc));
    // Round-trip through the writer's parser (CI validates files).
    const core::json::Value parsed =
        core::json::parse(doc.dump());
    EXPECT_NO_THROW(
        serve::validateServingArtifact("round-trip", parsed));
}

} // namespace
