/**
 * @file
 * Table III contract tests: every application's primary kernel must
 * reproduce the paper's benchmark-property table — CTA dimensions,
 * shared/constant-memory usage, and the CTAs-per-core occupancy the
 * RTX 3070 configuration yields.
 */

#include <gtest/gtest.h>

#include "core/suite.hh"
#include "sim/occupancy.hh"

namespace
{

using namespace ggpu;

struct TableRow
{
    std::string app;
    std::uint32_t ctaThreads;       //!< Table III CTA x-dim
    bool usesShared;
    std::uint32_t ctasPerCore;      //!< Expected occupancy
};

/**
 * Expected values from Table III. SW is 24 rather than the paper's 30
 * because 30 CTAs x 64 threads = 1920 exceeds the paper's own
 * 1536-thread/core (bold) limit; 24 is the consistent value.
 */
const std::vector<TableRow> &
expectedRows()
{
    static const std::vector<TableRow> rows{
        {"SW", 64, false, 24},
        {"NW", 128, true, 6},
        {"STAR", 256, false, 4},
        {"GG", 128, false, 12},
        {"GL", 128, false, 12},
        {"GKSW", 128, false, 12},
        {"GSG", 128, false, 12},
        {"CLUSTER", 128, true, 12},
        {"PairHMM", 128, true, 10},
        {"NvB", 256, false, 6},
    };
    return rows;
}

class Table3Test : public ::testing::TestWithParam<TableRow>
{
};

TEST_P(Table3Test, PropertiesMatchPaper)
{
    const TableRow &row = GetParam();
    core::RunConfig config;
    config.options.scale = kernels::InputScale::Tiny;
    const core::RunRecord record = core::runApp(row.app, config);

    const auto &spec = record.primarySpec;
    EXPECT_EQ(spec.cta.x, row.ctaThreads) << row.app;
    EXPECT_EQ(spec.res.usesShared(), row.usesShared) << row.app;
    EXPECT_GT(spec.res.constBytes, 0u) << row.app;  // all use const

    const sim::Occupancy occ =
        sim::computeOccupancy(GpuConfig{}, spec);
    EXPECT_EQ(occ.ctasPerCore, row.ctasPerCore) << row.app;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable, Table3Test, ::testing::ValuesIn(expectedRows()),
    [](const ::testing::TestParamInfo<TableRow> &param_info) {
        return param_info.param.app;
    });

} // namespace
