/**
 * @file
 * Tests for the aligner extensions: Myers bit-parallel edit distance
 * (vs the DP reference, across word-boundary lengths) and Hirschberg
 * linear-space alignment (vs nwScore/nwAlign).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "genomics/align/edit_distance.hh"
#include "genomics/align/hirschberg.hh"
#include "genomics/datagen.hh"

namespace
{

using namespace ggpu;
using namespace ggpu::genomics;

// ----------------------------------------------------- edit distance

TEST(EditDistance, KnownSmallCases)
{
    EXPECT_EQ(editDistanceDp("kitten", "sitting"), 3u);
    EXPECT_EQ(editDistanceMyers("kitten", "sitting"), 3u);
    EXPECT_EQ(editDistanceMyers("", "abc"), 3u);
    EXPECT_EQ(editDistanceMyers("abc", ""), 3u);
    EXPECT_EQ(editDistanceMyers("ACGT", "ACGT"), 0u);
    EXPECT_EQ(editDistanceMyers("A", "T"), 1u);
}

class MyersLengthSweep
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(MyersLengthSweep, MatchesDpReference)
{
    // Lengths chosen around the 64-bit word boundaries where blocked
    // implementations typically break.
    Rng rng(GetParam() * 7919 + 1);
    const std::size_t n = GetParam();
    for (int iter = 0; iter < 8; ++iter) {
        const std::string a = randomDna(rng, n);
        const std::string b =
            randomDna(rng, 1 + rng.below(n + 16));
        EXPECT_EQ(editDistanceMyers(a, b), editDistanceDp(a, b))
            << "n=" << n << " m=" << b.size();
    }
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, MyersLengthSweep,
                         ::testing::Values(1u, 3u, 31u, 63u, 64u, 65u,
                                           100u, 127u, 128u, 129u,
                                           200u));

TEST(EditDistance, MyersMatchesDpOnMutatedPairs)
{
    Rng rng(42);
    for (int iter = 0; iter < 20; ++iter) {
        const std::string a = randomDna(rng, 50 + rng.below(150));
        const std::string b = mutate(rng, a, MutationProfile{});
        EXPECT_EQ(editDistanceMyers(a, b), editDistanceDp(a, b));
    }
}

TEST(EditDistance, BoundedIsExactUnderLimit)
{
    Rng rng(43);
    for (int iter = 0; iter < 20; ++iter) {
        const std::string a = randomDna(rng, 40 + rng.below(40));
        const std::string b = mutate(rng, a, MutationProfile{});
        const std::size_t exact = editDistanceDp(a, b);
        EXPECT_EQ(editDistanceBounded(a, b, exact), exact);
        EXPECT_EQ(editDistanceBounded(a, b, exact + 5), exact);
        if (exact > 0) {
            // Distance exceeds limit exact-1 -> contract returns
            // limit + 1, which equals the exact distance here.
            EXPECT_EQ(editDistanceBounded(a, b, exact - 1), exact);
        }
    }
}

TEST(EditDistance, BoundedCutsOffOverLimit)
{
    Rng rng(44);
    const std::string a = randomDna(rng, 200);
    const std::string b = randomDna(rng, 200);
    const std::size_t exact = editDistanceDp(a, b);
    ASSERT_GT(exact, 10u);
    EXPECT_EQ(editDistanceBounded(a, b, 10), 11u);
    // Length-gap shortcut.
    EXPECT_EQ(editDistanceBounded(a, a.substr(0, 50), 20), 21u);
}

TEST(EditDistance, TriangleInequalityHolds)
{
    Rng rng(45);
    for (int iter = 0; iter < 10; ++iter) {
        const std::string a = randomDna(rng, 20 + rng.below(40));
        const std::string b = randomDna(rng, 20 + rng.below(40));
        const std::string c = randomDna(rng, 20 + rng.below(40));
        EXPECT_LE(editDistanceMyers(a, c),
                  editDistanceMyers(a, b) + editDistanceMyers(b, c));
    }
}

// -------------------------------------------------------- Hirschberg

TEST(Hirschberg, ScoreMatchesFullMatrixNw)
{
    Rng rng(46);
    const Scoring scoring;
    for (int iter = 0; iter < 20; ++iter) {
        const std::string a = randomDna(rng, 1 + rng.below(120));
        const std::string b = randomDna(rng, 1 + rng.below(120));
        const NwAlignment h = hirschbergAlign(a, b, scoring);
        EXPECT_EQ(h.score, nwScore(a, b, scoring))
            << "a=" << a << "\nb=" << b;
    }
}

TEST(Hirschberg, RowsSpellTheInputs)
{
    Rng rng(47);
    const Scoring scoring;
    for (int iter = 0; iter < 10; ++iter) {
        const std::string a = randomDna(rng, 30 + rng.below(60));
        const std::string b = mutate(rng, a, MutationProfile{});
        const NwAlignment h = hirschbergAlign(a, b, scoring);
        std::string ra, rb;
        for (char c : h.alignedA)
            if (c != '-')
                ra.push_back(c);
        for (char c : h.alignedB)
            if (c != '-')
                rb.push_back(c);
        EXPECT_EQ(ra, a);
        EXPECT_EQ(rb, b);
    }
}

TEST(Hirschberg, HandlesEmptyAndDegenerate)
{
    const Scoring scoring;
    const NwAlignment empty_a = hirschbergAlign("", "ACG", scoring);
    EXPECT_EQ(empty_a.alignedA, "---");
    EXPECT_EQ(empty_a.alignedB, "ACG");
    const NwAlignment empty_b = hirschbergAlign("ACG", "", scoring);
    EXPECT_EQ(empty_b.alignedB, "---");
    const NwAlignment single = hirschbergAlign("A", "A", scoring);
    EXPECT_EQ(single.score, scoring.match);
}

TEST(Hirschberg, LongSequencesStayLinearSpace)
{
    // 4K x 4K would need 64MB of traceback matrix in nwAlign; the
    // linear-space version handles it comfortably.
    Rng rng(48);
    const Scoring scoring;
    const std::string a = randomDna(rng, 4096);
    const std::string b = mutate(rng, a, MutationProfile{});
    const NwAlignment h = hirschbergAlign(a, b, scoring);
    EXPECT_EQ(h.score, nwScore(a, b, scoring));
}

} // namespace
