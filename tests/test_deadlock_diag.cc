/**
 * @file
 * Regression test for the deadlock forensics report: when the device
 * wedges (here: a CDP parent deviceSync-ing on a zero-CTA child grid,
 * which can never complete), the panic must name the stalled warps,
 * their stall reasons, pending memory requests, and the grid that is
 * stuck in the dispatch queue — not just "deadlock".
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/log.hh"
#include "runtime/device.hh"
#include "sim/warp_ctx.hh"

namespace
{

using namespace ggpu;
using namespace ggpu::sim;

/** Child body that would do nothing — it never runs (zero CTAs). */
class NopChild : public KernelBody
{
  public:
    void
    runPhase(WarpCtx &w, int) override
    {
        w.emitInt(1);
    }
};

/** Parent that launches a zero-CTA child grid and waits on it. */
class ZeroCtaParent : public KernelBody
{
  public:
    void
    runPhase(WarpCtx &w, int) override
    {
        LaunchSpec child;
        child.name = "zero-cta-child";
        child.grid = {0, 1, 1};
        child.cta = {32, 1, 1};
        child.body = std::make_shared<NopChild>();
        w.launchChild(child);
        w.deviceSync();  // the child never completes: guaranteed wedge
    }
};

TEST(DeadlockDiagnostics, PanicNamesStalledWarpsAndPendingWork)
{
    rt::Device dev;

    LaunchSpec spec;
    spec.name = "zero-cta-parent";
    spec.grid = {1, 1, 1};
    spec.cta = {32, 1, 1};
    spec.body = std::make_shared<ZeroCtaParent>();

    try {
        dev.launch(spec);
        FAIL() << "launch over a wedged device must panic";
    } catch (const PanicError &err) {
        const std::string msg = err.what();
        const auto has = [&msg](const char *needle) {
            return msg.find(needle) != std::string::npos;
        };

        EXPECT_TRUE(has("deadlock")) << msg;
        // The wedged grid is identified, with the reason it cannot
        // finish.
        EXPECT_TRUE(has("zero-cta-child")) << msg;
        EXPECT_TRUE(has("zero-CTA grid: will never complete")) << msg;
        EXPECT_TRUE(has("live grids")) << msg;
        // The stalled warp set, with stall reasons and its pending
        // device-side work.
        EXPECT_TRUE(has("stalled on synchronization")) << msg;
        EXPECT_TRUE(has("pending child grids 1")) << msg;
        // Pending memory requests are reported (none outstanding here).
        EXPECT_TRUE(has("outstanding writes 0")) << msg;
        EXPECT_TRUE(has("mshr lines 0")) << msg;
    }
}

TEST(DeadlockDiagnostics, InjectedZombieGridIsReported)
{
    // Drive the panic through the raw device-queue interface as well:
    // a grid injected with no CTAs and no parent wedges the next
    // launch, and the report must surface it even though no warp is
    // stalled (the SM section then states that explicitly).
    SystemConfig cfg;
    Gpu gpu(cfg);

    ChildGrid zombie;
    zombie.spec.name = "orphan-zombie";
    zombie.spec.grid = {0, 1, 1};
    zombie.spec.cta = {32, 1, 1};
    gpu.enqueueChildGrid(zombie, -1, -1, gpu.now());

    class OneInsn : public KernelBody
    {
      public:
        void
        runPhase(WarpCtx &w, int) override
        {
            w.emitInt(1);
        }
    };

    LaunchSpec spec;
    spec.name = "innocent";
    spec.grid = {1, 1, 1};
    spec.cta = {32, 1, 1};
    spec.body = std::make_shared<OneInsn>();

    try {
        gpu.launch(spec);
        FAIL() << "launch with a zombie grid queued must panic";
    } catch (const PanicError &err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find("deadlock"), std::string::npos) << msg;
        EXPECT_NE(msg.find("orphan-zombie"), std::string::npos) << msg;
        EXPECT_NE(msg.find("no SM holds resident work"),
                  std::string::npos)
            << msg;
    }
}

} // namespace
