/**
 * @file
 * Unit tests for the memory-hierarchy models: set-associative cache
 * (LRU, bypass, invalidate, flush) and the DRAM channel (row-buffer
 * behaviour, scheduling policies, efficiency accounting).
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/pci.hh"

namespace
{

using namespace ggpu;
using namespace ggpu::mem;

// ------------------------------------------------------------ cache

TEST(Cache, FirstTouchMissesThenHits)
{
    Cache cache(4096, 4, 128, "t");
    EXPECT_EQ(cache.access(0x1000, false), CacheResult::Miss);
    EXPECT_EQ(cache.access(0x1000, false), CacheResult::Hit);
    EXPECT_EQ(cache.access(0x1040, false), CacheResult::Hit);  // same line
    EXPECT_EQ(cache.access(0x1080, false), CacheResult::Miss); // next line
    EXPECT_EQ(cache.accesses(), 4u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_DOUBLE_EQ(cache.missRate(), 0.5);
}

TEST(Cache, LruEvictsOldestWay)
{
    // 4 ways x 128B lines, 2 sets -> set stride is 256B.
    Cache cache(1024, 4, 128, "t");
    const Addr stride = 256;
    for (Addr i = 0; i < 4; ++i)
        cache.access(0x10000 + i * stride, false);  // fill set 0
    cache.access(0x10000, false);                   // touch way 0
    cache.access(0x10000 + 4 * stride, false);      // evict LRU (way 1)
    EXPECT_TRUE(cache.contains(0x10000));
    EXPECT_FALSE(cache.contains(0x10000 + 1 * stride));
    EXPECT_TRUE(cache.contains(0x10000 + 2 * stride));
}

TEST(Cache, DisabledCacheBypasses)
{
    Cache cache(0, 4, 128, "off");
    EXPECT_FALSE(cache.enabled());
    EXPECT_EQ(cache.access(0x1000, false), CacheResult::Bypass);
    EXPECT_EQ(cache.accesses(), 0u);
}

TEST(Cache, InvalidateDropsSingleLine)
{
    Cache cache(4096, 4, 128, "t");
    cache.access(0x2000, false);
    cache.access(0x2080, false);
    cache.invalidate(0x2000);
    EXPECT_FALSE(cache.contains(0x2000));
    EXPECT_TRUE(cache.contains(0x2080));
}

TEST(Cache, FlushDropsEverythingButKeepsStats)
{
    Cache cache(4096, 4, 128, "t");
    cache.access(0x3000, false);
    cache.flush();
    EXPECT_FALSE(cache.contains(0x3000));
    EXPECT_EQ(cache.accesses(), 1u);
    EXPECT_EQ(cache.access(0x3000, false), CacheResult::Miss);
}

TEST(Cache, FullyAssociativeCornerClampsWays)
{
    // 2 lines of capacity with assoc 16 -> clamps to 2-way, 1 set.
    Cache cache(256, 16, 128, "t");
    EXPECT_EQ(cache.numSets(), 1u);
    EXPECT_EQ(cache.assoc(), 2u);
}

TEST(Cache, RejectsNonPowerOfTwoGeometry)
{
    EXPECT_THROW(Cache(4096, 4, 96, "bad"), FatalError);
    EXPECT_THROW(Cache(3 * 128, 1, 128, "bad-sets"), FatalError);
}

// ------------------------------------------------------------- DRAM

GpuConfig
dramConfig(MemSchedPolicy policy)
{
    GpuConfig cfg;
    cfg.memSched = policy;
    return cfg;
}

TEST(Dram, RowHitsAreCountedAfterActivation)
{
    const GpuConfig cfg = dramConfig(MemSchedPolicy::FrFcfs);
    DramChannel channel(cfg, 0);

    // Two requests to the same row.
    channel.push({0x0, false, 0, 1});
    channel.push({0x80, false, 0, 2});
    std::vector<DramCompletion> done;
    Cycles now = 0;
    while (done.size() < 2 && now < 100000)
        channel.tick(++now, done);
    EXPECT_EQ(done.size(), 2u);
    EXPECT_EQ(channel.rowMisses(), 1u);  // first opens the row
    EXPECT_EQ(channel.rowHits(), 1u);
    EXPECT_TRUE(channel.idle());
}

TEST(Dram, FrFcfsPrefersOpenRowOverOlderRequest)
{
    const GpuConfig cfg = dramConfig(MemSchedPolicy::FrFcfs);
    DramChannel channel(cfg, 0);

    // Open row A, then queue row B (older) and row A (younger), with
    // the same bank; FR-FCFS should serve the row-A hit first.
    channel.push({0x0, false, 0, 1});
    std::vector<DramCompletion> done;
    Cycles now = 0;
    while (done.empty() && now < 100000)
        channel.tick(++now, done);
    done.clear();

    const Addr rowB = Addr(cfg.dramRowBytes) * cfg.dramBanksPerChannel;
    channel.push({rowB, false, now, 10});   // row B, same bank
    channel.push({0x100, false, now, 11});  // row A again
    std::vector<DramCompletion> completed;
    while (completed.size() < 2 && now < 200000)
        channel.tick(++now, completed);
    ASSERT_EQ(completed.size(), 2u);
    const bool hit_first =
        completed[0].doneAt < completed[1].doneAt
            ? completed[0].reqId == 11
            : completed[1].reqId == 11;
    EXPECT_TRUE(hit_first);
}

TEST(Dram, FifoServesStrictlyInOrder)
{
    const GpuConfig cfg = dramConfig(MemSchedPolicy::Fifo);
    DramChannel channel(cfg, 0);
    channel.push({0x0, false, 0, 1});
    const Addr rowB = Addr(cfg.dramRowBytes) * cfg.dramBanksPerChannel;
    channel.push({rowB, false, 0, 2});
    channel.push({0x80, false, 0, 3});
    std::vector<DramCompletion> done;
    Cycles now = 0;
    while (done.size() < 3 && now < 300000)
        channel.tick(++now, done);
    ASSERT_EQ(done.size(), 3u);
    // Completion times must be ordered by request id under FIFO.
    Cycles t1 = 0, t2 = 0, t3 = 0;
    for (const auto &d : done) {
        if (d.reqId == 1)
            t1 = d.doneAt;
        if (d.reqId == 2)
            t2 = d.doneAt;
        if (d.reqId == 3)
            t3 = d.doneAt;
    }
    EXPECT_LT(t1, t2);
    EXPECT_LT(t2, t3);
}

TEST(Dram, OoO128HasLargerQueue)
{
    DramChannel small(dramConfig(MemSchedPolicy::FrFcfs), 0);
    DramChannel large(dramConfig(MemSchedPolicy::OoO128), 0);
    int pushed_small = 0, pushed_large = 0;
    for (int i = 0; i < 200; ++i) {
        if (small.canAccept()) {
            small.push({Addr(i) * 128, false, 0, std::uint64_t(i)});
            ++pushed_small;
        }
        if (large.canAccept()) {
            large.push({Addr(i) * 128, false, 0, std::uint64_t(i)});
            ++pushed_large;
        }
    }
    EXPECT_EQ(pushed_small, 64);
    EXPECT_EQ(pushed_large, 128);
}

TEST(Dram, EfficiencyIsPinBusyOverActive)
{
    const GpuConfig cfg = dramConfig(MemSchedPolicy::FrFcfs);
    DramChannel channel(cfg, 0);
    channel.push({0x0, false, 0, 1});
    std::vector<DramCompletion> done;
    Cycles now = 0;
    while (done.empty() && now < 100000)
        channel.tick(++now, done);
    EXPECT_GT(channel.activeCycles(), channel.pinBusyCycles());
    EXPECT_GT(channel.efficiency(), 0.0);
    EXPECT_LT(channel.efficiency(), 1.0);
}

TEST(Dram, BankParallelismOverlapsActivations)
{
    const GpuConfig cfg = dramConfig(MemSchedPolicy::FrFcfs);
    // Two requests to different banks vs two to the same bank/rows.
    auto run = [&cfg](Addr second_addr) {
        DramChannel channel(cfg, 0);
        channel.push({0x0, false, 0, 1});
        channel.push({second_addr, false, 0, 2});
        std::vector<DramCompletion> done;
        Cycles now = 0;
        while (done.size() < 2 && now < 300000)
            channel.tick(++now, done);
        Cycles last = 0;
        for (const auto &d : done)
            last = std::max(last, d.doneAt);
        return last;
    };
    const Cycles diff_banks = run(Addr(cfg.dramRowBytes));  // bank 1
    const Cycles same_bank_diff_row =
        run(Addr(cfg.dramRowBytes) * cfg.dramBanksPerChannel);
    EXPECT_LT(diff_banks, same_bank_diff_row);
}

TEST(Dram, RetirementBatchIsAgeOrdered)
{
    const GpuConfig cfg = dramConfig(MemSchedPolicy::FrFcfs);
    DramChannel channel(cfg, 0);
    // Three reads to three different banks so each can issue on a
    // successive tick; the shared data pins serialize their doneAt
    // times in issue order (1 before 2 before 3).
    channel.push({0x0, false, 0, 1});
    channel.push({Addr(cfg.dramRowBytes), false, 0, 2});
    channel.push({Addr(cfg.dramRowBytes) * 2, false, 0, 3});
    std::vector<DramCompletion> done;
    channel.tick(1, done);
    channel.tick(2, done);
    channel.tick(3, done);
    ASSERT_TRUE(done.empty());
    // Jump past all three completions in one tick, as the event-driven
    // GPU loop does. The swap-with-back removal scrambles the internal
    // in-flight vector, so an unsorted batch would retire 1, 3, 2.
    channel.tick(1000000, done);
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[0].reqId, 1u);
    EXPECT_EQ(done[1].reqId, 2u);
    EXPECT_EQ(done[2].reqId, 3u);
    EXPECT_LE(done[0].doneAt, done[1].doneAt);
    EXPECT_LE(done[1].doneAt, done[2].doneAt);
}

TEST(Dram, NextEventAtBoundsProgress)
{
    const GpuConfig cfg = dramConfig(MemSchedPolicy::FrFcfs);
    DramChannel channel(cfg, 0);
    EXPECT_EQ(channel.nextEventAt(10), ~Cycles(0));  // idle
    channel.push({0x0, false, 0, 1});
    EXPECT_EQ(channel.nextEventAt(10), 11u);  // can issue next cycle
}

// -------------------------------------------------------------- PCI

TEST(Pci, TransferTimeScalesWithSize)
{
    PciConfig cfg;
    PciModel pci(cfg);
    const Cycles small = pci.transfer(4096, PciDirection::HostToDevice,
                                      1.5);
    const Cycles large = pci.transfer(40 * 1024 * 1024,
                                      PciDirection::DeviceToHost, 1.5);
    EXPECT_GT(large, small);
    EXPECT_EQ(pci.transactions(), 2u);
    EXPECT_GT(pci.totalSeconds(), 0.0);
    // Latency floor: even a 1-byte copy costs ~latencyUs.
    const double floor_s = pci.transferSeconds(1);
    EXPECT_GE(floor_s, cfg.latencyUs * 1e-6);
}

} // namespace
