/**
 * @file
 * Unit tests for the memory-hierarchy models: set-associative cache
 * (LRU, bypass, invalidate, flush) and the DRAM channel (row-buffer
 * behaviour, scheduling policies, efficiency accounting).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "common/log.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/pci.hh"

namespace
{

using namespace ggpu;
using namespace ggpu::mem;

// ------------------------------------------------------------ cache

TEST(Cache, FirstTouchMissesThenHits)
{
    Cache cache(4096, 4, 128, "t");
    EXPECT_EQ(cache.access(0x1000, false), CacheResult::Miss);
    EXPECT_EQ(cache.access(0x1000, false), CacheResult::Hit);
    EXPECT_EQ(cache.access(0x1040, false), CacheResult::Hit);  // same line
    EXPECT_EQ(cache.access(0x1080, false), CacheResult::Miss); // next line
    EXPECT_EQ(cache.accesses(), 4u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_DOUBLE_EQ(cache.missRate(), 0.5);
}

TEST(Cache, LruEvictsOldestWay)
{
    // 4 ways x 128B lines, 2 sets -> set stride is 256B.
    Cache cache(1024, 4, 128, "t");
    const Addr stride = 256;
    for (Addr i = 0; i < 4; ++i)
        cache.access(0x10000 + i * stride, false);  // fill set 0
    cache.access(0x10000, false);                   // touch way 0
    cache.access(0x10000 + 4 * stride, false);      // evict LRU (way 1)
    EXPECT_TRUE(cache.contains(0x10000));
    EXPECT_FALSE(cache.contains(0x10000 + 1 * stride));
    EXPECT_TRUE(cache.contains(0x10000 + 2 * stride));
}

TEST(Cache, DisabledCacheBypasses)
{
    Cache cache(0, 4, 128, "off");
    EXPECT_FALSE(cache.enabled());
    EXPECT_EQ(cache.access(0x1000, false), CacheResult::Bypass);
    EXPECT_EQ(cache.accesses(), 0u);
}

TEST(Cache, InvalidateDropsSingleLine)
{
    Cache cache(4096, 4, 128, "t");
    cache.access(0x2000, false);
    cache.access(0x2080, false);
    cache.invalidate(0x2000);
    EXPECT_FALSE(cache.contains(0x2000));
    EXPECT_TRUE(cache.contains(0x2080));
}

TEST(Cache, FlushDropsEverythingButKeepsStats)
{
    Cache cache(4096, 4, 128, "t");
    cache.access(0x3000, false);
    cache.flush();
    EXPECT_FALSE(cache.contains(0x3000));
    EXPECT_EQ(cache.accesses(), 1u);
    EXPECT_EQ(cache.access(0x3000, false), CacheResult::Miss);
}

TEST(Cache, FullyAssociativeCornerClampsWays)
{
    // 2 lines of capacity with assoc 16 -> clamps to 2-way, 1 set.
    Cache cache(256, 16, 128, "t");
    EXPECT_EQ(cache.numSets(), 1u);
    EXPECT_EQ(cache.assoc(), 2u);
}

TEST(Cache, RejectsNonPowerOfTwoGeometry)
{
    EXPECT_THROW(Cache(4096, 4, 96, "bad"), FatalError);
    EXPECT_THROW(Cache(3 * 128, 1, 128, "bad-sets"), FatalError);
}

// ------------------------------------------------------------- DRAM

GpuConfig
dramConfig(MemSchedPolicy policy)
{
    GpuConfig cfg;
    cfg.memSched = policy;
    return cfg;
}

TEST(Dram, RowHitsAreCountedAfterActivation)
{
    const GpuConfig cfg = dramConfig(MemSchedPolicy::FrFcfs);
    DramChannel channel(cfg, 0);

    // Two requests to the same row.
    channel.push({0x0, false, 0, 1});
    channel.push({0x80, false, 0, 2});
    std::vector<DramCompletion> done;
    Cycles now = 0;
    while (done.size() < 2 && now < 100000)
        channel.advanceTo(++now, done);
    EXPECT_EQ(done.size(), 2u);
    EXPECT_EQ(channel.rowMisses(), 1u);  // first opens the row
    EXPECT_EQ(channel.rowHits(), 1u);
    EXPECT_TRUE(channel.idle());
}

TEST(Dram, FrFcfsPrefersOpenRowOverOlderRequest)
{
    const GpuConfig cfg = dramConfig(MemSchedPolicy::FrFcfs);
    DramChannel channel(cfg, 0);

    // Open row A, then queue row B (older) and row A (younger), with
    // the same bank; FR-FCFS should serve the row-A hit first.
    channel.push({0x0, false, 0, 1});
    std::vector<DramCompletion> done;
    Cycles now = 0;
    while (done.empty() && now < 100000)
        channel.advanceTo(++now, done);
    done.clear();

    const Addr rowB = Addr(cfg.dramRowBytes) * cfg.dramBanksPerChannel;
    channel.push({rowB, false, now, 10});   // row B, same bank
    channel.push({0x100, false, now, 11});  // row A again
    std::vector<DramCompletion> completed;
    while (completed.size() < 2 && now < 200000)
        channel.advanceTo(++now, completed);
    ASSERT_EQ(completed.size(), 2u);
    const bool hit_first =
        completed[0].doneAt < completed[1].doneAt
            ? completed[0].reqId == 11
            : completed[1].reqId == 11;
    EXPECT_TRUE(hit_first);
}

TEST(Dram, FifoServesStrictlyInOrder)
{
    const GpuConfig cfg = dramConfig(MemSchedPolicy::Fifo);
    DramChannel channel(cfg, 0);
    channel.push({0x0, false, 0, 1});
    const Addr rowB = Addr(cfg.dramRowBytes) * cfg.dramBanksPerChannel;
    channel.push({rowB, false, 0, 2});
    channel.push({0x80, false, 0, 3});
    std::vector<DramCompletion> done;
    Cycles now = 0;
    while (done.size() < 3 && now < 300000)
        channel.advanceTo(++now, done);
    ASSERT_EQ(done.size(), 3u);
    // Completion times must be ordered by request id under FIFO.
    Cycles t1 = 0, t2 = 0, t3 = 0;
    for (const auto &d : done) {
        if (d.reqId == 1)
            t1 = d.doneAt;
        if (d.reqId == 2)
            t2 = d.doneAt;
        if (d.reqId == 3)
            t3 = d.doneAt;
    }
    EXPECT_LT(t1, t2);
    EXPECT_LT(t2, t3);
}

TEST(Dram, OoO128HasLargerQueue)
{
    DramChannel small(dramConfig(MemSchedPolicy::FrFcfs), 0);
    DramChannel large(dramConfig(MemSchedPolicy::OoO128), 0);
    int pushed_small = 0, pushed_large = 0;
    for (int i = 0; i < 200; ++i) {
        if (small.canAccept()) {
            small.push({Addr(i) * 128, false, 0, std::uint64_t(i)});
            ++pushed_small;
        }
        if (large.canAccept()) {
            large.push({Addr(i) * 128, false, 0, std::uint64_t(i)});
            ++pushed_large;
        }
    }
    EXPECT_EQ(pushed_small, 64);
    EXPECT_EQ(pushed_large, 128);
}

TEST(Dram, EfficiencyIsPinBusyOverActive)
{
    const GpuConfig cfg = dramConfig(MemSchedPolicy::FrFcfs);
    DramChannel channel(cfg, 0);
    channel.push({0x0, false, 0, 1});
    std::vector<DramCompletion> done;
    Cycles now = 0;
    while (done.empty() && now < 100000)
        channel.advanceTo(++now, done);
    EXPECT_GT(channel.activeCycles(), channel.pinBusyCycles());
    EXPECT_GT(channel.efficiency(), 0.0);
    EXPECT_LT(channel.efficiency(), 1.0);
}

TEST(Dram, BankParallelismOverlapsActivations)
{
    const GpuConfig cfg = dramConfig(MemSchedPolicy::FrFcfs);
    // Two requests to different banks vs two to the same bank/rows.
    auto run = [&cfg](Addr second_addr) {
        DramChannel channel(cfg, 0);
        channel.push({0x0, false, 0, 1});
        channel.push({second_addr, false, 0, 2});
        std::vector<DramCompletion> done;
        Cycles now = 0;
        while (done.size() < 2 && now < 300000)
            channel.advanceTo(++now, done);
        Cycles last = 0;
        for (const auto &d : done)
            last = std::max(last, d.doneAt);
        return last;
    };
    const Cycles diff_banks = run(Addr(cfg.dramRowBytes));  // bank 1
    const Cycles same_bank_diff_row =
        run(Addr(cfg.dramRowBytes) * cfg.dramBanksPerChannel);
    EXPECT_LT(diff_banks, same_bank_diff_row);
}

TEST(Dram, RetirementBatchIsAgeOrdered)
{
    const GpuConfig cfg = dramConfig(MemSchedPolicy::FrFcfs);
    DramChannel channel(cfg, 0);
    // Three reads to three different banks so each can issue on a
    // successive tick; the shared data pins serialize their doneAt
    // times in issue order (1 before 2 before 3).
    channel.push({0x0, false, 0, 1});
    channel.push({Addr(cfg.dramRowBytes), false, 0, 2});
    channel.push({Addr(cfg.dramRowBytes) * 2, false, 0, 3});
    std::vector<DramCompletion> done;
    channel.advanceTo(1, done);
    channel.advanceTo(2, done);
    channel.advanceTo(3, done);
    ASSERT_TRUE(done.empty());
    // Jump past all three completions in one tick, as the event-driven
    // GPU loop does. The swap-with-back removal scrambles the internal
    // in-flight vector, so an unsorted batch would retire 1, 3, 2.
    channel.advanceTo(1000000, done);
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[0].reqId, 1u);
    EXPECT_EQ(done[1].reqId, 2u);
    EXPECT_EQ(done[2].reqId, 3u);
    EXPECT_LE(done[0].doneAt, done[1].doneAt);
    EXPECT_LE(done[1].doneAt, done[2].doneAt);
}

TEST(Dram, NextEventAtBoundsProgress)
{
    const GpuConfig cfg = dramConfig(MemSchedPolicy::FrFcfs);
    DramChannel channel(cfg, 0);
    EXPECT_EQ(channel.nextEventAt(10), ~Cycles(0));  // idle
    channel.push({0x0, false, 0, 1});
    EXPECT_EQ(channel.nextEventAt(10), 11u);  // can issue next cycle
}

namespace
{

/**
 * A random request stream for the cross-check tests: a handful of
 * banks and rows (so bank conflicts and row hits both occur), arrivals
 * spread over a window, at most 60 requests so the queue never fills
 * under any policy and both walkers can push at identical cycles.
 */
std::vector<DramRequest>
randomTrace(std::mt19937 &rng, const GpuConfig &cfg)
{
    std::uniform_int_distribution<int> count(30, 60);
    std::uniform_int_distribution<Addr> bank(0, 3);
    std::uniform_int_distribution<Addr> row(0, 2);
    std::uniform_int_distribution<Addr> col(0, 15);
    std::uniform_int_distribution<Cycles> arrival(0, 3000);
    std::uniform_int_distribution<int> write(0, 1);

    std::vector<DramRequest> trace(std::size_t(count(rng)));
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Addr line =
            (row(rng) * cfg.dramBanksPerChannel + bank(rng))
                * cfg.dramRowBytes
            + col(rng) * cfg.lineBytes;
        trace[i] = {line, write(rng) != 0, arrival(rng), i + 1};
    }
    std::sort(trace.begin(), trace.end(),
              [](const DramRequest &a, const DramRequest &b) {
                  return a.arrival != b.arrival ? a.arrival < b.arrival
                                                : a.reqId < b.reqId;
              });
    return trace;
}

const MemSchedPolicy kAllPolicies[] = {
    MemSchedPolicy::Fifo, MemSchedPolicy::FrFcfs, MemSchedPolicy::OoO128};

} // namespace

TEST(Dram, NextEventAtNeverSkipsAnEventRandomized)
{
    // Brute-force audit of the wake bound's contract: whenever
    // nextEventAt(t) claims the stretch (t, bound) is quiet, stepping
    // the channel cycle by cycle must find no issue and no completion
    // inside it. A new arrival voids outstanding claims (the bound
    // could not have known), exactly as the simulator's reference loop
    // recomputes its wake after delivering events.
    std::mt19937 rng(0xD5A3);
    for (const MemSchedPolicy policy : kAllPolicies) {
        const GpuConfig cfg = dramConfig(policy);
        for (int trial = 0; trial < 8; ++trial) {
            DramChannel channel(cfg, 0);
            const std::vector<DramRequest> trace = randomTrace(rng, cfg);
            std::vector<DramCompletion> done;
            std::size_t next_push = 0;
            std::uint64_t served_before = 0;
            Cycles max_bound = 0;
            for (Cycles now = 1; now < 400000; ++now) {
                bool pushed = false;
                while (next_push < trace.size() &&
                       trace[next_push].arrival <= now) {
                    channel.push(trace[next_push++]);
                    pushed = true;
                }
                if (pushed)
                    max_bound = 0;
                const std::size_t done_before = done.size();
                channel.advanceTo(now, done);
                const bool event = done.size() != done_before ||
                                   channel.served() != served_before;
                served_before = channel.served();
                if (event)
                    ASSERT_LE(max_bound, now)
                        << "policy " << int(policy) << " trial " << trial
                        << ": nextEventAt skipped an event at " << now;
                if (next_push == trace.size() && channel.idle())
                    break;
                max_bound = std::max(max_bound, channel.nextEventAt(now));
            }
            ASSERT_TRUE(channel.idle());
        }
    }
}

TEST(Dram, CompletionBoundJumpMatchesPerCycleOracleRandomized)
{
    // The fast-forward engine's contract end to end: jumping a channel
    // straight between nextCompletionAt() bounds (stopping only for
    // arrivals) must reproduce, byte for byte, the completion stream
    // and every counter that per-cycle stepping produces.
    std::mt19937 rng(0xBEEF);
    for (const MemSchedPolicy policy : kAllPolicies) {
        const GpuConfig cfg = dramConfig(policy);
        for (int trial = 0; trial < 8; ++trial) {
            const std::vector<DramRequest> trace = randomTrace(rng, cfg);

            const auto run = [&cfg, &trace](bool jump) {
                DramChannel channel(cfg, 0);
                std::vector<DramCompletion> done;
                std::size_t next_push = 0;
                Cycles now = 0;
                while (now < 400000) {
                    if (jump) {
                        Cycles wake = channel.nextCompletionAt(now);
                        if (next_push < trace.size())
                            wake = std::min(
                                wake,
                                std::max(trace[next_push].arrival,
                                         now + 1));
                        if (wake == ~Cycles(0))
                            break;
                        now = wake;
                    } else {
                        if (next_push == trace.size() && channel.idle())
                            break;
                        ++now;
                    }
                    // Mirror the simulator's call pattern: the channel
                    // is brought up to `now` before an arriving request
                    // enters the queue (pushing first would let the
                    // interior replay back-date its issue), then ticked
                    // once more within the same cycle per arrival batch.
                    channel.advanceTo(now, done);
                    bool pushed = false;
                    while (next_push < trace.size() &&
                           trace[next_push].arrival <= now) {
                        channel.push(trace[next_push++]);
                        pushed = true;
                    }
                    if (pushed)
                        channel.advanceTo(now, done);
                }
                return std::make_tuple(done, channel.served(),
                                       channel.rowHits(),
                                       channel.rowMisses(),
                                       channel.pinBusyCycles(),
                                       channel.activeCycles());
            };

            const auto oracle = run(false);
            const auto jumped = run(true);
            const auto &ref_done = std::get<0>(oracle);
            const auto &jmp_done = std::get<0>(jumped);
            ASSERT_EQ(ref_done.size(), jmp_done.size())
                << "policy " << int(policy) << " trial " << trial;
            for (std::size_t i = 0; i < ref_done.size(); ++i) {
                EXPECT_EQ(ref_done[i].reqId, jmp_done[i].reqId);
                EXPECT_EQ(ref_done[i].write, jmp_done[i].write);
                EXPECT_EQ(ref_done[i].doneAt, jmp_done[i].doneAt);
            }
            EXPECT_EQ(std::get<1>(oracle), std::get<1>(jumped));
            EXPECT_EQ(std::get<2>(oracle), std::get<2>(jumped));
            EXPECT_EQ(std::get<3>(oracle), std::get<3>(jumped));
            EXPECT_EQ(std::get<4>(oracle), std::get<4>(jumped));
            EXPECT_EQ(std::get<5>(oracle), std::get<5>(jumped));
        }
    }
}

// -------------------------------------------------------------- PCI

TEST(Pci, TransferTimeScalesWithSize)
{
    PciConfig cfg;
    PciModel pci(cfg);
    const Cycles small = pci.transfer(4096, PciDirection::HostToDevice,
                                      1.5);
    const Cycles large = pci.transfer(40 * 1024 * 1024,
                                      PciDirection::DeviceToHost, 1.5);
    EXPECT_GT(large, small);
    EXPECT_EQ(pci.transactions(), 2u);
    EXPECT_GT(pci.totalSeconds(), 0.0);
    // Latency floor: even a 1-byte copy costs ~latencyUs.
    const double floor_s = pci.transferSeconds(1);
    EXPECT_GE(floor_s, cfg.latencyUs * 1e-6);
}

} // namespace
