/**
 * @file
 * Tests for sequences, FASTA/FASTQ I/O, data generators, center-star
 * MSA, greedy clustering, PairHMM, the FM-index, and the read mapper.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/log.hh"
#include "common/random.hh"
#include "genomics/cluster/greedy_cluster.hh"
#include "genomics/datagen.hh"
#include "genomics/fasta.hh"
#include "genomics/hmm/pairhmm.hh"
#include "genomics/index/fm_index.hh"
#include "genomics/map/read_mapper.hh"
#include "genomics/msa/center_star.hh"
#include "genomics/sequence.hh"

namespace
{

using namespace ggpu;
using namespace ggpu::genomics;

// ------------------------------------------------------- sequences

TEST(Sequence, PackUnpackRoundTrip)
{
    Rng rng(1);
    const std::string dna = randomDna(rng, 77);
    const auto packed = packDna2bit(dna);
    for (std::size_t i = 0; i < dna.size(); ++i)
        ASSERT_EQ(codeToBase(packedBaseAt(packed, i)), dna[i]);
}

TEST(Sequence, ReverseComplementInvolution)
{
    Rng rng(2);
    const std::string dna = randomDna(rng, 64);
    EXPECT_EQ(reverseComplement(reverseComplement(dna)), dna);
}

TEST(Sequence, CanonicalizeMapsAmbiguityAndCase)
{
    EXPECT_EQ(canonicalize("acgtN", Alphabet::Dna), "ACGTA");
    EXPECT_EQ(canonicalize("ACGU", Alphabet::Dna), "ACGT");
    EXPECT_THROW(canonicalize("ACGX", Alphabet::Dna), FatalError);
}

TEST(Sequence, ValidationPerAlphabet)
{
    EXPECT_TRUE(isValid("ACGT", Alphabet::Dna));
    EXPECT_FALSE(isValid("ACGU", Alphabet::Dna));
    EXPECT_TRUE(isValid("ACDEFGHIKLMNPQRSTVWY", Alphabet::Protein));
    EXPECT_FALSE(isValid("ACGB", Alphabet::Protein));
}

// ------------------------------------------------------------ FASTA

TEST(Fasta, RoundTrip)
{
    std::vector<Sequence> seqs(3);
    Rng rng(4);
    for (std::size_t i = 0; i < seqs.size(); ++i) {
        seqs[i].name = "seq" + std::to_string(i);
        seqs[i].data = randomDna(rng, 150 + i * 37);
    }
    const auto parsed = parseFasta(writeFasta(seqs, 60));
    ASSERT_EQ(parsed.size(), seqs.size());
    for (std::size_t i = 0; i < seqs.size(); ++i) {
        EXPECT_EQ(parsed[i].name, seqs[i].name);
        EXPECT_EQ(parsed[i].data, seqs[i].data);
    }
}

TEST(Fasta, RejectsHeaderlessData)
{
    EXPECT_THROW(parseFasta("ACGT\n"), FatalError);
}

TEST(Fastq, RoundTripWithQualities)
{
    Rng rng(5);
    ReadSet set = makeReadSet(rng, 500, 5, 50);
    const auto parsed = parseFastq(writeFastq(set.reads));
    ASSERT_EQ(parsed.size(), set.reads.size());
    for (std::size_t i = 0; i < parsed.size(); ++i) {
        EXPECT_EQ(parsed[i].data, set.reads[i].data);
        EXPECT_EQ(parsed[i].qual, set.reads[i].qual);
    }
}

TEST(Fastq, RejectsTruncatedRecord)
{
    EXPECT_THROW(parseFastq("@r1\nACGT\n+\n"), FatalError);
    EXPECT_THROW(parseFastq("@r1\nACGT\n+\nII\n"), FatalError);
}

// ---------------------------------------------------------- datagen

TEST(Datagen, Deterministic)
{
    Rng a(99), b(99);
    EXPECT_EQ(randomDna(a, 100), randomDna(b, 100));
}

TEST(Datagen, ReadsComeFromReference)
{
    Rng rng(6);
    ReadSet set = makeReadSet(rng, 2000, 20, 64, /*error_rate=*/0.0);
    for (std::size_t i = 0; i < set.reads.size(); ++i) {
        EXPECT_EQ(set.reads[i].data,
                  set.reference.substr(set.truePos[i], 64));
    }
}

TEST(Datagen, MutationRateRoughlyRespected)
{
    Rng rng(7);
    const std::string base = randomDna(rng, 5000);
    MutationProfile profile;
    profile.substitutionRate = 0.1;
    profile.insertionRate = 0.0;
    profile.deletionRate = 0.0;
    const std::string mutated = mutate(rng, base, profile);
    ASSERT_EQ(mutated.size(), base.size());
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < base.size(); ++i)
        diffs += base[i] != mutated[i];
    EXPECT_NEAR(double(diffs) / double(base.size()), 0.1, 0.03);
}

// ------------------------------------------------------ center star

TEST(CenterStar, RowsSpellInputs)
{
    Rng rng(8);
    std::vector<std::string> seqs;
    const std::string ancestor = randomDna(rng, 60);
    MutationProfile profile;
    for (int i = 0; i < 6; ++i)
        seqs.push_back(i == 0 ? ancestor : mutate(rng, ancestor, profile));

    const MsaResult msa = centerStarAlign(seqs, Scoring{});
    ASSERT_EQ(msa.rows.size(), seqs.size());
    const std::size_t width = msa.rows[0].size();
    for (std::size_t i = 0; i < seqs.size(); ++i) {
        EXPECT_EQ(msa.rows[i].size(), width);
        std::string stripped;
        for (char c : msa.rows[i])
            if (c != '-')
                stripped.push_back(c);
        EXPECT_EQ(stripped, seqs[i]);
    }
}

TEST(CenterStar, IdenticalSequencesNeedNoGaps)
{
    std::vector<std::string> seqs(4, "ACGTACGTAA");
    const MsaResult msa = centerStarAlign(seqs, Scoring{});
    for (const auto &row : msa.rows)
        EXPECT_EQ(row, "ACGTACGTAA");
}

TEST(CenterStar, CenterMaximizesSummedScore)
{
    Rng rng(9);
    std::vector<std::string> seqs;
    for (int i = 0; i < 5; ++i)
        seqs.push_back(randomDna(rng, 40));
    const std::size_t center = pickCenter(seqs, Scoring{});
    const long long best = centerScore(seqs, center, Scoring{});
    for (std::size_t i = 0; i < seqs.size(); ++i)
        EXPECT_LE(centerScore(seqs, i, Scoring{}), best);
}

// ------------------------------------------------------- clustering

TEST(Cluster, FamiliesClusterTogether)
{
    Rng rng(10);
    // Members diverge ~1.5% from the ancestor, so member-to-member
    // identity is >= ~97%; an 0.8 threshold leaves comfortable margin
    // while still separating unrelated families (identity ~25%).
    const auto seqs = makeFamilies(rng, 4, 6, 120, /*divergence=*/0.015,
                                   /*length_jitter=*/0.0);
    ClusterParams params;
    params.identityThreshold = 0.8;
    const ClusterResult result =
        greedyCluster(seqs, params, Scoring{});

    // Members of one family must share a cluster.
    for (std::size_t f = 0; f < 4; ++f) {
        const int cluster = result.assignment[f * 6];
        for (std::size_t m = 1; m < 6; ++m)
            EXPECT_EQ(result.assignment[f * 6 + m], cluster)
                << "family " << f << " member " << m;
    }
    EXPECT_EQ(result.representatives.size(), 4u);
}

TEST(Cluster, IdenticalSequencesOneCluster)
{
    std::vector<Sequence> seqs(5);
    Rng rng(11);
    const std::string data = randomDna(rng, 100);
    for (auto &seq : seqs)
        seq.data = data;
    const ClusterResult result =
        greedyCluster(seqs, ClusterParams{}, Scoring{});
    EXPECT_EQ(result.representatives.size(), 1u);
}

TEST(Cluster, WordFilterRejectsUnrelated)
{
    Rng rng(12);
    std::vector<Sequence> seqs(20);
    for (auto &seq : seqs)
        seq.data = randomDna(rng, 150);
    ClusterParams params;
    const ClusterResult result = greedyCluster(seqs, params, Scoring{});
    // Random 150-mers share few 5-mers at >45% threshold: most pairs
    // must be rejected before alignment.
    EXPECT_GT(result.filteredOut, result.alignmentsPerformed);
    EXPECT_EQ(result.representatives.size(), 20u);
}

TEST(Cluster, KmerProfileFindsOwnWords)
{
    Rng rng(13);
    const std::string seq = randomDna(rng, 100);
    const auto profile = kmerProfile(seq, 5);
    EXPECT_DOUBLE_EQ(sharedWordFraction(profile, seq, 5), 1.0);
}

// ---------------------------------------------------------- PairHMM

TEST(PairHmm, PerfectMatchMostLikely)
{
    Rng rng(14);
    const std::string hap = randomDna(rng, 80);
    const std::string read = hap.substr(10, 40);
    std::string worse = read;
    worse[5] = worse[5] == 'A' ? 'C' : 'A';
    worse[20] = worse[20] == 'G' ? 'T' : 'G';

    const double good = pairHmmForward(read, "", hap);
    const double bad = pairHmmForward(worse, "", hap);
    EXPECT_GT(good, bad);
}

TEST(PairHmm, LikelihoodIsLogProbability)
{
    Rng rng(15);
    const std::string hap = randomDna(rng, 60);
    const std::string read = hap.substr(5, 30);
    const double ll = pairHmmForward(read, "", hap);
    EXPECT_LT(ll, 0.0);      // probabilities < 1
    EXPECT_GT(ll, -400.0);   // and not the underflow floor
}

TEST(PairHmm, QualityAwareDownweightsErrors)
{
    Rng rng(16);
    const std::string hap = randomDna(rng, 80);
    std::string read = hap.substr(10, 40);
    read[7] = read[7] == 'A' ? 'C' : 'A';  // one mismatch

    // Low quality at the mismatch: the error is expected -> higher
    // likelihood than claiming the base was confident.
    std::string qual_low(read.size(), 'I');
    qual_low[7] = '#';
    const std::string qual_high(read.size(), 'I');

    EXPECT_GT(pairHmmForward(read, qual_low, hap),
              pairHmmForward(read, qual_high, hap));
}

TEST(PairHmm, WavefrontMatchesRowMajor)
{
    Rng rng(17);
    for (int iter = 0; iter < 15; ++iter) {
        const std::string hap = randomDna(rng, 20 + rng.below(60));
        const std::string read = randomDna(rng, 10 + rng.below(30));
        const double row = pairHmmForward(read, "", hap);
        const double wave = pairHmmForwardWavefront(read, "", hap);
        EXPECT_NEAR(row, wave, 1e-9);
    }
}

// --------------------------------------------------------- FM-index

TEST(FmIndex, SuffixArrayIsSorted)
{
    Rng rng(18);
    const std::string text = randomDna(rng, 300);
    std::vector<std::uint8_t> codes;
    for (char c : text)
        codes.push_back(baseToCode(c));
    codes.push_back(4);
    const auto sa = buildSuffixArray(codes);
    ASSERT_EQ(sa.size(), codes.size());
    for (std::size_t i = 1; i < sa.size(); ++i) {
        const auto suffix = [&codes](std::uint32_t s) {
            return std::vector<std::uint8_t>(codes.begin() + s,
                                             codes.end());
        };
        EXPECT_LT(suffix(sa[i - 1]), suffix(sa[i]));
    }
}

TEST(FmIndex, FindsAllOccurrences)
{
    Rng rng(19);
    const std::string text = randomDna(rng, 2000);
    const FmIndex index(text);

    for (int iter = 0; iter < 20; ++iter) {
        const std::size_t pos = rng.below(text.size() - 12);
        const std::string pattern = text.substr(pos, 12);

        // Ground truth by brute force.
        std::vector<std::uint32_t> expected;
        for (std::size_t i = 0; i + pattern.size() <= text.size(); ++i)
            if (text.compare(i, pattern.size(), pattern) == 0)
                expected.push_back(std::uint32_t(i));

        const auto range = index.search(pattern);
        EXPECT_EQ(range.count(), expected.size());
        const auto hits = index.locate(range, 1000);
        EXPECT_EQ(hits, expected);
    }
}

TEST(FmIndex, AbsentPatternYieldsEmptyRange)
{
    const FmIndex index("ACGTACGTACGTAAAA");
    EXPECT_TRUE(index.search("GGGGGG").empty());
}

TEST(FmIndex, FlatOccTableMatchesOcc)
{
    Rng rng(20);
    const std::string text = randomDna(rng, 500);
    const FmIndex index(text);
    const auto flat = index.flatOccTable();
    const std::size_t stride = index.bwt().size() + 1;
    for (std::uint8_t c = 0; c < 4; ++c) {
        for (std::uint32_t pos = 0; pos < stride; pos += 17)
            EXPECT_EQ(flat[c * stride + pos], index.occ(c, pos));
    }
}

// ------------------------------------------------------ read mapper

TEST(Mapper, MapsExactReadsToTruePositions)
{
    Rng rng(21);
    ReadSet set = makeReadSet(rng, 4000, 25, 64, /*error_rate=*/0.0);
    const FmIndex index(set.reference);
    const auto results = mapReads(index, set.reference, set.reads);
    for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].mapped) << "read " << i;
        EXPECT_EQ(results[i].position, set.truePos[i]);
        EXPECT_EQ(results[i].score, 64 * 2);  // all-match semi-global
    }
}

TEST(Mapper, ToleratesSequencingErrors)
{
    Rng rng(22);
    ReadSet set = makeReadSet(rng, 4000, 30, 80, /*error_rate=*/0.02);
    const FmIndex index(set.reference);
    const auto results = mapReads(index, set.reference, set.reads);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < results.size(); ++i)
        correct += results[i].mapped &&
                   results[i].position == set.truePos[i];
    EXPECT_GE(correct, std::size_t(0.8 * double(set.reads.size())));
}

TEST(Mapper, RandomReadDoesNotMap)
{
    Rng rng(23);
    ReadSet set = makeReadSet(rng, 3000, 1, 64);
    const FmIndex index(set.reference);
    // A fresh random read almost surely has no 20-mer seed hit.
    const MapResult result =
        mapRead(index, set.reference, randomDna(rng, 64));
    EXPECT_FALSE(result.mapped);
}

} // namespace
