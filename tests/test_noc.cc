/**
 * @file
 * Interconnect tests: routing correctness for all four Table II
 * topologies (hop counts, reachability, no self-routes), link
 * contention serialization, flit-size sensitivity, router-delay
 * sensitivity, and fat-tree link fattening.
 */

#include <gtest/gtest.h>

#include "noc/network.hh"
#include "noc/topology.hh"

namespace
{

using namespace ggpu;
using namespace ggpu::noc;

constexpr int kNodes = 86;  // 78 SMs + 8 partitions

class TopologyTest
    : public ::testing::TestWithParam<NocTopology>
{
};

TEST_P(TopologyTest, AllPairsRoutable)
{
    auto topo = Topology::create(GetParam(), kNodes);
    for (int s = 0; s < kNodes; s += 5) {
        for (int d = 0; d < kNodes; d += 7) {
            if (s == d)
                continue;
            std::vector<int> links;
            topo->route(s, d, links);
            EXPECT_FALSE(links.empty()) << s << "->" << d;
            for (int link : links) {
                EXPECT_GE(link, 0);
                EXPECT_LT(link, topo->numLinks());
            }
        }
    }
}

TEST_P(TopologyTest, SelfRouteIsShort)
{
    auto topo = Topology::create(GetParam(), kNodes);
    std::vector<int> links;
    topo->route(13, 13, links);
    // Xbar uses its in/out ports; a butterfly always crosses all of
    // its stages; mesh and fat tree stay put.
    if (GetParam() == NocTopology::Butterfly)
        EXPECT_EQ(links.size(), 7u);  // ceil(log2(86)) stages
    else
        EXPECT_LE(links.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, TopologyTest,
                         ::testing::Values(NocTopology::Xbar,
                                           NocTopology::Mesh,
                                           NocTopology::FatTree,
                                           NocTopology::Butterfly));

TEST(Topology, XbarAlwaysTwoHops)
{
    XbarTopology xbar(kNodes);
    EXPECT_EQ(xbar.hops(0, 85), 2);
    EXPECT_EQ(xbar.hops(42, 1), 2);
}

TEST(Topology, MeshHopsAreManhattanDistance)
{
    MeshTopology mesh(kNodes);
    const int cols = mesh.cols();
    // (0,0) -> (3,2): 3 + 2 hops.
    const int src = 0;
    const int dst = 2 * cols + 3;
    EXPECT_EQ(mesh.hops(src, dst), 5);
    // Dimension order: X moves come first.
    std::vector<int> links;
    mesh.route(src, dst, links);
    ASSERT_EQ(links.size(), 5u);
    EXPECT_EQ(links[0] % 4, 0);  // east
    EXPECT_EQ(links[4] % 4, 2);  // south
}

TEST(Topology, MeshHasMoreHopsThanXbar)
{
    MeshTopology mesh(kNodes);
    XbarTopology xbar(kNodes);
    double mesh_total = 0, xbar_total = 0;
    for (int s = 0; s < kNodes; s += 3) {
        for (int d = 0; d < kNodes; d += 3) {
            if (s == d)
                continue;
            mesh_total += mesh.hops(s, d);
            xbar_total += xbar.hops(s, d);
        }
    }
    EXPECT_GT(mesh_total, xbar_total);
}

TEST(Topology, FatTreeClimbsToNca)
{
    FatTreeTopology tree(16);
    // Adjacent leaves share a parent: 1 up + 1 down.
    EXPECT_EQ(tree.hops(0, 1), 2);
    // Opposite halves traverse the root.
    EXPECT_EQ(tree.hops(0, 15), 2 * tree.levels());
}

TEST(Topology, FatTreeLinksFattenTowardRoot)
{
    FatTreeTopology tree(16);
    std::vector<int> leaf_links, root_links;
    tree.route(0, 1, leaf_links);   // bottom level only
    tree.route(0, 15, root_links);  // reaches the top
    EXPECT_EQ(tree.linkWidthFactor(leaf_links.front()), 1.0);
    double max_width = 0;
    for (int link : root_links)
        max_width = std::max(max_width, tree.linkWidthFactor(link));
    EXPECT_GT(max_width, 1.0);
}

TEST(Topology, ButterflyTraversesLogStages)
{
    ButterflyTopology fly(64);
    EXPECT_EQ(fly.stages(), 6);
    EXPECT_EQ(fly.hops(0, 63), 6);
    EXPECT_EQ(fly.hops(5, 6), 6);  // always n stages
}

TEST(Topology, ButterflyForwardAndReverseUseDisjointLinks)
{
    ButterflyTopology fly(16);
    std::vector<int> fwd, rev;
    fly.route(1, 9, fwd);
    fly.route(9, 1, rev);
    for (int f : fwd)
        for (int r : rev)
            EXPECT_NE(f, r);
}

// ----------------------------------------------------------- network

TEST(Network, ZeroLoadLatencyGrowsWithHops)
{
    NocConfig cfg;
    cfg.topology = NocTopology::Mesh;
    Network net(cfg, kNodes);
    MeshTopology mesh(kNodes);
    const Cycles near = net.zeroLoadLatency(0, 1, 32);
    const Cycles far = net.zeroLoadLatency(0, kNodes - 1, 32);
    EXPECT_LT(near, far);
}

TEST(Network, RouterDelayAddsPerHop)
{
    NocConfig base;
    base.topology = NocTopology::Mesh;
    NocConfig slow = base;
    slow.routerDelay = 8;
    Network fast_net(base, kNodes);
    Network slow_net(slow, kNodes);
    MeshTopology mesh(kNodes);
    const int hops = mesh.hops(0, kNodes - 1);
    const Cycles fast = fast_net.zeroLoadLatency(0, kNodes - 1, 32);
    const Cycles slow_lat = slow_net.zeroLoadLatency(0, kNodes - 1, 32);
    EXPECT_EQ(slow_lat - fast, Cycles(8) * Cycles(hops));
}

TEST(Network, NarrowFlitsSerializeLonger)
{
    NocConfig wide;
    wide.flitBytes = 40;
    NocConfig narrow = wide;
    narrow.flitBytes = 8;
    Network wide_net(wide, kNodes);
    Network narrow_net(narrow, kNodes);
    EXPECT_LT(wide_net.zeroLoadLatency(0, 80, 128),
              narrow_net.zeroLoadLatency(0, 80, 128));
}

TEST(Network, ContentionSerializesSharedLinks)
{
    NocConfig cfg;
    Network net(cfg, kNodes);
    // Many packets to the same destination contend on its output port.
    const Cycles first = net.send(0, 80, 128, 0);
    Cycles last = first;
    for (int s = 1; s < 20; ++s)
        last = net.send(s, 80, 128, 0);
    EXPECT_GT(last, first);
    EXPECT_EQ(net.packets(), 20u);
    EXPECT_GT(net.avgLatency(), 0.0);
}

TEST(Network, ResetStateClearsContention)
{
    NocConfig cfg;
    Network net(cfg, kNodes);
    for (int s = 0; s < 20; ++s)
        net.send(s, 80, 128, 0);
    net.resetState();
    const Cycles after = net.send(0, 80, 128, 0);
    EXPECT_EQ(after, net.zeroLoadLatency(0, 80, 128));
}

TEST(Network, FlitAccountingMatchesPayload)
{
    NocConfig cfg;  // 40B flits, 8B header
    Network net(cfg, kNodes);
    net.send(0, 80, 128, 0);  // 136B -> 4 flits
    EXPECT_EQ(net.flits(), 4u);
}

} // namespace
