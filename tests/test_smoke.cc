/**
 * @file
 * End-to-end smoke tests: tiny kernels through emission + timing,
 * checking functional results and conservation invariants.
 */

#include <gtest/gtest.h>

#include "runtime/device.hh"
#include "sim/warp_ctx.hh"

namespace
{

using namespace ggpu;
using namespace ggpu::sim;

/** out[i] = a[i] + b[i] over one element per thread. */
class VecAddKernel : public KernelBody
{
  public:
    VecAddKernel(Addr a, Addr b, Addr out, std::uint32_t n)
        : a_(a), b_(b), out_(out), n_(n)
    {
    }

    void
    runPhase(WarpCtx &w, int) override
    {
        auto gid = w.globalTid();
        LaneArray<bool> in_range = w.make<bool>([&](int lane) {
            return gid[lane] < n_;
        });
        w.emitInt(1);  // bounds compare
        w.ifMask(w.ballot(in_range), [&] {
            auto va = w.loadGlobal<std::int32_t>(a_, gid);
            auto vb = w.loadGlobal<std::int32_t>(b_, gid);
            auto sum = va + vb;
            w.storeGlobal<std::int32_t>(out_, gid, sum);
        });
    }

  private:
    Addr a_, b_, out_;
    std::uint32_t n_;
};

TEST(Smoke, VecAddComputesAndTimes)
{
    rt::Device dev;
    const std::uint32_t n = 1000;

    std::vector<std::int32_t> ha(n), hb(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        ha[i] = std::int32_t(i);
        hb[i] = std::int32_t(2 * i + 1);
    }

    auto da = dev.alloc<std::int32_t>(n);
    auto db = dev.alloc<std::int32_t>(n);
    auto dout = dev.alloc<std::int32_t>(n);
    dev.upload(da, ha);
    dev.upload(db, hb);

    LaunchSpec spec;
    spec.name = "vecadd";
    spec.grid = {8, 1, 1};
    spec.cta = {128, 1, 1};
    spec.body = std::make_shared<VecAddKernel>(da.addr, db.addr,
                                               dout.addr, n);

    auto result = dev.launch(spec);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_EQ(result.ctas, 8u);

    auto out = dev.download(dout);
    for (std::uint32_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], ha[i] + hb[i]) << "at index " << i;

    const auto &stats = dev.gpu().stats();
    EXPECT_GT(stats.totalInsns(), 0u);
    EXPECT_GT(stats.l1Accesses, 0u);
    EXPECT_EQ(stats.launches, 1u);
    // Conservation: issue cycles + stall cycles == SM active cycles.
    EXPECT_EQ(stats.issueCycles + stats.stalls.total(), stats.smCycles);
    EXPECT_EQ(dev.profiler().kernelInvocations(), 1u);
    EXPECT_EQ(dev.profiler().pciTransactions(), 3u);
}

/** CDP: parent launches one child grid per warp and syncs. */
class ParentKernel : public KernelBody
{
  public:
    ParentKernel(Addr data, std::uint32_t n) : data_(data), n_(n) {}

    void
    runPhase(WarpCtx &w, int) override
    {
        LaunchSpec child;
        child.name = "child";
        child.grid = {2, 1, 1};
        child.cta = {64, 1, 1};
        child.body = std::make_shared<ChildKernel>(data_, n_);
        w.launchChild(child);
        w.deviceSync();
        // Consume child results.
        auto v = w.loadGlobalUniform<std::int32_t>(data_);
        w.emitInt(1, v.dep);
    }

  private:
    class ChildKernel : public KernelBody
    {
      public:
        ChildKernel(Addr data, std::uint32_t n) : data_(data), n_(n) {}

        void
        runPhase(WarpCtx &w, int) override
        {
            auto gid = w.globalTid();
            LaneArray<bool> in_range = w.make<bool>([&](int lane) {
                return gid[lane] < n_;
            });
            w.ifMask(w.ballot(in_range), [&] {
                auto v = w.loadGlobal<std::int32_t>(data_, gid);
                auto one = w.broadcast<std::int32_t>(1);
                w.storeGlobal<std::int32_t>(data_, gid, v + one);
            });
        }

      private:
        Addr data_;
        std::uint32_t n_;
    };

    Addr data_;
    std::uint32_t n_;
};

TEST(Smoke, CdpChildGridsRunAndSync)
{
    rt::Device dev;
    const std::uint32_t n = 128;

    std::vector<std::int32_t> host(n, 7);
    auto buf = dev.alloc<std::int32_t>(n);
    dev.upload(buf, host);

    LaunchSpec spec;
    spec.name = "parent";
    spec.grid = {1, 1, 1};
    spec.cta = {32, 1, 1};
    spec.body = std::make_shared<ParentKernel>(buf.addr, n);

    auto result = dev.launch(spec);
    EXPECT_EQ(result.childGrids, 1u);

    auto out = dev.download(buf);
    for (std::uint32_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], 8);

    const auto &stats = dev.gpu().stats();
    EXPECT_GT(stats.insnByKind[std::size_t(OpKind::ChildLaunch)], 0u);
    EXPECT_GT(stats.insnByKind[std::size_t(OpKind::DeviceSync)], 0u);
}

/** Two-phase kernel: phase barrier orders cross-warp shared traffic. */
class PhaseKernel : public KernelBody
{
  public:
    int numPhases(Dim3, Dim3) const override { return 2; }

    void
    runPhase(WarpCtx &w, int phase) override
    {
        auto lane = w.laneId();
        if (phase == 0) {
            // Warp 0 writes lane ids; others idle.
            if (w.warpInCta() == 0) {
                w.storeShared<std::uint32_t>(0, lane, lane);
            }
        } else {
            // Warp 1 reads what warp 0 wrote in phase 0.
            if (w.warpInCta() == 1) {
                auto v = w.loadShared<std::uint32_t>(0, lane);
                for (int i = 0; i < warpSize; ++i)
                    EXPECT_EQ(v[i], std::uint32_t(i));
            }
        }
    }
};

TEST(Smoke, PhaseBarriersOrderSharedMemory)
{
    rt::Device dev;
    LaunchSpec spec;
    spec.name = "phases";
    spec.grid = {4, 1, 1};
    spec.cta = {64, 1, 1};
    spec.res.smemPerCtaBytes = 4096;
    spec.body = std::make_shared<PhaseKernel>();

    auto result = dev.launch(spec);
    EXPECT_GT(result.cycles, 0u);
    const auto &stats = dev.gpu().stats();
    EXPECT_GT(stats.insnByKind[std::size_t(OpKind::Barrier)], 0u);
    EXPECT_GT(stats.memBySpace[std::size_t(MemSpace::Shared)], 0u);
}

} // namespace
